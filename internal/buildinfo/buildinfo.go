// Package buildinfo resolves a human-readable version for the binaries
// from the Go build metadata, so `-version` flags and the serving
// daemon's /healthz can identify the exact build — which is what lets
// operators decide when a shared result-cache directory must be
// discarded across deployments.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version reports the module version when built from a tagged module, or
// the VCS revision (plus a -dirty suffix for modified trees) when built
// from a checkout, falling back to "devel" when neither is stamped.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	v := bi.Main.Version
	if v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return "devel"
}

// Print writes the standard one-line version banner for cmd binaries.
func Print(cmd string) {
	fmt.Printf("%s %s (%s)\n", cmd, Version(), runtime.Version())
}
