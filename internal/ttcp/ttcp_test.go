package ttcp

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func newStack(t *testing.T) (*sim.Engine, *kern.Kernel, *tcp.Stack) {
	t.Helper()
	eng := sim.NewEngine(5)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, 2)
	k := kern.New(kern.Config{
		Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
		NumCPUs: 2, CPU: cpu.DefaultConfig(), Tune: kern.DefaultTuning(),
	})
	t.Cleanup(k.Shutdown)
	st := tcp.New(k, tcp.DefaultConfig())
	k.StartTicks()
	return eng, k, st
}

func TestLaunchTXTransactsForever(t *testing.T) {
	eng, _, st := newStack(t)
	nic := st.AddNIC(0x19)
	sock, client := st.NewConn(0, nic)
	p := Launch(st, sock, client, Config{Name: "tx0", Dir: TX, Size: 8192, StartCPU: 0})
	eng.Run(300_000_000)
	if p.Transactions == 0 {
		t.Fatal("no transactions completed")
	}
	// Write returns when data is queued, so up to a window of bytes may
	// still be in flight at the end of the run.
	if got := client.BytesReceived; got+128<<10 < p.Transactions*8192 {
		t.Fatalf("client received %d bytes for %d transactions", got, p.Transactions)
	}
	// The loop must still be running (steady state, not terminated).
	if p.Task.State() == kern.TaskDead {
		t.Fatal("ttcp process exited")
	}
}

func TestLaunchRXConsumesSource(t *testing.T) {
	eng, _, st := newStack(t)
	nic := st.AddNIC(0x19)
	sock, client := st.NewConn(0, nic)
	p := Launch(st, sock, client, Config{Name: "rx0", Dir: RX, Size: 4096, StartCPU: 1})
	eng.At(0, func() { client.StartSource() })
	eng.Run(300_000_000)
	if p.Transactions == 0 {
		t.Fatal("no read transactions completed")
	}
	if sock.AppBytesIn() != p.Transactions*4096 {
		t.Fatalf("socket bytes %d vs %d transactions", sock.AppBytesIn(), p.Transactions)
	}
}

func TestLaunchHonoursAffinity(t *testing.T) {
	eng, k, st := newStack(t)
	nic := st.AddNIC(0x19)
	sock, client := st.NewConn(0, nic)
	p := Launch(st, sock, client, Config{Name: "pin1", Dir: TX, Size: 16384, StartCPU: 0, Affinity: 1 << 1})
	eng.Run(200_000_000)
	if p.Task.LastCPU() != 1 {
		t.Fatalf("pinned process last ran on CPU %d, want 1", p.Task.LastCPU())
	}
	if p.Task.Affinity() != 1<<1 {
		t.Fatalf("affinity mask %x", p.Task.Affinity())
	}
	_ = k
}

func TestDirectionString(t *testing.T) {
	if TX.String() != "TX" || RX.String() != "RX" {
		t.Fatal("direction names wrong")
	}
}

func TestLaunchRejectsBadSize(t *testing.T) {
	_, _, st := newStack(t)
	nic := st.AddNIC(0x19)
	sock, client := st.NewConn(0, nic)
	defer func() {
		if recover() == nil {
			t.Error("zero size accepted")
		}
	}()
	Launch(st, sock, client, Config{Name: "bad", Dir: TX, Size: 0})
}

// The transaction buffer is reused, so after warmup it serves from cache
// (the §6.1 setup): transmit-copy source reads mostly hit.
func TestUserBufferServedFromCache(t *testing.T) {
	eng, k, st := newStack(t)
	nic := st.AddNIC(0x19)
	sock, client := st.NewConn(0, nic)
	Launch(st, sock, client, Config{Name: "warm", Dir: TX, Size: 16384, StartCPU: 0, Affinity: 1})
	eng.Run(500_000_000)
	copySym := k.Tab.Lookup("__copy_from_user_ll")
	misses := k.Ctr.SymbolTotal(copySym, perf.LLCMisses)
	instr := k.Ctr.SymbolTotal(copySym, perf.Instructions)
	if instr == 0 {
		t.Fatal("copy never ran")
	}
	// With the transmit-DMA invalidation, destination skb lines miss; the
	// warm user buffer bounds MPI well below the all-cold 2 misses per
	// 64B (source+dest) = 0.031/instr.
	if mpi := float64(misses) / float64(instr); mpi > 0.022 {
		t.Fatalf("copy MPI %.4f — user buffer not cache-resident", mpi)
	}
}

func TestThinkTimeLowersUtilization(t *testing.T) {
	eng, k, st := newStack(t)
	nic := st.AddNIC(0x19)
	sock, client := st.NewConn(0, nic)
	Launch(st, sock, client, Config{
		Name: "thinker", Dir: TX, Size: 8192, StartCPU: 0,
		ThinkCycles: 2_000_000, // 1 ms of thinking per 8 KB
	})
	eng.Run(500_000_000)
	idle := k.CPUs[0].IdleCycles() + k.CPUs[1].IdleCycles()
	if idle < 200_000_000 {
		t.Fatalf("idle = %d cycles; think time not leaving the CPU idle", idle)
	}
}

func TestLatencyRecording(t *testing.T) {
	eng, _, st := newStack(t)
	nic := st.AddNIC(0x19)
	sock, client := st.NewConn(0, nic)
	p := Launch(st, sock, client, Config{
		Name: "lat", Dir: TX, Size: 16384, StartCPU: 0, RecordLatency: true,
	})
	eng.Run(400_000_000)
	ls := p.Latency()
	if ls.Count == 0 {
		t.Fatal("no latencies recorded")
	}
	if !(ls.Min <= ls.Median && ls.Median <= ls.P90 && ls.P90 <= ls.P99 && ls.P99 <= ls.Max) {
		t.Fatalf("percentiles unordered: %+v", ls)
	}
	if ls.Min == 0 {
		t.Fatal("zero-cycle transaction recorded")
	}
	// Without recording, stats are empty.
	p2 := Launch(st, sock, client, Config{Name: "nolat", Dir: TX, Size: 128, StartCPU: 1})
	_ = p2
	if got := (&Proc{}).Latency(); got.Count != 0 {
		t.Fatal("empty proc has latencies")
	}
}
