// Package ttcp implements the paper's micro-benchmark workload: bulk
// data transmits and receives between the SUT and its clients over
// long-lived connections, reusing one buffer for every transaction (§4).
// Eight ttcp processes serve eight connections over eight NICs.
package ttcp

import (
	"fmt"
	"sort"

	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/tcp"
)

// Direction selects the bulk-transfer direction of the test.
type Direction int

const (
	// TX: the SUT transmits to the clients.
	TX Direction = iota
	// RX: the clients transmit to the SUT.
	RX
)

// String names the direction as the paper's figures do.
func (d Direction) String() string {
	if d == TX {
		return "TX"
	}
	return "RX"
}

// Proc is one ttcp process: a task in an endless read or write loop over
// one connection.
type Proc struct {
	Task   *kern.Task
	Sock   *tcp.Socket
	Client *tcp.Client
	// Transactions counts completed read/write calls.
	Transactions uint64
	userBuf      mem.Addr
	stop         bool
	stopped      bool

	// latencies records per-transaction durations (cycles) when
	// Config.RecordLatency is set; see Latency.
	latencies []uint64
}

// LatencyStats summarizes recorded per-transaction durations in cycles.
type LatencyStats struct {
	Count            int
	Min, Median, Max uint64
	P90, P99         uint64
}

// Latency summarizes the recorded transaction durations. It returns a
// zero struct if latency recording was off or nothing completed.
func (p *Proc) Latency() LatencyStats {
	if len(p.latencies) == 0 {
		return LatencyStats{}
	}
	ls := append([]uint64(nil), p.latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	pct := func(q float64) uint64 {
		i := int(q * float64(len(ls)-1))
		return ls[i]
	}
	return LatencyStats{
		Count:  len(ls),
		Min:    ls[0],
		Median: pct(0.5),
		P90:    pct(0.9),
		P99:    pct(0.99),
		Max:    ls[len(ls)-1],
	}
}

// Config describes one ttcp instance.
type Config struct {
	// Name is the process name (diagnostics).
	Name string
	// Dir is the transfer direction.
	Dir Direction
	// Size is the per-transaction buffer size (the paper sweeps 128 B
	// through 64 KB).
	Size int
	// StartCPU is where the process is first enqueued.
	StartCPU int
	// Affinity is the process CPU mask (0 = unrestricted). The full and
	// process-affinity modes pin here via sys_sched_setaffinity.
	Affinity uint32
	// ThinkCycles inserts virtual think time between transactions
	// (0 = back-to-back bulk transfer, the paper's workload).
	ThinkCycles uint64
	// RecordLatency keeps per-transaction durations for Proc.Latency.
	RecordLatency bool
}

// Launch spawns one ttcp process on st's kernel driving sock. The process
// loops forever; measurement windows sample its steady state.
func Launch(st *tcp.Stack, sock *tcp.Socket, client *tcp.Client, cfg Config) *Proc {
	if cfg.Size <= 0 {
		panic(fmt.Sprintf("ttcp: bad transaction size %d", cfg.Size))
	}
	k := st.K
	p := &Proc{
		Sock:   sock,
		Client: client,
		// The transaction buffer: reused every iteration, so it is served
		// from cache once warm — "we have set ttcp to serve data directly
		// from cache" (§6.1). Page-aligned like a real malloc of this size.
		userBuf: k.Space.AllocPage(roundUp(cfg.Size, mem.PageSize), "ttcp_buf:"+cfg.Name),
	}
	body := func(env *kern.Env) {
		for !p.stop {
			start := k.Eng.Now()
			switch cfg.Dir {
			case TX:
				sock.Write(env, p.userBuf, cfg.Size)
			case RX:
				sock.Read(env, p.userBuf, cfg.Size)
			}
			p.Transactions++
			if cfg.RecordLatency {
				p.latencies = append(p.latencies, uint64(k.Eng.Now()-start))
			}
			if cfg.ThinkCycles > 0 {
				env.Delay(env.Kernel().Eng.RNG().Jitter(cfg.ThinkCycles, 0.2))
			}
		}
		p.stopped = true
	}
	p.Task = k.Spawn(cfg.Name, cfg.StartCPU, cfg.Affinity, body)
	return p
}

// Stop asks the process to exit at its next transaction boundary (the
// invariant checker's quiesce phase). A process blocked forever — an
// RX reader with no more data coming — simply never observes the flag;
// it holds no buffers while blocked, so draining does not need it.
func (p *Proc) Stop() { p.stop = true }

// Stopped reports whether the loop has exited.
func (p *Proc) Stopped() bool { return p.stopped }

func roundUp(n, to int) int {
	return (n + to - 1) / to * to
}
