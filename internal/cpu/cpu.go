// Package cpu models the processors of the system under test: a Pentium 4
// Xeon-class core reduced to the first-order cost model the paper itself
// uses for analysis (§6.2) — cycles are base work plus event penalties —
// except that here the events are *generated* by structural simulation
// (real caches, TLBs, a trace cache, a coherence directory) rather than
// assumed.
//
// A simulated kernel procedure executes by opening an Exec, declaring its
// instruction stream and memory touches, and finishing; the model turns
// that into cycles and increments the machine-wide PMU counter file that
// the Oprofile-like profiler later reads.
package cpu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Penalties holds the cycle cost charged per architectural event. The
// defaults are the paper's Figure 5 costs, taken from the VTune 7.1
// tuning guidance for the Pentium 4.
type Penalties struct {
	// MachineClear is the *timeline* cost of a pipeline flush: the
	// effective refill latency, which overlaps with other stalls. The
	// paper's Figure 5 methodology prices clears at a nominal 500 cycles
	// when attributing time to events (prof.ImpactCosts does the same);
	// that indicator is deliberately an overestimate — the paper's own
	// shares sum past 100% — so the simulator charges the smaller
	// effective cost here while the reporting layer keeps the paper's.
	MachineClear uint64
	TCMiss       uint64 // trace-cache miss
	L2Hit        uint64 // L1 miss served by L2 (not a paper event; folded cost)
	L2Miss       uint64 // served by on-die L3 (the paper's "L2 miss")
	LLCMiss      uint64 // served by memory or a remote dirty copy
	ITLBWalk     uint64
	DTLBWalk     uint64
	BrMispredict uint64
	// RemoteClearPeriod injects one machine clear per this many
	// cache-to-cache transfers of remote-dirty lines (P4 snoops that hit
	// speculative loads flush the pipeline). 0 disables. These clears
	// land on the code touching the bounced lines — the TCP engine and
	// buffer management in no-affinity mode — which is where the paper
	// localizes the affinity-sensitive clears (§6.3, Table 3).
	RemoteClearPeriod int
}

// DefaultPenalties returns the paper's Figure 5 cost table.
func DefaultPenalties() Penalties {
	return Penalties{
		MachineClear:      120,
		TCMiss:            20,
		L2Hit:             7,
		L2Miss:            10,
		LLCMiss:           300,
		ITLBWalk:          30,
		DTLBWalk:          36,
		BrMispredict:      30,
		RemoteClearPeriod: 2,
	}
}

// Config describes one processor.
type Config struct {
	// ClockHz is the core frequency; the SUT runs 2 GHz parts.
	ClockHz uint64
	// BaseCPI is the cycles-per-instruction of unstalled execution. The
	// paper's lower-bound row uses the P4's theoretical 3 retired
	// instructions/cycle (0.33 CPI); sustained kernel code on the P4
	// retires about one instruction per cycle, so that is the default.
	BaseCPI float64
	// Penalty is the per-event cost table.
	Penalty Penalties
	// TLBEntries sizes the instruction and data TLBs.
	TLBEntries int
}

// DefaultConfig returns the paper's SUT processor: 2 GHz, P4 cost table.
func DefaultConfig() Config {
	return Config{
		ClockHz:    2_000_000_000,
		BaseCPI:    1.0,
		Penalty:    DefaultPenalties(),
		TLBEntries: 64,
	}
}

// CodeRef locates a simulated procedure's instruction bytes, so the
// front-end structures (trace cache, ITLB) see a realistic footprint.
type CodeRef struct {
	Base mem.Addr
	Size int
}

// Model is one simulated processor core.
type Model struct {
	id   int
	cfg  Config
	hier *mem.Hierarchy
	itlb *mem.TLB
	dtlb *mem.TLB
	tc   *mem.Cache
	ctr  *perf.Counters
	rng  *sim.RNG
	// remoteAccum counts remote-dirty transfers toward the next
	// snoop-induced machine clear.
	remoteAccum int
}

// New builds a core attached to its cache hierarchy and the shared
// counter file. rng supplies the deterministic stream used to draw
// per-block mispredict counts.
func New(id int, cfg Config, hier *mem.Hierarchy, ctr *perf.Counters, rng *sim.RNG) *Model {
	if cfg.ClockHz == 0 || cfg.BaseCPI <= 0 {
		panic(fmt.Sprintf("cpu: bad config %+v", cfg))
	}
	if cfg.TLBEntries <= 0 {
		cfg.TLBEntries = 64
	}
	return &Model{
		id:   id,
		cfg:  cfg,
		hier: hier,
		itlb: mem.NewTLB(cfg.TLBEntries),
		dtlb: mem.NewTLB(cfg.TLBEntries),
		tc:   mem.NewCache(mem.TraceCacheCfg()),
		ctr:  ctr,
		rng:  rng,
	}
}

// ID reports the processor number.
func (m *Model) ID() int { return m.id }

// Config returns the core's configuration.
func (m *Model) Config() Config { return m.cfg }

// Hierarchy exposes the core's data-cache hierarchy.
func (m *Model) Hierarchy() *mem.Hierarchy { return m.hier }

// Counters exposes the machine counter file the core posts events to.
func (m *Model) Counters() *perf.Counters { return m.ctr }

// FlushTLBs models an address-space switch: the P4 has no ASIDs, so both
// TLBs empty. The scheduler calls this when it switches between tasks
// with different address spaces (and on migration arrival).
func (m *Model) FlushTLBs() {
	m.itlb.Flush()
	m.dtlb.Flush()
}

// MachineClear records n pipeline flushes attributed to sym (the symbol
// executing when the flush hit — Oprofile's "skid" behaviour) and returns
// the cycle penalty, which the caller charges to the CPU's timeline.
func (m *Model) MachineClear(sym perf.Symbol, n uint64) sim.Cycles {
	if n == 0 {
		return 0
	}
	m.ctr.Add(m.id, sym, perf.MachineClears, n)
	pen := n * m.cfg.Penalty.MachineClear
	m.ctr.Add(m.id, sym, perf.Cycles, pen)
	return pen
}

// CountIRQ records delivery of a device interrupt.
func (m *Model) CountIRQ(sym perf.Symbol) {
	m.ctr.Add(m.id, sym, perf.IRQsReceived, 1)
}

// CountIPI records delivery of an inter-processor interrupt.
func (m *Model) CountIPI(sym perf.Symbol) {
	m.ctr.Add(m.id, sym, perf.IPIsReceived, 1)
}

// TouchSide performs a side-band memory touch attributed to sym: cache
// and coherence state update and all events post, but the (small) cycle
// cost is folded into the surrounding activation rather than advancing
// the timeline separately. The scheduler uses it for cross-processor
// runqueue writes during wakeups.
func (m *Model) TouchSide(sym perf.Symbol, addr mem.Addr, size int, write bool) {
	r := m.hier.AccessRange(addr, size, write)
	if r.LLCHits > 0 {
		m.ctr.Add(m.id, sym, perf.L2Misses, uint64(r.LLCHits))
		m.ctr.Add(m.id, sym, perf.Cycles, uint64(r.LLCHits)*m.cfg.Penalty.L2Miss)
	}
	if r.Misses > 0 {
		m.ctr.Add(m.id, sym, perf.LLCMisses, uint64(r.Misses))
		m.ctr.Add(m.id, sym, perf.Cycles, uint64(r.Misses)*m.cfg.Penalty.LLCMiss)
	}
}

// Spin accounts for dur cycles burnt in a spinlock wait loop attributed
// to sym. The paper's Table 2 dissects the loop: each iteration is a
// compare, a PAUSE (REPZ NOP) and a conditional jump, so branch and
// instruction counts scale with the wait — the mechanism behind the
// "fewer branches, inflated mispredict ratio" observation under full
// affinity.
func (m *Model) Spin(sym perf.Symbol, dur sim.Cycles) {
	if dur == 0 {
		return
	}
	const cyclesPerIter = 25 // PAUSE delay dominates each loop pass
	iters := dur / cyclesPerIter
	if iters == 0 {
		iters = 1
	}
	m.ctr.Add(m.id, sym, perf.Cycles, dur)
	m.ctr.Add(m.id, sym, perf.SpinCycles, dur)
	m.ctr.Add(m.id, sym, perf.Instructions, iters*3)
	m.ctr.Add(m.id, sym, perf.Branches, iters)
	// The loop-back branch is essentially always predicted; the single
	// exit branch mispredicts.
	m.ctr.Add(m.id, sym, perf.BranchMispredicts, 1)
	m.ctr.Add(m.id, sym, perf.Cycles, m.cfg.Penalty.BrMispredict)
}
