package cpu

import (
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Exec accumulates the cost of one simulated procedure activation. The
// procedure declares what it does — instructions retired, branch profile,
// memory ranges touched — and Finish converts that into cycles while
// posting every event to the PMU counters under the procedure's symbol.
//
// An Exec is single-use and must be finished; the kernel charges the
// returned cycles to the processor's timeline.
type Exec struct {
	m      *Model
	sym    perf.Symbol
	cycles float64
	done   bool
}

// Begin opens an activation of sym whose code lives at code. The model
// charges front-end costs (trace-cache and ITLB behaviour) for the code
// footprint immediately.
func (m *Model) Begin(sym perf.Symbol, code CodeRef) *Exec {
	x := &Exec{m: m, sym: sym}
	if code.Size > 0 {
		x.touchCode(code)
	}
	return x
}

func (x *Exec) touchCode(code CodeRef) {
	m := x.m
	// Trace cache: decoded µops of the activation's hot path. A steady
	// fast-path activation executes a fraction of the function's static
	// footprint (no error paths, no cold branches), so only the leading
	// quarter of the code extent is fetched per call.
	hot := code.Size / 4
	if hot < mem.LineSize {
		hot = mem.LineSize
	}
	first := mem.LineOf(code.Base)
	last := mem.LineOf(code.Base + mem.Addr(hot) - 1)
	for line := first; ; line += mem.LineSize {
		if !m.tc.Lookup(line) {
			m.tc.Fill(line)
			m.ctr.Add(m.id, x.sym, perf.TCMisses, 1)
			x.cycles += float64(m.cfg.Penalty.TCMiss)
		}
		if line == last {
			break
		}
	}
	// ITLB: the code's pages.
	if walks := m.itlb.AccessRange(code.Base, code.Size); walks > 0 {
		m.ctr.Add(m.id, x.sym, perf.ITLBWalks, uint64(walks))
		x.cycles += float64(uint64(walks) * m.cfg.Penalty.ITLBWalk)
	}
}

// Instr retires n straight-line instructions of which branchFrac are
// branches, mispredicted at rate mispredict. Cost: n×BaseCPI plus a
// penalty per mispredict (count drawn deterministically from the
// engine's random stream).
func (x *Exec) Instr(n uint64, branchFrac, mispredict float64) *Exec {
	if n == 0 {
		return x
	}
	m := x.m
	m.ctr.Add(m.id, x.sym, perf.Instructions, n)
	x.cycles += float64(n) * m.cfg.BaseCPI
	branches := uint64(float64(n) * branchFrac)
	if branches > 0 {
		m.ctr.Add(m.id, x.sym, perf.Branches, branches)
		miss := uint64(m.rng.Binomial(int(branches), mispredict))
		if miss > 0 {
			m.ctr.Add(m.id, x.sym, perf.BranchMispredicts, miss)
			x.cycles += float64(miss * m.cfg.Penalty.BrMispredict)
		}
	}
	return x
}

// StringOp retires a rep-prefixed string instruction that moves size
// bytes: a single instruction regardless of length, the way the 2.4
// receive copy (`rep movl`) executes. All the cost shows up as memory
// behaviour, which is why the paper sees CPI 66 in RX 64 KB copies.
func (x *Exec) StringOp() *Exec {
	m := x.m
	m.ctr.Add(m.id, x.sym, perf.Instructions, 1)
	x.cycles += m.cfg.BaseCPI
	return x
}

// Load touches [addr, addr+size) reading.
func (x *Exec) Load(addr mem.Addr, size int) *Exec { return x.touch(addr, size, false) }

// Store touches [addr, addr+size) writing.
func (x *Exec) Store(addr mem.Addr, size int) *Exec { return x.touch(addr, size, true) }

func (x *Exec) touch(addr mem.Addr, size int, write bool) *Exec {
	if size <= 0 {
		return x
	}
	m := x.m
	r := m.hier.AccessRange(addr, size, write)
	if r.L2Hits > 0 {
		x.cycles += float64(uint64(r.L2Hits) * m.cfg.Penalty.L2Hit)
	}
	if r.LLCHits > 0 {
		m.ctr.Add(m.id, x.sym, perf.L2Misses, uint64(r.LLCHits))
		x.cycles += float64(uint64(r.LLCHits) * m.cfg.Penalty.L2Miss)
	}
	if r.Misses > 0 {
		m.ctr.Add(m.id, x.sym, perf.LLCMisses, uint64(r.Misses))
		x.cycles += float64(uint64(r.Misses) * m.cfg.Penalty.LLCMiss)
	}
	if r.Remote > 0 && m.cfg.Penalty.RemoteClearPeriod > 0 {
		m.remoteAccum += r.Remote
		if clears := m.remoteAccum / m.cfg.Penalty.RemoteClearPeriod; clears > 0 {
			m.remoteAccum %= m.cfg.Penalty.RemoteClearPeriod
			x.cycles += float64(m.MachineClear(x.sym, uint64(clears)))
		}
	}
	if walks := m.dtlb.AccessRange(addr, size); walks > 0 {
		m.ctr.Add(m.id, x.sym, perf.DTLBWalks, uint64(walks))
		x.cycles += float64(uint64(walks) * m.cfg.Penalty.DTLBWalk)
	}
	return x
}

// Overhead charges raw stall cycles that retire no instructions —
// pipeline serialization at privilege transitions (sysenter/iret), fence
// behaviour, and similar. This is what makes interface-bin routines run
// at the CPI ≈ 9–17 the paper measures.
func (x *Exec) Overhead(cycles uint64) *Exec {
	x.cycles += float64(cycles)
	return x
}

// Uncached charges n uncacheable accesses (device register reads/writes,
// APIC task-priority updates). They bypass the hierarchy entirely and
// cost a fixed bus round-trip each.
func (x *Exec) Uncached(n int) *Exec {
	const busCost = 200
	x.cycles += float64(n * busCost)
	return x
}

// Finish closes the activation, posts the cycle total, and returns it
// (always at least 1 so activations are visible on the timeline).
func (x *Exec) Finish() sim.Cycles {
	if x.done {
		panic("cpu: Exec finished twice")
	}
	x.done = true
	c := uint64(x.cycles + 0.5)
	if c == 0 {
		c = 1
	}
	x.m.ctr.Add(x.m.id, x.sym, perf.Cycles, c)
	return c
}
