package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

type rig struct {
	tab  *perf.SymbolTable
	ctr  *perf.Counters
	m0   *Model
	m1   *Model
	dir  *mem.Directory
	sym  perf.Symbol
	code CodeRef
	sp   *mem.Space
}

func newRig(t *testing.T) *rig {
	t.Helper()
	tab := perf.NewSymbolTable()
	sym := tab.Register("test_fn", perf.BinEngine)
	ctr := perf.NewCounters(tab, 2)
	dir := mem.NewDirectory(2)
	l1, l2, llc := mem.P4XeonMP()
	rng := sim.NewRNG(1)
	sp := mem.NewSpace()
	code := CodeRef{Base: sp.AllocPage(1024, "code"), Size: 1024}
	m0 := New(0, DefaultConfig(), mem.NewHierarchy(0, l1, l2, llc, dir), ctr, rng)
	m1 := New(1, DefaultConfig(), mem.NewHierarchy(1, l1, l2, llc, dir), ctr, rng)
	return &rig{tab: tab, ctr: ctr, m0: m0, m1: m1, dir: dir, sym: sym, code: code, sp: sp}
}

func TestExecInstrCostsBaseCPI(t *testing.T) {
	r := newRig(t)
	cycles := r.m0.Begin(r.sym, CodeRef{}).Instr(1000, 0, 0).Finish()
	want := uint64(1000*DefaultConfig().BaseCPI + 0.5)
	if cycles != want {
		t.Fatalf("cycles = %d, want %d", cycles, want)
	}
	if got := r.ctr.Get(0, r.sym, perf.Instructions); got != 1000 {
		t.Fatalf("instructions = %d, want 1000", got)
	}
	if got := r.ctr.Get(0, r.sym, perf.Cycles); got != cycles {
		t.Fatalf("cycle counter = %d, want %d", got, cycles)
	}
}

func TestExecBranchAccounting(t *testing.T) {
	r := newRig(t)
	r.m0.Begin(r.sym, CodeRef{}).Instr(10000, 0.2, 0.5).Finish()
	br := r.ctr.Get(0, r.sym, perf.Branches)
	if br != 2000 {
		t.Fatalf("branches = %d, want 2000", br)
	}
	miss := r.ctr.Get(0, r.sym, perf.BranchMispredicts)
	if miss < 800 || miss > 1200 {
		t.Fatalf("mispredicts = %d, want ≈1000", miss)
	}
}

func TestExecColdLoadChargesLLCMiss(t *testing.T) {
	r := newRig(t)
	buf := r.sp.AllocPage(4096, "buf")
	cold := r.m0.Begin(r.sym, CodeRef{}).Load(buf, 4096).Finish()
	if got := r.ctr.Get(0, r.sym, perf.LLCMisses); got != 64 {
		t.Fatalf("llc misses = %d, want 64", got)
	}
	warm := r.m0.Begin(r.sym, CodeRef{}).Load(buf, 4096).Finish()
	if warm >= cold {
		t.Fatalf("warm access (%d) not cheaper than cold (%d)", warm, cold)
	}
	if got := r.ctr.Get(0, r.sym, perf.DTLBWalks); got != 1 {
		t.Fatalf("dtlb walks = %d, want 1", got)
	}
}

func TestExecRemoteDirtyCountsAsLLCMiss(t *testing.T) {
	r := newRig(t)
	buf := r.sp.Alloc(64, "line")
	r.m0.Begin(r.sym, CodeRef{}).Store(buf, 64).Finish()
	before := r.ctr.Get(1, r.sym, perf.LLCMisses)
	r.m1.Begin(r.sym, CodeRef{}).Load(buf, 64).Finish()
	if got := r.ctr.Get(1, r.sym, perf.LLCMisses) - before; got != 1 {
		t.Fatalf("remote dirty load added %d LLC misses, want 1", got)
	}
}

func TestExecCodeFootprintFrontEndEvents(t *testing.T) {
	r := newRig(t)
	r.m0.Begin(r.sym, r.code).Instr(100, 0, 0).Finish()
	tcm := r.ctr.Get(0, r.sym, perf.TCMisses)
	// The model fetches the hot quarter of the static footprint.
	if want := uint64(mem.LinesIn(r.code.Base, r.code.Size/4)); tcm != want {
		t.Fatalf("tc misses = %d, want %d", tcm, want)
	}
	if got := r.ctr.Get(0, r.sym, perf.ITLBWalks); got != 1 {
		t.Fatalf("itlb walks = %d, want 1", got)
	}
	// Second activation: front end warm.
	r.m0.Begin(r.sym, r.code).Instr(100, 0, 0).Finish()
	if got := r.ctr.Get(0, r.sym, perf.TCMisses); got != tcm {
		t.Fatalf("warm activation added TC misses: %d -> %d", tcm, got)
	}
}

func TestFlushTLBsForcesRewalk(t *testing.T) {
	r := newRig(t)
	buf := r.sp.AllocPage(4096, "buf")
	r.m0.Begin(r.sym, r.code).Load(buf, 64).Finish()
	walks := r.ctr.Get(0, r.sym, perf.DTLBWalks)
	r.m0.FlushTLBs()
	r.m0.Begin(r.sym, r.code).Load(buf, 64).Finish()
	if got := r.ctr.Get(0, r.sym, perf.DTLBWalks); got != walks+1 {
		t.Fatalf("dtlb walks after flush = %d, want %d", got, walks+1)
	}
	if got := r.ctr.Get(0, r.sym, perf.ITLBWalks); got != 2 {
		t.Fatalf("itlb walks after flush = %d, want 2", got)
	}
}

func TestMachineClearPenaltyAndSkidAttribution(t *testing.T) {
	r := newRig(t)
	pen := r.m0.MachineClear(r.sym, 3)
	if pen != 3*DefaultPenalties().MachineClear {
		t.Fatalf("penalty = %d, want %d", pen, 3*DefaultPenalties().MachineClear)
	}
	if got := r.ctr.Get(0, r.sym, perf.MachineClears); got != 3 {
		t.Fatalf("clears = %d, want 3", got)
	}
	if got := r.ctr.Get(0, r.sym, perf.Cycles); got != pen {
		t.Fatalf("cycles = %d, want %d", got, pen)
	}
	if r.m0.MachineClear(r.sym, 0) != 0 {
		t.Fatal("zero clears should be free")
	}
}

func TestSpinAccounting(t *testing.T) {
	r := newRig(t)
	r.m0.Spin(r.sym, 4000)
	if got := r.ctr.Get(0, r.sym, perf.SpinCycles); got != 4000 {
		t.Fatalf("spin cycles = %d, want 4000", got)
	}
	if got := r.ctr.Get(0, r.sym, perf.Branches); got != 160 {
		t.Fatalf("spin branches = %d, want 160 (4000/25)", got)
	}
	if got := r.ctr.Get(0, r.sym, perf.Instructions); got != 480 {
		t.Fatalf("spin instructions = %d, want 480", got)
	}
	if got := r.ctr.Get(0, r.sym, perf.BranchMispredicts); got != 1 {
		t.Fatalf("spin mispredicts = %d, want 1", got)
	}
	r.m0.Spin(r.sym, 0) // no-op
	if got := r.ctr.Get(0, r.sym, perf.SpinCycles); got != 4000 {
		t.Fatal("Spin(0) changed counters")
	}
}

func TestStringOpSingleInstruction(t *testing.T) {
	r := newRig(t)
	buf := r.sp.AllocPage(4096, "buf")
	r.m0.Begin(r.sym, CodeRef{}).StringOp().Load(buf, 4096).Finish()
	if got := r.ctr.Get(0, r.sym, perf.Instructions); got != 1 {
		t.Fatalf("instructions = %d, want 1", got)
	}
	// CPI of this activation is huge: 64 cold lines behind one instruction.
	cyc := r.ctr.Get(0, r.sym, perf.Cycles)
	if cyc < 64*DefaultPenalties().LLCMiss {
		t.Fatalf("cycles = %d, want >= %d", cyc, 64*DefaultPenalties().LLCMiss)
	}
}

func TestExecFinishTwicePanics(t *testing.T) {
	r := newRig(t)
	x := r.m0.Begin(r.sym, CodeRef{})
	x.Finish()
	defer func() {
		if recover() == nil {
			t.Error("double Finish did not panic")
		}
	}()
	x.Finish()
}

func TestExecMinimumOneCycle(t *testing.T) {
	r := newRig(t)
	if c := r.m0.Begin(r.sym, CodeRef{}).Finish(); c != 1 {
		t.Fatalf("empty exec = %d cycles, want 1", c)
	}
}

func TestUncachedCost(t *testing.T) {
	r := newRig(t)
	c := r.m0.Begin(r.sym, CodeRef{}).Uncached(2).Finish()
	if c != 400 {
		t.Fatalf("uncached cost = %d, want 400", c)
	}
}
