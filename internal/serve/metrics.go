package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. Simulations
// span milliseconds (cached) to minutes (full paper windows), so the
// buckets stretch accordingly.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 60, 120}

// metrics is the server's hand-rolled Prometheus-text registry: request
// counts by path and status, one overall latency histogram, and gauges
// sampled at scrape time (cache counters, in-flight work). No external
// client library — the text exposition format is trivially writable.
type metrics struct {
	mu       sync.Mutex
	requests map[[2]string]uint64 // {path, code} -> count
	panics   map[string]uint64    // path -> recovered panics
	buckets  []uint64
	count    uint64
	sum      float64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[[2]string]uint64),
		panics:   make(map[string]uint64),
		buckets:  make([]uint64, len(latencyBuckets)),
	}
}

// panicked records one recovered panic attributed to path.
func (m *metrics) panicked(path string) {
	m.mu.Lock()
	m.panics[path]++
	m.mu.Unlock()
}

// observe records one finished request.
func (m *metrics) observe(path string, code int, elapsed time.Duration) {
	secs := elapsed.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[[2]string{path, fmt.Sprintf("%d", code)}]++
	for i, le := range latencyBuckets {
		if secs <= le {
			m.buckets[i]++
		}
	}
	m.count++
	m.sum += secs
}

// write renders the exposition text. gauges supplies point-in-time
// values (cache stats, inflight counts) keyed by metric name, each with
// a help string.
func (m *metrics) write(w http.ResponseWriter, s *Server) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	m.mu.Lock()
	fmt.Fprintf(&b, "# HELP affinity_requests_total HTTP requests served, by path and status code.\n")
	fmt.Fprintf(&b, "# TYPE affinity_requests_total counter\n")
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "affinity_requests_total{path=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}
	fmt.Fprintf(&b, "# HELP affinity_request_seconds Request latency.\n")
	fmt.Fprintf(&b, "# TYPE affinity_request_seconds histogram\n")
	for i, le := range latencyBuckets {
		fmt.Fprintf(&b, "affinity_request_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", le), m.buckets[i])
	}
	fmt.Fprintf(&b, "affinity_request_seconds_bucket{le=\"+Inf\"} %d\n", m.count)
	fmt.Fprintf(&b, "affinity_request_seconds_sum %g\n", m.sum)
	fmt.Fprintf(&b, "affinity_request_seconds_count %d\n", m.count)
	fmt.Fprintf(&b, "# HELP affinity_panics_total Panics recovered by the request middleware, by path.\n")
	fmt.Fprintf(&b, "# TYPE affinity_panics_total counter\n")
	ppaths := make([]string, 0, len(m.panics))
	for p := range m.panics {
		ppaths = append(ppaths, p)
	}
	sort.Strings(ppaths)
	for _, p := range ppaths {
		fmt.Fprintf(&b, "affinity_panics_total{path=%q} %d\n", p, m.panics[p])
	}
	if len(ppaths) == 0 {
		fmt.Fprintf(&b, "affinity_panics_total 0\n")
	}
	m.mu.Unlock()

	cs := s.cache.Stats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, format string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s "+format+"\n", name, help, name, name, v)
	}
	counter("affinity_cache_hits_total", "Result-cache in-memory hits.", cs.Hits)
	counter("affinity_cache_coalesced_total", "Requests deduplicated onto an identical in-flight simulation (singleflight).", cs.Coalesced)
	counter("affinity_cache_misses_total", "Result-cache misses (disk hits + simulations).", cs.Misses)
	counter("affinity_cache_disk_hits_total", "Result-cache misses served from the on-disk store.", cs.DiskHits)
	counter("affinity_cache_evictions_total", "Result-cache LRU evictions.", cs.Evictions)
	counter("affinity_cache_disk_errors_total", "Best-effort disk store failures.", cs.DiskErrors)
	counter("affinity_cache_corrupt_discards_total", "Corrupt persisted entries discarded (unlinked and treated as misses).", cs.CorruptDiscards)
	counter("affinity_sims_total", "Simulations actually executed.", cs.Sims)
	counter("affinity_sweep_cells_cancelled_total", "Sweep cells cancelled before dispatch because their NDJSON stream was abandoned.", s.sweepCancelled.Load())
	counter("affinity_sims_cancelled_total", "Simulations cooperatively cancelled mid-run (request timed out or client gone).", s.simsCancelled.Load())
	counter("affinity_sim_budget_aborts_total", "Simulations stopped by the wall-clock or cycle budget watchdog.", s.budgetAborts.Load())
	counter("affinity_cache_aborts_total", "Aborted simulation results refused by the cache.", cs.Aborts)
	gauge("affinity_cache_entries", "Resident result-cache entries.", "%d", cs.Entries)
	gauge("affinity_cache_bytes", "Resident result-cache bytes.", "%d", cs.Bytes)
	gauge("affinity_cache_hit_ratio", "Served-without-simulating ratio over all lookups.", "%g", cs.HitRatio())
	gauge("affinity_sims_inflight", "Simulations executing right now.", "%d", cs.Inflight)
	gauge("affinity_requests_inflight", "Requests holding a concurrency-limiter slot.", "%d", int64(len(s.sem)))
	gauge("affinity_request_limit", "Concurrency-limiter capacity.", "%d", int64(cap(s.sem)))
	gauge("affinity_worker_pool_depth", "Simulation worker-pool bound per sweep.", "%d", int64(s.runner.Workers()))
	fmt.Fprintf(&b, "# HELP affinity_build_info Build identity of the serving binary.\n# TYPE affinity_build_info gauge\naffinity_build_info{version=%q} 1\n", s.version)

	fmt.Fprint(w, b.String())
}
