package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// longBody is a deliberately huge cell — a 10-billion-cycle window takes
// minutes of wall clock, so a watchdog always fires long before it
// completes naturally.
const longBody = `{"mode":"full","size":65536,"seed":11,"warmup_cycles":2000000000,"measure_cycles":8000000000}`

// TestTimeoutCancelsSimulation is the fix for the old leak: a request
// that times out must cancel its simulation — the run aborts, the
// limiter slot frees, and affinity_sims_cancelled_total ticks. Before
// this, the 503 went out while the sim burned a slot to completion.
func TestTimeoutCancelsSimulation(t *testing.T) {
	// The timeout must beat the (minutes-long) longBody cell by a wide
	// margin but still leave the tiny follow-up cell room to finish even
	// under the race detector's slowdown.
	srv := New(Options{
		Runner:      core.NewRunner(1),
		MaxInflight: 1,
		Timeout:     2 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := post(t, ts.URL+"/v1/run", longBody)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "cancelled") {
		t.Fatalf("timed-out run: status %d body %q, want 503 mentioning cancellation", code, body)
	}
	waitUntil(t, "cancelled simulation to abort and free its slot", func() bool {
		return srv.simsCancelled.Load() >= 1 && len(srv.sem) == 0
	})

	// The freed slot serves real work again (retried: on a loaded
	// machine even the tiny cell can brush the request timeout).
	waitUntil(t, "freed slot to serve a fresh run", func() bool {
		code, _ := post(t, ts.URL+"/v1/run", tinyBody(""))
		return code == http.StatusOK
	})

	_, metricsBody := get(t, ts.URL+"/metrics")
	if !strings.Contains(metricsBody, "affinity_sims_cancelled_total") {
		t.Error("metrics missing affinity_sims_cancelled_total")
	}
	if strings.Contains(metricsBody, "affinity_sims_cancelled_total 0\n") {
		t.Error("cancelled-sim counter stuck at zero in /metrics")
	}
	if strings.Contains(metricsBody, "affinity_sims_inflight 1") {
		t.Error("in-flight gauge still counts the cancelled simulation")
	}
}

// TestSimBudgetFreesHungSlot: the wall-clock watchdog aborts a cell that
// exceeds its budget even though the client is still waiting — the
// request gets a clean 503 and the worker slot is free for the next
// cell, instead of hanging until the request timeout.
func TestSimBudgetFreesHungSlot(t *testing.T) {
	srv := New(Options{
		Runner:      core.NewRunner(1),
		MaxInflight: 1,
		SimBudget:   time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	start := time.Now()
	code, body := post(t, ts.URL+"/v1/run", longBody)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "aborted") {
		t.Fatalf("over-budget run: status %d body %q, want 503 abort", code, body)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("watchdog took %s to abort; the slot effectively hung", elapsed)
	}
	if got := srv.budgetAborts.Load(); got != 1 {
		t.Errorf("budget aborts = %d, want 1", got)
	}
	waitUntil(t, "aborted cell to release its slot", func() bool { return len(srv.sem) == 0 })

	// A cell that fits the budget runs normally on the freed slot.
	code, _ = post(t, ts.URL+"/v1/run", tinyBody(""))
	if code != http.StatusOK {
		t.Fatalf("in-budget run after abort: status %d, want 200", code)
	}
	_, metricsBody := get(t, ts.URL+"/metrics")
	if !strings.Contains(metricsBody, "affinity_sim_budget_aborts_total") {
		t.Error("metrics missing affinity_sim_budget_aborts_total")
	}
}

// TestMaxSimCyclesAborts: the virtual-clock cap is the deterministic
// budget — a cell whose windows exceed it aborts with the cycle-budget
// reason regardless of wall-clock speed.
func TestMaxSimCyclesAborts(t *testing.T) {
	srv := New(Options{
		Runner:       core.NewRunner(1),
		MaxSimCycles: 1_000_000, // below the tiny 2M-cycle warmup
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := post(t, ts.URL+"/v1/run", tinyBody(""))
	if code != http.StatusServiceUnavailable || !strings.Contains(body, core.AbortCycleBudget) {
		t.Fatalf("over-cycle-cap run: status %d body %q, want 503 %q", code, body, core.AbortCycleBudget)
	}
	if got := srv.budgetAborts.Load(); got != 1 {
		t.Errorf("budget aborts = %d, want 1", got)
	}
	if got := srv.Cache().Stats().Aborts; got != 1 {
		t.Errorf("cache refused %d aborted results, want 1", got)
	}
}
