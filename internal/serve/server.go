// Package serve exposes the simulator as a stateless HTTP JSON API in
// front of the cached, parallel core.Runner dataplane — the control/data
// split of fine-grained dataplane systems (FlexTOE, NSDI 2022) applied
// to simulation serving. Endpoints:
//
//	POST /v1/run     one simulation cell -> Result JSON
//	POST /v1/sweep   a modes × sizes grid -> NDJSON stream, one cell per line
//	GET  /v1/verify  the reproduction scorecard (EXPERIMENTS.md, executable)
//	GET  /healthz    liveness + build version + cache stats
//	GET  /metrics    Prometheus text exposition
//
// Every simulation is a pure function of its Config, so responses are
// deterministic: a cached cell is byte-identical to a freshly simulated
// one. Concurrency is bounded by a request limiter on top of the
// runner's worker pool; identical concurrent requests collapse to one
// simulation via the cache's singleflight.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/ttcp"
)

// Options configures a Server. The zero value is serviceable: default
// runner, a DefaultMaxBytes in-memory cache, 2×workers request slots,
// 5-minute request timeout.
type Options struct {
	// Runner executes sweep cells; nil selects a default-pool runner.
	Runner *core.Runner
	// Cache memoizes results; nil builds a DefaultMaxBytes in-memory
	// cache (set AFFINITY_CACHE_DIR handling up in the caller and pass
	// the cache in to persist across restarts).
	Cache *cache.Cache
	// Run executes one cell beneath the cache; nil selects core.Run.
	// Tests substitute stubs here.
	Run core.RunFunc
	// MaxInflight bounds requests doing simulation work concurrently;
	// further requests wait, and time out with 503 if no slot frees
	// within the request timeout. 0 selects 2× the runner's workers.
	MaxInflight int
	// Timeout bounds each request end to end. 0 selects 5 minutes.
	Timeout time.Duration
	// Version reported by /healthz and /metrics; "" resolves from build
	// info.
	Version string
	// DefaultWorkload is a workload spec (core.ParseWorkload syntax)
	// applied to requests that leave "workload" empty; "" keeps the
	// bulk default. Malformed values surface on the first request as a
	// 400, same as a client-sent spec.
	DefaultWorkload string
	// DefaultCoalesce is a coalescing spec (core.ParseCoalesce syntax)
	// applied to requests that leave "coalesce" empty; "" keeps the
	// legacy throttle. Malformed values surface as 400s, like
	// DefaultWorkload.
	DefaultCoalesce string
	// SimBudget is the wall-clock watchdog per simulation: a cell still
	// running after this long is cooperatively cancelled and reported
	// aborted, freeing its limiter slot instead of hanging it. 0 leaves
	// only the request timeout (whose expiry also cancels the cell).
	SimBudget time.Duration
	// MaxSimCycles caps one simulation's virtual clock: a cell that
	// would advance past this many cycles aborts instead. 0 = uncapped.
	MaxSimCycles uint64
}

// Server is the HTTP face of the simulator.
type Server struct {
	runner  *core.Runner
	cache   *cache.Cache
	run     core.RunFunc // cache-wrapped cell executor
	sem     chan struct{}
	timeout time.Duration
	version string
	// defaultWorkload/defaultCoalesce fill RunRequest.Workload and
	// RunRequest.Coalesce when a request leaves them empty.
	defaultWorkload string
	defaultCoalesce string
	metrics         *metrics
	engines         engineAgg
	// runCtl executes one cell under a cooperative cancel signal; the
	// default threads the signal into core.RunControlled, a substituted
	// Options.Run stub runs uncontrolled.
	runCtl       func(core.Config, *core.Cancel) *core.Result
	simBudget    time.Duration
	maxSimCycles uint64
	// waiting counts requests blocked on a limiter slot — the queue
	// depth a coordinator's load-aware planner weighs against.
	waiting atomic.Int64
	// sweepCancelled counts sweep cells skipped because their NDJSON
	// stream was abandoned before they were dispatched.
	sweepCancelled atomic.Uint64
	// simsCancelled counts simulations cooperatively cancelled mid-run
	// (timed-out or client-abandoned requests); budgetAborts counts runs
	// the wall-clock or cycle budget watchdog stopped.
	simsCancelled atomic.Uint64
	budgetAborts  atomic.Uint64
	mux           *http.ServeMux
}

// engineAgg accumulates scheduler counters across every result the
// server has produced (cached replays included — their stats are the
// ones the original run recorded). Worker goroutines write concurrently,
// hence the atomics.
type engineAgg struct {
	runs        atomic.Uint64
	scheduled   atomic.Uint64
	fired       atomic.Uint64
	cancelled   atomic.Uint64
	band        atomic.Uint64
	compactions atomic.Uint64
	peakPending atomic.Int64 // max over runs
}

func (a *engineAgg) add(s sim.Stats) {
	a.runs.Add(1)
	a.scheduled.Add(s.Scheduled)
	a.fired.Add(s.Fired)
	a.cancelled.Add(s.Cancelled)
	a.band.Add(s.BandScheduled)
	a.compactions.Add(s.Compactions)
	for {
		cur := a.peakPending.Load()
		if int64(s.PeakPending) <= cur || a.peakPending.CompareAndSwap(cur, int64(s.PeakPending)) {
			return
		}
	}
}

// EngineHealth is the scheduler aggregate reported by /healthz.
type EngineHealth struct {
	Runs            uint64  `json:"runs"`
	EventsScheduled uint64  `json:"events_scheduled"`
	EventsFired     uint64  `json:"events_fired"`
	EventsCancelled uint64  `json:"events_cancelled"`
	MaxPeakPending  int64   `json:"max_peak_pending"`
	BandShare       float64 `json:"band_share"`
	Compactions     uint64  `json:"compactions"`
}

func (a *engineAgg) snapshot() EngineHealth {
	h := EngineHealth{
		Runs:            a.runs.Load(),
		EventsScheduled: a.scheduled.Load(),
		EventsFired:     a.fired.Load(),
		EventsCancelled: a.cancelled.Load(),
		MaxPeakPending:  a.peakPending.Load(),
		Compactions:     a.compactions.Load(),
	}
	if h.EventsScheduled > 0 {
		h.BandShare = float64(a.band.Load()) / float64(h.EventsScheduled)
	}
	return h
}

// New assembles a Server.
func New(opts Options) *Server {
	s := &Server{
		runner:          opts.Runner,
		cache:           opts.Cache,
		timeout:         opts.Timeout,
		version:         opts.Version,
		defaultWorkload: opts.DefaultWorkload,
		defaultCoalesce: opts.DefaultCoalesce,
		metrics:         newMetrics(),
		mux:             http.NewServeMux(),
	}
	if s.runner == nil {
		s.runner = core.NewRunner(0)
	}
	if s.cache == nil {
		s.cache = cache.New(cache.DefaultMaxBytes, "")
	}
	s.simBudget = opts.SimBudget
	s.maxSimCycles = opts.MaxSimCycles
	inner := opts.Run
	if inner == nil {
		inner = core.Run
		s.runCtl = func(cfg core.Config, cancel *core.Cancel) *core.Result {
			return core.RunControlled(cfg, cancel, s.maxSimCycles)
		}
	} else {
		// A substituted stub knows nothing of cancellation; run it as-is.
		s.runCtl = func(cfg core.Config, _ *core.Cancel) *core.Result { return inner(cfg) }
	}
	s.run = func(cfg core.Config) *core.Result {
		res := s.cache.GetOrRun(cfg, inner)
		if res != nil {
			s.engines.add(res.Engine)
		}
		return res
	}
	s.runner.Use(s.run)
	if s.timeout <= 0 {
		s.timeout = 5 * time.Minute
	}
	if s.version == "" {
		s.version = buildinfo.Version()
	}
	inflight := opts.MaxInflight
	if inflight <= 0 {
		inflight = 2 * s.runner.Workers()
	}
	s.sem = make(chan struct{}, inflight)

	s.mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.handleRun))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("GET /v1/verify", s.instrument("/v1/verify", s.handleVerify))
	s.mux.HandleFunc("GET /v1/ping", s.instrument("/v1/ping", s.handlePing))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.metrics.write(w, s)
	}))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache returns the server's result cache (for stats in callers).
func (s *Server) Cache() *cache.Cache { return s.cache }

// Limit reports the request concurrency limit — the per-worker capacity
// this node advertises to a coordinator.
func (s *Server) Limit() int { return cap(s.sem) }

// statusWriter captures the status code (for metrics) and whether any
// response bytes went out (so panic recovery knows if a 500 can still
// be written).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with latency/status accounting, the
// per-request timeout, and panic recovery: a handler (or simulator)
// panic becomes one failed request — a 500 if the response has not
// started, a dropped connection if it has — and a tick of
// affinity_panics_total, never a dead server process.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				s.metrics.panicked(path)
				sw.code = http.StatusInternalServerError
				if !sw.wrote {
					httpError(w, http.StatusInternalServerError, "internal error: %v", v)
				}
			}
			s.metrics.observe(path, sw.code, time.Since(start))
		}()
		h(sw, r.WithContext(ctx))
	}
}

// acquire takes a concurrency-limiter slot, or fails with 503 when none
// frees before the request deadline. The returned release func is nil on
// failure.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) func() {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	default:
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	case <-r.Context().Done():
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "simulation capacity saturated")
		return nil
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// fieldError is a request-validation failure attributable to one JSON
// field; badRequest surfaces the field name in the error body so
// clients can map the 400 back to their input.
type fieldError struct {
	field string
	err   error
}

func (e *fieldError) Error() string { return fmt.Sprintf("%s: %v", e.field, e.err) }
func (e *fieldError) Unwrap() error { return e.err }

func fieldErrf(field, format string, args ...any) error {
	return &fieldError{field: field, err: fmt.Errorf(format, args...)}
}

// FieldOf reports the offending request field when err is a
// field-attributable validation failure from Config/Expand — the
// coordinator reuses this to render the same 400 shape as the worker
// API.
func FieldOf(err error) (string, bool) {
	var fe *fieldError
	if errors.As(err, &fe) {
		return fe.field, true
	}
	return "", false
}

// badRequest renders a validation error as a 400. Field-attributable
// failures carry a "field" key alongside "error".
func badRequest(w http.ResponseWriter, err error) {
	var fe *fieldError
	if !errors.As(err, &fe) {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(map[string]string{
		"error": fe.Error(),
		"field": fe.field,
	})
}

// runSafe executes one cell, converting a simulator panic into an
// error (and a tick of affinity_panics_total) instead of a dead
// worker goroutine.
func (s *Server) runSafe(path string, cfg core.Config) (res *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.metrics.panicked(path)
			res, err = nil, fmt.Errorf("simulation panicked: %v", v)
		}
	}()
	return s.run(cfg), nil
}

// runCell executes one cell under the server's cancellation umbrella:
// the request context, the wall-clock sim budget, and the cycle cap all
// funnel into one cooperative cancel the engine polls at ladder-bucket
// boundaries. A cell that aborts frees its limiter slot within a few
// events instead of simulating into a closed connection — this is the
// fix for the old "sims are not cancelled" leak. Aborted results are
// counted here (cancellations vs budget aborts) and returned for the
// caller to translate into its failure shape.
func (s *Server) runCell(ctx context.Context, path string, cfg core.Config) (*core.Result, error) {
	cancel := core.NewCancel()
	if s.simBudget > 0 {
		t := time.AfterFunc(s.simBudget, cancel.Cancel)
		defer t.Stop()
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			cancel.Cancel()
		case <-watchDone:
		}
	}()
	res, err := s.runSafeControlled(path, cfg, cancel)
	if res != nil && res.Aborted {
		if ctx.Err() != nil && res.AbortReason == core.AbortCancelled {
			s.simsCancelled.Add(1)
		} else {
			s.budgetAborts.Add(1)
		}
	}
	return res, err
}

// runSafeControlled is runSafe through the cache with a live cancel
// signal threaded to the run beneath it.
func (s *Server) runSafeControlled(path string, cfg core.Config, cancel *core.Cancel) (res *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.metrics.panicked(path)
			res, err = nil, fmt.Errorf("simulation panicked: %v", v)
		}
	}()
	res = s.cache.GetOrRun(cfg, func(c core.Config) *core.Result { return s.runCtl(c, cancel) })
	if res != nil && !res.Aborted {
		s.engines.add(res.Engine)
	}
	return res, nil
}

// RunRequest is the JSON body of POST /v1/run and the base of /v1/sweep.
// Zero values select the paper's defaults. Mode, direction and policy
// accept exactly the CLI's spellings (core.ParseMode and friends).
type RunRequest struct {
	Mode string `json:"mode"` // none|proc|irq|full|partition (default none)
	Dir  string `json:"dir"`  // tx|rx (default tx)
	Size int    `json:"size"` // transaction bytes (default 65536)
	Seed uint64 `json:"seed"` // default 1

	// Machine shape; defaults are the paper's 2P × 8 single-queue NICs.
	CPUs   int `json:"cpus"`
	NICs   int `json:"nics"`
	Queues int `json:"queues"`
	Conns  int `json:"conns"`

	// Policy overrides the placement implied by Mode
	// (none|process|irq|full|partition|rotate|rss).
	Policy string `json:"policy"`

	WarmupCycles  uint64 `json:"warmup_cycles"`
	MeasureCycles uint64 `json:"measure_cycles"`
	ThinkCycles   uint64 `json:"think_cycles"`
	RotateIRQs    bool   `json:"rotate_irqs"`
	// Quick selects the figure generator's -quick windows when explicit
	// cycles are not given.
	Quick bool `json:"quick"`

	// Faults is an inline fault-schedule spec (fault.Parse syntax, e.g.
	// "flap,nic=0,from=1e9,until=1.5e9;loss,rate=0.01"), validated
	// against the machine shape and run horizon. Empty means the clean
	// baseline.
	Faults string `json:"faults"`

	// Workload is an inline workload spec (core.ParseWorkload syntax,
	// e.g. "openloop,conns=100000,arrival=pareto" or "rpc,mix=web").
	// Empty means the paper's bulk ttcp workload (or the server's
	// configured default).
	Workload string `json:"workload"`

	// Coalesce is an inline interrupt-coalescing spec (core.ParseCoalesce
	// syntax, e.g. "timer,usecs=100" or "adaptive,min=5,max=250").
	// Empty means the legacy fixed throttle.
	Coalesce string `json:"coalesce"`
}

// Config resolves the request into a validated core.Config — the same
// resolution every server applies, exported so a coordinator sharing
// this build fingerprints a cell exactly as the worker that simulates
// it will.
func (rq RunRequest) Config() (core.Config, error) {
	mode := core.ModeNone
	if rq.Mode != "" {
		m, err := core.ParseMode(rq.Mode)
		if err != nil {
			return core.Config{}, &fieldError{field: "mode", err: err}
		}
		mode = m
	}
	dir := ttcp.TX
	if rq.Dir != "" {
		d, err := core.ParseDirection(rq.Dir)
		if err != nil {
			return core.Config{}, &fieldError{field: "dir", err: err}
		}
		dir = d
	}
	size := rq.Size
	if size == 0 {
		size = 65536
	}
	if size < 0 {
		return core.Config{}, fieldErrf("size", "must be positive, got %d", size)
	}
	cfg := core.DefaultConfig(mode, dir, size)
	if rq.Seed != 0 {
		cfg.Seed = rq.Seed
	}
	if rq.Quick {
		cfg.WarmupCycles = 30_000_000
		cfg.MeasureCycles = 100_000_000
	}
	if rq.WarmupCycles != 0 {
		cfg.WarmupCycles = rq.WarmupCycles
	}
	if rq.MeasureCycles != 0 {
		cfg.MeasureCycles = rq.MeasureCycles
	}
	cfg.ThinkCycles = rq.ThinkCycles
	cfg.RotateIRQs = rq.RotateIRQs
	cpus, nics, queues := 2, 8, 1
	if rq.CPUs != 0 {
		cpus = rq.CPUs
	}
	if rq.NICs != 0 {
		nics = rq.NICs
	}
	if rq.Queues != 0 {
		queues = rq.Queues
	}
	if cpus != 2 || nics != 8 || queues != 1 || rq.Conns != 0 {
		shape := topo.Uniform(cpus, nics, queues)
		shape.Conns = rq.Conns
		cfg.Topology = &shape
	}
	if rq.Policy != "" {
		pol, err := core.ParsePolicy(rq.Policy)
		if err != nil {
			return core.Config{}, &fieldError{field: "policy", err: err}
		}
		cfg.Policy = pol
	}
	// Shape gate: impossible topologies surface here as 400s, not as
	// mid-simulation panics.
	if _, err := core.PlanFor(cfg); err != nil {
		return core.Config{}, fmt.Errorf("impossible shape: %w", err)
	}
	if rq.Faults != "" {
		sched, err := fault.Parse(rq.Faults)
		if err != nil {
			return core.Config{}, &fieldError{field: "faults", err: err}
		}
		t := cfg.Topo()
		horizon := cfg.WarmupCycles + cfg.MeasureCycles
		if err := sched.Validate(len(t.NICs), t.NumCPUs, horizon); err != nil {
			return core.Config{}, &fieldError{field: "faults", err: err}
		}
		if !sched.Empty() {
			cfg.Faults = sched
		}
	}
	if rq.Workload != "" {
		spec, err := core.ParseWorkload(rq.Workload)
		if err != nil {
			return core.Config{}, &fieldError{field: "workload", err: err}
		}
		cfg.Workload = spec
	}
	if rq.Coalesce != "" {
		co, err := core.ParseCoalesce(rq.Coalesce)
		if err != nil {
			return core.Config{}, &fieldError{field: "coalesce", err: err}
		}
		cfg.Coalesce = co
	}
	return cfg, nil
}

// decode reads a strict JSON body (unknown fields are client errors).
func decode[T any](w http.ResponseWriter, r *http.Request, into *T) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// handleRun simulates (or serves from cache) one cell.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var rq RunRequest
	if !decode(w, r, &rq) {
		return
	}
	if rq.Workload == "" {
		rq.Workload = s.defaultWorkload
	}
	if rq.Coalesce == "" {
		rq.Coalesce = s.defaultCoalesce
	}
	cfg, err := rq.Config()
	if err != nil {
		badRequest(w, err)
		return
	}
	release := s.acquire(w, r)
	if release == nil {
		return
	}
	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		res, err := s.runCell(r.Context(), "/v1/run", cfg)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			httpError(w, http.StatusInternalServerError, "%v", o.err)
			return
		}
		if o.res == nil || o.res.Aborted {
			httpError(w, http.StatusServiceUnavailable, "simulation aborted: %s", abortReason(o.res))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		out, err := o.res.JSON()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encoding result: %v", err)
			return
		}
		fmt.Fprintln(w, out)
	case <-r.Context().Done():
		// The watcher inside runCell has already tripped the cancel: the
		// simulation aborts at its next engine poll and frees its slot —
		// nothing keeps burning cycles behind this 503.
		httpError(w, http.StatusServiceUnavailable, "request timed out; simulation cancelled")
	}
}

func abortReason(res *core.Result) string {
	if res == nil || res.AbortReason == "" {
		return "aborted"
	}
	return res.AbortReason
}

// SweepRequest is the JSON body of POST /v1/sweep: a base cell plus the
// grid axes. Results stream back as NDJSON, one ResultExport per line,
// in deterministic sizes-outer/modes-inner order (the figure order).
type SweepRequest struct {
	RunRequest
	Sizes []int    `json:"sizes"` // default: the paper's seven sizes
	Modes []string `json:"modes"` // default: the paper's four modes
}

// SweepCell is one expanded cell of a sweep grid: the resolved Config
// the cell simulates, plus an equivalent single-cell RunRequest that
// re-resolves to the same Config on any server sharing this build —
// the form a coordinator forwards to workers.
type SweepCell struct {
	Req RunRequest
	Cfg core.Config
}

// Expand resolves the grid into its deterministic cell list (sizes
// outer, modes inner — the figure order). Every sweep path — this
// server's handler, the coordinator's shard planner — expands through
// here, which is what makes a fleet merge byte-identical to a
// single-node stream of the same request.
func (rq SweepRequest) Expand() ([]SweepCell, error) {
	base, err := rq.Config()
	if err != nil {
		return nil, err
	}
	type modeCell struct {
		name string
		mode core.Mode
	}
	var modes []modeCell
	if len(rq.Modes) > 0 {
		for _, ms := range rq.Modes {
			m, err := core.ParseMode(ms)
			if err != nil {
				return nil, &fieldError{field: "modes", err: err}
			}
			modes = append(modes, modeCell{ms, m})
		}
	} else {
		for _, m := range core.Modes() {
			modes = append(modes, modeCell{ModeToken(m), m})
		}
	}
	sizes := rq.Sizes
	if len(sizes) == 0 {
		sizes = append([]int(nil), core.Sizes...)
	}
	cells := make([]SweepCell, 0, len(sizes)*len(modes))
	for _, size := range sizes {
		if size <= 0 {
			return nil, fieldErrf("sizes", "size must be positive, got %d", size)
		}
		for _, mc := range modes {
			cfg := base
			cfg.Mode = mc.mode
			cfg.Size = size
			req := rq.RunRequest
			req.Mode = mc.name
			req.Size = size
			cells = append(cells, SweepCell{Req: req, Cfg: cfg})
		}
	}
	return cells, nil
}

// ModeToken maps a Mode to a canonical spelling core.ParseMode accepts
// — the inverse the coordinator needs to forward a defaulted grid.
func ModeToken(m core.Mode) string {
	switch m {
	case core.ModeProc:
		return "proc"
	case core.ModeIRQ:
		return "irq"
	case core.ModeFull:
		return "full"
	case core.ModePartition:
		return "partition"
	default:
		return "none"
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var rq SweepRequest
	if !decode(w, r, &rq) {
		return
	}
	if rq.Workload == "" {
		rq.Workload = s.defaultWorkload
	}
	if rq.Coalesce == "" {
		rq.Coalesce = s.defaultCoalesce
	}
	cells, err := rq.Expand()
	if err != nil {
		badRequest(w, err)
		return
	}
	release := s.acquire(w, r)
	if release == nil {
		return
	}

	// Fan the grid across the worker pool; stream each cell as soon as
	// it and all its predecessors are done, preserving deterministic
	// order while overlapping compute with delivery.
	ctx := r.Context()
	out := make([]*core.Result, len(cells))
	ready := make([]chan struct{}, len(cells))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	go func() {
		defer release()
		s.runner.Do(len(cells), func(i int) {
			// An abandoned stream (client gone, timeout, or an earlier
			// failed cell) cancels every cell not yet dispatched:
			// coordinator retries and hedges abandon streams routinely,
			// and simulating the remainder into a closed connection
			// would burn the whole pool. Cells already simulating are
			// cooperatively cancelled through runCell's context watcher,
			// so abandonment frees the pool within a few events.
			if ctx.Err() != nil {
				s.sweepCancelled.Add(1)
				close(ready[i])
				return
			}
			// A panicking or aborted cell leaves a nil slot; the stream
			// ends there rather than skipping it, so truncation signals
			// the failure.
			res, _ := s.runCell(ctx, "/v1/sweep", cells[i].Cfg)
			if res != nil && !res.Aborted {
				out[i] = res
			}
			close(ready[i])
		})
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range cells {
		select {
		case <-ready[i]:
		case <-ctx.Done():
			// Client gone or timed out: stop streaming. In-flight cells
			// finish in the background and populate the cache;
			// undispatched cells are cancelled above.
			return
		}
		if out[i] == nil {
			return
		}
		if err := enc.Encode(out[i].Export()); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// VerifyResponse is the JSON body of GET /v1/verify.
type VerifyResponse struct {
	Checks []core.Check `json:"checks"`
	Passed int          `json:"passed"`
	Total  int          `json:"total"`
}

// handleVerify runs the 17-claim reproduction scorecard. Query
// parameters: quick=1 shrinks windows, seed=N reseeds. With the cache
// warm this is nearly free.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	quick := q.Get("quick") == "1" || q.Get("quick") == "true"
	var seed uint64 = 1
	if v := q.Get("seed"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &seed); err != nil {
			httpError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
	}
	var warmup, measure uint64
	if v := q.Get("warmup_cycles"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &warmup); err != nil {
			httpError(w, http.StatusBadRequest, "bad warmup_cycles %q", v)
			return
		}
	}
	if v := q.Get("measure_cycles"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &measure); err != nil {
			httpError(w, http.StatusBadRequest, "bad measure_cycles %q", v)
			return
		}
	}
	cfgFor := func(m core.Mode, d ttcp.Direction, size int) core.Config {
		cfg := core.DefaultConfig(m, d, size)
		cfg.Seed = seed
		if quick {
			cfg.WarmupCycles = 30_000_000
			cfg.MeasureCycles = 100_000_000
		}
		if warmup != 0 {
			cfg.WarmupCycles = warmup
		}
		if measure != 0 {
			cfg.MeasureCycles = measure
		}
		return cfg
	}
	release := s.acquire(w, r)
	if release == nil {
		return
	}
	done := make(chan []core.Check, 1)
	go func() {
		defer release()
		done <- core.VerifyShapeWith(s.runner, cfgFor)
	}()
	select {
	case checks := <-done:
		if q.Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, core.FormatChecks(checks))
			return
		}
		resp := VerifyResponse{Checks: checks, Total: len(checks)}
		for _, c := range checks {
			if c.Pass {
				resp.Passed++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, "request timed out; results will be cached for retry")
	}
}

// HealthResponse is the JSON body of GET /healthz. The build version is
// the cache-invalidation handle: a changed version means persisted cache
// entries may predate model changes and should be discarded.
type HealthResponse struct {
	Status     string       `json:"status"`
	Version    string       `json:"version"`
	Workers    int          `json:"workers"`
	Inflight   int          `json:"inflight_requests"`
	QueueDepth int          `json:"queue_depth"`
	Limit      int          `json:"request_limit"`
	Cache      cache.Stats  `json:"cache"`
	Engine     EngineHealth `json:"engine"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(HealthResponse{
		Status:     "ok",
		Version:    s.version,
		Workers:    s.runner.Workers(),
		Inflight:   len(s.sem),
		QueueDepth: int(s.waiting.Load()),
		Limit:      cap(s.sem),
		Cache:      s.cache.Stats(),
		Engine:     s.engines.snapshot(),
	})
}

// PingResponse is the JSON body of GET /v1/ping — the heartbeat a
// coordinator probes. Deliberately cheap (no allocation-heavy nesting
// beyond the engine block) and load-revealing: in-flight requests,
// limiter capacity and queue depth feed the coordinator's load-aware
// planner; version detects mixed-version fleets; sims and the engine
// aggregate roll up into the coordinator's fleet-wide /healthz totals.
type PingResponse struct {
	Status     string       `json:"status"`
	Version    string       `json:"version"`
	Workers    int          `json:"workers"`
	Inflight   int          `json:"inflight_requests"`
	Limit      int          `json:"request_limit"`
	QueueDepth int          `json:"queue_depth"`
	Sims       uint64       `json:"sims_total"`
	Engine     EngineHealth `json:"engine"`
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(PingResponse{
		Status:     "ok",
		Version:    s.version,
		Workers:    s.runner.Workers(),
		Inflight:   len(s.sem),
		Limit:      cap(s.sem),
		QueueDepth: int(s.waiting.Load()),
		Sims:       s.cache.Stats().Sims,
		Engine:     s.engines.snapshot(),
	})
}
