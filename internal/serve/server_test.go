package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ttcp"
)

// tiny are the smallest windows that still measure something; every
// test request carries them so the suite stays fast.
const (
	tinyWarmup  = 2_000_000
	tinyMeasure = 5_000_000
)

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	if opts.Runner == nil {
		opts.Runner = core.NewRunner(0)
	}
	ts := httptest.NewServer(New(opts))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func tinyBody(extra string) string {
	return fmt.Sprintf(`{"mode":"full","dir":"tx","size":65536,"warmup_cycles":%d,"measure_cycles":%d%s}`,
		tinyWarmup, tinyMeasure, extra)
}

func TestRunEndpointMatchesDirectSimulation(t *testing.T) {
	ts := newTestServer(t, Options{})
	code, body := post(t, ts.URL+"/v1/run", tinyBody(""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	cfg := core.DefaultConfig(core.ModeFull, ttcp.TX, 65536)
	cfg.WarmupCycles = tinyWarmup
	cfg.MeasureCycles = tinyMeasure
	want, err := core.Run(cfg).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimRight(body, "\n") != want {
		t.Errorf("HTTP result differs from direct simulation:\n%s\nvs\n%s", body, want)
	}
}

func TestColdAndWarmResponsesByteIdentical(t *testing.T) {
	srv := New(Options{Runner: core.NewRunner(0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, cold := post(t, ts.URL+"/v1/run", tinyBody(""))
	_, warm := post(t, ts.URL+"/v1/run", tinyBody(""))
	if cold != warm {
		t.Error("warm (cached) response differs from cold response")
	}
	st := srv.Cache().Stats()
	if st.Sims != 1 {
		t.Errorf("two identical requests ran %d simulations, want 1", st.Sims)
	}
	if st.Hits != 1 {
		t.Errorf("warm request should hit the cache, stats %+v", st)
	}
}

func TestConcurrentIdenticalRequestsSimulateOnce(t *testing.T) {
	srv := New(Options{Runner: core.NewRunner(0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const concurrent = 32
	bodies := make([]string, concurrent)
	codes := make([]int, concurrent)
	var wg sync.WaitGroup
	wg.Add(concurrent)
	for i := 0; i < concurrent; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tinyBody("")))
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			codes[i], bodies[i] = resp.StatusCode, string(b)
		}(i)
	}
	wg.Wait()
	for i := 0; i < concurrent; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d returned a different body", i)
		}
	}
	if sims := srv.Cache().Stats().Sims; sims != 1 {
		t.Errorf("%d concurrent identical requests ran %d simulations, want exactly 1 (singleflight)", concurrent, sims)
	}
}

func TestSweepStreamsDeterministicNDJSON(t *testing.T) {
	srv := New(Options{Runner: core.NewRunner(0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := fmt.Sprintf(`{"dir":"tx","warmup_cycles":%d,"measure_cycles":%d,"sizes":[128,65536],"modes":["none","full"]}`,
		tinyWarmup, tinyMeasure)
	code, cold := post(t, ts.URL+"/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, cold)
	}

	// Four NDJSON lines in sizes-outer, modes-inner order.
	var rows []core.ResultExport
	sc := bufio.NewScanner(bytes.NewReader([]byte(cold)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row core.ResultExport
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	wantOrder := []struct {
		mode string
		size int
	}{
		{"No Aff", 128}, {"Full Aff", 128}, {"No Aff", 65536}, {"Full Aff", 65536},
	}
	if len(rows) != len(wantOrder) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantOrder))
	}
	for i, w := range wantOrder {
		if rows[i].Mode != w.mode || rows[i].Size != w.size {
			t.Errorf("row %d = (%s, %d), want (%s, %d)", i, rows[i].Mode, rows[i].Size, w.mode, w.size)
		}
	}

	// Replay: byte-identical, no extra simulations.
	simsAfterCold := srv.Cache().Stats().Sims
	code, warm := post(t, ts.URL+"/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	if warm != cold {
		t.Error("warm sweep response not byte-identical to cold response")
	}
	if sims := srv.Cache().Stats().Sims; sims != simsAfterCold {
		t.Errorf("warm sweep simulated %d extra cells", sims-simsAfterCold)
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"unknown mode":     `{"mode":"sideways"}`,
		"unknown dir":      `{"dir":"up"}`,
		"unknown policy":   `{"policy":"chaos"}`,
		"unknown field":    `{"moed":"full"}`,
		"negative size":    `{"size":-5}`,
		"impossible shape": `{"cpus":64}`,
		"malformed json":   `{`,
	} {
		code, resp := post(t, ts.URL+"/v1/run", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, resp)
		}
	}
}

func TestVerifyEndpoint(t *testing.T) {
	srv := New(Options{Runner: core.NewRunner(0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := get(t, fmt.Sprintf("%s/v1/verify?warmup_cycles=%d&measure_cycles=%d", ts.URL, tinyWarmup, tinyMeasure))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp VerifyResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != len(resp.Checks) || resp.Total < 15 {
		t.Errorf("scorecard has %d checks (total %d), want the full suite", len(resp.Checks), resp.Total)
	}

	// Text format renders the scorecard; the runs are already cached.
	sims := srv.Cache().Stats().Sims
	code, text := get(t, fmt.Sprintf("%s/v1/verify?warmup_cycles=%d&measure_cycles=%d&format=text", ts.URL, tinyWarmup, tinyMeasure))
	if code != http.StatusOK || !strings.Contains(text, "checks passed") {
		t.Errorf("text scorecard: status %d, body %q", code, text)
	}
	if after := srv.Cache().Stats().Sims; after != sims {
		t.Errorf("re-verify simulated %d extra cells, want 0 (cache)", after-sims)
	}
}

func TestHealthzReportsVersionAndCache(t *testing.T) {
	srv := New(Options{Runner: core.NewRunner(0), Version: "test-build-1"})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var h HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != "test-build-1" || h.Workers <= 0 || h.Limit <= 0 {
		t.Errorf("healthz payload %+v", h)
	}
}

func TestMetricsExposition(t *testing.T) {
	srv := New(Options{Runner: core.NewRunner(0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post(t, ts.URL+"/v1/run", tinyBody(""))
	post(t, ts.URL+"/v1/run", tinyBody(""))
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		`affinity_requests_total{path="/v1/run",code="200"} 2`,
		"affinity_sims_total 1",
		"affinity_cache_hits_total 1",
		"affinity_request_seconds_count 2",
		"affinity_worker_pool_depth",
		"affinity_build_info",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestLimiterSheds(t *testing.T) {
	// A stub that blocks until released, returning a real (tiny) result
	// so rendering works.
	cfgA := core.DefaultConfig(core.ModeNone, ttcp.TX, 65536)
	cfgA.WarmupCycles, cfgA.MeasureCycles = tinyWarmup, tinyMeasure
	canned := core.Run(cfgA)
	block := make(chan struct{})
	stub := func(core.Config) *core.Result { <-block; return canned }
	defer close(block)

	srv := New(Options{
		Runner:      core.NewRunner(1),
		Cache:       cache.New(cache.DefaultMaxBytes, ""),
		Run:         stub,
		MaxInflight: 1,
		Timeout:     300 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// First request occupies the only slot (and eventually times out,
	// since the stub never returns within the budget).
	firstDone := make(chan string, 1)
	go func() {
		_, body := post(t, ts.URL+"/v1/run", `{"seed":1}`)
		firstDone <- body
	}()

	// Give the first request time to take the slot, then saturate.
	time.Sleep(50 * time.Millisecond)
	code, body := post(t, ts.URL+"/v1/run", `{"seed":2}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "capacity") {
		t.Errorf("saturated limiter: status %d body %q, want 503 capacity shed", code, body)
	}
	first := <-firstDone
	if !strings.Contains(first, "timed out") {
		t.Errorf("blocked leader should time out, got %q", first)
	}
}

// TestFieldLevel400s pins the structured validation errors: each bad
// field yields a 400 whose JSON body names the offending field, so
// clients can map the failure back to their input without parsing
// prose.
func TestFieldLevel400s(t *testing.T) {
	ts := newTestServer(t, Options{})
	for name, tc := range map[string]struct {
		body  string
		field string
	}{
		"unknown mode":      {`{"mode":"sideways"}`, "mode"},
		"unknown dir":       {`{"dir":"up"}`, "dir"},
		"unknown policy":    {`{"policy":"chaos"}`, "policy"},
		"negative size":     {`{"size":-5}`, "size"},
		"malformed faults":  {`{"faults":"flap,nic=banana"}`, "faults"},
		"unknown fault":     {`{"faults":"gremlin,rate=0.5"}`, "faults"},
		"fault nic range":   {`{"faults":"flap,nic=99,until=1e6"}`, "faults"},
		"fault past window": {tinyBody(`,"faults":"flap,from=1e12,until=2e12"`), "faults"},
		"empty fault rate":  {`{"faults":"loss,rate=0"}`, "faults"},
	} {
		code, resp := post(t, ts.URL+"/v1/run", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, resp)
			continue
		}
		var body struct {
			Error string `json:"error"`
			Field string `json:"field"`
		}
		if err := json.Unmarshal([]byte(resp), &body); err != nil {
			t.Errorf("%s: 400 body is not JSON: %v (%s)", name, err, resp)
			continue
		}
		if body.Field != tc.field {
			t.Errorf("%s: field = %q (%s), want %q", name, body.Field, resp, tc.field)
		}
		if body.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
}

// TestRunWithFaults exercises the fault plumbing end to end over HTTP:
// a lossy cell must report degradation metrics and a clean invariant
// verdict, and must differ from the clean baseline's result.
func TestRunWithFaults(t *testing.T) {
	ts := newTestServer(t, Options{})
	code, cleanBody := post(t, ts.URL+"/v1/run", tinyBody(""))
	if code != http.StatusOK {
		t.Fatalf("clean run: status %d (%s)", code, cleanBody)
	}
	code, faultBody := post(t, ts.URL+"/v1/run", tinyBody(`,"faults":"loss,rate=0.005"`))
	if code != http.StatusOK {
		t.Fatalf("faulted run: status %d (%s)", code, faultBody)
	}
	if faultBody == cleanBody {
		t.Error("faulted response identical to clean baseline")
	}
	var out struct {
		WireDrops         uint64  `json:"wire_drops"`
		GoodputRatio      float64 `json:"goodput_ratio"`
		InvariantsChecked bool    `json:"invariants_checked"`
		InvariantBad      string  `json:"invariant_violation"`
	}
	if err := json.Unmarshal([]byte(faultBody), &out); err != nil {
		t.Fatal(err)
	}
	if out.WireDrops == 0 {
		t.Error("lossy run reported zero wire drops")
	}
	if !out.InvariantsChecked || out.InvariantBad != "" {
		t.Errorf("invariants: checked=%v violation=%q", out.InvariantsChecked, out.InvariantBad)
	}
	if out.GoodputRatio <= 0 || out.GoodputRatio >= 1 {
		t.Errorf("goodput ratio %g outside (0,1)", out.GoodputRatio)
	}
}

// TestPanicRecovery pins the middleware: a panicking simulation
// becomes a 500 with a JSON error and a tick of affinity_panics_total;
// the server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	stub := func(cfg core.Config) *core.Result {
		if cfg.Seed == 99 {
			panic("injected test panic")
		}
		cfg.WarmupCycles, cfg.MeasureCycles = tinyWarmup, tinyMeasure
		return core.Run(cfg)
	}
	srv := New(Options{Runner: core.NewRunner(1), Run: stub})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, resp := post(t, ts.URL+"/v1/run", `{"seed":99}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking run: status %d (%s), want 500", code, resp)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(resp), &body); err != nil {
		t.Fatalf("500 body is not JSON: %v (%s)", err, resp)
	}
	if !strings.Contains(body.Error, "injected test panic") {
		t.Errorf("error %q does not surface the panic value", body.Error)
	}

	// The server survives and still serves good requests.
	code, resp = post(t, ts.URL+"/v1/run", tinyBody(""))
	if code != http.StatusOK {
		t.Fatalf("post-panic run: status %d (%s)", code, resp)
	}

	_, metricsBody := get(t, ts.URL+"/metrics")
	if !strings.Contains(metricsBody, `affinity_panics_total{path="/v1/run"} 1`) {
		t.Errorf("metrics missing panic counter:\n%s", metricsBody)
	}
	if !strings.Contains(metricsBody, `affinity_requests_total{path="/v1/run",code="500"} 1`) {
		t.Errorf("metrics missing 500 count")
	}
}

// TestAbandonedSweepCancelsUndispatchedCells covers the disconnect
// pathology: a client that walks away from a sweep stream must not keep
// the worker pool simulating cells nobody will read — exactly what a
// coordinator's retries and hedges do to workers routinely.
func TestAbandonedSweepCancelsUndispatchedCells(t *testing.T) {
	srv := New(Options{Runner: core.NewRunner(1)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The full default grid: 7 sizes × 4 modes = 28 tiny cells,
	// serialized on one worker so most are still undispatched when the
	// client abandons the stream after the first line.
	const cells = 28
	body := fmt.Sprintf(`{"warmup_cycles":%d,"measure_cycles":%d}`, tinyWarmup, tinyMeasure)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("first cell line: %v", err)
	}
	cancel() // abandon the stream
	resp.Body.Close()

	// The producer drains: every cell either simulated (it was already
	// dispatched) or was cancelled, and cancellation must claim the bulk.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sims := srv.Cache().Stats().Sims
		cancelled := srv.sweepCancelled.Load()
		if sims+cancelled >= cells {
			if cancelled == 0 {
				t.Fatal("no cells were cancelled after the client disconnected")
			}
			if sims >= cells {
				t.Fatalf("all %d cells simulated despite the abandoned stream", cells)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never drained: sims=%d cancelled=%d", sims, cancelled)
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, metricsBody := get(t, ts.URL+"/metrics")
	if !strings.Contains(metricsBody, "affinity_sweep_cells_cancelled_total") {
		t.Error("metrics missing affinity_sweep_cells_cancelled_total")
	}
	if strings.Contains(metricsBody, "affinity_sweep_cells_cancelled_total 0\n") {
		t.Error("cancelled-cell counter stuck at zero in /metrics")
	}
}
