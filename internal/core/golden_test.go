package core

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/ttcp"
)

// TestDefaultPlanReproducesGoldenFigures pins the refactoring contract of
// the topology layer: with the default Topology and Plan, the rendered
// Figure 3/4 sweep is byte-identical to the hard-wired 2P × 8NIC machine
// the fixture was generated from. Any change to simulated-memory
// allocation order, vector assignment, launch parameters or scheduling
// shows up here as a diff.
func TestDefaultPlanReproducesGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep; skipped in -short mode")
	}
	sizes := []int{128, 4096, 65536}
	var out string
	for _, dir := range []ttcp.Direction{ttcp.TX, ttcp.RX} {
		base := DefaultConfig(ModeNone, dir, 128)
		base.WarmupCycles = 10_000_000
		base.MeasureCycles = 30_000_000
		sw := RunSweep(base, dir, sizes, Modes())
		out += fmt.Sprintf("=== %s ===\n", dir)
		out += sw.FormatFig3()
		out += sw.FormatFig4()
	}
	want, err := os.ReadFile("testdata/figures_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("sweep output diverged from the pre-topology fixture\ngot:\n%s\nwant:\n%s", out, want)
	}
}
