package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/perf"
)

// Sampler is a statistical time profiler modelled on how Oprofile
// actually works (§4): a periodic per-CPU interrupt samples the program
// counter — here, the symbol the processor is executing — and long runs
// approximate the true time distribution. The simulator also keeps exact
// counters, so the sampler's main job is validating the methodology:
// tests check that sampling converges on the exact distribution, which
// is the property the paper relies on when it says Oprofile "gives a
// fairly accurate distribution of where events lie" over long runs.
//
// Samples are taken without perturbing the machine (the real profiler's
// NMI overhead is below our model's resolution).
type Sampler struct {
	m        *Machine
	period   uint64
	busyOnly bool

	// Samples[cpu][sym] counts hits.
	Samples []map[perf.Symbol]uint64
	Total   uint64
	Idle    uint64

	stopped bool
}

// NewSampler attaches a sampler to a machine with the given sampling
// period in cycles (Oprofile-style: tens of microseconds). Sampling
// starts immediately and runs until Stop.
func (m *Machine) NewSampler(periodCycles uint64) *Sampler {
	if periodCycles == 0 {
		panic("core: sampler needs a period")
	}
	s := &Sampler{m: m, period: periodCycles}
	for range m.K.CPUs {
		s.Samples = append(s.Samples, make(map[perf.Symbol]uint64))
	}
	for i := range m.K.CPUs {
		i := i
		// Stagger per-CPU sampling so the CPUs are not sampled in phase.
		first := periodCycles/uint64(len(m.K.CPUs)+1)*uint64(i+1) + 1
		m.Eng.After(first, func() { s.tick(i) })
	}
	return s
}

func (s *Sampler) tick(cpu int) {
	if s.stopped {
		return
	}
	kc := s.m.K.CPUs[cpu]
	s.Total++
	if kc.IsIdle() {
		s.Idle++
	} else {
		s.Samples[cpu][kc.CurrentSymbol()]++
	}
	s.m.Eng.After(s.m.Eng.RNG().Jitter(s.period, 0.05), func() { s.tick(cpu) })
}

// Stop ends sampling.
func (s *Sampler) Stop() { s.stopped = true }

// BinShares aggregates the samples into the paper's bins, as a share of
// busy samples.
func (s *Sampler) BinShares() map[perf.Bin]float64 {
	tab := s.m.Tab
	counts := make(map[perf.Bin]uint64)
	var busy uint64
	for _, m := range s.Samples {
		for sym, n := range m {
			b := tab.Bin(sym)
			if b == perf.BinIdle {
				continue
			}
			counts[b] += n
			busy += n
		}
	}
	out := make(map[perf.Bin]float64)
	if busy == 0 {
		return out
	}
	for b, n := range counts {
		out[b] = float64(n) / float64(busy)
	}
	return out
}

// TopSymbols lists the most-sampled symbols on one CPU.
func (s *Sampler) TopSymbols(cpu, n int) []string {
	type kv struct {
		sym perf.Symbol
		n   uint64
	}
	var rows []kv
	for sym, cnt := range s.Samples[cpu] {
		rows = append(rows, kv{sym, cnt})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].sym < rows[j].sym
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s:%d", s.m.Tab.Name(r.sym), r.n))
	}
	return out
}

// Format renders the sampled bin distribution.
func (s *Sampler) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sampled %d ticks (%d idle)\n", s.Total, s.Idle)
	shares := s.BinShares()
	for _, bin := range perf.StackBins() {
		fmt.Fprintf(&b, "  %-10s %6.1f%%\n", bin, 100*shares[bin])
	}
	return b.String()
}
