package core

import (
	"encoding/json"
	"testing"

	"repro/internal/ttcp"
)

// controlConfig is the smallest window that still completes both phases,
// so cancellation tests spend their time in the code path, not the sim.
func controlConfig() Config {
	cfg := DefaultConfig(ModeFull, ttcp.TX, 65536)
	cfg.WarmupCycles = 2_000_000
	cfg.MeasureCycles = 5_000_000
	return cfg
}

// TestRunControlledIdentityWithRun: an armed-but-idle control surface
// must be invisible — same exported bytes as plain Run.
func TestRunControlledIdentityWithRun(t *testing.T) {
	cfg := controlConfig()
	want, err := json.Marshal(Run(cfg).Export())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(RunControlled(cfg, NewCancel(), 0).Export())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("controlled run diverged from Run:\n%s\nvs\n%s", got, want)
	}
	// The nil/0 fast path is literally Run; exercise it for coverage.
	got3, err := json.Marshal(RunControlled(cfg, nil, 0).Export())
	if err != nil {
		t.Fatal(err)
	}
	if string(got3) != string(want) {
		t.Fatal("nil-control passthrough diverged from Run")
	}
}

// TestRunControlledCancel: a pre-set cancel aborts the run at its first
// poll point — the result is a failure signal, not data.
func TestRunControlledCancel(t *testing.T) {
	cancel := NewCancel()
	cancel.Cancel()
	res := RunControlled(controlConfig(), cancel, 0)
	if !res.Aborted {
		t.Fatal("cancelled run did not set Aborted")
	}
	if res.AbortReason != AbortCancelled {
		t.Fatalf("AbortReason = %q, want %q", res.AbortReason, AbortCancelled)
	}
}

// TestRunControlledCycleBudget: a budget smaller than the warmup window
// aborts the run with the budget reason.
func TestRunControlledCycleBudget(t *testing.T) {
	res := RunControlled(controlConfig(), nil, 1_000_000)
	if !res.Aborted {
		t.Fatal("over-budget run did not set Aborted")
	}
	if res.AbortReason != AbortCycleBudget {
		t.Fatalf("AbortReason = %q, want %q", res.AbortReason, AbortCycleBudget)
	}
}

// TestRunControlledBudgetAboveRunIsIdentity: a generous budget must not
// perturb the trajectory.
func TestRunControlledBudgetAboveRunIsIdentity(t *testing.T) {
	cfg := controlConfig()
	want, _ := json.Marshal(Run(cfg).Export())
	got, _ := json.Marshal(RunControlled(cfg, NewCancel(), cfg.WarmupCycles+cfg.MeasureCycles+1_000_000_000).Export())
	if string(got) != string(want) {
		t.Fatal("budget-armed run diverged from Run")
	}
}

// TestAbortedResultNotExported: Aborted/AbortReason are internal failure
// markers and must never leak into the export schema (they would break
// byte-identity between controlled and plain runs). The schema is checked
// on a completed run — an aborted result's export is not even
// serializable (its half-filled metrics divide to NaN), which is its own
// guarantee that no caller can mistake one for data.
func TestAbortedResultNotExported(t *testing.T) {
	b, err := json.Marshal(Run(controlConfig()).Export())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for k := range m {
		if k == "aborted" || k == "abort_reason" {
			t.Fatalf("abort marker %q leaked into ResultExport", k)
		}
	}
	cancel := NewCancel()
	cancel.Cancel()
	if _, err := json.Marshal(RunControlled(controlConfig(), cancel, 0).Export()); err == nil {
		t.Fatal("an aborted result marshalled cleanly; expected its partial metrics to refuse serialization")
	}
}
