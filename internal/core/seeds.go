package core

import (
	"fmt"
	"math"
)

// Aggregate summarizes the same configuration measured under several
// seeds: mean and standard deviation of the headline metrics. The paper
// reports single long runs; the simulator is deterministic per seed, so
// seed variation plays the role of run-to-run variance.
type Aggregate struct {
	Cfg   Config
	Seeds int

	MbpsMean, MbpsStd float64
	CostMean, CostStd float64
	UtilMean          float64

	Results []*Result
}

// RunSeeds measures cfg under n consecutive seeds starting at cfg.Seed.
// Seeds run concurrently on the default runner; use NewRunner(1).RunSeeds
// for serial execution. Results are bit-identical either way.
func RunSeeds(cfg Config, n int) Aggregate {
	if n <= 0 {
		panic("core: RunSeeds needs at least one seed")
	}
	return defaultRunner.RunSeeds(cfg, n)
}

// aggregate folds per-seed results (already in seed order) into the
// mean/stdev summary.
func aggregate(cfg Config, results []*Result) Aggregate {
	agg := Aggregate{Cfg: cfg, Seeds: len(results), Results: results}
	var mbps, cost, util []float64
	for _, r := range results {
		mbps = append(mbps, r.Mbps)
		cost = append(cost, r.CostGHzPerGbps)
		util = append(util, r.AvgUtil)
	}
	agg.MbpsMean, agg.MbpsStd = meanStd(mbps)
	agg.CostMean, agg.CostStd = meanStd(cost)
	agg.UtilMean, _ = meanStd(util)
	return agg
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// String renders the aggregate on one line.
func (a Aggregate) String() string {
	return fmt.Sprintf("%s %s %6dB over %d seeds: %7.1f±%.1f Mb/s  cost=%.2f±%.02f GHz/Gbps  util=%.0f%%",
		a.Cfg.Mode, a.Cfg.Dir, a.Cfg.Size, a.Seeds,
		a.MbpsMean, a.MbpsStd, a.CostMean, a.CostStd, 100*a.UtilMean)
}
