package core

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/ttcp"
)

// WorkersEnv names the environment variable that overrides the default
// worker count (a positive integer). It loses to an explicit NewRunner
// argument.
const WorkersEnv = "AFFINITY_WORKERS"

// DefaultWorkers resolves the worker count used when none is given:
// WorkersEnv if set to a positive integer, otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// RunFunc executes one experiment cell. Run is the canonical
// implementation; a cache layer substitutes a memoizing one.
type RunFunc func(Config) *Result

// Runner fans independent experiment cells out across a bounded pool of
// goroutines and reassembles their results in deterministic input order.
//
// Every simulation remains single-threaded and seeded, and distinct
// machines share no mutable state, so results from a parallel run are
// bit-identical to a sequential run of the same cells — parallelism
// changes wall-clock time only. A Runner with one worker executes jobs
// serially on the calling goroutine, which is the opt-out for callers
// that need serial execution (debugging, tracing, fair timing).
//
// The zero value is ready to use and resolves its worker count lazily
// via DefaultWorkers.
type Runner struct {
	workers int
	// run, when set, replaces Run for every cell this runner executes
	// (RunConfigs, RunSweep, RunSeeds, VerifyShapeWith). Because each
	// cell is a pure function of its Config, substituting a memoizing
	// RunFunc changes wall-clock time only, never results.
	run atomic.Pointer[RunFunc]
}

// NewRunner returns a runner with the given worker bound. workers <= 0
// selects DefaultWorkers (GOMAXPROCS, overridable via WorkersEnv);
// workers == 1 forces serial execution.
func NewRunner(workers int) *Runner {
	if workers < 0 {
		workers = 0
	}
	return &Runner{workers: workers}
}

// defaultRunner backs the package-level RunSweep/RunSeeds/RunAll helpers.
var defaultRunner Runner

// Workers reports the resolved worker bound.
func (r *Runner) Workers() int {
	if r == nil || r.workers <= 0 {
		return DefaultWorkers()
	}
	return r.workers
}

// Use installs run as this runner's cell executor (nil restores Run).
// The replacement must be result-transparent — return exactly what Run
// would for the same Config — which any Fingerprint-keyed cache of
// deterministic runs is. Returns the runner for chaining.
func (r *Runner) Use(run RunFunc) *Runner {
	if run == nil {
		r.run.Store(nil)
	} else {
		r.run.Store(&run)
	}
	return r
}

// runFunc resolves the cell executor: the installed RunFunc, or Run.
func (r *Runner) runFunc() RunFunc {
	if r == nil {
		return Run
	}
	if f := r.run.Load(); f != nil {
		return *f
	}
	return Run
}

// UseDefault installs run on the default runner backing the package-level
// RunAll/RunSweep/RunSeeds/VerifyShape helpers (nil restores Run). This
// is how a process-wide result cache makes every facade entry point
// incremental.
func UseDefault(run RunFunc) { defaultRunner.Use(run) }

// Do executes job(i) for every i in [0, n), each exactly once, and
// returns when all have completed. With more than one worker, jobs are
// pulled from a shared counter by up to Workers() goroutines; with one
// worker they run in index order on the calling goroutine. A panicking
// job is re-panicked on the calling goroutine after the pool drains.
func (r *Runner) Do(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	w := r.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = p
							}
							panicMu.Unlock()
						}
					}()
					job(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// RunConfigs runs every configuration and returns the results in input
// order.
func (r *Runner) RunConfigs(cfgs []Config) []*Result {
	run := r.runFunc()
	out := make([]*Result, len(cfgs))
	r.Do(len(cfgs), func(i int) { out[i] = run(cfgs[i]) })
	return out
}

// RunAll runs every configuration on the default runner, in input order.
func RunAll(cfgs []Config) []*Result { return defaultRunner.RunConfigs(cfgs) }

// RunSweep measures every (mode, size) cell of one direction sweep on
// this runner's pool. Cell order (sizes outer, modes inner) and results
// are identical to the serial sweep.
func (r *Runner) RunSweep(base Config, dir ttcp.Direction, sizes []int, modes []Mode) Sweep {
	cfgs := make([]Config, 0, len(sizes)*len(modes))
	for _, size := range sizes {
		for _, mode := range modes {
			cfg := base
			cfg.Mode = mode
			cfg.Dir = dir
			cfg.Size = size
			cfgs = append(cfgs, cfg)
		}
	}
	results := r.RunConfigs(cfgs)
	sw := Sweep{Dir: dir, Points: make([]SweepPoint, 0, len(results))}
	for i, res := range results {
		sw.Points = append(sw.Points, SweepPoint{
			Mode: cfgs[i].Mode,
			Size: cfgs[i].Size,
			Mbps: res.Mbps,
			Util: res.AvgUtil,
			Cost: res.CostGHzPerGbps,
		})
	}
	return sw
}

// RunSeeds measures cfg under n consecutive seeds starting at cfg.Seed on
// this runner's pool and aggregates the headline metrics in seed order.
func (r *Runner) RunSeeds(cfg Config, n int) Aggregate {
	if n <= 0 {
		panic("core: RunSeeds needs at least one seed")
	}
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + uint64(i)
	}
	return aggregate(cfg, r.RunConfigs(cfgs))
}
