package core

import (
	"testing"

	"repro/internal/ttcp"
)

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{
		"none": ModeNone, "no": ModeNone, "noaff": ModeNone, "NONE": ModeNone,
		"proc": ModeProc, "process": ModeProc,
		"irq": ModeIRQ, "int": ModeIRQ, "interrupt": ModeIRQ,
		"full": ModeFull, " full ": ModeFull,
		"partition": ModePartition, "part": ModePartition,
	}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode should reject unknown spellings")
	}
}

func TestParseDirection(t *testing.T) {
	cases := map[string]ttcp.Direction{
		"tx": ttcp.TX, "send": ttcp.TX, "transmit": ttcp.TX, "TX": ttcp.TX,
		"rx": ttcp.RX, "recv": ttcp.RX, "receive": ttcp.RX,
	}
	for in, want := range cases {
		got, err := ParseDirection(in)
		if err != nil || got != want {
			t.Errorf("ParseDirection(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Error("ParseDirection should reject unknown spellings")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]string{
		"none": "none", "process": "process", "proc": "process",
		"irq": "irq", "int": "irq", "interrupt": "irq",
		"full": "full", "partition": "partition", "part": "partition",
		"rotate": "rotate", "rss": "rss", "RSS": "rss",
	} {
		pol, err := ParsePolicy(in)
		if err != nil || pol.Name() != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want policy %q", in, pol, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy should reject unknown names")
	}
}
