package core

import (
	"testing"

	"repro/internal/ttcp"
	"repro/internal/workload"
)

// mustWorkload parses a workload spec or fails the test.
func mustWorkload(t *testing.T, spec string) *workload.Spec {
	t.Helper()
	s, err := ParseWorkload(spec)
	if err != nil {
		t.Fatalf("ParseWorkload(%q): %v", spec, err)
	}
	return s
}

// TestExplicitBulkSpecMatchesNil pins the workload layer's compatibility
// contract: Config.Workload = &Spec{Kind: bulk} must simulate
// bit-identically to the pre-workload-layer nil default — same goodput,
// same counters, same exported JSON.
func TestExplicitBulkSpecMatchesNil(t *testing.T) {
	base := runnerTestConfig(ModeFull, ttcp.TX, 65536)

	explicit := base
	explicit.Workload = mustWorkload(t, "bulk")

	rNil := Run(base)
	rBulk := Run(explicit)
	jNil, err := rNil.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jBulk, err := rBulk.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if jNil != jBulk {
		t.Errorf("explicit bulk spec diverged from nil default:\nnil:  %s\nbulk: %s", jNil, jBulk)
	}
	if rBulk.Requests != 0 || rBulk.Latency != nil || rBulk.ConnsGenerated != 0 {
		t.Error("bulk run populated open-loop/latency fields")
	}
}

// TestRPCWorkloadRecordsLatency sanity-checks the closed-loop
// request/response workload: transactions complete, per-request latency
// is recorded, and the quantiles are ordered.
func TestRPCWorkloadRecordsLatency(t *testing.T) {
	cfg := runnerTestConfig(ModeFull, ttcp.TX, 65536)
	cfg.Workload = mustWorkload(t, "rpc,req=384,rsp=8192,mix=fixed")

	r := Run(cfg)
	if r.Transactions == 0 {
		t.Fatal("rpc run completed no transactions")
	}
	if r.Requests == 0 {
		t.Fatal("rpc run recorded no request latencies")
	}
	if r.LatencyP50Cycles == 0 ||
		r.LatencyP50Cycles > r.LatencyP99Cycles ||
		r.LatencyP99Cycles > r.LatencyP999Cycles {
		t.Errorf("latency quantiles disordered: p50=%d p99=%d p999=%d",
			r.LatencyP50Cycles, r.LatencyP99Cycles, r.LatencyP999Cycles)
	}
	if r.Bytes == 0 {
		t.Error("rpc run reports no delivered bytes")
	}
}

// TestOpenLoopCellAccounting runs a small connection-churn cell to
// completion and checks the books: every generated connection becomes
// terminal, completions carry latency samples, and the cell halts before
// the run-to-completion horizon.
func TestOpenLoopCellAccounting(t *testing.T) {
	cfg := DefaultConfig(ModeFull, ttcp.TX, 65536)
	cfg.Workload = mustWorkload(t, "openloop,conns=2000")

	r := Run(cfg)
	if r.ConnsGenerated != 2000 {
		t.Fatalf("generated %d connections, want 2000", r.ConnsGenerated)
	}
	if r.Transactions+r.ConnsAbandoned < r.ConnsGenerated {
		t.Fatalf("cell not terminal: completed=%d abandoned=%d generated=%d",
			r.Transactions, r.ConnsAbandoned, r.ConnsGenerated)
	}
	if r.Requests != r.Transactions {
		t.Errorf("latency samples %d != completions %d", r.Requests, r.Transactions)
	}
	if r.Transactions > 0 && r.LatencyP50Cycles == 0 {
		t.Error("completions recorded but p50 is zero")
	}
	if r.ElapsedCycles >= openLoopHorizon {
		t.Error("cell did not halt before the run-to-completion horizon")
	}
	// At the default offered load this small cell is uncontended: every
	// connection should complete.
	if r.ConnsAbandoned != 0 || r.SynDrops != 0 {
		t.Errorf("uncontended cell dropped work: abandoned=%d syndrops=%d",
			r.ConnsAbandoned, r.SynDrops)
	}
}

// TestParallelOpenLoopChurnDeterminism pins connection-churn determinism
// across runner parallelism: a batch of open-loop cells must export the
// same JSON whether simulated serially or on four workers.
func TestParallelOpenLoopChurnDeterminism(t *testing.T) {
	configs := make([]Config, 0, 4)
	for _, spec := range []string{
		"openloop,conns=1500",
		"openloop,conns=1500,arrival=pareto",
		"openloop,conns=1500,mix=short",
		"openloop,conns=1500,interval=10000",
	} {
		cfg := DefaultConfig(ModeFull, ttcp.TX, 65536)
		cfg.Workload = mustWorkload(t, spec)
		configs = append(configs, cfg)
	}

	serial := NewRunner(1).RunConfigs(configs)
	parallel := NewRunner(4).RunConfigs(configs)
	for i := range configs {
		js, err := serial[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		jp, err := parallel[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		if js != jp {
			t.Errorf("config %d diverged across parallelism:\nserial:   %s\nparallel: %s", i, js, jp)
		}
	}
}
