package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/perf"
	"repro/internal/ttcp"
)

// SweepPoint is one (mode, size) cell of the paper's Figure 3 / Figure 4
// sweep for one direction.
type SweepPoint struct {
	Mode Mode
	Size int
	// Mbps is goodput; Util the mean CPU utilization; Cost the paper's
	// GHz/Gbps metric.
	Mbps float64
	Util float64
	Cost float64
}

// Sweep holds a full direction sweep: modes × sizes.
type Sweep struct {
	Dir    ttcp.Direction
	Points []SweepPoint
}

// RunSweep measures every affinity mode at every transaction size for one
// direction — the data behind Figures 3 and 4. The base config supplies
// everything except mode and size. Cells run concurrently on the default
// runner; use NewRunner(1).RunSweep for serial execution. Results are
// bit-identical either way.
func RunSweep(base Config, dir ttcp.Direction, sizes []int, modes []Mode) Sweep {
	return defaultRunner.RunSweep(base, dir, sizes, modes)
}

// Point finds a sweep cell.
func (s Sweep) Point(mode Mode, size int) (SweepPoint, bool) {
	for _, p := range s.Points {
		if p.Mode == mode && p.Size == size {
			return p, true
		}
	}
	return SweepPoint{}, false
}

func (s Sweep) sizes() []int {
	set := map[int]bool{}
	for _, p := range s.Points {
		set[p.Size] = true
	}
	var out []int
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (s Sweep) modes() []Mode {
	set := map[Mode]bool{}
	for _, p := range s.Points {
		set[p.Mode] = true
	}
	var out []Mode
	for _, m := range Modes() {
		if set[m] {
			out = append(out, m)
		}
	}
	return out
}

// FormatFig3 renders the sweep as the paper's Figure 3: bandwidth and CPU
// utilization per transaction size for each affinity mode.
func (s Sweep) FormatFig3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s Bandwidth (Mb/s) and CPU Utilization\n", s.Dir)
	fmt.Fprintf(&b, "%8s", "size")
	modes := s.modes()
	for _, m := range modes {
		fmt.Fprintf(&b, " %9s %6s", m.String()+" BW", "CPU")
	}
	b.WriteByte('\n')
	for _, size := range s.sizes() {
		fmt.Fprintf(&b, "%8d", size)
		for _, m := range modes {
			p, _ := s.Point(m, size)
			fmt.Fprintf(&b, " %9.1f %5.0f%%", p.Mbps, 100*p.Util)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFig4 renders the sweep as the paper's Figure 4: processing cost
// in GHz/Gbps per transaction size for each affinity mode.
func (s Sweep) FormatFig4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s Cost in GHz/Gbps\n", s.Dir)
	fmt.Fprintf(&b, "%8s", "size")
	modes := s.modes()
	for _, m := range modes {
		fmt.Fprintf(&b, " %9s", m)
	}
	b.WriteByte('\n')
	for _, size := range s.sizes() {
		fmt.Fprintf(&b, "%8d", size)
		for _, m := range modes {
			p, _ := s.Point(m, size)
			fmt.Fprintf(&b, " %9.2f", p.Cost)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ExtremePoints are the four operating points §6 analyzes in depth.
func ExtremePoints() []struct {
	Dir  ttcp.Direction
	Size int
} {
	return []struct {
		Dir  ttcp.Direction
		Size int
	}{
		{ttcp.TX, 65536},
		{ttcp.TX, 128},
		{ttcp.RX, 65536},
		{ttcp.RX, 128},
	}
}

// FormatFig5Pair renders Figure 5 for a no-affinity / full-affinity pair.
func FormatFig5Pair(base, full *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %dB — %% of run time attributed per event (cost×count/cycles)\n",
		base.Cfg.Dir, base.Cfg.Size)
	bi := Indicators(base)
	fi := Indicators(full)
	fmt.Fprintf(&b, "%-14s %6s %9s %9s\n", "Event", "Cost", "No Aff", "Full Aff")
	for i := range bi {
		name := bi[i].Event.String()
		cost := fmt.Sprintf("%d", bi[i].Cost)
		if bi[i].Event == perf.Instructions {
			name, cost = "Instr", "0.33"
		}
		fmt.Fprintf(&b, "%-14s %6s %8.1f%% %8.1f%%\n", name, cost, 100*bi[i].Share, 100*fi[i].Share)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated rows (size, mode, mbps, util,
// cost) for external plotting.
func (s Sweep) CSV() string {
	var b strings.Builder
	b.WriteString("dir,size,mode,mbps,util,cost_ghz_per_gbps\n")
	for _, size := range s.sizes() {
		for _, m := range s.modes() {
			p, _ := s.Point(m, size)
			fmt.Fprintf(&b, "%s,%d,%s,%.2f,%.4f,%.4f\n", s.Dir, size, m, p.Mbps, p.Util, p.Cost)
		}
	}
	return b.String()
}
