package core

import (
	"fmt"
	"strings"

	"repro/internal/perf"
)

// DumpState renders a point-in-time diagnostic snapshot of the machine:
// per-CPU scheduler state, per-connection protocol state, NIC statistics
// and pool occupancy. It is the simulator's /proc: meant for debugging
// experiments and workloads built on the library, not for measurement.
func (m *Machine) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine @ %d cycles (%s %s %dB, %s)\n",
		uint64(m.Eng.Now()), m.Cfg.Dir, "size", m.Cfg.Size, m.Cfg.Mode)

	for _, c := range m.K.CPUs {
		state := "busy"
		if c.IsIdle() {
			state = "idle"
		}
		fmt.Fprintf(&b, "  cpu%d: %-4s rq=%d idle=%dM cycles current=%s\n",
			c.ID(), state, c.QueueLen(), c.IdleCycles()/1_000_000,
			m.Tab.Name(c.CurrentSymbol()))
	}

	for i, s := range m.Sockets {
		fmt.Fprintf(&b, "  conn%d [%s]: inflight=%-6d rcvq=%-6d segs in/out=%d/%d acks in/out=%d/%d backlogged=%d\n",
			i, s.State(), s.InFlight(), s.RcvQueued(),
			s.SegsIn(), s.SegsOut(), s.AcksIn(), s.AcksOut(), s.BacklogDeferrals())
	}

	for _, n := range m.NICs {
		fmt.Fprintf(&b, "  nic%d (vec %#x): tx %d frames/%d MB, rx %d frames/%d MB, irqs=%d drops=%d\n",
			n.ID(), int(n.Vector()), n.TxFrames, n.TxBytes>>20,
			n.RxFrames, n.RxBytes>>20, n.IRQsRaised, n.RxDropped)
	}

	p := m.St.Pool
	fmt.Fprintf(&b, "  pool: %d skbs free, %d clones free (allocs %d/%d, refills %d, drains %d)\n",
		p.FreeSKBCount(), p.FreeCloneCount(), p.SKBAllocs, p.CloneAllocs, p.Refills, p.Drains)

	st := m.K.Stats
	fmt.Fprintf(&b, "  sched: wakes same=%d xIdle=%d xBusy=%d xQuiet=%d migrations=%d steals=%d\n",
		st.WakeSameCPU, st.WakeCrossIdle, st.WakeCrossBusy, st.WakeCrossQuiet,
		st.Migrations, st.Steals)
	fmt.Fprintf(&b, "  events: irqs=%d ipis=%d clears=%d llc=%d\n",
		m.Ctr.Total(perf.IRQsReceived), m.Ctr.Total(perf.IPIsReceived),
		m.Ctr.Total(perf.MachineClears), m.Ctr.Total(perf.LLCMisses))
	return b.String()
}
