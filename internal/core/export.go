package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/perf"
)

// ResultExport is the serializable view of a Result: headline metrics
// plus the per-bin characterization, suitable for JSON or CSV pipelines.
type ResultExport struct {
	Mode string  `json:"mode"`
	Dir  string  `json:"dir"`
	Size int     `json:"size"`
	Seed uint64  `json:"seed"`
	Mbps float64 `json:"mbps"`
	Util float64 `json:"util"`
	Cost float64 `json:"cost_ghz_per_gbps"`

	Transactions uint64 `json:"transactions"`
	Bytes        uint64 `json:"bytes"`
	Drops        uint64 `json:"drops"`

	// Degradation metrics and the invariant verdict. Wire volume and
	// goodput ratio are reported for every run; the loss counters and
	// invariant verdict are zero-valued on clean runs and omitted.
	Retransmits        uint64   `json:"retransmits,omitempty"`
	WireDrops          uint64   `json:"wire_drops,omitempty"`
	WireBytes          uint64   `json:"wire_bytes,omitempty"`
	GoodputRatio       float64  `json:"goodput_ratio,omitempty"`
	FlapRecoveryCycles []uint64 `json:"flap_recovery_cycles,omitempty"`
	InvariantsChecked  bool     `json:"invariants_checked,omitempty"`
	InvariantViolation string   `json:"invariant_violation,omitempty"`

	// Reordering metrics: go-back-N out-of-order drops across both
	// ends, the dup ACKs they drew, dup-ACK-triggered retransmission
	// episodes, and flow-director queue re-programs. Zero-valued and
	// omitted on statically-steered clean runs.
	OutOfOrder      uint64 `json:"out_of_order,omitempty"`
	DupAcks         uint64 `json:"dup_acks,omitempty"`
	FastRetransmits uint64 `json:"fast_retransmits,omitempty"`
	FlowResteers    uint64 `json:"flow_resteers,omitempty"`

	// Workload-layer metrics: request-latency quantiles (cycles) for
	// latency-recording workloads and the open-loop cell's churn
	// accounting. Zero-valued and omitted for the bulk workload.
	Requests          uint64 `json:"requests,omitempty"`
	LatencyP50Cycles  uint64 `json:"latency_p50_cycles,omitempty"`
	LatencyP99Cycles  uint64 `json:"latency_p99_cycles,omitempty"`
	LatencyP999Cycles uint64 `json:"latency_p999_cycles,omitempty"`
	ConnsGenerated    uint64 `json:"conns_generated,omitempty"`
	ConnsAbandoned    uint64 `json:"conns_abandoned,omitempty"`
	SynDrops          uint64 `json:"syn_drops,omitempty"`

	OverallCPI float64 `json:"overall_cpi"`
	OverallMPI float64 `json:"overall_mpi"`

	Clears     uint64 `json:"machine_clears"`
	LLCMisses  uint64 `json:"llc_misses"`
	IPIs       uint64 `json:"ipis"`
	IRQs       uint64 `json:"irqs"`
	SpinCycles uint64 `json:"spin_cycles"`

	Bins map[string]BinExport `json:"bins"`
}

// BinExport is one functional bin's exported profile.
type BinExport struct {
	PctCycles float64 `json:"pct_cycles"`
	CPI       float64 `json:"cpi"`
	MPI       float64 `json:"mpi"`
}

// Export builds the serializable view.
func (r *Result) Export() ResultExport {
	tab := BaselineTable(r)
	out := ResultExport{
		Mode:         r.Cfg.Mode.String(),
		Dir:          r.Cfg.Dir.String(),
		Size:         r.Cfg.Size,
		Seed:         r.Cfg.Seed,
		Mbps:         r.Mbps,
		Util:         r.AvgUtil,
		Cost:         r.CostGHzPerGbps,
		Transactions: r.Transactions,
		Bytes:        r.Bytes,
		Drops:        r.Drops,

		Retransmits:        r.Retransmits,
		WireDrops:          r.WireDrops,
		WireBytes:          r.WireBytes,
		GoodputRatio:       r.GoodputRatio,
		FlapRecoveryCycles: r.FlapRecoveryCycles,
		InvariantsChecked:  r.InvariantsChecked,
		InvariantViolation: r.InvariantViolation,

		OutOfOrder:      r.OutOfOrder,
		DupAcks:         r.DupAcks,
		FastRetransmits: r.FastRetransmits,
		FlowResteers:    r.FlowResteers,

		Requests:          r.Requests,
		LatencyP50Cycles:  r.LatencyP50Cycles,
		LatencyP99Cycles:  r.LatencyP99Cycles,
		LatencyP999Cycles: r.LatencyP999Cycles,
		ConnsGenerated:    r.ConnsGenerated,
		ConnsAbandoned:    r.ConnsAbandoned,
		SynDrops:          r.SynDrops,

		OverallCPI: tab.Overall.CPI,
		OverallMPI: tab.Overall.MPI,
		Clears:     r.Ctr.Total(perf.MachineClears),
		LLCMisses:  r.Ctr.Total(perf.LLCMisses),
		IPIs:       r.Ctr.Total(perf.IPIsReceived),
		IRQs:       r.Ctr.Total(perf.IRQsReceived),
		SpinCycles: r.Ctr.Total(perf.SpinCycles),
		Bins:       make(map[string]BinExport, len(tab.Rows)),
	}
	for _, row := range tab.Rows {
		out.Bins[row.Bin.String()] = BinExport{
			PctCycles: row.PctCycles,
			CPI:       row.CPI,
			MPI:       row.MPI,
		}
	}
	return out
}

// JSON renders the export as indented JSON.
func (r *Result) JSON() (string, error) {
	b, err := json.MarshalIndent(r.Export(), "", "  ")
	if err != nil {
		return "", fmt.Errorf("core: encoding result: %w", err)
	}
	return string(b), nil
}

// CSVHeader is the column list matching Result.CSVRow.
func CSVHeader() string {
	return "mode,dir,size,seed,mbps,util,cost_ghz_per_gbps,transactions,bytes,drops,out_of_order,dup_acks,fast_retransmits,flow_resteers,overall_cpi,overall_mpi,machine_clears,llc_misses,ipis,irqs,spin_cycles"
}

// CSVRow renders the headline metrics as one CSV line.
func (r *Result) CSVRow() string {
	e := r.Export()
	return strings.Join([]string{
		e.Mode, e.Dir,
		fmt.Sprintf("%d", e.Size),
		fmt.Sprintf("%d", e.Seed),
		fmt.Sprintf("%.2f", e.Mbps),
		fmt.Sprintf("%.4f", e.Util),
		fmt.Sprintf("%.4f", e.Cost),
		fmt.Sprintf("%d", e.Transactions),
		fmt.Sprintf("%d", e.Bytes),
		fmt.Sprintf("%d", e.Drops),
		fmt.Sprintf("%d", e.OutOfOrder),
		fmt.Sprintf("%d", e.DupAcks),
		fmt.Sprintf("%d", e.FastRetransmits),
		fmt.Sprintf("%d", e.FlowResteers),
		fmt.Sprintf("%.3f", e.OverallCPI),
		fmt.Sprintf("%.5f", e.OverallMPI),
		fmt.Sprintf("%d", e.Clears),
		fmt.Sprintf("%d", e.LLCMisses),
		fmt.Sprintf("%d", e.IPIs),
		fmt.Sprintf("%d", e.IRQs),
		fmt.Sprintf("%d", e.SpinCycles),
	}, ",")
}
