package core

import "fmt"

// Drain parameters for CheckInvariants: the machine gets up to
// drainBudgetCycles of extra virtual time (in drainSliceCycles steps)
// to deliver every in-flight byte — enough for several maximally
// backed-off retransmission timeouts — before a lingering queue is
// declared a violation.
const (
	drainSliceCycles  = 200_000_000    // 100 ms
	drainBudgetCycles = 40_000_000_000 // 20 s
)

// CheckInvariants stops the workload, drains the machine, and then
// proves that a (possibly heavily faulted) run left no wreckage:
//
//   - every connection quiesced — nothing in flight in either
//     direction, retransmission queues empty, socket backlogs empty,
//     NIC rings drained;
//   - every retransmission timer disarmed;
//   - byte conservation — each side's receive sequence position equals
//     the other side's send position, so every byte the application
//     believed it sent was received exactly once, in order, despite
//     drops, flaps and reordering;
//   - buffer conservation — every pool skb is back on a free list or
//     sitting in an accounted location (socket queues, receive rings),
//     and every clone is free: no leaks down any loss path.
//
// It consumes virtual time and mutates the workload (processes are
// stopped), so call it after the last measurement window. Run does so
// automatically for faulted configurations.
func (m *Machine) CheckInvariants() error {
	for _, p := range m.Procs {
		p.Stop()
	}
	for _, c := range m.Clients {
		c.StopSource()
	}
	deadline := m.Eng.Now() + drainBudgetCycles
	for m.Eng.Now() < deadline && m.stuck() != "" {
		m.Eng.Run(m.Eng.Now() + drainSliceCycles)
	}
	if s := m.stuck(); s != "" {
		return fmt.Errorf("core: machine did not quiesce within %d cycles: %s", uint64(drainBudgetCycles), s)
	}

	for i, s := range m.Sockets {
		if s.RetransTimerActive() {
			return fmt.Errorf("core: conn %d retransmission timer still armed after drain", i)
		}
		c := m.Clients[i]
		if got, want := c.RcvNxt(), s.SndNxt(); got != want {
			return fmt.Errorf("core: conn %d client received through seq %d but SUT sent through %d", i, got, want)
		}
		if got, want := s.RcvNxt(), c.SndNxt(); got != want {
			return fmt.Errorf("core: conn %d SUT received through seq %d but client sent through %d", i, got, want)
		}
	}

	pool := m.St.Pool
	if err := pool.Check(); err != nil {
		return err
	}
	resident := 0
	for _, s := range m.Sockets {
		resident += s.SKBResident()
	}
	rings := 0
	for _, n := range m.NICs {
		rings += n.RxResident()
	}
	if got, want := pool.FreeSKBCount()+resident+rings, pool.NumSKBs(); got != want {
		return fmt.Errorf("core: skb leak: %d free + %d in sockets + %d in rings = %d, pool holds %d",
			pool.FreeSKBCount(), resident, rings, got, want)
	}
	if got, want := pool.FreeCloneCount(), pool.NumClones(); got != want {
		return fmt.Errorf("core: clone leak: %d of %d free after drain", got, want)
	}
	return nil
}

// stuck reports what is keeping the machine from quiescing ("" when
// quiesced): any in-flight or queued data on either side of any
// connection, frames still traversing the simulated wire or awaiting
// softirq service, armed delayed-ACK timers, NIC rings holding transmit
// work or stalled receive frames, or a processor still mid-execution.
//
// The wire and CPU checks are load-bearing, not paranoia: a go-back
// sender rewinds snd_nxt to snd_una, so both endpoints can report zero
// in-flight bytes while thousands of duplicate frames are still queued
// against the link — and a drain-slice boundary can land while a
// softirq is parked mid-free, with a buffer off every list but on no
// queue. Both states would corrupt the conservation accounting if the
// checker read it at that instant.
func (m *Machine) stuck() string {
	for i, s := range m.Sockets {
		switch {
		case s.InFlight() != 0:
			return fmt.Sprintf("conn %d: %d bytes in flight", i, s.InFlight())
		case s.RetransQLen() != 0:
			return fmt.Sprintf("conn %d: %d segments on retransmit queue", i, s.RetransQLen())
		case s.BacklogLen() != 0:
			return fmt.Sprintf("conn %d: %d packets on socket backlog", i, s.BacklogLen())
		case s.HasTail():
			return fmt.Sprintf("conn %d: Nagle tail held", i)
		case s.DelackArmed():
			return fmt.Sprintf("conn %d: delayed-ACK timer armed", i)
		}
	}
	for i, c := range m.Clients {
		switch {
		case c.InFlight() != 0:
			return fmt.Sprintf("client %d: %d bytes in flight", i, c.InFlight())
		case c.Pending() != 0:
			return fmt.Sprintf("client %d: %d frames awaiting processing", i, c.Pending())
		case c.UnsentTail() != 0:
			return fmt.Sprintf("client %d: %d bytes owed after a go-back", i, c.UnsentTail())
		case c.DelackPending():
			return fmt.Sprintf("client %d: delayed-ACK timer armed", i)
		}
	}
	for i, n := range m.NICs {
		switch {
		case n.TxResident() != 0:
			return fmt.Sprintf("nic %d: %d tx descriptors outstanding", i, n.TxResident())
		case n.StallQueued() != 0:
			return fmt.Sprintf("nic %d: %d frames held by a DMA stall", i, n.StallQueued())
		case n.WireInFlight() != 0:
			return fmt.Sprintf("nic %d: %d frames on the wire", i, n.WireInFlight())
		case n.RxPendingClean() != 0:
			return fmt.Sprintf("nic %d: %d rx descriptors awaiting softirq", i, n.RxPendingClean())
		}
	}
	for _, c := range m.K.CPUs {
		if !c.IsIdle() {
			return fmt.Sprintf("cpu %d: still executing", c.ID())
		}
	}
	return ""
}
