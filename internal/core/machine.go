// Package core assembles the paper's experiment: the 2-processor SUT
// with eight gigabit NICs, eight connections and eight ttcp processes,
// run under one of the four affinity modes, measured over a steady-state
// window, and analyzed into the paper's tables and figures. The machine
// shape and the placement of work onto it come from internal/topo: the
// paper's 2P × 8NIC box is just the default Topology, and each affinity
// mode is a PlacementPolicy over it, so arbitrary CPUs × NICs × queues
// shapes run through the same assembly.
package core

import (
	"fmt"

	"repro/internal/apic"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/ttcp"
	"repro/internal/workload"
)

// Mode is one of the paper's four affinity modes (§4).
type Mode int

const (
	// ModeNone: interrupts default to CPU0, OS-based scheduling.
	ModeNone Mode = iota
	// ModeProc: processes pinned 4/4 across CPUs, interrupts on CPU0.
	ModeProc
	// ModeIRQ: interrupts pinned 4/4 across CPUs, processes free.
	ModeIRQ
	// ModeFull: each process pinned to the CPU serving its NIC's
	// interrupts.
	ModeFull
	// ModePartition is the §7 related-work approach (AsyMOS [17],
	// ETA [19]): interrupt and softirq processing confined to CPU0,
	// application processes confined to the remaining processors —
	// a hard partition rather than per-flow alignment. Not one of the
	// paper's four measured modes; provided as an extension.
	ModePartition

	// NumModes counts the affinity modes.
	NumModes
)

var modeNames = [NumModes]string{"No Aff", "Proc Aff", "IRQ Aff", "Full Aff", "Partition"}

// String names the mode as the paper's figures do.
func (m Mode) String() string {
	if m < 0 || m >= NumModes {
		return fmt.Sprintf("mode(%d)", int(m))
	}
	return modeNames[m]
}

// Modes lists the paper's four modes in its order. ModePartition is an
// extension and is not included; see AllModes.
func Modes() []Mode { return []Mode{ModeNone, ModeProc, ModeIRQ, ModeFull} }

// AllModes lists every supported mode, including the partition extension.
func AllModes() []Mode {
	return []Mode{ModeNone, ModeProc, ModeIRQ, ModeFull, ModePartition}
}

// PolicyForMode maps an affinity mode to its placement policy. Modes are
// the paper's vocabulary; policies are the general mechanism (and include
// shapes the modes cannot express, e.g. topo.RSS).
func PolicyForMode(m Mode) topo.PlacementPolicy {
	switch m {
	case ModeProc:
		return topo.Process{}
	case ModeIRQ:
		return topo.IRQ{}
	case ModeFull:
		return topo.Full{}
	case ModePartition:
		return topo.Partition{}
	default:
		return topo.None{}
	}
}

// Vectors are the eight NIC interrupt lines of the paper's Table 4.
// Larger shapes allocate further vectors dynamically (topo.VectorAllocator);
// this list is kept for the paper's numbering and for tests.
var Vectors = topo.PaperVectors

// Sizes is the paper's transaction-size sweep (Figures 3 and 4).
var Sizes = []int{128, 256, 1024, 4096, 8192, 16384, 65536}

// Config describes one experimental run.
type Config struct {
	Mode Mode
	Dir  ttcp.Direction
	// Size is the ttcp transaction size in bytes.
	Size int
	// NumCPUs and NumNICs shape the machine; the paper's SUT is 2 CPUs
	// and 8 NICs (one connection and one process per NIC). Topology, if
	// set, overrides both.
	NumCPUs, NumNICs int
	// Topology, when non-nil, describes an arbitrary machine shape
	// (CPU count, NUMA-ish domains, multi-queue NICs, connection count)
	// in place of the flat NumCPUs × NumNICs default.
	Topology *topo.Topology
	// Policy, when non-nil, overrides the placement policy implied by
	// Mode (e.g. topo.RSS, or a custom implementation).
	Policy topo.PlacementPolicy
	// Seed drives all simulation randomness.
	Seed uint64
	// WarmupCycles run before measurement (cache/TLB warmup, window
	// ramp); MeasureCycles is the measured steady-state interval.
	WarmupCycles, MeasureCycles uint64
	// RotateIRQs applies the 2.6-style rotating delivery of §7 instead
	// of static routing (only meaningful with the default mask).
	RotateIRQs bool
	// SkipWorkload builds the machine (NICs, connections, affinity) but
	// launches no ttcp processes and no client sources, so callers can
	// attach their own workload (see examples/webserver).
	SkipWorkload bool
	// ThinkCycles inserts virtual think time between ttcp transactions
	// (0 = the paper's back-to-back bulk workload).
	ThinkCycles uint64
	// RecordLatency keeps per-transaction durations on each ttcp process
	// (Machine.Procs[i].Latency()).
	RecordLatency bool
	// Trace, when non-nil, attaches a timeline recorder to the machine;
	// the recorder surfaces on Machine.Rec and Result.Trace. Recording is
	// passive: a traced run follows the exact trajectory of an untraced
	// one.
	Trace *trace.Config
	// GaugeCycles, when non-zero, samples periodic gauges (per-CPU
	// runqueue depth and utilization, achieved Mbps, device-interrupt
	// rate) every GaugeCycles during Measure into Result.Series.
	GaugeCycles uint64
	// Faults is the deterministic fault schedule injected into the run
	// (link flaps, burst loss, wire delay, DMA stalls, interrupt
	// storms). Nil or empty means the clean baseline: nothing is
	// installed and the run is byte-identical to one before the fault
	// subsystem existed. Loss and fault behaviour flows ONLY through
	// this field (plus NICConfig), so the result cache's fingerprint
	// always sees it.
	Faults *fault.Schedule

	// Coalesce selects the NICs' interrupt-coalescing model (parse one
	// with ParseCoalesce). Nil is the legacy fixed per-IRQ throttle the
	// devices always had, byte-identical to a run before the model was
	// configurable. Coalescing behaviour flows ONLY through this field,
	// so the result cache's fingerprint always sees it.
	Coalesce *netdev.CoalesceConfig

	// Workload selects what runs on the machine (parse one with
	// ParseWorkload). Nil is the paper's bulk ttcp workload and is
	// byte-identical to a run before the workload layer existed. The
	// rpc kind replaces the bulk processes with closed-loop
	// request/response servers; the openloop kind turns the run into a
	// connection-churn cell that opens, serves and closes Spec.Conns
	// connections and runs to completion (Warmup/MeasureCycles are
	// ignored), reporting tail latency. Workload behaviour flows ONLY
	// through this field, so the result cache's fingerprint always
	// sees it.
	Workload *workload.Spec

	CPU  cpu.Config
	Tune kern.Tuning
	TCP  tcp.Config
}

// DefaultConfig returns the paper's machine at one operating point.
func DefaultConfig(mode Mode, dir ttcp.Direction, size int) Config {
	return Config{
		Mode:          mode,
		Dir:           dir,
		Size:          size,
		NumCPUs:       2,
		NumNICs:       8,
		Seed:          1,
		WarmupCycles:  60_000_000,  // 30 ms
		MeasureCycles: 240_000_000, // 120 ms (many scheduler quanta)
		CPU:           cpu.DefaultConfig(),
		Tune:          kern.DefaultTuning(),
		TCP:           tcp.DefaultConfig(),
	}
}

// Topo resolves the machine shape a config describes: the explicit
// Topology if set, else the flat NumCPUs × single-queue-NumNICs default.
func (cfg Config) Topo() topo.Topology {
	if cfg.Topology != nil {
		return *cfg.Topology
	}
	return topo.Uniform(cfg.NumCPUs, cfg.NumNICs, 1)
}

// PlanFor computes the placement plan a config implies without building
// the machine — for validating or inspecting placement up front. It is
// the only shape gate: impossible topologies (no CPUs, more queues than
// allocatable interrupt vectors, malformed domains) surface here as
// errors rather than mid-assembly.
func PlanFor(cfg Config) (*topo.Plan, error) {
	pol := cfg.Policy
	if pol == nil {
		pol = PolicyForMode(cfg.Mode)
	}
	plan, err := pol.Place(cfg.Topo())
	if err != nil {
		return nil, err
	}
	if cfg.RotateIRQs {
		plan.RotateIRQs = true
	}
	return plan, nil
}

// Machine is an assembled SUT plus its clients and workload.
type Machine struct {
	Cfg Config
	// Topo is the resolved machine shape; Plan the placement applied to
	// it (what the seed computed inline from mode switches).
	Topo topo.Topology
	Plan *topo.Plan
	Eng  *sim.Engine
	Tab  *perf.SymbolTable
	Ctr  *perf.Counters
	K    *kern.Kernel
	St   *tcp.Stack
	// Rec is the timeline recorder (nil unless Config.Trace was set).
	Rec     *trace.Recorder
	NICs    []*netdev.NIC
	Sockets []*tcp.Socket
	Clients []*tcp.Client
	Procs   []*ttcp.Proc
	// Faults is the installed fault injector (nil for a clean run).
	Faults *fault.Injector
	// WL is the workload running on the machine (resolved from
	// Config.Workload; the bulk ttcp workload by default), and view the
	// machine handles it was launched with.
	WL   workload.Workload
	view *workload.Machine
	// fd is the flow director (nil unless Plan.FlowDirector).
	fd *flowDirector
}

// NewMachine builds the SUT: kernel, stack, NICs, connections and ttcp
// processes, with the placement plan applied (IRQ smp_affinity masks,
// process affinity masks, RSS flow steering).
func NewMachine(cfg Config) *Machine {
	if cfg.Topology == nil && (cfg.NumCPUs <= 0 || cfg.NumNICs <= 0) {
		panic(fmt.Sprintf("core: bad machine shape %d CPUs %d NICs", cfg.NumCPUs, cfg.NumNICs))
	}
	plan, err := PlanFor(cfg)
	if err != nil {
		panic("core: " + err.Error())
	}
	wl, err := workload.Build(cfg.Workload)
	if err != nil {
		panic("core: " + err.Error())
	}
	t := plan.Topo
	eng := sim.NewEngine(cfg.Seed)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, t.NumCPUs)
	var rec *trace.Recorder
	if cfg.Trace != nil {
		rec = trace.NewRecorder(*cfg.Trace)
	}
	k := kern.New(kern.Config{
		Engine:  eng,
		Space:   mem.NewSpace(),
		Table:   tab,
		Ctr:     ctr,
		NumCPUs: t.NumCPUs,
		CPU:     cfg.CPU,
		Tune:    cfg.Tune,
		Trace:   rec,
	})
	st := tcp.New(k, cfg.TCP)
	m := &Machine{Cfg: cfg, Topo: t, Plan: plan, Eng: eng, Tab: tab, Ctr: ctr, K: k, St: st, Rec: rec, WL: wl}

	conns := t.NumConns()
	if wl.PreEstablish() {
		m.Sockets = make([]*tcp.Socket, conns)
		m.Clients = make([]*tcp.Client, conns)
	}
	for n := range t.NICs {
		nic := st.AddNICWithConfig(NICConfigFor(plan, cfg.Coalesce, n))
		m.NICs = append(m.NICs, nic)

		// This NIC's connections, in ascending connection order (the
		// paper's shape pairs connection i with NIC i). Churn workloads
		// open their own connections instead.
		if wl.PreEstablish() {
			for i := n; i < conns; i += len(t.NICs) {
				s, c := st.NewConn(i, nic)
				m.Sockets[i] = s
				m.Clients[i] = c
				if q := plan.FlowQueues[i]; q >= 0 && nic.Queues() > 1 {
					nic.SteerFlow(i, q)
				}
			}
		}

		// Interrupt affinity from the plan (the paper's Figure 2 split
		// under the irq/full policies; per-queue masks under RSS).
		// Mask 0 keeps the default all-CPUs mask, which delivers to CPU0.
		for q, mask := range plan.IRQMasks[n] {
			if mask != 0 {
				if err := k.APIC.SetAffinity(plan.QueueVectors[n][q], mask); err != nil {
					panic(err)
				}
			}
		}
	}
	if plan.RotateIRQs {
		k.APIC.SetPolicy(apic.PolicyRotate)
	}

	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(len(t.NICs), t.NumCPUs, cfg.WarmupCycles+cfg.MeasureCycles); err != nil {
			panic("core: " + err.Error())
		}
		m.Faults = fault.Attach(cfg.Faults, eng, rec, m.NICs, k.APIC)
	}

	m.view = &workload.Machine{
		Eng:           eng,
		K:             k,
		St:            st,
		Plan:          plan,
		NICs:          m.NICs,
		Sockets:       m.Sockets,
		Clients:       m.Clients,
		Dir:           cfg.Dir,
		Size:          cfg.Size,
		ThinkCycles:   cfg.ThinkCycles,
		RecordLatency: cfg.RecordLatency,
	}
	if plan.FlowDirector {
		m.fd = newFlowDirector(plan, m.NICs, t.NumCPUs)
		k.OnMigrate = m.fd.taskMigrated
		m.view.Steer = m.fd
	}
	if !cfg.SkipWorkload {
		wl.Launch(m.view)
		m.Procs = m.view.Procs
	}
	k.StartTicks()
	return m
}

// NICConfigFor returns the device configuration NewMachine builds for
// NIC n of the plan under the given coalescing model (nil = legacy).
// Exported so the cache fingerprint can hash exactly the per-device
// config (ring sizes, loss rate, vectors, coalescing) a run will use,
// rather than re-deriving it.
func NICConfigFor(plan *topo.Plan, coalesce *netdev.CoalesceConfig, n int) netdev.NICConfig {
	t := plan.Topo
	ncfg := netdev.DefaultNICConfig(plan.QueueVectors[n][0])
	if t.NICs[n].LinkBps != 0 {
		ncfg.LinkBps = t.NICs[n].LinkBps
	}
	if t.QueuesOf(n) > 1 {
		ncfg.QueueVectors = plan.QueueVectors[n]
	}
	if coalesce != nil {
		ncfg.Coalesce = *coalesce
	}
	return ncfg
}

// AffinityMaskFor returns the process affinity mask the machine's plan
// assigns to the process serving connection i (0 = unrestricted).
// Custom workloads use it to honour the configured placement.
func (m *Machine) AffinityMaskFor(i int) uint32 { return m.Plan.ProcMasks[i] }

// Shutdown reaps every coroutine; call when done with the machine.
func (m *Machine) Shutdown() { m.K.Shutdown() }

// appBytes reports application-level goodput so far, as the workload
// defines it: for bulk ttcp, bytes the clients received (TX) or bytes
// the SUT's readers consumed (RX).
func (m *Machine) appBytes() uint64 { return m.WL.Bytes(m.view) }

// transactions reports completed application operations so far, as the
// workload defines them.
func (m *Machine) transactions() uint64 { return m.WL.Transactions(m.view) }

func (m *Machine) drops() uint64 {
	var total uint64
	for _, n := range m.NICs {
		total += n.RxDropped
	}
	return total
}

// retransmits sums TCP retransmissions on both ends: SUT sockets (TX
// recovery) and the far-end clients (RX recovery), over live and
// released (churned) connections alike.
func (m *Machine) retransmits() uint64 {
	return m.St.SocketRetransmits() + m.St.ClientRetransmits()
}

// outOfOrder sums out-of-order receive drops on both ends of every
// connection, live or churned: the go-back-N receivers drop any segment
// that is not the next expected one, so a nonzero count means frames of
// one flow were serviced out of order (the flow-director re-steering
// pathology) or lost on the wire.
func (m *Machine) outOfOrder() uint64 {
	return m.St.SocketOutOfOrderDrops() + m.St.ClientOutOfOrder()
}

// dupAcks sums duplicate acknowledgments sent by both ends.
func (m *Machine) dupAcks() uint64 {
	return m.St.SocketDupAcks() + m.St.ClientDupAcks()
}

// fastRetransmits sums dup-ACK-triggered (as opposed to timeout-driven)
// retransmission episodes on both ends.
func (m *Machine) fastRetransmits() uint64 {
	return m.St.SocketFastRetransmits() + m.St.ClientFastRetransmits()
}

// flowResteers reports queue re-programs the flow director issued on
// task migrations (0 without one).
func (m *Machine) flowResteers() uint64 {
	if m.fd == nil {
		return 0
	}
	return m.fd.resteers
}

// wireDrops sums frames lost on the wire: random/burst loss plus
// frames that hit a downed link.
func (m *Machine) wireDrops() uint64 {
	var total uint64
	for _, n := range m.NICs {
		total += n.WireDrops + n.LinkDownDrops
	}
	return total
}

// wireBytes is the raw byte volume the SUT serialized in the workload
// direction — retransmissions included — against which goodput is
// compared.
func (m *Machine) wireBytes() uint64 {
	var total uint64
	for _, n := range m.NICs {
		if m.Cfg.Dir == ttcp.TX {
			total += n.TxBytes
		} else {
			total += n.RxBytes
		}
	}
	return total
}
