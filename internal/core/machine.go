// Package core assembles the paper's experiment: the 2-processor SUT
// with eight gigabit NICs, eight connections and eight ttcp processes,
// run under one of the four affinity modes, measured over a steady-state
// window, and analyzed into the paper's tables and figures.
package core

import (
	"fmt"

	"repro/internal/apic"
	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/ttcp"
)

// Mode is one of the paper's four affinity modes (§4).
type Mode int

const (
	// ModeNone: interrupts default to CPU0, OS-based scheduling.
	ModeNone Mode = iota
	// ModeProc: processes pinned 4/4 across CPUs, interrupts on CPU0.
	ModeProc
	// ModeIRQ: interrupts pinned 4/4 across CPUs, processes free.
	ModeIRQ
	// ModeFull: each process pinned to the CPU serving its NIC's
	// interrupts.
	ModeFull
	// ModePartition is the §7 related-work approach (AsyMOS [17],
	// ETA [19]): interrupt and softirq processing confined to CPU0,
	// application processes confined to the remaining processors —
	// a hard partition rather than per-flow alignment. Not one of the
	// paper's four measured modes; provided as an extension.
	ModePartition

	// NumModes counts the affinity modes.
	NumModes
)

var modeNames = [NumModes]string{"No Aff", "Proc Aff", "IRQ Aff", "Full Aff", "Partition"}

// String names the mode as the paper's figures do.
func (m Mode) String() string {
	if m < 0 || m >= NumModes {
		return fmt.Sprintf("mode(%d)", int(m))
	}
	return modeNames[m]
}

// Modes lists the paper's four modes in its order. ModePartition is an
// extension and is not included; see AllModes.
func Modes() []Mode { return []Mode{ModeNone, ModeProc, ModeIRQ, ModeFull} }

// AllModes lists every supported mode, including the partition extension.
func AllModes() []Mode {
	return []Mode{ModeNone, ModeProc, ModeIRQ, ModeFull, ModePartition}
}

// Vectors are the eight NIC interrupt lines, numbered as in the paper's
// Table 4.
var Vectors = []apic.Vector{0x19, 0x1a, 0x1b, 0x1d, 0x23, 0x24, 0x25, 0x27}

// Sizes is the paper's transaction-size sweep (Figures 3 and 4).
var Sizes = []int{128, 256, 1024, 4096, 8192, 16384, 65536}

// Config describes one experimental run.
type Config struct {
	Mode Mode
	Dir  ttcp.Direction
	// Size is the ttcp transaction size in bytes.
	Size int
	// NumCPUs and NumNICs shape the machine; the paper's SUT is 2 CPUs
	// and 8 NICs (one connection and one process per NIC).
	NumCPUs, NumNICs int
	// Seed drives all simulation randomness.
	Seed uint64
	// WarmupCycles run before measurement (cache/TLB warmup, window
	// ramp); MeasureCycles is the measured steady-state interval.
	WarmupCycles, MeasureCycles uint64
	// RotateIRQs applies the 2.6-style rotating delivery of §7 instead
	// of static routing (only meaningful with the default mask).
	RotateIRQs bool
	// SkipWorkload builds the machine (NICs, connections, affinity) but
	// launches no ttcp processes and no client sources, so callers can
	// attach their own workload (see examples/webserver).
	SkipWorkload bool
	// ThinkCycles inserts virtual think time between ttcp transactions
	// (0 = the paper's back-to-back bulk workload).
	ThinkCycles uint64
	// RecordLatency keeps per-transaction durations on each ttcp process
	// (Machine.Procs[i].Latency()).
	RecordLatency bool

	CPU  cpu.Config
	Tune kern.Tuning
	TCP  tcp.Config
}

// DefaultConfig returns the paper's machine at one operating point.
func DefaultConfig(mode Mode, dir ttcp.Direction, size int) Config {
	return Config{
		Mode:          mode,
		Dir:           dir,
		Size:          size,
		NumCPUs:       2,
		NumNICs:       8,
		Seed:          1,
		WarmupCycles:  60_000_000,  // 30 ms
		MeasureCycles: 240_000_000, // 120 ms (many scheduler quanta)
		CPU:           cpu.DefaultConfig(),
		Tune:          kern.DefaultTuning(),
		TCP:           tcp.DefaultConfig(),
	}
}

// Machine is an assembled SUT plus its clients and workload.
type Machine struct {
	Cfg     Config
	Eng     *sim.Engine
	Tab     *perf.SymbolTable
	Ctr     *perf.Counters
	K       *kern.Kernel
	St      *tcp.Stack
	NICs    []*netdev.NIC
	Sockets []*tcp.Socket
	Clients []*tcp.Client
	Procs   []*ttcp.Proc
}

// NewMachine builds the SUT: kernel, stack, NICs, connections and ttcp
// processes, with the affinity mode applied.
func NewMachine(cfg Config) *Machine {
	if cfg.NumCPUs <= 0 || cfg.NumNICs <= 0 {
		panic(fmt.Sprintf("core: bad machine shape %d CPUs %d NICs", cfg.NumCPUs, cfg.NumNICs))
	}
	if cfg.NumNICs > len(Vectors) {
		panic("core: more NICs than defined vectors")
	}
	eng := sim.NewEngine(cfg.Seed)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, cfg.NumCPUs)
	k := kern.New(kern.Config{
		Engine:  eng,
		Space:   mem.NewSpace(),
		Table:   tab,
		Ctr:     ctr,
		NumCPUs: cfg.NumCPUs,
		CPU:     cfg.CPU,
		Tune:    cfg.Tune,
	})
	st := tcp.New(k, cfg.TCP)
	m := &Machine{Cfg: cfg, Eng: eng, Tab: tab, Ctr: ctr, K: k, St: st}

	perCPU := (cfg.NumNICs + cfg.NumCPUs - 1) / cfg.NumCPUs
	for i := 0; i < cfg.NumNICs; i++ {
		nic := st.AddNIC(Vectors[i])
		m.NICs = append(m.NICs, nic)
		s, c := st.NewConn(i, nic)
		m.Sockets = append(m.Sockets, s)
		m.Clients = append(m.Clients, c)

		// Interrupt affinity: NICs 0..3 -> CPU0, 4..7 -> CPU1 (paper
		// Figure 2). Without it the default mask delivers to CPU0.
		if cfg.Mode == ModeIRQ || cfg.Mode == ModeFull {
			cpuFor := i / perCPU
			if err := k.APIC.SetAffinity(Vectors[i], 1<<uint(cpuFor)); err != nil {
				panic(err)
			}
		}
	}
	if cfg.RotateIRQs {
		k.APIC.SetPolicy(apic.PolicyRotate)
	}

	if !cfg.SkipWorkload {
		for i := 0; i < cfg.NumNICs; i++ {
			p := ttcp.Launch(st, m.Sockets[i], m.Clients[i], ttcp.Config{
				Name:          fmt.Sprintf("ttcp%d", i),
				Dir:           cfg.Dir,
				Size:          cfg.Size,
				StartCPU:      i % cfg.NumCPUs,
				Affinity:      m.AffinityMaskFor(i),
				ThinkCycles:   cfg.ThinkCycles,
				RecordLatency: cfg.RecordLatency,
			})
			m.Procs = append(m.Procs, p)
		}
		if cfg.Dir == ttcp.RX {
			for _, c := range m.Clients {
				c := c
				eng.At(0, func() { c.StartSource() })
			}
		}
	}
	k.StartTicks()
	return m
}

// AffinityMaskFor returns the process affinity mask the machine's mode
// implies for the process serving connection i (0 = unrestricted).
// Custom workloads use it to honour the configured mode.
func (m *Machine) AffinityMaskFor(i int) uint32 {
	switch m.Cfg.Mode {
	case ModeProc, ModeFull:
		perCPU := (m.Cfg.NumNICs + m.Cfg.NumCPUs - 1) / m.Cfg.NumCPUs
		return 1 << uint(i/perCPU)
	case ModePartition:
		// Applications keep off the interrupt processor.
		all := uint32(1<<uint(m.Cfg.NumCPUs)) - 1
		if mask := all &^ 1; mask != 0 {
			return mask
		}
		return 0
	default:
		return 0
	}
}

// Shutdown reaps every coroutine; call when done with the machine.
func (m *Machine) Shutdown() { m.K.Shutdown() }

// appBytes reports application-level goodput so far: bytes the clients
// received (TX) or bytes the SUT's readers consumed (RX).
func (m *Machine) appBytes() uint64 {
	var total uint64
	if m.Cfg.Dir == ttcp.TX {
		for _, c := range m.Clients {
			total += c.BytesReceived
		}
	} else {
		for _, s := range m.Sockets {
			total += s.AppBytesIn
		}
	}
	return total
}

func (m *Machine) transactions() uint64 {
	var total uint64
	for _, p := range m.Procs {
		total += p.Transactions
	}
	return total
}

func (m *Machine) drops() uint64 {
	var total uint64
	for _, n := range m.NICs {
		total += n.RxDropped
	}
	return total
}
