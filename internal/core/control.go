package core

import (
	"sync/atomic"

	"repro/internal/sim"
)

// Cancel is a cooperative stop signal threaded from a serving layer down
// into the event engine. The engine polls it at ladder-bucket boundaries
// (see sim.Engine.SetInterrupt), so cancelling a run costs its owner one
// atomic store and stops the simulation within a handful of events — no
// goroutine is ever killed, the machine unwinds through its normal
// teardown. A Cancel is single-shot and must not be reused across runs:
// once set it stays set. All methods are nil-safe so plumbing that has
// no cancellation to offer can pass nil straight through.
type Cancel struct {
	flag atomic.Bool
}

// NewCancel returns a fresh, unset cancel signal.
func NewCancel() *Cancel { return &Cancel{} }

// Cancel requests the run stop at the next engine poll point. It is safe
// to call from any goroutine, repeatedly.
func (c *Cancel) Cancel() {
	if c != nil {
		c.flag.Store(true)
	}
}

// Cancelled reports whether Cancel has been called.
func (c *Cancel) Cancelled() bool { return c != nil && c.flag.Load() }

// abort reasons recorded on Result.AbortReason.
const (
	AbortCancelled   = "cancelled"
	AbortCycleBudget = "cycle budget exceeded"
)

// RunControlled is Run with a cooperative cancel signal and an optional
// simulated-cycle budget: the run aborts once cancel is set or the
// virtual clock would pass maxCycles (0 = uncapped). An aborted run
// returns immediately with Result.Aborted set and its metrics only
// partially filled — callers must treat such a Result as a failure
// signal, never as data, and the cache refuses to store it. With a nil
// cancel and no budget this is exactly Run: same machine, same schedule,
// byte-identical Result.
func RunControlled(cfg Config, cancel *Cancel, maxCycles uint64) *Result {
	if cancel == nil && maxCycles == 0 {
		return Run(cfg)
	}
	m := NewMachine(cfg)
	defer m.Shutdown()
	deadline := sim.Forever
	if maxCycles > 0 {
		deadline = sim.Time(maxCycles)
	}
	var flag *atomic.Bool
	if cancel != nil {
		flag = &cancel.flag
	}
	m.Eng.SetInterrupt(flag, deadline)

	var r *Result
	if m.WL.OpenLoop() && !cfg.SkipWorkload {
		r = m.Measure(openLoopHorizon)
	} else {
		m.Eng.Run(sim.Time(cfg.WarmupCycles))
		r = m.Measure(cfg.MeasureCycles)
	}
	if m.Eng.Interrupted() {
		r.Aborted = true
		if cancel.Cancelled() {
			r.AbortReason = AbortCancelled
		} else {
			r.AbortReason = AbortCycleBudget
		}
		return r
	}
	// Only a run that completed its windows is worth invariant-checking;
	// this mirrors Run's faulted-run epilogue.
	if !cfg.Faults.Empty() && m.WL.Quiescible() {
		r.InvariantsChecked = true
		if err := m.CheckInvariants(); err != nil {
			r.InvariantViolation = err.Error()
		}
	}
	return r
}
