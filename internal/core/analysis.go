package core

import (
	"fmt"
	"strings"

	"repro/internal/perf"
	"repro/internal/prof"
	"repro/internal/stats"
)

// BinImprovement is one row of the paper's Table 3: a bin's baseline
// profile plus the Amdahl-decomposed improvement in cycles, LLC misses
// and machine clears when going from the baseline mode to the improved
// mode, all normalized per byte of work (the paper's "per work done").
type BinImprovement struct {
	Bin perf.Bin
	// Baseline characteristics (no-affinity column of Table 3).
	PctTime float64
	CPI     float64
	MPI     float64
	// Improvements: share of the baseline total recovered by this bin.
	CyclesImp float64
	LLCImp    float64
	ClearsImp float64
}

// Comparison relates two runs of the same workload under different
// affinity modes (§6.3).
type Comparison struct {
	Base, New *Result
	Bins      []BinImprovement
	// Overall improvements per work done.
	OverallCycles float64
	OverallLLC    float64
	OverallClears float64
	// Spearman rank correlations between the bins' cycle improvements
	// and their LLC / machine-clear improvements (Table 5), with the
	// paper's one-tailed p=0.05 critical value.
	CorrLLC      float64
	CorrClears   float64
	CorrCritical float64
}

// Compare computes the paper's comparative characterization between a
// baseline run (no affinity) and an improved run (full affinity) of the
// same workload. Events are normalized per byte moved before applying
// the Amdahl decomposition, exactly as §6.3's formula does with its
// "per work done" counts.
func Compare(base, improved *Result) *Comparison {
	cmp := &Comparison{Base: base, New: improved}

	baseT := prof.NewBinTable(base.Ctr)
	perByte := func(r *Result, n uint64) float64 {
		if r.Bytes == 0 {
			return 0
		}
		return float64(n) / float64(r.Bytes)
	}

	totalCycles := perByte(base, baseT.Overall.Cycles)
	totalLLC := perByte(base, baseT.Overall.Misses)
	totalClears := perByte(base, baseT.Overall.Clears)

	var cycImps, llcImps, clrImps []float64
	for _, bin := range perf.StackBins() {
		bc := perByte(base, base.Ctr.BinTotal(bin, perf.Cycles))
		nc := perByte(improved, improved.Ctr.BinTotal(bin, perf.Cycles))
		bl := perByte(base, base.Ctr.BinTotal(bin, perf.LLCMisses))
		nl := perByte(improved, improved.Ctr.BinTotal(bin, perf.LLCMisses))
		bm := perByte(base, base.Ctr.BinTotal(bin, perf.MachineClears))
		nm := perByte(improved, improved.Ctr.BinTotal(bin, perf.MachineClears))

		row := BinImprovement{
			Bin:       bin,
			CyclesImp: stats.Speedup(bc, nc, totalCycles),
			LLCImp:    stats.Speedup(bl, nl, totalLLC),
			ClearsImp: stats.Speedup(bm, nm, totalClears),
		}
		for _, r := range baseT.Rows {
			if r.Bin == bin {
				row.PctTime = r.PctCycles
				row.CPI = r.CPI
				row.MPI = r.MPI
			}
		}
		cmp.Bins = append(cmp.Bins, row)
		cmp.OverallCycles += row.CyclesImp
		cmp.OverallLLC += row.LLCImp
		cmp.OverallClears += row.ClearsImp
		cycImps = append(cycImps, row.CyclesImp)
		llcImps = append(llcImps, row.LLCImp)
		clrImps = append(clrImps, row.ClearsImp)
	}

	if r, err := stats.Spearman(cycImps, llcImps); err == nil {
		cmp.CorrLLC = r
	}
	if r, err := stats.Spearman(cycImps, clrImps); err == nil {
		cmp.CorrClears = r
	}
	cmp.CorrCritical = stats.SpearmanCriticalP05OneTail(len(cycImps))
	return cmp
}

// Format renders the comparison in the paper's Table 3 layout.
func (c *Comparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %dB: %s baseline -> %s   (improvements per work done)\n",
		c.Base.Cfg.Dir, "size", c.Base.Cfg.Size, c.Base.Cfg.Mode, c.New.Cfg.Mode)
	fmt.Fprintf(&b, "%-10s %7s %6s %9s | %8s %8s %8s\n",
		"Bin", "%Time", "CPI", "MPIx1e-3", "Cycles", "LLC", "Clears")
	for _, r := range c.Bins {
		fmt.Fprintf(&b, "%-10s %6.1f%% %6.1f %9.2f | %7.1f%% %7.1f%% %7.1f%%\n",
			r.Bin, 100*r.PctTime, r.CPI, 1000*r.MPI,
			100*r.CyclesImp, 100*r.LLCImp, 100*r.ClearsImp)
	}
	fmt.Fprintf(&b, "%-10s %25s | %7.1f%% %7.1f%% %7.1f%%\n",
		"Overall", "", 100*c.OverallCycles, 100*c.OverallLLC, 100*c.OverallClears)
	fmt.Fprintf(&b, "Spearman rank correlation: LLC %.2f, Clears %.2f (critical %.3f @ p=0.05, 1-tail)\n",
		c.CorrLLC, c.CorrClears, c.CorrCritical)
	return b.String()
}

// LockBehaviour captures the paper's Table 2 observation: under full
// affinity the Locks bin retires a small fraction of the branches and
// instructions it retires under contention, so the mispredict *ratio*
// inflates even though absolute mispredicts do not grow.
type LockBehaviour struct {
	Instr, Branches, Mispredicts uint64
	SpinCycles                   uint64
	MispredictRatio              float64
}

// LockStats extracts the Locks-bin behaviour of a run.
func LockStats(r *Result) LockBehaviour {
	c := r.Ctr
	lb := LockBehaviour{
		Instr:       c.BinTotal(perf.BinLocks, perf.Instructions),
		Branches:    c.BinTotal(perf.BinLocks, perf.Branches),
		Mispredicts: c.BinTotal(perf.BinLocks, perf.BranchMispredicts),
		SpinCycles:  c.BinTotal(perf.BinLocks, perf.SpinCycles),
	}
	if lb.Branches > 0 {
		lb.MispredictRatio = float64(lb.Mispredicts) / float64(lb.Branches)
	}
	return lb
}

// BaselineTable builds the paper's Table 1 for a run.
func BaselineTable(r *Result) prof.BinTable {
	return prof.NewBinTable(r.Ctr)
}

// Indicators builds the paper's Figure 5 column for a run.
func Indicators(r *Result) []prof.EventShare {
	return prof.ImpactIndicators(r.Ctr)
}

// TopClearSymbols builds the paper's Table 4: per-CPU symbols with the
// highest machine-clear counts, restricted to the TCP engine and the
// interrupt handlers (driver bin carries the IRQ0xNN symbols).
func TopClearSymbols(r *Result, n int) [][]prof.SymbolCount {
	return prof.TopSymbols(r.Ctr, perf.MachineClears,
		[]perf.Bin{perf.BinEngine, perf.BinDriver}, n)
}
