package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/ttcp"
)

// faultedConfig is a small machine with a representative mix of faults
// inside its run window: a mid-run link flap, background burst loss,
// wire jitter, a DMA stall, and an interrupt storm on CPU1.
func faultedConfig(mode Mode, dir ttcp.Direction) Config {
	cfg := testConfig(mode, dir, 16384)
	cfg.NumNICs = 4
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.KindFlap, NIC: 1, From: 60_000_000, Until: 80_000_000},
		{Kind: fault.KindBurst, NIC: -1, PEnterBad: 0.002, PExitBad: 0.2, BadRate: 0.9},
		{Kind: fault.KindDelay, NIC: 0, DelayCycles: 4_000, JitterCycles: 8_000},
		{Kind: fault.KindStall, NIC: 2, From: 100_000_000, Until: 104_000_000},
		{Kind: fault.KindStorm, NIC: 3, CPU: 1, From: 40_000_000, Until: 140_000_000, PeriodCycles: 400_000},
	}}
	return cfg
}

// stripped clears the fields that legitimately differ between two runs
// of equal behaviour (the Config embeds the caller's pointers).
func stripped(r *Result) Result {
	c := *r
	c.Cfg = Config{}
	c.Trace = nil
	return c
}

// A faulted sweep must be byte-identical whether the cells run
// serially or on a 4-worker pool: every fault decision comes from the
// cell's own seeded engine, never from wall-clock or shared state.
func TestFaultedSweepDeterministicAcrossRunners(t *testing.T) {
	var cfgs []Config
	for _, mode := range []Mode{ModeNone, ModeFull} {
		for _, dir := range []ttcp.Direction{ttcp.TX, ttcp.RX} {
			cfgs = append(cfgs, faultedConfig(mode, dir))
		}
	}
	serial := NewRunner(1).RunConfigs(cfgs)
	parallel := NewRunner(4).RunConfigs(cfgs)
	for i := range cfgs {
		if !reflect.DeepEqual(stripped(serial[i]), stripped(parallel[i])) {
			t.Errorf("cell %d: serial and parallel results differ:\n  serial:   %+v\n  parallel: %+v",
				i, stripped(serial[i]), stripped(parallel[i]))
		}
	}
	// And the faults really did something.
	for i, r := range serial {
		if r.WireDrops == 0 || r.Retransmits == 0 {
			t.Errorf("cell %d: no drops (%d) or retransmissions (%d) under burst loss + flap",
				i, r.WireDrops, r.Retransmits)
		}
		if r.InvariantViolation != "" {
			t.Errorf("cell %d: invariant violation: %s", i, r.InvariantViolation)
		}
		if !r.InvariantsChecked {
			t.Errorf("cell %d: faulted run skipped the invariant pass", i)
		}
	}
}

// An empty (or nil) schedule is the clean baseline: the run must be
// byte-identical to one with no Faults field at all — no extra engine
// events, no extra random draws.
func TestEmptyScheduleIdenticalToNil(t *testing.T) {
	base := testConfig(ModeFull, ttcp.TX, 16384)
	withNil := base
	withNil.Faults = nil
	withEmpty := base
	withEmpty.Faults = &fault.Schedule{}
	a, b := Run(withNil), Run(withEmpty)
	if !reflect.DeepEqual(stripped(a), stripped(b)) {
		t.Fatalf("empty fault schedule perturbed the run:\n  nil:   %+v\n  empty: %+v", stripped(a), stripped(b))
	}
	if a.InvariantsChecked || b.InvariantsChecked {
		t.Fatal("clean runs should not pay for the invariant drain")
	}
}

// The throughput-vs-loss sweep of EXPERIMENTS.md in miniature: loss
// from 0 to 2%, each cell leaving the machine provably clean.
func TestLossSweepInvariants(t *testing.T) {
	for _, rate := range []float64{0.005, 0.02} {
		cfg := testConfig(ModeFull, ttcp.TX, 16384)
		// At 2% loss the 200 ms default RTO dwarfs a 120M-cycle window
		// (every connection spends the window parked in timeout); a
		// longer window and a LAN-tuned RTO keep the cell meaningful.
		cfg.MeasureCycles = 600_000_000
		cfg.TCP.RTOInitCycles = 40_000_000
		cfg.TCP.RTOMaxCycles = 320_000_000
		cfg.Faults = &fault.Schedule{Events: []fault.Event{
			{Kind: fault.KindLoss, NIC: -1, Rate: rate},
		}}
		r := Run(cfg)
		if r.Bytes == 0 {
			t.Fatalf("rate %g: no progress", rate)
		}
		if r.WireDrops == 0 {
			t.Fatalf("rate %g: loss had no effect", rate)
		}
		if !r.InvariantsChecked || r.InvariantViolation != "" {
			t.Fatalf("rate %g: invariants: checked=%v violation=%q", rate, r.InvariantsChecked, r.InvariantViolation)
		}
		if r.GoodputRatio <= 0 || r.GoodputRatio >= 1 {
			t.Fatalf("rate %g: goodput ratio %g out of range", rate, r.GoodputRatio)
		}
	}
}

// A mid-run flap drops frames while down, recovers after link-up, and
// reports the recovery time.
func TestMidRunFlapRecovers(t *testing.T) {
	cfg := testConfig(ModeFull, ttcp.TX, 16384)
	cfg.NumNICs = 4
	// A LAN-tuned RTO so post-flap recovery lands inside the measured
	// window (the 200 ms default would fire long after it ends).
	cfg.TCP.RTOInitCycles = 40_000_000
	cfg.TCP.RTOMaxCycles = 320_000_000
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.KindFlap, NIC: 0, From: 50_000_000, Until: 70_000_000},
	}}
	m := NewMachine(cfg)
	defer m.Shutdown()
	m.Eng.Run(simTime(cfg.WarmupCycles))
	r := m.Measure(cfg.MeasureCycles)
	if r.Bytes == 0 {
		t.Fatal("no progress around the flap")
	}
	if m.NICs[0].LinkDownDrops == 0 {
		t.Fatal("no frames dropped while the link was down")
	}
	if len(r.FlapRecoveryCycles) != 1 {
		t.Fatalf("recorded %d flap recoveries, want 1 (%v)", len(r.FlapRecoveryCycles), r.FlapRecoveryCycles)
	}
	if rec := r.FlapRecoveryCycles[0]; rec == 0 || rec > 4_000_000_000 {
		t.Fatalf("recovery time %d cycles implausible", rec)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A DMA stall defers receive completions without losing accounted
// frames, and an interrupt storm burns the victim CPU without breaking
// anything — both leave the machine clean.
func TestStallAndStormInvariants(t *testing.T) {
	cfg := testConfig(ModeNone, ttcp.RX, 16384)
	cfg.NumNICs = 2
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.KindStall, NIC: 0, From: 50_000_000, Until: 56_000_000},
		{Kind: fault.KindStorm, NIC: 1, CPU: 1, From: 40_000_000, Until: 120_000_000, PeriodCycles: 200_000},
	}}
	m := NewMachine(cfg)
	defer m.Shutdown()
	m.Eng.Run(simTime(cfg.WarmupCycles))
	r := m.Measure(cfg.MeasureCycles)
	if r.Bytes == 0 {
		t.Fatal("no progress under stall + storm")
	}
	if m.NICs[0].StallDeferred == 0 {
		t.Fatal("stall deferred nothing")
	}
	if m.K.APIC.Spurious == 0 {
		t.Fatal("storm injected nothing")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Validation failures surface as panics at machine assembly, matching
// the other shape gates.
func TestInvalidSchedulePanics(t *testing.T) {
	cfg := testConfig(ModeNone, ttcp.TX, 16384)
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.KindFlap, NIC: 99, From: 1, Until: 2},
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("bad schedule did not panic")
		}
	}()
	NewMachine(cfg)
}
