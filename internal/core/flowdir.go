package core

import (
	"math/bits"

	"repro/internal/kern"
	"repro/internal/netdev"
	"repro/internal/topo"
)

// flowDirector implements workload.FlowSteerer for plans with
// Plan.FlowDirector set: whenever the task serving a connection runs on
// a new CPU, the flow's receive queue is re-programmed to the queue
// whose interrupt that CPU handles — Intel's ethtool ntuple steering
// ("flow director") following the process, versus RSS's static striping.
//
// The re-program happens at dispatch time on the destination CPU (the
// kernel's OnMigrate hook), which is exactly when it is dangerous:
// frames of the flow already DMA'd — or coalesce-deferred — on the old
// queue are still awaiting service there while new frames start
// interrupting on the new queue, so a migration can reorder the stream.
// The director is mechanism, not judgment; the EXPERIMENTS.md study
// measures what the policy costs.
//
// Every hook runs inside existing engine events (dispatch, accept,
// release), schedules nothing and draws no randomness, so a
// flow-directed run stays a pure function of its Config.
type flowDirector struct {
	nics []*netdev.NIC
	// queueOf[n][cpu] is NIC n's receive queue whose vector is routed
	// to exactly that CPU, or -1 when no queue interrupts there.
	queueOf [][]int
	// owned[t] lists the connections task t currently serves. The
	// population is bounded by the worker pool, not the connection
	// count: slices recycle as flows churn.
	owned map[*kern.Task][]int
	// resteers counts queue re-programs issued on migration (not the
	// initial binds).
	resteers uint64
}

func newFlowDirector(plan *topo.Plan, nics []*netdev.NIC, numCPUs int) *flowDirector {
	fd := &flowDirector{
		nics:    nics,
		queueOf: make([][]int, len(nics)),
		owned:   make(map[*kern.Task][]int),
	}
	for n := range nics {
		fd.queueOf[n] = make([]int, numCPUs)
		for cpu := range fd.queueOf[n] {
			fd.queueOf[n][cpu] = -1
		}
		for q, mask := range plan.IRQMasks[n] {
			if bits.OnesCount32(mask) == 1 {
				fd.queueOf[n][bits.TrailingZeros32(mask)] = q
			}
		}
	}
	return fd
}

// nicFor maps a connection to its serving device — the same modular
// striping NewMachine and the churn workloads use.
func (fd *flowDirector) nicFor(conn int) (int, *netdev.NIC) {
	n := conn % len(fd.nics)
	return n, fd.nics[n]
}

// steer points conn's queue at the one serving cpu, if that NIC has a
// queue interrupting there (a CPU with no queue keeps the previous
// steering — real flow director can only choose among existing queues).
func (fd *flowDirector) steer(conn, cpu int) bool {
	n, nic := fd.nicFor(conn)
	if nic.Queues() <= 1 {
		return false
	}
	if q := fd.queueOf[n][cpu]; q >= 0 {
		nic.SteerFlow(conn, q)
		return true
	}
	return false
}

// Bind implements workload.FlowSteerer.
func (fd *flowDirector) Bind(conn int, t *kern.Task) {
	fd.owned[t] = append(fd.owned[t], conn)
	fd.steer(conn, t.LastCPU())
}

// Unbind implements workload.FlowSteerer.
func (fd *flowDirector) Unbind(conn int, t *kern.Task) {
	conns := fd.owned[t]
	for i, c := range conns {
		if c == conn {
			fd.owned[t] = append(conns[:i], conns[i+1:]...)
			return
		}
	}
}

// taskMigrated is the kern.OnMigrate hook: re-steer every flow the
// migrating task serves to the destination CPU's queue.
func (fd *flowDirector) taskMigrated(t *kern.Task, from, to int) {
	for _, conn := range fd.owned[t] {
		if fd.steer(conn, to) {
			fd.resteers++
		}
	}
}
