package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/ttcp"
)

type simTime = sim.Time

// Extension finding: under frame loss the workload stops being
// CPU-bound — recovery timeouts idle the processors (utilization drops
// to ~25-40%) — so affinity's effect washes out; its gains are a
// property of the paper's CPU-saturated, loss-free regime. The test
// pins that finding: both modes keep moving data correctly, losses and
// retransmissions really happen, and the machine is demonstrably not
// saturated.
func TestLossMakesWorkloadIdleBoundNotAffinityBound(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeFull} {
		cfg := testConfig(mode, ttcp.TX, 65536)
		cfg.MeasureCycles = 400_000_000
		cfg.Faults = &fault.Schedule{Events: []fault.Event{
			{Kind: fault.KindLoss, NIC: -1, Rate: 0.005},
		}}
		m := NewMachine(cfg)
		m.Eng.Run(simTime(cfg.WarmupCycles))
		r := m.Measure(cfg.MeasureCycles)
		var rexmit, drops uint64
		for _, s := range m.Sockets {
			rexmit += s.Retransmits()
		}
		for _, n := range m.NICs {
			drops += n.WireDrops
		}
		m.Shutdown()
		if r.Bytes == 0 {
			t.Fatalf("%s: lossy links moved no data", mode)
		}
		if drops == 0 || rexmit == 0 {
			t.Fatalf("%s: no losses (%d) or recoveries (%d) observed", mode, drops, rexmit)
		}
		if r.AvgUtil > 0.8 {
			t.Errorf("%s: utilization %.2f — loss should idle the machine, washing out affinity",
				mode, r.AvgUtil)
		}
	}
}

// Extension: NAPI polling (the 2.6-era interrupt mitigation). At this
// operating point — gigabit ports against 2 GHz processors — the poll
// drains faster than the wire refills, so the interrupt saving is
// modest (each burst still begins with an interrupt); the test pins the
// honest claim: NAPI never *increases* interrupts and does not cost
// throughput. Higher per-port packet rates are where NAPI's savings
// grow.
func TestNAPIMitigatesInterruptsAtMachineLevel(t *testing.T) {
	run := func(napi bool) (mbps float64, irqs uint64) {
		cfg := testConfig(ModeNone, ttcp.TX, 65536)
		// Two ports carrying all the traffic: per-device load high enough
		// that polling outpaces interrupt-per-burst behaviour.
		cfg.NumNICs = 2
		m := NewMachine(cfg)
		defer m.Shutdown()
		for _, n := range m.NICs {
			n.SetNAPI(napi)
		}
		m.Eng.Run(simTime(cfg.WarmupCycles))
		r := m.Measure(cfg.MeasureCycles)
		return r.Mbps, r.Ctr.Total(perf.IRQsReceived)
	}
	mbpsDef, irqsDef := run(false)
	mbpsNapi, irqsNapi := run(true)
	if irqsNapi > irqsDef {
		t.Errorf("NAPI irqs %d above default %d", irqsNapi, irqsDef)
	}
	if mbpsNapi < mbpsDef*0.95 {
		t.Errorf("NAPI throughput %.0f collapsed vs default %.0f", mbpsNapi, mbpsDef)
	}
}

// Regression: wide interrupt-coalescing windows produce bursty softirq
// allocation storms that once raced the per-CPU pool caches at refill
// preemption points (popCPU drained by a bottom half between unlock and
// pop). The run must complete with pool invariants intact.
func TestWideCoalescingPoolRace(t *testing.T) {
	cfg := testConfig(ModeFull, ttcp.TX, 65536)
	m := NewMachine(cfg)
	defer m.Shutdown()
	for _, n := range m.NICs {
		n.SetCoalesce(200_000) // 100 µs bursts
	}
	m.Eng.Run(simTime(cfg.WarmupCycles))
	r := m.Measure(cfg.MeasureCycles)
	if r.Bytes == 0 {
		t.Fatal("no progress under wide coalescing")
	}
	if r.Drops != 0 {
		t.Fatalf("%d ring drops under wide coalescing", r.Drops)
	}
}
