package core

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/ttcp"
)

// The AsyMOS/ETA-style hard partition (§7 related work): all interrupt
// and softirq processing on CPU0, all application processes elsewhere.
func TestPartitionModeSeparatesWork(t *testing.T) {
	r := Run(testConfig(ModePartition, ttcp.TX, 65536))
	// Every device interrupt lands on CPU0.
	for _, v := range Vectors {
		sym := r.Ctr.Table().Lookup(handlerName(v))
		if got := r.Ctr.Get(1, sym, perf.IRQsReceived); got != 0 {
			t.Errorf("CPU1 took %d interrupts for %s under partition", got, handlerName(v))
		}
	}
	// Application copies run only off CPU0.
	copySym := r.Ctr.Table().Lookup("__copy_from_user_ll")
	if got := r.Ctr.Get(0, copySym, perf.Instructions); got != 0 {
		t.Errorf("CPU0 executed %d copy instructions under partition", got)
	}
	if got := r.Ctr.Get(1, copySym, perf.Instructions); got == 0 {
		t.Error("CPU1 executed no copy instructions under partition")
	}
	if r.Mbps <= 0 {
		t.Fatal("partition mode moved no data")
	}
}

// Partitioning removes OS intrusion from application processing (the
// related work's claim) but leaves every protocol<->application crossing
// a cache-line transfer, so on 2P bulk streams it should not beat full
// per-flow affinity.
func TestPartitionDoesNotBeatFullAffinity(t *testing.T) {
	part := Run(testConfig(ModePartition, ttcp.TX, 65536))
	full := Run(testConfig(ModeFull, ttcp.TX, 65536))
	if part.Mbps > full.Mbps*1.02 {
		t.Errorf("partition %.0f Mb/s beats full affinity %.0f — unexpected for bulk streams",
			part.Mbps, full.Mbps)
	}
}
