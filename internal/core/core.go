package core
