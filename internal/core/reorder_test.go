package core

import (
	"testing"

	"repro/internal/topo"
	"repro/internal/ttcp"
)

// reorderCell is the pinned flow-director pathology cell: a 2-CPU box
// with one dual-queue NIC carrying two receive flows, processes left to
// the load balancer (so they migrate), under the given placement policy
// and coalescing model. Default windows: the cured cell's steering
// settles to a re-steer every few balance intervals, so the measured
// window must be long enough to catch one.
func reorderCell(t *testing.T, policy, coalesce string) Config {
	t.Helper()
	cfg := DefaultConfig(ModeNone, ttcp.RX, 65536)
	shape := topo.Uniform(2, 1, 2)
	shape.Conns = 2
	cfg.Topology = &shape
	pol, err := ParsePolicy(policy)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = pol
	if coalesce != "" {
		co, err := ParseCoalesce(coalesce)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Coalesce = co
	}
	return cfg
}

// TestFlowDirectorReordersUnderFixedWindowCoalescing pins the PR's
// headline pathology and its cure on one cell:
//
//   - flow-director steering under a fixed hold-off window reorders:
//     every migration re-programs the flow's queue while the old
//     queue's tail sits parked for a full window, so frames overtake —
//     nonzero out-of-order drops, dup ACKs and fast retransmits, and
//     measurably lost throughput;
//   - static RSS under the identical coalescing never reorders (no
//     re-steers, so no second queue ever carries the flow);
//   - adaptive coalescing under the identical flow-director steering
//     cures it (the window starts narrow, so the old queue drains
//     before the new one overtakes) at full throughput.
func TestFlowDirectorReordersUnderFixedWindowCoalescing(t *testing.T) {
	pathology := Run(reorderCell(t, "flowdirector", "timer,usecs=100"))
	static := Run(reorderCell(t, "rss", "timer,usecs=100"))
	cured := Run(reorderCell(t, "flowdirector", "adaptive"))

	if pathology.FlowResteers == 0 {
		t.Fatal("flow-director cell issued no re-steers: no migrations, the cell tests nothing")
	}
	if pathology.OutOfOrder == 0 || pathology.DupAcks == 0 || pathology.FastRetransmits == 0 {
		t.Errorf("fixed-window flow-director cell did not reorder: ooo=%d dupacks=%d fastrexmit=%d",
			pathology.OutOfOrder, pathology.DupAcks, pathology.FastRetransmits)
	}

	if static.OutOfOrder != 0 || static.DupAcks != 0 || static.FastRetransmits != 0 {
		t.Errorf("static RSS reordered under the same coalescing: ooo=%d dupacks=%d fastrexmit=%d",
			static.OutOfOrder, static.DupAcks, static.FastRetransmits)
	}
	if static.FlowResteers != 0 {
		t.Errorf("static RSS issued %d re-steers; steering must be inert outside flowdirector", static.FlowResteers)
	}

	if cured.OutOfOrder != 0 || cured.DupAcks != 0 || cured.FastRetransmits != 0 {
		t.Errorf("adaptive coalescing did not cure the re-steer reordering: ooo=%d dupacks=%d fastrexmit=%d",
			cured.OutOfOrder, cured.DupAcks, cured.FastRetransmits)
	}

	// The cure is not avoidance: the cured run still migrates and
	// re-steers, and recovers the throughput the pathology lost.
	if cured.FlowResteers == 0 {
		t.Error("cured cell issued no re-steers; it avoided the pathology instead of curing it")
	}
	if pathology.Mbps >= cured.Mbps {
		t.Errorf("reordering cost no throughput: pathology %.1f Mbps >= cured %.1f Mbps",
			pathology.Mbps, cured.Mbps)
	}
}

// TestReorderCounterDeterminism pins the new counters across runner
// parallelism: the pathology, static and cured cells must export
// byte-identical JSON — OutOfOrder, DupAcks, FastRetransmits and
// FlowResteers included — whether simulated serially or on the
// four-worker pool selected through AFFINITY_WORKERS.
func TestReorderCounterDeterminism(t *testing.T) {
	configs := []Config{
		reorderCell(t, "flowdirector", "timer,usecs=100"),
		reorderCell(t, "rss", "timer,usecs=100"),
		reorderCell(t, "flowdirector", "adaptive"),
	}

	serial := NewRunner(1).RunConfigs(configs)
	t.Setenv(WorkersEnv, "4")
	parallel := NewRunner(0).RunConfigs(configs)
	for i := range configs {
		js, err := serial[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		jp, err := parallel[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		if js != jp {
			t.Errorf("config %d diverged across parallelism:\nserial:   %s\nparallel: %s", i, js, jp)
		}
	}
	if serial[0].OutOfOrder == 0 {
		t.Error("determinism batch is vacuous: the pathology cell reported no reordering")
	}
}
