package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Series is a sampled gauge time series over one measurement window: the
// coarse "what was the machine doing" companion to the event-level
// trace.Recorder. Each sample row holds the instantaneous per-CPU
// runqueue depth plus rates computed over the preceding period (per-CPU
// utilization, achieved Mbps, device-interrupt rate).
//
// Sampling is passive: the sampler reads machine state but never touches
// it or the random stream, so a sampled run follows the exact trajectory
// of an unsampled one.
type Series struct {
	// PeriodCycles is the sampling period; ClockHz converts cycle stamps
	// to wall time.
	PeriodCycles uint64
	ClockHz      uint64
	// Times holds each sample's cycle stamp (end of its period).
	Times []uint64
	// RunQ and Util are per-sample, per-CPU gauges: runnable backlog at
	// the sample instant, and busy fraction over the preceding period.
	RunQ [][]int
	Util [][]float64
	// Mbps is application goodput over the preceding period; IRQRate is
	// device interrupts per second over the same period.
	Mbps    []float64
	IRQRate []float64
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// WriteCSV emits the series as CSV: a header row, then one row per
// sample with time, rates, and per-CPU utilization/runqueue columns.
func (s *Series) WriteCSV(w io.Writer) error {
	ncpu := 0
	if len(s.Util) > 0 {
		ncpu = len(s.Util[0])
	}
	var b strings.Builder
	b.WriteString("cycles,ms,mbps,irq_per_sec")
	for c := 0; c < ncpu; c++ {
		fmt.Fprintf(&b, ",cpu%d_util,cpu%d_runq", c, c)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i := range s.Times {
		b.Reset()
		ms := float64(s.Times[i]) * 1e3 / float64(s.ClockHz)
		fmt.Fprintf(&b, "%d,%.4f,%.2f,%.1f", s.Times[i], ms, s.Mbps[i], s.IRQRate[i])
		for c := 0; c < ncpu; c++ {
			fmt.Fprintf(&b, ",%.4f,%d", s.Util[i][c], s.RunQ[i][c])
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the series to a string (convenience over WriteCSV).
func (s *Series) CSV() string {
	var b strings.Builder
	s.WriteCSV(&b) // strings.Builder never errors
	return b.String()
}

// gaugeSampler walks the measurement window at a fixed period appending
// rows to a Series. It is driven by engine events but is strictly
// read-only with respect to machine state.
type gaugeSampler struct {
	m      *Machine
	out    *Series
	end    sim.Time
	period sim.Time

	prevBytes uint64
	prevIRQs  uint64
	prevIdle  []uint64
	prevAt    sim.Time
}

// startGauges begins periodic sampling for a window ending at end,
// returning the Series that will fill as the window runs. Must be called
// at the start of the window, before the engine advances into it.
func (m *Machine) startGauges(period uint64, end sim.Time) *Series {
	clock := m.Cfg.CPU.ClockHz
	g := &gaugeSampler{
		m:      m,
		out:    &Series{PeriodCycles: period, ClockHz: clock},
		end:    end,
		period: sim.Time(period),
		prevAt: m.Eng.Now(),
	}
	g.prevBytes = m.appBytes()
	g.prevIRQs = m.K.APIC.Delivered()
	g.prevIdle = make([]uint64, len(m.K.CPUs))
	for i, c := range m.K.CPUs {
		g.prevIdle[i] = c.IdleCycles()
	}
	m.Eng.At(g.prevAt+g.period, g.sample)
	return g.out
}

func (g *gaugeSampler) sample() {
	m := g.m
	now := m.Eng.Now()
	if now > g.end {
		return
	}
	elapsed := float64(now - g.prevAt)
	s := g.out

	s.Times = append(s.Times, uint64(now))

	bytes := m.appBytes()
	bits := float64(bytes-g.prevBytes) * 8
	seconds := elapsed / float64(s.ClockHz)
	mbps := 0.0
	if seconds > 0 {
		mbps = bits / seconds / 1e6
	}
	s.Mbps = append(s.Mbps, mbps)

	irqs := m.K.APIC.Delivered()
	rate := 0.0
	if seconds > 0 {
		rate = float64(irqs-g.prevIRQs) / seconds
	}
	s.IRQRate = append(s.IRQRate, rate)

	utils := make([]float64, len(m.K.CPUs))
	runq := make([]int, len(m.K.CPUs))
	for i, c := range m.K.CPUs {
		idle := c.IdleCycles()
		d := idle - g.prevIdle[i]
		if float64(d) > elapsed {
			d = uint64(elapsed)
		}
		if elapsed > 0 {
			utils[i] = (elapsed - float64(d)) / elapsed
		}
		runq[i] = c.QueueLen()
		g.prevIdle[i] = idle
	}
	s.Util = append(s.Util, utils)
	s.RunQ = append(s.RunQ, runq)

	g.prevBytes = bytes
	g.prevIRQs = irqs
	g.prevAt = now

	if now+g.period <= g.end {
		m.Eng.At(now+g.period, g.sample)
	}
}
