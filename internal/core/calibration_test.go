package core

import (
	"testing"

	"repro/internal/ttcp"
)

// Calibration regression: the simulator's headline operating points are
// pinned (with tolerance) to the values recorded in EXPERIMENTS.md. The
// simulation is deterministic, so drift here means a model change moved
// the calibration — re-run `cmd/affinity-figures -all`, re-validate
// against the paper, and update EXPERIMENTS.md alongside these numbers.
func TestCalibrationPinnedOperatingPoints(t *testing.T) {
	type point struct {
		mode Mode
		dir  ttcp.Direction
		size int
		cost float64 // GHz/Gbps at default windows
	}
	points := []point{
		{ModeNone, ttcp.TX, 65536, 1.58},
		{ModeFull, ttcp.TX, 65536, 1.31},
		{ModeNone, ttcp.TX, 128, 4.56},
		{ModeFull, ttcp.TX, 128, 4.20},
		{ModeNone, ttcp.RX, 65536, 2.03},
		{ModeFull, ttcp.RX, 65536, 1.70},
		{ModeNone, ttcp.RX, 128, 4.84},
		{ModeFull, ttcp.RX, 128, 4.47},
	}
	const tol = 0.08
	for _, p := range points {
		r := Run(DefaultConfig(p.mode, p.dir, p.size))
		lo, hi := p.cost*(1-tol), p.cost*(1+tol)
		if r.CostGHzPerGbps < lo || r.CostGHzPerGbps > hi {
			t.Errorf("%s %s %dB: cost %.3f outside pinned %.2f±%.0f%%",
				p.mode, p.dir, p.size, r.CostGHzPerGbps, p.cost, tol*100)
		}
	}
}
