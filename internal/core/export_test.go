package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/ttcp"
)

// quickResult runs one short full-affinity window, shared by the export
// and dump tests.
func quickResult(t *testing.T) *Result {
	t.Helper()
	cfg := DefaultConfig(ModeFull, ttcp.TX, 65536)
	cfg.WarmupCycles = 5_000_000
	cfg.MeasureCycles = 20_000_000
	return Run(cfg)
}

func TestExportFields(t *testing.T) {
	r := quickResult(t)
	e := r.Export()
	if e.Mode != "Full Aff" || e.Dir != "TX" || e.Size != 65536 || e.Seed != r.Cfg.Seed {
		t.Errorf("identity fields wrong: %+v", e)
	}
	if e.Mbps <= 0 || e.Util <= 0 || e.Util > 1 || e.Cost <= 0 {
		t.Errorf("headline metrics implausible: mbps=%v util=%v cost=%v", e.Mbps, e.Util, e.Cost)
	}
	if e.Transactions == 0 || e.Bytes == 0 {
		t.Error("no work recorded")
	}
	if e.OverallCPI <= 0 {
		t.Errorf("overall CPI = %v", e.OverallCPI)
	}
	if e.IRQs == 0 {
		t.Error("no interrupts recorded")
	}
	if len(e.Bins) == 0 {
		t.Fatal("no bin rows")
	}
	var share float64
	for name, bin := range e.Bins {
		if bin.PctCycles < 0 || bin.PctCycles > 1 {
			t.Errorf("bin %s: cycle share %v outside [0,1]", name, bin.PctCycles)
		}
		share += bin.PctCycles
	}
	if share < 0.99 || share > 1.01 {
		t.Errorf("bin cycle shares sum to %v, want ~1", share)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	r := quickResult(t)
	js, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ResultExport
	if err := json.Unmarshal([]byte(js), &back); err != nil {
		t.Fatalf("JSON does not parse back: %v", err)
	}
	if back.Mbps != r.Mbps || back.Mode != r.Cfg.Mode.String() {
		t.Errorf("round trip lost data: got %v/%q, want %v/%q",
			back.Mbps, back.Mode, r.Mbps, r.Cfg.Mode.String())
	}
}

func TestCSVRowMatchesHeader(t *testing.T) {
	r := quickResult(t)
	header := strings.Split(CSVHeader(), ",")
	row := strings.Split(r.CSVRow(), ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	if row[0] != "Full Aff" || row[1] != "TX" || row[2] != "65536" {
		t.Errorf("row prefix = %v", row[:3])
	}
	for i, cell := range row {
		if cell == "" {
			t.Errorf("column %s empty", header[i])
		}
	}
}
