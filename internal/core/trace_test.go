package core

import (
	"os"
	"strings"
	"testing"

	"repro/internal/perf"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/ttcp"
)

// quickTraceConfig is a small-window operating point for trace tests.
func quickTraceConfig(mode Mode, size int) Config {
	cfg := DefaultConfig(mode, ttcp.TX, size)
	cfg.WarmupCycles = 2_000_000
	cfg.MeasureCycles = 5_000_000
	return cfg
}

// TestTracedRunMatchesUntraced pins the tentpole's zero-perturbation
// contract: attaching a recorder (and the gauge sampler) must not change
// the simulated trajectory — every measured metric is identical to the
// untraced run's.
func TestTracedRunMatchesUntraced(t *testing.T) {
	base := Run(quickTraceConfig(ModeFull, 65536))

	traced := quickTraceConfig(ModeFull, 65536)
	traced.Trace = &trace.Config{}
	traced.GaugeCycles = 1_000_000
	r := Run(traced)

	if r.String() != base.String() {
		t.Fatalf("traced run diverged:\n  traced:   %s\n  untraced: %s", r, base)
	}
	if r.Bytes != base.Bytes || r.Transactions != base.Transactions {
		t.Fatalf("traced run moved bytes/txns: %d/%d vs %d/%d",
			r.Bytes, r.Transactions, base.Bytes, base.Transactions)
	}
	for _, ev := range []perf.Event{perf.Cycles, perf.Instructions, perf.MachineClears, perf.LLCMisses} {
		for cpu := 0; cpu < 2; cpu++ {
			if g, w := r.Ctr.CPUTotal(cpu, ev), base.Ctr.CPUTotal(cpu, ev); g != w {
				t.Fatalf("cpu%d %v: traced %d, untraced %d", cpu, ev, g, w)
			}
		}
	}
	if r.Trace == nil || r.Trace.Len() == 0 {
		t.Fatal("traced run recorded nothing")
	}
	if r.Series == nil || r.Series.Len() == 0 {
		t.Fatal("gauge sampling produced no series")
	}
	if base.Trace != nil || base.Series != nil {
		t.Fatal("untraced run grew a recorder/series")
	}
}

// TestTraceDeterminismAcrossRunners pins the tentpole's determinism
// contract: the same seeded configs traced through a serial runner and a
// parallel runner export byte-identical Chrome trace JSON, text dumps and
// gauge CSVs.
func TestTraceDeterminismAcrossRunners(t *testing.T) {
	configs := func() []Config {
		var cfgs []Config
		for _, m := range Modes() {
			cfg := quickTraceConfig(m, 65536)
			cfg.Trace = &trace.Config{}
			cfg.GaugeCycles = 1_000_000
			cfgs = append(cfgs, cfg)
		}
		return cfgs
	}
	export := func(r *Runner, cfgs []Config) []string {
		results := make([]*Result, len(cfgs))
		r.Do(len(cfgs), func(i int) { results[i] = Run(cfgs[i]) })
		var out []string
		for _, res := range results {
			var json, text strings.Builder
			if err := trace.WriteChrome(&json, res.Trace, res.Cfg.CPU.ClockHz); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteText(&text, res.Trace, res.Cfg.CPU.ClockHz); err != nil {
				t.Fatal(err)
			}
			out = append(out, json.String(), text.String(), res.Series.CSV())
		}
		return out
	}
	serial := export(NewRunner(1), configs())
	parallel := export(NewRunner(4), configs())
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("export %d differs between serial and parallel runners", i)
		}
		if len(serial[i]) == 0 {
			t.Fatalf("export %d is empty", i)
		}
	}
}

// TestTable4Golden pins the Table 4 listing — including the percentage
// denominator fix in prof.TopSymbols (Pct over the listed Engine+Driver
// population, not all symbols) — against a golden fixture.
func TestTable4Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("two full cells; skipped in -short mode")
	}
	var out strings.Builder
	for _, mode := range []Mode{ModeNone, ModeFull} {
		cfg := DefaultConfig(mode, ttcp.TX, 128)
		cfg.WarmupCycles = 10_000_000
		cfg.MeasureCycles = 30_000_000
		r := Run(cfg)
		out.WriteString("=== " + mode.String() + " ===\n")
		out.WriteString(prof.FormatTopSymbols(TopClearSymbols(r, 8), perf.MachineClears))
	}
	want, err := os.ReadFile("testdata/table4_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("Table 4 output diverged from fixture\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestVerifyPointsCoverChecks pins the verifyPoints prefetch list against
// the checks: if a check requests an operating point that was not
// prefetched, the fallback runs it serially outside the runner — silently
// until this test.
func TestVerifyPointsCoverChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full check suite; skipped in -short mode")
	}
	var missed []string
	verifyMissHook = func(m Mode, d ttcp.Direction, size int) {
		missed = append(missed, m.String()+"/"+d.String())
	}
	defer func() { verifyMissHook = nil }()
	VerifyShapeWith(nil, func(m Mode, d ttcp.Direction, size int) Config {
		cfg := DefaultConfig(m, d, size)
		cfg.WarmupCycles = 2_000_000
		cfg.MeasureCycles = 5_000_000
		return cfg
	})
	if len(missed) > 0 {
		t.Fatalf("checks requested points missing from verifyPoints (ran serially, bypassing the runner): %v", missed)
	}
}
