package core

import (
	"strings"
	"testing"

	"repro/internal/topo"
	"repro/internal/ttcp"
)

func TestDumpStateContents(t *testing.T) {
	cfg := DefaultConfig(ModeIRQ, ttcp.TX, 65536)
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 0
	m := NewMachine(cfg)
	defer m.Shutdown()
	m.Measure(5_000_000)

	dump := m.DumpState()
	for _, want := range []string{
		"machine @",
		"IRQ Aff",
		"cpu0:", "cpu1:",
		"conn0", "conn7",
		"nic0", "nic7",
		"vec 0x19", "vec 0x27",
		"pool:",
		"sched:",
		"events:",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if strings.Contains(dump, "cpu2:") || strings.Contains(dump, "conn8") {
		t.Errorf("dump lists hardware beyond the 2P × 8NIC shape:\n%s", dump)
	}
}

// DumpState must follow the configured topology, not the paper's shape.
func TestDumpStateCustomTopology(t *testing.T) {
	cfg := DefaultConfig(ModeNone, ttcp.TX, 65536)
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 0
	t4 := topo.Uniform(4, 3, 1)
	cfg.Topology = &t4
	m := NewMachine(cfg)
	defer m.Shutdown()
	m.Measure(1_000_000)

	dump := m.DumpState()
	for _, want := range []string{"cpu3:", "nic2", "conn2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if strings.Contains(dump, "nic3") || strings.Contains(dump, "cpu4:") {
		t.Errorf("dump lists hardware beyond the 4P × 3NIC shape:\n%s", dump)
	}
}
