package core

import (
	"fmt"
	"strings"

	"repro/internal/perf"
	"repro/internal/ttcp"
)

// Check is one verified claim from the paper: what the paper says, what
// the simulator measured, and whether the measurement falls in the
// acceptance band.
type Check struct {
	ID       string `json:"id"`       // e.g. "fig3.ordering"
	Claim    string `json:"claim"`    // the paper's statement
	Measured string `json:"measured"` // what this run produced
	Pass     bool   `json:"pass"`
}

// VerifyShape runs the experiment suite and scores every reproduction
// claim from EXPERIMENTS.md. It is the executable form of that document:
// the acceptance bands encode "same shape as the paper", not absolute
// equality. cfgFor lets callers shrink windows (tests) or change seeds.
// The underlying runs execute concurrently on the default runner; see
// VerifyShapeWith for an explicit (or serial) runner.
func VerifyShape(cfgFor func(Mode, ttcp.Direction, int) Config) []Check {
	return VerifyShapeWith(nil, cfgFor)
}

// verifyPoints are the distinct operating points the VerifyShape checks
// consume, prefetched concurrently before the (serial) scoring pass.
var verifyPoints = []struct {
	M    Mode
	D    ttcp.Direction
	Size int
}{
	{ModeNone, ttcp.TX, 65536},
	{ModeProc, ttcp.TX, 65536},
	{ModeIRQ, ttcp.TX, 65536},
	{ModeFull, ttcp.TX, 65536},
	{ModeNone, ttcp.TX, 128},
	{ModeFull, ttcp.TX, 128},
	{ModeNone, ttcp.RX, 65536},
}

// verifyMissHook, when non-nil, is called for every operating point the
// scoring pass requests that was not prefetched from verifyPoints (and
// therefore runs serially, bypassing the runner). Tests use it to detect
// verifyPoints drifting out of sync with the checks.
var verifyMissHook func(Mode, ttcp.Direction, int)

// VerifyShapeWith is VerifyShape on an explicit runner (nil = the default
// runner; NewRunner(1) scores from strictly sequential runs). Scores are
// bit-identical regardless of the runner: every run is an independent
// seeded simulation.
func VerifyShapeWith(r *Runner, cfgFor func(Mode, ttcp.Direction, int) Config) []Check {
	if cfgFor == nil {
		cfgFor = DefaultConfig
	}
	if r == nil {
		r = &defaultRunner
	}
	var checks []Check
	add := func(id, claim string, pass bool, measured string, args ...any) {
		checks = append(checks, Check{
			ID: id, Claim: claim, Pass: pass,
			Measured: fmt.Sprintf(measured, args...),
		})
	}

	// Prefetch every known operating point in parallel, then let the
	// checks read from the cache; get falls back to a direct run for any
	// point not in verifyPoints.
	key := func(m Mode, d ttcp.Direction, size int) string {
		return fmt.Sprintf("%v/%v/%d", m, d, size)
	}
	run := r.runFunc()
	prefetched := make([]*Result, len(verifyPoints))
	r.Do(len(verifyPoints), func(i int) {
		p := verifyPoints[i]
		prefetched[i] = run(cfgFor(p.M, p.D, p.Size))
	})
	runs := map[string]*Result{}
	for i, p := range verifyPoints {
		runs[key(p.M, p.D, p.Size)] = prefetched[i]
	}
	get := func(m Mode, d ttcp.Direction, size int) *Result {
		k := key(m, d, size)
		if r, ok := runs[k]; ok {
			return r
		}
		// Fallback for points missing from verifyPoints: a serial run
		// outside the runner. The hook lets tests assert this never
		// happens, keeping verifyPoints in sync with the checks below.
		if verifyMissHook != nil {
			verifyMissHook(m, d, size)
		}
		res := run(cfgFor(m, d, size))
		runs[k] = res
		return res
	}

	// --- Figure 3: ordering and gains ---
	none := get(ModeNone, ttcp.TX, 65536)
	proc := get(ModeProc, ttcp.TX, 65536)
	irq := get(ModeIRQ, ttcp.TX, 65536)
	full := get(ModeFull, ttcp.TX, 65536)

	procRatio := proc.Mbps / none.Mbps
	add("fig3.proc-no-gain",
		"process affinity alone has little impact on throughput",
		procRatio > 0.95 && procRatio < 1.05,
		"proc/none throughput ratio %.3f", procRatio)

	irqGain := irq.Mbps/none.Mbps - 1
	add("fig3.irq-gain",
		"interrupt affinity alone improves throughput (paper: up to 25%)",
		irqGain > 0.05,
		"+%.1f%%", 100*irqGain)

	fullGain := full.Mbps/none.Mbps - 1
	add("fig3.full-gain",
		"full affinity achieves the best gains (paper: up to 29%)",
		fullGain > 0.10 && full.Mbps >= irq.Mbps*0.99,
		"+%.1f%% (irq +%.1f%%)", 100*fullGain, 100*irqGain)

	add("fig3.utilization",
		"CPUs almost fully utilized in all cases",
		none.AvgUtil > 0.95 && full.AvgUtil > 0.95,
		"none %.0f%%, full %.0f%%", 100*none.AvgUtil, 100*full.AvgUtil)

	// --- Figure 4: cost bands ---
	add("fig4.tx64k-cost",
		"TX 64KB cost ≈1.9 no-aff -> ≈1.4 full-aff GHz/Gbps",
		none.CostGHzPerGbps > 1.2 && none.CostGHzPerGbps < 2.4 &&
			full.CostGHzPerGbps < none.CostGHzPerGbps,
		"%.2f -> %.2f", none.CostGHzPerGbps, full.CostGHzPerGbps)

	noneSmall := get(ModeNone, ttcp.TX, 128)
	fullSmall := get(ModeFull, ttcp.TX, 128)
	smallImp := 1 - fullSmall.CostGHzPerGbps/noneSmall.CostGHzPerGbps
	largeImp := 1 - full.CostGHzPerGbps/none.CostGHzPerGbps
	add("fig4.size-trend",
		"affinity has a bigger impact on large transfers",
		largeImp > smallImp,
		"64KB %.1f%% vs 128B %.1f%%", 100*largeImp, 100*smallImp)

	// --- Table 1: characterization shape ---
	tabNone := BaselineTable(none)
	add("table1.overall-mpi",
		"overall no-affinity MPI ≈ 0.0078 at TX 64KB",
		tabNone.Overall.MPI > 0.004 && tabNone.Overall.MPI < 0.012,
		"%.4f", tabNone.Overall.MPI)

	tabSmall := BaselineTable(noneSmall)
	var ifaceSmall float64
	for _, row := range tabSmall.Rows {
		if row.Bin == perf.BinInterface {
			ifaceSmall = row.PctCycles
		}
	}
	add("table1.interface-small",
		"the sockets interface dominates 128B transfers (paper: 42%)",
		ifaceSmall > 0.30 && ifaceSmall < 0.55,
		"%.1f%%", 100*ifaceSmall)

	rxLarge := get(ModeNone, ttcp.RX, 65536)
	tabRx := BaselineTable(rxLarge)
	var rxCopies BinRowView
	for _, row := range tabRx.Rows {
		if row.Bin == perf.BinCopies {
			rxCopies = BinRowView{Pct: row.PctCycles, CPI: row.CPI}
		}
	}
	add("table1.rx-copy-cpi",
		"RX 64KB copies show rep-mov CPI (paper: 66) and dominate time",
		rxCopies.CPI > 10 && rxCopies.Pct > 0.25,
		"CPI %.1f, %.1f%% of cycles", rxCopies.CPI, 100*rxCopies.Pct)

	add("table1.rx-more-memory-bound",
		"TX has lower CPI and MPI than RX",
		tabNone.Overall.CPI < tabRx.Overall.CPI && tabNone.Overall.MPI < tabRx.Overall.MPI,
		"TX CPI %.2f vs RX %.2f", tabNone.Overall.CPI, tabRx.Overall.CPI)

	// --- Table 2: locks ---
	lbNone := LockStats(none)
	lbFull := LockStats(full)
	add("table2.lock-branches",
		"full affinity retires far fewer lock branches; mispredict ratio inflates",
		lbFull.Branches < lbNone.Branches/2 && lbFull.MispredictRatio > lbNone.MispredictRatio,
		"branches %d -> %d, ratio %.3f%% -> %.3f%%",
		lbNone.Branches, lbFull.Branches, 100*lbNone.MispredictRatio, 100*lbFull.MispredictRatio)

	// --- Figure 5: indicators ---
	shares := map[perf.Event]float64{}
	for _, sh := range Indicators(none) {
		shares[sh.Event] = sh.Share
	}
	othersBelow := true
	for ev, v := range shares {
		if ev == perf.MachineClears || ev == perf.LLCMisses || ev == perf.Instructions {
			continue
		}
		if v >= shares[perf.MachineClears] || v >= shares[perf.LLCMisses] {
			othersBelow = false
		}
	}
	add("fig5.dominant-events",
		"machine clears and LLC misses account for most attributed time",
		othersBelow && shares[perf.MachineClears] > 0.10 && shares[perf.LLCMisses] > 0.10,
		"clears %.1f%%, LLC %.1f%%", 100*shares[perf.MachineClears], 100*shares[perf.LLCMisses])

	// --- Table 3: improvement decomposition ---
	cmp := Compare(none, full)
	var bufImp, copyImp float64
	bufLargest := true
	for _, b := range cmp.Bins {
		switch b.Bin {
		case perf.BinBufMgmt:
			bufImp = b.CyclesImp
		case perf.BinCopies:
			copyImp = b.CyclesImp
		}
	}
	for _, b := range cmp.Bins {
		if b.Bin != perf.BinBufMgmt && b.CyclesImp > bufImp {
			bufLargest = false
		}
	}
	add("table3.bufmgmt-carries-gain",
		"buffer management contributes the largest share of the 64KB improvement",
		bufLargest && bufImp > 0.05,
		"buf mgmt %.1f%% of total %.1f%%", 100*bufImp, 100*cmp.OverallCycles)
	add("table3.copies-unaffected",
		"affinity did not seem to affect copies",
		copyImp > -0.05 && copyImp < 0.05,
		"copies improvement %.1f%%", 100*copyImp)

	// --- Table 4: clear distribution ---
	noneS := get(ModeNone, ttcp.TX, 128)
	fullS := get(ModeFull, ttcp.TX, 128)
	handlerClears := func(r *Result, cpu int) uint64 {
		var total uint64
		for _, v := range Vectors {
			sym := r.Ctr.Table().Lookup(fmt.Sprintf("IRQ%#x_interrupt", int(v)))
			if sym >= 0 {
				total += r.Ctr.Get(cpu, sym, perf.MachineClears)
			}
		}
		return total
	}
	add("table4.handlers-cpu0",
		"no affinity: CPU0 services all device interrupts",
		handlerClears(noneS, 1) == 0 && handlerClears(noneS, 0) > 0,
		"cpu0 %d, cpu1 %d handler clears", handlerClears(noneS, 0), handlerClears(noneS, 1))
	add("table4.handlers-split",
		"full affinity divides the interrupt handlers between the processors",
		handlerClears(fullS, 0) > 0 && handlerClears(fullS, 1) > 0,
		"cpu0 %d, cpu1 %d handler clears", handlerClears(fullS, 0), handlerClears(fullS, 1))

	// --- Table 5: correlations ---
	add("table5.correlations",
		"LLC and clear improvements correlate with time improvements (p<0.05)",
		cmp.CorrLLC >= cmp.CorrCritical && cmp.CorrClears >= cmp.CorrCritical,
		"rho LLC %.2f, clears %.2f (critical %.3f)", cmp.CorrLLC, cmp.CorrClears, cmp.CorrCritical)

	return checks
}

// BinRowView is a small projection used by VerifyShape.
type BinRowView struct {
	Pct float64
	CPI float64
}

// FormatChecks renders a verification scorecard.
func FormatChecks(checks []Check) string {
	var b strings.Builder
	pass := 0
	for _, c := range checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		} else {
			pass++
		}
		fmt.Fprintf(&b, "[%s] %-26s %s\n       measured: %s\n", mark, c.ID, c.Claim, c.Measured)
	}
	fmt.Fprintf(&b, "%d/%d checks passed\n", pass, len(checks))
	return b.String()
}
