package core

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/ttcp"
)

// The paper's §5 4P observation: "Without affinity, the bottleneck that
// CPU0 imposes on a 4P system becomes even more pronounced. CPU0 is fully
// saturated with interrupt processing, even though there are idle cycles
// available on the other processors." Affinity gains are accordingly
// larger on 4P than on 2P — though the paper attributes that to load
// imbalance rather than affinity itself, which is why its deep analysis
// sticks to 2P.
func fourPConfig(mode Mode, size int) Config {
	cfg := DefaultConfig(mode, ttcp.TX, size)
	cfg.NumCPUs = 4
	cfg.WarmupCycles = 30_000_000
	cfg.MeasureCycles = 120_000_000
	return cfg
}

func TestFourPNoAffinityCPU0Bottleneck(t *testing.T) {
	r := Run(fourPConfig(ModeNone, 65536))
	// CPU0 saturated...
	if r.Util[0] < 0.95 {
		t.Errorf("CPU0 utilization %.2f, want ~1 (interrupt saturation)", r.Util[0])
	}
	// ...while other processors have idle cycles.
	var othersIdle float64
	for _, u := range r.Util[1:] {
		othersIdle += 1 - u
	}
	if othersIdle < 0.10 {
		t.Errorf("other CPUs idle total %.2f, want visible idle headroom", othersIdle)
	}
}

func TestFourPAffinityGainExceeds2P(t *testing.T) {
	gain := func(cpus int) float64 {
		base := DefaultConfig(ModeNone, ttcp.TX, 65536)
		base.NumCPUs = cpus
		base.WarmupCycles = 30_000_000
		base.MeasureCycles = 120_000_000
		full := base
		full.Mode = ModeFull
		rb := Run(base)
		rf := Run(full)
		return rf.Mbps/rb.Mbps - 1
	}
	g2 := gain(2)
	g4 := gain(4)
	if g4 <= g2 {
		t.Errorf("4P gain %.1f%% not above 2P gain %.1f%% (paper §5)", 100*g4, 100*g2)
	}
}

func TestFourPFullAffinitySpreadsInterrupts(t *testing.T) {
	r := Run(fourPConfig(ModeFull, 65536))
	// With 8 NICs over 4 CPUs, each CPU serves 2 NICs' interrupts.
	for cpuID := 0; cpuID < 4; cpuID++ {
		var irqs uint64
		for _, v := range Vectors {
			sym := r.Ctr.Table().Lookup(handlerName(v))
			irqs += r.Ctr.Get(cpuID, sym, perf.IRQsReceived)
		}
		if irqs == 0 {
			t.Errorf("CPU%d received no device interrupts under full affinity", cpuID)
		}
	}
}
