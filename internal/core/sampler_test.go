package core

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/ttcp"
)

// The paper's methodological premise: over a long run, statistical
// sampling converges on the true distribution of where time is spent.
// The sampler's bin shares must approach the exact counters' shares.
func TestSamplerConvergesToExactDistribution(t *testing.T) {
	cfg := testConfig(ModeNone, ttcp.TX, 65536)
	m := NewMachine(cfg)
	defer m.Shutdown()
	m.Eng.Run(sim.Time(cfg.WarmupCycles))

	snap := m.Ctr.Snapshot()
	s := m.NewSampler(20_000) // 10 µs, Oprofile-ish
	m.Eng.Run(m.Eng.Now() + sim.Time(cfg.MeasureCycles))
	s.Stop()
	diff := m.Ctr.Diff(snap)

	var busy uint64
	for b := perf.Bin(0); b < perf.NumBins; b++ {
		if b == perf.BinIdle {
			continue
		}
		busy += diff.BinTotal(b, perf.Cycles)
	}
	sampled := s.BinShares()
	for _, b := range perf.StackBins() {
		exact := float64(diff.BinTotal(b, perf.Cycles)) / float64(busy)
		got := sampled[b]
		if exact < 0.02 {
			continue // tiny bins are sampling-noise dominated
		}
		if got < exact*0.6 || got > exact*1.5 {
			t.Errorf("bin %s: sampled %.1f%% vs exact %.1f%%", b, 100*got, 100*exact)
		}
	}
	if s.Total == 0 || len(s.TopSymbols(0, 3)) == 0 {
		t.Fatal("sampler collected nothing")
	}
	if s.Format() == "" {
		t.Fatal("empty format")
	}
}

// On an idle machine, nearly all samples must be idle.
func TestSamplerIdleMachine(t *testing.T) {
	cfg := testConfig(ModeNone, ttcp.TX, 65536)
	cfg.SkipWorkload = true
	m := NewMachine(cfg)
	defer m.Shutdown()
	s := m.NewSampler(20_000)
	m.Eng.Run(50_000_000)
	s.Stop()
	if s.Total == 0 {
		t.Fatal("no ticks")
	}
	if float64(s.Idle)/float64(s.Total) < 0.95 {
		t.Fatalf("idle fraction %.2f on an idle machine", float64(s.Idle)/float64(s.Total))
	}
}
