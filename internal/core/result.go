package core

import (
	"fmt"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Result is one measured steady-state window.
type Result struct {
	Cfg Config

	// ElapsedCycles is the measured window length.
	ElapsedCycles uint64
	// Bytes is application-level goodput over the window.
	Bytes uint64
	// Transactions counts completed ttcp read/write calls.
	Transactions uint64
	// Mbps is goodput in megabits per second of virtual time.
	Mbps float64
	// Util is per-CPU utilization in [0,1]; AvgUtil the mean.
	Util    []float64
	AvgUtil float64
	// CostGHzPerGbps is busy cycles per bit transferred — the paper's
	// Figure 4 metric ("GHz/Gbps").
	CostGHzPerGbps float64
	// Drops counts receive-ring overflow drops (should be zero).
	Drops uint64

	// Degradation metrics — all zero on a clean run.
	//
	// Retransmits counts SUT-side TCP segments retransmitted in the
	// window; WireDrops the frames lost on the wire (random loss, burst
	// loss, downed links). WireBytes is the raw volume the SUT's MACs
	// moved in the workload direction (TX: serialized including
	// retransmissions; RX: received including duplicates), and
	// GoodputRatio is Bytes/WireBytes — how much of the wire's work was
	// useful. FlapRecoveryCycles lists, per completed link flap, the
	// gap between link-up and the first frame moving again.
	Retransmits        uint64
	WireDrops          uint64
	WireBytes          uint64
	GoodputRatio       float64
	FlapRecoveryCycles []uint64

	// Reordering metrics — all zero on a clean, statically-steered run.
	//
	// OutOfOrder counts segments the go-back-N receivers (SUT sockets
	// and far-end clients alike) dropped for arriving out of order:
	// nonzero when frames of one flow were serviced from two queues
	// concurrently (the flow-director re-steering pathology) or after
	// wire loss. DupAcks counts the duplicate acknowledgments those
	// drops drew, FastRetransmits the dup-ACK-triggered go-back
	// episodes (timeout recoveries are counted in Retransmits only).
	// FlowResteers counts queue re-programs the flow director issued on
	// task migrations — zero under every static steering policy.
	OutOfOrder      uint64
	DupAcks         uint64
	FastRetransmits uint64
	FlowResteers    uint64

	// Workload-layer metrics — zero/nil for the bulk ttcp workload,
	// which records no per-request latency.
	//
	// Requests counts the per-request latency samples recorded in the
	// window; LatencyP50/P99/P999Cycles are the windowed latency
	// quantiles in cycles (divide by Cfg.CPU.ClockHz for seconds) and
	// Latency the full windowed sketch they come from. For the openloop
	// workload, ConnsGenerated/ConnsAbandoned count the cell's arrival
	// accounting (completed connections are Transactions) and SynDrops
	// the connection attempts the overloaded SUT refused at the listener
	// or receive ring.
	Requests          uint64
	LatencyP50Cycles  uint64
	LatencyP99Cycles  uint64
	LatencyP999Cycles uint64
	Latency           *stats.Sketch
	ConnsGenerated    uint64
	ConnsAbandoned    uint64
	SynDrops          uint64

	// InvariantsChecked is set when the post-run invariant pass ran
	// (faulted runs via Run); InvariantViolation holds its failure, if
	// any.
	InvariantsChecked  bool
	InvariantViolation string

	// Aborted marks a run cut short by cooperative cancellation or a
	// budget watchdog (RunControlled); AbortReason says which. An aborted
	// Result is a failure signal, not data: its window metrics are
	// partial, it never enters the cache, and it is never exported — so
	// the fields stay out of ResultExport and the disk store, keeping
	// every served byte identical to an uninterrupted run's.
	Aborted     bool
	AbortReason string

	// Engine is the simulation engine's cumulative scheduling counters
	// at the end of the window (not a windowed delta): how many events
	// the run cost, the queue's high-water mark, and the ladder-band
	// occupancy. Deterministic for a given Config, like everything else
	// here.
	Engine sim.Stats

	// Ctr is the PMU counter delta over the window.
	Ctr *perf.Counters
	// IdleCycles is the per-CPU idle time inside the window.
	IdleCycles []uint64

	// Trace is the machine's timeline recorder (nil unless Config.Trace
	// was set); it holds the whole run's records, not just this window.
	Trace *trace.Recorder
	// Series is the gauge time series sampled over this window (nil
	// unless Config.GaugeCycles was set).
	Series *Series
}

// openLoopHorizon bounds a run-to-completion cell: far beyond any real
// cell's makespan, it only matters if the workload's termination
// accounting is broken (the give-up timers make that a bug, not a
// tuning question).
const openLoopHorizon = uint64(1) << 61

// Run builds a machine, warms it up, measures one window and shuts the
// machine down. This is the primary entry point for experiments. A
// faulted run additionally drains the machine afterwards and checks
// the resource invariants (CheckInvariants), reporting any violation
// on the result.
//
// An open-loop workload (workload.OpenLoop) inverts the protocol: the
// cell runs to completion — the workload halts the engine once every
// generated connection is terminal — so WarmupCycles and MeasureCycles
// are ignored and ElapsedCycles is the cell's makespan.
func Run(cfg Config) *Result {
	m := NewMachine(cfg)
	defer m.Shutdown()
	if m.WL.OpenLoop() && !cfg.SkipWorkload {
		r := m.Measure(openLoopHorizon)
		if !cfg.Faults.Empty() && m.WL.Quiescible() {
			r.InvariantsChecked = true
			if err := m.CheckInvariants(); err != nil {
				r.InvariantViolation = err.Error()
			}
		}
		return r
	}
	m.Eng.Run(sim.Time(cfg.WarmupCycles))
	r := m.Measure(cfg.MeasureCycles)
	if !cfg.Faults.Empty() && m.WL.Quiescible() {
		r.InvariantsChecked = true
		if err := m.CheckInvariants(); err != nil {
			r.InvariantViolation = err.Error()
		}
	}
	return r
}

// Measure runs the machine for the given window and returns the delta
// metrics. It may be called repeatedly for multiple windows.
func (m *Machine) Measure(window uint64) *Result {
	startCycles := uint64(m.Eng.Now())
	startBytes := m.appBytes()
	startTxns := m.transactions()
	startDrops := m.drops()
	startRexmits := m.retransmits()
	startWireDrops := m.wireDrops()
	startWireBytes := m.wireBytes()
	startOOO := m.outOfOrder()
	startDupAcks := m.dupAcks()
	startFastRexmits := m.fastRetransmits()
	startResteers := m.flowResteers()
	snap := m.Ctr.Snapshot()
	var lat0 *stats.Sketch
	if l := m.WL.Latency(); l != nil {
		lat0 = l.Clone()
	}
	idle0 := make([]uint64, len(m.K.CPUs))
	for i, c := range m.K.CPUs {
		idle0[i] = c.IdleCycles()
	}

	var series *Series
	if m.Cfg.GaugeCycles > 0 {
		series = m.startGauges(m.Cfg.GaugeCycles, m.Eng.Now()+sim.Time(window))
	}

	m.Eng.Run(m.Eng.Now() + sim.Time(window))

	elapsed := uint64(m.Eng.Now()) - startCycles
	r := &Result{
		Cfg:             m.Cfg,
		ElapsedCycles:   elapsed,
		Bytes:           m.appBytes() - startBytes,
		Transactions:    m.transactions() - startTxns,
		Drops:           m.drops() - startDrops,
		Retransmits:     m.retransmits() - startRexmits,
		WireDrops:       m.wireDrops() - startWireDrops,
		WireBytes:       m.wireBytes() - startWireBytes,
		OutOfOrder:      m.outOfOrder() - startOOO,
		DupAcks:         m.dupAcks() - startDupAcks,
		FastRetransmits: m.fastRetransmits() - startFastRexmits,
		FlowResteers:    m.flowResteers() - startResteers,
		Ctr:             m.Ctr.Diff(snap),
		Trace:           m.Rec,
		Series:          series,
	}
	if r.WireBytes > 0 {
		r.GoodputRatio = float64(r.Bytes) / float64(r.WireBytes)
	}
	if l := m.WL.Latency(); l != nil {
		d := l.Diff(lat0)
		if d.Count() > 0 {
			r.Latency = d
			r.Requests = d.Count()
			r.LatencyP50Cycles = d.Quantile(0.50)
			r.LatencyP99Cycles = d.Quantile(0.99)
			r.LatencyP999Cycles = d.Quantile(0.999)
		}
	}
	if c, ok := m.WL.(interface {
		Generated() uint64
		Abandoned() uint64
		SynDrops() uint64
	}); ok {
		r.ConnsGenerated = c.Generated()
		r.ConnsAbandoned = c.Abandoned()
		r.SynDrops = c.SynDrops()
	}
	// Flap recoveries are one-shot episodes, not a windowed rate: the
	// result carries every recovery completed by the end of this window.
	r.FlapRecoveryCycles = append([]uint64(nil), m.Faults.Recoveries()...)
	var busyTotal uint64
	for i, c := range m.K.CPUs {
		idle := c.IdleCycles() - idle0[i]
		r.IdleCycles = append(r.IdleCycles, idle)
		if idle > elapsed {
			idle = elapsed
		}
		busy := elapsed - idle
		busyTotal += busy
		u := float64(busy) / float64(elapsed)
		r.Util = append(r.Util, u)
		r.AvgUtil += u
	}
	r.AvgUtil /= float64(len(m.K.CPUs))

	clock := float64(m.Cfg.CPU.ClockHz)
	seconds := float64(elapsed) / clock
	bits := float64(r.Bytes) * 8
	if seconds > 0 {
		r.Mbps = bits / seconds / 1e6
	}
	if bits > 0 {
		r.CostGHzPerGbps = float64(busyTotal) / bits
	}
	r.Engine = m.Eng.Stats()
	return r
}

// String summarizes a result on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s %s %6dB: %7.1f Mb/s  util=%s  cost=%.2f GHz/Gbps  txns=%d",
		r.Cfg.Mode, r.Cfg.Dir, r.Cfg.Size, r.Mbps, utilString(r.Util), r.CostGHzPerGbps, r.Transactions)
}

func utilString(us []float64) string {
	s := "["
	for i, u := range us {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.0f%%", u*100)
	}
	return s + "]"
}
