package core

import (
	"fmt"
	"strings"

	"repro/internal/netdev"
	"repro/internal/topo"
	"repro/internal/ttcp"
	"repro/internal/workload"
)

// ParseMode resolves an affinity mode from its common spellings,
// case-insensitively: none|no|noaff, proc|process, irq|int|interrupt,
// full, partition|part. CLI flags and the HTTP API share this parser, so
// both accept identical vocabularies.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "no", "noaff":
		return ModeNone, nil
	case "proc", "process":
		return ModeProc, nil
	case "irq", "int", "interrupt":
		return ModeIRQ, nil
	case "full":
		return ModeFull, nil
	case "partition", "part":
		return ModePartition, nil
	}
	return 0, fmt.Errorf("unknown affinity mode %q (none|proc|irq|full|partition)", s)
}

// ParseDirection resolves a transfer direction: tx|send|transmit or
// rx|recv|receive, case-insensitively.
func ParseDirection(s string) (ttcp.Direction, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tx", "send", "transmit":
		return ttcp.TX, nil
	case "rx", "recv", "receive":
		return ttcp.RX, nil
	}
	return 0, fmt.Errorf("unknown direction %q (tx|rx)", s)
}

// ParseWorkload resolves a workload spec from the shared CLI/HTTP
// syntax: a kind followed by comma-separated key=value pairs
// ("openloop,conns=100000,arrival=pareto"), or "@file.json" to load a
// JSON Spec. CLI flags, the HTTP API and the examples all share this
// parser. Defaults are applied and the spec validated.
func ParseWorkload(s string) (*workload.Spec, error) {
	return workload.Parse(s)
}

// ParsePolicy resolves a built-in placement policy, accepting the same
// aliases ParseMode does for the mode-shaped policies (proc, int,
// interrupt, part) on top of the canonical names
// none|process|irq|full|partition|rotate|rss|flowdirector.
func ParsePolicy(s string) (topo.PlacementPolicy, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	switch name {
	case "proc":
		name = "process"
	case "int", "interrupt":
		name = "irq"
	case "part":
		name = "partition"
	case "fd", "ntuple":
		name = "flowdirector"
	}
	pol, err := topo.PolicyByName(name)
	if err != nil {
		return nil, fmt.Errorf("unknown placement policy %q (none|process|irq|full|partition|rotate|rss|flowdirector)", s)
	}
	return pol, nil
}

// ParseCoalesce resolves an interrupt-coalescing spec from the shared
// CLI/HTTP syntax: a mode followed by comma-separated key=value pairs
// ("timer,usecs=100", "adaptive,min=5,max=250,frames=8"), or
// "@file.json" to load a JSON netdev.CoalesceConfig. Empty means the
// legacy throttle (nil). Defaults are applied and the config validated.
func ParseCoalesce(s string) (*netdev.CoalesceConfig, error) {
	return netdev.ParseCoalesce(s)
}
