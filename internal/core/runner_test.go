package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/ttcp"
)

// runnerTestConfig keeps the windows short: determinism, not fidelity, is
// under test here.
func runnerTestConfig(mode Mode, dir ttcp.Direction, size int) Config {
	cfg := DefaultConfig(mode, dir, size)
	cfg.WarmupCycles = 5_000_000
	cfg.MeasureCycles = 20_000_000
	return cfg
}

func TestRunnerDoRunsEveryJobExactlyOnce(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 8, 200} {
		var counts [n]atomic.Int32
		NewRunner(workers).Do(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunnerSerialPreservesOrder(t *testing.T) {
	var order []int
	NewRunner(1).Do(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial runner reordered jobs: %v", order)
		}
	}
}

func TestRunnerDoPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic in a job did not propagate to the caller")
		}
	}()
	NewRunner(4).Do(8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestRunnerWorkersResolution(t *testing.T) {
	if NewRunner(3).Workers() != 3 {
		t.Fatal("explicit worker count not honoured")
	}
	if NewRunner(0).Workers() < 1 {
		t.Fatal("default worker count must be at least 1")
	}
	t.Setenv(WorkersEnv, "7")
	if NewRunner(0).Workers() != 7 {
		t.Fatalf("WorkersEnv override ignored: got %d", NewRunner(0).Workers())
	}
	if NewRunner(2).Workers() != 2 {
		t.Fatal("explicit worker count must beat WorkersEnv")
	}
	t.Setenv(WorkersEnv, "junk")
	if NewRunner(0).Workers() < 1 {
		t.Fatal("invalid WorkersEnv must fall back to GOMAXPROCS")
	}
}

// TestParallelSweepBitIdentical is the correctness anchor of the runner:
// a parallel sweep must render byte-identically to a serial one.
func TestParallelSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison in -short mode")
	}
	base := runnerTestConfig(ModeNone, ttcp.TX, 128)
	sizes := []int{128, 4096, 65536}
	modes := Modes()

	serial := NewRunner(1).RunSweep(base, ttcp.TX, sizes, modes)
	parallel := NewRunner(8).RunSweep(base, ttcp.TX, sizes, modes)

	if got, want := parallel.FormatFig3(), serial.FormatFig3(); got != want {
		t.Errorf("FormatFig3 diverged:\nserial:\n%s\nparallel:\n%s", want, got)
	}
	if got, want := parallel.FormatFig4(), serial.FormatFig4(); got != want {
		t.Errorf("FormatFig4 diverged:\nserial:\n%s\nparallel:\n%s", want, got)
	}
	if got, want := parallel.CSV(), serial.CSV(); got != want {
		t.Errorf("CSV diverged:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestParallelSeedsBitIdentical checks RunSeeds: the aggregate (means,
// stdevs, per-seed order) must not depend on the worker count.
func TestParallelSeedsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed comparison in -short mode")
	}
	cfg := runnerTestConfig(ModeFull, ttcp.TX, 65536)

	serial := NewRunner(1).RunSeeds(cfg, 4)
	parallel := NewRunner(4).RunSeeds(cfg, 4)

	if got, want := parallel.String(), serial.String(); got != want {
		t.Errorf("aggregate diverged:\nserial:   %s\nparallel: %s", want, got)
	}
	if len(parallel.Results) != len(serial.Results) {
		t.Fatalf("result count diverged: %d vs %d", len(parallel.Results), len(serial.Results))
	}
	for i := range serial.Results {
		if parallel.Results[i].Cfg.Seed != serial.Results[i].Cfg.Seed {
			t.Errorf("seed order diverged at %d: %d vs %d",
				i, parallel.Results[i].Cfg.Seed, serial.Results[i].Cfg.Seed)
		}
		if parallel.Results[i].String() != serial.Results[i].String() {
			t.Errorf("per-seed result diverged at %d:\nserial:   %s\nparallel: %s",
				i, serial.Results[i], parallel.Results[i])
		}
	}
}

// TestRunAllMatchesSequentialRun checks the facade-level batch entry
// point against individual Run calls.
func TestRunAllMatchesSequentialRun(t *testing.T) {
	if testing.Short() {
		t.Skip("batch comparison in -short mode")
	}
	cfgs := []Config{
		runnerTestConfig(ModeNone, ttcp.TX, 1024),
		runnerTestConfig(ModeFull, ttcp.RX, 1024),
		runnerTestConfig(ModeIRQ, ttcp.TX, 128),
	}
	batch := NewRunner(3).RunConfigs(cfgs)
	for i, cfg := range cfgs {
		want := Run(cfg)
		if batch[i].String() != want.String() {
			t.Errorf("cell %d diverged:\nsequential: %s\nbatch:      %s", i, want, batch[i])
		}
		if batch[i].Bytes != want.Bytes || batch[i].Transactions != want.Transactions {
			t.Errorf("cell %d raw counters diverged: bytes %d vs %d, txns %d vs %d",
				i, batch[i].Bytes, want.Bytes, batch[i].Transactions, want.Transactions)
		}
	}
}

// TestVerifyShapeWithRunnerIdentical: the verification scorecard must not
// depend on the worker count either.
func TestVerifyShapeWithRunnerIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("verification comparison in -short mode")
	}
	serial := VerifyShapeWith(NewRunner(1), runnerTestConfig)
	parallel := VerifyShapeWith(NewRunner(8), runnerTestConfig)
	if FormatChecks(parallel) != FormatChecks(serial) {
		t.Errorf("scorecard diverged:\nserial:\n%s\nparallel:\n%s",
			FormatChecks(serial), FormatChecks(parallel))
	}
}
