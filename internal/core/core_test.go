package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apic"
	"repro/internal/perf"
	"repro/internal/ttcp"
)

// testConfig shrinks the measurement window so the suite stays fast; the
// asserted effects are large relative to the added noise.
func testConfig(mode Mode, dir ttcp.Direction, size int) Config {
	cfg := DefaultConfig(mode, dir, size)
	cfg.WarmupCycles = 30_000_000
	cfg.MeasureCycles = 120_000_000
	return cfg
}

// The headline result (Figure 3, §5): at 64 KB transfers, full affinity
// clearly beats no affinity, interrupt affinity lands in between, and
// process-only affinity buys approximately nothing.
func TestModeOrderingTX64K(t *testing.T) {
	res := map[Mode]*Result{}
	for _, m := range Modes() {
		res[m] = Run(testConfig(m, ttcp.TX, 65536))
	}
	none, proc := res[ModeNone].Mbps, res[ModeProc].Mbps
	irq, full := res[ModeIRQ].Mbps, res[ModeFull].Mbps

	if full < none*1.06 {
		t.Errorf("full affinity %.0f Mb/s not clearly above none %.0f", full, none)
	}
	if irq < none*1.03 {
		t.Errorf("irq affinity %.0f Mb/s not above none %.0f", irq, none)
	}
	if full < irq*0.99 {
		t.Errorf("full affinity %.0f below irq affinity %.0f", full, irq)
	}
	// "process affinity alone has little impact on throughput"
	if ratio := proc / none; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("proc affinity %.0f deviates from none %.0f by more than 5%%", proc, none)
	}
	// Cost ordering mirrors bandwidth ordering.
	if res[ModeFull].CostGHzPerGbps >= res[ModeNone].CostGHzPerGbps {
		t.Errorf("full-affinity cost %.2f not below no-affinity cost %.2f",
			res[ModeFull].CostGHzPerGbps, res[ModeNone].CostGHzPerGbps)
	}
}

// Full affinity must reduce GHz/Gbps cost at all four extreme points.
func TestFullAffinityImprovesAllExtremes(t *testing.T) {
	for _, pt := range ExtremePoints() {
		base := Run(testConfig(ModeNone, pt.Dir, pt.Size))
		full := Run(testConfig(ModeFull, pt.Dir, pt.Size))
		imp := 1 - full.CostGHzPerGbps/base.CostGHzPerGbps
		if imp < 0.03 {
			t.Errorf("%s %dB: cost improvement %.1f%%, want >= 3%%", pt.Dir, pt.Size, 100*imp)
		}
		// Affinity has a bigger impact on large transfers (§5).
		_ = imp
	}
}

// "Affinity has a bigger impact on large size transfers" (§5).
func TestAffinityImpactGrowsWithSize(t *testing.T) {
	imp := func(size int) float64 {
		base := Run(testConfig(ModeNone, ttcp.TX, size))
		full := Run(testConfig(ModeFull, ttcp.TX, size))
		return 1 - full.CostGHzPerGbps/base.CostGHzPerGbps
	}
	small := imp(128)
	large := imp(65536)
	if large <= small {
		t.Errorf("64KB improvement %.1f%% not above 128B improvement %.1f%%", 100*large, 100*small)
	}
}

// The SUT is CPU-bound at the measured operating points: "almost fully
// utilized in all cases" (§5).
func TestUtilizationNearFullAndNoDrops(t *testing.T) {
	for _, m := range []Mode{ModeNone, ModeFull} {
		r := Run(testConfig(m, ttcp.TX, 65536))
		if r.AvgUtil < 0.95 {
			t.Errorf("%s: utilization %.2f, want ~1", m, r.AvgUtil)
		}
		if r.Drops != 0 {
			t.Errorf("%s: %d receive drops (flow control broken)", m, r.Drops)
		}
		if r.Transactions == 0 || r.Bytes == 0 {
			t.Errorf("%s: no work measured", m)
		}
	}
}

// Table 3 shape: improvements concentrate in buffer management (and the
// engine), while copies are essentially unaffected; overall cycle, LLC
// and machine-clear improvements are all positive; and the rank
// correlation between cycle improvements and LLC/clear improvements is
// significant (Table 5).
func TestComparisonShape(t *testing.T) {
	base := Run(testConfig(ModeNone, ttcp.TX, 65536))
	full := Run(testConfig(ModeFull, ttcp.TX, 65536))
	cmp := Compare(base, full)

	if cmp.OverallCycles < 0.05 {
		t.Errorf("overall cycles improvement %.1f%%, want >= 5%%", 100*cmp.OverallCycles)
	}
	if cmp.OverallLLC < 0.15 {
		t.Errorf("overall LLC improvement %.1f%%, want >= 15%%", 100*cmp.OverallLLC)
	}
	if cmp.OverallClears < 0.10 {
		t.Errorf("overall clears improvement %.1f%%, want >= 10%%", 100*cmp.OverallClears)
	}

	var bins = map[perf.Bin]BinImprovement{}
	for _, b := range cmp.Bins {
		bins[b.Bin] = b
	}
	// Buffer management carries the largest single-bin improvement.
	buf := bins[perf.BinBufMgmt]
	for _, b := range cmp.Bins {
		if b.Bin != perf.BinBufMgmt && b.CyclesImp > buf.CyclesImp {
			t.Errorf("bin %s improvement %.1f%% exceeds Buf Mgmt's %.1f%%",
				b.Bin, 100*b.CyclesImp, 100*buf.CyclesImp)
		}
	}
	// "affinity did not seem to affect copies" (§6.3).
	if c := bins[perf.BinCopies]; c.CyclesImp > 0.05 || c.CyclesImp < -0.05 {
		t.Errorf("copies improvement %.1f%%, want ~0", 100*c.CyclesImp)
	}
	// Table 5: significant positive correlations.
	if cmp.CorrLLC < cmp.CorrCritical {
		t.Errorf("LLC correlation %.2f below critical %.3f", cmp.CorrLLC, cmp.CorrCritical)
	}
	if cmp.CorrClears < cmp.CorrCritical {
		t.Errorf("clears correlation %.2f below critical %.3f", cmp.CorrClears, cmp.CorrCritical)
	}
}

// Figure 5 shape: machine clears and LLC misses are the two dominant
// performance-impact indicators at the 64 KB operating point.
func TestIndicatorsShape(t *testing.T) {
	r := Run(testConfig(ModeNone, ttcp.TX, 65536))
	shares := map[perf.Event]float64{}
	for _, s := range Indicators(r) {
		shares[s.Event] = s.Share
	}
	clears, llc := shares[perf.MachineClears], shares[perf.LLCMisses]
	for ev, s := range shares {
		if ev == perf.MachineClears || ev == perf.LLCMisses || ev == perf.Instructions {
			continue
		}
		if s >= clears || s >= llc {
			t.Errorf("event %s share %.1f%% rivals clears %.1f%% / LLC %.1f%%",
				ev, 100*s, 100*clears, 100*llc)
		}
	}
	if clears < 0.10 || llc < 0.10 {
		t.Errorf("dominant indicators too small: clears %.1f%%, LLC %.1f%%", 100*clears, 100*llc)
	}
}

// Table 4 shape: with no affinity every interrupt handler's clears are on
// CPU0; with full affinity they split across both processors, and each
// handler's clear count stays in the same ballpark.
func TestClearSymbolDistribution(t *testing.T) {
	base := Run(testConfig(ModeNone, ttcp.TX, 128))
	full := Run(testConfig(ModeFull, ttcp.TX, 128))

	handlerClears := func(r *Result, cpu int) uint64 {
		var total uint64
		for _, v := range Vectors {
			sym := r.Ctr.Table().Lookup(handlerName(v))
			if sym >= 0 {
				total += r.Ctr.Get(cpu, sym, perf.MachineClears)
			}
		}
		return total
	}
	if c1 := handlerClears(base, 1); c1 != 0 {
		t.Errorf("no affinity: CPU1 handler clears = %d, want 0", c1)
	}
	c0, c1 := handlerClears(full, 0), handlerClears(full, 1)
	if c0 == 0 || c1 == 0 {
		t.Errorf("full affinity: handler clears not split (%d/%d)", c0, c1)
	}
	// Per-work handler clears similar across modes ("affinity does not
	// change the arrival behavior of device interrupts").
	baseRate := float64(handlerClears(base, 0)+handlerClears(base, 1)) / float64(base.Bytes)
	fullRate := float64(c0+c1) / float64(full.Bytes)
	if ratio := fullRate / baseRate; ratio < 0.5 || ratio > 2.0 {
		t.Errorf("handler clears per work changed %.2fx across modes", ratio)
	}
}

// Table 2 behaviour: full affinity retires a small fraction of the lock
// branches of no affinity while its mispredict *ratio* inflates.
func TestLockBehaviourTable2(t *testing.T) {
	base := LockStats(Run(testConfig(ModeNone, ttcp.TX, 65536)))
	full := LockStats(Run(testConfig(ModeFull, ttcp.TX, 65536)))
	if full.SpinCycles >= base.SpinCycles {
		t.Errorf("full-affinity spin %d not below no-affinity %d", full.SpinCycles, base.SpinCycles)
	}
	if full.Branches >= base.Branches/2 {
		t.Errorf("full-affinity lock branches %d, want far fewer than %d", full.Branches, base.Branches)
	}
	if full.MispredictRatio <= base.MispredictRatio {
		t.Errorf("mispredict ratio did not inflate: %.4f (full) vs %.4f (none)",
			full.MispredictRatio, base.MispredictRatio)
	}
}

// Same seed, same everything.
func TestRunDeterminism(t *testing.T) {
	a := Run(testConfig(ModeNone, ttcp.RX, 4096))
	b := Run(testConfig(ModeNone, ttcp.RX, 4096))
	if a.Bytes != b.Bytes || a.Transactions != b.Transactions {
		t.Fatalf("identical configs diverged: %d/%d vs %d/%d bytes/txns",
			a.Bytes, a.Transactions, b.Bytes, b.Transactions)
	}
	if a.Ctr.Total(perf.Cycles) != b.Ctr.Total(perf.Cycles) {
		t.Fatal("cycle totals diverged")
	}
	c := testConfig(ModeNone, ttcp.RX, 4096)
	c.Seed = 99
	cc := Run(c)
	if cc.Ctr.Total(perf.Cycles) == a.Ctr.Total(perf.Cycles) {
		t.Fatal("different seeds produced identical cycle totals")
	}
}

// The §7 Linux-2.6-style rotating IRQ policy spreads handlers over both
// CPUs without pinning.
func TestRotateIRQPolicy(t *testing.T) {
	cfg := testConfig(ModeNone, ttcp.TX, 16384)
	cfg.RotateIRQs = true
	r := Run(cfg)
	var c0, c1 uint64
	for _, v := range Vectors {
		sym := r.Ctr.Table().Lookup(handlerName(v))
		c0 += r.Ctr.Get(0, sym, perf.IRQsReceived)
		c1 += r.Ctr.Get(1, sym, perf.IRQsReceived)
	}
	if c0 == 0 || c1 == 0 {
		t.Fatalf("rotate policy did not spread interrupts: %d/%d", c0, c1)
	}
}

// Baseline tables are internally consistent.
func TestBaselineTableConsistency(t *testing.T) {
	r := Run(testConfig(ModeNone, ttcp.RX, 65536))
	tab := BaselineTable(r)
	var sum float64
	for _, row := range tab.Rows {
		if row.PctCycles < 0 || row.PctCycles > 1 {
			t.Errorf("bin %s share %.3f out of range", row.Bin, row.PctCycles)
		}
		sum += row.PctCycles
	}
	// The seven stack bins account for nearly all busy cycles, like the
	// paper's ~99% Overall rows.
	if sum < 0.90 || sum > 1.001 {
		t.Errorf("stack bins cover %.1f%% of busy cycles, want ~99%%", 100*sum)
	}
	if tab.Overall.CPI < 1 || tab.Overall.CPI > 20 {
		t.Errorf("overall CPI %.2f implausible", tab.Overall.CPI)
	}
	// RX copies must be the characteristic high-CPI bin (rep-mov).
	for _, row := range tab.Rows {
		if row.Bin == perf.BinCopies && row.CPI < 10 {
			t.Errorf("RX copies CPI %.1f, want rep-mov-sized (>10)", row.CPI)
		}
	}
	if !strings.Contains(tab.Format(), "Overall") {
		t.Error("formatted table missing Overall row")
	}
}

// Sweeps carry every (mode, size) point and render all figures.
func TestSweepAndRendering(t *testing.T) {
	base := testConfig(ModeNone, ttcp.TX, 128)
	base.WarmupCycles = 20_000_000
	base.MeasureCycles = 40_000_000
	sw := RunSweep(base, ttcp.TX, []int{1024, 16384}, []Mode{ModeNone, ModeFull})
	if len(sw.Points) != 4 {
		t.Fatalf("sweep has %d points, want 4", len(sw.Points))
	}
	if _, ok := sw.Point(ModeFull, 16384); !ok {
		t.Fatal("missing sweep point")
	}
	for _, out := range []string{sw.FormatFig3(), sw.FormatFig4(), sw.CSV()} {
		if !strings.Contains(out, "16384") {
			t.Errorf("rendering missing size row:\n%s", out)
		}
	}
	if !strings.Contains(sw.CSV(), "Full Aff") {
		t.Error("CSV missing mode name")
	}
}

func handlerName(v apic.Vector) string {
	return fmt.Sprintf("IRQ%#x_interrupt", int(v))
}

// Multi-seed aggregation: small variance, positive means, and the
// full-affinity advantage surviving averaging.
func TestRunSeedsAggregate(t *testing.T) {
	cfg := testConfig(ModeNone, ttcp.TX, 16384)
	agg := RunSeeds(cfg, 3)
	if agg.Seeds != 3 || len(agg.Results) != 3 {
		t.Fatalf("aggregate shape wrong: %+v", agg)
	}
	if agg.MbpsMean <= 0 || agg.CostMean <= 0 {
		t.Fatal("degenerate means")
	}
	// Seed-to-seed variation is noise, not signal: well under 10%.
	if agg.MbpsStd > 0.1*agg.MbpsMean {
		t.Errorf("throughput stdev %.1f too large vs mean %.1f", agg.MbpsStd, agg.MbpsMean)
	}
	full := RunSeeds(testConfig(ModeFull, ttcp.TX, 16384), 3)
	if full.MbpsMean <= agg.MbpsMean {
		t.Errorf("full-affinity mean %.1f not above no-affinity mean %.1f", full.MbpsMean, agg.MbpsMean)
	}
	if agg.String() == "" {
		t.Error("empty aggregate string")
	}
}

// Export round-trips through JSON and CSV with sane values.
func TestResultExport(t *testing.T) {
	r := Run(testConfig(ModeFull, ttcp.RX, 8192))
	e := r.Export()
	if e.Mode != "Full Aff" || e.Dir != "RX" || e.Size != 8192 {
		t.Fatalf("export identity wrong: %+v", e)
	}
	if len(e.Bins) != 7 {
		t.Fatalf("export has %d bins", len(e.Bins))
	}
	js, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js, "\"llc_misses\"") || !strings.Contains(js, "Copies") {
		t.Fatalf("json incomplete:\n%s", js)
	}
	row := r.CSVRow()
	if n := strings.Count(row, ","); n != strings.Count(CSVHeader(), ",") {
		t.Fatalf("csv row has %d commas, header %d", n, strings.Count(CSVHeader(), ","))
	}
}

// DumpState renders a complete, parseable diagnostic snapshot.
func TestDumpState(t *testing.T) {
	m := NewMachine(testConfig(ModeFull, ttcp.TX, 16384))
	defer m.Shutdown()
	m.Eng.Run(40_000_000)
	out := m.DumpState()
	for _, want := range []string{"cpu0", "cpu1", "conn0", "conn7", "nic0", "pool:", "sched:", "events:", "ESTABLISHED"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// The executable EXPERIMENTS.md: every encoded claim passes.
func TestVerifyShapeAllPass(t *testing.T) {
	checks := VerifyShape(testConfig)
	if len(checks) < 14 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("[FAIL] %s — %s (measured: %s)", c.ID, c.Claim, c.Measured)
		}
	}
	out := FormatChecks(checks)
	if !strings.Contains(out, "checks passed") {
		t.Error("scorecard rendering broken")
	}
}
