package topo

import (
	"fmt"

	"repro/internal/apic"
)

// Plan is an explicit placement of work onto a Topology: every decision
// the seed's NewMachine used to compute inline from mode switches, made
// first-class and inspectable. A Plan is pure data — applying it (APIC
// smp_affinity writes, sys_sched_setaffinity, NIC flow steering) is the
// machine assembler's job.
type Plan struct {
	// Topo is the shape this plan places onto.
	Topo Topology
	// Policy names the policy that produced the plan (diagnostics).
	Policy string

	// QueueVectors[n][q] is the interrupt vector of NIC n's queue q,
	// allocated dynamically (PaperVectors first).
	QueueVectors [][]apic.Vector
	// IRQMasks[n][q] is the smp_affinity mask to program for that vector;
	// 0 leaves the platform default (all CPUs, which delivers to CPU0).
	IRQMasks [][]uint32
	// ProcMasks[i] is the CPU affinity mask of the process serving
	// connection i; 0 leaves the process unrestricted.
	ProcMasks []uint32
	// StartCPUs[i] is where connection i's process is first enqueued
	// (the scheduler honours ProcMasks from the first placement on).
	StartCPUs []int
	// FlowQueues[i] steers connection i to a specific receive queue of
	// its NIC (RSS indirection); -1 leaves the device's hash in charge.
	FlowQueues []int
	// RotateIRQs selects the 2.6-style rotating delivery policy (§7)
	// instead of static lowest-in-mask routing.
	RotateIRQs bool
	// FlowDirector asks the machine to re-program each flow's receive
	// queue to follow its serving process's CPU on every migration
	// (dynamic steering over the RSS baseline above). The in-flight
	// frames left on the previous queue are the reordering mechanism
	// the Fermilab papers describe.
	FlowDirector bool
}

// NewPlan builds the neutral skeleton for a Topology: vectors allocated
// in NIC-then-queue order, every mask left at the platform default, each
// process started round-robin and every flow hash-steered. Policies
// start from this and override what they care about.
func NewPlan(t Topology) (*Plan, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Topo: t, Policy: "skeleton"}
	alloc := NewVectorAllocator()
	for n := range t.NICs {
		nq := t.QueuesOf(n)
		vecs := make([]apic.Vector, nq)
		for q := range vecs {
			v, err := alloc.Alloc()
			if err != nil {
				return nil, err
			}
			vecs[q] = v
		}
		p.QueueVectors = append(p.QueueVectors, vecs)
		p.IRQMasks = append(p.IRQMasks, make([]uint32, nq))
	}
	conns := t.NumConns()
	p.ProcMasks = make([]uint32, conns)
	p.StartCPUs = make([]int, conns)
	p.FlowQueues = make([]int, conns)
	for i := 0; i < conns; i++ {
		p.StartCPUs[i] = i % t.NumCPUs
		p.FlowQueues[i] = -1
	}
	return p, nil
}

// NICOf maps a connection to its adapter.
func (p *Plan) NICOf(conn int) int { return p.Topo.NICOf(conn) }

// QueueFor steers an arbitrary flow id to a receive queue: the planned
// steering for in-range flows, and the plan wrapped around its
// connection range for flows beyond it (connection-churn workloads
// generate far more flows than the plan's population). The caller must
// bound the result by its NIC's queue count on non-uniform shapes.
// -1 leaves the device's hash in charge.
func (p *Plan) QueueFor(flow int) int {
	if len(p.FlowQueues) == 0 || flow < 0 {
		return -1
	}
	return p.FlowQueues[flow%len(p.FlowQueues)]
}

// VectorFor reports the interrupt vector serving connection i: its
// steered queue's vector, or the NIC's first vector under hash steering.
func (p *Plan) VectorFor(conn int) apic.Vector {
	n := p.NICOf(conn)
	q := 0
	if fq := p.FlowQueues[conn]; fq >= 0 {
		q = fq
	}
	return p.QueueVectors[n][q]
}

// Validate checks internal consistency against the plan's Topology:
// per-NIC slice shapes, mask ranges, start CPUs and queue indices.
func (p *Plan) Validate() error {
	t := p.Topo
	if err := t.Validate(); err != nil {
		return err
	}
	if len(p.QueueVectors) != len(t.NICs) || len(p.IRQMasks) != len(t.NICs) {
		return fmt.Errorf("topo: plan covers %d NICs, topology has %d", len(p.QueueVectors), len(t.NICs))
	}
	seen := make(map[apic.Vector]bool)
	for n := range t.NICs {
		nq := t.QueuesOf(n)
		if len(p.QueueVectors[n]) != nq || len(p.IRQMasks[n]) != nq {
			return fmt.Errorf("topo: plan has %d queues for NIC %d, topology has %d", len(p.QueueVectors[n]), n, nq)
		}
		for q, v := range p.QueueVectors[n] {
			if reservedVectors[v] {
				return fmt.Errorf("topo: NIC %d queue %d uses kernel-reserved vector %#x", n, q, int(v))
			}
			if seen[v] {
				return fmt.Errorf("topo: vector %#x assigned twice", int(v))
			}
			seen[v] = true
			if m := p.IRQMasks[n][q]; m&^t.CPUMask() != 0 {
				return fmt.Errorf("topo: NIC %d queue %d mask %#x names CPUs outside the %d-CPU machine", n, q, m, t.NumCPUs)
			}
		}
	}
	conns := t.NumConns()
	if len(p.ProcMasks) != conns || len(p.StartCPUs) != conns || len(p.FlowQueues) != conns {
		return fmt.Errorf("topo: plan covers %d connections, topology has %d", len(p.ProcMasks), conns)
	}
	for i := 0; i < conns; i++ {
		if m := p.ProcMasks[i]; m&^t.CPUMask() != 0 {
			return fmt.Errorf("topo: conn %d process mask %#x names CPUs outside the machine", i, m)
		}
		if c := p.StartCPUs[i]; c < 0 || c >= t.NumCPUs {
			return fmt.Errorf("topo: conn %d starts on CPU %d outside [0,%d)", i, c, t.NumCPUs)
		}
		if fq := p.FlowQueues[i]; fq >= t.QueuesOf(p.NICOf(i)) {
			return fmt.Errorf("topo: conn %d steered to queue %d of a %d-queue NIC", i, fq, t.QueuesOf(p.NICOf(i)))
		}
	}
	return nil
}

// String summarizes the plan for diagnostics.
func (p *Plan) String() string {
	return fmt.Sprintf("plan[%s: %dP × %d NICs × %d queues, %d conns, rotate=%v]",
		p.Policy, p.Topo.NumCPUs, len(p.Topo.NICs), p.Topo.TotalQueues(), p.Topo.NumConns(), p.RotateIRQs)
}
