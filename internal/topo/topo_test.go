package topo

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/apic"
)

func TestVectorAllocatorIssuesPaperVectorsFirst(t *testing.T) {
	a := NewVectorAllocator()
	for i, want := range PaperVectors {
		got, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("vector %d = %#x, want the paper's %#x", i, int(got), int(want))
		}
	}
	// The ninth vector continues past the paper's range.
	v, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x28 {
		t.Errorf("ninth vector = %#x, want 0x28", int(v))
	}
}

func TestVectorAllocatorSkipsReservedAndExhausts(t *testing.T) {
	a := NewVectorAllocator()
	seen := make(map[apic.Vector]bool)
	for i := 0; i < NumAllocatableVectors(); i++ {
		v, err := a.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[v] {
			t.Fatalf("vector %#x issued twice", int(v))
		}
		seen[v] = true
		if v == 0xef || v == 0xfd {
			t.Fatalf("kernel-reserved vector %#x issued", int(v))
		}
	}
	if _, err := a.Alloc(); err == nil {
		t.Fatal("no error after exhausting the vector space")
	}
}

func TestVectorAllocatorReserve(t *testing.T) {
	a := NewVectorAllocator()
	if err := a.Reserve(0x19); err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(0x19); err == nil {
		t.Error("double Reserve accepted")
	}
	if err := a.Reserve(0xef); err == nil {
		t.Error("kernel-reserved vector accepted")
	}
	// The allocator must skip the reserved vector.
	v, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if v == 0x19 {
		t.Error("Alloc reissued a reserved vector")
	}
}

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
		bad  bool
	}{
		{"paper", Paper(), false},
		{"big", Uniform(32, 64, 2), false},
		{"no cpus", Uniform(0, 8, 1), true},
		{"too many cpus", Uniform(33, 8, 1), true},
		{"no nics", Topology{NumCPUs: 2}, true},
		{"negative conns", Topology{NumCPUs: 2, NICs: []NICShape{{}}, Conns: -1}, true},
		{"too many queues", Uniform(2, 1, NumAllocatableVectors()+1), true},
		{"domains ok", Topology{NumCPUs: 4, NICs: []NICShape{{}}, Domains: [][]int{{0, 1}, {2, 3}}}, false},
		{"domain gap", Topology{NumCPUs: 4, NICs: []NICShape{{}}, Domains: [][]int{{0, 1}, {3}}}, true},
		{"domain dup", Topology{NumCPUs: 4, NICs: []NICShape{{}}, Domains: [][]int{{0, 1}, {1, 2, 3}}}, true},
		{"domain range", Topology{NumCPUs: 2, NICs: []NICShape{{}}, Domains: [][]int{{0, 1, 2}}}, true},
		{"empty domain", Topology{NumCPUs: 2, NICs: []NICShape{{}}, Domains: [][]int{{0, 1}, {}}}, true},
	}
	for _, c := range cases {
		err := c.topo.Validate()
		if c.bad && err == nil {
			t.Errorf("%s: invalid topology accepted", c.name)
		}
		if !c.bad && err != nil {
			t.Errorf("%s: valid topology rejected: %v", c.name, err)
		}
	}
}

func TestTopologyHelpers(t *testing.T) {
	topo := Uniform(4, 2, 3)
	topo.Conns = 5
	topo.Domains = [][]int{{0, 1}, {2, 3}}
	if got := topo.TotalQueues(); got != 6 {
		t.Errorf("TotalQueues = %d, want 6", got)
	}
	if got := topo.NumConns(); got != 5 {
		t.Errorf("NumConns = %d, want 5", got)
	}
	if got := topo.NICOf(3); got != 1 {
		t.Errorf("NICOf(3) = %d, want 1", got)
	}
	if got := topo.DomainOf(2); got != 1 {
		t.Errorf("DomainOf(2) = %d, want 1", got)
	}
	if got := topo.CPUMask(); got != 0xf {
		t.Errorf("CPUMask = %#x, want 0xf", got)
	}
	if got := Paper().NumConns(); got != 8 {
		t.Errorf("paper conns = %d, want 8", got)
	}
}

// The paper's Figure 2 placement: under irq/full policies the eight NICs
// split 4/4 across the two CPUs, and full additionally pins process i to
// its NIC's CPU.
func TestPaperPolicies(t *testing.T) {
	paper := Paper()
	plan := func(pol PlacementPolicy) *Plan {
		p, err := pol.Place(paper)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s plan invalid: %v", pol.Name(), err)
		}
		return p
	}

	for i, v := range plan(None{}).QueueVectors {
		if v[0] != PaperVectors[i] {
			t.Errorf("NIC %d vector %#x, want %#x", i, int(v[0]), int(PaperVectors[i]))
		}
	}

	irq := plan(IRQ{})
	for n := 0; n < 8; n++ {
		want := uint32(1)
		if n >= 4 {
			want = 2
		}
		if got := irq.IRQMasks[n][0]; got != want {
			t.Errorf("irq: NIC %d mask %#x, want %#x", n, got, want)
		}
		if irq.ProcMasks[n] != 0 {
			t.Errorf("irq: process %d pinned (%#x), want free", n, irq.ProcMasks[n])
		}
	}

	proc := plan(Process{})
	for i := 0; i < 8; i++ {
		want := uint32(1)
		if i >= 4 {
			want = 2
		}
		if got := proc.ProcMasks[i]; got != want {
			t.Errorf("process: conn %d mask %#x, want %#x", i, got, want)
		}
		if proc.IRQMasks[i][0] != 0 {
			t.Errorf("process: NIC %d vector pinned, want default", i)
		}
	}

	full := plan(Full{})
	for i := 0; i < 8; i++ {
		if full.ProcMasks[i] != full.IRQMasks[i][0] {
			t.Errorf("full: conn %d proc mask %#x != its vector mask %#x",
				i, full.ProcMasks[i], full.IRQMasks[i][0])
		}
	}

	part := plan(Partition{})
	for i := 0; i < 8; i++ {
		if part.ProcMasks[i] != 2 {
			t.Errorf("partition: conn %d mask %#x, want 0x2 (off CPU0)", i, part.ProcMasks[i])
		}
		if part.IRQMasks[i][0] != 0 {
			t.Errorf("partition: NIC %d vector pinned, want CPU0 default", i)
		}
	}

	rot := plan(Rotate{})
	if !rot.RotateIRQs {
		t.Error("rotate: RotateIRQs not set")
	}
}

func TestPartitionUsesDomains(t *testing.T) {
	topo := Uniform(4, 4, 1)
	topo.Domains = [][]int{{0, 1}, {2, 3}}
	p, err := Partition{}.Place(topo)
	if err != nil {
		t.Fatal(err)
	}
	for n := range p.IRQMasks {
		if p.IRQMasks[n][0] != 0x3 {
			t.Errorf("NIC %d IRQ mask %#x, want domain 0 (0x3)", n, p.IRQMasks[n][0])
		}
	}
	for i, m := range p.ProcMasks {
		if m != 0xc {
			t.Errorf("conn %d proc mask %#x, want domain 1+ (0xc)", i, m)
		}
	}
}

func TestPartitionSingleCPUDegenerate(t *testing.T) {
	p, err := Partition{}.Place(Uniform(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.ProcMasks {
		if m != 0 {
			t.Errorf("1-CPU partition pinned a process (%#x)", m)
		}
	}
}

func TestRSSPlanSpreadsQueuesAndFlows(t *testing.T) {
	topo := Uniform(2, 2, 4)
	topo.Conns = 8
	p, err := RSS{}.Place(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Queue vectors alternate CPUs.
	g := 0
	for n := range p.IRQMasks {
		for q := range p.IRQMasks[n] {
			want := uint32(1) << uint(g%2)
			if p.IRQMasks[n][q] != want {
				t.Errorf("nic%d q%d mask %#x, want %#x", n, q, p.IRQMasks[n][q], want)
			}
			g++
		}
	}
	// The four flows of each NIC land on four distinct queues.
	for n := 0; n < 2; n++ {
		used := map[int]bool{}
		for i := n; i < 8; i += 2 {
			q := p.FlowQueues[i]
			if q < 0 || used[q] {
				t.Errorf("nic%d flow %d queue %d reused or unsteered", n, i, q)
			}
			used[q] = true
		}
	}
	// RSS pins no processes.
	for i, m := range p.ProcMasks {
		if m != 0 {
			t.Errorf("conn %d pinned (%#x) under RSS", i, m)
		}
	}
}

func TestMultiQueueFullPinsToQueueCPU(t *testing.T) {
	topo := Uniform(4, 2, 2)
	topo.Conns = 8
	p, err := Full{}.Place(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n, q := p.NICOf(i), p.FlowQueues[i]
		if q < 0 {
			t.Fatalf("conn %d unsteered under multi-queue full affinity", i)
		}
		if p.ProcMasks[i] != p.IRQMasks[n][q] {
			t.Errorf("conn %d proc mask %#x != queue mask %#x", i, p.ProcMasks[i], p.IRQMasks[n][q])
		}
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Plan {
		p, err := Full{}.Place(Paper())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := fresh()
	p.IRQMasks[0][0] = 1 << 5 // CPU outside the 2-CPU machine
	if err := p.Validate(); err == nil {
		t.Error("out-of-range IRQ mask accepted")
	}
	p = fresh()
	p.QueueVectors[1][0] = p.QueueVectors[0][0]
	if err := p.Validate(); err == nil {
		t.Error("duplicate vector accepted")
	}
	p = fresh()
	p.QueueVectors[0][0] = 0xef
	if err := p.Validate(); err == nil {
		t.Error("kernel-reserved vector accepted")
	}
	p = fresh()
	p.StartCPUs[0] = 7
	if err := p.Validate(); err == nil {
		t.Error("out-of-range start CPU accepted")
	}
	p = fresh()
	p.FlowQueues[0] = 3
	if err := p.Validate(); err == nil {
		t.Error("out-of-range flow queue accepted")
	}
	p = fresh()
	p.ProcMasks = p.ProcMasks[:4]
	if err := p.Validate(); err == nil {
		t.Error("short ProcMasks accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, pol := range Policies() {
		got, err := PolicyByName(pol.Name())
		if err != nil {
			t.Errorf("%s: %v", pol.Name(), err)
		}
		if got.Name() != pol.Name() {
			t.Errorf("PolicyByName(%q).Name() = %q", pol.Name(), got.Name())
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPlanString(t *testing.T) {
	p, err := RSS{}.Place(Uniform(2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"rss", "2P", "2 NICs", "8 queues"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}

// FlowDirector is RSS's static placement plus the dynamic-steering
// flag: every static field matches the RSS plan exactly (the reordering
// comparison is apples-to-apples), only FlowDirector differs.
func TestFlowDirectorMatchesRSSStatically(t *testing.T) {
	topo := Uniform(2, 2, 4)
	topo.Conns = 8
	rss, err := RSS{}.Place(topo)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := FlowDirector{}.Place(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.Validate(); err != nil {
		t.Fatal(err)
	}
	if !fd.FlowDirector {
		t.Error("flowdirector plan does not set FlowDirector")
	}
	if rss.FlowDirector {
		t.Error("rss plan sets FlowDirector")
	}
	if fd.Policy != "flowdirector" {
		t.Errorf("policy name %q", fd.Policy)
	}
	fd.Policy, fd.FlowDirector = rss.Policy, rss.FlowDirector
	if !reflect.DeepEqual(rss, fd) {
		t.Errorf("flowdirector static placement diverges from rss:\nrss: %+v\nfd:  %+v", rss, fd)
	}
}
