package topo

import "fmt"

// PlacementPolicy turns a Topology into a Plan. Implementations are the
// paper's affinity modes plus the §7/§8 extensions; custom policies can
// place work any other way (a plan is just data).
type PlacementPolicy interface {
	// Name labels the policy (CLI parsing, plan diagnostics).
	Name() string
	// Place computes the placement, erroring only on shapes the topology
	// itself cannot express (Topology.Validate).
	Place(t Topology) (*Plan, error)
}

// blockOf distributes item i of n over cpus in contiguous blocks — the
// paper's 4-NICs-per-CPU / 4-processes-per-CPU split generalized.
func blockOf(i, n, cpus int) int {
	per := (n + cpus - 1) / cpus
	return i / per
}

// flowQueueOf steers connection i to a queue of its NIC: connections
// sharing a NIC spread round-robin over its queues.
func flowQueueOf(t Topology, i int) int {
	return (i / len(t.NICs)) % t.QueuesOf(t.NICOf(i))
}

// irqBlockMasks fills the plan's IRQ masks with the paper's block
// distribution: queue g of G total goes to CPU g/ceil(G/P).
func irqBlockMasks(p *Plan) {
	total := p.Topo.TotalQueues()
	g := 0
	for n := range p.IRQMasks {
		for q := range p.IRQMasks[n] {
			p.IRQMasks[n][q] = 1 << uint(blockOf(g, total, p.Topo.NumCPUs))
			g++
		}
	}
}

// None is the baseline: interrupts on the platform default (CPU0),
// processes wherever the scheduler puts them.
type None struct{}

// Name implements PlacementPolicy.
func (None) Name() string { return "none" }

// Place implements PlacementPolicy.
func (None) Place(t Topology) (*Plan, error) {
	p, err := NewPlan(t)
	if err != nil {
		return nil, err
	}
	p.Policy = "none"
	return p, nil
}

// Process pins serving processes in contiguous blocks across the CPUs
// (the paper's 4/4 split) and leaves interrupts on CPU0.
type Process struct{}

// Name implements PlacementPolicy.
func (Process) Name() string { return "process" }

// Place implements PlacementPolicy.
func (Process) Place(t Topology) (*Plan, error) {
	p, err := NewPlan(t)
	if err != nil {
		return nil, err
	}
	p.Policy = "process"
	for i := range p.ProcMasks {
		p.ProcMasks[i] = 1 << uint(blockOf(i, len(p.ProcMasks), t.NumCPUs))
	}
	return p, nil
}

// IRQ pins each queue's interrupt vector in contiguous blocks across the
// CPUs (/proc/irq/N/smp_affinity) and leaves processes free.
type IRQ struct{}

// Name implements PlacementPolicy.
func (IRQ) Name() string { return "irq" }

// Place implements PlacementPolicy.
func (IRQ) Place(t Topology) (*Plan, error) {
	p, err := NewPlan(t)
	if err != nil {
		return nil, err
	}
	p.Policy = "irq"
	irqBlockMasks(p)
	return p, nil
}

// Full combines IRQ's vector pinning with pinning each process to the
// CPU that services its flow's queue — the paper's best mode.
type Full struct{}

// Name implements PlacementPolicy.
func (Full) Name() string { return "full" }

// Place implements PlacementPolicy.
func (Full) Place(t Topology) (*Plan, error) {
	p, err := NewPlan(t)
	if err != nil {
		return nil, err
	}
	p.Policy = "full"
	irqBlockMasks(p)
	for i := range p.ProcMasks {
		n := p.NICOf(i)
		q := flowQueueOf(t, i)
		p.FlowQueues[i] = q
		p.ProcMasks[i] = p.IRQMasks[n][q]
	}
	return p, nil
}

// Partition is the §7 related-work approach (AsyMOS, ETA): interrupt
// processing confined to one side of the machine, applications to the
// other. With locality domains defined, domain 0 takes the interrupts
// and the remaining domains the applications; on a flat machine CPU0
// takes the interrupts (the platform default) and processes keep off it.
type Partition struct{}

// Name implements PlacementPolicy.
func (Partition) Name() string { return "partition" }

// Place implements PlacementPolicy.
func (Partition) Place(t Topology) (*Plan, error) {
	p, err := NewPlan(t)
	if err != nil {
		return nil, err
	}
	p.Policy = "partition"
	irqSide := uint32(1) // flat machine: the CPU0 default delivery
	explicit := false
	if len(t.Domains) >= 2 {
		irqSide = domainMask(t.Domains[0])
		explicit = true
	}
	appSide := t.CPUMask() &^ irqSide
	if appSide == 0 {
		// Degenerate shape (one CPU): nothing to partition.
		return p, nil
	}
	if explicit {
		for n := range p.IRQMasks {
			for q := range p.IRQMasks[n] {
				p.IRQMasks[n][q] = irqSide
			}
		}
	}
	for i := range p.ProcMasks {
		p.ProcMasks[i] = appSide
	}
	return p, nil
}

// Rotate leaves all masks at the default and selects the Linux-2.6-style
// rotating delivery the paper discusses in §7.
type Rotate struct{}

// Name implements PlacementPolicy.
func (Rotate) Name() string { return "rotate" }

// Place implements PlacementPolicy.
func (Rotate) Place(t Topology) (*Plan, error) {
	p, err := NewPlan(t)
	if err != nil {
		return nil, err
	}
	p.Policy = "rotate"
	p.RotateIRQs = true
	return p, nil
}

// RSS is the paper's §8 future work made a policy: every queue's vector
// spreads round-robin across the CPUs and each NIC's flows spread
// round-robin across its queues (the indirection table), so interrupt
// load balances per-flow with no process pinning at all.
type RSS struct{}

// Name implements PlacementPolicy.
func (RSS) Name() string { return "rss" }

// Place implements PlacementPolicy.
func (RSS) Place(t Topology) (*Plan, error) {
	p, err := NewPlan(t)
	if err != nil {
		return nil, err
	}
	p.Policy = "rss"
	g := 0
	for n := range p.IRQMasks {
		for q := range p.IRQMasks[n] {
			p.IRQMasks[n][q] = 1 << uint(g%t.NumCPUs)
			g++
		}
	}
	for i := range p.FlowQueues {
		p.FlowQueues[i] = flowQueueOf(t, i)
	}
	return p, nil
}

// FlowDirector is Intel's dynamic sequel to RSS (the Fermilab papers in
// PAPERS.md): the static placement is exactly RSS's — queue vectors
// round-robin across CPUs, flows striped over queues as the initial
// indirection table — but the plan additionally asks the machine to
// re-program each flow's queue to follow its serving process's current
// CPU on every migration. Frames already queued (or coalesce-deferred)
// on the old queue are then serviced concurrently with new frames on
// the new queue: the packet-reordering pathology.
type FlowDirector struct{}

// Name implements PlacementPolicy.
func (FlowDirector) Name() string { return "flowdirector" }

// Place implements PlacementPolicy.
func (FlowDirector) Place(t Topology) (*Plan, error) {
	p, err := RSS{}.Place(t)
	if err != nil {
		return nil, err
	}
	p.Policy = "flowdirector"
	p.FlowDirector = true
	return p, nil
}

// Policies lists every built-in placement policy.
func Policies() []PlacementPolicy {
	return []PlacementPolicy{None{}, Process{}, IRQ{}, Full{}, Partition{}, Rotate{}, RSS{}, FlowDirector{}}
}

// PolicyByName resolves a built-in policy from its Name.
func PolicyByName(name string) (PlacementPolicy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("topo: unknown placement policy %q", name)
}
