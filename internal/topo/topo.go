// Package topo separates what the simulated machine looks like from
// where work lands on it. A Topology describes the hardware shape —
// processors, optional NUMA-ish locality domains, adapters with one or
// more receive queues, and the connection population served over them.
// A Plan describes placement — which CPU each queue's interrupt vector
// is routed to, which CPUs each serving process may run on, and which
// receive queue each flow is steered to. PlacementPolicy implementations
// turn a Topology into a Plan; the paper's four affinity modes, the §7
// partition and rotate variants, and the §8 RSS future work are all
// policies over the same machine description.
//
// The paper's own SUT (two processors, eight single-queue NICs, one
// connection and process per NIC) is just the default Topology; the
// layer exists so 4P/8P scaling curves and multi-queue RSS sweeps are
// configuration, not special cases.
package topo

import "fmt"

// NICShape describes one adapter of a Topology.
type NICShape struct {
	// Queues is the number of receive (RSS) queues, each with its own
	// interrupt vector; 0 or 1 is a classic single-queue device.
	Queues int
	// LinkBps is the link speed; 0 selects the paper's 1 Gb/s.
	LinkBps uint64
}

// queues normalizes the zero value to a single-queue device.
func (s NICShape) queues() int {
	if s.Queues <= 0 {
		return 1
	}
	return s.Queues
}

// Topology is the machine shape. It says nothing about placement — the
// same Topology can run under any PlacementPolicy.
type Topology struct {
	// NumCPUs is the processor count (1..32, the APIC's addressing limit).
	NumCPUs int
	// Domains optionally groups CPUs into NUMA-ish locality domains.
	// nil means one domain holding every CPU. When set, the domains must
	// partition [0, NumCPUs) exactly. Domain-aware policies (Partition)
	// use them; the rest treat the machine as flat.
	Domains [][]int
	// NICs lists the adapters.
	NICs []NICShape
	// Conns is the number of TCP connections (and serving processes);
	// 0 means one per NIC, the paper's shape. Connection i is carried by
	// NIC i % len(NICs).
	Conns int
}

// Uniform builds a Topology of identical NICs: cpus processors and nics
// adapters with queues receive queues each. Uniform(2, 8, 1) is the
// paper's machine.
func Uniform(cpus, nics, queues int) Topology {
	t := Topology{NumCPUs: cpus, NICs: make([]NICShape, nics)}
	for i := range t.NICs {
		t.NICs[i].Queues = queues
	}
	return t
}

// Paper returns the paper's SUT shape: 2 processors × 8 single-queue NICs.
func Paper() Topology { return Uniform(2, 8, 1) }

// Validate rejects shapes the simulator cannot express: no CPUs or NICs,
// more CPUs than the APIC can address, domains that fail to partition the
// CPU set, or more total queues than allocatable interrupt vectors.
func (t Topology) Validate() error {
	if t.NumCPUs <= 0 {
		return fmt.Errorf("topo: need at least one CPU, got %d", t.NumCPUs)
	}
	if t.NumCPUs > 32 {
		return fmt.Errorf("topo: %d CPUs exceeds the APIC's 32-processor addressing", t.NumCPUs)
	}
	if len(t.NICs) == 0 {
		return fmt.Errorf("topo: need at least one NIC")
	}
	if t.Conns < 0 {
		return fmt.Errorf("topo: negative connection count %d", t.Conns)
	}
	if total, max := t.TotalQueues(), NumAllocatableVectors(); total > max {
		return fmt.Errorf("topo: %d interrupt queues exceed the %d allocatable vectors", total, max)
	}
	if t.Domains != nil {
		seen := make([]bool, t.NumCPUs)
		for di, d := range t.Domains {
			if len(d) == 0 {
				return fmt.Errorf("topo: domain %d is empty", di)
			}
			for _, c := range d {
				if c < 0 || c >= t.NumCPUs {
					return fmt.Errorf("topo: domain %d names CPU %d outside [0,%d)", di, c, t.NumCPUs)
				}
				if seen[c] {
					return fmt.Errorf("topo: CPU %d appears in two domains", c)
				}
				seen[c] = true
			}
		}
		for c, ok := range seen {
			if !ok {
				return fmt.Errorf("topo: CPU %d belongs to no domain", c)
			}
		}
	}
	return nil
}

// NumConns resolves the connection count (Conns, or one per NIC).
func (t Topology) NumConns() int {
	if t.Conns > 0 {
		return t.Conns
	}
	return len(t.NICs)
}

// QueuesOf reports NIC n's receive-queue count (≥ 1).
func (t Topology) QueuesOf(n int) int { return t.NICs[n].queues() }

// TotalQueues sums receive queues — and therefore interrupt vectors —
// across every NIC.
func (t Topology) TotalQueues() int {
	total := 0
	for _, s := range t.NICs {
		total += s.queues()
	}
	return total
}

// NICOf maps a connection to the adapter that carries it.
func (t Topology) NICOf(conn int) int { return conn % len(t.NICs) }

// DomainOf reports the locality domain of a CPU (0 when Domains is nil).
func (t Topology) DomainOf(cpu int) int {
	for di, d := range t.Domains {
		for _, c := range d {
			if c == cpu {
				return di
			}
		}
	}
	return 0
}

// CPUMask is the all-processors affinity mask for this shape.
func (t Topology) CPUMask() uint32 {
	return uint32(1<<uint(t.NumCPUs)) - 1
}

func domainMask(cpus []int) uint32 {
	var m uint32
	for _, c := range cpus {
		m |= 1 << uint(c)
	}
	return m
}
