package topo

import (
	"fmt"

	"repro/internal/apic"
)

// PaperVectors are the eight NIC interrupt lines of the paper's Table 4,
// in NIC order. Plans hand them out first so the default machine's
// profiler symbols (IRQ0x19_interrupt …) match the paper byte for byte.
var PaperVectors = []apic.Vector{0x19, 0x1a, 0x1b, 0x1d, 0x23, 0x24, 0x25, 0x27}

// Vectors the kernel itself owns (local APIC timer 0xef, reschedule IPI
// 0xfd); device allocation must never collide with them.
var reservedVectors = map[apic.Vector]bool{0xef: true, 0xfd: true}

// VectorAllocator hands out device interrupt vectors dynamically: the
// paper's eight Table-4 lines first, then the rest of the platform's
// device range (0x28–0xee, wrapping to 0x10–0x18), skipping the
// kernel-reserved vectors. This replaces the seed's static eight-vector
// table — the machine shape, not a constant, now bounds the NIC count.
type VectorAllocator struct {
	issued int
	used   map[apic.Vector]bool
}

// NewVectorAllocator returns a fresh allocator with no vectors issued.
func NewVectorAllocator() *VectorAllocator {
	return &VectorAllocator{used: make(map[apic.Vector]bool)}
}

// allocOrder enumerates every allocatable vector in issue order.
func allocOrder() []apic.Vector {
	var order []apic.Vector
	inPaper := make(map[apic.Vector]bool)
	for _, v := range PaperVectors {
		inPaper[v] = true
		order = append(order, v)
	}
	add := func(lo, hi apic.Vector) {
		for v := lo; v <= hi; v++ {
			if !inPaper[v] && !reservedVectors[v] {
				order = append(order, v)
			}
		}
	}
	add(0x28, 0xee)
	add(0x10, 0x18)
	return order
}

var vectorOrder = allocOrder()

// NumAllocatableVectors is the hard ceiling on simultaneously routed
// device interrupt lines (and therefore total NIC queues).
func NumAllocatableVectors() int { return len(vectorOrder) }

// Alloc issues the next unused vector, or an error once the platform's
// device-vector space is exhausted — the one genuinely impossible shape.
func (a *VectorAllocator) Alloc() (apic.Vector, error) {
	for a.issued < len(vectorOrder) {
		v := vectorOrder[a.issued]
		a.issued++
		if !a.used[v] {
			a.used[v] = true
			return v, nil
		}
	}
	return 0, fmt.Errorf("topo: out of interrupt vectors (%d allocatable)", len(vectorOrder))
}

// Reserve marks a specific vector as taken (callers that hand-place some
// vectors and allocate the rest).
func (a *VectorAllocator) Reserve(v apic.Vector) error {
	if reservedVectors[v] {
		return fmt.Errorf("topo: vector %#x is kernel-reserved", int(v))
	}
	if a.used[v] {
		return fmt.Errorf("topo: vector %#x already allocated", int(v))
	}
	a.used[v] = true
	return nil
}
