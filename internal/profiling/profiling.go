// Package profiling wires runtime/pprof into the command-line tools: a
// CPU profile captured over the whole run and a heap profile written at
// exit. Both are opt-in via flags and cost nothing when unused.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the given output paths (either may be
// empty). It returns a stop function to defer: stop ends the CPU profile
// and writes the heap profile. On setup failure nothing is left running
// and stop is nil.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
