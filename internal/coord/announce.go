package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Announce registers a worker with a coordinator once. Registration is
// idempotent; a worker announces on startup and re-announces on an
// interval so a restarted coordinator relearns its fleet.
func Announce(ctx context.Context, client *http.Client, coordURL string, rq RegisterRequest) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(rq)
	if err != nil {
		return fmt.Errorf("encoding registration: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordURL+"/v1/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("coordinator %s: status %d: %s", coordURL, resp.StatusCode, e.Error)
	}
	return nil
}

// AnnounceLoop announces immediately, then re-announces every interval
// until ctx is cancelled. Failures are logged through logf and retried
// at the same cadence — a coordinator that is down at worker startup
// learns of the worker as soon as it comes up.
func AnnounceLoop(ctx context.Context, coordURL string, rq RegisterRequest, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &http.Client{Timeout: interval}
	ok := false
	for {
		err := Announce(ctx, client, coordURL, rq)
		switch {
		case err == nil && !ok:
			ok = true
			logf("registered with coordinator %s as %s", coordURL, rq.URL)
		case err != nil && ctx.Err() == nil:
			ok = false
			logf("announce to %s failed (will retry): %v", coordURL, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}
