package coord

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Journal is the coordinator's durable record of completed cells: one
// append-only record per fingerprint holding the raw NDJSON line the
// fleet produced for it. Because a journaled line is the exact bytes a
// worker streamed — never re-encoded — replaying it after a coordinator
// crash cannot perturb a merged sweep by a single byte: a restarted
// coordinator serves journaled cells straight from memory and dispatches
// only the remainder.
//
// Layout under dir:
//
//	checkpoint   the last compaction — a complete, atomically renamed
//	             record file (write temp + fsync + rename, the disk
//	             cache's idiom)
//	wal          records appended since that checkpoint
//
// Appends write straight through to the wal file (one write syscall per
// record, so a crashed process loses nothing the kernel accepted) and
// are fsynced in batches by a background syncer — group commit. The only
// exposure is power loss inside one sync interval, and losing an
// unsynced tail is safe: those cells are simply unknown again and
// re-dispatch deterministically.
//
// Recovery mirrors the disk cache's CorruptDiscards semantics: a record
// that fails its length or CRC check — and everything after it, since a
// torn write orphans the tail — is discarded and counted, never served.
type Journal struct {
	dir string

	mu       sync.Mutex
	entries  map[string][]byte
	order    []string // fingerprints in first-append order, for compaction
	wal      *os.File
	walBytes int64
	dirty    bool
	closed   bool

	appends        atomic.Uint64
	discards       atomic.Uint64
	checkpoints    atomic.Uint64
	writeErrors    atomic.Uint64
	resumed        int
	lastCheckpoint atomic.Int64 // unix nanos, 0 = never this process

	syncStop chan struct{}
	syncDone chan struct{}
}

const (
	journalMagic   = "ajl1"
	checkpointName = "checkpoint"
	walName        = "wal"
	// journalMaxLine bounds one record's payload, matching the dispatch
	// path's response cap.
	journalMaxLine = 16 << 20
)

// OpenJournal opens (creating if needed) the journal under dir, replays
// checkpoint + wal into memory, and starts the group-commit syncer.
// syncEvery is the fsync batching interval; 0 selects 100ms.
func OpenJournal(dir string, syncEvery time.Duration) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if syncEvery <= 0 {
		syncEvery = 100 * time.Millisecond
	}
	j := &Journal{
		dir:      dir,
		entries:  make(map[string][]byte),
		syncStop: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	// The checkpoint is a complete prior compaction; the wal holds
	// everything since. Read in that order so a fingerprint journaled in
	// both (possible if a crash interrupted checkpointing before the wal
	// truncate) keeps its first-written line.
	j.replayFile(filepath.Join(dir, checkpointName))
	j.replayFile(filepath.Join(dir, walName))
	j.resumed = len(j.entries)

	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if st, err := wal.Stat(); err == nil {
		j.walBytes = st.Size()
	}
	j.wal = wal
	go j.syncLoop(syncEvery)
	return j, nil
}

// replayFile loads every valid record from one journal file. Any
// malformed record discards it and the rest of the file: past the first
// torn or corrupt record nothing downstream can be trusted, so the tail
// is treated as unknown (the cells re-dispatch).
func (j *Journal) replayFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		return // absent is the common cold-start case
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		fp, line, err := readRecord(r)
		if err == io.EOF {
			return
		}
		if err != nil {
			j.discards.Add(1)
			return
		}
		if _, ok := j.entries[fp]; ok {
			continue
		}
		j.entries[fp] = line
		j.order = append(j.order, fp)
	}
}

// appendRecord renders one record:
//
//	ajl1 <fingerprint> <len> <crc32c-of-line> <line>\n
//
// The line itself is NDJSON and so contains no newline; the trailing
// newline plus the length plus the CRC make truncation and corruption
// both detectable.
func appendRecord(buf []byte, fp string, line []byte) []byte {
	buf = append(buf, journalMagic...)
	buf = append(buf, ' ')
	buf = append(buf, fp...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(len(line)), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, uint64(crc32.Checksum(line, crcTable)), 16)
	buf = append(buf, ' ')
	buf = append(buf, line...)
	buf = append(buf, '\n')
	return buf
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// readRecord parses one record, returning io.EOF at a clean end of file
// and a descriptive error for anything torn or corrupt.
func readRecord(r *bufio.Reader) (fp string, line []byte, err error) {
	raw, err := r.ReadBytes('\n')
	if err == io.EOF && len(raw) == 0 {
		return "", nil, io.EOF
	}
	if err != nil {
		return "", nil, fmt.Errorf("torn record: %w", err)
	}
	raw = raw[:len(raw)-1]
	fields := bytes.SplitN(raw, []byte(" "), 5)
	if len(fields) != 5 || string(fields[0]) != journalMagic {
		return "", nil, fmt.Errorf("malformed record")
	}
	n, err := strconv.ParseInt(string(fields[2]), 10, 64)
	if err != nil || n < 0 || n > journalMaxLine {
		return "", nil, fmt.Errorf("bad record length")
	}
	sum, err := strconv.ParseUint(string(fields[3]), 16, 32)
	if err != nil {
		return "", nil, fmt.Errorf("bad record checksum")
	}
	line = fields[4]
	if int64(len(line)) != n || crc32.Checksum(line, crcTable) != uint32(sum) {
		return "", nil, fmt.Errorf("record failed verification")
	}
	return string(fields[1]), append([]byte(nil), line...), nil
}

// Get returns the journaled line for a fingerprint, if any. The returned
// bytes are shared and must not be mutated (the same convention as the
// fleet memo).
func (j *Journal) Get(fp string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	line, ok := j.entries[fp]
	return line, ok
}

// Len reports the number of journaled cells.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Append records one completed cell. Idempotent per fingerprint — the
// first line wins, which is safe because every line for a fingerprint is
// byte-identical by the determinism guarantee. Write failures are
// counted but not fatal: the journal is an accelerant for recovery, not
// a correctness dependency, so a full disk degrades to re-dispatching.
func (j *Journal) Append(fp string, line []byte) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if _, ok := j.entries[fp]; ok {
		return
	}
	j.entries[fp] = line
	j.order = append(j.order, fp)
	rec := appendRecord(make([]byte, 0, len(line)+len(fp)+32), fp, line)
	if _, err := j.wal.Write(rec); err != nil {
		j.writeErrors.Add(1)
		return
	}
	j.walBytes += int64(len(rec))
	j.dirty = true
	j.appends.Add(1)
}

// Checkpoint compacts the journal: every entry is written to a temporary
// file, fsynced, and renamed over the checkpoint — the atomic-replace
// idiom the disk cache uses — after which the wal is truncated. A crash
// at any point leaves either the old checkpoint + full wal or the new
// checkpoint (+ a possibly stale wal, whose duplicate fingerprints are
// ignored on replay); no interleaving loses an entry.
func (j *Journal) Checkpoint() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpointLocked()
}

func (j *Journal) checkpointLocked() error {
	if j.closed {
		return nil
	}
	tmp, err := os.CreateTemp(j.dir, checkpointName+".tmp*")
	if err != nil {
		j.writeErrors.Add(1)
		return err
	}
	w := bufio.NewWriterSize(tmp, 1<<16)
	var buf []byte
	for _, fp := range j.order {
		buf = appendRecord(buf[:0], fp, j.entries[fp])
		if _, err := w.Write(buf); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			j.writeErrors.Add(1)
			return err
		}
	}
	if err := w.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		j.writeErrors.Add(1)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		j.writeErrors.Add(1)
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(j.dir, checkpointName)); err != nil {
		os.Remove(tmp.Name())
		j.writeErrors.Add(1)
		return err
	}
	// The checkpoint now covers everything; restart the wal. Truncate on
	// the open O_APPEND handle is safe: subsequent writes append at the
	// new (zero) end.
	if err := j.wal.Truncate(0); err != nil {
		j.writeErrors.Add(1)
		return err
	}
	j.wal.Sync()
	j.walBytes = 0
	j.dirty = false
	j.checkpoints.Add(1)
	j.lastCheckpoint.Store(time.Now().UnixNano())
	return nil
}

// syncLoop is the group-commit fsync: appended records are flushed to
// the OS immediately but synced to stable storage in batches.
func (j *Journal) syncLoop(every time.Duration) {
	defer close(j.syncDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-j.syncStop:
			return
		case <-tick.C:
		}
		j.mu.Lock()
		if j.dirty && !j.closed {
			if err := j.wal.Sync(); err != nil {
				j.writeErrors.Add(1)
			}
			j.dirty = false
		}
		j.mu.Unlock()
	}
}

// Close stops the syncer and closes the wal after a final sync. It does
// not checkpoint — Coordinator.Shutdown does that for graceful drains;
// an unclean stop simply leaves the wal to be replayed.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.syncStop)
	<-j.syncDone
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.dirty {
		err = j.wal.Sync()
		j.dirty = false
	}
	if cerr := j.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// JournalStats is the journal block of the coordinator's /healthz.
type JournalStats struct {
	Enabled bool `json:"enabled"`
	// Cells is the resident (and durable) journaled-cell count; Resumed
	// is how many of those were replayed from disk at startup.
	Cells   int `json:"cells"`
	Resumed int `json:"resumed_cells"`
	// WALBytes is the size of the un-compacted tail.
	WALBytes int64 `json:"wal_bytes"`
	// Appends/Checkpoints/CorruptDiscards/WriteErrors are this process's
	// counters; LastCheckpoint is empty until the first checkpoint.
	Appends         uint64 `json:"appends"`
	Checkpoints     uint64 `json:"checkpoints"`
	CorruptDiscards uint64 `json:"corrupt_discards"`
	WriteErrors     uint64 `json:"write_errors"`
	LastCheckpoint  string `json:"last_checkpoint,omitempty"`
}

// Stats snapshots the journal counters; nil-safe (a nil journal reports
// the disabled state).
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	cells, walBytes := len(j.entries), j.walBytes
	j.mu.Unlock()
	s := JournalStats{
		Enabled:         true,
		Cells:           cells,
		Resumed:         j.resumed,
		WALBytes:        walBytes,
		Appends:         j.appends.Load(),
		Checkpoints:     j.checkpoints.Load(),
		CorruptDiscards: j.discards.Load(),
		WriteErrors:     j.writeErrors.Load(),
	}
	if ns := j.lastCheckpoint.Load(); ns != 0 {
		s.LastCheckpoint = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	return s
}
