package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
)

// dispatchCell drives one cell to completion against the fleet: a
// primary attempt loop, plus — if the cell is still unresolved after
// the hedge delay — one duplicate attempt loop racing it. First result
// wins; the straggler's result, keyed to the same fingerprint, is
// discarded when it lands.
func (c *Coordinator) dispatchCell(ctx context.Context, cell serve.SweepCell) ([]byte, error) {
	c.metrics.dispatched.Add(1)
	type outcome struct {
		line []byte
		err  error
	}
	results := make(chan outcome, 2) // buffered: a losing hedge must not leak its goroutine
	// Each attempt loop gets its own cancellable context so the loser of
	// a hedge race is cut off the moment its twin wins: its in-flight
	// POST aborts, the worker sees the client vanish, and the simulation
	// cancels cooperatively instead of burning the slot to completion.
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	launch := func() {
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			line, err := c.attemptLoop(actx, cell)
			results <- outcome{line, err}
		}()
	}
	launch()
	launched, received := 1, 0

	var hedge <-chan time.Time
	if c.hedgeAfter > 0 {
		t := time.NewTimer(c.hedgeAfter)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	for {
		select {
		case o := <-results:
			received++
			if o.err == nil {
				if launched > received {
					// The straggler is still in flight somewhere; whatever
					// it eventually produces — a result, or an abort once
					// the request context closes — duplicates a fingerprint
					// this return already resolved, and is dropped.
					go func() {
						<-results
						c.metrics.hedgeDuplicates.Add(1)
					}()
				}
				return o.line, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if received == launched {
				c.metrics.failed.Add(1)
				return nil, firstErr
			}
		case <-hedge:
			hedge = nil
			launched++
			c.metrics.hedged.Add(1)
			launch()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attemptLoop dispatches the cell until it succeeds or the retry budget
// is spent. Each retry backs off exponentially (capped) and avoids the
// worker that just failed whenever the fleet offers an alternative — a
// cell killed with its worker reassigns, it does not re-queue behind a
// corpse.
func (c *Coordinator) attemptLoop(ctx context.Context, cell serve.SweepCell) ([]byte, error) {
	var lastErr error
	avoid := ""
	backoff := c.retryBase
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if ctx.Err() != nil {
				// The request is gone (client left, or a hedge twin won and
				// the stream completed); this is abandonment, not a retry.
				return nil, ctx.Err()
			}
			c.metrics.retried.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			backoff *= 2
			if backoff > c.retryCap {
				backoff = c.retryCap
			}
		}
		l, err := c.acquireLease(ctx, avoid)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		line, err := c.post(ctx, l, cell)
		c.metrics.observeWorker(l.url, time.Since(start))
		c.reg.release(l)
		if err == nil {
			c.reg.succeed(l.url)
			return line, nil
		}
		if ctx.Err() != nil {
			// The attempt died with its context — a hedge twin won, or the
			// client abandoned the sweep. The worker is not at fault, so
			// its breaker takes no charge.
			c.metrics.cancelled.Add(1)
			return nil, ctx.Err()
		}
		if c.reg.fail(l.url) {
			c.metrics.breakerOpens.Add(1)
		}
		avoid = l.url
		lastErr = err
	}
	return nil, fmt.Errorf("cell failed after %d attempts: %w", c.retries+1, lastErr)
}

// acquireLease blocks until the load-aware plan yields a slot on a
// healthy worker (preferably not avoid), re-planning on every
// join/leave/release wakeup.
func (c *Coordinator) acquireLease(ctx context.Context, avoid string) (*lease, error) {
	for {
		// Snapshot the change channel before trying, so a wakeup between
		// the failed try and the wait is not lost.
		changed := c.reg.waitCh()
		if l := c.reg.tryAcquire(avoid); l != nil {
			return l, nil
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// post dispatches one cell to one worker as a single-cell /v1/sweep and
// returns the worker's one NDJSON line, verbatim (sans newline). Using
// the sweep endpoint — not /v1/run — is what makes the fleet merge
// byte-identical: the line on the wire is the exact encoding a
// single-node sweep streams for this cell, and it is never re-encoded.
//
// The attempt aborts early if the worker is evicted mid-request (its
// lease's down channel closes), so reassignment does not wait out the
// full cell timeout.
func (c *Coordinator) post(ctx context.Context, l *lease, cell serve.SweepCell) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cellTimeout)
	defer cancel()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-l.down:
			cancel()
		case <-watchDone:
		}
	}()

	body, err := json.Marshal(serve.SweepRequest{
		RunRequest: cell.Req,
		Sizes:      []int{cell.Req.Size},
		Modes:      []string{cell.Req.Mode},
	})
	if err != nil {
		return nil, fmt.Errorf("encoding cell: %w", err)
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, l.url+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("worker %s: %w", l.url, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("worker %s: reading response: %w", l.url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker %s: status %d: %s", l.url, resp.StatusCode, bytes.TrimSpace(payload))
	}
	line := bytes.TrimSuffix(payload, []byte("\n"))
	if len(line) == 0 {
		// A worker that cancelled or panicked the cell truncates its
		// stream after the 200 header; an empty body is that signal.
		return nil, fmt.Errorf("worker %s: truncated cell stream", l.url)
	}
	if bytes.ContainsRune(line, '\n') {
		return nil, fmt.Errorf("worker %s: expected one cell line, got several", l.url)
	}
	return line, nil
}
