package coord

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// workerLatencyBuckets are histogram upper bounds in seconds for
// per-worker dispatch latency — the same spread as the worker's own
// request histogram, since a dispatch is one worker request.
var workerLatencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 60, 120}

// cmetrics is the coordinator's hand-rolled Prometheus-text registry:
// request counts by path/status, cell dispatch accounting, and one
// latency histogram per worker so a straggling node is visible at a
// glance.
type cmetrics struct {
	dispatched      atomic.Uint64
	retried         atomic.Uint64
	hedged          atomic.Uint64
	hedgeDuplicates atomic.Uint64
	deduped         atomic.Uint64
	resumeHits      atomic.Uint64
	failed          atomic.Uint64
	registrations   atomic.Uint64
	evictions       atomic.Uint64
	breakerOpens    atomic.Uint64
	cancelled       atomic.Uint64

	mu       sync.Mutex
	requests map[[2]string]uint64 // {path, code} -> count
	workers  map[string]*workerHist
}

type workerHist struct {
	buckets []uint64
	count   uint64
	sum     float64
}

func newCMetrics() *cmetrics {
	return &cmetrics{
		requests: make(map[[2]string]uint64),
		workers:  make(map[string]*workerHist),
	}
}

// observe records one finished coordinator request. Coordinator
// endpoints are streaming merges whose duration is the sweep's, not the
// handler's, so only counts are kept here; latency lives in the
// per-worker histograms below.
func (m *cmetrics) observe(path string, code int) {
	m.mu.Lock()
	m.requests[[2]string{path, fmt.Sprintf("%d", code)}]++
	m.mu.Unlock()
}

// observeWorker records one dispatch attempt's latency against a worker.
func (m *cmetrics) observeWorker(workerURL string, elapsed time.Duration) {
	secs := elapsed.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.workers[workerURL]
	if !ok {
		h = &workerHist{buckets: make([]uint64, len(workerLatencyBuckets))}
		m.workers[workerURL] = h
	}
	for i, le := range workerLatencyBuckets {
		if secs <= le {
			h.buckets[i]++
		}
	}
	h.count++
	h.sum += secs
}

// write renders the exposition text.
func (m *cmetrics) write(w http.ResponseWriter, c *Coordinator) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("affinity_coord_cells_dispatched_total", "Cells sent to workers (first attempts; retries and hedges count separately).", m.dispatched.Load())
	counter("affinity_coord_cells_retried_total", "Cell dispatch retries after a failed or timed-out attempt.", m.retried.Load())
	counter("affinity_coord_cells_hedged_total", "Duplicate dispatches launched against straggling cells.", m.hedged.Load())
	counter("affinity_coord_hedge_duplicates_discarded_total", "Straggler outcomes discarded because the hedge's twin already won the fingerprint.", m.hedgeDuplicates.Load())
	counter("affinity_coord_cells_deduped_total", "Cells served from the fleet memo or coalesced onto an in-flight twin instead of dispatching.", m.deduped.Load())
	counter("affinity_coord_cells_failed_total", "Cells that exhausted their retry budget.", m.failed.Load())
	counter("affinity_coord_registrations_total", "Workers that joined the fleet.", m.registrations.Load())
	counter("affinity_coord_evictions_total", "Workers evicted after consecutive missed heartbeats.", m.evictions.Load())
	counter("affinity_coord_breaker_opens_total", "Worker circuit breakers opened (consecutive dispatch failures or a failed half-open probe).", m.breakerOpens.Load())
	counter("affinity_coord_dispatches_cancelled_total", "Dispatch attempts cancelled because a twin already won the cell (hedge losers, abandoned requests).", m.cancelled.Load())
	counter("affinity_coord_journal_resume_hits_total", "Cells served from the durable journal without dispatching.", m.resumeHits.Load())
	js := c.journal.Stats()
	counter("affinity_coord_journal_appends_total", "Cells appended to the durable journal this process.", js.Appends)
	counter("affinity_coord_journal_corrupt_discards_total", "Corrupt or torn journal records discarded on replay.", js.CorruptDiscards)
	counter("affinity_coord_journal_checkpoints_total", "Journal checkpoint compactions.", js.Checkpoints)
	counter("affinity_coord_journal_write_errors_total", "Best-effort journal write failures.", js.WriteErrors)

	h := c.health()
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("affinity_coord_workers_healthy", "Workers currently in the healthy set.", h.WorkersHealthy)
	gauge("affinity_coord_workers_total", "Workers registered (healthy or not).", h.WorkersTotal)
	gauge("affinity_coord_memo_entries", "Resident fleet-memo entries.", h.MemoEntries)
	gauge("affinity_coord_journal_cells", "Cells resident in the durable journal.", h.Journal.Cells)
	gauge("affinity_coord_journal_wal_bytes", "Un-compacted journal wal bytes.", int(h.Journal.WALBytes))
	fmt.Fprintf(&b, "# HELP affinity_coord_fleet_sims_total Simulations executed across the fleet (sum of worker counters).\n# TYPE affinity_coord_fleet_sims_total counter\naffinity_coord_fleet_sims_total %d\n", h.Fleet.Sims)

	m.mu.Lock()
	fmt.Fprintf(&b, "# HELP affinity_coord_requests_total Coordinator HTTP requests, by path and status code.\n")
	fmt.Fprintf(&b, "# TYPE affinity_coord_requests_total counter\n")
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "affinity_coord_requests_total{path=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}
	fmt.Fprintf(&b, "# HELP affinity_coord_worker_request_seconds Dispatch latency per worker.\n")
	fmt.Fprintf(&b, "# TYPE affinity_coord_worker_request_seconds histogram\n")
	wkeys := make([]string, 0, len(m.workers))
	for u := range m.workers {
		wkeys = append(wkeys, u)
	}
	sort.Strings(wkeys)
	for _, u := range wkeys {
		wh := m.workers[u]
		for i, le := range workerLatencyBuckets {
			fmt.Fprintf(&b, "affinity_coord_worker_request_seconds_bucket{worker=%q,le=%q} %d\n", u, fmt.Sprintf("%g", le), wh.buckets[i])
		}
		fmt.Fprintf(&b, "affinity_coord_worker_request_seconds_bucket{worker=%q,le=\"+Inf\"} %d\n", u, wh.count)
		fmt.Fprintf(&b, "affinity_coord_worker_request_seconds_sum{worker=%q} %g\n", u, wh.sum)
		fmt.Fprintf(&b, "affinity_coord_worker_request_seconds_count{worker=%q} %d\n", u, wh.count)
	}
	m.mu.Unlock()

	fmt.Fprintf(&b, "# HELP affinity_coord_build_info Build identity of the coordinator binary.\n# TYPE affinity_coord_build_info gauge\naffinity_coord_build_info{version=%q} 1\n", c.version)

	fmt.Fprint(w, b.String())
}
