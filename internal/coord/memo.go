package coord

import (
	"container/list"
	"context"
	"sync"
)

// memo is the fleet-wide result dedup: an entry-bounded LRU of raw
// NDJSON lines keyed by cache.Fingerprint, fronted by singleflight so
// concurrent requests for one fingerprint dispatch a single worker
// request. It sits above the workers' own caches — those save the
// simulation, this saves the round trip (and keeps a warm repeat sweep
// from touching the fleet at all).
type memo struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	flight map[string]*memoFlight
}

type memoEntry struct {
	key  string
	line []byte
}

type memoFlight struct {
	done chan struct{}
	line []byte // set before done closes
	err  error
}

func newMemo(maxEntries int) *memo {
	return &memo{
		max:    maxEntries,
		ll:     list.New(),
		byKey:  make(map[string]*list.Element),
		flight: make(map[string]*memoFlight),
	}
}

// len reports resident entries; nil-safe.
func (m *memo) len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// getOrDo returns the memoized line for key, running do at most once
// per key across all concurrent callers. deduped reports whether the
// line came from the memo or a shared flight rather than this caller's
// own dispatch. A waiter whose leader fails contends to re-lead — one
// worker hiccup does not poison every coalesced request — and a waiter
// whose own ctx dies stops waiting.
func (m *memo) getOrDo(ctx context.Context, key string, do func() ([]byte, error)) (line []byte, deduped bool, err error) {
	for {
		m.mu.Lock()
		if el, ok := m.byKey[key]; ok {
			m.ll.MoveToFront(el)
			line := el.Value.(*memoEntry).line
			m.mu.Unlock()
			return line, true, nil
		}
		if fl, ok := m.flight[key]; ok {
			m.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if fl.err == nil {
				return fl.line, true, nil
			}
			continue // leader failed; contend to re-lead
		}
		fl := &memoFlight{done: make(chan struct{})}
		m.flight[key] = fl
		m.mu.Unlock()

		line, err := do()
		m.mu.Lock()
		delete(m.flight, key)
		if err == nil {
			if _, ok := m.byKey[key]; !ok {
				m.byKey[key] = m.ll.PushFront(&memoEntry{key: key, line: line})
				for m.ll.Len() > m.max {
					cold := m.ll.Back()
					m.ll.Remove(cold)
					delete(m.byKey, cold.Value.(*memoEntry).key)
				}
			}
		}
		m.mu.Unlock()
		fl.line, fl.err = line, err
		close(fl.done)
		return line, false, err
	}
}
