package coord

import (
	"testing"
	"time"
)

// TestBreakerTransitions drives one worker's breaker through the full
// cycle: closed → open at the failure threshold, half-open after the
// cooloff admitting exactly one probe, reopen on a failed probe, close
// on a successful one.
func TestBreakerTransitions(t *testing.T) {
	const cooloff = 50 * time.Millisecond
	r := newRegistry(2, cooloff)
	r.upsert("http://w1", "v", 4)

	// Below threshold: still dispatchable.
	if opened := r.fail("http://w1"); opened {
		t.Fatal("breaker opened below threshold")
	}
	if l := r.tryAcquire(""); l == nil {
		t.Fatal("worker undispatchable after one failure")
	} else {
		r.release(l)
	}

	// Threshold reached: opens, and no lease is grantable.
	if opened := r.fail("http://w1"); !opened {
		t.Fatal("breaker did not open at the threshold")
	}
	if l := r.tryAcquire(""); l != nil {
		t.Fatalf("open breaker granted a lease on %s", l.url)
	}
	if ws := r.snapshot()[0]; ws.Breaker != "open" || ws.ConsecFails != 2 {
		t.Fatalf("snapshot = %s/%d, want open/2", ws.Breaker, ws.ConsecFails)
	}

	// Cooloff over: half-open admits exactly one probe.
	time.Sleep(cooloff + 10*time.Millisecond)
	probe := r.tryAcquire("")
	if probe == nil {
		t.Fatal("half-open breaker refused the probe")
	}
	if ws := r.snapshot()[0]; ws.Breaker != "half-open" {
		t.Fatalf("breaker = %s during probe, want half-open", ws.Breaker)
	}
	if l := r.tryAcquire(""); l != nil {
		t.Fatal("half-open breaker admitted a second dispatch alongside the probe")
	}

	// Failed probe: straight back to open.
	r.release(probe)
	if opened := r.fail("http://w1"); !opened {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if l := r.tryAcquire(""); l != nil {
		t.Fatal("reopened breaker granted a lease")
	}

	// Successful probe closes it and the worker serves freely again.
	time.Sleep(cooloff + 10*time.Millisecond)
	probe = r.tryAcquire("")
	if probe == nil {
		t.Fatal("second probe refused")
	}
	r.release(probe)
	r.succeed("http://w1")
	if ws := r.snapshot()[0]; ws.Breaker != "closed" || ws.ConsecFails != 0 {
		t.Fatalf("snapshot after recovery = %s/%d, want closed/0", ws.Breaker, ws.ConsecFails)
	}
	for i := 0; i < 3; i++ {
		l := r.tryAcquire("")
		if l == nil {
			t.Fatalf("closed breaker refused lease %d", i)
		}
		r.release(l)
	}
}

// TestBreakerDisabled: a non-positive threshold turns breakers off — a
// worker keeps taking dispatches no matter how many consecutive
// failures it eats (retry/eviction remain the only defenses).
func TestBreakerDisabled(t *testing.T) {
	r := newRegistry(0, time.Millisecond)
	r.upsert("http://w1", "v", 2)
	for i := 0; i < 10; i++ {
		if opened := r.fail("http://w1"); opened {
			t.Fatal("disabled breaker opened")
		}
	}
	if l := r.tryAcquire(""); l == nil {
		t.Fatal("disabled breaker blocked dispatch")
	}
}

// TestBreakerSuccessResetsStreak: interleaved successes keep a flaky-but-
// working worker dispatchable — only *consecutive* failures open it.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	r := newRegistry(3, time.Minute)
	r.upsert("http://w1", "v", 2)
	for i := 0; i < 10; i++ {
		r.fail("http://w1")
		r.fail("http://w1")
		r.succeed("http://w1")
	}
	if ws := r.snapshot()[0]; ws.Breaker != "closed" {
		t.Fatalf("breaker = %s after alternating outcomes, want closed", ws.Breaker)
	}
}
