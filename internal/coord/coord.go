// Package coord is the fleet coordinator: it accepts the same sweep
// requests as a single affinity-serve worker, expands them into
// fingerprinted cells through the worker's own grid expansion, and
// shards the cells across every registered worker — weighted by each
// worker's advertised concurrency, re-planned as workers join and
// leave. Results merge back into deterministic input order, so the
// fleet's NDJSON stream is byte-identical to one worker answering the
// same request alone.
//
// The byte-identity is structural, not re-encoded: each cell is
// dispatched as a single-cell /v1/sweep, whose one-line response is
// exactly the bytes a single-node sweep would emit for that cell, and
// the coordinator stores and merges those raw lines without ever
// decoding them.
//
// Robustness: per-cell timeout with retry on a different worker under
// capped exponential backoff, hedged duplicate dispatch for stragglers
// (first result wins, by fingerprint), eviction after consecutive
// missed heartbeats with automatic reassignment of in-flight cells,
// and a fleet-wide singleflight memo keyed on cache.Fingerprint so
// identical cells — within one sweep or across clients — dispatch once.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cache"
	"repro/internal/serve"
)

// Options configures a Coordinator. The zero value is serviceable.
type Options struct {
	// Workers seeds the registry with static worker base URLs; more can
	// join at runtime via POST /v1/register.
	Workers []string
	// Heartbeat is the /v1/ping probe interval. 0 selects 2s.
	Heartbeat time.Duration
	// EvictAfter is the consecutive missed heartbeats that evict a
	// worker. 0 selects 3.
	EvictAfter int
	// CellTimeout bounds one dispatch attempt of one cell. 0 selects
	// 5 minutes.
	CellTimeout time.Duration
	// Retries is how many times a failed cell is re-dispatched (on a
	// different worker when the fleet has one). 0 selects 4; negative
	// disables retry.
	Retries int
	// RetryBase and RetryCap shape the exponential backoff between
	// attempts. 0 selects 250ms and 5s.
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeAfter launches a duplicate dispatch for a cell still
	// unfinished after this long; the first result wins and the loser
	// is discarded by fingerprint. 0 selects 30s; negative disables.
	HedgeAfter time.Duration
	// MemoEntries bounds the raw-line result memo (entries, not bytes —
	// one NDJSON line is a few KiB). 0 selects 65536; negative disables.
	MemoEntries int
	// JournalDir enables the durable cell journal under this directory:
	// every completed cacheable cell's raw line is journaled, and a
	// restarted coordinator serves journaled cells without dispatching
	// them. Empty disables (sweep progress dies with the process).
	JournalDir string
	// JournalSync is the journal's group-commit fsync interval. 0
	// selects 100ms.
	JournalSync time.Duration
	// BreakerThreshold consecutive dispatch failures open a worker's
	// circuit breaker. 0 selects 5; negative disables breakers.
	BreakerThreshold int
	// BreakerCooloff is how long an open breaker blocks dispatch before
	// admitting a half-open probe. 0 selects 10s.
	BreakerCooloff time.Duration
	// Version reported by /healthz; "" resolves from build info.
	Version string
	// Client performs worker HTTP requests; nil builds a default.
	Client *http.Client
}

// Coordinator shards sweeps across a worker fleet. Create with New,
// serve it like any http.Handler, Close when done.
type Coordinator struct {
	reg     *registry
	memo    *memo
	journal *Journal
	metrics *cmetrics
	client  *http.Client
	version string

	heartbeat   time.Duration
	evictAfter  int
	cellTimeout time.Duration
	retries     int
	retryBase   time.Duration
	retryCap    time.Duration
	hedgeAfter  time.Duration

	mux    *http.ServeMux
	cancel context.CancelFunc
	done   chan struct{}
}

// New assembles a Coordinator and starts its heartbeat prober. The only
// error path is opening the journal (Options.JournalDir); a journal-less
// coordinator cannot fail to build.
func New(opts Options) (*Coordinator, error) {
	breakerThreshold := opts.BreakerThreshold
	if breakerThreshold == 0 {
		breakerThreshold = 5
	} else if breakerThreshold < 0 {
		breakerThreshold = 0
	}
	breakerCooloff := opts.BreakerCooloff
	if breakerCooloff <= 0 {
		breakerCooloff = 10 * time.Second
	}
	c := &Coordinator{
		reg:         newRegistry(breakerThreshold, breakerCooloff),
		metrics:     newCMetrics(),
		client:      opts.Client,
		version:     opts.Version,
		heartbeat:   opts.Heartbeat,
		evictAfter:  opts.EvictAfter,
		cellTimeout: opts.CellTimeout,
		retries:     opts.Retries,
		retryBase:   opts.RetryBase,
		retryCap:    opts.RetryCap,
		hedgeAfter:  opts.HedgeAfter,
		mux:         http.NewServeMux(),
		done:        make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.version == "" {
		c.version = buildinfo.Version()
	}
	if c.heartbeat <= 0 {
		c.heartbeat = 2 * time.Second
	}
	if c.evictAfter <= 0 {
		c.evictAfter = 3
	}
	if c.cellTimeout <= 0 {
		c.cellTimeout = 5 * time.Minute
	}
	if c.retries == 0 {
		c.retries = 4
	} else if c.retries < 0 {
		c.retries = 0
	}
	if c.retryBase <= 0 {
		c.retryBase = 250 * time.Millisecond
	}
	if c.retryCap <= 0 {
		c.retryCap = 5 * time.Second
	}
	if c.hedgeAfter == 0 {
		c.hedgeAfter = 30 * time.Second
	}
	entries := opts.MemoEntries
	if entries == 0 {
		entries = 65536
	}
	if entries > 0 {
		c.memo = newMemo(entries)
	}
	if opts.JournalDir != "" {
		j, err := OpenJournal(opts.JournalDir, opts.JournalSync)
		if err != nil {
			return nil, err
		}
		c.journal = j
	}
	for _, u := range opts.Workers {
		c.reg.upsert(strings.TrimRight(u, "/"), "", 0)
	}

	c.mux.HandleFunc("POST /v1/register", c.instrument("/v1/register", c.handleRegister))
	c.mux.HandleFunc("POST /v1/sweep", c.instrument("/v1/sweep", c.handleSweep))
	c.mux.HandleFunc("POST /v1/run", c.instrument("/v1/run", c.handleRun))
	c.mux.HandleFunc("GET /healthz", c.instrument("/healthz", c.handleHealthz))
	c.mux.HandleFunc("GET /metrics", c.instrument("/metrics", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.write(w, c)
	}))

	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	go c.probeLoop(ctx)
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Close stops the heartbeat prober and closes the journal (final wal
// sync, no checkpoint — the wal replays on the next open). In-flight
// requests finish on their own contexts.
func (c *Coordinator) Close() {
	c.cancel()
	<-c.done
	c.journal.Close()
}

// Shutdown is the graceful-drain Close: it checkpoints the journal —
// compacting wal into the atomic checkpoint file — before closing it, so
// a restarted coordinator replays one clean file. Call after the HTTP
// server has drained; journaling from still-running handlers after
// Shutdown is a silent no-op.
func (c *Coordinator) Shutdown() error {
	c.cancel()
	<-c.done
	err := c.journal.Checkpoint()
	if cerr := c.journal.Close(); err == nil {
		err = cerr
	}
	return err
}

// probeLoop pings every registered worker each heartbeat interval,
// evicting after consecutive misses and readmitting on recovery.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer close(c.done)
	tick := time.NewTicker(c.heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		var wg sync.WaitGroup
		for _, u := range c.reg.urls() {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				c.probe(ctx, u)
			}(u)
		}
		wg.Wait()
	}
}

// probe performs one heartbeat against one worker.
func (c *Coordinator) probe(ctx context.Context, workerURL string) {
	pctx, cancel := context.WithTimeout(ctx, c.heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, workerURL+"/v1/ping", nil)
	if err != nil {
		c.reg.heartbeatMiss(workerURL, c.evictAfter)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if c.reg.heartbeatMiss(workerURL, c.evictAfter) {
			c.metrics.evictions.Add(1)
		}
		return
	}
	defer resp.Body.Close()
	var p serve.PingResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&p) != nil {
		if c.reg.heartbeatMiss(workerURL, c.evictAfter) {
			c.metrics.evictions.Add(1)
		}
		return
	}
	c.reg.heartbeatOK(workerURL, p)
}

// instrument wraps a handler with latency/status accounting and panic
// recovery, mirroring the worker middleware.
func (c *Coordinator) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				sw.code = http.StatusInternalServerError
				if !sw.wrote {
					httpError(w, http.StatusInternalServerError, "internal error: %v", v)
				}
			}
			c.metrics.observe(path, sw.code)
		}()
		h(sw, r)
	}
}

type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// badRequest renders a validation error exactly as a worker would —
// field-attributable failures carry the "field" key — so clients see
// one API whether they talk to a worker or the fleet.
func badRequest(w http.ResponseWriter, err error) {
	body := map[string]string{"error": err.Error()}
	if field, ok := serve.FieldOf(err); ok {
		body["field"] = field
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(body)
}

// decode reads a strict JSON body (unknown fields are client errors).
func decode[T any](w http.ResponseWriter, r *http.Request, into *T) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// RegisterRequest is the JSON body of POST /v1/register: a worker
// announcing itself (or refreshing its registration — the call is
// idempotent and workers re-announce on an interval).
type RegisterRequest struct {
	// URL is the worker's base URL as the coordinator should reach it.
	URL string `json:"url"`
	// Version is the worker's build version, for mixed-fleet detection.
	Version string `json:"version"`
	// Concurrency is the worker's request limit — the coordinator never
	// holds more than this many cells in flight against it.
	Concurrency int `json:"concurrency"`
}

// RegisterResponse is the JSON body answering /v1/register.
type RegisterResponse struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var rq RegisterRequest
	if !decode(w, r, &rq) {
		return
	}
	u, err := url.Parse(rq.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		httpError(w, http.StatusBadRequest, "url: need an absolute http(s) base URL, got %q", rq.URL)
		return
	}
	if c.reg.upsert(strings.TrimRight(rq.URL, "/"), rq.Version, rq.Concurrency) {
		c.metrics.registrations.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(RegisterResponse{Status: "registered", Workers: len(c.reg.urls())})
}

// handleSweep expands the grid exactly as a worker would and streams
// the merged fleet results in the same deterministic order.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var rq serve.SweepRequest
	if !decode(w, r, &rq) {
		return
	}
	cells, err := rq.Expand()
	if err != nil {
		badRequest(w, err)
		return
	}

	// Every cell dispatches concurrently (backpressure comes from the
	// fleet's slot plan, not from goroutine count); the stream emits in
	// input order as prefixes complete — the same overlap-compute-with-
	// delivery shape as the worker's own sweep handler.
	ctx := r.Context()
	lines := make([][]byte, len(cells))
	errs := make([]error, len(cells))
	ready := make([]chan struct{}, len(cells))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	for i := range cells {
		go func(i int) {
			defer close(ready[i])
			lines[i], errs[i] = c.cell(ctx, cells[i])
		}(i)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for i := range cells {
		select {
		case <-ready[i]:
		case <-ctx.Done():
			return
		}
		if errs[i] != nil {
			// Truncate, like a worker does for a failed cell: the short
			// stream is the failure signal.
			return
		}
		if _, err := w.Write(append(lines[i], '\n')); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleRun serves one cell through the fleet. The response is the
// dispatched cell's raw sweep line re-indented — json.Indent preserves
// key order and escaping, so the body is byte-identical to a worker's
// own /v1/run answer.
func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	var rq serve.RunRequest
	if !decode(w, r, &rq) {
		return
	}
	cfg, err := rq.Config()
	if err != nil {
		badRequest(w, err)
		return
	}
	swq := serve.SweepRequest{
		RunRequest: rq,
		Sizes:      []int{cfg.Size},
		Modes:      []string{serve.ModeToken(cfg.Mode)},
	}
	cells, err := swq.Expand()
	if err != nil || len(cells) != 1 {
		httpError(w, http.StatusInternalServerError, "single-cell expansion failed: %v", err)
		return
	}
	line, err := c.cell(r.Context(), cells[0])
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, line, "", "  "); err != nil {
		httpError(w, http.StatusInternalServerError, "re-indenting result: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	buf.WriteByte('\n')
	w.Write(buf.Bytes())
}

// FleetHealth is the fleet-wide aggregate in the coordinator /healthz:
// worker counters summed so a fleet reads like one big node.
type FleetHealth struct {
	Sims   uint64             `json:"sims_total"`
	Engine serve.EngineHealth `json:"engine"`
}

// CellCounters snapshots the dispatch accounting.
type CellCounters struct {
	Dispatched      uint64 `json:"dispatched"`
	Retried         uint64 `json:"retried"`
	Hedged          uint64 `json:"hedged"`
	HedgeDuplicates uint64 `json:"hedge_duplicates_discarded"`
	Deduped         uint64 `json:"deduped"`
	ResumeHits      uint64 `json:"resume_hits"`
	Failed          uint64 `json:"failed"`
}

// HealthResponse is the JSON body of the coordinator's GET /healthz.
// MixedVersions flags a fleet whose workers disagree on build version —
// their caches key results differently and figure outputs may diverge,
// so deploys should converge the fleet before trusting merged sweeps.
type HealthResponse struct {
	Status         string         `json:"status"`
	Version        string         `json:"version"`
	WorkersHealthy int            `json:"workers_healthy"`
	WorkersTotal   int            `json:"workers_total"`
	MixedVersions  bool           `json:"mixed_versions"`
	Cells          CellCounters   `json:"cells"`
	MemoEntries    int            `json:"memo_entries"`
	Journal        JournalStats   `json:"journal"`
	Fleet          FleetHealth    `json:"fleet"`
	WorkerTable    []WorkerStatus `json:"workers"`
}

func (c *Coordinator) health() HealthResponse {
	table := c.reg.snapshot()
	h := HealthResponse{
		Status:       "ok",
		Version:      c.version,
		WorkersTotal: len(table),
		Cells: CellCounters{
			Dispatched:      c.metrics.dispatched.Load(),
			Retried:         c.metrics.retried.Load(),
			Hedged:          c.metrics.hedged.Load(),
			HedgeDuplicates: c.metrics.hedgeDuplicates.Load(),
			Deduped:         c.metrics.deduped.Load(),
			ResumeHits:      c.metrics.resumeHits.Load(),
			Failed:          c.metrics.failed.Load(),
		},
		MemoEntries: c.memo.len(),
		Journal:     c.journal.Stats(),
		WorkerTable: table,
	}
	versions := make(map[string]bool)
	var band float64
	for _, ws := range table {
		if ws.Healthy {
			h.WorkersHealthy++
		}
		if ws.Version != "" {
			versions[ws.Version] = true
		}
		h.Fleet.Sims += ws.Sims
		e := ws.Engine
		h.Fleet.Engine.Runs += e.Runs
		h.Fleet.Engine.EventsScheduled += e.EventsScheduled
		h.Fleet.Engine.EventsFired += e.EventsFired
		h.Fleet.Engine.EventsCancelled += e.EventsCancelled
		h.Fleet.Engine.Compactions += e.Compactions
		if e.MaxPeakPending > h.Fleet.Engine.MaxPeakPending {
			h.Fleet.Engine.MaxPeakPending = e.MaxPeakPending
		}
		band += e.BandShare * float64(e.EventsScheduled)
	}
	if h.Fleet.Engine.EventsScheduled > 0 {
		h.Fleet.Engine.BandShare = band / float64(h.Fleet.Engine.EventsScheduled)
	}
	h.MixedVersions = len(versions) > 1
	if h.WorkersHealthy == 0 {
		h.Status = "no workers"
	}
	return h
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.health())
}

// cell produces the raw NDJSON line for one cell: first the durable
// journal (a restarted coordinator serves previously completed cells
// without dispatching anything), then the fleet memo's singleflight,
// then a dispatch — whose successful line is journaled before it is
// returned, so completion and durability travel together.
func (c *Coordinator) cell(ctx context.Context, cell serve.SweepCell) ([]byte, error) {
	if !cache.Cacheable(cell.Cfg) {
		return c.dispatchCell(ctx, cell)
	}
	var key string
	if c.journal != nil || c.memo != nil {
		key = cache.Fingerprint(cell.Cfg)
	}
	if line, ok := c.journal.Get(key); ok {
		c.metrics.resumeHits.Add(1)
		return line, nil
	}
	do := func() ([]byte, error) {
		line, err := c.dispatchCell(ctx, cell)
		if err == nil {
			c.journal.Append(key, line)
		}
		return line, err
	}
	if c.memo == nil {
		return do()
	}
	line, deduped, err := c.memo.getOrDo(ctx, key, do)
	if deduped {
		c.metrics.deduped.Add(1)
	}
	return line, err
}
