package coord

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// failAfter fronts a worker and serves only the first n sweep dispatches;
// everything after fails — the coordinator-visible shape of a worker (or
// fleet) dying partway through a sweep.
type failAfter struct {
	h http.Handler
	n atomic.Int64
}

func (f *failAfter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/sweep") && f.n.Add(-1) < 0 {
		http.Error(w, "injected crash", http.StatusServiceUnavailable)
		return
	}
	f.h.ServeHTTP(w, r)
}

// TestCrashRestartResumesFromJournal is the tentpole acceptance: a
// coordinator that dies mid-sweep leaves its completed cells in the
// journal; a restarted coordinator on the same journal dir serves those
// cells without dispatching anything and re-dispatches only the
// remainder — and the merged stream is byte-identical to a run that was
// never interrupted.
func TestCrashRestartResumesFromJournal(t *testing.T) {
	soloURL, _ := newWorker(t)
	code, want := post(t, soloURL.URL+"/v1/sweep", sweepBody(7))
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", code)
	}
	dir := t.TempDir()

	// Epoch A: the worker dies after 3 cells; retries and hedging are off
	// so each lost cell fails fast and the sweep truncates.
	dying := &failAfter{h: serve.New(serve.Options{Runner: core.NewRunner(1), MaxInflight: 2})}
	dying.n.Store(3)
	dyingTS := httptest.NewServer(dying)
	t.Cleanup(dyingTS.Close)

	ctsA, cA := newCoord(t, Options{
		Heartbeat:   50 * time.Millisecond,
		Retries:     -1,
		HedgeAfter:  -1,
		JournalDir:  dir,
		JournalSync: time.Millisecond,
	})
	register(t, ctsA.URL, dyingTS.URL, 2)
	code, partial := post(t, ctsA.URL+"/v1/sweep", sweepBody(7))
	if code != http.StatusOK {
		t.Fatalf("interrupted sweep: status %d", code)
	}
	if partial == want {
		t.Fatal("sweep was supposed to be interrupted but completed fully")
	}
	journaled := cA.journal.Len()
	if journaled == 0 || journaled > 3 {
		t.Fatalf("journaled cells = %d, want 1..3 (the cells the dying worker served)", journaled)
	}
	// Crash: no Shutdown, no checkpoint — recovery must come from the
	// wal alone. (Close only releases the file handle.)
	cA.Close()

	// Epoch B: fresh coordinator, same journal dir, healthy worker.
	wts, wrk := newWorker(t)
	ctsB, cB := newCoord(t, Options{
		Heartbeat:   50 * time.Millisecond,
		HedgeAfter:  -1,
		JournalDir:  dir,
		JournalSync: time.Millisecond,
	})
	register(t, ctsB.URL, wts.URL, 2)
	if st := cB.health().Journal; st.Resumed != journaled {
		t.Fatalf("restarted coordinator resumed %d cells, want %d", st.Resumed, journaled)
	}

	code, got := post(t, ctsB.URL+"/v1/sweep", sweepBody(7))
	if code != http.StatusOK {
		t.Fatalf("resumed sweep: status %d", code)
	}
	if got != want {
		t.Fatalf("resumed merge differs from the uninterrupted stream:\n--- resumed ---\n%s--- golden ---\n%s", got, want)
	}
	if hits := cB.metrics.resumeHits.Load(); int(hits) != journaled {
		t.Errorf("resume hits = %d, want %d (every journaled cell served without dispatch)", hits, journaled)
	}
	if d := cB.metrics.dispatched.Load(); int(d) != 8-journaled {
		t.Errorf("restarted coordinator dispatched %d cells, want exactly the %d missing ones", d, 8-journaled)
	}
	if sims := wrk.Cache().Stats().Sims; int(sims) != 8-journaled {
		t.Errorf("worker simulated %d cells, want %d — journaled cells must not re-dispatch", sims, 8-journaled)
	}

	// The exposition carries the resume accounting.
	_, metricsBody := get(t, ctsB.URL+"/metrics")
	if !strings.Contains(metricsBody, fmt.Sprintf("affinity_coord_journal_resume_hits_total %d", journaled)) {
		t.Error("metrics missing the journal resume-hit count")
	}
}

// TestShutdownCheckpointsJournal: a graceful drain compacts the wal into
// the checkpoint file, and the next epoch replays the checkpoint.
func TestShutdownCheckpointsJournal(t *testing.T) {
	soloURL, _ := newWorker(t)
	code, want := post(t, soloURL.URL+"/v1/sweep", sweepBody(9))
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", code)
	}
	dir := t.TempDir()

	wts, _ := newWorker(t)
	ctsA, cA := newCoord(t, Options{Heartbeat: 50 * time.Millisecond, JournalDir: dir})
	register(t, ctsA.URL, wts.URL, 2)
	if code, _ := post(t, ctsA.URL+"/v1/sweep", sweepBody(9)); code != http.StatusOK {
		t.Fatalf("sweep: status %d", code)
	}
	if err := cA.Shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// The restarted epoch serves the whole sweep from the checkpoint:
	// zero dispatches, no workers even needed.
	ctsB, cB := newCoord(t, Options{Heartbeat: time.Hour, JournalDir: dir})
	st := cB.health().Journal
	if st.Resumed != 8 {
		t.Fatalf("resumed %d cells from checkpoint, want 8", st.Resumed)
	}
	code, got := post(t, ctsB.URL+"/v1/sweep", sweepBody(9))
	if code != http.StatusOK || got != want {
		t.Fatalf("journal-only sweep diverged (status %d)", code)
	}
	if d := cB.metrics.dispatched.Load(); d != 0 {
		t.Errorf("journal-only sweep dispatched %d cells, want 0", d)
	}
}

// flaky fronts a worker with deterministic connection chaos: every third
// sweep dispatch has its TCP connection severed mid-request, and the
// survivors are delayed — resets and latency, the chaos harness's
// network leg. Heartbeats pass untouched.
type flaky struct {
	h     http.Handler
	count atomic.Int64
	delay time.Duration
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/sweep") {
		if f.count.Add(1)%3 == 0 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				http.Error(w, "injected reset", http.StatusBadGateway)
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close() // client sees a connection reset
			}
			return
		}
		time.Sleep(f.delay)
	}
	f.h.ServeHTTP(w, r)
}

// TestFlakyNetworkConvergesByteIdentical: under connection resets and
// injected latency the retry loop must still converge every cell, with
// the merged bytes identical to a calm single node and zero failed
// cells.
func TestFlakyNetworkConvergesByteIdentical(t *testing.T) {
	soloURL, _ := newWorker(t)
	code, want := post(t, soloURL.URL+"/v1/sweep", sweepBody(8))
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", code)
	}

	chaotic := &flaky{
		h:     serve.New(serve.Options{Runner: core.NewRunner(1), MaxInflight: 2}),
		delay: 20 * time.Millisecond,
	}
	chaoticTS := httptest.NewServer(chaotic)
	t.Cleanup(chaoticTS.Close)

	cts, c := newCoord(t, Options{
		Heartbeat:  50 * time.Millisecond,
		RetryBase:  10 * time.Millisecond,
		HedgeAfter: -1,
		// Threshold above the chaos pattern's worst consecutive-failure
		// streak, so the breaker stays out of this test's way.
		BreakerThreshold: 8,
	})
	register(t, cts.URL, chaoticTS.URL, 2)

	code, got := post(t, cts.URL+"/v1/sweep", sweepBody(8))
	if code != http.StatusOK {
		t.Fatalf("chaotic sweep: status %d", code)
	}
	if got != want {
		t.Fatalf("merge under connection chaos differs from the calm stream:\n--- chaos ---\n%s--- calm ---\n%s", got, want)
	}
	if f := c.metrics.failed.Load(); f != 0 {
		t.Errorf("%d cells failed; chaos must cost retries, not results", f)
	}
	if r := c.metrics.retried.Load(); r == 0 {
		t.Error("no retries recorded; the chaos injector did not bite")
	}
}

// TestBreakerShieldsSickWorker: a worker that answers heartbeats but
// fails every cell opens its breaker (visible in /healthz and /metrics);
// once it recovers, the half-open probe re-admits it and the fleet
// converges to byte-identical output.
func TestBreakerShieldsSickWorker(t *testing.T) {
	body := fmt.Sprintf(`{"seed":6,"warmup_cycles":%d,"measure_cycles":%d,"sizes":[1024],"modes":["none"]}`,
		tinyWarmup, tinyMeasure)
	soloURL, _ := newWorker(t)
	code, want := post(t, soloURL.URL+"/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", code)
	}

	sick := &killable{h: serve.New(serve.Options{Runner: core.NewRunner(1), MaxInflight: 2})}
	sick.dead.Store(true)
	sickTS := httptest.NewServer(sick)
	t.Cleanup(sickTS.Close)

	cts, c := newCoord(t, Options{
		Heartbeat:        time.Hour, // pings would 502 too; isolate the breaker path
		Retries:          1,
		RetryBase:        5 * time.Millisecond,
		HedgeAfter:       -1,
		BreakerThreshold: 2,
		BreakerCooloff:   50 * time.Millisecond,
	})
	register(t, cts.URL, sickTS.URL, 2)

	// While sick: the cell exhausts its retries and the breaker opens.
	code, got := post(t, cts.URL+"/v1/sweep", body)
	if code != http.StatusOK || got != "" {
		t.Fatalf("sick-fleet sweep: status %d body %q, want an empty truncated stream", code, got)
	}
	if opens := c.metrics.breakerOpens.Load(); opens == 0 {
		t.Error("breaker never opened against the sick worker")
	}
	if ws := c.reg.snapshot()[0]; ws.Breaker == "closed" {
		t.Errorf("breaker = %s after consecutive failures, want open or half-open", ws.Breaker)
	}
	_, metricsBody := get(t, cts.URL+"/metrics")
	if !strings.Contains(metricsBody, "affinity_coord_breaker_opens_total") {
		t.Error("metrics missing affinity_coord_breaker_opens_total")
	}

	// Recovery: the next probe succeeds, the breaker closes, bytes match.
	sick.dead.Store(false)
	code, got = post(t, cts.URL+"/v1/sweep", body)
	if code != http.StatusOK || got != want {
		t.Fatalf("recovered sweep diverged (status %d):\n%s\nvs\n%s", code, got, want)
	}
	waitFor(t, "breaker to close after the successful probe", func() bool {
		return c.reg.snapshot()[0].Breaker == "closed"
	})
}
