package coord

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// tiny are the smallest windows that still measure something.
const (
	tinyWarmup  = 2_000_000
	tinyMeasure = 5_000_000
)

// newWorker brings up a real single-node server — the same handler a
// production affinity-serve hosts.
func newWorker(t *testing.T) (*httptest.Server, *serve.Server) {
	t.Helper()
	srv := serve.New(serve.Options{Runner: core.NewRunner(1), MaxInflight: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

func newCoord(t *testing.T, opts Options) (*httptest.Server, *Coordinator) {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c)
	t.Cleanup(ts.Close)
	return ts, c
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func register(t *testing.T, coordURL, workerURL string, concurrency int) {
	t.Helper()
	code, resp := post(t, coordURL+"/v1/register",
		fmt.Sprintf(`{"url":%q,"version":"test","concurrency":%d}`, workerURL, concurrency))
	if code != http.StatusOK {
		t.Fatalf("register %s: status %d: %s", workerURL, code, resp)
	}
}

// sweepBody is an 8-cell grid (2 sizes × the 4 default modes) with tiny
// windows.
func sweepBody(seed uint64) string {
	return fmt.Sprintf(`{"seed":%d,"warmup_cycles":%d,"measure_cycles":%d,"sizes":[1024,65536]}`,
		seed, tinyWarmup, tinyMeasure)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetSweepMatchesSingleNode is the tentpole acceptance: the
// coordinator's merged NDJSON over two workers must be byte-identical
// to one worker answering the same request, a warm repeat must dedup
// 100% of cells without touching the fleet, and /v1/run through the
// fleet must match a worker's /v1/run byte for byte.
func TestFleetSweepMatchesSingleNode(t *testing.T) {
	soloURL, _ := newWorker(t)
	code, want := post(t, soloURL.URL+"/v1/sweep", sweepBody(1))
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", code)
	}

	wtsA, wA := newWorker(t)
	wtsB, wB := newWorker(t)
	cts, c := newCoord(t, Options{Heartbeat: 100 * time.Millisecond})
	register(t, cts.URL, wtsA.URL, 2)
	register(t, cts.URL, wtsB.URL, 2)

	code, got := post(t, cts.URL+"/v1/sweep", sweepBody(1))
	if code != http.StatusOK {
		t.Fatalf("fleet sweep: status %d: %s", code, got)
	}
	if got != want {
		t.Fatalf("fleet merge differs from single-node stream:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}
	for _, ws := range c.reg.snapshot() {
		if ws.Dispatched == 0 {
			t.Errorf("worker %s received no cells; the shard plan did not spread", ws.URL)
		}
	}

	// Warm repeat: byte-identical again, all 8 cells deduped from the
	// fleet memo, zero new simulations anywhere.
	fleetSims := wA.Cache().Stats().Sims + wB.Cache().Stats().Sims
	dispatchedCold := c.metrics.dispatched.Load()
	code, warm := post(t, cts.URL+"/v1/sweep", sweepBody(1))
	if code != http.StatusOK || warm != want {
		t.Fatalf("warm fleet sweep diverged (status %d)", code)
	}
	if deduped := c.metrics.deduped.Load(); deduped < 8 {
		t.Errorf("warm repeat deduped %d cells, want all 8", deduped)
	}
	if d := c.metrics.dispatched.Load(); d != dispatchedCold {
		t.Errorf("warm repeat dispatched %d new cells to workers, want 0", d-dispatchedCold)
	}
	if s := wA.Cache().Stats().Sims + wB.Cache().Stats().Sims; s != fleetSims {
		t.Errorf("warm repeat re-simulated %d cells", s-fleetSims)
	}

	// /v1/run through the fleet: byte-identical to a worker's own
	// /v1/run, and served from the memo since the sweep covered it.
	runBody := fmt.Sprintf(`{"mode":"full","size":65536,"seed":1,"warmup_cycles":%d,"measure_cycles":%d}`,
		tinyWarmup, tinyMeasure)
	code, wantRun := post(t, soloURL.URL+"/v1/run", runBody)
	if code != http.StatusOK {
		t.Fatalf("single-node run: status %d", code)
	}
	code, gotRun := post(t, cts.URL+"/v1/run", runBody)
	if code != http.StatusOK {
		t.Fatalf("fleet run: status %d: %s", code, gotRun)
	}
	if gotRun != wantRun {
		t.Errorf("fleet /v1/run differs from worker /v1/run:\n%s\nvs\n%s", gotRun, wantRun)
	}
}

// killable fronts a worker and, once killed, refuses everything —
// the coordinator-visible behavior of a crashed worker process.
type killable struct {
	h    http.Handler
	dead atomic.Bool
}

func (k *killable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		http.Error(w, "connection refused (worker killed)", http.StatusBadGateway)
		return
	}
	k.h.ServeHTTP(w, r)
}

// TestWorkerKilledMidSweep kills one of two workers after the first
// merged cell arrives: its unfinished shard must reassign to the
// survivor, the merge must stay byte-identical, and the corpse must be
// evicted by missed heartbeats.
func TestWorkerKilledMidSweep(t *testing.T) {
	soloURL, _ := newWorker(t)
	code, want := post(t, soloURL.URL+"/v1/sweep", sweepBody(2))
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", code)
	}

	wtsA, _ := newWorker(t)
	victim := &killable{h: serve.New(serve.Options{Runner: core.NewRunner(1), MaxInflight: 2})}
	wtsB := httptest.NewServer(victim)
	t.Cleanup(wtsB.Close)

	cts, c := newCoord(t, Options{
		Heartbeat:  50 * time.Millisecond,
		EvictAfter: 2,
		RetryBase:  10 * time.Millisecond,
		HedgeAfter: -1, // isolate the kill path from hedging
	})
	register(t, cts.URL, wtsA.URL, 1)
	register(t, cts.URL, wtsB.URL, 1)

	resp, err := http.Post(cts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReaderSize(resp.Body, 1<<20)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("first merged cell: %v", err)
	}
	victim.dead.Store(true) // kill mid-shard
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("reading merged stream after kill: %v", err)
	}
	if got := first + string(rest); got != want {
		t.Fatalf("merge after worker kill differs from single-node stream:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}

	waitFor(t, "victim eviction", func() bool { return c.health().WorkersHealthy == 1 })
	for _, ws := range c.reg.snapshot() {
		if ws.URL == strings.TrimRight(wtsB.URL, "/") && ws.Healthy {
			t.Error("killed worker still marked healthy")
		}
	}
}

// delayed fronts a worker and holds every sweep dispatch for delay —
// a straggler node. Pings pass through untouched so the worker stays
// heartbeat-healthy, which is what makes it a straggler rather than a
// corpse.
type delayed struct {
	h     http.Handler
	delay time.Duration
}

func (d *delayed) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/sweep") {
		time.Sleep(d.delay)
	}
	d.h.ServeHTTP(w, r)
}

// TestHedgedStragglerDiscarded dispatches a cell to a slow worker,
// lets the hedge fire onto a fast worker that joins mid-flight, and
// requires: the fast result wins, the straggler's duplicate is
// discarded by fingerprint, and the client sees exactly the single-node
// bytes.
func TestHedgedStragglerDiscarded(t *testing.T) {
	body := fmt.Sprintf(`{"seed":3,"warmup_cycles":%d,"measure_cycles":%d,"sizes":[1024],"modes":["none"]}`,
		tinyWarmup, tinyMeasure)
	soloURL, _ := newWorker(t)
	code, want := post(t, soloURL.URL+"/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", code)
	}

	slow := &delayed{h: serve.New(serve.Options{Runner: core.NewRunner(1), MaxInflight: 2}), delay: 2 * time.Second}
	slowTS := httptest.NewServer(slow)
	t.Cleanup(slowTS.Close)
	fastTS, fast := newWorker(t)

	cts, c := newCoord(t, Options{
		Heartbeat:  50 * time.Millisecond,
		HedgeAfter: 100 * time.Millisecond,
	})
	// Only the slow worker exists at dispatch time, with a single slot:
	// the primary attempt occupies it, so the hedge must wait for the
	// fast worker's arrival — deterministic straggler rescue.
	register(t, cts.URL, slowTS.URL, 1)

	type reply struct {
		code int
		body string
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := http.Post(cts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			done <- reply{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- reply{resp.StatusCode, string(b)}
	}()

	waitFor(t, "primary dispatch to the slow worker", func() bool { return c.metrics.dispatched.Load() >= 1 })
	register(t, cts.URL, fastTS.URL, 2)

	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("hedged sweep: status %d: %s", r.code, r.body)
	}
	if r.body != want {
		t.Fatalf("hedged result differs from single-node bytes:\n%s\nvs\n%s", r.body, want)
	}
	if h := c.metrics.hedged.Load(); h < 1 {
		t.Errorf("no hedge launched against the straggler (hedged=%d)", h)
	}
	if fast.Cache().Stats().Sims == 0 {
		t.Error("fast worker never simulated; the winning result did not come from the hedge")
	}
	// The straggler's answer lands seconds later and must be discarded
	// as a duplicate of the fingerprint the hedge already resolved.
	waitFor(t, "straggler duplicate discard", func() bool { return c.metrics.hedgeDuplicates.Load() >= 1 })
}

// TestRegistrationChurnDuringSweep hammers the membership table while a
// sweep is in flight: a new worker joins mid-sweep, the existing worker
// re-registers repeatedly (re-announce), and a worker that refuses every
// connection joins and gets evicted — the merge must come out
// byte-identical with no failed cells.
func TestRegistrationChurnDuringSweep(t *testing.T) {
	soloURL, _ := newWorker(t)
	code, want := post(t, soloURL.URL+"/v1/sweep", sweepBody(4))
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", code)
	}

	wtsA, _ := newWorker(t)
	wtsB, _ := newWorker(t)

	// A registered worker with nobody listening: every dispatch fails,
	// every heartbeat misses.
	refused := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	refusedURL := refused.URL
	refused.Close()

	cts, c := newCoord(t, Options{
		Heartbeat:  50 * time.Millisecond,
		EvictAfter: 2,
		RetryBase:  10 * time.Millisecond,
		HedgeAfter: -1,
	})
	register(t, cts.URL, wtsA.URL, 1)

	resp, err := http.Post(cts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReaderSize(resp.Body, 1<<20)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("first merged cell: %v", err)
	}

	// Churn while the remaining seven cells are in flight.
	register(t, cts.URL, wtsB.URL, 2)
	register(t, cts.URL, refusedURL, 2)
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 20; i++ {
			register(t, cts.URL, wtsA.URL, 1+i%2)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("reading merged stream through churn: %v", err)
	}
	<-churnDone
	if got := first + string(rest); got != want {
		t.Fatalf("merge under registration churn differs from single-node stream:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}
	if f := c.metrics.failed.Load(); f != 0 {
		t.Errorf("%d cells failed; churn must only move work, not lose it", f)
	}
	waitFor(t, "dead-registration eviction", func() bool {
		for _, ws := range c.reg.snapshot() {
			if ws.URL == strings.TrimRight(refusedURL, "/") {
				return !ws.Healthy
			}
		}
		return false
	})
}

// TestCoordinatorRejectsBadRequests mirrors the worker's validation
// surface: same 400s, same field attribution, one API either way.
func TestCoordinatorRejectsBadRequests(t *testing.T) {
	cts, _ := newCoord(t, Options{Heartbeat: time.Hour})
	for name, body := range map[string]string{
		"unknown mode":   `{"modes":["sideways"]}`,
		"unknown field":  `{"moed":"full"}`,
		"negative size":  `{"sizes":[-5]}`,
		"malformed json": `{`,
	} {
		code, resp := post(t, cts.URL+"/v1/sweep", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, resp)
		}
	}
	code, resp := post(t, cts.URL+"/v1/register", `{"url":"not-a-url"}`)
	if code != http.StatusBadRequest {
		t.Errorf("bad register URL: status %d (%s), want 400", code, resp)
	}
}

// TestHealthzAggregatesFleet checks the fleet-wide /healthz block:
// summed worker sims and engine counters, per-worker rows, and the
// mixed-version flag.
func TestHealthzAggregatesFleet(t *testing.T) {
	wtsA, wA := newWorker(t)
	wtsB, _ := newWorker(t)
	cts, c := newCoord(t, Options{Heartbeat: 50 * time.Millisecond})
	register(t, cts.URL, wtsA.URL, 2)
	register(t, cts.URL, wtsB.URL, 2)

	code, got := post(t, cts.URL+"/v1/sweep", sweepBody(5))
	if code != http.StatusOK || !strings.Contains(got, "\n") {
		t.Fatalf("fleet sweep: status %d", code)
	}

	// Heartbeats carry the workers' sims and engine aggregates back.
	wantSims := wA.Cache().Stats().Sims
	waitFor(t, "fleet aggregation to include worker sims", func() bool {
		h := c.health()
		return h.Fleet.Sims >= wantSims && h.Fleet.Engine.Runs > 0
	})
	h := c.health()
	if h.WorkersHealthy != 2 || h.WorkersTotal != 2 {
		t.Errorf("healthy/total = %d/%d, want 2/2", h.WorkersHealthy, h.WorkersTotal)
	}
	if h.Version == "" {
		t.Error("coordinator /healthz missing build version")
	}
	if h.MixedVersions {
		t.Error("identical-build fleet flagged as mixed-version")
	}
	if len(h.WorkerTable) != 2 {
		t.Fatalf("worker table has %d rows, want 2", len(h.WorkerTable))
	}

	// A divergent worker version must raise the mixed-fleet flag.
	c.reg.upsert("http://127.0.0.1:1", "other-version", 1)
	if !c.health().MixedVersions {
		t.Error("divergent worker version not flagged as mixed")
	}

	_, metricsBody := get(t, cts.URL+"/metrics")
	for _, want := range []string{
		"affinity_coord_cells_dispatched_total",
		"affinity_coord_cells_deduped_total",
		"affinity_coord_worker_request_seconds_bucket",
		"affinity_coord_build_info",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("coordinator /metrics missing %s", want)
		}
	}
}
