package coord

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTestJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := OpenJournal(dir, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// Lines deliberately contain spaces: the record parser must treat the
// payload as opaque bytes, not fields.
var journalLines = map[string][]byte{
	"fp-alpha": []byte(`{"mode":"Full Aff","mbps":123.5}`),
	"fp-beta":  []byte(`{"mode":"No Aff","mbps":88.25}`),
	"fp-gamma": []byte(`{"mode":"Intr Aff","mbps":101.0}`),
}

func fillJournal(j *Journal) {
	for fp, line := range journalLines {
		j.Append(fp, line)
	}
}

func TestJournalReplayAfterReopen(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	fillJournal(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir)
	st := j2.Stats()
	if st.Cells != 3 || st.Resumed != 3 {
		t.Fatalf("stats after reopen = %+v, want 3 cells all resumed", st)
	}
	for fp, want := range journalLines {
		got, ok := j2.Get(fp)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%s) = %q, %v; want the journaled bytes back verbatim", fp, got, ok)
		}
	}
}

func TestJournalAppendIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	j.Append("fp-dup", []byte(`{"a":1}`))
	j.Append("fp-dup", []byte(`{"a":1}`))
	if st := j.Stats(); st.Appends != 1 || st.Cells != 1 {
		t.Fatalf("stats = %+v, want exactly one append for a repeated fingerprint", st)
	}
}

// TestJournalCorruptRecordDiscardsTail mirrors the disk cache's
// CorruptDiscards: a record that fails its CRC — and everything after it,
// since a torn write orphans the tail — is treated as unknown.
func TestJournalCorruptRecordDiscardsTail(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	j.Append("fp-1", []byte(`{"n":1}`))
	j.Append("fp-2", []byte(`{"n":2}`))
	j.Append("fp-3", []byte(`{"n":3}`))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	wal := filepath.Join(dir, "wal")
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle record.
	mid := bytes.Index(raw, []byte(`{"n":2}`))
	if mid < 0 {
		t.Fatal("middle record not found in wal")
	}
	raw[mid+5] ^= 0x01
	if err := os.WriteFile(wal, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir)
	st := j2.Stats()
	if st.Cells != 1 || st.CorruptDiscards != 1 {
		t.Fatalf("stats = %+v, want only the record before the corruption to survive", st)
	}
	if _, ok := j2.Get("fp-1"); !ok {
		t.Error("record before the corruption lost")
	}
	if _, ok := j2.Get("fp-3"); ok {
		t.Error("record after the corruption served; the tail must be discarded")
	}
}

func TestJournalTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	j.Append("fp-1", []byte(`{"n":1}`))
	j.Append("fp-2", []byte(`{"n":2}`))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	wal := filepath.Join(dir, "wal")
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-write, as a crash would.
	if err := os.Truncate(wal, st.Size()-4); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir)
	if s := j2.Stats(); s.Cells != 1 || s.CorruptDiscards != 1 {
		t.Fatalf("stats = %+v, want the torn record discarded", s)
	}
	if _, ok := j2.Get("fp-1"); !ok {
		t.Error("intact record lost with the torn tail")
	}
}

func TestJournalCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	fillJournal(j)
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, "wal")); err != nil || st.Size() != 0 {
		t.Fatalf("wal not truncated by checkpoint (err=%v size=%d)", err, st.Size())
	}
	if st, err := os.Stat(filepath.Join(dir, "checkpoint")); err != nil || st.Size() == 0 {
		t.Fatalf("checkpoint file missing or empty (err=%v)", err)
	}
	// Post-checkpoint appends land in the fresh wal.
	j.Append("fp-post", []byte(`{"n":4}`))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir)
	st := j2.Stats()
	if st.Cells != 4 || st.Resumed != 4 {
		t.Fatalf("stats after checkpoint+append reopen = %+v, want 4 cells", st)
	}
}

// TestJournalFirstWriteWins: a crash between checkpoint-rename and
// wal-truncate leaves a fingerprint in both files; replay must keep the
// checkpoint's (first-written) line. The determinism guarantee makes
// the duplicate byte-identical in practice — this pins the tie-break
// anyway so a violated guarantee cannot flap a resumed sweep.
func TestJournalFirstWriteWins(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	j.Append("fp-1", []byte(`{"n":"original"}`))
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A stale wal resurrects the fingerprint with different bytes.
	rec := appendRecord(nil, "fp-1", []byte(`{"n":"stale-dup"}`))
	if err := os.WriteFile(filepath.Join(dir, "wal"), rec, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir)
	got, ok := j2.Get("fp-1")
	if !ok || string(got) != `{"n":"original"}` {
		t.Fatalf("Get = %q, %v; want the checkpoint's line to win", got, ok)
	}
}

func TestJournalNilIsInert(t *testing.T) {
	var j *Journal
	j.Append("fp", []byte("x"))
	if _, ok := j.Get("fp"); ok {
		t.Fatal("nil journal served a line")
	}
	if j.Len() != 0 || j.Stats().Enabled {
		t.Fatal("nil journal reports state")
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
