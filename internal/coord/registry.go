package coord

import (
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// workerState is the coordinator's view of one registered worker. All
// fields are guarded by the registry mutex; the down channel is closed
// when the worker leaves the healthy set, so dispatches in flight
// against it can abort instead of riding out the full cell timeout.
type workerState struct {
	url         string
	version     string
	concurrency int // dispatch slots (the worker's request limit)

	inflight int // coordinator-side dispatches in flight
	healthy  bool
	misses   int // consecutive failed heartbeats
	lastSeen time.Time
	down     chan struct{} // closed while unhealthy; replaced on recovery

	// Rolling accounting for /healthz and the planner.
	dispatched uint64
	failures   uint64
	queueDepth int
	sims       uint64
	engine     serve.EngineHealth

	// Circuit breaker: consecutive dispatch failures open it, a cooloff
	// later a single half-open probe re-admits the worker. A sick worker
	// — one that answers heartbeats but fails cells — thus degrades the
	// fleet gracefully instead of eating every cell's retry budget.
	brState     breakerState
	consecFails int
	brUntil     time.Time // while open: when the next probe is allowed
	probing     bool      // a half-open probe dispatch is in flight
}

// breakerState is the per-worker circuit-breaker position.
type breakerState int

const (
	brClosed breakerState = iota
	brOpen
	brHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// lease is one acquired dispatch slot on a worker. down is the health
// channel current at acquisition: if the heartbeat prober evicts the
// worker mid-request, the channel closes and the dispatch aborts.
type lease struct {
	url  string
	down chan struct{}
}

// registry is the fleet membership table plus the load-aware slot
// planner: every dispatch acquires a slot on the healthy worker with
// the lowest load ratio (in-flight over reported concurrency), so work
// shards proportionally to each worker's capacity and re-plans itself
// on every join, leave, and slot release.
type registry struct {
	mu      sync.Mutex
	workers map[string]*workerState
	notify  chan struct{} // closed and replaced on any capacity/membership change

	// breakerThreshold consecutive dispatch failures open a worker's
	// breaker for breakerCooloff; <=0 disables breakers entirely.
	breakerThreshold int
	breakerCooloff   time.Duration
}

func newRegistry(breakerThreshold int, breakerCooloff time.Duration) *registry {
	return &registry{
		workers:          make(map[string]*workerState),
		notify:           make(chan struct{}),
		breakerThreshold: breakerThreshold,
		breakerCooloff:   breakerCooloff,
	}
}

// wake signals every goroutine blocked on capacity or membership.
// Callers hold r.mu.
func (r *registry) wake() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// upsert registers a worker or refreshes an existing registration
// (registration is idempotent — workers re-announce on an interval so a
// restarted coordinator relearns its fleet). A worker is optimistically
// healthy on registration; the heartbeat prober corrects liars.
// Reports whether the URL was new.
func (r *registry) upsert(url, version string, concurrency int) bool {
	if concurrency <= 0 {
		concurrency = 2
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	if !ok {
		w = &workerState{url: url, down: make(chan struct{})}
		r.workers[url] = w
	}
	w.version = version
	w.concurrency = concurrency
	w.lastSeen = time.Now()
	w.misses = 0
	if !w.healthy {
		w.healthy = true
		w.down = make(chan struct{})
	}
	r.wake()
	return !ok
}

// tryAcquire claims a slot on the best healthy worker, preferring any
// worker other than avoid (a retry must land elsewhere when the fleet
// allows it). Among candidates it minimizes inflight/concurrency —
// the weighted plan — breaking ties by URL so planning is stable.
// Returns nil when no healthy worker has a free slot.
func (r *registry) tryAcquire(avoid string) *lease {
	r.mu.Lock()
	defer r.mu.Unlock()
	pick := r.best(avoid)
	if pick == nil {
		pick = r.best("") // a single-worker fleet still retries on itself
	}
	if pick == nil {
		return nil
	}
	if pick.brState == brHalfOpen {
		pick.probing = true // one probe at a time; its outcome moves the breaker
	}
	pick.inflight++
	pick.dispatched++
	return &lease{url: pick.url, down: pick.down}
}

// best returns the lowest-load healthy worker with a free slot,
// excluding avoid and any worker whose breaker blocks dispatch.
// Callers hold r.mu.
func (r *registry) best(avoid string) *workerState {
	var pick *workerState
	for _, w := range r.workers {
		if !w.healthy || w.url == avoid || w.inflight >= w.concurrency {
			continue
		}
		if w.brState == brOpen {
			if time.Now().Before(w.brUntil) {
				continue
			}
			// Cooloff over: half-open, admitting exactly one probe.
			w.brState = brHalfOpen
			w.probing = false
		}
		if w.brState == brHalfOpen && w.probing {
			continue
		}
		if pick == nil {
			pick = w
			continue
		}
		// w.inflight/w.concurrency < pick.inflight/pick.concurrency,
		// cross-multiplied to stay in integers.
		lw, lp := w.inflight*pick.concurrency, pick.inflight*w.concurrency
		if lw < lp || (lw == lp && w.url < pick.url) {
			pick = w
		}
	}
	return pick
}

// release returns a lease's slot and wakes waiting dispatches.
func (r *registry) release(l *lease) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[l.url]; ok && w.inflight > 0 {
		w.inflight--
	}
	r.wake()
}

// succeed records one successful dispatch: the failure streak resets and
// a half-open breaker closes (the probe proved the worker back).
func (r *registry) succeed(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	if !ok {
		return
	}
	w.consecFails = 0
	w.probing = false
	if w.brState != brClosed {
		w.brState = brClosed
		r.wake()
	}
}

// fail charges one dispatch failure to a worker. Enough consecutive
// failures — or one failed half-open probe — open its breaker for the
// cooloff; a timer wakes blocked dispatchers when the probe window
// opens. Reports whether this failure opened (or re-opened) the breaker.
func (r *registry) fail(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	if !ok {
		return false
	}
	w.failures++
	w.consecFails++
	w.probing = false
	if r.breakerThreshold <= 0 {
		return false
	}
	if w.brState == brHalfOpen || (w.brState == brClosed && w.consecFails >= r.breakerThreshold) {
		w.brState = brOpen
		w.brUntil = time.Now().Add(r.breakerCooloff)
		// Dispatchers blocked on the notify channel must re-plan when the
		// probe window opens, not wait for an unrelated wakeup.
		time.AfterFunc(r.breakerCooloff, func() {
			r.mu.Lock()
			r.wake()
			r.mu.Unlock()
		})
		return true
	}
	return false
}

// waitCh returns the channel that will signal the next capacity or
// membership change.
func (r *registry) waitCh() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notify
}

// urls snapshots the registered worker URLs (healthy or not) for the
// heartbeat prober.
func (r *registry) urls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.workers))
	for u := range r.workers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// heartbeatOK folds one successful probe into the worker's state. The
// ping refreshes the advertised concurrency, so a reconfigured worker
// re-weights the plan without re-registering. Reports whether the
// worker rejoined the healthy set.
func (r *registry) heartbeatOK(url string, p serve.PingResponse) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	if !ok {
		return false
	}
	w.misses = 0
	w.lastSeen = time.Now()
	w.version = p.Version
	if p.Limit > 0 {
		w.concurrency = p.Limit
	}
	w.queueDepth = p.QueueDepth
	w.sims = p.Sims
	w.engine = p.Engine
	recovered := !w.healthy
	if recovered {
		w.healthy = true
		w.down = make(chan struct{})
		r.wake()
	}
	return recovered
}

// heartbeatMiss counts one failed probe; after evictAfter consecutive
// misses the worker leaves the healthy set (its down channel closes, so
// in-flight dispatches abort and their cells reassign to surviving
// workers). Reports whether this miss evicted the worker.
func (r *registry) heartbeatMiss(url string, evictAfter int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	if !ok {
		return false
	}
	w.misses++
	if !w.healthy || w.misses < evictAfter {
		return false
	}
	w.healthy = false
	close(w.down)
	r.wake()
	return true
}

// WorkerStatus is one row of the coordinator's /healthz worker table.
type WorkerStatus struct {
	URL         string             `json:"url"`
	Version     string             `json:"version"`
	Healthy     bool               `json:"healthy"`
	Concurrency int                `json:"concurrency"`
	Inflight    int                `json:"inflight"`
	QueueDepth  int                `json:"queue_depth"`
	Misses      int                `json:"missed_heartbeats"`
	LastSeenAgo string             `json:"last_seen_ago"`
	Dispatched  uint64             `json:"dispatched"`
	Failures    uint64             `json:"failures"`
	Breaker     string             `json:"breaker"`
	ConsecFails int                `json:"consecutive_failures"`
	Sims        uint64             `json:"sims_total"`
	Engine      serve.EngineHealth `json:"engine"`
}

// snapshot renders the worker table, sorted by URL.
func (r *registry) snapshot() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerStatus, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerStatus{
			URL:         w.url,
			Version:     w.version,
			Healthy:     w.healthy,
			Concurrency: w.concurrency,
			Inflight:    w.inflight,
			QueueDepth:  w.queueDepth,
			Misses:      w.misses,
			LastSeenAgo: time.Since(w.lastSeen).Round(time.Millisecond).String(),
			Dispatched:  w.dispatched,
			Failures:    w.failures,
			Breaker:     w.brState.String(),
			ConsecFails: w.consecFails,
			Sims:        w.sims,
			Engine:      w.engine,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
