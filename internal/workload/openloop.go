package workload

import (
	"fmt"
	"math"

	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// OpenLoop is the connection-churn cell: Spec.Conns connections arrive
// open-loop — Poisson or bounded-Pareto inter-arrival gaps drawn from
// the engine's seeded RNG, in event order — and each one performs a
// full lifecycle against the SUT:
//
//	active open (SYN) → request → full response → client close (FIN)
//
// The SUT side is a listener plus a bounded pool of accepting worker
// processes (accept, read the request, write the response, wait for the
// close, release the socket) — flyweight connection state makes the
// hundred-thousand-socket population cheap. Per-connection latency
// (arrival to last response byte) lands in a quantile sketch for
// p50/p99/p999; connections whose SYN the overloaded SUT dropped are
// abandoned after TimeoutCycles and counted, never retried.
//
// The cell runs to completion: when every generated connection is
// terminal (completed or abandoned) the workload halts the engine, so
// elapsed time is the cell's true makespan rather than a fixed window.
type OpenLoop struct {
	spec Spec
	m    *Machine
	lst  *tcp.Listener
	lat  *stats.Sketch

	// Per-connection request/response sizes (drawn at arrival; the
	// accepting worker looks its connection's sizes up by id) and
	// arrival times.
	reqOf, rspOf []int32
	arrivedAt    []sim.Time
	done         []bool

	generated uint64
	completed uint64
	abandoned uint64
	terminal  uint64
	goodBytes uint64
}

func newOpenLoop(spec Spec) *OpenLoop {
	return &OpenLoop{spec: spec, lat: stats.NewSketch()}
}

// Name implements Workload.
func (w *OpenLoop) Name() string { return "openloop" }

// PreEstablish implements Workload: the cell opens every connection
// itself.
func (w *OpenLoop) PreEstablish() bool { return false }

// Launch implements Workload: start the server pool and the arrival
// chain.
func (w *OpenLoop) Launch(m *Machine) {
	w.m = m
	w.reqOf = make([]int32, 0, w.spec.Conns)
	w.rspOf = make([]int32, 0, w.spec.Conns)
	w.arrivedAt = make([]sim.Time, 0, w.spec.Conns)
	w.done = make([]bool, w.spec.Conns)

	w.lst = m.St.Listen(w.spec.Backlog)
	servers := w.spec.Servers
	if servers == 0 {
		// Workers spend most of a connection's life parked (awaiting
		// the request, the close), so a worker is held for roughly one
		// client round-trip per connection — heavily oversubscribe the
		// processors so pool occupancy, not worker count, is the
		// admission bound at the default offered load.
		servers = 64 * m.NumCPUs()
	}
	reqBufBytes := pageRound(maxInt(w.spec.ReqBytes, 1))
	rspBufBytes := pageRound(w.spec.MaxResponseBytes())
	for i := 0; i < servers; i++ {
		reqBuf := m.K.Space.AllocPage(reqBufBytes, fmt.Sprintf("ol_reqbuf%d", i))
		rspBuf := m.K.Space.AllocPage(rspBufBytes, fmt.Sprintf("ol_rspbuf%d", i))
		// Workers inherit the plan's per-connection placement cyclically:
		// under full affinity a worker is pinned like the planned
		// connection it stands in for, though churned flows land on
		// whichever worker frees first — exactly the mismatch the
		// open-loop study measures.
		idx := i % len(m.Plan.StartCPUs)
		m.K.Spawn(fmt.Sprintf("olsrv%d", i), m.Plan.StartCPUs[idx], m.Plan.ProcMasks[idx],
			func(env *kern.Env) {
				for {
					s := w.lst.Accept(env)
					conn := s.Conn
					m.BindFlow(conn, env.Task())
					if req := int(w.reqOf[conn]); req > 0 {
						s.Read(env, reqBuf, req)
					}
					s.Write(env, rspBuf, int(w.rspOf[conn]))
					s.WaitClose(env)
					m.UnbindFlow(conn, env.Task())
					m.St.Release(env, s)
				}
			})
	}
	m.Eng.At(sim.Time(1000), w.arrive)
}

// arrive generates one connection and schedules the next arrival. All
// randomness (response size, inter-arrival gap) is drawn here, in event
// order, from the run's seeded RNG.
func (w *OpenLoop) arrive() {
	m := w.m
	rng := m.Eng.RNG()
	conn := int(w.generated)
	w.generated++

	rsp := w.spec.RspBytes
	if table := w.spec.mixTable(); len(table) > 1 {
		rsp = table[rng.Intn(len(table))]
	}
	req := w.spec.ReqBytes
	w.reqOf = append(w.reqOf, int32(req))
	w.rspOf = append(w.rspOf, int32(rsp))
	w.arrivedAt = append(w.arrivedAt, m.Eng.Now())

	nic := m.NICs[conn%len(m.NICs)]
	if nic.Queues() > 1 {
		if q := m.Plan.QueueFor(conn); q >= 0 && q < nic.Queues() {
			nic.SteerFlow(conn, q)
		}
	}

	c := m.St.NewActiveClient(conn, nic)
	got, finished := 0, false
	c.OnEstablished(func() {
		if req > 0 {
			c.SendBytes(req)
		}
	})
	c.OnReceive(func(n int) {
		got += n
		if !finished && got >= rsp {
			finished = true
			w.lat.Add(uint64(m.Eng.Now() - w.arrivedAt[conn]))
			w.goodBytes += uint64(rsp)
			w.completed++
			c.Close()
			w.finish(conn)
		}
	})
	c.Open()

	// Give-up timer: a dropped SYN (ring overflow, full accept queue)
	// is never retried — the connection is abandoned, so the cell
	// terminates even under overload. An abandoned connection that DID
	// establish still sends its FIN: the accepting worker is parked in
	// WaitClose and would otherwise be lost to the pool forever (worker
	// attrition turns a transient overload into a permanent ceiling).
	m.Eng.After(w.spec.TimeoutCycles, func() {
		if !w.done[conn] {
			w.abandoned++
			if !c.Opening() {
				c.Close()
			}
			w.finish(conn)
		}
	})

	if int(w.generated) < w.spec.Conns {
		m.Eng.After(w.nextGap(rng), w.arrive)
	}
}

// finish marks a connection terminal; when the whole population is
// terminal the cell is over and the engine halts.
func (w *OpenLoop) finish(conn int) {
	if w.done[conn] {
		return
	}
	w.done[conn] = true
	w.terminal++
	if int(w.terminal) == w.spec.Conns {
		w.m.Eng.Halt()
	}
}

// nextGap draws one inter-arrival gap.
func (w *OpenLoop) nextGap(rng *sim.RNG) uint64 {
	mean := float64(w.spec.IntervalCycles)
	var g float64
	if w.spec.Arrival == ArrivalPareto {
		// Bounded Pareto with shape alpha and scale chosen so the
		// unbounded mean equals IntervalCycles; the bound clips the
		// heaviest gaps.
		alpha := w.spec.Alpha
		xm := mean * (alpha - 1) / alpha
		u := 1 - rng.Float64() // (0,1]
		g = xm / math.Pow(u, 1/alpha)
		if max := float64(w.spec.MaxIntervalCycles); g > max {
			g = max
		}
	} else {
		// Exponential gaps: a Poisson arrival process.
		g = -math.Log(1-rng.Float64()) * mean
	}
	if g < 1 {
		g = 1
	}
	return uint64(g)
}

// Bytes implements Workload: response bytes fully delivered to clients.
func (w *OpenLoop) Bytes(m *Machine) uint64 { return w.goodBytes }

// Transactions implements Workload: completed request/response
// lifecycles.
func (w *OpenLoop) Transactions(m *Machine) uint64 { return w.completed }

// Latency implements Workload.
func (w *OpenLoop) Latency() *stats.Sketch { return w.lat }

// OpenLoop implements Workload.
func (w *OpenLoop) OpenLoop() bool { return true }

// Quiescible implements Workload.
func (w *OpenLoop) Quiescible() bool { return false }

// Generated, Completed and Abandoned report the cell's connection
// accounting; SynDrops the SYNs the listener or ring refused.
func (w *OpenLoop) Generated() uint64 { return w.generated }
func (w *OpenLoop) Completed() uint64 { return w.completed }
func (w *OpenLoop) Abandoned() uint64 { return w.abandoned }
func (w *OpenLoop) SynDrops() uint64 {
	if w.lst == nil {
		return 0
	}
	return w.lst.SynDrops
}
