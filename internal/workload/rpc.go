package workload

import (
	"fmt"

	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RPC is the closed-loop request/response workload over the
// pre-established connections: each connection runs a server process
// (read a request, write the next response from the mix) against a
// client that issues its next request the moment the previous full
// response arrives — a browser against a static-content server, the
// paper's §4 web projection. Per-request latency (issue → last response
// byte) is recorded into a quantile sketch.
type RPC struct {
	spec     Spec
	lat      *stats.Sketch
	requests uint64
}

func newRPC(spec Spec) *RPC {
	return &RPC{spec: spec, lat: stats.NewSketch()}
}

// Name implements Workload.
func (w *RPC) Name() string { return "rpc" }

// PreEstablish implements Workload.
func (w *RPC) PreEstablish() bool { return true }

// Launch implements Workload. The spawn and buffer-allocation sequence
// matches the original examples/webserver loop, so the web workload's
// trajectory is unchanged by running through this layer.
func (w *RPC) Launch(m *Machine) {
	mix := w.spec.mixTable()
	req := w.spec.ReqBytes
	rspBufBytes := pageRound(w.spec.MaxResponseBytes())
	for i := range m.Sockets {
		i := i
		sock := m.Sockets[i]
		client := m.Clients[i]
		reqBuf := m.K.Space.AllocPage(4096, fmt.Sprintf("reqbuf%d", i))
		rspBuf := m.K.Space.AllocPage(rspBufBytes, fmt.Sprintf("rspbuf%d", i))

		// The worker process: read a request, serve the next template.
		srv := m.K.Spawn(fmt.Sprintf("httpd%d", i), m.Plan.StartCPUs[i], m.Plan.ProcMasks[i],
			func(env *kern.Env) {
				for n := 0; ; n++ {
					sock.Read(env, reqBuf, req)
					sock.Write(env, rspBuf, mix[(i+n)%len(mix)])
				}
			})
		m.BindFlow(i, srv)

		// The client: issue the next request once the full response for
		// the previous one has arrived (closed-loop, like a browser).
		seq := 0
		expected := mix[i%len(mix)]
		got := 0
		var issuedAt sim.Time
		client.OnReceive(func(n int) {
			got += n
			for got >= expected {
				got -= expected
				w.requests++
				w.lat.Add(uint64(m.Eng.Now() - issuedAt))
				seq++
				expected = mix[(i+seq)%len(mix)]
				issuedAt = m.Eng.Now()
				client.SendBytes(req)
			}
		})
		// Staggered first requests so the connections do not start in
		// lockstep.
		m.Eng.At(sim.Time(1000+i*997), func() {
			issuedAt = m.Eng.Now()
			client.SendBytes(req)
		})
	}
}

// Bytes implements Workload: response bytes delivered to the clients.
func (w *RPC) Bytes(m *Machine) uint64 {
	var total uint64
	for _, c := range m.Clients {
		total += c.BytesReceived
	}
	return total
}

// Transactions implements Workload: completed requests.
func (w *RPC) Transactions(m *Machine) uint64 { return w.requests }

// Latency implements Workload.
func (w *RPC) Latency() *stats.Sketch { return w.lat }

// OpenLoop implements Workload.
func (w *RPC) OpenLoop() bool { return false }

// Quiescible implements Workload: the server loops never observe a stop
// flag, so the ttcp quiesce protocol does not apply.
func (w *RPC) Quiescible() bool { return false }
