package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Kind names a built-in workload.
type Kind string

// The built-in workload kinds.
const (
	// KindBulk is the paper's workload: one long-lived connection and
	// one ttcp process per planned connection, bulk transfer in one
	// direction (§4).
	KindBulk Kind = "bulk"
	// KindRPC is a closed-loop request/response workload over the
	// pre-established connections: each client issues the next request
	// when the previous full response arrives (the §4 web-server
	// projection), with per-request latency recorded.
	KindRPC Kind = "rpc"
	// KindOpenLoop is the connection-churn cell: a bounded population
	// of connections arrives open-loop (Poisson or bounded-Pareto
	// inter-arrivals), each performing open → request → response →
	// close against an accepting server pool, with per-connection
	// response latency recorded. The cell runs to completion instead of
	// a steady-state window.
	KindOpenLoop Kind = "openloop"
)

func errUnknownKind(k Kind) error {
	return fmt.Errorf("workload: unknown kind %q (bulk|rpc|openloop)", string(k))
}

// Arrival processes for the open-loop generator.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps (memoryless
	// offered load).
	ArrivalPoisson = "poisson"
	// ArrivalPareto draws bounded-Pareto gaps (heavy-tailed, bursty
	// offered load; shape Alpha, capped at MaxIntervalCycles).
	ArrivalPareto = "pareto"
)

// Response-size mixes for the request/response workloads.
const (
	// MixFixed serves RspBytes for every request.
	MixFixed = "fixed"
	// MixWeb serves the web template mix (small dynamic fragments plus
	// larger quasi-static bodies; see examples/webserver).
	MixWeb = "web"
	// MixShort serves short flows: 512 B – 4 KB responses.
	MixShort = "short"
	// MixMixed serves the short-flow sizes plus an occasional heavy
	// 64 KB body.
	MixMixed = "mixed"
)

// webMix is the response-size distribution of the web-server projection:
// small dynamic fragments plus larger quasi-static template bodies (the
// paper cites a characterization [24] where ~50% of requests are dynamic
// yet reuse 30-60% quasi-static templates).
var webMix = []int{512, 2048, 8192, 8192, 16384, 16384, 32768, 65536}

// shortMix is the short-flow response table; mixedMix adds the heavy
// tail.
var (
	shortMix = []int{512, 1024, 2048, 4096}
	mixedMix = []int{512, 1024, 2048, 4096, 65536}
)

// Spec declaratively describes a workload; core.Config carries one (nil
// = the paper's bulk default). Zero values select per-kind defaults —
// see ApplyDefaults. The spec is pure data: it gob/JSON-encodes, and the
// cache fingerprint hashes every field.
type Spec struct {
	Kind Kind `json:"kind"`

	// Alternate (bulk) alternates transfer direction per connection:
	// even connections follow Config.Dir, odd connections the opposite
	// (the iSCSI mixed read/write target).
	Alternate bool `json:"alternate,omitempty"`

	// Request/response shape (rpc, openloop).
	ReqBytes int    `json:"req_bytes,omitempty"` // request size (default 384, a GET with headers)
	RspBytes int    `json:"rsp_bytes,omitempty"` // MixFixed response size (default rpc 8192, openloop 2048)
	Mix      string `json:"mix,omitempty"`       // fixed|web|short|mixed (default rpc web, openloop fixed)

	// Open-loop cell shape.
	Conns             int     `json:"conns,omitempty"`               // connections the cell generates (default 10000)
	Arrival           string  `json:"arrival,omitempty"`             // poisson|pareto (default poisson)
	IntervalCycles    uint64  `json:"interval_cycles,omitempty"`     // mean inter-arrival gap (default 40000 = 20 µs)
	Alpha             float64 `json:"alpha,omitempty"`               // bounded-Pareto shape (default 1.5)
	MaxIntervalCycles uint64  `json:"max_interval_cycles,omitempty"` // Pareto gap cap (default 64× interval)
	Servers           int     `json:"servers,omitempty"`             // accepting worker pool (default 64× CPUs)
	Backlog           int     `json:"backlog,omitempty"`             // listener accept-queue bound (default 1024)
	TimeoutCycles     uint64  `json:"timeout_cycles,omitempty"`      // per-connection give-up (default 2e9 = 1 s)
}

// ApplyDefaults fills zero fields with the per-kind defaults. Servers
// stays zero here — its default (64× CPUs) depends on the machine and
// is resolved at Launch.
func (s *Spec) ApplyDefaults() {
	if s.Kind == "" {
		s.Kind = KindBulk
	}
	if s.ReqBytes == 0 {
		s.ReqBytes = 384
	}
	if s.RspBytes == 0 {
		if s.Kind == KindOpenLoop {
			s.RspBytes = 2048
		} else {
			s.RspBytes = 8192
		}
	}
	if s.Mix == "" {
		if s.Kind == KindRPC {
			s.Mix = MixWeb
		} else {
			s.Mix = MixFixed
		}
	}
	if s.Conns == 0 {
		s.Conns = 10_000
	}
	if s.Arrival == "" {
		s.Arrival = ArrivalPoisson
	}
	if s.IntervalCycles == 0 {
		s.IntervalCycles = 40_000
	}
	if s.Alpha == 0 {
		s.Alpha = 1.5
	}
	if s.MaxIntervalCycles == 0 {
		s.MaxIntervalCycles = 64 * s.IntervalCycles
	}
	if s.Backlog == 0 {
		s.Backlog = 1024
	}
	if s.TimeoutCycles == 0 {
		s.TimeoutCycles = 2_000_000_000
	}
}

// Validate checks a defaults-applied spec.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindBulk, KindRPC, KindOpenLoop:
	default:
		return errUnknownKind(s.Kind)
	}
	if s.ReqBytes < 0 || s.RspBytes <= 0 {
		return fmt.Errorf("workload: bad request/response sizes req=%d rsp=%d", s.ReqBytes, s.RspBytes)
	}
	switch s.Mix {
	case MixFixed, MixWeb, MixShort, MixMixed:
	default:
		return fmt.Errorf("workload: unknown mix %q (fixed|web|short|mixed)", s.Mix)
	}
	switch s.Arrival {
	case ArrivalPoisson, ArrivalPareto:
	default:
		return fmt.Errorf("workload: unknown arrival %q (poisson|pareto)", s.Arrival)
	}
	if s.Kind == KindOpenLoop {
		if s.Conns <= 0 {
			return fmt.Errorf("workload: openloop needs a positive connection count, got %d", s.Conns)
		}
		if s.Alpha <= 1 {
			return fmt.Errorf("workload: pareto shape alpha must exceed 1 for a finite mean, got %g", s.Alpha)
		}
		if s.MaxIntervalCycles < s.IntervalCycles {
			return fmt.Errorf("workload: max_interval_cycles %d below mean interval %d", s.MaxIntervalCycles, s.IntervalCycles)
		}
		if s.Servers < 0 || s.Backlog <= 0 || s.TimeoutCycles == 0 {
			return fmt.Errorf("workload: bad openloop pool shape servers=%d backlog=%d timeout=%d", s.Servers, s.Backlog, s.TimeoutCycles)
		}
	}
	return nil
}

// IsDefaultBulk reports whether the spec simulates identically to a nil
// spec: the plain bulk workload. (Request/response and cell fields are
// inert under bulk, so only Alternate distinguishes it.) The cache
// fingerprint merges this with the nil-spec baseline.
func (s *Spec) IsDefaultBulk() bool {
	if s == nil {
		return true
	}
	return (s.Kind == "" || s.Kind == KindBulk) && !s.Alternate
}

// Parse builds a Spec from the CLI/HTTP syntax — a kind followed by
// comma-separated key=value pairs, e.g.
//
//	"openloop,conns=100000,interval=40000,arrival=pareto,mix=short"
//	"bulk,alternate=true"
//	"rpc,req=384,mix=web"
//
// or, with a leading "@", from a JSON spec file (the Spec JSON schema).
// Defaults are applied and the result validated; keys accept the JSON
// field names and short aliases (req, rsp, interval, maxinterval,
// timeout, alt).
func Parse(spec string) (*Spec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("workload: empty spec")
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("workload: reading spec file: %w", err)
		}
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("workload: parsing spec file %s: %w", spec[1:], err)
		}
		s.ApplyDefaults()
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return &s, nil
	}

	fields := strings.Split(spec, ",")
	s := Spec{Kind: Kind(strings.ToLower(strings.TrimSpace(fields[0])))}
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("workload: field %q is not key=value", f)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "alternate", "alt":
			s.Alternate, err = strconv.ParseBool(val)
		case "req", "req_bytes":
			s.ReqBytes, err = parseInt(val)
		case "rsp", "rsp_bytes":
			s.RspBytes, err = parseInt(val)
		case "mix":
			s.Mix = strings.ToLower(val)
		case "conns":
			s.Conns, err = parseInt(val)
		case "arrival":
			s.Arrival = strings.ToLower(val)
		case "interval", "interval_cycles":
			s.IntervalCycles, err = parseUint(val)
		case "alpha":
			s.Alpha, err = strconv.ParseFloat(val, 64)
		case "maxinterval", "max_interval_cycles":
			s.MaxIntervalCycles, err = parseUint(val)
		case "servers":
			s.Servers, err = parseInt(val)
		case "backlog":
			s.Backlog, err = parseInt(val)
		case "timeout", "timeout_cycles":
			s.TimeoutCycles, err = parseUint(val)
		default:
			return nil, fmt.Errorf("workload: unknown key %q in %q", key, f)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: bad value for %q: %v", key, err)
		}
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// parseInt and parseUint accept plain integers and float notation
// (1e9), matching the fault-spec syntax.
func parseInt(val string) (int, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	return int(f), nil
}

func parseUint(val string) (uint64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 {
		return 0, fmt.Errorf("negative value %q", val)
	}
	return uint64(f), nil
}

// mixTable returns the response-size table for the spec's mix. The
// closed-loop rpc workload cycles it deterministically; the open-loop
// generator draws from it uniformly via the engine RNG.
func (s *Spec) mixTable() []int {
	switch s.Mix {
	case MixWeb:
		return webMix
	case MixShort:
		return shortMix
	case MixMixed:
		return mixedMix
	default:
		return []int{s.RspBytes}
	}
}

// MaxResponseBytes bounds the response size the mix can draw (server
// buffer sizing).
func (s *Spec) MaxResponseBytes() int {
	max := s.RspBytes
	for _, v := range s.mixTable() {
		if v > max {
			max = v
		}
	}
	return max
}
