// Package workload is the pluggable workload layer: what runs ON the
// assembled machine, separated from the machine itself. The paper's
// eight-process bulk ttcp experiment (§4) is one Workload among several;
// the open-loop connection-churn generator extends the characterization
// from "8 long-lived flows" to "100k short flows with tail latency" —
// the regime the paper's §8 projection (web/storage servers) actually
// lives in.
//
// Every implementation draws randomness only from the engine's seeded
// RNG and schedules only engine events, so a cell remains a pure
// function of its core.Config: bit-identical across the serial runner,
// the parallel runner and the result cache.
package workload

import (
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/ttcp"
)

// Machine is the workload's view of an assembled SUT: the handles a
// workload needs to spawn processes, open or accept connections and
// account bytes, without importing the assembler (core imports this
// package, not the reverse). The assembler fills every field before
// calling Launch.
type Machine struct {
	Eng  *sim.Engine
	K    *kern.Kernel
	St   *tcp.Stack
	Plan *topo.Plan
	NICs []*netdev.NIC

	// Sockets and Clients are the pre-established connections (one per
	// planned connection) when the workload asked for PreEstablish;
	// empty for connection-churn workloads that open their own.
	Sockets []*tcp.Socket
	Clients []*tcp.Client

	// Workload knobs threaded from core.Config (the bulk workload's
	// vocabulary; other workloads read what applies to them).
	Dir           ttcp.Direction
	Size          int
	ThinkCycles   uint64
	RecordLatency bool

	// Procs is filled by workloads that spawn ttcp processes (bulk);
	// the assembler copies it back so Machine.Procs and the invariant
	// checker's quiesce protocol keep working.
	Procs []*ttcp.Proc

	// Steer, when non-nil, is the machine's flow director: workloads
	// report which task serves which connection (BindFlow/UnbindFlow)
	// so the device's receive queue can follow the process across
	// migrations. Nil under every static steering policy — the hooks
	// are free no-ops then, and launch trajectories are unchanged.
	Steer FlowSteerer
}

// FlowSteerer re-programs flow steering as serving tasks come, go and
// migrate. core's flow director implements it; workload only calls it.
type FlowSteerer interface {
	// Bind declares that task t now serves connection conn (accept, or
	// process launch for pre-established connections).
	Bind(conn int, t *kern.Task)
	// Unbind declares that t no longer serves conn (release/teardown).
	Unbind(conn int, t *kern.Task)
}

// BindFlow reports a task taking ownership of a connection to the flow
// director, if the machine has one.
func (m *Machine) BindFlow(conn int, t *kern.Task) {
	if m.Steer != nil && t != nil {
		m.Steer.Bind(conn, t)
	}
}

// UnbindFlow reports a task dropping a connection.
func (m *Machine) UnbindFlow(conn int, t *kern.Task) {
	if m.Steer != nil && t != nil {
		m.Steer.Unbind(conn, t)
	}
}

// NumCPUs reports the machine's processor count.
func (m *Machine) NumCPUs() int { return len(m.K.CPUs) }

// Workload is one runnable experiment workload.
type Workload interface {
	// Name labels the workload (diagnostics, Result rendering).
	Name() string
	// PreEstablish reports whether the assembler should pre-create one
	// established connection per planned connection (the paper's
	// long-lived-flow shape). Churn workloads return false and open
	// connections themselves.
	PreEstablish() bool
	// Launch starts the workload on the assembled machine: spawn
	// processes, register event chains. Called once, before the engine
	// first runs.
	Launch(m *Machine)
	// Bytes reports application-level goodput so far (the measurement
	// window deltas it).
	Bytes(m *Machine) uint64
	// Transactions reports completed application operations so far.
	Transactions(m *Machine) uint64
	// Latency returns the request-latency sketch, or nil if this
	// workload does not record per-request latency.
	Latency() *stats.Sketch
	// OpenLoop reports whether the workload is a run-to-completion cell
	// (a bounded population of open-loop arrivals) rather than a
	// steady-state loop measured over a window.
	OpenLoop() bool
	// Quiescible reports whether the workload supports the invariant
	// checker's stop-and-drain quiesce protocol (ttcp-style loops do).
	Quiescible() bool
}

// Build resolves a Spec into a Workload. A nil spec is the paper's
// default bulk workload.
func Build(spec *Spec) (Workload, error) {
	if spec == nil {
		return &Bulk{}, nil
	}
	s := *spec
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindBulk:
		return &Bulk{Alternate: s.Alternate}, nil
	case KindRPC:
		return newRPC(s), nil
	case KindOpenLoop:
		return newOpenLoop(s), nil
	}
	return nil, errUnknownKind(s.Kind)
}

// pageRound rounds a buffer size up to whole pages, like a real malloc
// of that size.
func pageRound(n int) int {
	return (n + mem.PageSize - 1) / mem.PageSize * mem.PageSize
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
