package workload

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseInlineSpecs(t *testing.T) {
	cases := []struct {
		in    string
		check func(t *testing.T, s *Spec)
	}{
		{"bulk", func(t *testing.T, s *Spec) {
			if s.Kind != KindBulk || s.Alternate {
				t.Errorf("got kind=%q alternate=%v", s.Kind, s.Alternate)
			}
			if !s.IsDefaultBulk() {
				t.Error("plain bulk should be the default-bulk merge class")
			}
		}},
		{"bulk,alternate=true", func(t *testing.T, s *Spec) {
			if !s.Alternate {
				t.Error("alternate not set")
			}
			if s.IsDefaultBulk() {
				t.Error("alternating bulk must not merge with the default")
			}
		}},
		{"rpc", func(t *testing.T, s *Spec) {
			if s.Kind != KindRPC || s.Mix != MixWeb || s.ReqBytes != 384 {
				t.Errorf("rpc defaults: mix=%q req=%d", s.Mix, s.ReqBytes)
			}
		}},
		{"rpc,req=512,rsp=16384,mix=fixed", func(t *testing.T, s *Spec) {
			if s.ReqBytes != 512 || s.RspBytes != 16384 || s.Mix != MixFixed {
				t.Errorf("got req=%d rsp=%d mix=%q", s.ReqBytes, s.RspBytes, s.Mix)
			}
		}},
		{"openloop,conns=100000,interval=20000,arrival=pareto,alpha=1.3,mix=short,timeout=1e9", func(t *testing.T, s *Spec) {
			if s.Kind != KindOpenLoop || s.Conns != 100_000 || s.IntervalCycles != 20_000 {
				t.Errorf("got kind=%q conns=%d interval=%d", s.Kind, s.Conns, s.IntervalCycles)
			}
			if s.Arrival != ArrivalPareto || s.Alpha != 1.3 || s.Mix != MixShort {
				t.Errorf("got arrival=%q alpha=%g mix=%q", s.Arrival, s.Alpha, s.Mix)
			}
			if s.TimeoutCycles != 1_000_000_000 {
				t.Errorf("float notation: timeout=%d", s.TimeoutCycles)
			}
			if s.MaxIntervalCycles != 64*s.IntervalCycles {
				t.Errorf("maxinterval default: %d", s.MaxIntervalCycles)
			}
		}},
		{"OPENLOOP, Conns=10, Servers=2, Backlog=4", func(t *testing.T, s *Spec) {
			if s.Kind != KindOpenLoop || s.Conns != 10 || s.Servers != 2 || s.Backlog != 4 {
				t.Errorf("case/space tolerance: %+v", s)
			}
		}},
	}
	for _, tc := range cases {
		s, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		tc.check(t, s)
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, in := range []string{
		"",
		"warp",                      // unknown kind
		"openloop,conns",            // not key=value
		"openloop,zorp=1",           // unknown key
		"openloop,conns=x",          // unparsable value
		"openloop,alpha=0.5",        // shape without a finite mean
		"openloop,backlog=-1",       // bad pool shape
		"rpc,mix=gopher",            // unknown mix
		"openloop,arrival=uniform",  // unknown arrival process
		"@/definitely/missing.json", // unreadable file
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", in)
		}
	}
}

func TestParseSpecFile(t *testing.T) {
	want := Spec{Kind: KindOpenLoop, Conns: 5000, Arrival: ArrivalPareto, IntervalCycles: 30_000}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wl.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Parse("@" + path)
	if err != nil {
		t.Fatalf("Parse(@file): %v", err)
	}
	if s.Kind != want.Kind || s.Conns != want.Conns || s.Arrival != want.Arrival || s.IntervalCycles != want.IntervalCycles {
		t.Errorf("file spec round-trip: got %+v", s)
	}
	if s.Backlog == 0 || s.TimeoutCycles == 0 {
		t.Error("defaults not applied to file specs")
	}
}

func TestBuildResolvesKinds(t *testing.T) {
	for spec, want := range map[string]string{
		"bulk":     "bulk",
		"rpc":      "rpc",
		"openloop": "openloop",
	} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Build(s)
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		if w.Name() != want {
			t.Errorf("Build(%q).Name() = %q", spec, w.Name())
		}
	}
	if w, err := Build(nil); err != nil || w.Name() != "bulk" {
		t.Errorf("Build(nil) = %v, %v; want the bulk default", w, err)
	}
	if _, err := Build(&Spec{Kind: "warp"}); err == nil {
		t.Error("Build accepted an unknown kind")
	}
}

func TestMixTables(t *testing.T) {
	s := &Spec{Kind: KindOpenLoop, RspBytes: 2048, Mix: MixFixed}
	if got := s.mixTable(); len(got) != 1 || got[0] != 2048 {
		t.Errorf("fixed mix table %v", got)
	}
	for _, mix := range []string{MixWeb, MixShort, MixMixed} {
		s.Mix = mix
		tbl := s.mixTable()
		if len(tbl) < 2 {
			t.Errorf("mix %q table too small: %v", mix, tbl)
		}
		if s.MaxResponseBytes() < tbl[len(tbl)-1] {
			t.Errorf("mix %q MaxResponseBytes %d below table max", mix, s.MaxResponseBytes())
		}
	}
}
