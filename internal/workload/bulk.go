package workload

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/ttcp"
)

// Bulk is the paper's workload (§4): one ttcp process per pre-established
// connection in an endless bulk read or write loop, clients sourcing for
// RX connections. With Alternate set, odd connections run the opposite
// direction — the iSCSI mixed read/write target of §8.
type Bulk struct {
	Alternate bool
}

// Name implements Workload.
func (w *Bulk) Name() string {
	if w.Alternate {
		return "bulk-alt"
	}
	return "bulk"
}

// PreEstablish implements Workload: bulk runs over the paper's
// long-lived pre-established connections.
func (w *Bulk) PreEstablish() bool { return true }

// dirOf resolves connection i's direction under the Alternate split.
func (w *Bulk) dirOf(m *Machine, i int) ttcp.Direction {
	if w.Alternate && i%2 == 1 {
		if m.Dir == ttcp.TX {
			return ttcp.RX
		}
		return ttcp.TX
	}
	return m.Dir
}

// Launch implements Workload: spawn the ttcp processes in connection
// order, then register the client sources for RX connections — exactly
// the sequence the assembler ran before the workload layer existed, so
// bulk cells remain byte-identical.
func (w *Bulk) Launch(m *Machine) {
	for i := range m.Sockets {
		p := ttcp.Launch(m.St, m.Sockets[i], m.Clients[i], ttcp.Config{
			Name:          fmt.Sprintf("ttcp%d", i),
			Dir:           w.dirOf(m, i),
			Size:          m.Size,
			StartCPU:      m.Plan.StartCPUs[i],
			Affinity:      m.Plan.ProcMasks[i],
			ThinkCycles:   m.ThinkCycles,
			RecordLatency: m.RecordLatency,
		})
		m.Procs = append(m.Procs, p)
		m.BindFlow(i, p.Task)
	}
	for i, c := range m.Clients {
		if w.dirOf(m, i) == ttcp.RX {
			c := c
			m.Eng.At(0, func() { c.StartSource() })
		}
	}
}

// Bytes implements Workload: application goodput in each connection's
// workload direction — bytes the clients received (TX) plus bytes the
// SUT's readers consumed (RX).
func (w *Bulk) Bytes(m *Machine) uint64 {
	var total uint64
	for i := range m.Clients {
		if w.dirOf(m, i) == ttcp.TX {
			total += m.Clients[i].BytesReceived
		} else {
			total += m.Sockets[i].AppBytesIn()
		}
	}
	return total
}

// Transactions implements Workload.
func (w *Bulk) Transactions(m *Machine) uint64 {
	var total uint64
	for _, p := range m.Procs {
		total += p.Transactions
	}
	return total
}

// Latency implements Workload: bulk keeps per-transaction latencies on
// its Procs (ttcp.Proc.Latency), not a request sketch.
func (w *Bulk) Latency() *stats.Sketch { return nil }

// OpenLoop implements Workload.
func (w *Bulk) OpenLoop() bool { return false }

// Quiescible implements Workload: ttcp loops honour the stop-and-drain
// protocol the invariant checker uses.
func (w *Bulk) Quiescible() bool { return true }
