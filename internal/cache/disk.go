package cache

import (
	"encoding/gob"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/stats"
)

// storedResult is the on-disk form of a Result. The Config is NOT
// stored: the fingerprint already proves the reader's Config agrees on
// every result-affecting field, so the caller's own Config is
// reattached on load (this also sidesteps serializing the Policy
// interface and Topology pointer). Trace and Series never appear here —
// configs carrying them are uncacheable.
type storedResult struct {
	ElapsedCycles  uint64
	Bytes          uint64
	Transactions   uint64
	Mbps           float64
	Util           []float64
	AvgUtil        float64
	CostGHzPerGbps float64
	Drops          uint64
	IdleCycles     []uint64
	Ctr            perf.CountersDump

	// Degradation metrics and the invariant verdict from faulted runs.
	// Replaying a faulted cell from disk must reproduce these exactly —
	// including the verdict, since Run checks invariants (and charges
	// the drain's virtual time) before the result is ever cached.
	Retransmits        uint64
	WireDrops          uint64
	WireBytes          uint64
	GoodputRatio       float64
	FlapRecoveryCycles []uint64
	InvariantsChecked  bool
	InvariantViolation string

	// Reordering metrics from flow-director re-steering (or wire loss).
	// Absent in pre-existing cache entries, which decode them as zero —
	// exactly what those legacy-steered runs measured.
	OutOfOrder      uint64
	DupAcks         uint64
	FastRetransmits uint64
	FlowResteers    uint64

	// Engine is the scheduler's cumulative counter snapshot. It is
	// deterministic per Config, so a cached replay carries the same
	// numbers a fresh run would produce. Absent in pre-existing cache
	// entries, which decode it as zero.
	Engine sim.Stats

	// Workload-layer metrics: the latency sketch (its exported buckets
	// gob-encode directly) and the open-loop cell's churn accounting. A
	// cached replay must report bit-identical quantiles, so the whole
	// sketch is stored, not just the three headline quantiles.
	Requests          uint64
	LatencyP50Cycles  uint64
	LatencyP99Cycles  uint64
	LatencyP999Cycles uint64
	Latency           *stats.Sketch
	ConnsGenerated    uint64
	ConnsAbandoned    uint64
	SynDrops          uint64
}

// path maps a fingerprint to its file. Keys are hex SHA-256, so they are
// filesystem-safe by construction.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".gob") }

// loadDisk is a best-effort read of the persisted result for key; any
// failure (missing file, truncated write from a crashed process,
// malformed dump) reads as a miss. Corrupt entries are discarded — the
// file is unlinked so every concurrent singleflight waiter and every
// future lookup sees a clean miss and the leader's re-simulation can
// persist a good entry, instead of each new reader re-paying a failing
// decode against the same bad bytes.
func (c *Cache) loadDisk(key string, cfg core.Config) (*core.Result, bool) {
	if c.dir == "" {
		return nil, false
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.diskErrors.Add(1)
		}
		return nil, false
	}
	defer f.Close()
	var sr storedResult
	if err := gob.NewDecoder(f).Decode(&sr); err != nil {
		c.discardCorrupt(key)
		return nil, false
	}
	ctr, err := perf.CountersFromDump(sr.Ctr)
	if err != nil {
		c.discardCorrupt(key)
		return nil, false
	}
	return &core.Result{
		Cfg:                cfg,
		ElapsedCycles:      sr.ElapsedCycles,
		Bytes:              sr.Bytes,
		Transactions:       sr.Transactions,
		Mbps:               sr.Mbps,
		Util:               sr.Util,
		AvgUtil:            sr.AvgUtil,
		CostGHzPerGbps:     sr.CostGHzPerGbps,
		Drops:              sr.Drops,
		IdleCycles:         sr.IdleCycles,
		Ctr:                ctr,
		Retransmits:        sr.Retransmits,
		WireDrops:          sr.WireDrops,
		WireBytes:          sr.WireBytes,
		GoodputRatio:       sr.GoodputRatio,
		FlapRecoveryCycles: sr.FlapRecoveryCycles,
		InvariantsChecked:  sr.InvariantsChecked,
		InvariantViolation: sr.InvariantViolation,
		OutOfOrder:         sr.OutOfOrder,
		DupAcks:            sr.DupAcks,
		FastRetransmits:    sr.FastRetransmits,
		FlowResteers:       sr.FlowResteers,
		Engine:             sr.Engine,
		Requests:           sr.Requests,
		LatencyP50Cycles:   sr.LatencyP50Cycles,
		LatencyP99Cycles:   sr.LatencyP99Cycles,
		LatencyP999Cycles:  sr.LatencyP999Cycles,
		Latency:            sr.Latency,
		ConnsGenerated:     sr.ConnsGenerated,
		ConnsAbandoned:     sr.ConnsAbandoned,
		SynDrops:           sr.SynDrops,
	}, true
}

// discardCorrupt counts and unlinks a corrupt persisted entry. Removal
// is best-effort: a racing discard from another process sharing the
// directory has the same effect, and a removal failure only means the
// next reader discards again.
func (c *Cache) discardCorrupt(key string) {
	c.corruptDiscards.Add(1)
	if err := os.Remove(c.path(key)); err != nil && !os.IsNotExist(err) {
		c.diskErrors.Add(1)
	}
}

// storeDisk persists res under key via write-to-temp + rename, so
// concurrent processes sharing the directory only ever observe complete
// entries. Best effort: failures count in DiskErrors and the simulation
// result is still served from memory.
func (c *Cache) storeDisk(key string, res *core.Result) {
	if c.dir == "" || res == nil || res.Ctr == nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.diskErrors.Add(1)
		return
	}
	sr := storedResult{
		ElapsedCycles:      res.ElapsedCycles,
		Bytes:              res.Bytes,
		Transactions:       res.Transactions,
		Mbps:               res.Mbps,
		Util:               res.Util,
		AvgUtil:            res.AvgUtil,
		CostGHzPerGbps:     res.CostGHzPerGbps,
		Drops:              res.Drops,
		IdleCycles:         res.IdleCycles,
		Ctr:                res.Ctr.Dump(),
		Retransmits:        res.Retransmits,
		WireDrops:          res.WireDrops,
		WireBytes:          res.WireBytes,
		GoodputRatio:       res.GoodputRatio,
		FlapRecoveryCycles: res.FlapRecoveryCycles,
		InvariantsChecked:  res.InvariantsChecked,
		InvariantViolation: res.InvariantViolation,
		OutOfOrder:         res.OutOfOrder,
		DupAcks:            res.DupAcks,
		FastRetransmits:    res.FastRetransmits,
		FlowResteers:       res.FlowResteers,
		Engine:             res.Engine,
		Requests:           res.Requests,
		LatencyP50Cycles:   res.LatencyP50Cycles,
		LatencyP99Cycles:   res.LatencyP99Cycles,
		LatencyP999Cycles:  res.LatencyP999Cycles,
		Latency:            res.Latency,
		ConnsGenerated:     res.ConnsGenerated,
		ConnsAbandoned:     res.ConnsAbandoned,
		SynDrops:           res.SynDrops,
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		c.diskErrors.Add(1)
		return
	}
	if err := gob.NewEncoder(tmp).Encode(&sr); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.diskErrors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.diskErrors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		c.diskErrors.Add(1)
	}
}
