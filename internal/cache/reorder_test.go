package cache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/ttcp"
)

// TestReorderCellColdWarmCacheIdentity pins the reordering counters
// across the cache paths: the flow-director pathology cell must export
// byte-identical JSON — OutOfOrder, DupAcks, FastRetransmits and
// FlowResteers included — whether simulated cold (cache miss, writes
// the disk store) or replayed warm from the gob disk store by a fresh
// cache instance. A dropped field in storedResult would show up here
// as a warm replay reporting zero reordering.
func TestReorderCellColdWarmCacheIdentity(t *testing.T) {
	cfg := core.DefaultConfig(core.ModeNone, ttcp.RX, 65536)
	cfg.WarmupCycles = 30_000_000
	cfg.MeasureCycles = 100_000_000
	shape := topo.Uniform(2, 1, 2)
	shape.Conns = 2
	cfg.Topology = &shape
	pol, err := core.ParsePolicy("flowdirector")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = pol
	co, err := core.ParseCoalesce("timer,usecs=100")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Coalesce = co
	if !Cacheable(cfg) {
		t.Fatal("reorder cell config is not cacheable")
	}

	dir := t.TempDir()

	// Cold path: miss, simulate, populate memory and disk.
	cacheA := New(DefaultMaxBytes, dir)
	cold := cacheA.GetOrRun(cfg, core.Run)
	if cold.OutOfOrder == 0 || cold.FlowResteers == 0 {
		t.Fatalf("cell is vacuous: ooo=%d resteers=%d", cold.OutOfOrder, cold.FlowResteers)
	}

	// Warm path: a fresh cache instance over the same store directory
	// must satisfy the request from disk without simulating.
	cacheB := New(DefaultMaxBytes, dir)
	resimulated := false
	warm := cacheB.GetOrRun(cfg, func(c core.Config) *core.Result {
		resimulated = true
		return core.Run(c)
	})
	if resimulated {
		t.Fatal("warm path re-simulated: disk store missed")
	}
	if cacheB.Stats().DiskHits != 1 {
		t.Fatalf("warm path took an unexpected route: %+v", cacheB.Stats())
	}

	if warm.OutOfOrder != cold.OutOfOrder || warm.DupAcks != cold.DupAcks ||
		warm.FastRetransmits != cold.FastRetransmits || warm.FlowResteers != cold.FlowResteers {
		t.Errorf("reordering counters did not survive the disk round-trip:\ncold: ooo=%d dupacks=%d fast=%d resteers=%d\nwarm: ooo=%d dupacks=%d fast=%d resteers=%d",
			cold.OutOfOrder, cold.DupAcks, cold.FastRetransmits, cold.FlowResteers,
			warm.OutOfOrder, warm.DupAcks, warm.FastRetransmits, warm.FlowResteers)
	}
	jc, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jw, err := warm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if jc != jw {
		t.Errorf("warm replay JSON diverged from cold run:\ncold: %s\nwarm: %s", jc, jw)
	}
}

// TestFingerprintCoalesceAndSteeringSensitivity pins the key's new
// corners: nil and an explicit legacy coalescing config simulate
// identically and share one entry, while every distinct coalescing
// model and the flow-director plan flag must never collide with the
// baseline.
func TestFingerprintCoalesceAndSteeringSensitivity(t *testing.T) {
	base := Fingerprint(fpCfg())

	legacy := fpCfg()
	co, err := core.ParseCoalesce("legacy")
	if err != nil {
		t.Fatal(err)
	}
	legacy.Coalesce = co
	if Fingerprint(legacy) != base {
		t.Error("an explicit legacy coalescing config simulates identically to nil and must share its fingerprint")
	}

	seen := map[string]string{"": base}
	for _, spec := range []string{"timer,usecs=100", "timer,usecs=50", "frames,frames=8", "adaptive"} {
		cfg := fpCfg()
		co, err := core.ParseCoalesce(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Coalesce = co
		fp := Fingerprint(cfg)
		for prev, pfp := range seen {
			if fp == pfp {
				t.Errorf("coalesce %q collides with %q", spec, prev)
			}
		}
		seen[spec] = fp
	}

	fd := fpCfg()
	pol, err := core.ParsePolicy("flowdirector")
	if err != nil {
		t.Fatal(err)
	}
	fd.Policy = pol
	rss := fpCfg()
	rss.Policy = topo.RSS{}
	if Fingerprint(fd) == Fingerprint(rss) {
		t.Error("flowdirector and rss place identically but steer differently; they must not share a fingerprint")
	}
}
