package cache

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestAbortedResultNotStored: an aborted simulation must be handed back
// to its own caller (a failure signal) but never enter the memory LRU,
// the disk store, or the singleflight result slot — a later identical
// request re-simulates with its own live cancel.
func TestAbortedResultNotStored(t *testing.T) {
	dir := t.TempDir()
	c := New(DefaultMaxBytes, dir)
	cfg := quickCfg(1)

	aborted := func(core.Config) *core.Result {
		return &core.Result{Aborted: true, AbortReason: core.AbortCancelled}
	}
	res := c.GetOrRun(cfg, aborted)
	if res == nil || !res.Aborted {
		t.Fatal("caller did not receive its aborted result back")
	}
	st := c.Stats()
	if st.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", st.Aborts)
	}
	if st.Entries != 0 {
		t.Errorf("aborted result entered the memory cache (%d entries)", st.Entries)
	}

	// The retry simulates for real and gets a clean, cacheable result.
	clean := c.Run(cfg)
	if clean.Aborted {
		t.Fatal("retry after an abort returned the aborted result")
	}
	st = c.Stats()
	if st.Sims != 2 {
		t.Errorf("sims = %d, want 2 (abort attempt + clean retry)", st.Sims)
	}
	if st.Entries != 1 {
		t.Errorf("clean retry not cached (%d entries)", st.Entries)
	}

	// A fresh cache over the same disk dir must miss memory AND disk for
	// an aborted fingerprint — here the clean result is on disk, so it
	// hits; the point is the abort never wrote anything corrupt there.
	c2 := New(DefaultMaxBytes, dir)
	if r := c2.Run(cfg); r.Aborted {
		t.Fatal("disk store handed back an aborted result")
	}
	if got := c2.Stats().DiskHits; got != 1 {
		t.Errorf("disk hits = %d, want 1 (only the clean result persisted)", got)
	}
}

// TestAbortedLeaderReleasesWaiters: when the singleflight leader aborts,
// coalesced waiters must not inherit the aborted result — they re-contend
// and one of them simulates cleanly.
func TestAbortedLeaderReleasesWaiters(t *testing.T) {
	c := New(DefaultMaxBytes, "")
	cfg := quickCfg(3)

	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slowAbort := func(core.Config) *core.Result {
		once.Do(func() { close(leaderIn) })
		<-release
		return &core.Result{Aborted: true, AbortReason: core.AbortCancelled}
	}

	leaderDone := make(chan *core.Result, 1)
	go func() { leaderDone <- c.GetOrRun(cfg, slowAbort) }()
	<-leaderIn

	waiterDone := make(chan *core.Result, 1)
	go func() { waiterDone <- c.GetOrRun(cfg, core.Run) }()

	close(release)
	if r := <-leaderDone; !r.Aborted {
		t.Fatal("leader did not get its own aborted result")
	}
	if r := <-waiterDone; r.Aborted {
		t.Fatal("waiter inherited the leader's aborted result")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("clean waiter result not cached (%d entries)", st.Entries)
	}
}
