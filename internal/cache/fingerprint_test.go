package cache

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/netdev"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/ttcp"
	"repro/internal/workload"
)

// TestFingerprintCoversConfig fails when any configuration struct the
// fingerprint walks grows a field that coveredFields does not list.
// Adding a field to one of these types REQUIRES deciding how the cache
// key treats it (hash it, resolve it through Topo()/PlanFor, or gate it
// as uncacheable) and then recording it in coveredFields — otherwise two
// configs differing only in the new field would silently share a cache
// entry.
func TestFingerprintCoversConfig(t *testing.T) {
	types := map[string]reflect.Type{
		"core.Config":           reflect.TypeOf(core.Config{}),
		"cpu.Config":            reflect.TypeOf(cpu.Config{}),
		"cpu.Penalties":         reflect.TypeOf(cpu.Penalties{}),
		"kern.Tuning":           reflect.TypeOf(kern.Tuning{}),
		"tcp.Config":            reflect.TypeOf(tcp.Config{}),
		"topo.Topology":         reflect.TypeOf(topo.Topology{}),
		"topo.NICShape":         reflect.TypeOf(topo.NICShape{}),
		"trace.Config":          reflect.TypeOf(trace.Config{}),
		"topo.Plan":             reflect.TypeOf(topo.Plan{}),
		"netdev.NICConfig":      reflect.TypeOf(netdev.NICConfig{}),
		"netdev.CoalesceConfig": reflect.TypeOf(netdev.CoalesceConfig{}),
		"fault.Schedule":        reflect.TypeOf(fault.Schedule{}),
		"fault.Event":           reflect.TypeOf(fault.Event{}),
		"workload.Spec":         reflect.TypeOf(workload.Spec{}),
	}
	for name, typ := range types {
		covered, ok := coveredFields[name]
		if !ok {
			t.Errorf("%s: fingerprint walks this type but coveredFields has no entry", name)
			continue
		}
		var actual []string
		for i := 0; i < typ.NumField(); i++ {
			actual = append(actual, typ.Field(i).Name)
		}
		want := append([]string(nil), covered...)
		sort.Strings(actual)
		sort.Strings(want)
		if !reflect.DeepEqual(actual, want) {
			t.Errorf("%s fields drifted from the fingerprint's covered set.\n  struct has: %v\n  covered:    %v\n"+
				"Update Fingerprint (or Cacheable) to handle the new field, then list it in coveredFields.",
				name, actual, want)
		}
	}
	for name := range coveredFields {
		if _, ok := types[name]; !ok {
			t.Errorf("coveredFields lists %s but the test does not reflect over it; add it to the types map", name)
		}
	}
}

func fpCfg() core.Config {
	return core.DefaultConfig(core.ModeNone, ttcp.TX, 65536)
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	base := Fingerprint(fpCfg())
	if base != Fingerprint(fpCfg()) {
		t.Fatal("fingerprint of identical configs differs")
	}

	mutations := map[string]func(*core.Config){
		"Mode":          func(c *core.Config) { c.Mode = core.ModeFull },
		"Dir":           func(c *core.Config) { c.Dir = ttcp.RX },
		"Size":          func(c *core.Config) { c.Size = 128 },
		"Seed":          func(c *core.Config) { c.Seed = 7 },
		"WarmupCycles":  func(c *core.Config) { c.WarmupCycles = 1 },
		"MeasureCycles": func(c *core.Config) { c.MeasureCycles = 1 },
		"NumCPUs":       func(c *core.Config) { c.NumCPUs = 4 },
		"NumNICs":       func(c *core.Config) { c.NumNICs = 4 },
		"Policy":        func(c *core.Config) { c.Policy = topo.RSS{} },
		"RotateIRQs":    func(c *core.Config) { c.RotateIRQs = true },
		"SkipWorkload":  func(c *core.Config) { c.SkipWorkload = true },
		"ThinkCycles":   func(c *core.Config) { c.ThinkCycles = 1000 },
		"RecordLatency": func(c *core.Config) { c.RecordLatency = true },
		"CPU.ClockHz":   func(c *core.Config) { c.CPU.ClockHz = 1_000_000_000 },
		"CPU.Penalty":   func(c *core.Config) { c.CPU.Penalty.LLCMiss = 999 },
		"Tune":          func(c *core.Config) { c.Tune.WakeAffinity = !c.Tune.WakeAffinity },
		"TCP":           func(c *core.Config) { c.TCP.MSS = 576 },
		"Topology": func(c *core.Config) {
			topo := topo.Uniform(4, 2, 2)
			c.Topology = &topo
		},
		"Faults": func(c *core.Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{
				{Kind: fault.KindLoss, NIC: -1, Rate: 0.01},
			}}
		},
		"Workload": func(c *core.Config) {
			c.Workload = &workload.Spec{Kind: workload.KindRPC}
		},
	}
	for field, mutate := range mutations {
		cfg := fpCfg()
		mutate(&cfg)
		if Fingerprint(cfg) == base {
			t.Errorf("mutating %s did not change the fingerprint", field)
		}
	}
}

// TestFingerprintMergesEquivalentShapes pins the deliberate merges: a
// flat NumCPUs×NumNICs shape and its explicit Topology equivalent, and a
// Mode and its equivalent explicit Policy, simulate identically and
// render identically, so they share one cache entry.
func TestFingerprintMergesEquivalentShapes(t *testing.T) {
	flat := fpCfg()
	explicit := fpCfg()
	shape := topo.Uniform(flat.NumCPUs, flat.NumNICs, 1)
	explicit.Topology = &shape
	if Fingerprint(flat) != Fingerprint(explicit) {
		t.Error("equivalent flat and explicit topologies should fingerprint identically")
	}

	byMode := fpCfg()
	byPolicy := fpCfg()
	byPolicy.Policy = topo.None{} // what ModeNone resolves to
	if Fingerprint(byMode) != Fingerprint(byPolicy) {
		t.Error("a Mode and its equivalent explicit Policy should fingerprint identically")
	}

	// But a Mode whose *name* differs must not merge even if placement
	// did: rendered output spells the mode.
	otherMode := fpCfg()
	otherMode.Mode = core.ModeProc
	otherMode.Policy = topo.None{} // same placement as base... but
	if Fingerprint(otherMode) == Fingerprint(byMode) {
		t.Error("different Modes must fingerprint differently even under identical placement")
	}
}

// TestFingerprintFaultSensitivity pins the fault-schedule corner of the
// key: a nil and an empty schedule inject nothing and must share the
// clean baseline's entry, while schedules differing in any event
// parameter — even one cycle of a window — must never collide.
func TestFingerprintFaultSensitivity(t *testing.T) {
	clean := Fingerprint(fpCfg())
	empty := fpCfg()
	empty.Faults = &fault.Schedule{}
	if Fingerprint(empty) != clean {
		t.Error("an empty fault schedule simulates identically to nil and must share its fingerprint")
	}

	ev := fault.Event{Kind: fault.KindBurst, NIC: -1, PEnterBad: 0.002, PExitBad: 0.2, BadRate: 0.9}
	base := fpCfg()
	base.Faults = &fault.Schedule{Events: []fault.Event{ev}}
	faulted := Fingerprint(base)
	if faulted == clean {
		t.Fatal("a faulted config must not share the clean baseline's fingerprint")
	}

	tweaks := map[string]func(*fault.Event){
		"Kind":      func(e *fault.Event) { e.Kind = fault.KindLoss; e.Rate = 0.9 },
		"NIC":       func(e *fault.Event) { e.NIC = 0 },
		"Until":     func(e *fault.Event) { e.Until = 1 },
		"BadRate":   func(e *fault.Event) { e.BadRate = 0.8 },
		"PEnterBad": func(e *fault.Event) { e.PEnterBad = 0.003 },
	}
	for field, tweak := range tweaks {
		cfg := fpCfg()
		e := ev
		tweak(&e)
		cfg.Faults = &fault.Schedule{Events: []fault.Event{e}}
		if Fingerprint(cfg) == faulted {
			t.Errorf("changing fault %s did not change the fingerprint", field)
		}
	}
}

// TestFingerprintWorkloadSensitivity pins the workload corner of the
// key: a nil spec and an explicit default-bulk spec simulate
// byte-identically and share the baseline entry, while specs differing
// in any field that can change a run must never collide.
func TestFingerprintWorkloadSensitivity(t *testing.T) {
	clean := Fingerprint(fpCfg())
	bulk := fpCfg()
	bulk.Workload = &workload.Spec{Kind: workload.KindBulk}
	if Fingerprint(bulk) != clean {
		t.Error("an explicit default-bulk spec simulates identically to nil and must share its fingerprint")
	}

	base := fpCfg()
	base.Workload = &workload.Spec{Kind: workload.KindOpenLoop}
	openloop := Fingerprint(base)
	if openloop == clean {
		t.Fatal("an openloop config must not share the bulk baseline's fingerprint")
	}

	tweaks := map[string]func(*workload.Spec){
		"Conns":          func(s *workload.Spec) { s.Conns = 777 },
		"Arrival":        func(s *workload.Spec) { s.Arrival = workload.ArrivalPareto },
		"IntervalCycles": func(s *workload.Spec) { s.IntervalCycles = 123_456 },
		"Mix":            func(s *workload.Spec) { s.Mix = workload.MixShort },
		"RspBytes":       func(s *workload.Spec) { s.RspBytes = 4096 },
		"Servers":        func(s *workload.Spec) { s.Servers = 3 },
		"Backlog":        func(s *workload.Spec) { s.Backlog = 16 },
		"TimeoutCycles":  func(s *workload.Spec) { s.TimeoutCycles = 1_000_000 },
	}
	for field, tweak := range tweaks {
		cfg := fpCfg()
		s := workload.Spec{Kind: workload.KindOpenLoop}
		tweak(&s)
		cfg.Workload = &s
		if Fingerprint(cfg) == openloop {
			t.Errorf("changing workload %s did not change the fingerprint", field)
		}
	}

	alt := fpCfg()
	alt.Workload = &workload.Spec{Kind: workload.KindBulk, Alternate: true}
	if Fingerprint(alt) == clean {
		t.Error("bulk with alternating directions must not share the plain bulk fingerprint")
	}
}

func TestCacheableGates(t *testing.T) {
	if !Cacheable(fpCfg()) {
		t.Error("plain config should be cacheable")
	}
	traced := fpCfg()
	traced.Trace = &trace.Config{}
	if Cacheable(traced) {
		t.Error("traced runs carry a live recorder and must bypass the cache")
	}
	gauged := fpCfg()
	gauged.GaugeCycles = 1_000_000
	if Cacheable(gauged) {
		t.Error("gauge-sampled runs carry a Series and must bypass the cache")
	}
}
