package cache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ttcp"
)

// TestOpenLoopCellBitIdentity100k pins the ISSUE acceptance criterion
// for the hundred-thousand-connection churn cell: the same cell config
// must report bit-identical tail quantiles (p50/p99/p999) and export
// identical JSON across three execution paths —
//
//  1. serial:   a single-worker runner simulating in-process,
//  2. parallel: a four-worker runner (different goroutine, same bits),
//  3. cached:   a second cache instance reading the gob disk store
//     written by the serial leader (no re-simulation allowed).
//
// Beyond determinism, the cell itself must complete: all 100k generated
// connections terminal, none abandoned, no SYN drops at the default
// offered load.
func TestOpenLoopCellBitIdentity100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-connection cell takes ~half a minute per simulation")
	}

	cfg := core.DefaultConfig(core.ModeFull, ttcp.TX, 65536)
	ws, err := core.ParseWorkload("openloop,conns=100000")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = ws
	if !Cacheable(cfg) {
		t.Fatal("open-loop cell config is not cacheable")
	}

	dir := t.TempDir()

	// Serial path; as singleflight leader it also populates the disk
	// store for the cached path below.
	cacheA := New(DefaultMaxBytes, dir)
	serial := cacheA.GetOrRun(cfg, func(c core.Config) *core.Result {
		return core.NewRunner(1).RunConfigs([]core.Config{c})[0]
	})

	// Parallel path: an independent simulation on a multi-worker runner.
	parallel := core.NewRunner(4).RunConfigs([]core.Config{cfg})[0]

	// Cached path: a fresh cache instance over the same store directory
	// must satisfy the request from disk without simulating.
	cacheB := New(DefaultMaxBytes, dir)
	resimulated := false
	cached := cacheB.GetOrRun(cfg, func(c core.Config) *core.Result {
		resimulated = true
		return core.Run(c)
	})
	if resimulated {
		t.Fatal("cached path re-simulated: disk store missed")
	}
	if cacheB.Stats().DiskHits != 1 {
		t.Fatalf("cached path took an unexpected route: %+v", cacheB.Stats())
	}

	// The cell must run to completion at the default offered load.
	if serial.ConnsGenerated != 100_000 || serial.Transactions != 100_000 {
		t.Fatalf("cell incomplete: generated=%d completed=%d abandoned=%d syndrops=%d",
			serial.ConnsGenerated, serial.Transactions, serial.ConnsAbandoned, serial.SynDrops)
	}
	if serial.ConnsAbandoned != 0 || serial.SynDrops != 0 {
		t.Fatalf("cell dropped work at default load: abandoned=%d syndrops=%d",
			serial.ConnsAbandoned, serial.SynDrops)
	}
	if serial.LatencyP50Cycles == 0 ||
		serial.LatencyP50Cycles > serial.LatencyP99Cycles ||
		serial.LatencyP99Cycles > serial.LatencyP999Cycles {
		t.Fatalf("latency quantiles disordered: p50=%d p99=%d p999=%d",
			serial.LatencyP50Cycles, serial.LatencyP99Cycles, serial.LatencyP999Cycles)
	}

	for name, r := range map[string]*core.Result{"parallel": parallel, "cached": cached} {
		if r.LatencyP50Cycles != serial.LatencyP50Cycles ||
			r.LatencyP99Cycles != serial.LatencyP99Cycles ||
			r.LatencyP999Cycles != serial.LatencyP999Cycles {
			t.Errorf("%s quantiles diverged from serial: p50 %d vs %d, p99 %d vs %d, p999 %d vs %d",
				name,
				r.LatencyP50Cycles, serial.LatencyP50Cycles,
				r.LatencyP99Cycles, serial.LatencyP99Cycles,
				r.LatencyP999Cycles, serial.LatencyP999Cycles)
		}
		js, err := serial.JSON()
		if err != nil {
			t.Fatal(err)
		}
		jr, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if js != jr {
			t.Errorf("%s path JSON diverged from serial:\nserial: %s\n%s: %s", name, js, name, jr)
		}
	}
}
