// Package cache memoizes simulation results. Every cell is a pure,
// deterministic function of its core.Config, so a canonical fingerprint
// of the result-affecting configuration fields is a complete cache key:
// equal fingerprints imply bit-identical Results. The package provides
// that fingerprint, a byte-bounded in-memory LRU over it, an optional
// content-addressed on-disk store (AFFINITY_CACHE_DIR), and singleflight
// deduplication so N concurrent identical requests cost one simulation.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/core"
)

// fingerprintVersion namespaces every key. Bump it when the fingerprint
// scheme itself changes (not when the simulator changes — simulator
// changes that alter results must be handled by operators discarding the
// disk store, see the server's /healthz build version).
const fingerprintVersion = "affinity-fp-v4"

// coveredFields records, per configuration struct the fingerprint walks,
// the exact field set the implementation handles. TestFingerprintCoversConfig
// reflects over the real types and fails when a field exists that is not
// listed here — adding a Config field without deciding its fingerprint
// treatment is a build-breaking omission, not a silent cache-corruption
// bug. Every listed field is either hashed below or consciously excluded
// (see uncacheable: Trace and GaugeCycles attach live per-run artifacts,
// so configs carrying them bypass the cache entirely yet are still
// hashed for completeness).
var coveredFields = map[string][]string{
	"core.Config": {
		"Mode", "Dir", "Size", "NumCPUs", "NumNICs", "Topology", "Policy",
		"Seed", "WarmupCycles", "MeasureCycles", "RotateIRQs", "SkipWorkload",
		"ThinkCycles", "RecordLatency", "Trace", "GaugeCycles",
		"CPU", "Tune", "TCP", "Faults", "Coalesce", "Workload",
	},
	"workload.Spec": {
		"Kind", "Alternate", "ReqBytes", "RspBytes", "Mix",
		"Conns", "Arrival", "IntervalCycles", "Alpha", "MaxIntervalCycles",
		"Servers", "Backlog", "TimeoutCycles",
	},
	"cpu.Config":    {"ClockHz", "BaseCPI", "Penalty", "TLBEntries"},
	"cpu.Penalties": {"MachineClear", "TCMiss", "L2Hit", "L2Miss", "LLCMiss", "ITLBWalk", "DTLBWalk", "BrMispredict", "RemoteClearPeriod"},
	"kern.Tuning": {
		"ClearsPerDeviceIRQ", "ClearsPerIPI", "ClearsPerTimer", "ClearsPerSwitch",
		"QuantumCycles", "TickCycles", "IPILatencyCycles", "BalanceTicks",
		"CacheDecayCycles", "WakeAffinity", "WakeIPI", "PreemptIPI", "DMAReadInvalidates",
	},
	"tcp.Config":    {"MSS", "SndBuf", "RcvBuf", "PoolSKBs", "PoolHeaders", "DelAckSegs", "ClientDelayCycles", "RxIntCopy", "RTOInitCycles", "RTOMaxCycles"},
	"topo.Topology": {"NumCPUs", "Domains", "NICs", "Conns"},
	"topo.NICShape": {"Queues", "LinkBps"},
	"trace.Config":  {"Capacity"},
	"topo.Plan":     {"Topo", "Policy", "QueueVectors", "IRQMasks", "ProcMasks", "StartCPUs", "FlowQueues", "RotateIRQs", "FlowDirector"},
	"netdev.NICConfig": {
		"Vector", "LinkBps", "TxRing", "RxRing", "CoalesceCycles",
		"WireLatencyCycles", "LossRate", "NAPI", "QueueVectors", "Coalesce",
	},
	"netdev.CoalesceConfig": {"Mode", "Usecs", "Frames", "MinUsecs", "MaxUsecs"},
	"fault.Schedule":        {"Events"},
	"fault.Event": {
		"Kind", "NIC", "CPU", "From", "Until", "Rate", "BadRate",
		"PEnterBad", "PExitBad", "DelayCycles", "JitterCycles", "PeriodCycles",
	},
}

// Cacheable reports whether cfg's Result can be served from a cache.
// Traced runs carry a live Recorder and gauge-sampled runs carry a
// Series on the Result — per-run artifacts a shared cache entry cannot
// represent — so those configurations always simulate.
func Cacheable(cfg core.Config) bool {
	return cfg.Trace == nil && cfg.GaugeCycles == 0
}

// Fingerprint canonically hashes every result-affecting field of cfg.
// Two configs with equal fingerprints produce bit-identical Results; two
// configs that could render differently anywhere (figures, CSV, verify
// scorecard) hash differently. Placement is hashed through the computed
// topo.Plan, so a Mode and the equivalent explicit Policy that place
// work identically share the simulation — while Mode itself is also
// hashed, because it appears verbatim in rendered output.
func Fingerprint(cfg core.Config) string {
	h := sha256.New()
	writeFingerprint(h, cfg)
	return hex.EncodeToString(h.Sum(nil))
}

func writeFingerprint(w io.Writer, cfg core.Config) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("%s\n", fingerprintVersion)

	// Identity fields that surface verbatim in rendered artifacts.
	p("mode=%d dir=%d size=%d seed=%d\n", int(cfg.Mode), int(cfg.Dir), cfg.Size, cfg.Seed)

	// Windows and workload knobs.
	p("warmup=%d measure=%d think=%d rotate=%t skipwl=%t reclat=%t\n",
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.ThinkCycles,
		cfg.RotateIRQs, cfg.SkipWorkload, cfg.RecordLatency)

	// Per-run artifact attachments: uncacheable (Cacheable is false when
	// set), hashed anyway so the key function is total.
	p("trace=%t gauge=%d\n", cfg.Trace != nil, cfg.GaugeCycles)
	if cfg.Trace != nil {
		p("trace.cap=%d\n", cfg.Trace.Capacity)
	}

	// Coalescing model. Nil and an explicit legacy config simulate
	// identically (String normalizes both to "legacy"), so both hash as
	// the absence of this section; the resolved per-device line below
	// covers it again through NICConfigFor, but this line also covers
	// the PlanFor-error path so the key stays total.
	if cfg.Coalesce != nil && !cfg.Coalesce.Legacy() {
		p("coalesce=%s\n", cfg.Coalesce.String())
	}

	// Machine shape, resolved: NumCPUs/NumNICs and an equivalent explicit
	// Topology hash identically, as they simulate identically.
	t := cfg.Topo()
	p("topo cpus=%d conns=%d domains=%d\n", t.NumCPUs, t.Conns, len(t.Domains))
	for _, d := range t.Domains {
		p("domain=%v\n", d)
	}
	for _, n := range t.NICs {
		p("nic queues=%d link=%d\n", n.Queues, n.LinkBps)
	}

	// Placement, resolved through the plan: covers Mode/Policy/RotateIRQs
	// interaction and any custom PlacementPolicy's actual output. A shape
	// the policy rejects hashes its error — the run will fail identically.
	if plan, err := core.PlanFor(cfg); err != nil {
		p("plan.err=%v\n", err)
	} else {
		p("plan policy=%q rotate=%t fd=%t\n", plan.Policy, plan.RotateIRQs, plan.FlowDirector)
		for n := range plan.QueueVectors {
			p("plan.nic%d vecs=%v masks=%v\n", n, plan.QueueVectors[n], plan.IRQMasks[n])
		}
		p("plan.procs masks=%v starts=%v flows=%v\n", plan.ProcMasks, plan.StartCPUs, plan.FlowQueues)
		// Resolved per-device configuration — exactly what NewMachine
		// hands each NIC (ring sizes, coalescing, wire latency, loss),
		// so device-model knobs can never slip past the key.
		for n := range plan.QueueVectors {
			nc := core.NICConfigFor(plan, cfg.Coalesce, n)
			p("nicdev%d vec=%d link=%d tx=%d rx=%d coalesce=%d co=%s wirelat=%d loss=%g napi=%t qvecs=%v\n",
				n, nc.Vector, nc.LinkBps, nc.TxRing, nc.RxRing, nc.CoalesceCycles,
				nc.Coalesce.String(), nc.WireLatencyCycles, nc.LossRate, nc.NAPI, nc.QueueVectors)
		}
	}

	// Model parameter blocks, field by field.
	c := cfg.CPU
	p("cpu clock=%d basecpi=%g tlb=%d\n", c.ClockHz, c.BaseCPI, c.TLBEntries)
	pe := c.Penalty
	p("pen clear=%d tc=%d l2h=%d l2m=%d llc=%d itlb=%d dtlb=%d br=%d rcp=%d\n",
		pe.MachineClear, pe.TCMiss, pe.L2Hit, pe.L2Miss, pe.LLCMiss,
		pe.ITLBWalk, pe.DTLBWalk, pe.BrMispredict, pe.RemoteClearPeriod)
	tu := cfg.Tune
	p("tune cdirq=%d cipi=%d ctimer=%d cswitch=%d quantum=%d tick=%d ipilat=%d bal=%d decay=%d wakeaff=%t wakeipi=%t preempt=%t dmainv=%t\n",
		tu.ClearsPerDeviceIRQ, tu.ClearsPerIPI, tu.ClearsPerTimer, tu.ClearsPerSwitch,
		tu.QuantumCycles, tu.TickCycles, tu.IPILatencyCycles, tu.BalanceTicks,
		tu.CacheDecayCycles, tu.WakeAffinity, tu.WakeIPI, tu.PreemptIPI, tu.DMAReadInvalidates)
	tc := cfg.TCP
	p("tcp mss=%d snd=%d rcv=%d skbs=%d hdrs=%d delack=%d clidelay=%d intcopy=%t rtoinit=%d rtomax=%d\n",
		tc.MSS, tc.SndBuf, tc.RcvBuf, tc.PoolSKBs, tc.PoolHeaders,
		tc.DelAckSegs, tc.ClientDelayCycles, tc.RxIntCopy,
		tc.RTOInitCycles, tc.RTOMaxCycles)

	// Fault schedule, event by event. A nil and an empty schedule inject
	// nothing and simulate identically (the injector draws no random
	// numbers), so both hash as the absence of this section.
	if !cfg.Faults.Empty() {
		for _, e := range cfg.Faults.Events {
			p("fault kind=%s nic=%d cpu=%d from=%d until=%d rate=%g bad=%g penter=%g pexit=%g delay=%d jitter=%d period=%d\n",
				e.Kind, e.NIC, e.CPU, e.From, e.Until, e.Rate, e.BadRate,
				e.PEnterBad, e.PExitBad, e.DelayCycles, e.JitterCycles, e.PeriodCycles)
		}
	}

	// Workload spec, field by field. A nil spec and any spec that
	// simulates as the plain bulk workload (IsDefaultBulk) are
	// byte-identical runs, so both hash as the absence of this section.
	if wl := cfg.Workload; !wl.IsDefaultBulk() {
		p("workload kind=%s alt=%t req=%d rsp=%d mix=%s conns=%d arrival=%s interval=%d alpha=%g maxinterval=%d servers=%d backlog=%d timeout=%d\n",
			wl.Kind, wl.Alternate, wl.ReqBytes, wl.RspBytes, wl.Mix,
			wl.Conns, wl.Arrival, wl.IntervalCycles, wl.Alpha, wl.MaxIntervalCycles,
			wl.Servers, wl.Backlog, wl.TimeoutCycles)
	}
}
