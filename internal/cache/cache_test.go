package cache

import (
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/ttcp"
)

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// quickCfg is a real but small simulation cell, fast enough to run a
// handful of times per test.
func quickCfg(seed uint64) core.Config {
	cfg := core.DefaultConfig(core.ModeNone, ttcp.TX, 65536)
	cfg.Seed = seed
	cfg.WarmupCycles = 2_000_000
	cfg.MeasureCycles = 5_000_000
	return cfg
}

func TestGetOrRunMemoizes(t *testing.T) {
	c := New(DefaultMaxBytes, "")
	cfg := quickCfg(1)
	first := c.Run(cfg)
	second := c.Run(cfg)
	if first != second {
		t.Error("second lookup should return the memoized *Result")
	}
	st := c.Stats()
	if st.Sims != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 sim, 1 hit, 1 miss", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("LRU should hold 1 sized entry, got %d entries %d bytes", st.Entries, st.Bytes)
	}

	// A result-affecting difference must simulate again.
	other := c.Run(quickCfg(2))
	if other == first {
		t.Error("different seed returned the same cached result")
	}
	if got := c.Stats().Sims; got != 2 {
		t.Errorf("sims = %d, want 2", got)
	}
}

func TestCachedResultRendersIdentically(t *testing.T) {
	c := New(DefaultMaxBytes, "")
	cfg := quickCfg(1)
	fresh := core.Run(cfg)
	cached := c.Run(cfg) // miss: simulates
	again := c.Run(cfg)  // hit

	freshJSON, err := fresh.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*core.Result{"miss": cached, "hit": again} {
		j, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if j != freshJSON {
			t.Errorf("%s: JSON differs from a fresh simulation", name)
		}
		if r.CSVRow() != fresh.CSVRow() {
			t.Errorf("%s: CSV row differs from a fresh simulation", name)
		}
		if r.String() != fresh.String() {
			t.Errorf("%s: String differs from a fresh simulation", name)
		}
		if got, want := core.BaselineTable(r).Format(), core.BaselineTable(fresh).Format(); got != want {
			t.Errorf("%s: Table 1 rendering differs from a fresh simulation", name)
		}
	}
}

// TestSingleflight launches many concurrent identical requests and
// requires exactly one simulation: the acceptance criterion for request
// deduplication.
func TestSingleflight(t *testing.T) {
	c := New(DefaultMaxBytes, "")
	cfg := quickCfg(1)
	const concurrent = 32
	results := make([]*core.Result, concurrent)
	var wg sync.WaitGroup
	wg.Add(concurrent)
	for i := 0; i < concurrent; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = c.Run(cfg)
		}(i)
	}
	wg.Wait()
	for i := 1; i < concurrent; i++ {
		if results[i] != results[0] {
			t.Fatalf("request %d got a different *Result", i)
		}
	}
	st := c.Stats()
	if st.Sims != 1 {
		t.Errorf("%d concurrent identical requests ran %d simulations, want exactly 1", concurrent, st.Sims)
	}
	if st.Hits+st.Coalesced+st.Misses != concurrent {
		t.Errorf("lookup accounting %d hits + %d coalesced + %d misses != %d requests",
			st.Hits, st.Coalesced, st.Misses, concurrent)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after all requests returned", st.Inflight)
	}
}

// fakeResult builds a synthetic Result of a controllable approximate
// size, so LRU bounds are testable without real simulations.
func fakeResult(utilLen int) *core.Result {
	return &core.Result{Util: make([]float64, utilLen)}
}

func TestLRUEvictsByBytes(t *testing.T) {
	// Each fake entry is 512 fixed + 1000*8 = 8512 bytes; bound to ~2.5
	// entries worth so the third insert evicts the coldest.
	c := New(3*8512-1, "")
	run := func(i uint64) {
		cfg := quickCfg(i)
		res := c.GetOrRun(cfg, func(core.Config) *core.Result { return fakeResult(1000) })
		if res == nil {
			t.Fatal("nil result")
		}
	}
	run(1)
	run(2)
	run(3) // evicts seed 1
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after 3 inserts into a 2-entry bound: %d evictions, %d entries; want 1, 2", st.Evictions, st.Entries)
	}
	if st.Bytes > c.maxBytes {
		t.Errorf("bytes %d exceed bound %d", st.Bytes, c.maxBytes)
	}

	// Seed 2 and 3 are resident; seed 1 was evicted and must re-run.
	before := c.Stats().Misses
	run(2)
	run(3)
	if got := c.Stats().Hits; got != 2 {
		t.Errorf("hits = %d, want 2 for resident entries", got)
	}
	run(1)
	if got := c.Stats().Misses; got != before+1 {
		t.Errorf("evicted entry should miss: misses %d -> %d", before, got)
	}
}

func TestOversizedEntryNotAdmitted(t *testing.T) {
	c := New(1024, "")
	cfg := quickCfg(1)
	c.GetOrRun(cfg, func(core.Config) *core.Result { return fakeResult(10_000) })
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("an entry larger than the whole bound was admitted: %+v", st)
	}
}

func TestUncacheableBypassesCache(t *testing.T) {
	c := New(DefaultMaxBytes, "")
	cfg := quickCfg(1)
	cfg.Trace = &trace.Config{Capacity: 1024}
	calls := 0
	stub := func(core.Config) *core.Result { calls++; return fakeResult(1) }
	c.GetOrRun(cfg, stub)
	c.GetOrRun(cfg, stub)
	if calls != 2 {
		t.Errorf("traced config should run every time, ran %d of 2", calls)
	}
	if st := c.Stats(); st.Hits+st.Misses+st.Sims != 0 {
		t.Errorf("uncacheable lookups should not touch the cache: %+v", st)
	}
}

func TestNilCachePassthrough(t *testing.T) {
	var c *Cache
	calls := 0
	res := c.GetOrRun(quickCfg(1), func(core.Config) *core.Result { calls++; return fakeResult(1) })
	if res == nil || calls != 1 {
		t.Errorf("nil cache should call run exactly once, got %d calls", calls)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats should be zero, got %+v", st)
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg(1)

	warm := New(DefaultMaxBytes, dir)
	fresh := warm.Run(cfg)
	if st := warm.Stats(); st.Sims != 1 || st.DiskErrors != 0 {
		t.Fatalf("warming run: %+v", st)
	}

	// A second cache over the same directory — a fresh process — must
	// serve the result from disk without simulating, and the restored
	// result must render byte-identically everywhere.
	cold := New(DefaultMaxBytes, dir)
	restored := cold.Run(cfg)
	st := cold.Stats()
	if st.Sims != 0 || st.DiskHits != 1 {
		t.Fatalf("cold cache should disk-hit without simulating: %+v", st)
	}
	freshJSON, err := fresh.JSON()
	if err != nil {
		t.Fatal(err)
	}
	restoredJSON, err := restored.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if restoredJSON != freshJSON {
		t.Error("restored JSON differs from the fresh simulation")
	}
	if restored.CSVRow() != fresh.CSVRow() {
		t.Error("restored CSV row differs")
	}
	if restored.String() != fresh.String() {
		t.Error("restored String differs")
	}
	if got, want := core.BaselineTable(restored).Format(), core.BaselineTable(fresh).Format(); got != want {
		t.Error("restored Table 1 rendering differs")
	}
	if got, want := core.Compare(fresh, restored).Format(), core.Compare(fresh, fresh).Format(); got != want {
		t.Error("restored result is not interchangeable with the fresh one in comparisons")
	}
}

func TestDiskStoreDiscardsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg(1)
	c := New(DefaultMaxBytes, dir)
	key := Fingerprint(cfg)
	if err := writeFile(c.path(key), []byte("not gob")); err != nil {
		t.Fatal(err)
	}
	res := c.Run(cfg)
	if res == nil {
		t.Fatal("corrupt disk entry should fall through to simulation")
	}
	st := c.Stats()
	if st.Sims != 1 || st.CorruptDiscards != 1 {
		t.Errorf("corrupt entry: want 1 sim and 1 corrupt discard, got %+v", st)
	}
	if st.DiskErrors != 0 {
		t.Errorf("discarding a corrupt entry is not a disk error, got %+v", st)
	}
	// The leader's re-simulation must have replaced the bad bytes with a
	// decodable entry: a fresh cache over the directory disk-hits.
	cold := New(DefaultMaxBytes, dir)
	if cold.Run(cfg) == nil {
		t.Fatal("reload after discard")
	}
	if cst := cold.Stats(); cst.Sims != 0 || cst.DiskHits != 1 || cst.CorruptDiscards != 0 {
		t.Errorf("replacement entry should disk-hit cleanly: %+v", cst)
	}
}

// TestCorruptEntryUnderConcurrentReaders is the pathology the discard
// path exists for: a truncated gob (a process crashed mid-write before
// rename discipline existed, or the disk ate the tail) hit by many
// readers at once. Every waiter must get a valid result, the key must
// simulate exactly once, and the corrupt file must be unlinked — not
// re-decoded by each new reader forever.
func TestCorruptEntryUnderConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg(1)

	// Persist a good entry, then truncate it to half its bytes.
	seed := New(DefaultMaxBytes, dir)
	want, err := seed.Run(cfg).JSON()
	if err != nil {
		t.Fatal(err)
	}
	key := Fingerprint(cfg)
	good, err := os.ReadFile(seed.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(seed.path(key), good[:len(good)/2]); err != nil {
		t.Fatal(err)
	}

	c := New(DefaultMaxBytes, dir)
	const readers = 16
	results := make([]*core.Result, readers)
	var wg sync.WaitGroup
	wg.Add(readers)
	for i := 0; i < readers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = c.Run(cfg)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil {
			t.Fatalf("reader %d got nil", i)
		}
		got, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("reader %d: result differs from the pre-corruption simulation", i)
		}
	}
	st := c.Stats()
	if st.Sims != 1 {
		t.Errorf("truncated entry re-simulated %d times across %d readers, want exactly 1", st.Sims, readers)
	}
	if st.CorruptDiscards < 1 {
		t.Errorf("no corrupt discard recorded: %+v", st)
	}
	// The re-simulation rewrote the entry; a later process must read it.
	later := New(DefaultMaxBytes, dir)
	later.Run(cfg)
	if lst := later.Stats(); lst.DiskHits != 1 || lst.CorruptDiscards != 0 {
		t.Errorf("rewritten entry should serve clean disk hits: %+v", lst)
	}
}

// TestDiskStoreRoundTripFaulted replays a faulted cell through a cold
// cache: the restored Result must carry the degradation metrics and the
// invariant verdict bit-identically — a disk hit that silently zeroed
// Retransmits or dropped the violation string would make a faulted
// sweep's rendering depend on cache temperature.
func TestDiskStoreRoundTripFaulted(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg(1)
	sched, err := fault.Parse("loss,rate=0.005")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = sched

	warm := New(DefaultMaxBytes, dir)
	fresh := warm.Run(cfg)
	if fresh.WireDrops == 0 || !fresh.InvariantsChecked {
		t.Fatalf("faulted warming run should drop frames and check invariants: drops=%d checked=%v",
			fresh.WireDrops, fresh.InvariantsChecked)
	}
	if fresh.InvariantViolation != "" {
		t.Fatalf("invariant violation: %s", fresh.InvariantViolation)
	}

	cold := New(DefaultMaxBytes, dir)
	restored := cold.Run(cfg)
	if st := cold.Stats(); st.Sims != 0 || st.DiskHits != 1 {
		t.Fatalf("cold cache should disk-hit without simulating: %+v", st)
	}
	if restored.Retransmits != fresh.Retransmits ||
		restored.WireDrops != fresh.WireDrops ||
		restored.WireBytes != fresh.WireBytes ||
		restored.GoodputRatio != fresh.GoodputRatio ||
		!reflect.DeepEqual(restored.FlapRecoveryCycles, fresh.FlapRecoveryCycles) ||
		restored.InvariantsChecked != fresh.InvariantsChecked ||
		restored.InvariantViolation != fresh.InvariantViolation {
		t.Errorf("restored degradation metrics differ:\n fresh:    %+v %+v\n restored: %+v %+v",
			[]uint64{fresh.Retransmits, fresh.WireDrops, fresh.WireBytes}, fresh.GoodputRatio,
			[]uint64{restored.Retransmits, restored.WireDrops, restored.WireBytes}, restored.GoodputRatio)
	}
	freshJSON, err := fresh.JSON()
	if err != nil {
		t.Fatal(err)
	}
	restoredJSON, err := restored.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if restoredJSON != freshJSON {
		t.Error("restored faulted JSON differs from the fresh simulation")
	}
}
