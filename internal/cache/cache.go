package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/perf"
)

// DirEnv names the environment variable selecting the on-disk store
// directory. Empty or unset keeps the cache memory-only.
const DirEnv = "AFFINITY_CACHE_DIR"

// DefaultMaxBytes is the in-memory bound used by the serving daemon and
// figure generator when none is given: roomy enough for thousands of
// entries (one paper-shape Result is a few tens of KiB) without
// threatening a build host.
const DefaultMaxBytes = 256 << 20

// Cache memoizes simulation Results keyed by config Fingerprint. It is
// safe for concurrent use. Layers, checked in order:
//
//  1. a byte-bounded in-memory LRU,
//  2. singleflight: concurrent requests for the same fingerprint wait
//     for one leader instead of simulating redundantly,
//  3. an optional on-disk store (gob, atomic write-rename), surviving
//     process restarts,
//  4. the simulation itself.
//
// A nil *Cache is the disabled state: GetOrRun degenerates to calling
// the run function directly.
type Cache struct {
	maxBytes int64
	dir      string

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	flight map[string]*flightCall
	bytes  int64

	hits            atomic.Uint64
	misses          atomic.Uint64
	coalesced       atomic.Uint64
	diskHits        atomic.Uint64
	evictions       atomic.Uint64
	sims            atomic.Uint64
	diskErrors      atomic.Uint64
	corruptDiscards atomic.Uint64
	aborts          atomic.Uint64
	inflight        atomic.Int64
}

type entry struct {
	key  string
	res  *core.Result
	size int64
}

type flightCall struct {
	done chan struct{}
	res  *core.Result // set before done is closed; nil if the leader panicked
}

// New builds a cache bounded to maxBytes of in-memory results
// (maxBytes <= 0 means unbounded) with an optional disk store rooted at
// dir ("" disables persistence; the directory is created on first write).
func New(maxBytes int64, dir string) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		dir:      dir,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		flight:   make(map[string]*flightCall),
	}
}

// Run is GetOrRun over the canonical core.Run.
func (c *Cache) Run(cfg core.Config) *core.Result { return c.GetOrRun(cfg, core.Run) }

// RunFunc adapts the cache to the runner's cell-executor slot:
// runner.Use(c.RunFunc()) makes every cell the runner executes
// cache-aware.
func (c *Cache) RunFunc() core.RunFunc { return c.Run }

// GetOrRun returns the Result for cfg, simulating via run at most once
// per fingerprint no matter how many goroutines ask concurrently.
// Uncacheable configs (see Cacheable) and a nil receiver pass straight
// through to run.
func (c *Cache) GetOrRun(cfg core.Config, run core.RunFunc) *core.Result {
	if run == nil {
		run = core.Run
	}
	if c == nil || !Cacheable(cfg) {
		return run(cfg)
	}
	key := Fingerprint(cfg)
	for {
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok {
			c.ll.MoveToFront(el)
			res := el.Value.(*entry).res
			c.mu.Unlock()
			c.hits.Add(1)
			return res
		}
		if fl, ok := c.flight[key]; ok {
			c.mu.Unlock()
			c.coalesced.Add(1)
			<-fl.done
			if fl.res != nil {
				return fl.res
			}
			// The leader panicked; loop and contend for leadership so
			// the failure propagates here too instead of hanging.
			continue
		}
		fl := &flightCall{done: make(chan struct{})}
		c.flight[key] = fl
		c.mu.Unlock()
		return c.lead(key, cfg, run, fl)
	}
}

// lead performs the non-deduplicated path: disk lookup, then simulation,
// then population of both stores, releasing singleflight waiters on the
// way out (including on panic).
func (c *Cache) lead(key string, cfg core.Config, run core.RunFunc, fl *flightCall) *core.Result {
	defer func() {
		c.mu.Lock()
		delete(c.flight, key)
		c.mu.Unlock()
		close(fl.done)
	}()
	c.misses.Add(1)
	res, ok := c.loadDisk(key, cfg)
	if ok {
		c.diskHits.Add(1)
	} else {
		c.sims.Add(1)
		c.inflight.Add(1)
		res = run(cfg)
		c.inflight.Add(-1)
		if res != nil && res.Aborted {
			// An aborted run is a failure signal, not a result: hand it
			// back to the caller that owns the cancel, but keep it out of
			// both stores and leave fl.res nil, so coalesced waiters
			// re-contend for leadership with their own (live) signal
			// instead of inheriting this caller's abort.
			c.aborts.Add(1)
			return res
		}
		c.storeDisk(key, res)
	}
	c.insert(key, res)
	fl.res = res
	return res
}

// insert adds a result to the LRU, evicting from the cold end until the
// byte bound holds again. A single result larger than the whole bound is
// not admitted (it would only evict everything else for one entry).
func (c *Cache) insert(key string, res *core.Result) {
	size := resultBytes(res)
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return // a racing leader of an earlier generation already did
	}
	c.byKey[key] = c.ll.PushFront(&entry{key: key, res: res, size: size})
	c.bytes += size
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1 {
		cold := c.ll.Back()
		e := cold.Value.(*entry)
		c.ll.Remove(cold)
		delete(c.byKey, e.key)
		c.bytes -= e.size
		c.evictions.Add(1)
	}
}

// resultBytes estimates the resident size of one cached Result: the
// counter matrix dominates (symbols × CPUs × events × 8 bytes), plus the
// symbol names and the per-CPU slices.
func resultBytes(r *core.Result) int64 {
	const fixed = 512 // struct headers, scalars, slice headers
	size := int64(fixed)
	size += int64(len(r.Util))*8 + int64(len(r.IdleCycles))*8
	if r.Ctr != nil {
		tab := r.Ctr.Table()
		size += int64(tab.Len()) * int64(r.Ctr.CPUs()) * int64(perf.NumEvents) * 8
		for _, s := range tab.Symbols() {
			size += int64(len(tab.Name(s))) + 32
		}
	}
	return size
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Entries and Bytes describe the in-memory LRU right now; MaxBytes
	// is its configured bound (0 = unbounded).
	Entries  int
	Bytes    int64
	MaxBytes int64
	// Hits are in-memory LRU hits; Coalesced are requests that waited on
	// an identical in-flight computation instead of simulating; DiskHits
	// are misses served from the on-disk store; Sims are actual
	// simulations executed; Misses = DiskHits + Sims.
	Hits, Misses, Coalesced, DiskHits, Sims uint64
	// Evictions counts LRU entries dropped to hold the byte bound.
	Evictions uint64
	// DiskErrors counts failed best-effort disk reads/writes.
	DiskErrors uint64
	// CorruptDiscards counts persisted entries that failed to decode
	// (truncated gob, unreconstructable counter dump) and were unlinked
	// so every waiter and future lookup treats the key as a clean miss.
	CorruptDiscards uint64
	// Aborts counts simulations that returned Aborted (cancelled or over
	// budget) and were therefore kept out of every store.
	Aborts uint64
	// Inflight is the number of simulations executing right now.
	Inflight int64
	// Dir is the disk store root ("" = memory only).
	Dir string
}

// Stats snapshots the counters; nil-safe.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Entries:         entries,
		Bytes:           bytes,
		MaxBytes:        c.maxBytes,
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Coalesced:       c.coalesced.Load(),
		DiskHits:        c.diskHits.Load(),
		Sims:            c.sims.Load(),
		Evictions:       c.evictions.Load(),
		DiskErrors:      c.diskErrors.Load(),
		CorruptDiscards: c.corruptDiscards.Load(),
		Aborts:          c.aborts.Load(),
		Inflight:        c.inflight.Load(),
		Dir:             c.dir,
	}
}

// HitRatio is hits (memory + coalesced + disk) over total lookups, in
// [0,1]; 0 when nothing has been asked yet.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Coalesced + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced+s.DiskHits) / float64(total)
}
