// Package mem simulates the memory system of the paper's SMP server: a
// physical address space, per-processor cache hierarchies (L1D, L2 and a
// 2 MB last-level cache as on the P4 Xeon MP), a MESI-like coherence
// directory between processors, DMA traffic from NICs, and instruction/
// data TLBs.
//
// The cache simulation is structural, not statistical: simulated kernel
// objects (sockets, TCP contexts, skbs, payload buffers, descriptor
// rings) live at real simulated addresses, and hits and misses emerge
// from which CPU touched which line last — exactly the mechanism the
// paper credits for affinity's gains.
package mem

import "fmt"

// Addr is a simulated physical address.
type Addr uint64

// Geometry of the simulated memory system.
const (
	// LineSize is the coherence/cache line size in bytes.
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// PageSize is the virtual/physical page size in bytes.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
)

// LineOf returns the line-aligned address containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// PageOf returns the page-aligned address containing a.
func PageOf(a Addr) Addr { return a &^ (PageSize - 1) }

// LinesIn reports how many distinct cache lines the byte range [a, a+size)
// touches.
func LinesIn(a Addr, size int) int {
	if size <= 0 {
		return 0
	}
	first := LineOf(a)
	last := LineOf(a + Addr(size) - 1)
	return int((last-first)>>LineShift) + 1
}

// PagesIn reports how many distinct pages the byte range [a, a+size)
// touches.
func PagesIn(a Addr, size int) int {
	if size <= 0 {
		return 0
	}
	first := PageOf(a)
	last := PageOf(a + Addr(size) - 1)
	return int((last-first)>>PageShift) + 1
}

// Region records one allocation for diagnostics.
type Region struct {
	Name string
	Base Addr
	Size int
}

// Space is the simulated physical address space: a bump allocator that
// hands out non-overlapping regions. There is no free — simulated kernel
// objects are allocated once at machine construction and pooled
// thereafter, which mirrors how the 2.4 kernel slab caches behave in
// steady state.
type Space struct {
	next    Addr
	regions []Region
}

// NewSpace returns an address space whose first allocation begins at a
// non-zero base (so Addr(0) can mean "no address").
func NewSpace() *Space {
	return &Space{next: PageSize}
}

// Alloc reserves size bytes aligned to a cache line and returns the base
// address. It panics on non-positive sizes: simulated objects always have
// real extents.
func (s *Space) Alloc(size int, name string) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d) for %q", size, name))
	}
	base := (s.next + LineSize - 1) &^ (LineSize - 1)
	s.next = base + Addr(size)
	s.regions = append(s.regions, Region{Name: name, Base: base, Size: size})
	return base
}

// AllocPage reserves size bytes aligned to a page boundary. Payload
// buffers and ring arrays use this so page-walk counts are realistic.
func (s *Space) AllocPage(size int, name string) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("mem: AllocPage(%d) for %q", size, name))
	}
	base := (s.next + PageSize - 1) &^ (PageSize - 1)
	s.next = base + Addr(size)
	s.regions = append(s.regions, Region{Name: name, Base: base, Size: size})
	return base
}

// Used reports the total extent of the space in bytes.
func (s *Space) Used() uint64 { return uint64(s.next) }

// Regions returns all allocations in order.
func (s *Space) Regions() []Region { return s.regions }

// FindRegion returns the region containing a, for diagnostics.
func (s *Space) FindRegion(a Addr) (Region, bool) {
	for _, r := range s.regions {
		if a >= r.Base && a < r.Base+Addr(r.Size) {
			return r, true
		}
	}
	return Region{}, false
}
