package mem

import (
	"testing"
	"testing/quick"
)

func TestSpaceAllocAlignmentAndNonOverlap(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(100, "a")
	b := s.Alloc(10, "b")
	p := s.AllocPage(8192, "p")
	if a%LineSize != 0 || b%LineSize != 0 {
		t.Fatal("allocations not line-aligned")
	}
	if p%PageSize != 0 {
		t.Fatal("AllocPage not page-aligned")
	}
	if b < a+100 {
		t.Fatal("allocations overlap")
	}
	if r, ok := s.FindRegion(a + 50); !ok || r.Name != "a" {
		t.Fatal("FindRegion failed")
	}
	if _, ok := s.FindRegion(Addr(1)); ok {
		t.Fatal("FindRegion matched unallocated address")
	}
	if len(s.Regions()) != 3 {
		t.Fatalf("regions = %d, want 3", len(s.Regions()))
	}
}

func TestLinesAndPagesIn(t *testing.T) {
	cases := []struct {
		addr  Addr
		size  int
		lines int
		pages int
	}{
		{0, 1, 1, 1},
		{0, 64, 1, 1},
		{0, 65, 2, 1},
		{63, 2, 2, 1},
		{0, 4096, 64, 1},
		{4095, 2, 2, 2},
		{100, 0, 0, 0},
		{128, 256, 4, 1},
	}
	for _, c := range cases {
		if got := LinesIn(c.addr, c.size); got != c.lines {
			t.Errorf("LinesIn(%d,%d) = %d, want %d", c.addr, c.size, got, c.lines)
		}
		if got := PagesIn(c.addr, c.size); got != c.pages {
			t.Errorf("PagesIn(%d,%d) = %d, want %d", c.addr, c.size, got, c.pages)
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(CacheCfg{Name: "t", Size: 4096, Ways: 4, LineSize: LineSize})
	line := Addr(0x1000)
	if c.Lookup(line) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(line)
	if !c.Lookup(line) {
		t.Fatal("miss after fill")
	}
	c.Invalidate(line)
	if c.Lookup(line) {
		t.Fatal("hit after invalidate")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4-way, line 64 => set count = 4096/64/4 = 16. Addresses with equal
	// (line>>6)&15 collide.
	c := NewCache(CacheCfg{Name: "t", Size: 4096, Ways: 4, LineSize: LineSize})
	setStride := Addr(16 * LineSize)
	lines := []Addr{0, setStride, 2 * setStride, 3 * setStride, 4 * setStride}
	for _, l := range lines[:4] {
		c.Fill(l)
	}
	// Touch line 0 so it is MRU; then fill a fifth line -> evicts lines[1].
	c.Lookup(lines[0])
	evicted, was := c.Fill(lines[4])
	if !was || evicted != lines[1] {
		t.Fatalf("evicted %#x (valid=%v), want %#x", evicted, was, lines[1])
	}
	if !c.Lookup(lines[0]) || c.Lookup(lines[1]) || !c.Lookup(lines[4]) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestCacheFlushAndHitRate(t *testing.T) {
	c := NewCache(CacheCfg{Name: "t", Size: 4096, Ways: 4, LineSize: LineSize})
	c.Fill(0)
	c.Lookup(0)
	c.Lookup(64)
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
	c.Flush()
	if c.Lookup(0) {
		t.Fatal("hit after flush")
	}
}

func TestCacheRefillExistingLineDoesNotEvict(t *testing.T) {
	c := NewCache(CacheCfg{Name: "t", Size: 4096, Ways: 4, LineSize: LineSize})
	c.Fill(0)
	evicted, was := c.Fill(0)
	if was || evicted != 0 {
		t.Fatal("refilling resident line evicted something")
	}
}

func TestDirectoryReadWriteInvalidation(t *testing.T) {
	d := NewDirectory(2)
	line := Addr(0x40)

	if d.HasCopy(0, line) {
		t.Fatal("copy present in fresh directory")
	}
	if remote := d.OnRead(0, line); remote {
		t.Fatal("first read flagged remote")
	}
	if !d.HasCopy(0, line) {
		t.Fatal("no copy after read")
	}
	// CPU1 writes: CPU0's copy must die.
	d.OnWrite(1, line)
	if d.HasCopy(0, line) {
		t.Fatal("stale copy survived remote write")
	}
	if !d.DirtyElsewhere(0, line) {
		t.Fatal("dirty-elsewhere not reported")
	}
	// CPU0 reads it back: remote transfer, line becomes shared clean.
	if remote := d.OnRead(0, line); !remote {
		t.Fatal("read of remote-dirty line not flagged remote")
	}
	if d.DirtyElsewhere(0, line) || d.DirtyElsewhere(1, line) {
		t.Fatal("line still dirty after sharing read")
	}
	if !d.HasCopy(0, line) || !d.HasCopy(1, line) {
		t.Fatal("sharing read should leave both copies valid")
	}
}

func TestDirectoryEvictWritesBack(t *testing.T) {
	d := NewDirectory(2)
	line := Addr(0x80)
	d.OnWrite(0, line)
	d.OnEvict(0, line)
	if d.HasCopy(0, line) {
		t.Fatal("copy survived eviction")
	}
	if d.DirtyElsewhere(1, line) {
		t.Fatal("evicted dirty line not written back")
	}
}

func TestDirectoryDMA(t *testing.T) {
	d := NewDirectory(2)
	line := Addr(0xc0)
	d.OnWrite(0, line)
	// NIC transmit DMA reads the line: flushes the dirty copy but CPU0
	// keeps a valid shared copy.
	if !d.DMARead(line) {
		t.Fatal("DMA read of dirty line should report a flush")
	}
	if !d.HasCopy(0, line) {
		t.Fatal("DMA read should not invalidate the CPU copy")
	}
	if d.DMARead(line) {
		t.Fatal("second DMA read should find the line clean")
	}
	// NIC receive DMA writes the line: every CPU copy dies.
	d.OnRead(1, line)
	d.DMAWrite(line)
	if d.HasCopy(0, line) || d.HasCopy(1, line) {
		t.Fatal("DMA write left stale CPU copies")
	}
}

func newPair(t *testing.T) (*Hierarchy, *Hierarchy, *Directory) {
	t.Helper()
	d := NewDirectory(2)
	l1, l2, llc := P4XeonMP()
	return NewHierarchy(0, l1, l2, llc, d), NewHierarchy(1, l1, l2, llc, d), d
}

func TestHierarchyColdThenWarm(t *testing.T) {
	h0, _, _ := newPair(t)
	addr := Addr(0x10000)
	if r := h0.Access(addr, false); r.Level != LevelMemory {
		t.Fatalf("first touch level %v, want memory", r.Level)
	}
	if r := h0.Access(addr, false); r.Level != LevelL1 {
		t.Fatalf("second touch level %v, want L1", r.Level)
	}
}

func TestHierarchyRemoteDirtyTransfer(t *testing.T) {
	h0, h1, _ := newPair(t)
	addr := Addr(0x20000)
	h0.Access(addr, true) // CPU0 dirties the line
	r := h1.Access(addr, false)
	if r.Level != LevelMemory || !r.Remote {
		t.Fatalf("remote-dirty read = %+v, want memory+remote", r)
	}
	// After the transfer both can read locally.
	if r := h0.Access(addr, false); r.Level != LevelL1 {
		t.Fatalf("original owner lost its copy: %+v", r)
	}
	if r := h1.Access(addr, false); r.Level != LevelL1 {
		t.Fatalf("reader did not keep its copy: %+v", r)
	}
}

func TestHierarchyWriteInvalidatesRemote(t *testing.T) {
	h0, h1, _ := newPair(t)
	addr := Addr(0x30000)
	h0.Access(addr, false)
	h1.Access(addr, true) // CPU1 takes exclusive ownership
	if r := h0.Access(addr, false); r.Level != LevelMemory || !r.Remote {
		t.Fatalf("access to invalidated line = %+v, want remote memory", r)
	}
}

// The ping-pong pattern — two CPUs alternately writing one line — must
// miss on every access after the first. This is exactly the TCP-context
// bouncing the paper blames for no-affinity cache behaviour.
func TestHierarchyPingPongAlwaysMisses(t *testing.T) {
	h0, h1, _ := newPair(t)
	addr := Addr(0x40000)
	h0.Access(addr, true)
	for i := 0; i < 20; i++ {
		var r AccessResult
		if i%2 == 0 {
			r = h1.Access(addr, true)
		} else {
			r = h0.Access(addr, true)
		}
		if r.Level != LevelMemory || !r.Remote {
			t.Fatalf("ping-pong iteration %d served at level %v remote=%v", i, r.Level, r.Remote)
		}
	}
}

func TestHierarchyCapacityEvictionGoesToLLCThenMemory(t *testing.T) {
	h0, _, _ := newPair(t)
	// Stream through 16 KB (double the 8 KB L1): re-touching the start
	// must be served by an outer level, not L1.
	base := Addr(0x100000)
	h0.AccessRange(base, 16<<10, false)
	r := h0.Access(base, false)
	if r.Level == LevelL1 {
		t.Fatal("line survived a 2x-L1 streaming pass")
	}
	if r.Level == LevelMemory {
		t.Fatal("line should still be resident in an outer level")
	}
}

func TestHierarchyLLCEvictionSurrendersCoherence(t *testing.T) {
	d := NewDirectory(2)
	tiny := CacheCfg{Name: "tiny", Size: 1024, Ways: 2, LineSize: LineSize}
	h := NewHierarchy(0, tiny, tiny, tiny, d)
	// Fill far past capacity; early lines must lose their presence bits.
	h.AccessRange(0x1000, 8192, true)
	if d.HasCopy(0, LineOf(0x1000)) {
		t.Fatal("directory still records a copy after certain LLC eviction")
	}
	// And a dirty evicted line must have been written back.
	if d.DirtyElsewhere(1, LineOf(0x1000)) {
		t.Fatal("evicted dirty line still dirty in directory")
	}
}

func TestAccessRangeCounts(t *testing.T) {
	h0, _, _ := newPair(t)
	base := Addr(0x200000)
	r := h0.AccessRange(base, 1500, false)
	if r.Lines != LinesIn(base, 1500) {
		t.Fatalf("lines = %d, want %d", r.Lines, LinesIn(base, 1500))
	}
	if r.Misses != r.Lines {
		t.Fatalf("cold range: misses = %d, want %d", r.Misses, r.Lines)
	}
	r2 := h0.AccessRange(base, 1500, false)
	if r2.L1Hits != r2.Lines {
		t.Fatalf("warm range: l1 hits = %d, want %d", r2.L1Hits, r2.Lines)
	}
	if got := h0.AccessRange(base, 0, false); got.Lines != 0 {
		t.Fatal("zero-size range touched lines")
	}
}

// Property: for any access sequence by one CPU, the sum of per-level hit
// counts equals the number of lines touched.
func TestAccessRangePartitionProperty(t *testing.T) {
	f := func(offsets []uint16, sizes []uint8) bool {
		h, _, _ := newPairQuick()
		n := len(offsets)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			addr := Addr(0x1000 + uint64(offsets[i])*8)
			size := int(sizes[i]) + 1
			r := h.AccessRange(addr, size, i%2 == 0)
			if r.L1Hits+r.L2Hits+r.LLCHits+r.Misses != r.Lines {
				return false
			}
			if r.Remote > r.Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newPairQuick() (*Hierarchy, *Hierarchy, *Directory) {
	d := NewDirectory(2)
	l1, l2, llc := P4XeonMP()
	return NewHierarchy(0, l1, l2, llc, d), NewHierarchy(1, l1, l2, llc, d), d
}

func TestTLBHitMissAndCapacity(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Access(0) {
		t.Fatal("hit in empty TLB")
	}
	if !tlb.Access(100) { // same page
		t.Fatal("miss within cached page")
	}
	for i := 1; i <= 4; i++ {
		tlb.Access(Addr(i * PageSize))
	}
	// Page 0 was LRU and must have been evicted (capacity 4, 5 pages).
	if tlb.Access(0) {
		t.Fatal("LRU page survived over-capacity inserts")
	}
	if tlb.Len() != 4 {
		t.Fatalf("len = %d, want 4", tlb.Len())
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(64)
	tlb.Access(0)
	tlb.Flush()
	if tlb.Access(0) {
		t.Fatal("hit after flush")
	}
}

func TestTLBAccessRange(t *testing.T) {
	tlb := NewTLB(64)
	walks := tlb.AccessRange(0, 3*PageSize)
	if walks != 3 {
		t.Fatalf("cold walks = %d, want 3", walks)
	}
	if w := tlb.AccessRange(0, 3*PageSize); w != 0 {
		t.Fatalf("warm walks = %d, want 0", w)
	}
	if w := tlb.AccessRange(0, 0); w != 0 {
		t.Fatal("zero-size range walked")
	}
}

func TestP4XeonMPGeometry(t *testing.T) {
	l1, l2, llc := P4XeonMP()
	if l1.Size != 8<<10 || l2.Size != 512<<10 || llc.Size != 2<<20 {
		t.Fatal("paper cache geometry wrong")
	}
	// All three must construct without panicking.
	NewCache(l1)
	NewCache(l2)
	NewCache(llc)
	NewCache(TraceCacheCfg())
}

// Property: the hierarchy is inclusive — any line that hits in L1 or L2
// is also present in the LLC — and the directory never records two dirty
// owners, under a randomized schedule of reads/writes/DMA on two CPUs.
func TestHierarchyInclusionAndDirectoryProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		d := NewDirectory(2)
		l1 := CacheCfg{Name: "l1", Size: 1 << 10, Ways: 2, LineSize: LineSize}
		l2 := CacheCfg{Name: "l2", Size: 4 << 10, Ways: 4, LineSize: LineSize}
		l3 := CacheCfg{Name: "l3", Size: 16 << 10, Ways: 8, LineSize: LineSize}
		hs := []*Hierarchy{
			NewHierarchy(0, l1, l2, l3, d),
			NewHierarchy(1, l1, l2, l3, d),
		}
		lines := make(map[Addr]bool)
		for _, op := range ops {
			cpu := int(op & 1)
			write := op&2 != 0
			dma := op&4 != 0
			line := Addr(0x1000 + uint64(op>>3%512)*LineSize)
			lines[line] = true
			switch {
			case dma && write:
				d.DMAWrite(line)
			case dma:
				d.DMARead(line)
			default:
				hs[cpu].Access(line, write)
			}
		}
		for line := range lines {
			dirtyOwners := 0
			for cpu := 0; cpu < 2; cpu++ {
				if d.DirtyElsewhere(1-cpu, line) {
					dirtyOwners++
				}
				// Inclusion: an inner hit implies LLC presence.
				h := hs[cpu]
				if (h.L1().Lookup(line) || h.L2().Lookup(line)) && !h.LLC().Lookup(line) {
					return false
				}
			}
			if dirtyOwners > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeating the same access twice in a row never downgrades —
// the second access is served at least as close as the first.
func TestAccessLocalityMonotoneProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		h, _, _ := newPairQuick()
		n := len(addrs)
		if len(writes) < n {
			n = len(writes)
		}
		for i := 0; i < n; i++ {
			a := Addr(0x2000 + uint64(addrs[i])*8)
			first := h.Access(a, writes[i])
			second := h.Access(a, writes[i])
			if second.Level > first.Level {
				return false
			}
			if second.Level != LevelL1 {
				return false // an immediate re-touch must be an L1 hit
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
