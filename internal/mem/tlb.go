package mem

// TLB models one translation-lookaside buffer as a fully-associative,
// LRU-replaced set of page entries. The P4-era parts had 64-entry
// instruction and data TLBs and no address-space identifiers, so a
// context switch to a different address space flushes everything — one of
// the costs process migration and interrupt intrusion impose.
type TLB struct {
	capacity int
	tick     uint64
	entries  map[Addr]uint64 // page address -> last-use tick
	hits     uint64
	lookups  uint64
}

// NewTLB returns an empty TLB holding capacity entries.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		panic("mem: TLB capacity must be positive")
	}
	return &TLB{capacity: capacity, entries: make(map[Addr]uint64, capacity)}
}

// Access translates the page containing addr. It reports false on a miss
// (a page walk), installing the entry.
func (t *TLB) Access(addr Addr) bool {
	page := PageOf(addr)
	t.tick++
	t.lookups++
	if _, ok := t.entries[page]; ok {
		t.entries[page] = t.tick
		t.hits++
		return true
	}
	if len(t.entries) >= t.capacity {
		var victim Addr
		oldest := t.tick + 1
		for p, use := range t.entries {
			if use < oldest {
				oldest = use
				victim = p
			}
		}
		delete(t.entries, victim)
	}
	t.entries[page] = t.tick
	return false
}

// AccessRange translates every page in [addr, addr+size) and returns the
// number of walks (misses).
func (t *TLB) AccessRange(addr Addr, size int) int {
	if size <= 0 {
		return 0
	}
	walks := 0
	first := PageOf(addr)
	last := PageOf(addr + Addr(size) - 1)
	for page := first; ; page += PageSize {
		if !t.Access(page) {
			walks++
		}
		if page == last {
			break
		}
	}
	return walks
}

// Flush empties the TLB (address-space switch).
func (t *TLB) Flush() {
	clear(t.entries)
}

// Len reports the number of live entries.
func (t *TLB) Len() int { return len(t.entries) }

// HitRate reports lifetime hits/lookups.
func (t *TLB) HitRate() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.hits) / float64(t.lookups)
}
