package mem

import "fmt"

// CacheCfg sizes one cache level.
type CacheCfg struct {
	Name     string
	Size     int // total bytes
	Ways     int // associativity
	LineSize int // bytes per line; must currently equal LineSize
}

// P4XeonMP returns the cache geometry of the paper's system under test:
// 8 KB L1D, 512 KB L2 and 2 MB L3 per processor (Gallatin-class Xeon MP).
func P4XeonMP() (l1, l2, llc CacheCfg) {
	l1 = CacheCfg{Name: "L1D", Size: 8 << 10, Ways: 4, LineSize: LineSize}
	l2 = CacheCfg{Name: "L2", Size: 512 << 10, Ways: 8, LineSize: LineSize}
	llc = CacheCfg{Name: "L3", Size: 2 << 20, Ways: 8, LineSize: LineSize}
	return l1, l2, llc
}

// TraceCacheCfg returns the geometry used to model the P4 trace cache
// (12K µops ≈ 16 KB of decoded instruction bytes in this model).
func TraceCacheCfg() CacheCfg {
	return CacheCfg{Name: "TC", Size: 16 << 10, Ways: 8, LineSize: LineSize}
}

type cacheLine struct {
	tag   Addr // line-aligned address
	valid bool
	lru   uint64
}

// Cache is one set-associative, LRU cache level. It tracks only presence
// (tags); dirtiness and cross-CPU validity live in the coherence
// Directory so invalidation can be lazy.
type Cache struct {
	cfg     CacheCfg
	sets    [][]cacheLine
	mask    Addr
	tick    uint64
	hits    uint64
	lookups uint64
}

// NewCache builds an empty cache. It panics on degenerate geometry.
func NewCache(cfg CacheCfg) *Cache {
	if cfg.LineSize != LineSize {
		panic(fmt.Sprintf("mem: cache %q line size %d unsupported", cfg.Name, cfg.LineSize))
	}
	nLines := cfg.Size / cfg.LineSize
	if cfg.Ways <= 0 || nLines <= 0 || nLines%cfg.Ways != 0 {
		panic(fmt.Sprintf("mem: cache %q bad geometry size=%d ways=%d", cfg.Name, cfg.Size, cfg.Ways))
	}
	nSets := nLines / cfg.Ways
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %q set count %d not a power of two", cfg.Name, nSets))
	}
	sets := make([][]cacheLine, nSets)
	backing := make([]cacheLine, nLines)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, mask: Addr(nSets - 1)}
}

// Cfg returns the cache's geometry.
func (c *Cache) Cfg() CacheCfg { return c.cfg }

func (c *Cache) set(line Addr) []cacheLine {
	return c.sets[(line>>LineShift)&c.mask]
}

// Lookup reports whether the line-aligned address is present, updating
// LRU on hit.
func (c *Cache) Lookup(line Addr) bool {
	c.lookups++
	c.tick++
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lru = c.tick
			c.hits++
			return true
		}
	}
	return false
}

// Fill installs the line, evicting the LRU way if necessary. It returns
// the evicted line address and true if a valid line was displaced.
func (c *Cache) Fill(line Addr) (evicted Addr, wasValid bool) {
	c.tick++
	set := c.set(line)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == line {
			// Already present (e.g. refill after a lazy invalidation):
			// refresh recency only.
			set[i].lru = c.tick
			return 0, false
		}
		if !set[i].valid {
			victim = i
			wasValid = false
			// Prefer an invalid way, but keep scanning for an existing
			// copy of the line.
			continue
		}
		if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		evicted, wasValid = set[victim].tag, true
	}
	set[victim] = cacheLine{tag: line, valid: true, lru: c.tick}
	return evicted, wasValid
}

// Invalidate drops the line if present.
func (c *Cache) Invalidate(line Addr) {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].valid = false
			return
		}
	}
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// HitRate reports lifetime hits/lookups, for diagnostics and tests.
func (c *Cache) HitRate() float64 {
	if c.lookups == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.lookups)
}
