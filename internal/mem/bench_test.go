package mem

import "testing"

// BenchmarkHierarchyWarmAccess measures the L1-hit fast path.
func BenchmarkHierarchyWarmAccess(b *testing.B) {
	d := NewDirectory(2)
	l1, l2, llc := P4XeonMP()
	h := NewHierarchy(0, l1, l2, llc, d)
	h.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0x1000, false)
	}
}

// BenchmarkHierarchyStreaming measures a cold streaming pass (misses,
// fills, evictions, directory updates) per 4 KB page.
func BenchmarkHierarchyStreaming(b *testing.B) {
	d := NewDirectory(2)
	l1, l2, llc := P4XeonMP()
	h := NewHierarchy(0, l1, l2, llc, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessRange(Addr(0x10000+uint64(i%4096)*PageSize), PageSize, true)
	}
}

// BenchmarkCoherencePingPong measures the remote-dirty transfer path.
func BenchmarkCoherencePingPong(b *testing.B) {
	d := NewDirectory(2)
	l1, l2, llc := P4XeonMP()
	h0 := NewHierarchy(0, l1, l2, llc, d)
	h1 := NewHierarchy(1, l1, l2, llc, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			h0.Access(0x2000, true)
		} else {
			h1.Access(0x2000, true)
		}
	}
}

// BenchmarkTLB measures the translation fast path.
func BenchmarkTLB(b *testing.B) {
	t := NewTLB(64)
	t.Access(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Access(0)
	}
}
