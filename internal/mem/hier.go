package mem

// Level identifies which structure served a data access.
type Level int

const (
	// LevelL1 is a first-level hit.
	LevelL1 Level = iota
	// LevelL2 is a second-level hit (L1 miss).
	LevelL2
	// LevelLLC is a last-level hit (the paper's "L2 miss" event, ~10
	// cycle penalty on top of the pipeline).
	LevelLLC
	// LevelMemory is a last-level miss: served from DRAM or from a
	// remote processor's modified copy (~300 cycles).
	LevelMemory
)

// AccessResult describes one line access.
type AccessResult struct {
	Level  Level
	Remote bool // served by cache-to-cache transfer from a dirty remote copy
}

// RangeResult aggregates the line accesses of a byte-range touch.
type RangeResult struct {
	Lines   int // distinct lines touched
	L1Hits  int
	L2Hits  int // served by L2
	LLCHits int // served by LLC ("L2 miss" event count)
	Misses  int // served by memory/remote (LLC miss event count)
	Remote  int // subset of Misses served by a remote dirty copy
}

// Add accumulates other into r.
func (r *RangeResult) Add(other RangeResult) {
	r.Lines += other.Lines
	r.L1Hits += other.L1Hits
	r.L2Hits += other.L2Hits
	r.LLCHits += other.LLCHits
	r.Misses += other.Misses
	r.Remote += other.Remote
}

// Hierarchy is one processor's private cache hierarchy (inclusive
// L1D ⊂ L2 ⊂ LLC) attached to the machine-wide coherence directory.
type Hierarchy struct {
	cpu int
	l1  *Cache
	l2  *Cache
	llc *Cache
	dir *Directory
}

// NewHierarchy builds a hierarchy for processor cpu with the given
// geometries, joined to the shared directory dir.
func NewHierarchy(cpu int, l1, l2, llc CacheCfg, dir *Directory) *Hierarchy {
	return &Hierarchy{
		cpu: cpu,
		l1:  NewCache(l1),
		l2:  NewCache(l2),
		llc: NewCache(llc),
		dir: dir,
	}
}

// CPU reports the owning processor.
func (h *Hierarchy) CPU() int { return h.cpu }

// L1 exposes the first-level cache (tests and diagnostics).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 exposes the second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// LLC exposes the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// Access performs one access to the line containing addr and returns
// where it was served from, after updating cache and coherence state.
func (h *Hierarchy) Access(addr Addr, write bool) AccessResult {
	line := LineOf(addr)
	valid := h.dir.HasCopy(h.cpu, line)

	var res AccessResult
	switch {
	case valid && h.l1.Lookup(line):
		res.Level = LevelL1
	case valid && h.l2.Lookup(line):
		res.Level = LevelL2
		h.fillL1(line)
	case valid && h.llc.Lookup(line):
		res.Level = LevelLLC
		h.fillL2(line)
		h.fillL1(line)
	default:
		res.Level = LevelMemory
		res.Remote = h.dir.DirtyElsewhere(h.cpu, line)
		h.fillLLC(line)
		h.fillL2(line)
		h.fillL1(line)
	}

	if write {
		h.dir.OnWrite(h.cpu, line)
	} else if res.Level == LevelMemory {
		h.dir.OnRead(h.cpu, line)
	}
	return res
}

// AccessRange touches every line in [addr, addr+size) and aggregates the
// results. Bulk payload copies go through this.
func (h *Hierarchy) AccessRange(addr Addr, size int, write bool) RangeResult {
	var r RangeResult
	if size <= 0 {
		return r
	}
	first := LineOf(addr)
	last := LineOf(addr + Addr(size) - 1)
	for line := first; ; line += LineSize {
		a := h.Access(line, write)
		r.Lines++
		switch a.Level {
		case LevelL1:
			r.L1Hits++
		case LevelL2:
			r.L2Hits++
		case LevelLLC:
			r.LLCHits++
		case LevelMemory:
			r.Misses++
			if a.Remote {
				r.Remote++
			}
		}
		if line == last {
			break
		}
	}
	return r
}

func (h *Hierarchy) fillL1(line Addr) {
	h.l1.Fill(line)
}

func (h *Hierarchy) fillL2(line Addr) {
	h.l2.Fill(line)
}

func (h *Hierarchy) fillLLC(line Addr) {
	evicted, wasValid := h.llc.Fill(line)
	if wasValid {
		// Inclusive hierarchy: an LLC eviction back-invalidates the inner
		// levels and surrenders the coherent copy.
		h.l2.Invalidate(evicted)
		h.l1.Invalidate(evicted)
		h.dir.OnEvict(h.cpu, evicted)
	}
}

// WarmRange installs the range as if previously read, without counting
// anything. Experiments use it to pre-warm application buffers (the paper
// serves transmit data "directly from cache", §6.1).
func (h *Hierarchy) WarmRange(addr Addr, size int) {
	h.AccessRange(addr, size, false)
}
