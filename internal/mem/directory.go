package mem

// Directory is the machine-wide coherence state: for every cache line
// ever touched, which CPUs hold a valid copy and whether one of them
// holds it modified. It plays the role of the snooping FSB on the real
// Shasta-G platform, reduced to the facts the simulation needs:
//
//   - a CPU's cached copy is usable only while its presence bit is set;
//     a write elsewhere (or DMA from a NIC) clears it, so the next access
//     takes a miss — this is how context/skb bouncing between processors
//     turns into LLC misses, the paper's primary cache effect;
//   - a read that hits a line modified by another CPU is served by a
//     cache-to-cache transfer, which the PMU model counts as a last-level
//     miss (and flags Remote for diagnostics).
//
// Invalidation is lazy: clearing a presence bit does not walk the other
// CPU's cache arrays; the stale tags simply fail the presence check on
// their next use.
type Directory struct {
	cpus  int
	lines map[Addr]*dirLine
	// DMAReadInvalidates selects the chipset's transmit-DMA snoop
	// behaviour: when true, a device read of a line evicts CPU copies
	// (invalidate-on-snoop-read, as server chipsets of the era did to
	// shed snoop traffic), so transmit buffers are cache-cold when the
	// allocator recycles them — matching the paper's full-affinity
	// transmit-copy MPI of ~0.01. When false, CPU copies survive.
	DMAReadInvalidates bool
}

type dirLine struct {
	presence uint32 // bit per CPU
	dirty    bool
	owner    int8 // valid only while dirty
}

// NewDirectory returns an empty directory for a machine with cpus
// processors (at most 32).
func NewDirectory(cpus int) *Directory {
	if cpus <= 0 || cpus > 32 {
		panic("mem: directory supports 1..32 CPUs")
	}
	return &Directory{cpus: cpus, lines: make(map[Addr]*dirLine, 1<<16)}
}

func (d *Directory) line(a Addr) *dirLine {
	l := d.lines[a]
	if l == nil {
		l = &dirLine{}
		d.lines[a] = l
	}
	return l
}

// HasCopy reports whether cpu currently holds a coherent copy of the
// line-aligned address.
func (d *Directory) HasCopy(cpu int, line Addr) bool {
	l := d.lines[line]
	return l != nil && l.presence&(1<<uint(cpu)) != 0
}

// DirtyElsewhere reports whether the line is modified in some CPU other
// than cpu.
func (d *Directory) DirtyElsewhere(cpu int, line Addr) bool {
	l := d.lines[line]
	return l != nil && l.dirty && int(l.owner) != cpu
}

// OnRead records that cpu obtained a readable copy. It returns true if the
// fill was served by a cache-to-cache transfer from a modified remote copy
// (which also writes the line back, leaving it shared).
func (d *Directory) OnRead(cpu int, line Addr) (remote bool) {
	l := d.line(line)
	if l.dirty && int(l.owner) != cpu {
		remote = true
		l.dirty = false
	}
	l.presence |= 1 << uint(cpu)
	return remote
}

// OnWrite records that cpu obtained exclusive, modified ownership: every
// other copy is invalidated. It returns true if a modified remote copy had
// to be transferred first.
func (d *Directory) OnWrite(cpu int, line Addr) (remote bool) {
	l := d.line(line)
	if l.dirty && int(l.owner) != cpu {
		remote = true
	}
	l.presence = 1 << uint(cpu)
	l.dirty = true
	l.owner = int8(cpu)
	return remote
}

// OnEvict records that cpu dropped its copy (last-level eviction). A
// modified line owned by cpu is written back and becomes clean.
func (d *Directory) OnEvict(cpu int, line Addr) {
	l := d.lines[line]
	if l == nil {
		return
	}
	l.presence &^= 1 << uint(cpu)
	if l.dirty && int(l.owner) == cpu {
		l.dirty = false
	}
}

// DMAWrite records a device write to the line (NIC receive DMA): memory
// now holds the only valid copy, so every CPU's copy is invalidated. The
// next CPU touch is necessarily a memory access — receive payload "is
// always uncached" (§6.1).
func (d *Directory) DMAWrite(line Addr) {
	l := d.line(line)
	l.presence = 0
	l.dirty = false
}

// DMARead records a device read of the line (NIC transmit DMA): a
// modified CPU copy is flushed to memory first. Whether CPU copies
// survive depends on DMAReadInvalidates.
func (d *Directory) DMARead(line Addr) (wasDirty bool) {
	l := d.lines[line]
	if l == nil {
		return false
	}
	wasDirty = l.dirty
	l.dirty = false
	if d.DMAReadInvalidates {
		l.presence = 0
	}
	return wasDirty
}

// Lines reports how many distinct lines the directory tracks, for tests
// and capacity diagnostics.
func (d *Directory) Lines() int { return len(d.lines) }
