package kern

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TaskState is a task's scheduler state.
type TaskState int

const (
	// TaskRunnable means queued on a run queue.
	TaskRunnable TaskState = iota
	// TaskRunning means currently on a processor.
	TaskRunning
	// TaskSleeping means blocked on a wait queue.
	TaskSleeping
	// TaskDead means the body returned.
	TaskDead
)

// Task is a simulated process (each ttcp instance is one). Its body runs
// in a coroutine and charges work to whichever processor the scheduler
// placed it on.
type Task struct {
	ID   int
	Name string

	k        *Kernel
	co       *sim.Coro
	env      *Env
	state    TaskState
	affinity uint32
	lastCPU  int
	mmID     int
	// structAddr is the task_struct: scheduler bookkeeping touches it, so
	// migrations drag it (and its cache lines) across processors.
	structAddr mem.Addr
	sleepingOn *WaitQueue
	// lastRan is when the task last occupied a processor; the idle
	// stealer leaves cache-hot tasks (young lastRan) alone.
	lastRan sim.Time
}

// State reports the scheduler state.
func (t *Task) State() TaskState { return t.state }

// LastCPU reports where the task last ran.
func (t *Task) LastCPU() int { return t.lastCPU }

// Affinity reports the task's CPU mask.
func (t *Task) Affinity() uint32 { return t.affinity }

func (t *Task) allowed(cpuID int) bool {
	return t.affinity&(1<<uint(cpuID)) != 0
}

// Env is the execution environment handed to simulated kernel/stack code:
// it knows the current processor and charges work to it. One Env belongs
// to a task (crossing CPUs as the task migrates) or to a per-CPU softirq
// daemon.
type Env struct {
	k       *Kernel
	cpu     *KCPU
	co      *sim.Coro
	task    *Task // nil for softirq daemons
	softirq bool

	locksHeld int
}

// Kernel returns the owning kernel.
func (e *Env) Kernel() *Kernel { return e.k }

// CPU returns the processor currently executing this context.
func (e *Env) CPU() *KCPU { return e.cpu }

// Task returns the owning task, or nil in softirq context.
func (e *Env) Task() *Task { return e.task }

// InSoftirq reports whether this is bottom-half context.
func (e *Env) InSoftirq() bool { return e.softirq }

// Run charges one activation of proc to the current processor: build
// declares the work, the cycles elapse on the virtual timeline, and
// pending interrupts/bottom halves/preemption are serviced at the
// boundary before Run returns. This is the single point through which
// all simulated execution flows.
func (e *Env) Run(proc Proc, build func(x *cpu.Exec)) {
	c := e.cpu
	x := c.Model.Begin(proc.Sym, proc.Code)
	if build != nil {
		build(x)
	}
	cycles := x.Finish()
	if c.pendingClears > 0 {
		cycles += c.Model.MachineClear(proc.Sym, c.pendingClears)
		c.pendingClears = 0
	}
	c.lastSym = proc.Sym
	co := e.co
	c.k.Eng.After(cycles, func() {
		c.boundary(e, func() { c.resumeContext(e) })
	})
	co.Park()
}

// resumeContext continues a parked context: softirq daemons resume
// directly; tasks resume through resumeTask so exits are reaped.
func (c *KCPU) resumeContext(e *Env) {
	if e.softirq {
		e.co.Resume()
		return
	}
	c.resumeTask(e)
}

// Sleep blocks the task on wq until Wake. It must be called from task
// context with no spinlocks held. Callers re-check their condition in a
// loop, as with real wait queues.
func (e *Env) Sleep(wq *WaitQueue) {
	if e.task == nil {
		panic("kern: Sleep from softirq context")
	}
	if e.locksHeld != 0 {
		panic(fmt.Sprintf("kern: task %q sleeping with %d spinlocks held", e.task.Name, e.locksHeld))
	}
	t := e.task
	t.state = TaskSleeping
	t.sleepingOn = wq
	wq.enqueue(t)
	c := e.cpu
	if c.curr != t {
		panic("kern: sleeping task is not current")
	}
	c.curr = nil
	c.state = stSched
	c.k.Eng.After(0, c.schedule)
	e.co.Park()
}

// Yield voluntarily gives up the processor, staying runnable.
func (e *Env) Yield() {
	if e.task == nil {
		panic("kern: Yield from softirq context")
	}
	t := e.task
	c := e.cpu
	t.state = TaskRunnable
	c.curr = nil
	c.k.enqueueTask(t, c.id)
	c.state = stSched
	c.k.Eng.After(0, c.schedule)
	e.co.Park()
}

// Delay blocks the task for the given virtual duration (nanosleep): the
// task leaves the processor, a kernel timer wakes it. Workloads use it
// for think time between transactions.
func (e *Env) Delay(cycles uint64) {
	if e.task == nil {
		panic("kern: Delay from softirq context")
	}
	if cycles == 0 {
		return
	}
	t := e.task
	wq := NewWaitQueue("delay:" + t.Name)
	k := e.k
	deadline := k.Eng.Now() + sim.Time(cycles)
	tm := k.NewTimer(func(env *Env) { wq.WakeAll(k, env) })
	k.ModTimer(tm, deadline)
	for k.Eng.Now() < deadline {
		e.Sleep(wq)
	}
	k.DelTimer(tm)
}

// Spawn creates a task executing body with the given CPU affinity mask
// (0 means "all CPUs") and queues it on startCPU. The body starts running
// once the engine reaches the start event.
func (k *Kernel) Spawn(name string, startCPU int, affinityMask uint32, body func(*Env)) *Task {
	allowed := uint32(1<<uint(len(k.CPUs))) - 1
	if affinityMask == 0 {
		affinityMask = allowed
	}
	affinityMask &= allowed
	if affinityMask == 0 {
		panic(fmt.Sprintf("kern: task %q has empty affinity", name))
	}
	k.seq++
	t := &Task{
		ID:         k.seq,
		Name:       name,
		k:          k,
		state:      TaskRunnable,
		affinity:   affinityMask,
		lastCPU:    startCPU,
		mmID:       k.seq,
		structAddr: k.Space.Alloc(1024, "task_struct:"+name),
	}
	env := &Env{k: k, task: t}
	t.env = env
	t.co = sim.NewCoro("task:"+name, func(co *sim.Coro) {
		body(env)
	})
	env.co = t.co
	k.tasks = append(k.tasks, t)

	if !t.allowed(startCPU) {
		startCPU = lowestCPUIn(affinityMask)
		t.lastCPU = startCPU
	}
	k.enqueueTask(t, startCPU)
	c := k.CPUs[startCPU]
	k.Eng.After(0, c.kick)
	return t
}

// SetAffinity applies sys_sched_setaffinity semantics to a task: the mask
// takes effect at the task's next wakeup/placement decision. An empty or
// invalid mask is rejected.
func (k *Kernel) SetAffinity(t *Task, mask uint32) error {
	allowed := uint32(1<<uint(len(k.CPUs))) - 1
	mask &= allowed
	if mask == 0 {
		return fmt.Errorf("kern: empty affinity mask for task %q", t.Name)
	}
	t.affinity = mask
	return nil
}

func lowestCPUIn(mask uint32) int {
	for i := 0; i < 32; i++ {
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}
