package kern

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

// SpinLock is a kernel spinlock with the 2.4 implementation's observable
// behaviour (paper Table 2):
//
//   - the lock word is one cache line, so acquiring it from a different
//     processor than the last holder takes a coherence miss;
//   - an uncontended acquire is a handful of instructions with a branch
//     that falls through;
//   - a contended acquire spins in the cmpb/PAUSE/jle loop, retiring
//     instructions and branches in proportion to the wait — which is why
//     no-affinity runs show many lock branches with few mispredicts, and
//     full-affinity runs show few branches with an inflated mispredict
//     *ratio*.
//
// Acquiring also disables bottom halves on the current processor
// (spin_lock_bh semantics), which is what makes same-CPU lock recursion
// between process context and softirq context impossible here, as in
// Linux.
type SpinLock struct {
	k    *Kernel
	name string
	proc Proc
	addr mem.Addr

	held    bool
	owner   *Env
	waiters []*spinWaiter

	acquisitions uint64
	contentions  uint64
}

type spinWaiter struct {
	env   *Env
	start sim.Time
}

// NewSpinLock creates a named lock whose acquire/release cost is charged
// to the shared "spin_lock"/"spin_unlock" symbols in the Locks bin.
func (k *Kernel) NewSpinLock(name string) *SpinLock {
	return &SpinLock{
		k:    k,
		name: name,
		proc: k.NewProc("spin_lock", perf.BinLocks, 256),
		addr: k.Space.Alloc(mem.LineSize, "lock:"+name),
	}
}

// Name returns the lock's diagnostic name.
func (l *SpinLock) Name() string { return l.name }

// Stats reports lifetime acquisitions and contended acquisitions.
func (l *SpinLock) Stats() (acquisitions, contentions uint64) {
	return l.acquisitions, l.contentions
}

// Lock acquires the spinlock for env, spinning (in virtual time, with
// spin-loop instruction/branch accounting) while another context holds
// it. Bottom halves are disabled on env's processor until Unlock.
func (l *SpinLock) Lock(env *Env) {
	env.cpu.bhDisable++
	env.locksHeld++
	l.acquisitions++

	// The atomic decrement of the lock word: a write to a possibly
	// remote-dirty line.
	env.Run(l.proc, func(x *cpu.Exec) {
		x.Instr(12, 0.08, 0.012).Store(l.addr, 4)
	})

	if !l.held {
		l.held = true
		l.owner = env
		return
	}

	// Contended: join the FIFO and wait for a grant. The processor stays
	// occupied (a spin is busy-waiting); the elapsed wait is charged as
	// spin-loop work when the grant arrives.
	l.contentions++
	w := &spinWaiter{env: env, start: l.k.Eng.Now()}
	l.waiters = append(l.waiters, w)
	env.co.Park()
	// Granted: lock state was transferred by Unlock.
	if l.owner != env {
		panic(fmt.Sprintf("kern: lock %q granted to wrong context", l.name))
	}
}

// Unlock releases the spinlock, handing it to the oldest waiter if any
// (charging that waiter's spin time), and re-enables bottom halves on the
// releasing processor.
func (l *SpinLock) Unlock(env *Env) {
	if l.owner != env {
		panic(fmt.Sprintf("kern: unlock of %q by non-owner", l.name))
	}
	env.locksHeld--
	env.cpu.bhDisable--

	if len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.owner = w.env
		now := l.k.Eng.Now()
		l.k.Eng.At(now, func() {
			spun := sim.Cycles(now - w.start)
			l.k.Trace.LockSpin(now, w.env.cpu.id, l.name, uint64(spun))
			w.env.cpu.Model.Spin(l.proc.Sym, spun)
			w.env.cpu.lastSym = l.proc.Sym
			w.env.co.Resume()
		})
	} else {
		l.held = false
		l.owner = nil
	}

	// The release store; cheap, and its boundary gives deferred bottom
	// halves their first chance to run.
	env.Run(l.proc, func(x *cpu.Exec) {
		x.Instr(6, 0.08, 0.012).Store(l.addr, 4)
	})
}

// Held reports whether the lock is currently held (diagnostics).
func (l *SpinLock) Held() bool { return l.held }
