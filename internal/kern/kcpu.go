package kern

import (
	"fmt"

	"repro/internal/apic"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

// cpuState tracks what currently occupies a processor's timeline.
type cpuState int

const (
	stIdle cpuState = iota
	stIRQ
	stSoftirq
	stSched
	stTask
)

type pendingIRQ struct {
	vec  apic.Vector
	kind apic.Kind
}

// KCPU is the kernel's per-processor state: the run queue, the interrupt
// and softirq machinery, and the dispatcher that serializes all simulated
// execution on the processor.
type KCPU struct {
	k     *Kernel
	id    int
	Model *cpu.Model

	rq   []*Task
	curr *Task

	irqQ      []pendingIRQ
	softPend  uint32
	bhDisable int

	softirqdCo     *sim.Coro
	softirqdEnv    *Env
	softirqdActive bool
	// suspendedResume continues the task context that a softirq pass
	// preempted at a work-item boundary.
	suspendedResume func()

	state       cpuState
	needResched bool
	quantumEnd  sim.Time
	// pendingClears are context-switch pipeline flushes waiting to be
	// attributed (with skid) to the next work item.
	pendingClears uint64

	// lastSym is the symbol most recently executed: machine clears from
	// asynchronous interrupts are attributed to it, reproducing the
	// sampling "skid" the paper describes in §6.3.
	lastSym perf.Symbol
	lastMM  int
	// lastTaskID is the most recently dispatched task (-1 when fresh),
	// recorded as the outgoing side of context-switch trace records.
	lastTaskID int

	idleStart  sim.Time
	idleCycles uint64

	// rqAddr is the cacheable runqueue structure; remote wakeups dirty it,
	// so runqueue lines bounce between processors exactly as on hardware.
	rqAddr mem.Addr

	procIdle Proc
}

func newKCPU(k *Kernel, id int, model *cpu.Model) *KCPU {
	c := &KCPU{k: k, id: id, Model: model, state: stIdle, lastMM: -1, lastTaskID: -1}
	c.procIdle = k.NewProc("cpu_idle", perf.BinIdle, 256)
	c.lastSym = c.procIdle.Sym
	c.rqAddr = k.Space.Alloc(256, fmt.Sprintf("runqueue%d", id))
	return c
}

// ID reports the processor number.
func (c *KCPU) ID() int { return c.id }

// IsIdle reports whether nothing occupies the processor.
func (c *KCPU) IsIdle() bool { return c.state == stIdle }

// CurrentSymbol reports the symbol most recently executing on the
// processor — what a statistical profiler's sampling interrupt would
// attribute the current cycle to.
func (c *KCPU) CurrentSymbol() perf.Symbol { return c.lastSym }

// QueueLen reports the runnable backlog (excluding the current task).
func (c *KCPU) QueueLen() int { return len(c.rq) }

// IdleCycles reports the cycles this processor has spent idle, including
// an in-progress idle period up to now.
func (c *KCPU) IdleCycles() uint64 {
	total := c.idleCycles
	if c.state == stIdle {
		total += uint64(c.k.Eng.Now() - c.idleStart)
	}
	return total
}

// ResetIdle zeroes idle accounting (start of a measurement interval).
func (c *KCPU) ResetIdle() {
	c.idleCycles = 0
	if c.state == stIdle {
		c.idleStart = c.k.Eng.Now()
	}
}

func (c *KCPU) goIdle() {
	c.state = stIdle
	c.idleStart = c.k.Eng.Now()
	c.lastSym = c.procIdle.Sym
}

func (c *KCPU) leaveIdle() {
	c.idleCycles += uint64(c.k.Eng.Now() - c.idleStart)
}

// DeliverInterrupt implements apic.Target: the vector is queued and, if
// the processor is idle, handled immediately; otherwise it is taken at the
// next work-item boundary (the model's interrupt latency, and the source
// of attribution skid).
func (c *KCPU) DeliverInterrupt(vec apic.Vector, kind apic.Kind) {
	c.irqQ = append(c.irqQ, pendingIRQ{vec: vec, kind: kind})
	if c.state == stIdle {
		c.leaveIdle()
		c.state = stIRQ
		c.beginIRQChain(func() { c.schedule() })
	}
}

// beginIRQChain processes every queued interrupt in order, charging
// machine clears and handler execution to the timeline, then calls done.
// It must be entered in engine context.
func (c *KCPU) beginIRQChain(done func()) {
	if len(c.irqQ) == 0 {
		done()
		return
	}
	p := c.irqQ[0]
	c.irqQ = c.irqQ[1:]
	c.k.Trace.IRQEnter(c.k.Eng.Now(), c.id, int(p.vec), int(p.kind))

	var handlerCycles sim.Cycles
	var clearPenalty sim.Cycles
	var effect func(*KCPU)

	switch p.kind {
	case apic.KindDevice:
		action := c.k.irqActions[p.vec]
		if action == nil {
			panic(fmt.Sprintf("kern: unhandled device vector %#x", int(p.vec)))
		}
		// Device interrupts flush the pipeline; the flush and the EOI
		// microcode execute inside the handler, so the clears sample in
		// the handler's own symbol (paper Table 4: IRQ0xNN symbols carry
		// similar clear counts in every affinity mode). Skid attribution
		// applies to the asynchronous sources — IPIs and context
		// switches — whose clears surface in the interrupted code.
		clearPenalty = c.Model.MachineClear(action.Proc.Sym, c.k.Tune.ClearsPerDeviceIRQ)
		c.Model.CountIRQ(action.Proc.Sym)
		x := c.Model.Begin(action.Proc.Sym, action.Proc.Code)
		action.Build(c, x)
		handlerCycles = x.Finish()
		effect = action.Effect
		c.lastSym = action.Proc.Sym
	case apic.KindIPI:
		// The reschedule IPI's clears land on whatever was executing —
		// in no-affinity mode that is TCP engine code on the remote
		// processor, which is the paper's §6.3 observation.
		clearPenalty = c.Model.MachineClear(c.lastSym, c.k.Tune.ClearsPerIPI)
		c.Model.CountIPI(c.lastSym)
		x := c.Model.Begin(c.k.procResched.Sym, c.k.procResched.Code)
		x.Instr(120, 0.18, 0.03).Overhead(250)
		handlerCycles = x.Finish()
		effect = func(c *KCPU) { c.needResched = true }
		c.lastSym = c.k.procResched.Sym
	case apic.KindTimer:
		clearPenalty = c.Model.MachineClear(c.k.procTick.Sym, c.k.Tune.ClearsPerTimer)
		x := c.Model.Begin(c.k.procTick.Sym, c.k.procTick.Code)
		x.Instr(300, 0.18, 0.03).Overhead(300).Store(c.rqAddr, 32).Store(c.k.XtimeAddr, 8)
		handlerCycles = x.Finish()
		effect = func(c *KCPU) { c.k.timerTickEffect(c) }
	}

	c.k.Eng.After(clearPenalty+handlerCycles, func() {
		c.k.Trace.IRQExit(c.k.Eng.Now(), c.id, int(p.vec), int(p.kind))
		if effect != nil {
			effect(c)
		}
		c.beginIRQChain(done)
	})
}

// RaiseSoftirq marks a bottom-half vector pending on this processor. Top
// halves call it; the vector runs in this processor's softirq daemon —
// "bottom halves … are usually scheduled on the same processor where
// their corresponding top halves had previously run" (§5).
func (c *KCPU) RaiseSoftirq(s Softirq) {
	c.softPend |= 1 << uint(s)
}

// SoftirqPending reports whether s is pending.
func (c *KCPU) SoftirqPending(s Softirq) bool { return c.softPend&(1<<uint(s)) != 0 }

func (c *KCPU) startSoftirqd() {
	if c.softirqdActive {
		return
	}
	c.softirqdActive = true
	c.state = stSoftirq
	if c.softirqdCo == nil {
		c.softirqdEnv = &Env{k: c.k, cpu: c, softirq: true}
		c.softirqdCo = sim.NewCoro(fmt.Sprintf("softirqd/%d", c.id), func(co *sim.Coro) {
			c.softirqdLoop()
		})
		c.softirqdEnv.co = c.softirqdCo
	}
	c.softirqdCo.Resume()
}

// softirqdLoop is the body of the per-CPU softirq daemon coroutine.
func (c *KCPU) softirqdLoop() {
	env := c.softirqdEnv
	for {
		for c.softPend != 0 && c.bhDisable == 0 {
			// Dispatch overhead of do_softirq itself.
			env.Run(c.k.procDoSoftirq, func(x *cpu.Exec) {
				x.Instr(80, 0.2, 0.02)
			})
			for s := Softirq(0); s < numSoftirqs; s++ {
				bit := uint32(1) << uint(s)
				if c.softPend&bit == 0 {
					continue
				}
				c.softPend &^= bit
				if h := c.k.softirqs[s]; h != nil {
					c.k.Trace.SoftirqEnter(c.k.Eng.Now(), c.id, int(s))
					h(env)
					c.k.Trace.SoftirqExit(c.k.Eng.Now(), c.id, int(s))
				}
			}
		}
		c.softirqdActive = false
		c.k.Eng.After(0, c.softirqdIdle)
		env.co.Park()
	}
}

// softirqdIdle runs in engine context when the daemon drains: pending
// interrupts are serviced, new bottom halves re-enter the daemon, and
// finally the preempted task context (if any) resumes, or the scheduler
// looks for work.
func (c *KCPU) softirqdIdle() {
	if len(c.irqQ) > 0 {
		c.state = stIRQ
		c.beginIRQChain(c.softirqdIdle)
		return
	}
	if c.softPend != 0 && c.bhDisable == 0 {
		c.startSoftirqd()
		return
	}
	if r := c.suspendedResume; r != nil {
		c.suspendedResume = nil
		c.state = stTask
		r()
		return
	}
	c.schedule()
}

// boundary is invoked in engine context when a work item of env finishes:
// queued interrupts run first, then pending bottom halves (unless the
// context holds spinlocks), then preemption is honoured, and finally the
// work's continuation resumes.
func (c *KCPU) boundary(env *Env, resume func()) {
	cont := func() {
		if env.softirq || env.locksHeld > 0 {
			resume()
			return
		}
		if c.softPend != 0 && c.bhDisable == 0 {
			c.suspendedResume = resume
			c.startSoftirqd()
			return
		}
		if c.needResched {
			c.needResched = false
			if c.curr != nil && len(c.rq) > 0 {
				// Reschedule requested (quantum expiry or a resched IPI
				// for a better-goodness waiter) with waiting work:
				// round-robin.
				t := c.curr
				t.state = TaskRunnable
				c.curr = nil
				c.rq = append(c.rq, t)
				c.state = stSched
				c.schedule()
				return
			}
		}
		resume()
	}
	if len(c.irqQ) > 0 {
		prev := c.state
		c.state = stIRQ
		c.beginIRQChain(func() { c.state = prev; cont() })
		return
	}
	cont()
}

// schedule picks the next task (running the context-switch cost) or goes
// idle. Engine context only.
func (c *KCPU) schedule() {
	if len(c.irqQ) > 0 {
		c.state = stIRQ
		c.beginIRQChain(c.schedule)
		return
	}
	if c.softPend != 0 && c.bhDisable == 0 {
		c.startSoftirqd() // softirqdIdle re-enters schedule
		return
	}
	next := c.pickNext()
	if next == nil {
		c.goIdle()
		return
	}
	c.state = stSched
	x := c.Model.Begin(c.k.procSchedule.Sym, c.k.procSchedule.Code)
	x.Instr(700, 0.2, 0.04).Overhead(400).Store(c.rqAddr, 64).Load(next.structAddr, 128)
	cost := x.Finish()
	x2 := c.Model.Begin(c.k.procSwitchTo.Sym, c.k.procSwitchTo.Code)
	x2.Instr(200, 0.12, 0.02).Overhead(300).Store(next.structAddr, 64)
	cost += x2.Finish()
	c.lastSym = c.k.procSchedule.Sym
	c.k.Eng.After(cost, func() { c.dispatch(next) })
}

func (c *KCPU) dispatch(next *Task) {
	if next.mmID != c.lastMM {
		// No ASIDs on the P4: switching address spaces flushes both TLBs,
		// and the CR3 write (plus the serializing switch path) flushes
		// the pipeline. The clears surface, skidded, in whatever the
		// incoming task executes first.
		c.Model.FlushTLBs()
		c.lastMM = next.mmID
		c.pendingClears += c.k.Tune.ClearsPerSwitch
	}
	if next.lastCPU != c.id {
		c.k.Stats.Migrations++
		if c.k.OnMigrate != nil {
			c.k.OnMigrate(next, next.lastCPU, c.id)
		}
	}
	c.k.Trace.CtxSwitch(c.k.Eng.Now(), c.id, c.lastTaskID, next.ID, next.Name)
	c.lastTaskID = next.ID
	c.curr = next
	next.state = TaskRunning
	next.lastCPU = c.id
	next.lastRan = c.k.Eng.Now()
	next.env.cpu = c
	c.quantumEnd = c.k.Eng.Now() + sim.Time(c.k.Tune.QuantumCycles)
	c.state = stTask
	c.resumeTask(next.env)
}

// resumeTask hands control to the task coroutine and, if the body
// finished, reaps it and reschedules.
func (c *KCPU) resumeTask(env *Env) {
	env.co.Resume()
	if env.co.Done() {
		if c.curr == env.task {
			c.curr = nil
		}
		env.task.state = TaskDead
		c.state = stSched
		c.schedule()
	}
}

// kick nudges an idle processor to run its scheduler (used when work is
// queued without an interrupt, e.g. initial task startup).
func (c *KCPU) kick() {
	if c.state != stIdle {
		return
	}
	c.leaveIdle()
	c.state = stSched
	c.schedule()
}

// pickNext pops the local run queue, falling back to stealing a runnable
// task from the busiest other processor (2.4-style idle balancing),
// honouring affinity masks.
func (c *KCPU) pickNext() *Task {
	if len(c.rq) > 0 {
		t := c.rq[0]
		c.rq = c.rq[1:]
		return t
	}
	var victim *KCPU
	for _, other := range c.k.CPUs {
		if other == c || len(other.rq) == 0 {
			continue
		}
		if victim == nil || len(other.rq) > len(victim.rq) {
			victim = other
		}
	}
	if victim == nil {
		return nil
	}
	now := c.k.Eng.Now()
	decay := sim.Time(c.k.Tune.CacheDecayCycles)
	for i := len(victim.rq) - 1; i >= 0; i-- {
		t := victim.rq[i]
		if !t.allowed(c.id) {
			continue
		}
		// Leave cache-hot tasks where their state is; stealing them
		// trades a short wait for a cache refill and coherence traffic.
		if t.lastCPU != c.id && now-t.lastRan < decay {
			continue
		}
		victim.rq = append(victim.rq[:i], victim.rq[i+1:]...)
		c.k.Stats.Steals++
		return t
	}
	return nil
}
