package kern

import (
	"testing"

	"repro/internal/apic"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

type testRig struct {
	eng *sim.Engine
	k   *Kernel
	tab *perf.SymbolTable
	ctr *perf.Counters
}

func newKernel(t *testing.T, cpus int, seed uint64) *testRig {
	t.Helper()
	eng := sim.NewEngine(seed)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, cpus)
	k := New(Config{
		Engine:  eng,
		Space:   mem.NewSpace(),
		Table:   tab,
		Ctr:     ctr,
		NumCPUs: cpus,
		CPU:     cpu.DefaultConfig(),
		Tune:    DefaultTuning(),
	})
	t.Cleanup(k.Shutdown)
	return &testRig{eng: eng, k: k, tab: tab, ctr: ctr}
}

func (r *testRig) proc(name string, bin perf.Bin) Proc {
	return r.k.NewProc(name, bin, 512)
}

func TestTaskRunsAndCompletes(t *testing.T) {
	r := newKernel(t, 2, 1)
	p := r.proc("worker_fn", perf.BinOther)
	done := false
	r.k.Spawn("w", 0, 0, func(e *Env) {
		for i := 0; i < 5; i++ {
			e.Run(p, func(x *cpu.Exec) { x.Instr(1000, 0.1, 0.01) })
		}
		done = true
	})
	r.eng.Run(10_000_000)
	if !done {
		t.Fatal("task did not finish")
	}
	if got := r.ctr.SymbolTotal(p.Sym, perf.Instructions); got != 5000 {
		t.Fatalf("instructions = %d, want 5000", got)
	}
	if !r.k.CPUs[0].IsIdle() {
		t.Fatal("CPU0 not idle after task exit")
	}
}

func TestTwoTasksShareProcessorViaYield(t *testing.T) {
	r := newKernel(t, 1, 1)
	p := r.proc("yielder", perf.BinOther)
	var order []string
	mk := func(name string) {
		r.k.Spawn(name, 0, 0, func(e *Env) {
			for i := 0; i < 3; i++ {
				e.Run(p, func(x *cpu.Exec) { x.Instr(500, 0, 0) })
				order = append(order, name)
				e.Yield()
			}
		})
	}
	mk("a")
	mk("b")
	r.eng.Run(100_000_000)
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	// Yield must interleave them strictly after the first completes a step.
	for i := 0; i+1 < len(order); i++ {
		if order[i] == order[i+1] {
			t.Fatalf("no interleaving: %v", order)
		}
	}
}

func TestSleepAndWake(t *testing.T) {
	r := newKernel(t, 2, 1)
	p := r.proc("sleeper_fn", perf.BinOther)
	wq := NewWaitQueue("test")
	var woke bool
	var ready bool
	r.k.Spawn("sleeper", 0, 0, func(e *Env) {
		for !ready {
			e.Sleep(wq)
		}
		woke = true
	})
	r.k.Spawn("waker", 1, 0, func(e *Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(50_000, 0, 0) })
		ready = true
		wq.WakeAll(r.k, e)
	})
	r.eng.Run(100_000_000)
	if !woke {
		t.Fatal("sleeper never woke")
	}
	if wq.Len() != 0 {
		t.Fatalf("waitqueue still has %d waiters", wq.Len())
	}
}

func TestWakePrefersLastCPUWhenIdle(t *testing.T) {
	r := newKernel(t, 2, 1)
	wq := NewWaitQueue("wq")
	var ranOn []int
	var ready bool
	st := r.k.Spawn("s", 1, 0, func(e *Env) {
		for !ready {
			e.Sleep(wq)
		}
		ranOn = append(ranOn, e.CPU().ID())
	})
	p := r.proc("wk", perf.BinOther)
	r.k.Spawn("w", 0, 0, func(e *Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(100_000, 0, 0) })
		ready = true
		r.k.Wake(st, e)
	})
	r.eng.Run(200_000_000)
	if len(ranOn) != 1 || ranOn[0] != 1 {
		t.Fatalf("task resumed on %v, want [1] (its last CPU, idle)", ranOn)
	}
}

func TestCrossCPUWakeSendsIPIAndClears(t *testing.T) {
	r := newKernel(t, 2, 1)
	wq := NewWaitQueue("wq")
	var ready bool
	st := r.k.Spawn("s", 1, 0, func(e *Env) {
		for !ready {
			e.Sleep(wq)
		}
	})
	p := r.proc("wk", perf.BinOther)
	r.k.Spawn("w", 0, 0, func(e *Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(100_000, 0, 0) })
		ready = true
		r.k.Wake(st, e)
	})
	r.eng.Run(200_000_000)
	if got := r.ctr.CPUTotal(1, perf.IPIsReceived); got != 1 {
		t.Fatalf("CPU1 IPIs = %d, want 1", got)
	}
	if got := r.ctr.CPUTotal(1, perf.MachineClears); got < r.k.Tune.ClearsPerIPI {
		t.Fatalf("CPU1 clears = %d, want >= %d", got, r.k.Tune.ClearsPerIPI)
	}
	// The IPI's clears land on the idle loop's symbol (what CPU1 was
	// doing when it was interrupted) — attribution skid.
	idleSym := r.tab.Lookup("cpu_idle")
	if got := r.ctr.Get(1, idleSym, perf.MachineClears); got != r.k.Tune.ClearsPerIPI {
		t.Fatalf("clears on cpu_idle = %d, want %d", got, r.k.Tune.ClearsPerIPI)
	}
}

func TestSameCPUWakeAvoidsIPI(t *testing.T) {
	r := newKernel(t, 1, 1)
	wq := NewWaitQueue("wq")
	var ready bool
	st := r.k.Spawn("s", 0, 0, func(e *Env) {
		for !ready {
			e.Sleep(wq)
		}
	})
	p := r.proc("wk", perf.BinOther)
	r.k.Spawn("w", 0, 0, func(e *Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(100_000, 0, 0) })
		ready = true
		r.k.Wake(st, e)
	})
	r.eng.Run(200_000_000)
	if got := r.ctr.CPUTotal(0, perf.IPIsReceived); got != 0 {
		t.Fatalf("same-CPU wake sent %d IPIs", got)
	}
	if st.State() != TaskDead {
		t.Fatal("sleeper did not run")
	}
}

func TestDeviceIRQHandlerAndEffect(t *testing.T) {
	r := newKernel(t, 2, 1)
	hp := r.k.NewProc("IRQ0x19_interrupt", perf.BinDriver, 512)
	fired := 0
	r.k.RegisterIRQ(0x19, &IRQAction{
		Proc:   hp,
		Build:  func(c *KCPU, x *cpu.Exec) { x.Instr(700, 0.15, 0.03) },
		Effect: func(c *KCPU) { fired++ },
	})
	r.eng.At(1000, func() { r.k.APIC.Raise(0x19) })
	r.eng.Run(10_000_000)
	if fired != 1 {
		t.Fatalf("effect ran %d times, want 1", fired)
	}
	if got := r.ctr.Get(0, hp.Sym, perf.MachineClears); got != r.k.Tune.ClearsPerDeviceIRQ {
		t.Fatalf("handler clears = %d, want %d", got, r.k.Tune.ClearsPerDeviceIRQ)
	}
	if got := r.ctr.Get(0, hp.Sym, perf.IRQsReceived); got != 1 {
		t.Fatalf("irq count = %d, want 1", got)
	}
	if got := r.ctr.Get(0, hp.Sym, perf.Instructions); got != 700 {
		t.Fatalf("handler instructions = %d, want 700", got)
	}
}

func TestIRQAffinityRoutesHandlerToOtherCPU(t *testing.T) {
	r := newKernel(t, 2, 1)
	hp := r.k.NewProc("IRQ0x1a_interrupt", perf.BinDriver, 512)
	r.k.RegisterIRQ(0x1a, &IRQAction{
		Proc:  hp,
		Build: func(c *KCPU, x *cpu.Exec) { x.Instr(700, 0.15, 0.03) },
	})
	if err := r.k.APIC.SetAffinity(0x1a, 1<<1); err != nil {
		t.Fatal(err)
	}
	r.eng.At(1000, func() { r.k.APIC.Raise(0x1a) })
	r.eng.Run(10_000_000)
	if got := r.ctr.Get(1, hp.Sym, perf.IRQsReceived); got != 1 {
		t.Fatalf("CPU1 irqs = %d, want 1", got)
	}
	if got := r.ctr.Get(0, hp.Sym, perf.IRQsReceived); got != 0 {
		t.Fatalf("CPU0 irqs = %d, want 0", got)
	}
}

func TestSoftirqRunsOnRaisingCPUAndPreemptsTask(t *testing.T) {
	r := newKernel(t, 1, 1)
	hp := r.k.NewProc("IRQ0x1b_interrupt", perf.BinDriver, 512)
	sp := r.proc("net_rx_action_test", perf.BinDriver)
	var softCPU = -1
	var taskSteps, softRan int
	r.k.RegisterSoftirq(SoftirqNetRx, func(env *Env) {
		softCPU = env.CPU().ID()
		softRan++
		env.Run(sp, func(x *cpu.Exec) { x.Instr(2000, 0.1, 0.01) })
	})
	r.k.RegisterIRQ(0x1b, &IRQAction{
		Proc:   hp,
		Build:  func(c *KCPU, x *cpu.Exec) { x.Instr(500, 0.1, 0.01) },
		Effect: func(c *KCPU) { c.RaiseSoftirq(SoftirqNetRx) },
	})
	p := r.proc("busy", perf.BinOther)
	r.k.Spawn("busy", 0, 0, func(e *Env) {
		for i := 0; i < 100; i++ {
			e.Run(p, func(x *cpu.Exec) { x.Instr(5000, 0, 0) })
			taskSteps++
		}
	})
	r.eng.At(50_000, func() { r.k.APIC.Raise(0x1b) })
	r.eng.Run(100_000_000)
	if softRan != 1 || softCPU != 0 {
		t.Fatalf("softirq ran %d times on cpu %d", softRan, softCPU)
	}
	if taskSteps != 100 {
		t.Fatalf("task finished %d steps, want 100 (must resume after softirq)", taskSteps)
	}
}

func TestSpinlockUncontendedHasNoSpin(t *testing.T) {
	r := newKernel(t, 2, 1)
	l := r.k.NewSpinLock("sk")
	p := r.proc("crit", perf.BinOther)
	r.k.Spawn("t", 0, 0, func(e *Env) {
		for i := 0; i < 10; i++ {
			l.Lock(e)
			e.Run(p, func(x *cpu.Exec) { x.Instr(100, 0, 0) })
			l.Unlock(e)
		}
	})
	r.eng.Run(50_000_000)
	if got := r.ctr.Total(perf.SpinCycles); got != 0 {
		t.Fatalf("uncontended lock spun %d cycles", got)
	}
	acq, cont := l.Stats()
	if acq != 10 || cont != 0 {
		t.Fatalf("stats = %d/%d, want 10/0", acq, cont)
	}
	if l.Held() {
		t.Fatal("lock still held")
	}
}

func TestSpinlockContentionAccountsSpinCycles(t *testing.T) {
	r := newKernel(t, 2, 1)
	l := r.k.NewSpinLock("sk")
	p := r.proc("crit", perf.BinOther)
	body := func(e *Env) {
		for i := 0; i < 20; i++ {
			l.Lock(e)
			e.Run(p, func(x *cpu.Exec) { x.Instr(20_000, 0, 0) })
			l.Unlock(e)
		}
	}
	r.k.Spawn("a", 0, 1<<0, body)
	r.k.Spawn("b", 1, 1<<1, body)
	r.eng.Run(2_000_000_000)
	if got := r.ctr.Total(perf.SpinCycles); got == 0 {
		t.Fatal("contended lock recorded no spin cycles")
	}
	_, cont := l.Stats()
	if cont == 0 {
		t.Fatal("no contentions recorded")
	}
	lockSym := r.tab.Lookup("spin_lock")
	if got := r.ctr.SymbolTotal(lockSym, perf.Branches); got == 0 {
		t.Fatal("spin loop retired no branches")
	}
}

func TestSpinlockDisablesBottomHalves(t *testing.T) {
	r := newKernel(t, 1, 1)
	l := r.k.NewSpinLock("sk")
	hp := r.k.NewProc("IRQ0x1c_interrupt", perf.BinDriver, 512)
	var softAt, unlockAt sim.Time
	r.k.RegisterSoftirq(SoftirqNetRx, func(env *Env) {
		softAt = r.eng.Now()
	})
	r.k.RegisterIRQ(0x1c, &IRQAction{
		Proc:   hp,
		Build:  func(c *KCPU, x *cpu.Exec) { x.Instr(100, 0, 0) },
		Effect: func(c *KCPU) { c.RaiseSoftirq(SoftirqNetRx) },
	})
	p := r.proc("crit", perf.BinOther)
	r.k.Spawn("t", 0, 0, func(e *Env) {
		l.Lock(e)
		// IRQ arrives mid-critical-section; its softirq must wait.
		for i := 0; i < 10; i++ {
			e.Run(p, func(x *cpu.Exec) { x.Instr(50_000, 0, 0) })
		}
		l.Unlock(e)
		unlockAt = r.eng.Now()
		e.Run(p, func(x *cpu.Exec) { x.Instr(1000, 0, 0) })
	})
	r.eng.At(100_000, func() { r.k.APIC.Raise(0x1c) })
	r.eng.Run(100_000_000)
	if softAt == 0 {
		t.Fatal("softirq never ran")
	}
	if softAt < unlockAt {
		t.Fatalf("softirq ran at %d inside critical section ending %d", softAt, unlockAt)
	}
}

func TestTimerFiresInSoftirqContext(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	var firedAt sim.Time
	var inSoftirq bool
	tm := r.k.NewTimer(func(env *Env) {
		firedAt = r.eng.Now()
		inSoftirq = env.InSoftirq()
	})
	r.k.ModTimer(tm, 30_000_000)
	r.eng.Run(200_000_000)
	if firedAt == 0 {
		t.Fatal("timer never fired")
	}
	if firedAt < 30_000_000 {
		t.Fatalf("timer fired early at %d", firedAt)
	}
	if !inSoftirq {
		t.Fatal("timer handler not in softirq context")
	}
	if tm.Active() {
		t.Fatal("fired timer still armed")
	}
}

func TestDelTimerPreventsFiring(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	fired := false
	tm := r.k.NewTimer(func(env *Env) { fired = true })
	r.k.ModTimer(tm, 30_000_000)
	r.k.DelTimer(tm)
	if r.k.ArmedTimers() != 0 {
		t.Fatal("timer still armed after DelTimer")
	}
	r.eng.Run(100_000_000)
	if fired {
		t.Fatal("deleted timer fired")
	}
}

func TestQuantumPreemptionRoundRobins(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	p := r.proc("spin_forever", perf.BinOther)
	progress := map[string]int{}
	mk := func(name string) {
		r.k.Spawn(name, 0, 0, func(e *Env) {
			for i := 0; i < 10_000; i++ {
				e.Run(p, func(x *cpu.Exec) { x.Instr(100_000, 0, 0) })
				progress[name]++
			}
		})
	}
	mk("a")
	mk("b")
	// Run long enough for ~3 quanta.
	r.eng.Run(sim.Time(3*r.k.Tune.QuantumCycles + 10_000_000))
	if progress["a"] == 0 || progress["b"] == 0 {
		t.Fatalf("no round robin: %v", progress)
	}
}

func TestSetAffinityRestrictsPlacement(t *testing.T) {
	r := newKernel(t, 2, 1)
	wq := NewWaitQueue("wq")
	var cpus []int
	var stop bool
	p := r.proc("aff", perf.BinOther)
	st := r.k.Spawn("pinned", 0, 1<<1, func(e *Env) {
		for !stop {
			e.Run(p, func(x *cpu.Exec) { x.Instr(1000, 0, 0) })
			cpus = append(cpus, e.CPU().ID())
			e.Sleep(wq)
		}
	})
	// Periodic waker from CPU0.
	var wakeLoop func()
	n := 0
	wakeLoop = func() {
		n++
		if n > 20 {
			stop = true
		}
		r.k.Wake(st, nil)
		if n <= 20 {
			r.eng.After(1_000_000, wakeLoop)
		}
	}
	r.eng.After(500_000, wakeLoop)
	r.eng.Run(100_000_000)
	if len(cpus) == 0 {
		t.Fatal("pinned task never ran")
	}
	for _, c := range cpus {
		if c != 1 {
			t.Fatalf("pinned task ran on CPU %d", c)
		}
	}
}

func TestSpawnHonoursAffinityOverStartCPU(t *testing.T) {
	r := newKernel(t, 2, 1)
	var ran int
	ranOn := -1
	p := r.proc("x", perf.BinOther)
	r.k.Spawn("t", 0, 1<<1, func(e *Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(10, 0, 0) })
		ran++
		ranOn = e.CPU().ID()
	})
	r.eng.Run(10_000_000)
	if ran != 1 || ranOn != 1 {
		t.Fatalf("ran=%d on cpu %d, want on cpu 1", ran, ranOn)
	}
}

func TestIdleAccountingAndUtil(t *testing.T) {
	r := newKernel(t, 2, 1)
	p := r.proc("w", perf.BinOther)
	r.k.Spawn("t", 0, 1<<0, func(e *Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(2_000_000, 0, 0) })
	})
	r.eng.Run(10_000_000)
	idle0 := r.k.CPUs[0].IdleCycles()
	idle1 := r.k.CPUs[1].IdleCycles()
	if idle1 < 9_900_000 {
		t.Fatalf("CPU1 idle = %d, want ≈10M (never ran anything)", idle1)
	}
	if idle0 >= idle1 {
		t.Fatalf("CPU0 idle (%d) should be less than CPU1 (%d)", idle0, idle1)
	}
	u := CPUUtil(10_000_000, idle0)
	if u <= 0 || u >= 1 {
		t.Fatalf("util = %v, want in (0,1)", u)
	}
	if CPUUtil(0, 0) != 0 {
		t.Fatal("util of empty interval should be 0")
	}
}

func TestBalancePullsFromOverloadedCPU(t *testing.T) {
	r := newKernel(t, 2, 1)
	r.k.StartTicks()
	p := r.proc("w", perf.BinOther)
	perCPU := map[int]int{}
	for i := 0; i < 4; i++ {
		r.k.Spawn("t", 0, 0, func(e *Env) {
			for j := 0; j < 50; j++ {
				e.Run(p, func(x *cpu.Exec) { x.Instr(500_000, 0, 0) })
				perCPU[e.CPU().ID()]++
			}
		})
	}
	r.eng.Run(2_000_000_000)
	if perCPU[1] == 0 {
		t.Fatalf("all work stayed on CPU0: %v (idle steal/balance broken)", perCPU)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		eng := sim.NewEngine(99)
		tab := perf.NewSymbolTable()
		ctr := perf.NewCounters(tab, 2)
		k := New(Config{
			Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
			NumCPUs: 2, CPU: cpu.DefaultConfig(), Tune: DefaultTuning(),
		})
		defer k.Shutdown()
		k.StartTicks()
		p := k.NewProc("w", perf.BinOther, 512)
		wq := NewWaitQueue("wq")
		for i := 0; i < 4; i++ {
			k.Spawn("t", i%2, 0, func(e *Env) {
				for j := 0; j < 30; j++ {
					e.Run(p, func(x *cpu.Exec) { x.Instr(100_000, 0.15, 0.02) })
					if j%3 == 0 {
						wq.WakeAll(k, e)
						e.Yield()
					}
				}
			})
		}
		eng.Run(1_000_000_000)
		return ctr.Total(perf.Cycles) + ctr.Total(perf.BranchMispredicts)*1_000_003
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed kernel runs diverged: %d vs %d", a, b)
	}
}

func TestRotatePolicyDistributesHandlers(t *testing.T) {
	r := newKernel(t, 2, 1)
	hp := r.k.NewProc("IRQ0x1d_interrupt", perf.BinDriver, 512)
	r.k.RegisterIRQ(0x1d, &IRQAction{
		Proc:  hp,
		Build: func(c *KCPU, x *cpu.Exec) { x.Instr(100, 0, 0) },
	})
	r.k.APIC.SetPolicy(apic.PolicyRotate)
	r.k.APIC.RotatePeriod = 5
	for i := 0; i < 20; i++ {
		d := uint64(i+1) * 10_000
		r.eng.At(sim.Time(d), func() { r.k.APIC.Raise(0x1d) })
	}
	r.eng.Run(100_000_000)
	c0 := r.ctr.Get(0, hp.Sym, perf.IRQsReceived)
	c1 := r.ctr.Get(1, hp.Sym, perf.IRQsReceived)
	if c0 != 10 || c1 != 10 {
		t.Fatalf("rotate split %d/%d, want 10/10", c0, c1)
	}
}
