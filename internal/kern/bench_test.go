package kern

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

// BenchmarkEnvRun measures one simulated work item end to end: exec cost
// computation, event scheduling, boundary processing and coroutine
// handoff — the simulator's inner loop.
func BenchmarkEnvRun(b *testing.B) {
	eng := sim.NewEngine(1)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, 1)
	k := New(Config{
		Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
		NumCPUs: 1, CPU: cpu.DefaultConfig(), Tune: DefaultTuning(),
	})
	defer k.Shutdown()
	p := k.NewProc("bench_fn", perf.BinOther, 512)
	buf := k.Space.AllocPage(4096, "buf")
	n := 0
	k.Spawn("bench", 0, 0, func(e *Env) {
		for n < b.N {
			e.Run(p, func(x *cpu.Exec) { x.Instr(200, 0.15, 0.01).Load(buf, 256) })
			n++
		}
	})
	b.ResetTimer()
	eng.Run(sim.Forever - 1)
}

// BenchmarkSpinLockUncontended measures the lock fast path.
func BenchmarkSpinLockUncontended(b *testing.B) {
	eng := sim.NewEngine(1)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, 1)
	k := New(Config{
		Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
		NumCPUs: 1, CPU: cpu.DefaultConfig(), Tune: DefaultTuning(),
	})
	defer k.Shutdown()
	l := k.NewSpinLock("bench")
	n := 0
	k.Spawn("bench", 0, 0, func(e *Env) {
		for n < b.N {
			l.Lock(e)
			l.Unlock(e)
			n++
		}
	})
	b.ResetTimer()
	eng.Run(sim.Forever - 1)
}
