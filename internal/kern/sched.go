package kern

// enqueueTask puts a runnable task on cpuID's run queue and touches that
// queue's cache lines from the waker's processor, so remote wakeups bounce
// runqueue lines between caches the way try_to_wake_up does.
func (k *Kernel) enqueueTask(t *Task, cpuID int) {
	c := k.CPUs[cpuID]
	c.rq = append(c.rq, t)
}

// Wake makes t runnable, choosing a processor per the 2.4 policy the
// paper's analysis depends on (§5):
//
//   - prefer the processor the task last ran on, to preserve cache state
//     ("the scheduler tries as much as possible to schedule a process onto
//     the same processor that it was previously running on");
//   - but an idle processor beats affinity — load balancing is always
//     the scheduler's first priority, which is exactly why process-only
//     affinity buys so little;
//   - an idle remote processor is kicked with a reschedule IPI, whose
//     machine clears land on whatever the target was last executing.
//
// waker is the context performing the wakeup (nil for external/engine
// wakeups). Wake may be called from any context.
func (k *Kernel) Wake(t *Task, waker *Env) {
	if t.state != TaskSleeping {
		return // already runnable, running, or dead
	}
	if t.sleepingOn != nil {
		t.sleepingOn.remove(t)
		t.sleepingOn = nil
	}
	t.state = TaskRunnable

	target := k.placeTask(t)
	c := k.CPUs[target]

	// The waker writes the target runqueue: if the waker is on another
	// processor this dirties remote lines (counted against the waker's
	// current symbol; the timeline cost is folded into the waking call's
	// own profile).
	if waker != nil && waker.cpu != nil {
		sym := waker.cpu.lastSym
		waker.cpu.Model.TouchSide(sym, c.rqAddr, 64, true)
		waker.cpu.Model.TouchSide(sym, t.structAddr, 64, true)
	}

	k.enqueueTask(t, target)

	wakerCPU := -1
	if waker != nil && waker.cpu != nil {
		wakerCPU = waker.cpu.id
	}
	switch {
	case c.state == stIdle:
		if wakerCPU != target && k.Tune.WakeIPI {
			// Cross-processor wakeup of an idle CPU: reschedule IPI.
			k.Stats.WakeCrossIdle++
			k.Eng.After(k.Tune.IPILatencyCycles, func() {
				k.APIC.SendIPI(target, vectorResched)
			})
		} else {
			k.Stats.WakeSameCPU++
			k.Eng.After(0, c.kick)
		}
	case c.state == stTask && wakerCPU != target && k.Tune.PreemptIPI:
		// The target is running another task on a different processor:
		// a freshly-woken IO-bound task preempts it (2.4 goodness), so a
		// reschedule IPI interrupts whatever the target was executing —
		// the paper's machine-clear mechanism in the no-affinity mode.
		k.Stats.WakeCrossBusy++
		k.Eng.After(k.Tune.IPILatencyCycles, func() {
			k.APIC.SendIPI(target, vectorResched)
		})
	case wakerCPU == target:
		k.Stats.WakeSameCPU++
	default:
		k.Stats.WakeCrossQuiet++
	}
}

// placeTask picks the processor a newly-runnable task should run on.
func (k *Kernel) placeTask(t *Task) int {
	last := -1
	if t.allowed(t.lastCPU) {
		last = t.lastCPU
	}
	// Last CPU idle: perfect — cache-warm and immediately available.
	if k.Tune.WakeAffinity && last >= 0 && k.CPUs[last].state == stIdle {
		return last
	}
	// Otherwise any idle allowed CPU beats waiting behind a busy one.
	for _, c := range k.CPUs {
		if c.state == stIdle && t.allowed(c.id) {
			return c.id
		}
	}
	// Nothing idle: stay where the cache is warm if allowed.
	if last >= 0 {
		return last
	}
	// Fall back to the least-loaded allowed CPU.
	best := -1
	bestLoad := int(^uint(0) >> 1)
	for _, c := range k.CPUs {
		if !t.allowed(c.id) {
			continue
		}
		load := len(c.rq)
		if c.curr != nil {
			load++
		}
		if load < bestLoad {
			bestLoad = load
			best = c.id
		}
	}
	if best < 0 {
		panic("kern: no allowed CPU for task " + t.Name)
	}
	return best
}

// timerTickEffect applies one local APIC timer tick on c: kernel timers
// run, the current task's quantum is checked, and periodically the load
// balancer evens out run-queue lengths.
func (k *Kernel) timerTickEffect(c *KCPU) {
	k.expireTimers(c)
	if c.curr != nil && k.Eng.Now() >= c.quantumEnd {
		c.needResched = true
	}
	if c.id == 0 {
		k.balanceCountdown--
		if k.balanceCountdown <= 0 {
			k.balanceCountdown = k.Tune.BalanceTicks
			k.balance()
		}
	}
}

// balance performs a 2.4-style periodic pull: if the busiest run queue is
// at least two deeper than the shallowest, one affinity-compatible task
// moves. IO-bound network workloads rarely trigger it, but it keeps the
// scheduler honest under process-only affinity imbalance.
func (k *Kernel) balance() {
	var busiest, idlest *KCPU
	for _, c := range k.CPUs {
		if busiest == nil || len(c.rq) > len(busiest.rq) {
			busiest = c
		}
		if idlest == nil || len(c.rq) < len(idlest.rq) {
			idlest = c
		}
	}
	if busiest == nil || idlest == nil || busiest == idlest {
		return
	}
	if len(busiest.rq)-len(idlest.rq) < 2 {
		return
	}
	for i := len(busiest.rq) - 1; i >= 0; i-- {
		t := busiest.rq[i]
		if !t.allowed(idlest.id) {
			continue
		}
		busiest.rq = append(busiest.rq[:i], busiest.rq[i+1:]...)
		idlest.rq = append(idlest.rq, t)
		if idlest.state == stIdle {
			k.Eng.After(0, idlest.kick)
		}
		return
	}
}

// CPUUtil reports a processor's utilization over an interval of elapsed
// cycles given the idle cycles it accumulated in that interval.
func CPUUtil(elapsed, idle uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	busy := elapsed - min(idle, elapsed)
	return float64(busy) / float64(elapsed)
}

// WaitQueue is a kernel wait queue: tasks Sleep on it, Wake (or WakeAll)
// makes them runnable. The no-lost-wakeup guarantee follows from the
// simulation's handoff discipline: state transitions inside a coroutine
// are atomic with respect to engine events.
type WaitQueue struct {
	name    string
	waiters []*Task
}

// NewWaitQueue returns an empty queue named for diagnostics.
func NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{name: name}
}

func (w *WaitQueue) enqueue(t *Task) { w.waiters = append(w.waiters, t) }

func (w *WaitQueue) remove(t *Task) {
	for i, x := range w.waiters {
		if x == t {
			w.waiters = append(w.waiters[:i], w.waiters[i+1:]...)
			return
		}
	}
}

// Len reports the number of sleeping tasks.
func (w *WaitQueue) Len() int { return len(w.waiters) }

// WakeOne wakes the longest-waiting task, if any, and reports whether a
// task was woken.
func (w *WaitQueue) WakeOne(k *Kernel, waker *Env) bool {
	if len(w.waiters) == 0 {
		return false
	}
	t := w.waiters[0]
	k.Wake(t, waker) // Wake removes t from the queue
	return true
}

// WakeAll wakes every sleeping task.
func (w *WaitQueue) WakeAll(k *Kernel, waker *Env) {
	for len(w.waiters) > 0 {
		k.Wake(w.waiters[0], waker)
	}
}
