package kern

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

func benchKernel(b *testing.B, cpus int) (*sim.Engine, *Kernel) {
	b.Helper()
	eng := sim.NewEngine(1)
	tab := perf.NewSymbolTable()
	k := New(Config{
		Engine:  eng,
		Space:   mem.NewSpace(),
		Table:   tab,
		Ctr:     perf.NewCounters(tab, cpus),
		NumCPUs: cpus,
		CPU:     cpu.DefaultConfig(),
		Tune:    DefaultTuning(),
	})
	b.Cleanup(k.Shutdown)
	return eng, k
}

// BenchmarkTimerArmDisarm is TCP's dominant timer pattern: arm a
// retransmit deadline, then disarm it when the ACK lands before it
// fires. Near-horizon deadlines, so this exercises the band tier.
func BenchmarkTimerArmDisarm(b *testing.B) {
	_, k := benchKernel(b, 1)
	tm := k.NewTimer(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ModTimer(tm, sim.Time(2_000_000+i%1000))
		k.DelTimer(tm)
	}
}

// BenchmarkTimerModChurn re-arms a live timer to a sliding deadline —
// the delayed-ACK pattern — without ever disarming it.
func BenchmarkTimerModChurn(b *testing.B) {
	_, k := benchKernel(b, 1)
	tm := k.NewTimer(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ModTimer(tm, sim.Time(400_000+i%977))
	}
}

// BenchmarkTimerSpread measures churn across a large armed population —
// many flows each holding a retransmit timer — so arm/disarm pays for
// tier placement with both bands occupied.
func BenchmarkTimerSpread(b *testing.B) {
	_, k := benchKernel(b, 1)
	const flows = 512
	timers := make([]*Timer, flows)
	for i := range timers {
		timers[i] = k.NewTimer(nil)
		// Half near-horizon, half beyond the band span.
		at := sim.Time(2_000_000 + i*1000)
		if i%2 == 1 {
			at = sim.Time(uint64(timerBandSpan) + uint64(i)*100_000)
		}
		k.ModTimer(timers[i], at)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := timers[i%flows]
		k.ModTimer(tm, sim.Time(2_000_000+i%8191))
	}
}
