// Package kern simulates the operating-system substrate of the paper's
// system under test: a Linux-2.4.20-class SMP kernel with per-CPU run
// queues, wake-to-last-CPU cache affinity, static process affinity
// (sys_sched_setaffinity), interrupt top halves, softirq bottom halves
// that run on the processor that took the top half, spinlocks with real
// spin-loop accounting, kernel timers, and the reschedule IPIs that the
// paper identifies as a dominant source of machine clears.
//
// Simulated kernel and stack code is written in natural blocking style:
// each process is a coroutine (sim.Coro) whose work is charged to its
// current processor through cpu.Exec, and each processor has a softirq
// daemon coroutine. The per-CPU dispatcher in kcpu.go serializes all
// execution on a processor and injects interrupt effects at work-item
// boundaries — which is also how the model reproduces Oprofile's
// attribution "skid" for interrupt-caused events.
package kern

import (
	"fmt"

	"repro/internal/apic"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Tuning collects the kernel-level model parameters. The defaults are
// calibrated so the no-affinity baseline lands near the paper's measured
// operating point; the ablation benchmarks sweep them to show the
// qualitative results do not depend on exact values.
type Tuning struct {
	// ClearsPerDeviceIRQ is the number of machine-clear events charged
	// when a device interrupt is delivered (P4 pipeline flushes at
	// delivery, EOI and the surrounding microcode).
	ClearsPerDeviceIRQ uint64
	// ClearsPerIPI is the number of machine clears charged to the
	// interrupted symbol when a reschedule IPI lands.
	ClearsPerIPI uint64
	// ClearsPerTimer is charged per local APIC timer tick.
	ClearsPerTimer uint64
	// ClearsPerSwitch is charged per context switch (CR3 write and the
	// serializing switch path flush the P4 pipeline). With sampling skid
	// they surface in the code the incoming task resumes into.
	ClearsPerSwitch uint64
	// QuantumCycles is the scheduler timeslice.
	QuantumCycles uint64
	// TickCycles is the timer-tick period (10 ms at HZ=100).
	TickCycles uint64
	// IPILatencyCycles is the delivery latency of an IPI.
	IPILatencyCycles uint64
	// BalanceTicks is how many ticks pass between load-balance pulls.
	BalanceTicks int
	// CacheDecayCycles protects recently-run tasks from being stolen by
	// an idle processor (2.4's PROC_CHANGE_PENALTY / cache_decay_ticks):
	// migrating a cache-hot task costs more than a short wait.
	CacheDecayCycles uint64
	// WakeAffinity enables the scheduler's wake-to-last-CPU preference;
	// disabling it is the ablation that removes the indirect process
	// affinity that interrupt affinity induces (§5).
	WakeAffinity bool
	// WakeIPI enables reschedule IPIs to idle remote processors;
	// disabling it is the ablation that isolates the machine-clear story.
	WakeIPI bool
	// PreemptIPI enables reschedule IPIs to remote processors that are
	// running another task: 2.4's reschedule_idle preempts when the woken
	// task's goodness (fresh counter plus cache bonus) beats the current
	// task's, which is the common case for freshly-woken IO-bound tasks.
	PreemptIPI bool
	// DMAReadInvalidates selects the chipset's transmit-DMA snoop
	// behaviour (see mem.Directory). The SUT's ServerWorks-class chipset
	// behaviour is modelled as invalidating.
	DMAReadInvalidates bool
}

// DefaultTuning returns the calibrated model parameters.
func DefaultTuning() Tuning {
	return Tuning{
		ClearsPerDeviceIRQ: 7,
		ClearsPerIPI:       20,
		ClearsPerTimer:     4,
		ClearsPerSwitch:    6,
		QuantumCycles:      20_000_000, // 10 ms at 2 GHz
		TickCycles:         20_000_000, // 10 ms at 2 GHz
		IPILatencyCycles:   2_000,
		BalanceTicks:       25,
		CacheDecayCycles:   2_000_000, // 1 ms at 2 GHz
		WakeAffinity:       true,
		WakeIPI:            true,
		PreemptIPI:         true,
		DMAReadInvalidates: true,
	}
}

// Proc is a simulated kernel procedure: a profiler symbol plus the code
// footprint its activations exercise in the front end.
type Proc struct {
	Sym  perf.Symbol
	Code cpu.CodeRef
}

// Softirq identifies a bottom-half vector.
type Softirq int

const (
	// SoftirqTimer runs expired kernel timers.
	SoftirqTimer Softirq = iota
	// SoftirqNetTx is the transmit-completion bottom half.
	SoftirqNetTx
	// SoftirqNetRx is the receive bottom half.
	SoftirqNetRx

	numSoftirqs
)

// SoftirqHandler is a bottom-half body. It runs in a per-CPU softirq
// daemon coroutine and may block on spinlocks and charge work through
// env.Run, but must not sleep.
type SoftirqHandler func(env *Env)

// IRQAction is a registered top-half handler.
type IRQAction struct {
	// Proc names the handler (e.g. "IRQ0x19_interrupt", driver bin).
	Proc Proc
	// Build declares the handler's work into an open Exec.
	Build func(c *KCPU, x *cpu.Exec)
	// Effect applies the handler's side effects (raise softirq, queue
	// device work) when the handler's cycles have elapsed.
	Effect func(c *KCPU)
}

// Kernel is the simulated operating system: global scheduler state, the
// interrupt layer and the services stack code builds on.
type Kernel struct {
	Eng   *sim.Engine
	Space *mem.Space
	Tab   *perf.SymbolTable
	Ctr   *perf.Counters
	APIC  *apic.IOAPIC
	CPUs  []*KCPU
	Tune  Tuning
	// Dir is the machine-wide coherence directory; devices use it for DMA
	// effects (invalidate on receive DMA, flush on transmit DMA).
	Dir *mem.Directory
	// XtimeAddr is the kernel time variable: written by every timer tick,
	// read by do_gettimeofday on the receive path — a shared line that
	// bounces between processors.
	XtimeAddr mem.Addr
	// Trace is the machine's timeline recorder; nil (the default) disables
	// recording. The kernel, its devices and the stack all stamp records
	// through this field, which is nil-safe at every call site.
	Trace *trace.Recorder
	// OnMigrate, when non-nil, observes every task migration: it runs
	// at dispatch, on the destination CPU, just before the task's
	// lastCPU is updated. Flow-director steering hangs off this hook to
	// chase a migrating process with its flows' receive queues. The
	// callback must not schedule events or draw randomness — it runs
	// inside the scheduler and must leave the event stream untouched.
	OnMigrate func(t *Task, from, to int)

	irqActions map[apic.Vector]*IRQAction
	softirqs   [numSoftirqs]SoftirqHandler
	timers     *timerWheel
	tasks      []*Task

	// Internal procedures.
	procSchedule  Proc // "schedule" — interface bin per the paper (§3)
	procSwitchTo  Proc // "__switch_to"
	procResched   Proc // reschedule IPI handler
	procTick      Proc // local APIC timer handler
	procTimerRun  Proc // run_timer_list
	procDoSoftirq Proc

	balanceCountdown int
	ticksStarted     bool
	seq              int

	// Stats is scheduler-behaviour telemetry (not PMU events).
	Stats SchedStats
}

// SchedStats counts scheduler decisions, for diagnostics and tests.
type SchedStats struct {
	// WakeSameCPU counts wakeups placed on the waker's own processor.
	WakeSameCPU uint64
	// WakeCrossIdle counts wakeups that IPI'd an idle remote processor.
	WakeCrossIdle uint64
	// WakeCrossBusy counts wakeups that IPI'd a busy remote processor
	// (preemption).
	WakeCrossBusy uint64
	// WakeCrossQuiet counts cross-CPU wakeups that needed no IPI.
	WakeCrossQuiet uint64
	// Migrations counts dispatches on a different processor than the
	// task last ran on.
	Migrations uint64
	// Steals counts idle-balance steals.
	Steals uint64
}

// Config assembles a kernel.
type Config struct {
	Engine  *sim.Engine
	Space   *mem.Space
	Table   *perf.SymbolTable
	Ctr     *perf.Counters
	NumCPUs int
	CPU     cpu.Config
	Tune    Tuning
	// Trace, when non-nil, receives the machine's timeline records.
	Trace *trace.Recorder
}

// New builds the kernel, its processors, their cache hierarchies and the
// interrupt fabric.
func New(cfg Config) *Kernel {
	if cfg.NumCPUs <= 0 {
		panic("kern: need at least one CPU")
	}
	k := &Kernel{
		Eng:        cfg.Engine,
		Space:      cfg.Space,
		Tab:        cfg.Table,
		Ctr:        cfg.Ctr,
		Tune:       cfg.Tune,
		Trace:      cfg.Trace,
		irqActions: make(map[apic.Vector]*IRQAction),
	}
	if k.Ctr == nil {
		panic("kern: nil counters")
	}

	dir := mem.NewDirectory(cfg.NumCPUs)
	dir.DMAReadInvalidates = cfg.Tune.DMAReadInvalidates
	k.Dir = dir
	l1, l2, llc := mem.P4XeonMP()
	targets := make([]apic.Target, cfg.NumCPUs)
	for i := 0; i < cfg.NumCPUs; i++ {
		hier := mem.NewHierarchy(i, l1, l2, llc, dir)
		model := cpu.New(i, cfg.CPU, hier, cfg.Ctr, cfg.Engine.RNG())
		kc := newKCPU(k, i, model)
		k.CPUs = append(k.CPUs, kc)
		targets[i] = kc
	}
	k.APIC = apic.NewIOAPIC(targets)
	if k.Trace.Enabled() {
		k.APIC.SetTrace(k.Trace, cfg.Engine.Now)
	}

	k.XtimeAddr = cfg.Space.Alloc(mem.LineSize, "xtime")
	k.procSchedule = k.NewProc("schedule", perf.BinInterface, 1536)
	k.procSwitchTo = k.NewProc("__switch_to", perf.BinInterface, 512)
	k.procResched = k.NewProc("reschedule_interrupt", perf.BinOther, 256)
	k.procTick = k.NewProc("smp_apic_timer_interrupt", perf.BinOther, 512)
	k.procTimerRun = k.NewProc("run_timer_list", perf.BinOther, 768)
	k.procDoSoftirq = k.NewProc("do_softirq", perf.BinOther, 512)
	k.timers = newTimerWheel()
	k.RegisterSoftirq(SoftirqTimer, k.runTimers)

	k.balanceCountdown = k.Tune.BalanceTicks
	return k
}

// NewProc registers a simulated procedure: a profiler symbol in bin with
// codeSize bytes of instruction footprint.
func (k *Kernel) NewProc(name string, bin perf.Bin, codeSize int) Proc {
	sym := k.Tab.Register(name, bin)
	var code cpu.CodeRef
	if codeSize > 0 {
		code = cpu.CodeRef{Base: k.Space.Alloc(codeSize, "code:"+name), Size: codeSize}
	}
	return Proc{Sym: sym, Code: code}
}

// RegisterIRQ installs a device top-half for vec.
func (k *Kernel) RegisterIRQ(vec apic.Vector, action *IRQAction) {
	if _, dup := k.irqActions[vec]; dup {
		panic(fmt.Sprintf("kern: duplicate IRQ action for vector %#x", int(vec)))
	}
	k.irqActions[vec] = action
}

// RegisterSoftirq installs the handler for a bottom-half vector.
func (k *Kernel) RegisterSoftirq(s Softirq, h SoftirqHandler) {
	k.softirqs[s] = h
}

// StartTicks begins the per-CPU timer ticks. Experiments call it once
// when the machine "boots"; ticks run for the whole simulation.
func (k *Kernel) StartTicks() {
	if k.ticksStarted {
		return
	}
	k.ticksStarted = true
	for _, c := range k.CPUs {
		c := c
		// Stagger ticks so the CPUs do not phase-lock.
		first := k.Tune.TickCycles/uint64(len(k.CPUs)+1)*uint64(c.id+1) + 1
		k.Eng.After(first, func() { k.tick(c) })
	}
}

func (k *Kernel) tick(c *KCPU) {
	k.APIC.TimerTick(c.id, vectorTimer)
	k.Eng.After(k.Eng.RNG().Jitter(k.Tune.TickCycles, 0.02), func() { k.tick(c) })
}

// Shutdown kills every coroutine the kernel owns; tests call it to avoid
// leaking goroutines between runs.
func (k *Kernel) Shutdown() {
	for _, t := range k.tasks {
		if t.co != nil && !t.co.Done() {
			if t.co.Parked() {
				t.co.Kill()
			}
		}
	}
	for _, c := range k.CPUs {
		if c.softirqdCo != nil && !c.softirqdCo.Done() && c.softirqdCo.Parked() {
			c.softirqdCo.Kill()
		}
	}
}

// Now exposes the engine clock.
func (k *Kernel) Now() sim.Time { return k.Eng.Now() }

// Tasks returns all spawned tasks.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// Interrupt vectors used by the kernel itself.
const (
	vectorResched apic.Vector = 0xfd
	vectorTimer   apic.Vector = 0xef
)
