package kern

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/perf"
	"repro/internal/sim"
)

func TestSleepWithLockHeldPanics(t *testing.T) {
	r := newKernel(t, 1, 1)
	l := r.k.NewSpinLock("l")
	wq := NewWaitQueue("wq")
	panicked := false
	r.k.Spawn("t", 0, 0, func(e *Env) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		l.Lock(e)
		e.Sleep(wq)
	})
	func() {
		defer func() { recover() }() // the coroutine re-panics on the engine side
		r.eng.Run(10_000_000)
	}()
	if !panicked {
		t.Fatal("sleeping with a spinlock held did not panic")
	}
}

func TestSpinlockFIFOGrantOrder(t *testing.T) {
	r := newKernel(t, 2, 1)
	l := r.k.NewSpinLock("l")
	p := r.proc("crit", perf.BinOther)
	var order []string

	// Holder on CPU0 keeps the lock long enough for both waiters to queue.
	r.k.Spawn("holder", 0, 1<<0, func(e *Env) {
		l.Lock(e)
		e.Run(p, func(x *cpu.Exec) { x.Instr(500_000, 0, 0) })
		l.Unlock(e)
	})
	mk := func(name string, delay uint64) {
		r.eng.At(sim.Time(delay), func() {
			r.k.Spawn(name, 1, 1<<1, func(e *Env) {
				l.Lock(e)
				order = append(order, name)
				l.Unlock(e)
			})
		})
	}
	mk("first", 10_000)
	mk("second", 60_000)
	r.eng.Run(50_000_000)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("grant order %v, want [first second]", order)
	}
}

func TestWaitQueueWakeOneIsFIFO(t *testing.T) {
	r := newKernel(t, 1, 1)
	wq := NewWaitQueue("wq")
	var woke []string
	mk := func(name string) {
		r.k.Spawn(name, 0, 0, func(e *Env) {
			e.Sleep(wq)
			woke = append(woke, name)
		})
	}
	mk("a")
	mk("b")
	mk("c")
	r.eng.After(5_000_000, func() {
		if !wq.WakeOne(r.k, nil) {
			t.Error("WakeOne found no waiters")
		}
	})
	r.eng.After(10_000_000, func() { wq.WakeAll(r.k, nil) })
	r.eng.Run(100_000_000)
	if len(woke) != 3 || woke[0] != "a" {
		t.Fatalf("wake order %v, want a first", woke)
	}
	if wq.WakeOne(r.k, nil) {
		t.Fatal("WakeOne on empty queue reported success")
	}
}

func TestWakeOnDeadTaskIsNoop(t *testing.T) {
	r := newKernel(t, 1, 1)
	st := r.k.Spawn("short", 0, 0, func(e *Env) {})
	r.eng.Run(1_000_000)
	if st.State() != TaskDead {
		t.Fatal("task did not die")
	}
	r.k.Wake(st, nil) // must not panic or requeue
	r.eng.Run(2_000_000)
	if st.State() != TaskDead {
		t.Fatal("dead task resurrected")
	}
}

func TestSetAffinityRejectsEmptyAndForeignMask(t *testing.T) {
	r := newKernel(t, 2, 1)
	st := r.k.Spawn("t", 0, 0, func(e *Env) {
		for {
			e.Yield()
		}
	})
	if err := r.k.SetAffinity(st, 0); err == nil {
		t.Error("empty mask accepted")
	}
	if err := r.k.SetAffinity(st, 0xc); err == nil {
		t.Error("mask naming only nonexistent CPUs accepted")
	}
	if err := r.k.SetAffinity(st, 0x3); err != nil {
		t.Errorf("valid mask rejected: %v", err)
	}
}

func TestMigrationFlushesTLBsViaAddressSpaceSwitch(t *testing.T) {
	// Two processes alternating on one CPU have different address
	// spaces, so every switch flushes and data pages must re-walk.
	r := newKernel(t, 1, 1)
	p := r.proc("toucher", perf.BinOther)
	buf := r.k.Space.AllocPage(4096, "buf")
	mk := func(name string) {
		r.k.Spawn(name, 0, 0, func(e *Env) {
			for i := 0; i < 5; i++ {
				e.Run(p, func(x *cpu.Exec) { x.Instr(100, 0, 0).Load(buf, 64) })
				e.Yield()
			}
		})
	}
	mk("a")
	mk("b")
	r.eng.Run(100_000_000)
	// 10 activations, each after an mm switch: every one walks the page.
	if got := r.ctr.SymbolTotal(p.Sym, perf.DTLBWalks); got != 10 {
		t.Fatalf("dtlb walks = %d, want 10 (one per post-switch touch)", got)
	}
}

func TestIdleStealRespectsCacheDecay(t *testing.T) {
	r := newKernel(t, 2, 1)
	r.k.StartTicks() // idle CPUs reach the scheduler via timer ticks
	p := r.proc("w", perf.BinOther)
	// One long-running task on CPU0 plus one queued behind it.
	r.k.Spawn("hog", 0, 1<<0, func(e *Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(50_000_000, 0, 0) })
	})
	var queuedRanOn int = -1
	r.k.Spawn("queued", 0, 0, func(e *Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(1000, 0, 0) })
		queuedRanOn = e.CPU().ID()
	})
	r.eng.Run(100_000_000)
	// CPU1 is idle; after the decay period it must steal the queued task.
	if queuedRanOn != 1 {
		t.Fatalf("queued task ran on %d, want stolen by idle CPU1", queuedRanOn)
	}
	if r.k.Stats.Steals == 0 {
		t.Fatal("no steal recorded")
	}
}

func TestTimerRearmAndStats(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	fired := 0
	var tm *Timer
	tm = r.k.NewTimer(func(env *Env) {
		fired++
		if fired < 3 {
			r.k.ModTimer(tm, r.eng.Now()+sim.Time(30_000_000))
		}
	})
	r.k.ModTimer(tm, 30_000_000)
	r.eng.Run(500_000_000)
	if fired != 3 {
		t.Fatalf("timer fired %d times, want 3 (self-rearm)", fired)
	}
}

func TestModTimerMovesDeadline(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	var firedAt sim.Time
	tm := r.k.NewTimer(func(env *Env) { firedAt = r.eng.Now() })
	r.k.ModTimer(tm, 30_000_000)
	r.k.ModTimer(tm, 200_000_000) // push it out
	r.eng.Run(400_000_000)
	if firedAt < 200_000_000 {
		t.Fatalf("timer fired at %d despite rearm to 200M", firedAt)
	}
	if r.k.ArmedTimers() != 0 {
		t.Fatal("timer still armed after firing")
	}
}

func TestTouchSideRecordsCoherenceTraffic(t *testing.T) {
	r := newKernel(t, 2, 1)
	sym := r.k.Tab.Register("side", perf.BinOther)
	addr := r.k.Space.Alloc(64, "line")
	// CPU1 dirties the line, CPU0 side-touches it: one LLC miss for CPU0.
	r.k.CPUs[1].Model.Hierarchy().AccessRange(addr, 64, true)
	r.k.CPUs[0].Model.TouchSide(sym, addr, 64, true)
	if got := r.ctr.Get(0, sym, perf.LLCMisses); got != 1 {
		t.Fatalf("side touch misses = %d, want 1", got)
	}
}

func TestShutdownReapsParkedTasks(t *testing.T) {
	r := newKernel(t, 1, 1)
	cleanups := 0
	for i := 0; i < 3; i++ {
		r.k.Spawn("eternal", 0, 0, func(e *Env) {
			defer func() { cleanups++ }()
			wq := NewWaitQueue("never")
			e.Sleep(wq)
		})
	}
	r.eng.Run(10_000_000)
	r.k.Shutdown()
	if cleanups != 3 {
		t.Fatalf("%d deferred cleanups ran, want 3", cleanups)
	}
	// Shutdown must be idempotent.
	r.k.Shutdown()
}

func TestCPUUtilBounds(t *testing.T) {
	if CPUUtil(100, 0) != 1 {
		t.Error("fully busy != 1")
	}
	if CPUUtil(100, 100) != 0 {
		t.Error("fully idle != 0")
	}
	if CPUUtil(100, 150) != 0 {
		t.Error("over-idle not clamped")
	}
	if got := CPUUtil(200, 50); got != 0.75 {
		t.Errorf("util = %v, want 0.75", got)
	}
}

func TestDelaySleepsForVirtualTime(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks() // timers fire off ticks
	var woke sim.Time
	r.k.Spawn("sleeper", 0, 0, func(e *Env) {
		e.Delay(50_000_000)
		woke = r.eng.Now()
	})
	r.eng.Run(500_000_000)
	if woke < 50_000_000 {
		t.Fatalf("woke at %d, want >= 50M", woke)
	}
	// Timer resolution is one tick (10 ms): wakeup within two ticks.
	if woke > 50_000_000+2*sim.Time(r.k.Tune.TickCycles) {
		t.Fatalf("woke at %d, far beyond deadline", woke)
	}
	if r.k.ArmedTimers() != 0 {
		t.Fatal("delay timer leaked")
	}
}

func TestDelayFromSoftirqPanics(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	panicked := false
	r.k.RegisterSoftirq(SoftirqNetRx, func(env *Env) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		env.Delay(1000)
	})
	hp := r.k.NewProc("IRQ0x30_interrupt", perf.BinDriver, 256)
	r.k.RegisterIRQ(0x30, &IRQAction{
		Proc:   hp,
		Build:  func(c *KCPU, x *cpu.Exec) { x.Instr(50, 0, 0) },
		Effect: func(c *KCPU) { c.RaiseSoftirq(SoftirqNetRx) },
	})
	r.eng.At(1000, func() { r.k.APIC.Raise(0x30) })
	func() {
		defer func() { recover() }()
		r.eng.Run(50_000_000)
	}()
	if !panicked {
		t.Fatal("Delay from softirq did not panic")
	}
}
