package kern

import (
	"testing"

	"repro/internal/sim"
)

// TestTimerLadderFarFutureMigration arms deadlines beyond the band span
// so they start in the overflow heap, plus near ones in the band, and
// checks they all fire in deadline order as ticks advance the window.
func TestTimerLadderFarFutureMigration(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	var fired []sim.Time
	arm := func(at sim.Time) {
		tm := r.k.NewTimer(func(env *Env) { fired = append(fired, r.eng.Now()) })
		r.k.ModTimer(tm, at)
	}
	near := sim.Time(25_000_000)
	far := sim.Time(uint64(timerBandSpan) + 50_000_000)
	for i := 0; i < 8; i++ {
		arm(far + sim.Time(i)*7_000_000)
		arm(near + sim.Time(i)*3_000_000)
	}
	if r.k.ArmedTimers() != 16 {
		t.Fatalf("armed %d of 16", r.k.ArmedTimers())
	}
	r.eng.Run(sim.Time(uint64(timerBandSpan) + 300_000_000))
	if len(fired) != 16 {
		t.Fatalf("fired %d of 16 timers", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("timer %d fired at %d after one at %d", i, fired[i], fired[i-1])
		}
	}
	if r.k.ArmedTimers() != 0 {
		t.Fatalf("%d timers still armed", r.k.ArmedTimers())
	}
}

// TestTimerRearmKeepsOrderAmongPeers pins the sequence-preservation rule:
// re-arming an armed timer to a deadline shared with other timers keeps
// its original position among them, exactly as the old heap fix-up did —
// the byte-identity of whole runs depends on it.
func TestTimerRearmKeepsOrderAmongPeers(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	var order []int
	mk := func(id int) *Timer {
		return r.k.NewTimer(func(env *Env) { order = append(order, id) })
	}
	a, b, c := mk(0), mk(1), mk(2)
	deadline := sim.Time(40_000_000)
	r.k.ModTimer(a, deadline)
	r.k.ModTimer(b, deadline)
	r.k.ModTimer(c, deadline)
	// Slide a (the eldest) to a different deadline and back: it must
	// still run before b and c at the shared deadline.
	r.k.ModTimer(a, deadline+10_000_000)
	r.k.ModTimer(a, deadline)
	r.eng.Run(100_000_000)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("fire order %v, want [0 1 2]", order)
	}
}

// TestTimerDisarmChurnCompaction runs enough arm/disarm churn to force
// dead-slot compaction in the band and checks the survivors fire.
func TestTimerDisarmChurnCompaction(t *testing.T) {
	r := newKernel(t, 1, 1)
	r.k.StartTicks()
	survivors := 0
	keep := r.k.NewTimer(func(env *Env) { survivors++ })
	r.k.ModTimer(keep, 30_000_000)
	scratch := r.k.NewTimer(nil)
	for i := 0; i < 10_000; i++ {
		r.k.ModTimer(scratch, sim.Time(2_000_000+i%4096))
		r.k.DelTimer(scratch)
	}
	if got := r.k.ArmedTimers(); got != 1 {
		t.Fatalf("ArmedTimers = %d after churn, want 1", got)
	}
	if got := len(r.k.timers.free); got == 0 {
		t.Fatal("churn never recycled a slot")
	}
	r.eng.Run(60_000_000)
	if survivors != 1 {
		t.Fatalf("survivor fired %d times, want 1", survivors)
	}
}
