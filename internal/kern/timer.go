package kern

import (
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Timer is a kernel timer (add_timer/mod_timer/del_timer). TCP arms one
// retransmit timer per flight and a delayed-ACK timer; in the paper's
// loss-free bulk workload they are armed and disarmed constantly but
// almost never fire — the arming itself is the Timers-bin cost.
type Timer struct {
	expires sim.Time
	fn      func(env *Env)
	idx     int // heap index, -1 when inactive
	seq     uint64
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.idx >= 0 }

// timerHeap is a concrete 4-ary min-heap ordered by (expires, seq). Like
// the event queue in internal/sim it avoids container/heap's interface
// boxing on the arm/disarm churn path; the (expires, seq) order is total,
// so expiry order is independent of heap internals.
type timerHeap []*Timer

const timerHeapArity = 4

func timerLess(a, b *Timer) bool {
	if a.expires != b.expires {
		return a.expires < b.expires
	}
	return a.seq < b.seq
}

func (h timerHeap) siftUp(i int) {
	t := h[i]
	for i > 0 {
		p := (i - 1) / timerHeapArity
		if !timerLess(t, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].idx = i
		i = p
	}
	h[i] = t
	t.idx = i
}

func (h timerHeap) siftDown(i int) {
	n := len(h)
	t := h[i]
	for {
		first := timerHeapArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + timerHeapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if timerLess(h[c], h[min]) {
				min = c
			}
		}
		if !timerLess(h[min], t) {
			break
		}
		h[i] = h[min]
		h[i].idx = i
		i = min
	}
	h[i] = t
	t.idx = i
}

func (h *timerHeap) push(t *Timer) {
	t.idx = len(*h)
	*h = append(*h, t)
	h.siftUp(t.idx)
}

func (h *timerHeap) popMin() *Timer {
	t := (*h)[0]
	h.removeAt(0)
	return t
}

// removeAt deletes the timer at heap index i.
func (h *timerHeap) removeAt(i int) {
	old := *h
	n := len(old) - 1
	t := old[i]
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if i < n {
		old[i] = last
		last.idx = i
		h.fix(i)
	}
	t.idx = -1
}

// fix restores heap order after the timer at index i changed its key.
// If siftDown sank the element, position i now holds a former descendant
// already >= parent(i), so the follow-up siftUp is a no-op.
func (h timerHeap) fix(i int) {
	h.siftDown(i)
	h.siftUp(i)
}

type timerWheel struct {
	heap timerHeap
	seq  uint64
	// expired timers awaiting their softirq pass, per CPU.
	pending map[int][]*Timer
}

func newTimerWheel() *timerWheel {
	return &timerWheel{pending: make(map[int][]*Timer)}
}

// NewTimer creates an inactive timer with handler fn. The handler runs in
// softirq context on whichever processor's tick expires it.
func (k *Kernel) NewTimer(fn func(env *Env)) *Timer {
	return &Timer{fn: fn, idx: -1}
}

// ModTimer (re)arms t to fire at expires.
func (k *Kernel) ModTimer(t *Timer, expires sim.Time) {
	w := k.timers
	t.expires = expires
	if t.idx >= 0 {
		w.heap.fix(t.idx)
		return
	}
	w.seq++
	t.seq = w.seq
	w.heap.push(t)
}

// DelTimer disarms t if armed.
func (k *Kernel) DelTimer(t *Timer) {
	if t.idx >= 0 {
		k.timers.heap.removeAt(t.idx)
	}
}

// ArmedTimers reports how many timers are armed (tests).
func (k *Kernel) ArmedTimers() int { return len(k.timers.heap) }

// expireTimers moves due timers to c's pending list and raises the timer
// softirq there, mirroring 2.4's "timers run as a bottom half on the CPU
// that took the tick".
func (k *Kernel) expireTimers(c *KCPU) {
	w := k.timers
	now := k.Eng.Now()
	moved := false
	for len(w.heap) > 0 && w.heap[0].expires <= now {
		t := w.heap.popMin()
		w.pending[c.id] = append(w.pending[c.id], t)
		moved = true
	}
	if moved {
		c.RaiseSoftirq(SoftirqTimer)
	}
}

// runTimers is the TIMER softirq handler: it charges the dispatch cost
// and invokes each expired handler in softirq context.
func (k *Kernel) runTimers(env *Env) {
	c := env.cpu
	pend := k.timers.pending[c.id]
	k.timers.pending[c.id] = nil
	for _, t := range pend {
		env.Run(k.procTimerRun, func(x *cpu.Exec) {
			x.Instr(150, 0.2, 0.03)
		})
		if t.fn != nil {
			t.fn(env)
		}
	}
}
