package kern

import (
	"container/heap"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Timer is a kernel timer (add_timer/mod_timer/del_timer). TCP arms one
// retransmit timer per flight and a delayed-ACK timer; in the paper's
// loss-free bulk workload they are armed and disarmed constantly but
// almost never fire — the arming itself is the Timers-bin cost.
type Timer struct {
	expires sim.Time
	fn      func(env *Env)
	idx     int // heap index, -1 when inactive
	seq     uint64
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.idx >= 0 }

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].expires != h[j].expires {
		return h[i].expires < h[j].expires
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}

type timerWheel struct {
	heap timerHeap
	seq  uint64
	// expired timers awaiting their softirq pass, per CPU.
	pending map[int][]*Timer
}

func newTimerWheel() *timerWheel {
	return &timerWheel{pending: make(map[int][]*Timer)}
}

// NewTimer creates an inactive timer with handler fn. The handler runs in
// softirq context on whichever processor's tick expires it.
func (k *Kernel) NewTimer(fn func(env *Env)) *Timer {
	return &Timer{fn: fn, idx: -1}
}

// ModTimer (re)arms t to fire at expires.
func (k *Kernel) ModTimer(t *Timer, expires sim.Time) {
	w := k.timers
	t.expires = expires
	if t.idx >= 0 {
		heap.Fix(&w.heap, t.idx)
		return
	}
	w.seq++
	t.seq = w.seq
	heap.Push(&w.heap, t)
}

// DelTimer disarms t if armed.
func (k *Kernel) DelTimer(t *Timer) {
	if t.idx >= 0 {
		heap.Remove(&k.timers.heap, t.idx)
	}
}

// ArmedTimers reports how many timers are armed (tests).
func (k *Kernel) ArmedTimers() int { return k.timers.heap.Len() }

// expireTimers moves due timers to c's pending list and raises the timer
// softirq there, mirroring 2.4's "timers run as a bottom half on the CPU
// that took the tick".
func (k *Kernel) expireTimers(c *KCPU) {
	w := k.timers
	now := k.Eng.Now()
	moved := false
	for w.heap.Len() > 0 && w.heap[0].expires <= now {
		t := heap.Pop(&w.heap).(*Timer)
		w.pending[c.id] = append(w.pending[c.id], t)
		moved = true
	}
	if moved {
		c.RaiseSoftirq(SoftirqTimer)
	}
}

// runTimers is the TIMER softirq handler: it charges the dispatch cost
// and invokes each expired handler in softirq context.
func (k *Kernel) runTimers(env *Env) {
	c := env.cpu
	pend := k.timers.pending[c.id]
	k.timers.pending[c.id] = nil
	for _, t := range pend {
		env.Run(k.procTimerRun, func(x *cpu.Exec) {
			x.Instr(150, 0.2, 0.03)
		})
		if t.fn != nil {
			t.fn(env)
		}
	}
}
