package kern

import (
	"math/bits"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Timer is a kernel timer (add_timer/mod_timer/del_timer). TCP arms one
// retransmit timer per flight and a delayed-ACK timer; in the paper's
// loss-free bulk workload they are armed and disarmed constantly but
// almost never fire — the arming itself is the Timers-bin cost.
type Timer struct {
	expires sim.Time
	fn      func(env *Env)
	slot    int32 // wheel arena slot, -1 when inactive
	seq     uint64
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.slot >= 0 }

// The wheel mirrors internal/sim's two-tier ladder: a band of
// coarse-grained buckets covering the next ~33 M cycles (comfortably past
// the delayed-ACK 400 k, the usual RTO of a few million, and a full
// 20 M-cycle tick period) backed by a 4-ary overflow heap for long
// horizons. Unlike the engine's one-cycle buckets, a timer bucket spans
// 2^timerBandShift cycles and so holds several distinct deadlines; chains
// are therefore kept sorted by (expires, seq) on insert — arm/disarm
// churn dominates and chains stay tiny, so sorted insertion is cheaper
// than any per-expiry sort.
//
// The expiry path does not assume tier disjointness: it merges the band
// minimum and heap minimum by (expires, seq), so overdue arms (expires in
// the past — legal, they fire at the next tick) are handled wherever they
// landed. The band base is kept bucket-aligned so each bucket maps to one
// contiguous time range within the window, making "first occupied bucket's
// chain head" the exact band minimum.
const (
	timerBandShift   = 15
	timerBandBuckets = 1 << 10
	timerBandMask    = timerBandBuckets - 1
	timerBandWords   = timerBandBuckets / 64
	timerBucketAlign = sim.Time(1)<<timerBandShift - 1
	timerBandSpan    = sim.Time(timerBandBuckets) << timerBandShift
)

// timerCompactMinDead matches internal/sim's threshold before a tier is
// swept of disarmed entries.
const timerCompactMinDead = 64

const timerHeapArity = 4

type timerWheel struct {
	// Struct-of-arrays slot arena. A slot is one armed instance of a
	// timer; disarm/re-arm kills the slot (lazily reaped) and re-arm
	// inserts a new one. owners back-references let expiry hand the
	// *Timer to the softirq pass.
	expires []sim.Time
	seqs    []uint64
	owners  []*Timer
	nexts   []int32 // bucket chain link, slot+1 (0 = end)
	deads   []bool
	inHeap  []bool
	free    []int32

	base     sim.Time // bucket-aligned start of the band window
	bandLive int
	bandDead int
	heads    [timerBandBuckets]int32 // slot+1, 0 = empty
	tails    [timerBandBuckets]int32
	bitmap   [timerBandWords]uint64

	heap     []int32
	heapDead int

	seq  uint64
	live int
	// expired timers awaiting their softirq pass, per CPU.
	pending map[int][]*Timer
}

func newTimerWheel() *timerWheel {
	return &timerWheel{pending: make(map[int][]*Timer)}
}

// slotLess orders slots by (expires, seq); the order is total, so expiry
// order is independent of wheel internals.
func (w *timerWheel) slotLess(a, b int32) bool {
	if w.expires[a] != w.expires[b] {
		return w.expires[a] < w.expires[b]
	}
	return w.seqs[a] < w.seqs[b]
}

func (w *timerWheel) alloc() int32 {
	if n := len(w.free); n > 0 {
		i := w.free[n-1]
		w.free = w.free[:n-1]
		return i
	}
	i := int32(len(w.expires))
	w.expires = append(w.expires, 0)
	w.seqs = append(w.seqs, 0)
	w.owners = append(w.owners, nil)
	w.nexts = append(w.nexts, 0)
	w.deads = append(w.deads, false)
	w.inHeap = append(w.inHeap, false)
	return i
}

func (w *timerWheel) freeSlot(i int32) {
	w.owners[i] = nil
	w.free = append(w.free, i)
}

func (w *timerWheel) bucket(t sim.Time) int {
	return int(t>>timerBandShift) & timerBandMask
}

// bandInsert places slot i into its bucket chain, sorted by
// (expires, seq). Dead entries keep their keys, so the whole chain stays
// sorted and expiry can skip them without re-ordering.
func (w *timerWheel) bandInsert(i int32) {
	b := w.bucket(w.expires[i])
	w.inHeap[i] = false
	w.bandLive++
	// Fast path: fresh arms draw monotone sequence numbers, so clustered
	// same-bucket arms append at the tail in O(1).
	if tail := w.tails[b]; tail != 0 && !w.slotLess(i, tail-1) {
		w.nexts[i] = 0
		w.nexts[tail-1] = i + 1
		w.tails[b] = i + 1
		return
	}
	var prev int32
	for p := w.heads[b]; p != 0; p = w.nexts[p-1] {
		if w.slotLess(i, p-1) {
			break
		}
		prev = p
	}
	if prev == 0 {
		w.nexts[i] = w.heads[b]
		w.heads[b] = i + 1
		w.bitmap[b>>6] |= 1 << uint(b&63)
	} else {
		w.nexts[i] = w.nexts[prev-1]
		w.nexts[prev-1] = i + 1
	}
	if w.nexts[i] == 0 {
		w.tails[b] = i + 1
	}
}

func (w *timerWheel) heapPush(i int32) {
	w.inHeap[i] = true
	h := append(w.heap, i)
	j := len(h) - 1
	for j > 0 {
		p := (j - 1) / timerHeapArity
		if !w.slotLess(i, h[p]) {
			break
		}
		h[j] = h[p]
		j = p
	}
	h[j] = i
	w.heap = h
}

func (w *timerWheel) heapPop() int32 {
	h := w.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	w.heap = h[:n]
	if n > 0 {
		w.heapSiftDown(0, last)
	}
	w.inHeap[top] = false
	return top
}

func (w *timerWheel) heapSiftDown(j int, x int32) {
	h := w.heap
	n := len(h)
	for {
		first := timerHeapArity*j + 1
		if first >= n {
			break
		}
		min := first
		last := first + timerHeapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if w.slotLess(h[c], h[min]) {
				min = c
			}
		}
		if !w.slotLess(h[min], x) {
			break
		}
		h[j] = h[min]
		j = min
	}
	h[j] = x
}

func (w *timerWheel) compactHeap() {
	h := w.heap[:0]
	for _, i := range w.heap {
		if w.deads[i] {
			w.inHeap[i] = false
			w.freeSlot(i)
			continue
		}
		h = append(h, i)
	}
	w.heap = h
	if n := len(h); n > 1 {
		for j := (n - 2) / timerHeapArity; j >= 0; j-- {
			w.heapSiftDown(j, h[j])
		}
	}
	w.heapDead = 0
}

// sweepBand filters disarmed entries out of every bucket chain, keeping
// chain order, and recycles their slots.
func (w *timerWheel) sweepBand() {
	for wd := range w.bitmap {
		bw := w.bitmap[wd]
		for bw != 0 {
			b := wd<<6 + bits.TrailingZeros64(bw)
			bw &= bw - 1
			var head, tail int32
			for p := w.heads[b]; p != 0; {
				i := p - 1
				p = w.nexts[i]
				if w.deads[i] {
					w.freeSlot(i)
					continue
				}
				w.nexts[i] = 0
				if tail != 0 {
					w.nexts[tail-1] = i + 1
				} else {
					head = i + 1
				}
				tail = i + 1
			}
			w.heads[b] = head
			w.tails[b] = tail
			if head == 0 {
				w.bitmap[wd] &^= 1 << uint(b&63)
			}
		}
	}
	w.bandDead = 0
}

// kill marks slot i disarmed; the slot is reaped lazily by expiry or a
// compaction sweep.
func (w *timerWheel) kill(i int32) {
	w.deads[i] = true
	w.owners[i] = nil
	w.live--
	if w.inHeap[i] {
		w.heapDead++
		if w.heapDead >= timerCompactMinDead && w.heapDead*2 > len(w.heap) {
			w.compactHeap()
		}
	} else {
		w.bandLive--
		w.bandDead++
		if w.bandDead >= timerCompactMinDead && w.bandDead*2 > w.bandLive {
			w.sweepBand()
		}
	}
}

// insert places slot i in the tier its deadline calls for.
func (w *timerWheel) insert(i int32) {
	if e := w.expires[i]; e >= w.base && e-w.base < timerBandSpan {
		w.bandInsert(i)
	} else {
		w.heapPush(i)
	}
}

// NewTimer creates an inactive timer with handler fn. The handler runs in
// softirq context on whichever processor's tick expires it.
func (k *Kernel) NewTimer(fn func(env *Env)) *Timer {
	return &Timer{fn: fn, slot: -1}
}

// ModTimer (re)arms t to fire at expires. Re-arming an armed timer keeps
// its sequence number — the timer moves to its new deadline but keeps its
// place among same-deadline peers, exactly as the heap fix-up used to
// behave — while a fresh arm draws the next sequence number.
func (k *Kernel) ModTimer(t *Timer, expires sim.Time) {
	w := k.timers
	t.expires = expires
	if t.slot >= 0 {
		w.kill(t.slot)
		w.live++ // kill counts a disarm; a re-arm is net zero
	} else {
		w.seq++
		t.seq = w.seq
		w.live++
	}
	i := w.alloc()
	w.expires[i] = expires
	w.seqs[i] = t.seq
	w.owners[i] = t
	w.deads[i] = false
	t.slot = i
	w.insert(i)
}

// DelTimer disarms t if armed.
func (k *Kernel) DelTimer(t *Timer) {
	if t.slot >= 0 {
		k.timers.kill(t.slot)
		t.slot = -1
	}
}

// ArmedTimers reports how many timers are armed (tests).
func (k *Kernel) ArmedTimers() int { return k.timers.live }

// bandMin returns the earliest live band slot without removing it,
// reaping dead entries it scans past. Buckets ascend in time circularly
// from the base bucket and chains are sorted, so the first live head is
// the band minimum.
func (w *timerWheel) bandMin() (int32, bool) {
	s := w.bucket(w.base)
	for k := 0; k < timerBandWords; k++ {
		wd := (s>>6 + k) & (timerBandWords - 1)
		for w.bitmap[wd] != 0 {
			bw := w.bitmap[wd]
			if k == 0 {
				// Buckets below the base bucket in the start word are
				// the very end of the window; they are scanned last,
				// after the full circular pass.
				bw &^= 1<<uint(s&63) - 1
				if bw == 0 {
					break
				}
			}
			b := wd<<6 + bits.TrailingZeros64(bw)
			p := w.heads[b]
			if p == 0 {
				// Bit set but chain empty cannot happen; defensive.
				w.bitmap[wd] &^= 1 << uint(b&63)
				continue
			}
			i := p - 1
			if w.deads[i] {
				w.unlinkHead(b, i)
				w.bandDead--
				w.freeSlot(i)
				continue
			}
			return i, true
		}
	}
	// Wrapped low buckets of the start word.
	if s&63 != 0 {
		for {
			bw := w.bitmap[s>>6] & (1<<uint(s&63) - 1)
			if bw == 0 {
				break
			}
			b := s>>6<<6 + bits.TrailingZeros64(bw)
			p := w.heads[b]
			if p == 0 {
				w.bitmap[s>>6] &^= 1 << uint(b&63)
				continue
			}
			i := p - 1
			if w.deads[i] {
				w.unlinkHead(b, i)
				w.bandDead--
				w.freeSlot(i)
				continue
			}
			return i, true
		}
	}
	return 0, false
}

// unlinkHead removes slot i, the head of bucket b's chain.
func (w *timerWheel) unlinkHead(b int, i int32) {
	w.heads[b] = w.nexts[i]
	if w.nexts[i] == 0 {
		w.tails[b] = 0
		w.bitmap[b>>6] &^= 1 << uint(b&63)
	}
}

// bandRemove unlinks slot i, known to be the head of its bucket chain.
func (w *timerWheel) bandRemove(i int32) {
	w.unlinkHead(w.bucket(w.expires[i]), i)
	w.bandLive--
}

// heapMin returns the earliest live heap slot without removing it,
// reaping dead tops.
func (w *timerWheel) heapMin() (int32, bool) {
	for len(w.heap) > 0 {
		i := w.heap[0]
		if !w.deads[i] {
			return i, true
		}
		w.heapPop()
		w.heapDead--
		w.freeSlot(i)
	}
	return 0, false
}

// advanceTo slides the band window up to now (bucket-aligned) and
// migrates newly covered heap entries into their buckets.
func (w *timerWheel) advanceTo(now sim.Time) {
	base := now &^ timerBucketAlign
	if base <= w.base {
		return
	}
	w.base = base
	for {
		i, ok := w.heapMin()
		if !ok {
			break
		}
		e := w.expires[i]
		if e < base || e-base >= timerBandSpan {
			break
		}
		w.heapPop()
		w.bandInsert(i)
	}
}

// expireTimers moves due timers to c's pending list and raises the timer
// softirq there, mirroring 2.4's "timers run as a bottom half on the CPU
// that took the tick". Due timers are drawn from both tiers in strict
// (expires, seq) order.
func (k *Kernel) expireTimers(c *KCPU) {
	w := k.timers
	now := k.Eng.Now()
	moved := false
	for {
		bi, bok := w.bandMin()
		hi, hok := w.heapMin()
		if !bok && !hok {
			break
		}
		useBand := bok && (!hok || w.slotLess(bi, hi))
		i := hi
		if useBand {
			i = bi
		}
		if w.expires[i] > now {
			break
		}
		if useBand {
			w.bandRemove(i)
		} else {
			w.heapPop()
		}
		t := w.owners[i]
		w.freeSlot(i)
		t.slot = -1
		w.live--
		w.pending[c.id] = append(w.pending[c.id], t)
		moved = true
	}
	w.advanceTo(now)
	if moved {
		c.RaiseSoftirq(SoftirqTimer)
	}
}

// runTimers is the TIMER softirq handler: it charges the dispatch cost
// and invokes each expired handler in softirq context.
func (k *Kernel) runTimers(env *Env) {
	c := env.cpu
	pend := k.timers.pending[c.id]
	k.timers.pending[c.id] = nil
	for _, t := range pend {
		env.Run(k.procTimerRun, func(x *cpu.Exec) {
			x.Instr(150, 0.2, 0.03)
		})
		if t.fn != nil {
			t.fn(env)
		}
	}
}
