package prof

import (
	"strings"
	"testing"

	"repro/internal/perf"
)

func buildCounters() (*perf.Counters, map[string]perf.Symbol) {
	tab := perf.NewSymbolTable()
	syms := map[string]perf.Symbol{
		"tcp_sendmsg": tab.Register("tcp_sendmsg", perf.BinEngine),
		"alloc_skb":   tab.Register("alloc_skb", perf.BinBufMgmt),
		"copy":        tab.Register("__copy_from_user_ll", perf.BinCopies),
		"irq":         tab.Register("IRQ0x19_interrupt", perf.BinDriver),
		"lock":        tab.Register("spin_lock", perf.BinLocks),
		"timer":       tab.Register("mod_timer", perf.BinTimers),
		"syscall":     tab.Register("system_call", perf.BinInterface),
		"idle":        tab.Register("cpu_idle", perf.BinIdle),
		"sched":       tab.Register("reschedule_interrupt", perf.BinOther),
	}
	c := perf.NewCounters(tab, 2)
	return c, syms
}

func TestBinTableSharesAndDerived(t *testing.T) {
	c, syms := buildCounters()
	// Engine: 600 cycles / 200 instr on cpu0 plus 400/100 on cpu1.
	c.Add(0, syms["tcp_sendmsg"], perf.Cycles, 600)
	c.Add(0, syms["tcp_sendmsg"], perf.Instructions, 200)
	c.Add(1, syms["tcp_sendmsg"], perf.Cycles, 400)
	c.Add(1, syms["tcp_sendmsg"], perf.Instructions, 100)
	c.Add(0, syms["tcp_sendmsg"], perf.LLCMisses, 3)
	c.Add(0, syms["tcp_sendmsg"], perf.Branches, 30)
	c.Add(0, syms["tcp_sendmsg"], perf.BranchMispredicts, 3)
	// Copies: 1000 cycles.
	c.Add(0, syms["copy"], perf.Cycles, 1000)
	c.Add(0, syms["copy"], perf.Instructions, 500)
	// Other (non-stack) bin work counts toward the denominator.
	c.Add(0, syms["sched"], perf.Cycles, 500)
	// Idle must NOT count.
	c.Add(1, syms["idle"], perf.Cycles, 100000)

	tab := NewBinTable(c)
	if tab.TotalCycles != 600+400+1000+500 {
		t.Fatalf("total busy cycles = %d, want 2500", tab.TotalCycles)
	}
	var engine, copies BinRow
	for _, r := range tab.Rows {
		switch r.Bin {
		case perf.BinEngine:
			engine = r
		case perf.BinCopies:
			copies = r
		}
	}
	if got := engine.PctCycles; got != 0.4 {
		t.Fatalf("engine share = %v, want 0.4", got)
	}
	if got := engine.CPI; got != 1000.0/300.0 {
		t.Fatalf("engine CPI = %v", got)
	}
	if got := engine.MPI; got != 3.0/300.0 {
		t.Fatalf("engine MPI = %v", got)
	}
	if got := engine.PctBranches; got != 0.1 {
		t.Fatalf("engine %%branches = %v", got)
	}
	if got := engine.PctMispredicted; got != 0.1 {
		t.Fatalf("engine %%mispredict = %v", got)
	}
	if copies.PctCycles != 0.4 {
		t.Fatalf("copies share = %v, want 0.4", copies.PctCycles)
	}
	// Overall aggregates only the seven stack bins: 2000/2500 = 0.8.
	if tab.Overall.PctCycles != 0.8 {
		t.Fatalf("overall share = %v, want 0.8", tab.Overall.PctCycles)
	}
	out := tab.Format()
	if !strings.Contains(out, "Engine") || !strings.Contains(out, "Overall") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestBinTableEmptyCounters(t *testing.T) {
	c, _ := buildCounters()
	tab := NewBinTable(c)
	if tab.TotalCycles != 0 {
		t.Fatal("empty counters have cycles")
	}
	for _, r := range tab.Rows {
		if r.PctCycles != 0 || r.CPI != 0 {
			t.Fatal("empty counters produced non-zero rows")
		}
	}
}

func TestTopSymbolsOrderingAndFilter(t *testing.T) {
	c, syms := buildCounters()
	c.Add(0, syms["tcp_sendmsg"], perf.MachineClears, 50)
	c.Add(0, syms["irq"], perf.MachineClears, 80)
	c.Add(0, syms["lock"], perf.MachineClears, 70) // excluded by bin filter
	c.Add(1, syms["tcp_sendmsg"], perf.MachineClears, 10)

	rows := TopSymbols(c, perf.MachineClears, []perf.Bin{perf.BinEngine, perf.BinDriver}, 5)
	if len(rows) != 2 {
		t.Fatalf("per-CPU groups = %d, want 2", len(rows))
	}
	cpu0 := rows[0]
	if len(cpu0) != 2 {
		t.Fatalf("cpu0 rows = %d, want 2 (lock filtered out)", len(cpu0))
	}
	if cpu0[0].Symbol != "IRQ0x19_interrupt" || cpu0[0].Count != 80 {
		t.Fatalf("cpu0 top = %+v, want irq/80", cpu0[0])
	}
	// Pct is the share among the listed population: the denominator sums
	// only symbols the bin filter admits (80 + 50), not the filtered-out
	// lock clears.
	if got := cpu0[0].Pct; got != 80.0/130.0 {
		t.Fatalf("pct = %v, want %v", got, 80.0/130.0)
	}
	if got := cpu0[1].Pct; got != 50.0/130.0 {
		t.Fatalf("pct = %v, want %v", got, 50.0/130.0)
	}
	if rows[1][0].Count != 10 {
		t.Fatalf("cpu1 top = %+v", rows[1][0])
	}
	out := FormatTopSymbols(rows, perf.MachineClears)
	if !strings.Contains(out, "CPU 0") || !strings.Contains(out, "IRQ0x19_interrupt") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestTopSymbolsLimit(t *testing.T) {
	c, syms := buildCounters()
	for _, s := range syms {
		c.Add(0, s, perf.MachineClears, 5)
	}
	rows := TopSymbols(c, perf.MachineClears, nil, 3)
	if len(rows[0]) != 3 {
		t.Fatalf("limit ignored: %d rows", len(rows[0]))
	}
}

func TestImpactIndicators(t *testing.T) {
	c, syms := buildCounters()
	// 10_000 busy cycles total.
	c.Add(0, syms["tcp_sendmsg"], perf.Cycles, 10_000)
	c.Add(0, syms["tcp_sendmsg"], perf.MachineClears, 10) // 10*500 = 50%
	c.Add(0, syms["tcp_sendmsg"], perf.LLCMisses, 10)     // 10*300 = 30%
	c.Add(0, syms["tcp_sendmsg"], perf.Instructions, 3000)
	c.Add(1, syms["idle"], perf.Cycles, 999_999) // excluded

	shares := ImpactIndicators(c)
	get := func(ev perf.Event) float64 {
		for _, s := range shares {
			if s.Event == ev {
				return s.Share
			}
		}
		t.Fatalf("event %v missing", ev)
		return 0
	}
	if got := get(perf.MachineClears); got != 0.5 {
		t.Fatalf("clears share = %v, want 0.5", got)
	}
	if got := get(perf.LLCMisses); got != 0.3 {
		t.Fatalf("llc share = %v, want 0.3", got)
	}
	// Instruction lower bound: 3000/3/10000 = 0.1.
	if got := get(perf.Instructions); got != 0.1 {
		t.Fatalf("instr share = %v, want 0.1", got)
	}
	out := FormatImpact(shares)
	if !strings.Contains(out, "machine_clear") || !strings.Contains(out, "Instr") {
		t.Fatalf("format incomplete:\n%s", out)
	}
	// The indicator cost table must be the paper's Figure 5 constants.
	costs := ImpactCosts()
	if costs[perf.MachineClears] != 500 || costs[perf.LLCMisses] != 300 || costs[perf.DTLBWalks] != 36 {
		t.Fatalf("impact cost table diverges from the paper: %v", costs)
	}
}

func TestPerCPUBinTables(t *testing.T) {
	c, syms := buildCounters()
	c.Add(0, syms["tcp_sendmsg"], perf.Cycles, 800)
	c.Add(0, syms["tcp_sendmsg"], perf.Instructions, 400)
	c.Add(1, syms["copy"], perf.Cycles, 600)
	c.Add(1, syms["copy"], perf.Instructions, 100)
	tabs := PerCPUBinTables(c)
	if len(tabs) != 2 {
		t.Fatalf("tables = %d, want 2", len(tabs))
	}
	// CPU0: all cycles in engine; CPU1: all in copies.
	for _, r := range tabs[0].Rows {
		switch r.Bin {
		case perf.BinEngine:
			if r.PctCycles != 1.0 {
				t.Errorf("cpu0 engine share %v", r.PctCycles)
			}
		case perf.BinCopies:
			if r.PctCycles != 0 {
				t.Errorf("cpu0 copies share %v", r.PctCycles)
			}
		}
	}
	for _, r := range tabs[1].Rows {
		if r.Bin == perf.BinCopies && r.CPI != 6 {
			t.Errorf("cpu1 copies CPI %v, want 6", r.CPI)
		}
	}
	if tabs[0].TotalCycles != 800 || tabs[1].TotalCycles != 600 {
		t.Fatalf("per-cpu totals wrong: %d/%d", tabs[0].TotalCycles, tabs[1].TotalCycles)
	}
}
