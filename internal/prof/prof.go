// Package prof turns the simulated PMU counter file into the paper's
// measurement artifacts, playing the role Oprofile 0.7 plays in the
// study: per-symbol and per-CPU event accounting, aggregation into the
// seven functional bins, and derived metrics (CPI, MPI, branch ratios,
// event-cost shares).
//
// The simulator counts events exactly rather than sampling them; a
// statistical sampler converges to these distributions over the paper's
// long steady-state runs (§4). The one sampling artifact that matters —
// attribution "skid" of interrupt-caused machine clears into the
// interrupted code — is modelled at event-generation time in the kernel.
package prof

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/perf"
)

// BinRow is one row of the paper's Table 1: a functional bin's share of
// cycles and its derived ratios.
type BinRow struct {
	Bin perf.Bin
	// PctCycles is the bin's share of all busy (non-idle) cycles.
	PctCycles float64
	// CPI is cycles per instruction.
	CPI float64
	// MPI is last-level cache misses per instruction.
	MPI float64
	// PctBranches is branches per instruction.
	PctBranches float64
	// PctMispredicted is mispredicted branches per branch.
	PctMispredicted float64

	Cycles, Instr, Misses, Branches, Mispredicts, Clears uint64
}

// BinTable is a full baseline characterization: the seven stack bins plus
// the Overall row (which aggregates exactly those bins, as the paper's
// Overall rows do).
type BinTable struct {
	Rows    []BinRow
	Overall BinRow
	// TotalCycles is the busy-cycle denominator (all bins except idle).
	TotalCycles uint64
}

// NewBinTable builds Table-1 style rows from a counter file.
func NewBinTable(c *perf.Counters) BinTable {
	var t BinTable
	var total uint64
	for b := perf.Bin(0); b < perf.NumBins; b++ {
		if b == perf.BinIdle {
			continue
		}
		total += c.BinTotal(b, perf.Cycles)
	}
	t.TotalCycles = total

	sum := BinRow{Bin: -1}
	for _, b := range perf.StackBins() {
		row := binRow(c, b, total)
		t.Rows = append(t.Rows, row)
		sum.Cycles += row.Cycles
		sum.Instr += row.Instr
		sum.Misses += row.Misses
		sum.Branches += row.Branches
		sum.Mispredicts += row.Mispredicts
		sum.Clears += row.Clears
	}
	sum.derive(total)
	t.Overall = sum
	return t
}

func binRow(c *perf.Counters, b perf.Bin, total uint64) BinRow {
	row := BinRow{
		Bin:         b,
		Cycles:      c.BinTotal(b, perf.Cycles),
		Instr:       c.BinTotal(b, perf.Instructions),
		Misses:      c.BinTotal(b, perf.LLCMisses),
		Branches:    c.BinTotal(b, perf.Branches),
		Mispredicts: c.BinTotal(b, perf.BranchMispredicts),
		Clears:      c.BinTotal(b, perf.MachineClears),
	}
	row.derive(total)
	return row
}

func (r *BinRow) derive(total uint64) {
	if total > 0 {
		r.PctCycles = float64(r.Cycles) / float64(total)
	}
	if r.Instr > 0 {
		r.CPI = float64(r.Cycles) / float64(r.Instr)
		r.MPI = float64(r.Misses) / float64(r.Instr)
		r.PctBranches = float64(r.Branches) / float64(r.Instr)
	}
	if r.Branches > 0 {
		r.PctMispredicted = float64(r.Mispredicts) / float64(r.Branches)
	}
}

// Format renders the table in the paper's Table 1 layout.
func (t BinTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %7s %8s %10s %14s\n",
		"Bin", "% Cycles", "CPI", "MPI", "% Branches", "% Br mispred")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %8.1f%% %7.2f %8.4f %9.2f%% %13.2f%%\n",
			r.Bin, 100*r.PctCycles, r.CPI, r.MPI, 100*r.PctBranches, 100*r.PctMispredicted)
	}
	r := t.Overall
	fmt.Fprintf(&b, "%-10s %8.1f%% %7.2f %8.4f %9.2f%% %13.2f%%\n",
		"Overall", 100*r.PctCycles, r.CPI, r.MPI, 100*r.PctBranches, 100*r.PctMispredicted)
	return b.String()
}

// SymbolCount is one symbol's count of some event on one CPU.
type SymbolCount struct {
	CPU    int
	Symbol string
	Bin    perf.Bin
	Count  uint64
	// Pct is the share of the event among the listed population.
	Pct float64
}

// TopSymbols returns, per CPU, the highest-count symbols for ev,
// restricted to the given bins (nil = all), mirroring the paper's Table 4
// per-CPU machine-clear listing. n limits rows per CPU.
func TopSymbols(c *perf.Counters, ev perf.Event, bins []perf.Bin, n int) [][]SymbolCount {
	binOK := func(b perf.Bin) bool {
		if bins == nil {
			return true
		}
		for _, x := range bins {
			if x == b {
				return true
			}
		}
		return false
	}
	tab := c.Table()
	out := make([][]SymbolCount, c.CPUs())
	for cpuID := 0; cpuID < c.CPUs(); cpuID++ {
		var rows []SymbolCount
		// Pct is a share of the *listed population*: the denominator only
		// sums symbols the bin filter admits, so a Table-4 style listing
		// restricted to two bins reports those symbols' split of their own
		// events rather than under-reporting against the machine total.
		var cpuTotal uint64
		for _, s := range tab.Symbols() {
			if binOK(tab.Info(s).Bin) {
				cpuTotal += c.Get(cpuID, s, ev)
			}
		}
		for _, s := range tab.Symbols() {
			info := tab.Info(s)
			if !binOK(info.Bin) {
				continue
			}
			cnt := c.Get(cpuID, s, ev)
			if cnt == 0 {
				continue
			}
			rows = append(rows, SymbolCount{
				CPU:    cpuID,
				Symbol: info.Name,
				Bin:    info.Bin,
				Count:  cnt,
				Pct:    pct(cnt, cpuTotal),
			})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Count != rows[j].Count {
				return rows[i].Count > rows[j].Count
			}
			return rows[i].Symbol < rows[j].Symbol
		})
		if n > 0 && len(rows) > n {
			rows = rows[:n]
		}
		out[cpuID] = rows
	}
	return out
}

func pct(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// FormatTopSymbols renders a Table-4 style listing.
func FormatTopSymbols(rows [][]SymbolCount, ev perf.Event) string {
	var b strings.Builder
	for cpuID, list := range rows {
		fmt.Fprintf(&b, "CPU %d (%s)\n", cpuID, ev)
		fmt.Fprintf(&b, "  %10s %7s  %s\n", "count", "%", "symbol")
		for _, r := range list {
			fmt.Fprintf(&b, "  %10d %6.2f%%  %s\n", r.Count, 100*r.Pct, r.Symbol)
		}
	}
	return b.String()
}

// EventShare is one row of the paper's Figure 5: the share of run time a
// first-order penalty model attributes to an event.
type EventShare struct {
	Event perf.Event
	Cost  uint64
	Count uint64
	// Share is count*cost / total cycles.
	Share float64
}

// ImpactCosts is the paper's Figure 5 cost table (cycles per event).
func ImpactCosts() map[perf.Event]uint64 {
	return map[perf.Event]uint64{
		perf.MachineClears:     500,
		perf.TCMisses:          20,
		perf.L2Misses:          10,
		perf.LLCMisses:         300,
		perf.ITLBWalks:         30,
		perf.DTLBWalks:         36,
		perf.BranchMispredicts: 30,
	}
}

// ImpactIndicators computes Figure 5: the percentage of all busy cycles
// attributed to each monitored event, plus the theoretical-minimum
// instruction row (instructions × 0.33 CPI).
func ImpactIndicators(c *perf.Counters) []EventShare {
	var busy uint64
	for b := perf.Bin(0); b < perf.NumBins; b++ {
		if b == perf.BinIdle {
			continue
		}
		busy += c.BinTotal(b, perf.Cycles)
	}
	costs := ImpactCosts()
	order := []perf.Event{
		perf.MachineClears, perf.TCMisses, perf.L2Misses, perf.LLCMisses,
		perf.ITLBWalks, perf.DTLBWalks, perf.BranchMispredicts,
	}
	var out []EventShare
	for _, ev := range order {
		cnt := c.Total(ev)
		share := 0.0
		if busy > 0 {
			share = float64(cnt*costs[ev]) / float64(busy)
		}
		out = append(out, EventShare{Event: ev, Cost: costs[ev], Count: cnt, Share: share})
	}
	instr := c.Total(perf.Instructions)
	instrShare := 0.0
	if busy > 0 {
		instrShare = float64(instr) / 3 / float64(busy)
	}
	out = append(out, EventShare{Event: perf.Instructions, Cost: 0, Count: instr, Share: instrShare})
	return out
}

// FormatImpact renders a Figure-5 style column.
func FormatImpact(shares []EventShare) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %12s %8s\n", "Event", "Cost", "Count", "% Time")
	for _, s := range shares {
		name := s.Event.String()
		cost := fmt.Sprintf("%d", s.Cost)
		if s.Event == perf.Instructions {
			name = "Instr"
			cost = "0.33"
		}
		fmt.Fprintf(&b, "%-14s %6s %12d %7.1f%%\n", name, cost, s.Count, 100*s.Share)
	}
	return b.String()
}

// PerCPUBinTables builds one Table-1 style characterization per CPU,
// which is how the paper localizes behaviour ("a per-cpu view of
// Oprofile results is useful", §6.3).
func PerCPUBinTables(c *perf.Counters) []BinTable {
	out := make([]BinTable, c.CPUs())
	for cpuID := range out {
		out[cpuID] = perCPUBinTable(c, cpuID)
	}
	return out
}

func perCPUBinTable(c *perf.Counters, cpuID int) BinTable {
	var t BinTable
	var total uint64
	for b := perf.Bin(0); b < perf.NumBins; b++ {
		if b == perf.BinIdle {
			continue
		}
		total += c.BinCPUTotal(cpuID, b, perf.Cycles)
	}
	t.TotalCycles = total
	sum := BinRow{Bin: -1}
	for _, b := range perf.StackBins() {
		row := BinRow{
			Bin:         b,
			Cycles:      c.BinCPUTotal(cpuID, b, perf.Cycles),
			Instr:       c.BinCPUTotal(cpuID, b, perf.Instructions),
			Misses:      c.BinCPUTotal(cpuID, b, perf.LLCMisses),
			Branches:    c.BinCPUTotal(cpuID, b, perf.Branches),
			Mispredicts: c.BinCPUTotal(cpuID, b, perf.BranchMispredicts),
			Clears:      c.BinCPUTotal(cpuID, b, perf.MachineClears),
		}
		row.derive(total)
		t.Rows = append(t.Rows, row)
		sum.Cycles += row.Cycles
		sum.Instr += row.Instr
		sum.Misses += row.Misses
		sum.Branches += row.Branches
		sum.Mispredicts += row.Mispredicts
		sum.Clears += row.Clears
	}
	sum.derive(total)
	t.Overall = sum
	return t
}
