package fault

import (
	"repro/internal/apic"
	"repro/internal/netdev"
	"repro/internal/sim"
	"repro/internal/trace"
)

// recoveryProbePeriod is how often a recovering link is polled for its
// first post-flap frame, and recoveryProbeCap bounds how long the
// probe keeps looking before giving up (a retransmission stack that
// never recovers is an invariant failure, not a metric).
const (
	recoveryProbePeriod = 200_000        // 100 µs at 2 GHz
	recoveryProbeCap    = 50_000_000_000 // 25 s at 2 GHz
)

// Injector owns a run's installed faults: the per-NIC wire-fault
// composites and the engine events driving window transitions. Build
// one with Attach at machine-assembly time, before the engine runs.
type Injector struct {
	eng        *sim.Engine
	rec        *trace.Recorder
	nics       []*netdev.NIC
	io         *apic.IOAPIC
	recoveries []uint64
	probing    int
}

// Attach installs the schedule on the machine: wire-fault composites
// on every targeted NIC, plus engine events for flap, stall and storm
// transitions. The schedule must already be validated. An empty
// schedule returns nil without touching anything — the clean baseline
// schedules no events and draws no randomness.
func Attach(s *Schedule, eng *sim.Engine, rec *trace.Recorder, nics []*netdev.NIC, io *apic.IOAPIC) *Injector {
	if s.Empty() {
		return nil
	}
	inj := &Injector{eng: eng, rec: rec, nics: nics, io: io}
	wires := make([]*nicFaults, len(nics))
	for i := range s.Events {
		e := &s.Events[i]
		for _, n := range inj.targets(e) {
			if wireKind(e.Kind) {
				if wires[n] == nil {
					wires[n] = &nicFaults{}
				}
				wires[n].events = append(wires[n].events, &wireEvent{ev: e})
				inj.traceAt(e.From, -1, string(e.Kind)+"-on", n, 0)
				if e.Until != 0 {
					inj.traceAt(e.Until, -1, string(e.Kind)+"-off", n, 0)
				}
				continue
			}
			inj.schedule(e, n)
		}
	}
	for n, w := range wires {
		if w != nil {
			nics[n].SetWireFault(w)
		}
	}
	return inj
}

// targets expands an event's NIC field: -1 means every device.
func (inj *Injector) targets(e *Event) []int {
	if e.NIC >= 0 {
		return []int{e.NIC}
	}
	all := make([]int, len(inj.nics))
	for i := range all {
		all[i] = i
	}
	return all
}

// traceAt emits a fault timeline instant at virtual time t. Nothing is
// scheduled when tracing is off, keeping traced and untraced runs
// identical in event count only for the clean baseline — faulted runs
// are compared against faulted runs of the same trace setting.
func (inj *Injector) traceAt(t uint64, cpu int, kind string, nic int, arg int64) {
	if !inj.rec.Enabled() {
		return
	}
	inj.eng.At(sim.Time(t), func() {
		inj.rec.Fault(inj.eng.Now(), cpu, kind, nic, arg)
	})
}

// schedule installs the engine events for one non-wire fault on NIC n.
func (inj *Injector) schedule(e *Event, n int) {
	switch e.Kind {
	case KindFlap:
		nic := inj.nics[n]
		inj.eng.At(sim.Time(e.From), func() {
			nic.SetLinkUp(false)
			inj.rec.Fault(inj.eng.Now(), -1, "flap-down", n, 0)
		})
		if e.Until != 0 {
			inj.eng.At(sim.Time(e.Until), func() {
				nic.SetLinkUp(true)
				inj.rec.Fault(inj.eng.Now(), -1, "flap-up", n, 0)
				inj.probeRecovery(nic, n, inj.eng.Now())
			})
		}
	case KindStall:
		nic := inj.nics[n]
		inj.eng.At(sim.Time(e.From), func() {
			nic.SetDMAStalled(true)
			inj.rec.Fault(inj.eng.Now(), -1, "dma-stall", n, 0)
		})
		if e.Until != 0 {
			inj.eng.At(sim.Time(e.Until), func() {
				nic.SetDMAStalled(false)
				inj.rec.Fault(inj.eng.Now(), -1, "dma-resume", n, 0)
			})
		}
	case KindStorm:
		vec := inj.nics[n].QueueVector(0)
		period := sim.Cycles(e.PeriodCycles)
		var tick func()
		tick = func() {
			now := inj.eng.Now()
			if e.Until != 0 && uint64(now) >= e.Until {
				inj.rec.Fault(now, e.CPU, "storm-end", -1, int64(vec))
				return
			}
			inj.io.InjectSpurious(e.CPU, vec)
			inj.eng.After(period, tick)
		}
		inj.eng.At(sim.Time(e.From), func() {
			inj.rec.Fault(inj.eng.Now(), e.CPU, "storm-start", -1, int64(vec))
			tick()
		})
	}
}

// probeRecovery polls the revived link until traffic moves again,
// recording the gap between link-up and the first frame in either
// direction — the stack's recovery time (retransmission timers firing,
// the window reopening).
func (inj *Injector) probeRecovery(nic *netdev.NIC, n int, up sim.Time) {
	base := nic.TxFrames + nic.RxFrames
	inj.probing++
	var poll func()
	poll = func() {
		now := inj.eng.Now()
		if nic.TxFrames+nic.RxFrames > base {
			d := uint64(now - up)
			inj.recoveries = append(inj.recoveries, d)
			inj.probing--
			inj.rec.Fault(now, -1, "flap-recovered", n, int64(d))
			return
		}
		if uint64(now-up) >= recoveryProbeCap {
			inj.probing--
			return
		}
		inj.eng.After(recoveryProbePeriod, poll)
	}
	inj.eng.After(recoveryProbePeriod, poll)
}

// Recoveries returns the completed flap-recovery durations in cycles,
// in link-up order. A flap whose traffic never resumed (or whose
// probe is still polling) contributes nothing.
func (inj *Injector) Recoveries() []uint64 {
	if inj == nil {
		return nil
	}
	return inj.recoveries
}

// wireEvent is one loss/burst/delay event plus its mutable chain
// state; nicFaults composes every wire event targeting one NIC into
// the netdev.WireFault the device consults per frame.
type wireEvent struct {
	ev  *Event
	bad bool // Gilbert-Elliott state
}

type nicFaults struct {
	events []*wireEvent
}

func (w *wireEvent) active(now sim.Time) bool {
	t := uint64(now)
	return t >= w.ev.From && (w.ev.Until == 0 || t < w.ev.Until)
}

// Drop consults every active loss event for this frame. All events are
// evaluated — burst chains advance once per observed frame regardless
// of whether an earlier event already doomed it — so the random stream
// consumed is a pure function of the frame sequence.
func (w *nicFaults) Drop(now sim.Time, rng *sim.RNG, rx bool) bool {
	drop := false
	for _, e := range w.events {
		if !e.active(now) {
			continue
		}
		switch e.ev.Kind {
		case KindLoss:
			if rng.Bernoulli(e.ev.Rate) {
				drop = true
			}
		case KindBurst:
			if e.bad {
				if rng.Bernoulli(e.ev.PExitBad) {
					e.bad = false
				}
			} else {
				if rng.Bernoulli(e.ev.PEnterBad) {
					e.bad = true
				}
			}
			p := e.ev.Rate
			if e.bad {
				p = e.ev.BadRate
			}
			if rng.Bernoulli(p) {
				drop = true
			}
		}
	}
	return drop
}

// ExtraDelay sums the active delay events' contributions: the fixed
// component plus a uniform draw in [0, jitter]. Frames with unequal
// draws reorder, bounded by the jitter window.
func (w *nicFaults) ExtraDelay(now sim.Time, rng *sim.RNG, rx bool) uint64 {
	var d uint64
	for _, e := range w.events {
		if !e.active(now) || e.ev.Kind != KindDelay {
			continue
		}
		d += e.ev.DelayCycles
		if j := e.ev.JitterCycles; j > 0 {
			d += rng.Uint64() % (j + 1)
		}
	}
	return d
}
