package fault

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string // substring of the error
	}{
		{"unknown kind", Event{Kind: "gremlin"}, "unknown fault kind"},
		{"loss rate high", Event{Kind: KindLoss, NIC: -1, Rate: 1.5}, "outside [0,1]"},
		{"loss rate zero", Event{Kind: KindLoss, NIC: -1}, "does nothing"},
		{"burst inert", Event{Kind: KindBurst, NIC: -1, BadRate: 1}, "never enters"},
		{"burst bad prob", Event{Kind: KindBurst, NIC: -1, PEnterBad: -0.1}, "outside [0,1]"},
		{"nic out of range", Event{Kind: KindFlap, NIC: 4, From: 1, Until: 2}, "outside machine"},
		{"nic below -1", Event{Kind: KindLoss, NIC: -2, Rate: 0.1}, "outside machine"},
		{"empty window", Event{Kind: KindFlap, NIC: 0, From: 10, Until: 10}, "is empty"},
		{"inverted window", Event{Kind: KindFlap, NIC: 0, From: 10, Until: 5}, "is empty"},
		{"beyond horizon", Event{Kind: KindFlap, NIC: 0, From: 2000, Until: 3000}, "beyond"},
		{"delay inert", Event{Kind: KindDelay, NIC: 0}, "no delay_cycles"},
		{"storm no period", Event{Kind: KindStorm, NIC: 0, CPU: 0}, "period_cycles"},
		{"storm cpu range", Event{Kind: KindStorm, NIC: 0, CPU: 7, PeriodCycles: 5}, "cpu 7 outside"},
		{"storm nic wildcard", Event{Kind: KindStorm, NIC: -1, CPU: 0, PeriodCycles: 5}, "must name one device"},
	}
	for _, c := range cases {
		s := &Schedule{Events: []Event{c.ev}}
		err := s.Validate(4, 4, 1000)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestValidateAcceptsGoodSchedule(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindLoss, NIC: -1, Rate: 0.01},
		{Kind: KindBurst, NIC: 0, PEnterBad: 0.01, PExitBad: 0.3, BadRate: 0.9},
		{Kind: KindFlap, NIC: 1, From: 100, Until: 200},
		{Kind: KindDelay, NIC: -1, DelayCycles: 500, JitterCycles: 100},
		{Kind: KindStall, NIC: 2, From: 50, Until: 60},
		{Kind: KindStorm, NIC: 0, CPU: 3, From: 10, PeriodCycles: 1000},
	}}
	if err := s.Validate(4, 4, 1000); err != nil {
		t.Fatal(err)
	}
	var nilSched *Schedule
	if err := nilSched.Validate(0, 0, 0); err != nil {
		t.Fatalf("nil schedule: %v", err)
	}
	if !nilSched.Empty() || !(&Schedule{}).Empty() {
		t.Fatal("empty schedules not Empty")
	}
}

func TestParseInlineSpec(t *testing.T) {
	s, err := Parse("flap,nic=0,from=1e9,until=1.5e9; loss,rate=0.01 ;storm,cpu=1,period=250000,until=2e9")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: KindFlap, NIC: 0, From: 1_000_000_000, Until: 1_500_000_000},
		{Kind: KindLoss, NIC: -1, Rate: 0.01},
		{Kind: KindStorm, NIC: 0, CPU: 1, PeriodCycles: 250_000, Until: 2_000_000_000},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("parsed %+v, want %+v", s.Events, want)
	}
	for _, bad := range []string{"loss,rate", "loss,rate=x", "loss,zorp=1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) did not fail", bad)
		}
	}
	if s, err := Parse("  "); err != nil || len(s.Events) != 0 {
		t.Fatalf("blank spec: %v, %+v", err, s)
	}
}

func TestParseJSONFile(t *testing.T) {
	want := &Schedule{Events: []Event{
		{Kind: KindBurst, NIC: 1, PEnterBad: 0.02, PExitBad: 0.25, BadRate: 0.8, From: 5},
	}}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Parse("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip %+v, want %+v", got, want)
	}
	if _, err := Parse("@" + path + ".missing"); err == nil {
		t.Fatal("missing file did not fail")
	}
}

// The Gilbert-Elliott chain must be deterministic under a seed and
// actually bursty: drops cluster while the chain sits in the bad
// state instead of scattering independently.
func TestBurstLossIsDeterministicAndBursty(t *testing.T) {
	run := func(seed uint64) []bool {
		rng := sim.NewRNG(seed)
		w := &nicFaults{events: []*wireEvent{{ev: &Event{
			Kind: KindBurst, PEnterBad: 0.02, PExitBad: 0.2, BadRate: 1.0,
		}}}}
		out := make([]bool, 5000)
		for i := range out {
			out[i] = w.Drop(sim.Time(i), rng, true)
		}
		return out
	}
	a, b := run(11), run(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different drop sequences")
	}
	drops, runs := 0, 0
	for i, d := range a {
		if d {
			drops++
			if i == 0 || !a[i-1] {
				runs++
			}
		}
	}
	if drops == 0 {
		t.Fatal("chain never dropped")
	}
	// BadRate 1.0 and mean bad-state dwell of 5 frames: far fewer
	// distinct runs than drops means the losses are correlated.
	if runs*2 >= drops {
		t.Fatalf("%d drops in %d runs — not bursty", drops, runs)
	}
	if c := run(12); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestDelayJitterBounded(t *testing.T) {
	rng := sim.NewRNG(3)
	w := &nicFaults{events: []*wireEvent{{ev: &Event{
		Kind: KindDelay, DelayCycles: 1000, JitterCycles: 400, From: 10, Until: 20,
	}}}}
	varied := false
	var prev uint64
	for i := 0; i < 200; i++ {
		d := w.ExtraDelay(15, rng, false)
		if d < 1000 || d > 1400 {
			t.Fatalf("delay %d outside [1000, 1400]", d)
		}
		if i > 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Fatal("jitter never varied")
	}
	if d := w.ExtraDelay(25, rng, false); d != 0 {
		t.Fatalf("delay %d outside window", d)
	}
	if w.Drop(15, rng, true) {
		t.Fatal("delay event dropped a frame")
	}
}

// Outside every window the composite consumes no randomness, so a
// schedule whose windows have passed perturbs nothing downstream.
func TestInactiveWindowDrawsNothing(t *testing.T) {
	rng := sim.NewRNG(5)
	w := &nicFaults{events: []*wireEvent{
		{ev: &Event{Kind: KindLoss, Rate: 1.0, From: 100, Until: 200}},
		{ev: &Event{Kind: KindBurst, PEnterBad: 1, PExitBad: 0, BadRate: 1, From: 100, Until: 200}},
	}}
	before := rng.Uint64()
	_ = before
	probe := sim.NewRNG(5)
	probe.Uint64()
	if w.Drop(50, probe, true) {
		t.Fatal("dropped outside window")
	}
	if got, want := probe.Uint64(), rng.Uint64(); got != want {
		t.Fatal("inactive window consumed randomness")
	}
}
