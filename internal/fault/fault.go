// Package fault is the deterministic fault-injection subsystem: a
// validated schedule of typed degradation events — link flaps, bursty
// (Gilbert-Elliott) loss, wire delay with jitter, NIC DMA stalls,
// per-CPU interrupt storms — executed by the simulation engine at
// configured virtual times. Every random decision draws from the run's
// seeded RNG, so a faulted run is bit-reproducible across the serial
// and parallel runners and the result cache.
//
// The paper's LAN is loss-free and its runs are steady-state; this
// layer exists to characterize how the affinity modes degrade when the
// network is not cooperating, and to drive the post-run resource
// invariant checks (no leaked buffers, no armed retransmission timers)
// that a clean run never exercises.
package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Kind names one fault type.
type Kind string

const (
	// KindLoss drops each wire frame independently with probability
	// Rate during the window (both directions).
	KindLoss Kind = "loss"
	// KindBurst is Gilbert-Elliott two-state loss: a per-frame Markov
	// chain moves between a good state (drop probability Rate, usually
	// zero) and a bad state (drop probability BadRate) with transition
	// probabilities PEnterBad and PExitBad, producing correlated drop
	// bursts rather than independent losses.
	KindBurst Kind = "burst"
	// KindFlap takes the link down at From and back up at Until; every
	// frame reaching the wire while down is dropped and counted.
	KindFlap Kind = "flap"
	// KindDelay adds DelayCycles plus a uniform jitter in
	// [0, JitterCycles] to each frame's wire propagation during the
	// window; unequal jitter draws reorder frames within that bound.
	KindDelay Kind = "delay"
	// KindStall freezes the NIC's receive DMA engine from From to
	// Until: frames arriving off the wire are held (or overflow the
	// ring) and flushed in FIFO order on resume.
	KindStall Kind = "stall"
	// KindStorm injects a spurious delivery of NIC's interrupt vector
	// directly to CPU every PeriodCycles during the window, bypassing
	// the affinity mask; the handler finds no work, so the cost is pure
	// interrupt overhead on the victim processor.
	KindStorm Kind = "storm"
)

// Event is one scheduled fault. Which fields matter depends on Kind;
// Validate rejects nonsense combinations. All times are virtual cycles
// from the start of the run (warmup included).
type Event struct {
	Kind Kind `json:"kind"`
	// NIC is the target device. -1 targets every NIC (wire faults
	// only); KindStorm names the device whose vector is injected.
	NIC int `json:"nic"`
	// CPU is the storm's victim processor; ignored by other kinds.
	CPU int `json:"cpu"`
	// From and Until bound the active window in cycles. Until == 0
	// means "until the end of the run".
	From  uint64 `json:"from"`
	Until uint64 `json:"until"`
	// Rate is the drop probability (loss; burst good state).
	Rate float64 `json:"rate"`
	// BadRate, PEnterBad, PExitBad parameterize the burst chain.
	BadRate   float64 `json:"bad_rate"`
	PEnterBad float64 `json:"p_enter_bad"`
	PExitBad  float64 `json:"p_exit_bad"`
	// DelayCycles and JitterCycles parameterize KindDelay.
	DelayCycles  uint64 `json:"delay_cycles"`
	JitterCycles uint64 `json:"jitter_cycles"`
	// PeriodCycles is the storm's injection interval.
	PeriodCycles uint64 `json:"period_cycles"`
}

// Schedule is a validated list of fault events. A nil or empty
// schedule is the clean baseline: nothing is installed, nothing is
// scheduled, and no random numbers are drawn, so runs with an empty
// schedule are byte-identical to runs before this package existed.
type Schedule struct {
	Events []Event `json:"events"`
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// wireKind reports whether k acts on the wire path of a NIC.
func wireKind(k Kind) bool {
	switch k {
	case KindLoss, KindBurst, KindDelay:
		return true
	}
	return false
}

func probRange(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("%s %g outside [0,1]", name, p)
	}
	return nil
}

// Validate checks every event against the machine shape and run
// horizon (total cycles; 0 = unknown). It returns the first problem
// found, prefixed with the offending event's index.
func (s *Schedule) Validate(numNICs, numCPUs int, horizonCycles uint64) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if err := e.validate(numNICs, numCPUs, horizonCycles); err != nil {
			return fmt.Errorf("fault event %d (%s): %w", i, e.Kind, err)
		}
	}
	return nil
}

func (e *Event) validate(numNICs, numCPUs int, horizonCycles uint64) error {
	switch e.Kind {
	case KindLoss:
		if err := probRange("rate", e.Rate); err != nil {
			return err
		}
		if e.Rate == 0 {
			return fmt.Errorf("loss with rate 0 does nothing")
		}
	case KindBurst:
		for _, p := range []struct {
			name string
			v    float64
		}{{"rate", e.Rate}, {"bad_rate", e.BadRate}, {"p_enter_bad", e.PEnterBad}, {"p_exit_bad", e.PExitBad}} {
			if err := probRange(p.name, p.v); err != nil {
				return err
			}
		}
		if e.PEnterBad == 0 && e.Rate == 0 {
			return fmt.Errorf("burst never enters the bad state and good-state rate is 0")
		}
	case KindFlap, KindStall:
		// Window-only faults; checked below.
	case KindDelay:
		if e.DelayCycles == 0 && e.JitterCycles == 0 {
			return fmt.Errorf("delay with no delay_cycles or jitter_cycles")
		}
	case KindStorm:
		if e.PeriodCycles == 0 {
			return fmt.Errorf("storm needs period_cycles > 0")
		}
		if e.CPU < 0 || e.CPU >= numCPUs {
			return fmt.Errorf("cpu %d outside machine (0..%d)", e.CPU, numCPUs-1)
		}
		if e.NIC < 0 || e.NIC >= numNICs {
			return fmt.Errorf("storm nic %d must name one device (0..%d)", e.NIC, numNICs-1)
		}
	default:
		return fmt.Errorf("unknown fault kind %q", e.Kind)
	}
	if e.Kind != KindStorm {
		if e.NIC < -1 || e.NIC >= numNICs {
			return fmt.Errorf("nic %d outside machine (-1 for all, 0..%d)", e.NIC, numNICs-1)
		}
	}
	if e.Until != 0 && e.Until <= e.From {
		return fmt.Errorf("window [%d, %d) is empty", e.From, e.Until)
	}
	if horizonCycles != 0 && e.From >= horizonCycles {
		return fmt.Errorf("window starts at %d, beyond the %d-cycle run", e.From, horizonCycles)
	}
	return nil
}

// Parse builds a schedule from a spec string. A spec beginning with
// "@" names a JSON file holding a Schedule; anything else is the
// inline form: semicolon-separated events, each a kind followed by
// comma-separated key=value pairs, e.g.
//
//	flap,nic=0,from=1e9,until=1.5e9;loss,rate=0.01
//
// Keys: nic, cpu, from, until, rate, bad, penter, pexit, delay,
// jitter, period. Numbers accept scientific notation (cycle values are
// truncated to integers). An omitted nic means every NIC. The result
// is not validated — callers hold the machine shape.
func Parse(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return &Schedule{}, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("fault: reading schedule: %w", err)
		}
		var s Schedule
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("fault: parsing %s: %w", spec[1:], err)
		}
		return &s, nil
	}
	var s Schedule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, fmt.Errorf("fault: event %q: %w", part, err)
		}
		s.Events = append(s.Events, ev)
	}
	return &s, nil
}

func parseEvent(part string) (Event, error) {
	fields := strings.Split(part, ",")
	ev := Event{Kind: Kind(strings.TrimSpace(fields[0])), NIC: -1}
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return ev, fmt.Errorf("%q is not key=value", f)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return ev, fmt.Errorf("%s: %v", key, err)
		}
		switch strings.TrimSpace(key) {
		case "nic":
			ev.NIC = int(x)
		case "cpu":
			ev.CPU = int(x)
		case "from":
			ev.From = uint64(x)
		case "until":
			ev.Until = uint64(x)
		case "rate":
			ev.Rate = x
		case "bad":
			ev.BadRate = x
		case "penter":
			ev.PEnterBad = x
		case "pexit":
			ev.PExitBad = x
		case "delay":
			ev.DelayCycles = uint64(x)
		case "jitter":
			ev.JitterCycles = uint64(x)
		case "period":
			ev.PeriodCycles = uint64(x)
		default:
			return ev, fmt.Errorf("unknown key %q", key)
		}
	}
	if ev.Kind == KindStorm && ev.NIC == -1 {
		ev.NIC = 0
	}
	return ev, nil
}
