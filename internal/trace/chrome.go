package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Chrome trace-event phase characters used by the exporter.
const (
	phaseBegin    = "B"
	phaseEnd      = "E"
	phaseComplete = "X"
	phaseInstant  = "i"
	phaseMeta     = "M"
)

// Synthetic process IDs grouping the tracks: one "process" holding all
// CPU timelines and one holding all NIC timelines.
const (
	pidCPU = 1
	pidNIC = 2
)

// softirqNames mirrors kern's Softirq numbering for track labels.
var softirqNames = []string{"softirq timer", "softirq net_tx", "softirq net_rx"}

// irqKindNames mirrors apic.Kind numbering.
var irqKindNames = []string{"device", "ipi", "timer"}

func softirqName(v int64) string {
	if v >= 0 && int(v) < len(softirqNames) {
		return softirqNames[v]
	}
	return fmt.Sprintf("softirq %d", v)
}

func irqKindName(v int64) string {
	if v >= 0 && int(v) < len(irqKindNames) {
		return irqKindNames[v]
	}
	return fmt.Sprintf("kind%d", v)
}

// WriteChrome exports the recorder's timeline as Chrome trace-event JSON
// (the "JSON Array Format" with a traceEvents wrapper), loadable in
// Perfetto or chrome://tracing. clockHz converts virtual cycles to trace
// microseconds. Tracks: one thread per CPU under a "cpu" process, one
// thread per NIC under a "nic" process. Handler and softirq activity
// become nested B/E spans; contended lock acquisitions become complete
// ("X") slices spanning the spin; everything else is an instant event.
//
// The output is a pure function of the recorder's contents: two
// recorders with equal records and intern tables serialize to identical
// bytes.
func WriteChrome(w io.Writer, r *Recorder, clockHz uint64) error {
	if clockHz == 0 {
		return fmt.Errorf("trace: WriteChrome needs a clock rate")
	}
	recs := r.Records()
	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")

	// Microseconds per cycle, applied as cycles*1e6/clockHz in float.
	us := func(cycles uint64) string {
		return fmt.Sprintf("%.3f", float64(cycles)*1e6/float64(clockHz))
	}

	first := true
	emit := func(s string) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		bw.printf("%s", s)
	}

	// Track discovery: which CPU and NIC timelines appear at all.
	maxCPU, maxNIC := -1, -1
	for _, rec := range recs {
		if int(rec.CPU) > maxCPU {
			maxCPU = int(rec.CPU)
		}
		switch rec.Kind {
		case KindNICDMA, KindNICIRQ, KindNICCoalesce:
			if int(rec.Arg0) > maxNIC {
				maxNIC = int(rec.Arg0)
			}
		case KindFault:
			if int(rec.Arg1) > maxNIC {
				maxNIC = int(rec.Arg1)
			}
		}
	}
	meta := func(pid int, tid int, key, value string) {
		emit(fmt.Sprintf("{\"ph\":%q,\"pid\":%d,\"tid\":%d,\"name\":%q,\"args\":{\"name\":%s}}",
			phaseMeta, pid, tid, key, jsonString(value)))
	}
	meta(pidCPU, 0, "process_name", "cpu")
	for c := 0; c <= maxCPU; c++ {
		meta(pidCPU, c, "thread_name", fmt.Sprintf("cpu%d", c))
	}
	if maxNIC >= 0 {
		meta(pidNIC, 0, "process_name", "nic")
		for n := 0; n <= maxNIC; n++ {
			meta(pidNIC, n, "thread_name", fmt.Sprintf("nic%d", n))
		}
	}

	span := func(ph string, pid, tid int, at uint64, name string, args string) string {
		var b strings.Builder
		fmt.Fprintf(&b, "{\"ph\":%q,\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":%s",
			ph, pid, tid, us(at), jsonString(name))
		if ph == phaseInstant {
			b.WriteString(",\"s\":\"t\"")
		}
		if args != "" {
			fmt.Fprintf(&b, ",\"args\":{%s}", args)
		}
		b.WriteString("}")
		return b.String()
	}

	// Per-(pid,tid) open B count so a ring that wrapped mid-span never
	// emits an E without a matching B (viewers reject unbalanced pairs).
	depth := map[[2]int]int{}
	for _, rec := range recs {
		cpu := int(rec.CPU)
		at := uint64(rec.At)
		switch rec.Kind {
		case KindCtxSwitch:
			emit(span(phaseInstant, pidCPU, cpu, at,
				"switch: "+r.Str(rec.Arg2),
				fmt.Sprintf("\"prev\":%d,\"next\":%d", rec.Arg0, rec.Arg1)))
		case KindIRQDeliver:
			emit(span(phaseInstant, pidCPU, cpu, at,
				fmt.Sprintf("deliver %#x", rec.Arg0), ""))
		case KindIRQEnter:
			depth[[2]int{pidCPU, cpu}]++
			emit(span(phaseBegin, pidCPU, cpu, at,
				fmt.Sprintf("irq %#x (%s)", rec.Arg0, irqKindName(rec.Arg1)), ""))
		case KindIRQExit:
			key := [2]int{pidCPU, cpu}
			if depth[key] == 0 {
				continue // span began before the ring's oldest record
			}
			depth[key]--
			emit(span(phaseEnd, pidCPU, cpu, at,
				fmt.Sprintf("irq %#x (%s)", rec.Arg0, irqKindName(rec.Arg1)), ""))
		case KindIPI:
			emit(span(phaseInstant, pidCPU, cpu, at,
				fmt.Sprintf("ipi %#x", rec.Arg0), ""))
		case KindSoftirqEnter:
			depth[[2]int{pidCPU, cpu}]++
			emit(span(phaseBegin, pidCPU, cpu, at, softirqName(rec.Arg0), ""))
		case KindSoftirqExit:
			key := [2]int{pidCPU, cpu}
			if depth[key] == 0 {
				continue
			}
			depth[key]--
			emit(span(phaseEnd, pidCPU, cpu, at, softirqName(rec.Arg0), ""))
		case KindNICDMA:
			dir := "tx"
			if rec.Arg1 == 0 {
				dir = "rx"
			}
			emit(span(phaseInstant, pidNIC, int(rec.Arg0), at,
				fmt.Sprintf("dma %s %dB", dir, rec.Arg2), ""))
		case KindNICIRQ:
			emit(span(phaseInstant, pidNIC, int(rec.Arg0), at,
				fmt.Sprintf("irq q%d %#x", rec.Arg1, rec.Arg2), ""))
		case KindNICCoalesce:
			emit(span(phaseInstant, pidNIC, int(rec.Arg0), at,
				fmt.Sprintf("coalesce q%d", rec.Arg1),
				fmt.Sprintf("\"defer_cycles\":%d", rec.Arg2)))
		case KindSockBlock:
			emit(span(phaseInstant, pidCPU, cpu, at,
				fmt.Sprintf("block conn%d (%s)", rec.Arg0, r.Str(rec.Arg1)), ""))
		case KindSockWake:
			emit(span(phaseInstant, pidCPU, cpu, at,
				fmt.Sprintf("wake conn%d (%s)", rec.Arg0, r.Str(rec.Arg1)),
				fmt.Sprintf("\"woken\":%d", rec.Arg2)))
		case KindLockSpin:
			spun := uint64(rec.Arg1)
			start := at - spun
			var b strings.Builder
			fmt.Fprintf(&b, "{\"ph\":%q,\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%s}",
				phaseComplete, pidCPU, cpu, us(start), us(spun),
				jsonString("spin: "+r.Str(rec.Arg0)))
			emit(b.String())
		case KindFault:
			// NIC-scoped fault transitions land on the NIC track; CPU-scoped
			// ones (interrupt storms) on the target CPU's track.
			pid, tid := pidNIC, int(rec.Arg1)
			if rec.Arg1 < 0 {
				pid, tid = pidCPU, cpu
			}
			emit(span(phaseInstant, pid, tid, at,
				"fault: "+r.Str(rec.Arg0),
				fmt.Sprintf("\"arg\":%d", rec.Arg2)))
		}
	}
	bw.printf("\n]}\n")
	return bw.err
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return "\"\""
	}
	return string(b)
}

// errWriter folds write errors so the exporter reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
