package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	// Every instrumentation entry point must be a no-op on nil.
	r.Emit(1, KindIPI, 0, 0, 0, 0)
	r.CtxSwitch(1, 0, -1, 2, "ttcp0")
	r.IRQDeliver(1, 0, 0x19)
	r.IRQEnter(1, 0, 0x19, 0)
	r.IRQExit(2, 0, 0x19, 0)
	r.IPI(1, 1, 0xfd)
	r.SoftirqEnter(1, 0, 2)
	r.SoftirqExit(2, 0, 2)
	r.NICDMA(1, 0, true, 1460)
	r.NICIRQ(1, 0, 0, 0x19)
	r.NICCoalesce(1, 0, 0, 2000)
	r.SockBlock(1, 0, 3, "sndbuf")
	r.SockWake(2, 0, 3, "sndbuf", 1)
	r.LockSpin(3, 0, "sk0", 400)
	r.Fault(3, 0, "flap-down", 0, 0)
	if got := r.Intern("x"); got != 0 {
		t.Fatalf("nil Intern = %d, want 0", got)
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Records() != nil || r.Str(0) != "" {
		t.Fatal("nil recorder leaked state")
	}
}

func TestRecorderOrderAndIntern(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8})
	r.IRQEnter(10, 0, 0x19, 0)
	r.IRQExit(20, 0, 0x19, 0)
	r.SockBlock(30, 1, 3, "rcvbuf")
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatalf("records out of order: %v", recs)
		}
	}
	if got := r.Str(recs[2].Arg1); got != "rcvbuf" {
		t.Fatalf("interned reason = %q, want rcvbuf", got)
	}
	if a, b := r.Intern("rcvbuf"), r.Intern("rcvbuf"); a != b {
		t.Fatalf("re-interning changed id: %d vs %d", a, b)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		r.IPI(sim.Time(i), 0, 0xfd)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	recs := r.Records()
	for i, rec := range recs {
		if want := sim.Time(6 + i); rec.At != want {
			t.Fatalf("record %d at %d, want %d", i, rec.At, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "?") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

// chromeDoc is the trace-event JSON shape Perfetto and chrome://tracing
// accept: a traceEvents array of events with phase/pid/tid/ts fields.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Name string          `json:"name"`
	Args json.RawMessage `json:"args"`
}

func populatedRecorder() *Recorder {
	r := NewRecorder(Config{Capacity: 64})
	r.CtxSwitch(100, 0, -1, 1, "ttcp0")
	r.NICIRQ(150, 2, 0, 0x1b)
	r.IRQDeliver(160, 0, 0x1b)
	r.IRQEnter(200, 0, 0x1b, 0)
	r.IRQExit(900, 0, 0x1b, 0)
	r.SoftirqEnter(1000, 0, 2)
	r.NICDMA(1100, 2, true, 1460)
	r.SoftirqExit(1500, 0, 2)
	r.IPI(1600, 1, 0xfd)
	r.NICCoalesce(1700, 2, 0, 2000)
	r.SockBlock(1800, 1, 3, "sndbuf")
	r.SockWake(1900, 0, 3, "sndbuf", 1)
	r.LockSpin(2500, 1, "sk3", 400)
	r.Fault(2600, -1, "flap-down", 2, 0)
	r.Fault(2700, 1, "irq-storm", -1, 0x1b)
	return r
}

// TestWriteChromeValidSchema asserts the exported JSON parses and is
// structurally valid trace-event data: every event has a known phase,
// non-metadata events have timestamps, B/E pairs balance per track, and
// complete events carry durations.
func TestWriteChromeValidSchema(t *testing.T) {
	var b strings.Builder
	if err := WriteChrome(&b, populatedRecorder(), 2_000_000_000); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	depth := map[[2]int]int{}
	sawCPUTrack, sawNICTrack := false, false
	lastTs := map[[2]int]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case phaseMeta:
			if ev.Name == "process_name" {
				switch ev.Pid {
				case pidCPU:
					sawCPUTrack = true
				case pidNIC:
					sawNICTrack = true
				}
			}
			continue
		case phaseBegin:
			depth[[2]int{ev.Pid, ev.Tid}]++
		case phaseEnd:
			key := [2]int{ev.Pid, ev.Tid}
			depth[key]--
			if depth[key] < 0 {
				t.Fatalf("unbalanced E event on pid %d tid %d", ev.Pid, ev.Tid)
			}
		case phaseComplete:
			if ev.Dur == nil {
				t.Fatalf("X event %q missing dur", ev.Name)
			}
		case phaseInstant:
		default:
			t.Fatalf("unknown phase %q", ev.Ph)
		}
		if ev.Ts == nil {
			t.Fatalf("event %q missing ts", ev.Name)
		}
		if ev.Name == "" {
			t.Fatal("event missing name")
		}
		key := [2]int{ev.Pid, ev.Tid}
		if *ev.Ts < lastTs[key] && ev.Ph != phaseComplete {
			t.Fatalf("timestamps regress on pid %d tid %d: %f after %f",
				ev.Pid, ev.Tid, *ev.Ts, lastTs[key])
		}
		if *ev.Ts > lastTs[key] {
			lastTs[key] = *ev.Ts
		}
	}
	for key, d := range depth {
		if d != 0 {
			t.Fatalf("pid %d tid %d left %d spans open", key[0], key[1], d)
		}
	}
	if !sawCPUTrack || !sawNICTrack {
		t.Fatalf("missing track metadata: cpu=%v nic=%v", sawCPUTrack, sawNICTrack)
	}
}

// TestWriteChromeSkipsOrphanEnds proves a ring that wrapped mid-span
// (its B overwritten) never emits the stray E.
func TestWriteChromeSkipsOrphanEnds(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4})
	r.IRQEnter(10, 0, 0x19, 0) // will be overwritten
	r.IPI(20, 0, 0xfd)
	r.IPI(30, 0, 0xfd)
	r.IPI(40, 0, 0xfd)
	r.IPI(50, 0, 0xfd) // wraps the ring, dropping the IRQEnter
	r.IRQExit(60, 0, 0x19, 0)
	var b strings.Builder
	if err := WriteChrome(&b, r, 2_000_000_000); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == phaseEnd {
			t.Fatalf("orphan E event exported: %+v", ev)
		}
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := WriteChrome(&a, populatedRecorder(), 2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, populatedRecorder(), 2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two exports of equal recorders differ")
	}
}

func TestWriteTextCoversEveryKind(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, populatedRecorder(), 2_000_000_000); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for k := Kind(0); k < numKinds; k++ {
		if !strings.Contains(out, k.String()) {
			t.Fatalf("text dump missing kind %s:\n%s", k, out)
		}
	}
	if !strings.Contains(out, "conn3 sndbuf") || !strings.Contains(out, "sk3 spun=400cy") {
		t.Fatalf("text dump lost interned strings:\n%s", out)
	}
}
