package trace

import (
	"fmt"
	"io"
)

// WriteText exports the timeline as plain text, one record per line:
//
//	[   12345678cy    6.173ms] cpu0  irq-enter    vec=0x19 device
//
// clockHz converts cycles to wall time for the second column. Like
// WriteChrome, the output is a pure function of the recorder's contents.
func WriteText(w io.Writer, r *Recorder, clockHz uint64) error {
	if clockHz == 0 {
		return fmt.Errorf("trace: WriteText needs a clock rate")
	}
	bw := &errWriter{w: w}
	if d := r.Dropped(); d > 0 {
		bw.printf("# ring wrapped: %d oldest records overwritten\n", d)
	}
	for _, rec := range r.Records() {
		ms := float64(rec.At) * 1e3 / float64(clockHz)
		where := "-    "
		if rec.CPU >= 0 {
			where = fmt.Sprintf("cpu%-2d", rec.CPU)
		}
		bw.printf("[%12dcy %10.4fms] %s %-13s %s\n",
			uint64(rec.At), ms, where, rec.Kind, describe(r, rec))
	}
	return bw.err
}

// describe renders a record's kind-specific arguments.
func describe(r *Recorder, rec Record) string {
	switch rec.Kind {
	case KindCtxSwitch:
		return fmt.Sprintf("task%d -> task%d (%s)", rec.Arg0, rec.Arg1, r.Str(rec.Arg2))
	case KindIRQDeliver:
		return fmt.Sprintf("vec=%#x", rec.Arg0)
	case KindIRQEnter, KindIRQExit:
		return fmt.Sprintf("vec=%#x %s", rec.Arg0, irqKindName(rec.Arg1))
	case KindIPI:
		return fmt.Sprintf("vec=%#x", rec.Arg0)
	case KindSoftirqEnter, KindSoftirqExit:
		return softirqName(rec.Arg0)
	case KindNICDMA:
		dir := "tx"
		if rec.Arg1 == 0 {
			dir = "rx"
		}
		return fmt.Sprintf("nic%d %s %dB", rec.Arg0, dir, rec.Arg2)
	case KindNICIRQ:
		return fmt.Sprintf("nic%d q%d vec=%#x", rec.Arg0, rec.Arg1, rec.Arg2)
	case KindNICCoalesce:
		return fmt.Sprintf("nic%d q%d defer=%dcy", rec.Arg0, rec.Arg1, rec.Arg2)
	case KindSockBlock:
		return fmt.Sprintf("conn%d %s", rec.Arg0, r.Str(rec.Arg1))
	case KindSockWake:
		return fmt.Sprintf("conn%d %s woken=%d", rec.Arg0, r.Str(rec.Arg1), rec.Arg2)
	case KindLockSpin:
		return fmt.Sprintf("%s spun=%dcy", r.Str(rec.Arg0), rec.Arg1)
	case KindFault:
		if rec.Arg1 >= 0 {
			return fmt.Sprintf("%s nic%d arg=%d", r.Str(rec.Arg0), rec.Arg1, rec.Arg2)
		}
		return fmt.Sprintf("%s arg=%d", r.Str(rec.Arg0), rec.Arg2)
	}
	return ""
}
