// Package trace is the simulator's structured timeline layer: the
// magic-trace/KUtrace-style record of *when* things happened that the
// aggregate counters (internal/perf) deliberately average away. A
// per-machine Recorder collects fixed-size typed records — context
// switches, interrupt delivery and handler entry/exit, IPIs, softirq
// passes, NIC DMA/interrupt/coalescing, socket block/wake and spinlock
// contention — into a bounded ring buffer, fed by instrumentation points
// in kern, apic, netdev and tcp.
//
// Recording is strictly passive: instrumentation reads simulation state
// but never schedules events, touches the random stream, or charges
// cycles, so an instrumented run is cycle-identical to an uninstrumented
// one. With no Recorder attached (the default), every instrumentation
// point is a nil check: all Recorder methods are safe on a nil receiver
// and return immediately, so tracing costs nothing when disabled.
//
// Exporters: WriteChrome emits Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing (one track per CPU, one per NIC), and
// WriteText emits a plain-text timeline for terminal diffing.
package trace

import "repro/internal/sim"

// Kind is the type of one timeline record.
type Kind uint8

const (
	// KindCtxSwitch is a context switch: Arg0 = previous task ID (-1 when
	// the CPU was idle or fresh), Arg1 = next task ID, Arg2 = interned
	// name of the next task.
	KindCtxSwitch Kind = iota
	// KindIRQDeliver is the IO-APIC routing a device vector to a CPU:
	// Arg0 = vector. Emitted at delivery, before the handler runs.
	KindIRQDeliver
	// KindIRQEnter is a CPU starting an interrupt handler: Arg0 = vector,
	// Arg1 = delivery class (apic.Kind numbering: 0 device, 1 IPI,
	// 2 timer).
	KindIRQEnter
	// KindIRQExit is the matching handler completion (same args).
	KindIRQExit
	// KindIPI is an inter-processor interrupt send: CPU = target,
	// Arg0 = vector.
	KindIPI
	// KindSoftirqEnter is a softirq handler starting on a CPU: Arg0 = the
	// softirq vector (kern.Softirq numbering).
	KindSoftirqEnter
	// KindSoftirqExit is the matching handler completion (same args).
	KindSoftirqExit
	// KindNICDMA is a device DMA transaction: Arg0 = NIC ID, Arg1 = 0 for
	// a receive DMA write, 1 for a transmit DMA read, Arg2 = payload
	// bytes. CPU is -1 (the bus master is not a processor).
	KindNICDMA
	// KindNICIRQ is a NIC raising its interrupt line: Arg0 = NIC ID,
	// Arg1 = queue index, Arg2 = vector. CPU is -1; the routing decision
	// appears as the subsequent KindIRQDeliver.
	KindNICIRQ
	// KindNICCoalesce is an interrupt deferred by the coalescing window:
	// Arg0 = NIC ID, Arg1 = queue index, Arg2 = cycles deferred.
	KindNICCoalesce
	// KindSockBlock is a process blocking on a socket: Arg0 = connection,
	// Arg1 = interned reason ("sndbuf", "rcvbuf").
	KindSockBlock
	// KindSockWake is a socket waking its sleepers: Arg0 = connection,
	// Arg1 = interned reason, Arg2 = number of tasks woken.
	KindSockWake
	// KindLockSpin is a contended spinlock acquisition, recorded when the
	// lock is granted: Arg0 = interned lock name, Arg1 = cycles spent
	// spinning. CPU = the waiter's processor.
	KindLockSpin
	// KindFault is an injected fault transition (internal/fault): Arg0 =
	// interned fault kind ("flap-down", "flap-up", "dma-stall", ...),
	// Arg1 = the target NIC (-1 when the fault targets a CPU), Arg2 =
	// kind-specific detail (e.g. the storm vector). CPU is the target
	// processor for CPU-scoped faults, else -1.
	KindFault

	numKinds
)

var kindNames = [numKinds]string{
	"ctx-switch", "irq-deliver", "irq-enter", "irq-exit", "ipi",
	"softirq-enter", "softirq-exit", "nic-dma", "nic-irq", "nic-coalesce",
	"sock-block", "sock-wake", "lock-spin", "fault",
}

// String names the record kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// Record is one fixed-size timeline entry. The meaning of Arg0-Arg2
// depends on Kind (see the Kind constants). CPU is the processor the
// record is scoped to, or -1 for machine-scoped records (NIC activity).
type Record struct {
	At   sim.Time
	Kind Kind
	CPU  int16
	Arg0 int64
	Arg1 int64
	Arg2 int64
}

// Config sizes a Recorder.
type Config struct {
	// Capacity bounds the ring buffer; once full, the oldest records are
	// overwritten (and counted in Dropped). 0 selects DefaultCapacity.
	Capacity int
}

// DefaultCapacity is the default ring size: enough for the paper's
// 120 ms measurement window at quick settings without overwriting.
const DefaultCapacity = 1 << 18

// Recorder is a bounded ring of timeline records plus the string-intern
// table the records reference. It belongs to exactly one machine and is
// only touched from that machine's simulation goroutine, so it needs no
// locking; distinct machines (e.g. cells of a parallel sweep) each carry
// their own.
//
// A nil *Recorder is the disabled state: every method is nil-safe and
// returns immediately, so instrumentation points need no guards.
type Recorder struct {
	ring    []Record
	start   int // index of the oldest record
	size    int // live records in ring
	dropped uint64

	strs    []string
	strIDs  map[string]int64
	enabled bool
}

// NewRecorder builds an empty recorder.
func NewRecorder(cfg Config) *Recorder {
	cap := cfg.Capacity
	if cap <= 0 {
		cap = DefaultCapacity
	}
	r := &Recorder{
		ring:    make([]Record, 0, cap),
		strIDs:  make(map[string]int64),
		enabled: true,
	}
	// ID 0 is the empty string so a zero Arg is always resolvable.
	r.Intern("")
	return r
}

// Enabled reports whether records are being collected (false on nil).
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Intern maps a string to a stable small integer for use in record args.
// Interning the same string twice yields the same ID. On a nil recorder
// it returns 0 without allocating.
func (r *Recorder) Intern(s string) int64 {
	if r == nil {
		return 0
	}
	if id, ok := r.strIDs[s]; ok {
		return id
	}
	id := int64(len(r.strs))
	r.strs = append(r.strs, s)
	r.strIDs[s] = id
	return id
}

// Str resolves an interned ID ("" for unknown IDs or a nil recorder).
func (r *Recorder) Str(id int64) string {
	if r == nil || id < 0 || id >= int64(len(r.strs)) {
		return ""
	}
	return r.strs[id]
}

// Emit appends one record, overwriting the oldest when the ring is full.
// Nil-safe: the disabled path is a single comparison.
func (r *Recorder) Emit(at sim.Time, kind Kind, cpu int, a0, a1, a2 int64) {
	if r == nil {
		return
	}
	rec := Record{At: at, Kind: kind, CPU: int16(cpu), Arg0: a0, Arg1: a1, Arg2: a2}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
		r.size++
		return
	}
	// Full: overwrite the oldest.
	r.ring[r.start] = rec
	r.start = (r.start + 1) % len(r.ring)
	r.dropped++
}

// Len reports the number of live records.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.size
}

// Dropped reports how many records were overwritten by ring wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Records returns the live records oldest-first (a copy; the recorder
// may keep collecting).
func (r *Recorder) Records() []Record {
	if r == nil || r.size == 0 {
		return nil
	}
	out := make([]Record, 0, r.size)
	out = append(out, r.ring[r.start:]...)
	out = append(out, r.ring[:r.start]...)
	return out
}

// --- typed instrumentation helpers (all nil-safe) ---

// CtxSwitch records a context switch on cpu from task prev (-1 = idle)
// to task next, whose name is interned.
func (r *Recorder) CtxSwitch(at sim.Time, cpu int, prev, next int, name string) {
	if r == nil {
		return
	}
	r.Emit(at, KindCtxSwitch, cpu, int64(prev), int64(next), r.Intern(name))
}

// IRQDeliver records the IO-APIC routing vector vec to cpu.
func (r *Recorder) IRQDeliver(at sim.Time, cpu int, vec int) {
	r.Emit(at, KindIRQDeliver, cpu, int64(vec), 0, 0)
}

// IRQEnter records a handler starting; kind is the apic delivery class.
func (r *Recorder) IRQEnter(at sim.Time, cpu int, vec int, kind int) {
	r.Emit(at, KindIRQEnter, cpu, int64(vec), int64(kind), 0)
}

// IRQExit records the matching handler completion.
func (r *Recorder) IRQExit(at sim.Time, cpu int, vec int, kind int) {
	r.Emit(at, KindIRQExit, cpu, int64(vec), int64(kind), 0)
}

// IPI records an inter-processor interrupt sent to cpu.
func (r *Recorder) IPI(at sim.Time, cpu int, vec int) {
	r.Emit(at, KindIPI, cpu, int64(vec), 0, 0)
}

// SoftirqEnter records a softirq handler starting on cpu.
func (r *Recorder) SoftirqEnter(at sim.Time, cpu int, vec int) {
	r.Emit(at, KindSoftirqEnter, cpu, int64(vec), 0, 0)
}

// SoftirqExit records the matching softirq completion.
func (r *Recorder) SoftirqExit(at sim.Time, cpu int, vec int) {
	r.Emit(at, KindSoftirqExit, cpu, int64(vec), 0, 0)
}

// NICDMA records a DMA transaction (rx = DMA write toward memory).
func (r *Recorder) NICDMA(at sim.Time, nic int, rx bool, bytes int) {
	dir := int64(1)
	if rx {
		dir = 0
	}
	r.Emit(at, KindNICDMA, -1, int64(nic), dir, int64(bytes))
}

// NICIRQ records a NIC queue raising its interrupt line.
func (r *Recorder) NICIRQ(at sim.Time, nic, queue, vec int) {
	r.Emit(at, KindNICIRQ, -1, int64(nic), int64(queue), int64(vec))
}

// NICCoalesce records an interrupt deferred by the coalescing window.
func (r *Recorder) NICCoalesce(at sim.Time, nic, queue int, deferCycles uint64) {
	r.Emit(at, KindNICCoalesce, -1, int64(nic), int64(queue), int64(deferCycles))
}

// SockBlock records a process blocking on a socket.
func (r *Recorder) SockBlock(at sim.Time, cpu int, conn int, reason string) {
	if r == nil {
		return
	}
	r.Emit(at, KindSockBlock, cpu, int64(conn), r.Intern(reason), 0)
}

// SockWake records a socket waking woken sleepers.
func (r *Recorder) SockWake(at sim.Time, cpu int, conn int, reason string, woken int) {
	if r == nil {
		return
	}
	r.Emit(at, KindSockWake, cpu, int64(conn), r.Intern(reason), int64(woken))
}

// LockSpin records a contended spinlock acquisition (at grant time).
func (r *Recorder) LockSpin(at sim.Time, cpu int, name string, spun uint64) {
	if r == nil {
		return
	}
	r.Emit(at, KindLockSpin, cpu, r.Intern(name), int64(spun), 0)
}

// Fault records an injected fault transition. nic is -1 for CPU-scoped
// faults (which pass the target processor as cpu); arg carries
// kind-specific detail such as the injected vector.
func (r *Recorder) Fault(at sim.Time, cpu int, kind string, nic int, arg int64) {
	if r == nil {
		return
	}
	r.Emit(at, KindFault, cpu, r.Intern(kind), int64(nic), arg)
}
