package netdev

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseCoalesceSpecs(t *testing.T) {
	nilCfg, err := ParseCoalesce("")
	if err != nil || nilCfg != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", nilCfg, err)
	}
	good := map[string]CoalesceConfig{
		"legacy":                           {Mode: CoalesceLegacy},
		"timer":                            {Mode: CoalesceTimer, Usecs: 50},
		"timer,usecs=100":                  {Mode: CoalesceTimer, Usecs: 100},
		"frames,frames=16":                 {Mode: CoalesceFrames, Usecs: 200, Frames: 16},
		"frames,usecs=80,frames=4":         {Mode: CoalesceFrames, Usecs: 80, Frames: 4},
		"adaptive":                         {Mode: CoalesceAdaptive, MinUsecs: 5, MaxUsecs: 250, Frames: 8},
		"adaptive,min=20,max=400,frames=4": {Mode: CoalesceAdaptive, MinUsecs: 20, MaxUsecs: 400, Frames: 4},
	}
	for spec, want := range good {
		got, err := ParseCoalesce(spec)
		if err != nil {
			t.Errorf("ParseCoalesce(%q): %v", spec, err)
			continue
		}
		if *got != want {
			t.Errorf("ParseCoalesce(%q) = %+v, want %+v", spec, *got, want)
		}
	}
	bad := []string{
		"warp",                 // unknown mode
		"timer,window=5",       // unknown key
		"timer,usecs=fast",     // non-numeric value
		"timer,usecs",          // not key=value
		"adaptive,min=9,max=3", // inverted bounds
	}
	for _, spec := range bad {
		if _, err := ParseCoalesce(spec); err == nil {
			t.Errorf("ParseCoalesce(%q) accepted an invalid spec", spec)
		}
	}
}

func TestCoalesceConfigString(t *testing.T) {
	c, err := ParseCoalesce("adaptive,min=20,max=400,frames=4")
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	for _, want := range []string{"adaptive", "min=20", "max=400", "frames=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// newCoalesceRig is newRig with a coalescing model installed.
func newCoalesceRig(t *testing.T, spec string) *rig {
	t.Helper()
	co, err := ParseCoalesce(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t)
	r.n.cfg.Coalesce = *co
	if co.Mode == CoalesceAdaptive {
		for _, q := range r.n.queues {
			q.windowCycles = r.n.usecsToCycles(co.MinUsecs)
		}
	}
	return r
}

// Timer mode: one absolute window per idle period — a back-to-back
// burst that the legacy per-frame throttle would split across several
// interrupts is served by exactly one.
func TestCoalesceTimerBatchesBurstIntoOneIRQ(t *testing.T) {
	r := newCoalesceRig(t, "timer,usecs=100")
	r.eng.At(1000, func() {
		for i := 0; i < 5; i++ {
			r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460})
		}
	})
	r.eng.Run(3_000_000)
	if len(r.fs.received) != 5 {
		t.Fatalf("delivered %d frames, want 5", len(r.fs.received))
	}
	if r.n.IRQsRaised != 1 {
		t.Fatalf("timer mode raised %d interrupts for one burst, want 1", r.n.IRQsRaised)
	}
}

// Frames mode: the count threshold closes the window early, so the
// burst is interrupt-served long before the (deliberately huge) timer
// would expire.
func TestCoalesceFramesThresholdFiresEarly(t *testing.T) {
	r := newCoalesceRig(t, "frames,frames=3,usecs=5000") // 10 ms timer at 2 GHz
	r.eng.At(1000, func() {
		for i := 0; i < 3; i++ {
			r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460})
		}
	})
	// Run far less than the timer window: only the frame threshold can
	// have fired the interrupt.
	r.eng.Run(1_000_000)
	if len(r.fs.received) != 3 {
		t.Fatalf("delivered %d frames inside the timer window, want 3 (threshold fire)", len(r.fs.received))
	}
	if r.n.IRQsRaised != 1 {
		t.Fatalf("IRQs = %d, want 1", r.n.IRQsRaised)
	}
}

// Adaptive mode: a window that fills with a burst widens; idle windows
// narrow back toward the floor.
func TestCoalesceAdaptiveWidensUnderBurstNarrowsWhenIdle(t *testing.T) {
	r := newCoalesceRig(t, "adaptive,min=50,max=400,frames=4")
	q := r.n.queues[0]
	floor := r.n.usecsToCycles(50)
	if q.windowCycles != floor {
		t.Fatalf("initial window %d, want floor %d", q.windowCycles, floor)
	}
	// Burst: 8 back-to-back frames serialize 24416 cycles apart, so a
	// 100k-cycle window sees ≥4 of them and must widen.
	r.eng.At(1000, func() {
		for i := 0; i < 8; i++ {
			r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460})
		}
	})
	r.eng.Run(5_000_000)
	widened := q.windowCycles
	if widened <= floor {
		t.Fatalf("window %d did not widen above floor %d after a burst", widened, floor)
	}
	// Idle: lone frames close their windows nearly empty; the window
	// must narrow again.
	for i := 0; i < 4; i++ {
		at := r.eng.Now() + sim.Time(1+i)*2_000_000
		r.eng.At(at, func() { r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460}) })
	}
	r.eng.Run(r.eng.Now() + 20_000_000)
	if q.windowCycles >= widened {
		t.Fatalf("window %d did not narrow from %d after idle traffic", q.windowCycles, widened)
	}
	if len(r.fs.received) != 12 {
		t.Fatalf("delivered %d frames, want 12", len(r.fs.received))
	}
}

// Regression (PR 8 bugfix): a coalesce-deferred interrupt must re-check
// the mask at fire time. A NAPI poll that masked the queue in the
// interim owns the pending work; firing anyway delivers a spurious
// interrupt.
func TestDeferredIRQRechecksMaskAtFire(t *testing.T) {
	r := newRig(t)
	q := r.n.queues[0]
	r.eng.At(1000, func() { r.n.maybeRaiseIRQ(q) }) // raises immediately
	r.eng.At(1100, func() {
		q.irqPending = false // top half accepted
		r.n.maybeRaiseIRQ(q) // within the 2000-cycle gap → deferred to 3000
	})
	r.eng.At(1200, func() { q.masked = true }) // poll takes ownership
	r.eng.Run(50_000)
	if r.n.IRQsRaised != 1 {
		t.Fatalf("deferred raise fired through a masked queue: %d IRQs, want 1", r.n.IRQsRaised)
	}
	if q.irqPending {
		t.Fatal("suppressed deferral left the pending latch set (queue wedged)")
	}
	// Once unmasked, new work interrupts again.
	r.eng.At(60_000, func() {
		q.masked = false
		r.n.maybeRaiseIRQ(q)
	})
	r.eng.Run(100_000)
	if r.n.IRQsRaised != 2 {
		t.Fatalf("queue did not recover after unmask: %d IRQs, want 2", r.n.IRQsRaised)
	}
}

// Regression (PR 8 bugfix): lastIRQ == 0 used to mean "never raised",
// so an interrupt raised at cycle 0 bypassed the coalescing window for
// the next one. The sentinel keeps cycle 0 a real interrupt time.
func TestCycleZeroIRQStillCoalesces(t *testing.T) {
	r := newRig(t)
	r.n.SetCoalesce(2_000_000) // wide window: the first IRQ is fully serviced inside it
	q := r.n.queues[0]
	r.eng.At(0, func() { r.n.maybeRaiseIRQ(q) }) // interrupt at cycle 0
	r.eng.At(1_000_000, func() {
		q.irqPending = false
		r.n.maybeRaiseIRQ(q) // inside the window → must defer to 2_000_000
	})
	var atGapEdge uint64
	r.eng.At(1_999_999, func() { atGapEdge = r.n.IRQsRaised })
	r.eng.Run(5_000_000)
	if atGapEdge != 1 {
		t.Fatalf("second IRQ fired inside the coalescing window after a cycle-0 interrupt (%d raised by the window edge)", atGapEdge)
	}
	if r.n.IRQsRaised != 2 {
		t.Fatalf("deferred IRQ never fired: %d raised", r.n.IRQsRaised)
	}
	if q.lastIRQ != 2_000_000 {
		t.Fatalf("deferred IRQ fired at %d, want the window edge 2000000", q.lastIRQ)
	}
}

// A deferral suppressed by a link outage must not strand frames already
// DMA'd into the ring: carrier-up re-kicks interrupt generation.
func TestLinkUpRekicksSuppressedIRQ(t *testing.T) {
	r := newRig(t)
	r.n.SetCoalesce(10_000_000) // huge gap so the second frame defers
	r.eng.At(1000, func() { r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460}) })
	r.eng.At(30_000, func() { r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460}) })
	r.eng.At(100_000, func() { r.n.SetLinkUp(false) })
	var beforeUp int
	r.eng.At(11_900_000, func() { beforeUp = len(r.fs.received) })
	r.eng.At(12_000_000, func() { r.n.SetLinkUp(true) })
	r.eng.Run(20_000_000)
	if beforeUp != 1 {
		t.Fatalf("%d frames delivered while the link was down, want 1 (pre-outage only)", beforeUp)
	}
	if len(r.fs.received) != 2 {
		t.Fatalf("frame stranded in the ring after link recovery: delivered %d, want 2", len(r.fs.received))
	}
}
