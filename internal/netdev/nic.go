package netdev

import (
	"fmt"

	"repro/internal/apic"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

// descBytes is the size of one DMA descriptor.
const descBytes = 16

// NICConfig sizes one device.
type NICConfig struct {
	// Vector is the interrupt line (paper numbering: 0x19, 0x1a, …).
	Vector apic.Vector
	// LinkBps is the link speed; the paper's NICs are 1 Gb/s.
	LinkBps uint64
	// TxRing and RxRing are the descriptor ring sizes.
	TxRing, RxRing int
	// CoalesceCycles is the minimum gap between interrupts from this
	// device (interrupt throttling).
	CoalesceCycles uint64
	// WireLatencyCycles is the one-way propagation+switch latency.
	WireLatencyCycles uint64
	// LossRate drops this fraction of frames on the wire (both
	// directions), deterministically from the engine's random stream.
	// The paper's LAN is loss-free; this exercises the retransmission
	// machinery and affinity behaviour under degraded links.
	LossRate float64
	// NAPI enables 2.6-style interrupt mitigation: the top half masks
	// the device and the softirq polls the rings until they drain, so
	// sustained load runs nearly interrupt-free. The paper's 2.4 driver
	// interrupts per packet; this is the modern comparison point.
	NAPI bool
	// Coalesce selects the interrupt-coalescing model (coalesce.go).
	// The zero value is the legacy CoalesceCycles throttle above.
	Coalesce CoalesceConfig
	// QueueVectors enables receive-side scaling — the paper's §8 future
	// work ("adapters that ... extract flow information ... and direct
	// connections and interrupts, dynamically, to a specific
	// processor"). Each entry is one RSS queue's interrupt vector; the
	// NIC hashes the connection to a queue, and the kernel routes each
	// queue's vector to its own processor. Empty = single-queue device
	// on Vector.
	QueueVectors []apic.Vector
}

// DefaultNICConfig returns a PRO/1000-class device on the given vector.
func DefaultNICConfig(vec apic.Vector) NICConfig {
	return NICConfig{
		Vector:  vec,
		LinkBps: 1_000_000_000,
		TxRing:  256,
		RxRing:  256,
		// The PRO/1000 drivers of the paper's era defaulted RxIntDelay to
		// zero (interrupt per packet); a 1 µs window only merges true
		// back-to-back completions.
		CoalesceCycles:    2_000,
		WireLatencyCycles: 20_000,
	}
}

// WireFault perturbs frames crossing the wire. The fault layer
// (internal/fault) installs one per NIC when a schedule targets it;
// a nil hook is the clean link. Implementations must draw all
// randomness from the supplied engine RNG so faulted runs stay
// bit-reproducible, and must not schedule events or charge cycles.
type WireFault interface {
	// Drop reports whether the frame entering the wire right now is
	// lost. rx is true for frames toward the SUT.
	Drop(now sim.Time, rng *sim.RNG, rx bool) bool
	// ExtraDelay returns additional propagation delay in cycles for a
	// surviving frame; per-frame jitter here produces (bounded)
	// reordering at the receiver.
	ExtraDelay(now sim.Time, rng *sim.RNG, rx bool) uint64
}

// NIC is one simulated gigabit adapter.
type NIC struct {
	d   *Driver
	id  int
	cfg NICConfig

	procISR kern.Proc
	// regsAddr stands in for the MMIO register block; accesses to it are
	// modelled as uncached bus transactions, never cache fills.
	regsAddr mem.Addr

	txRing *txRing
	// queues holds one receive ring + interrupt state per RSS queue;
	// single-queue devices have exactly one.
	queues []*rxQueue
	// flowQueue is the RSS indirection table: connections steered to an
	// explicit queue (SteerFlow). Absent connections fall back to the
	// hash in queueFor.
	flowQueue map[int]int
	txLock    *kern.SpinLock
	txWait    *kern.WaitQueue

	peer Peer

	txBusyUntil sim.Time
	rxBusyUntil sim.Time
	txActive    bool

	// Frames serialized but whose delivery event has not yet run, per
	// direction (see WireInFlight).
	rxWireInFlight int
	txWireInFlight int

	// Fault state (internal/fault). All zero on a healthy device.
	wireFault  WireFault
	linkDown   bool
	dmaStalled bool
	// stallQ holds frames that finished wire serialization while the DMA
	// engine was stalled; they fill ring slots in arrival order when the
	// stall lifts (overflowing slots count in RxDropped as usual).
	stallQ []stalledFill

	// Stats.
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	RxDropped          uint64
	// WireDrops counts frames lost on the link (LossRate, injected
	// faults, link-down windows).
	WireDrops uint64
	// LinkDownDrops is the subset of WireDrops lost to link flaps.
	LinkDownDrops uint64
	// StallDeferred counts frames parked by a DMA stall.
	StallDeferred uint64
	IRQsRaised    uint64
}

type stalledFill struct {
	q *rxQueue
	f WireFrame
}

// noIRQ marks a queue that has never interrupted. Cycle 0 is a valid
// interrupt time (a frame can complete DMA on the first cycle of a
// run), so the sentinel must be out of band, not zero. sim.Time is
// unsigned; the all-ones value is unreachable as a simulated cycle.
const noIRQ = ^sim.Time(0)

// rxQueue is one RSS queue: its ring, interrupt vector and per-queue
// interrupt state.
type rxQueue struct {
	index   int
	vec     apic.Vector
	ring    *rxRing
	procISR kern.Proc

	lastIRQ    sim.Time
	irqPending bool
	// masked suppresses interrupt generation while the NAPI poll owns
	// the queue.
	masked bool

	// Coalescing state (coalesce.go): whether a deferred raise is
	// armed, a generation token so superseded deferral events die at
	// fire time, events accumulated toward the frames threshold inside
	// the open window, and the adaptive mode's current window width.
	deferArmed     bool
	deferSeq       uint64
	coalesceEvents int
	windowCycles   uint64

	// Per-queue stats.
	rxFrames uint64
	irqs     uint64
}

func newNIC(d *Driver, id int, cfg NICConfig) *NIC {
	if cfg.LinkBps == 0 || cfg.TxRing <= 0 || cfg.RxRing <= 0 {
		panic(fmt.Sprintf("netdev: bad NIC config %+v", cfg))
	}
	k := d.k
	n := &NIC{
		d:        d,
		id:       id,
		cfg:      cfg,
		regsAddr: k.Space.AllocPage(4096, fmt.Sprintf("nic%d_regs", id)),
		txLock:   k.NewSpinLock(fmt.Sprintf("nic%d_tx", id)),
		txWait:   kern.NewWaitQueue(fmt.Sprintf("nic%d_txwait", id)),
	}
	n.txRing = newTxRing(cfg.TxRing, k.Space.AllocPage(cfg.TxRing*descBytes, fmt.Sprintf("nic%d_txdesc", id)))
	vectors := cfg.QueueVectors
	if len(vectors) == 0 {
		vectors = []apic.Vector{cfg.Vector}
	}
	for qi, vec := range vectors {
		name := fmt.Sprintf("IRQ%#x_interrupt", int(vec))
		q := &rxQueue{
			index:   qi,
			vec:     vec,
			lastIRQ: noIRQ,
			procISR: k.NewProc(name, perf.BinDriver, 768),
			ring: newRxRing(cfg.RxRing,
				k.Space.AllocPage(cfg.RxRing*descBytes, fmt.Sprintf("nic%d_q%d_rxdesc", id, qi))),
		}
		if cfg.Coalesce.Mode == CoalesceAdaptive {
			q.windowCycles = n.usecsToCycles(cfg.Coalesce.MinUsecs)
		}
		n.queues = append(n.queues, q)
	}
	n.procISR = n.queues[0].procISR
	return n
}

// Queues reports the number of RSS queues (1 for a classic device).
func (n *NIC) Queues() int { return len(n.queues) }

// SteerFlow programs the RSS indirection table: frames of conn land on
// the given receive queue instead of the hash-selected one — the paper's
// §8 "direct connections and interrupts, dynamically, to a specific
// processor", flow half.
func (n *NIC) SteerFlow(conn, queue int) {
	if queue < 0 || queue >= len(n.queues) {
		panic(fmt.Sprintf("netdev: nic %d has no queue %d", n.id, queue))
	}
	if n.flowQueue == nil {
		n.flowQueue = make(map[int]int)
	}
	n.flowQueue[conn] = queue
}

// queueFor steers a connection to a queue: the indirection table when
// programmed, else a hash (Toeplitz stand-in).
func (n *NIC) queueFor(conn int) *rxQueue {
	if q, ok := n.flowQueue[conn]; ok {
		return n.queues[q]
	}
	return n.queues[conn%len(n.queues)]
}

// QueueVector reports queue qi's interrupt vector.
func (n *NIC) QueueVector(qi int) apic.Vector { return n.queues[qi].vec }

// QueueRxFrames reports frames received on queue qi.
func (n *NIC) QueueRxFrames(qi int) uint64 { return n.queues[qi].rxFrames }

// QueueIRQs reports interrupts raised by queue qi.
func (n *NIC) QueueIRQs(qi int) uint64 { return n.queues[qi].irqs }

// ID reports the device number.
func (n *NIC) ID() int { return n.id }

// Vector reports the device's interrupt line.
func (n *NIC) Vector() apic.Vector { return n.cfg.Vector }

// SetPeer attaches the far end of the link.
func (n *NIC) SetPeer(p Peer) { n.peer = p }

// SetWireFault installs (or, with nil, removes) the per-frame fault
// hook. Loss and delay configuration otherwise comes only from
// NICConfig at construction, so a device's wire behaviour is always
// visible to the result-cache fingerprint.
func (n *NIC) SetWireFault(wf WireFault) { n.wireFault = wf }

// SetLinkUp raises or drops the link carrier. While the link is down
// every frame entering the wire (both directions) is lost; frames
// already propagating were on the wire before the cut and still arrive.
// Coming back up re-kicks interrupt generation for any queue holding
// frames whose deferred raise was suppressed during the outage.
func (n *NIC) SetLinkUp(up bool) {
	wasDown := n.linkDown
	n.linkDown = !up
	if up && wasDown {
		for _, q := range n.queues {
			if !q.irqPending && q.ring.pendingClean() > 0 {
				n.maybeRaiseIRQ(q)
			}
		}
	}
}

// LinkUp reports the carrier state.
func (n *NIC) LinkUp() bool { return !n.linkDown }

// SetDMAStalled freezes (true) or resumes (false) the receive DMA
// engine. Stalled frames that have finished wire serialization queue in
// arrival order and fill ring slots when the stall lifts.
func (n *NIC) SetDMAStalled(stalled bool) {
	if n.dmaStalled == stalled {
		return
	}
	n.dmaStalled = stalled
	if !stalled {
		pend := n.stallQ
		n.stallQ = nil
		for _, s := range pend {
			n.dmaFill(s.q, s.f)
		}
	}
}

// DMAStalled reports whether the receive DMA engine is frozen.
func (n *NIC) DMAStalled() bool { return n.dmaStalled }

// SetCoalesce changes the legacy interrupt-throttle window at runtime
// (ethtool-style tuning).
func (n *NIC) SetCoalesce(cycles uint64) { n.cfg.CoalesceCycles = cycles }

// Coalesce reports the device's coalescing model.
func (n *NIC) Coalesce() CoalesceConfig { return n.cfg.Coalesce }

// PrimeRx posts initial receive buffers into the ring(s) at machine
// setup (outside measured time), striped across RSS queues. The stack
// supplies pool buffers.
func (n *NIC) PrimeRx(bufs []mem.Addr, cookies []any) {
	if len(bufs) != len(cookies) {
		panic("netdev: PrimeRx length mismatch")
	}
	for i := range bufs {
		n.queues[i%len(n.queues)].ring.post(bufs[i], cookies[i])
	}
}

// RxPosted reports how many receive buffers are currently posted across
// all queues.
func (n *NIC) RxPosted() int {
	total := 0
	for _, q := range n.queues {
		total += q.ring.posted()
	}
	return total
}

// RxResident reports every receive buffer the device currently holds:
// posted (awaiting DMA) plus filled (awaiting softirq clean), across
// all queues. Invariant checks use it for buffer conservation.
func (n *NIC) RxResident() int {
	total := 0
	for _, q := range n.queues {
		total += q.ring.posted() + q.ring.pendingClean()
	}
	return total
}

// StallQueued reports frames parked by an active DMA stall.
func (n *NIC) StallQueued() int { return len(n.stallQ) }

// TxResident reports transmit requests still inside the device (queued,
// on the wire, or awaiting clean).
func (n *NIC) TxResident() int {
	return len(n.txRing.queued) + len(n.txRing.doneStage) + len(n.txRing.done)
}

// ForEachTxCookie invokes fn with the caller-supplied cookie of every
// transmit request still resident in the device. Invariant checks use
// it to attribute in-flight buffers to their pools.
func (n *NIC) ForEachTxCookie(fn func(cookie any)) {
	for _, e := range n.txRing.queued {
		fn(e.req.Cookie)
	}
	for _, e := range n.txRing.doneStage {
		fn(e.req.Cookie)
	}
	for _, e := range n.txRing.done {
		fn(e.req.Cookie)
	}
}

func (n *NIC) eng() *sim.Engine { return n.d.k.Eng }

// serialCycles converts a wire size to link occupancy in CPU cycles.
func (n *NIC) serialCycles(wireBytes int) sim.Cycles {
	bits := uint64(wireBytes) * 8
	// cycles = bits * clockHz / linkBps
	clock := n.d.k.CPUs[0].Model.Config().ClockHz
	return bits * clock / n.cfg.LinkBps
}

// kickTransmit starts the transmit engine if idle.
func (n *NIC) kickTransmit() {
	if n.txActive {
		return
	}
	n.txActive = true
	n.transmitNext()
}

func (n *NIC) transmitNext() {
	req, ok := n.txRing.popQueued()
	if !ok {
		n.txActive = false
		return
	}
	eng := n.eng()
	start := eng.Now()
	if n.txBusyUntil > start {
		start = n.txBusyUntil
	}
	done := start + sim.Time(n.serialCycles(req.Frame.WireBytes()))
	n.txBusyUntil = done
	eng.At(done, func() {
		// Transmit DMA: flush any dirty CPU copies of the payload.
		if req.Data != 0 && req.Frame.Len > 0 {
			first := mem.LineOf(req.Data)
			last := mem.LineOf(req.Data + mem.Addr(req.Frame.Len) - 1)
			for line := first; ; line += mem.LineSize {
				n.d.k.Dir.DMARead(line)
				if line == last {
					break
				}
			}
		}
		n.txRing.markDone(req)
		n.TxFrames++
		n.TxBytes += uint64(req.Frame.Len)
		n.d.k.Trace.NICDMA(eng.Now(), n.id, false, req.Frame.Len)
		if n.peer != nil {
			if n.dropOnWire(false) {
				n.WireDrops++
			} else {
				f := req.Frame
				delay := n.cfg.WireLatencyCycles
				if n.wireFault != nil {
					delay += n.wireFault.ExtraDelay(eng.Now(), eng.RNG(), false)
				}
				n.txWireInFlight++
				eng.After(delay, func() {
					n.txWireInFlight--
					n.peer.ToPeer(f)
				})
			}
		}
		n.maybeRaiseIRQ(n.queues[0])
		n.transmitNext()
	})
}

// WireInFlight reports frames serialized onto the simulated wire (in
// either direction) whose delivery event has not yet run. The quiesce
// check needs it: a go-back sender's rewound snd_nxt can make both
// endpoints look idle while kilobytes of duplicates are still queued
// against the link.
func (n *NIC) WireInFlight() int { return n.rxWireInFlight + n.txWireInFlight }

// RxPendingClean reports filled receive descriptors awaiting softirq
// service across all queues.
func (n *NIC) RxPendingClean() int {
	total := 0
	for _, q := range n.queues {
		total += q.ring.pendingClean()
	}
	return total
}

// InjectFromWire is called by the peer to send a frame toward the SUT.
// The frame serializes on the link, DMAs into a posted receive buffer
// (invalidating any CPU copies of those lines) and eventually raises the
// device interrupt.
func (n *NIC) InjectFromWire(f WireFrame) {
	eng := n.eng()
	start := eng.Now()
	if n.rxBusyUntil > start {
		start = n.rxBusyUntil
	}
	done := start + sim.Time(n.serialCycles(f.WireBytes()))
	n.rxBusyUntil = done
	if n.dropOnWire(true) {
		n.WireDrops++
		return
	}
	if n.wireFault != nil {
		done += sim.Time(n.wireFault.ExtraDelay(eng.Now(), eng.RNG(), true))
	}
	q := n.queueFor(f.Conn)
	n.rxWireInFlight++
	eng.At(done, func() {
		n.rxWireInFlight--
		n.dmaFill(q, f)
	})
}

// dropOnWire decides the fate of a frame entering the wire: link-down
// windows lose everything, then the uniform LossRate, then the
// installed fault hook. On a healthy zero-loss device this makes no RNG
// draw (Bernoulli(0) returns without drawing), so the baseline random
// stream is untouched.
func (n *NIC) dropOnWire(rx bool) bool {
	if n.linkDown {
		n.LinkDownDrops++
		return true
	}
	eng := n.eng()
	if eng.RNG().Bernoulli(n.cfg.LossRate) {
		return true
	}
	return n.wireFault != nil && n.wireFault.Drop(eng.Now(), eng.RNG(), rx)
}

// dmaFill lands a received frame in a ring slot (or the stall queue
// while the DMA engine is frozen) and performs the DMA-write coherence
// traffic.
func (n *NIC) dmaFill(q *rxQueue, f WireFrame) {
	if n.dmaStalled {
		n.StallDeferred++
		n.stallQ = append(n.stallQ, stalledFill{q: q, f: f})
		return
	}
	slot, ok := q.ring.fill(f)
	if !ok {
		n.RxDropped++
		return
	}
	// Receive DMA: descriptor and payload lines now live in memory
	// only; the first CPU touch of each is necessarily a miss.
	n.d.k.Dir.DMAWrite(mem.LineOf(slot.descAddr))
	if f.Len > 0 {
		first := mem.LineOf(slot.buf)
		last := mem.LineOf(slot.buf + mem.Addr(f.Len) - 1)
		for line := first; ; line += mem.LineSize {
			n.d.k.Dir.DMAWrite(line)
			if line == last {
				break
			}
		}
	}
	n.RxFrames++
	n.RxBytes += uint64(f.Len)
	n.d.k.Trace.NICDMA(n.eng().Now(), n.id, true, f.Len)
	q.rxFrames++
	n.maybeRaiseIRQ(q)
}

// RxBusyUntil reports when the inbound link side frees up; peers use it
// to pace their sends to link rate.
func (n *NIC) RxBusyUntil() sim.Time { return n.rxBusyUntil }

// usecsToCycles converts a microsecond coalescing parameter to engine
// cycles at the machine's clock.
func (n *NIC) usecsToCycles(usecs uint64) uint64 {
	clock := n.d.k.CPUs[0].Model.Config().ClockHz
	return usecs * clock / 1_000_000
}

// maybeRaiseIRQ raises a queue's interrupt, honouring the configured
// coalescing model. One interrupt serves all of that queue's pending
// work.
func (n *NIC) maybeRaiseIRQ(q *rxQueue) {
	if q.masked {
		return
	}
	if q.irqPending {
		// More work arrived inside an open coalescing window.
		n.coalesceEvent(q)
		return
	}
	q.irqPending = true
	now := n.eng().Now()
	co := n.cfg.Coalesce
	switch co.Mode {
	case CoalesceTimer:
		n.armDeferred(q, now+sim.Time(n.usecsToCycles(co.Usecs)))
	case CoalesceFrames:
		q.coalesceEvents = 1
		if co.Frames <= 1 {
			n.raiseNow(q)
			return
		}
		n.armDeferred(q, now+sim.Time(n.usecsToCycles(co.Usecs)))
	case CoalesceAdaptive:
		q.coalesceEvents = 1
		n.armDeferred(q, now+sim.Time(q.windowCycles))
	default:
		// Legacy throttle: raise immediately unless the previous
		// interrupt was under CoalesceCycles ago.
		gap := sim.Time(n.cfg.CoalesceCycles)
		if q.lastIRQ == noIRQ || now >= q.lastIRQ+gap {
			n.raiseNow(q)
			return
		}
		n.armDeferred(q, q.lastIRQ+gap)
	}
}

// coalesceEvent accounts one more unit of work (a received frame or a
// TX completion) arriving while an interrupt is already pending. In
// frames mode enough of them closes the window early.
func (n *NIC) coalesceEvent(q *rxQueue) {
	if !q.deferArmed {
		return
	}
	switch n.cfg.Coalesce.Mode {
	case CoalesceFrames:
		q.coalesceEvents++
		if q.coalesceEvents >= n.cfg.Coalesce.Frames {
			n.raiseNow(q)
		}
	case CoalesceAdaptive:
		q.coalesceEvents++
	}
}

// armDeferred schedules the pending interrupt for a future cycle. The
// generation token kills the event if the raise happens some other way
// (frames threshold, link re-kick) before the timer expires.
func (n *NIC) armDeferred(q *rxQueue, at sim.Time) {
	eng := n.eng()
	n.d.k.Trace.NICCoalesce(eng.Now(), n.id, q.index, uint64(at-eng.Now()))
	q.deferArmed = true
	q.deferSeq++
	seq := q.deferSeq
	eng.At(at, func() { n.fireDeferred(q, seq) })
}

// fireDeferred is the deferred raise. Conditions are re-checked at fire
// time: a NAPI poll may have masked the queue in the interim (it owns
// the pending work — raising anyway would deliver a spurious interrupt),
// or the link may have dropped. In either case the pending latch is
// cleared so the next frame re-arms; rxDrained and SetLinkUp restart
// service for work already in the rings.
func (n *NIC) fireDeferred(q *rxQueue, seq uint64) {
	if seq != q.deferSeq || !q.irqPending || !q.deferArmed {
		return
	}
	if q.masked || n.linkDown {
		q.deferArmed = false
		q.irqPending = false
		q.coalesceEvents = 0
		return
	}
	if n.cfg.Coalesce.Mode == CoalesceAdaptive {
		n.adaptWindow(q)
	}
	n.raiseNow(q)
}

// adaptWindow is adaptive-rx moderation: a window that filled with a
// burst doubles (up to MaxUsecs) so the next burst coalesces harder; a
// window that closed nearly empty halves back toward MinUsecs.
func (n *NIC) adaptWindow(q *rxQueue) {
	co := n.cfg.Coalesce
	min, max := n.usecsToCycles(co.MinUsecs), n.usecsToCycles(co.MaxUsecs)
	if q.coalesceEvents >= co.Frames {
		q.windowCycles *= 2
		if q.windowCycles > max {
			q.windowCycles = max
		}
	} else if q.coalesceEvents <= 1 {
		q.windowCycles /= 2
		if q.windowCycles < min {
			q.windowCycles = min
		}
	}
}

func (n *NIC) raiseNow(q *rxQueue) {
	q.lastIRQ = n.eng().Now()
	q.deferArmed = false
	q.deferSeq++ // a superseded deferral event must not double-raise
	q.coalesceEvents = 0
	n.IRQsRaised++
	q.irqs++
	n.d.k.Trace.NICIRQ(q.lastIRQ, n.id, q.index, int(q.vec))
	n.d.k.APIC.Raise(q.vec)
}

// rxDrained is called by the softirq when the ring is empty. Under NAPI
// the poll re-enables the device interrupt here and re-arms if frames
// slipped in during the final check (the classic NAPI race close).
func (n *NIC) rxDrained(env *kern.Env, q *rxQueue) {
	if !n.cfg.NAPI {
		return
	}
	if q.ring.pendingClean() > 0 || (q.index == 0 && n.txRing.pendingClean() > 0) {
		// Work remains (either the other softirq's share, or frames that
		// arrived while polling): stay masked and stay on the poll list.
		n.d.repoll(env.CPU(), n, q)
		return
	}
	q.masked = false
}

// Masked reports whether the device's (first queue's) interrupts are
// masked (NAPI poll in progress).
func (n *NIC) Masked() bool { return n.queues[0].masked }

// SetNAPI toggles NAPI mode at runtime.
func (n *NIC) SetNAPI(on bool) { n.cfg.NAPI = on }

// --- descriptor rings ---

type txEntry struct {
	req      TxReq
	descAddr mem.Addr
}

type txSlot struct {
	index    int
	descAddr mem.Addr
}

// txRing is the transmit descriptor ring: reserve → commit → (wire) →
// done → clean/release.
type txRing struct {
	capacity  int
	descBase  mem.Addr
	seq       int
	inUse     int
	queued    []txEntry
	doneStage []txEntry // on the wire
	done      []txEntry
}

func newTxRing(capacity int, descBase mem.Addr) *txRing {
	return &txRing{capacity: capacity, descBase: descBase}
}

func (r *txRing) free() int { return r.capacity - r.inUse }

func (r *txRing) reserve() (txSlot, bool) {
	if r.inUse >= r.capacity {
		return txSlot{}, false
	}
	idx := r.seq % r.capacity
	r.seq++
	r.inUse++
	return txSlot{index: idx, descAddr: r.descBase + mem.Addr(idx*descBytes)}, true
}

func (r *txRing) commit(index int, req TxReq) {
	r.queued = append(r.queued, txEntry{req: req, descAddr: r.descBase + mem.Addr(index*descBytes)})
}

func (r *txRing) popQueued() (TxReq, bool) {
	if len(r.queued) == 0 {
		return TxReq{}, false
	}
	e := r.queued[0]
	r.queued = r.queued[1:]
	r.doneStage = append(r.doneStage, e)
	return e.req, true
}

// markDone moves the oldest in-flight frame to the clean list. The
// transmit engine is strictly serial, so FIFO order is exact.
func (r *txRing) markDone(TxReq) {
	e := r.doneStage[0]
	r.doneStage = r.doneStage[1:]
	r.done = append(r.done, e)
}

func (r *txRing) pendingClean() int { return len(r.done) }

type txCleanSlot struct {
	index    int
	descAddr mem.Addr
	cookie   any
}

func (r *txRing) nextClean() (txCleanSlot, bool) {
	if len(r.done) == 0 {
		return txCleanSlot{}, false
	}
	e := r.done[0]
	r.done = r.done[1:]
	return txCleanSlot{descAddr: e.descAddr, cookie: e.req.Cookie}, true
}

func (r *txRing) release(int) { r.inUse-- }

type rxSlot struct {
	index    int
	descAddr mem.Addr
	buf      mem.Addr
	cookie   any
	frame    WireFrame
}

// rxRing is the receive descriptor ring: post/refill → DMA fill → clean.
type rxRing struct {
	capacity int
	descBase mem.Addr
	seq      int
	free     []rxSlot
	filled   []rxSlot
}

func newRxRing(capacity int, descBase mem.Addr) *rxRing {
	return &rxRing{capacity: capacity, descBase: descBase}
}

func (r *rxRing) posted() int { return len(r.free) }

func (r *rxRing) post(buf mem.Addr, cookie any) {
	if len(r.free)+len(r.filled) >= r.capacity {
		panic("netdev: rx ring over-posted")
	}
	idx := r.seq % r.capacity
	r.seq++
	r.free = append(r.free, rxSlot{
		index:    idx,
		descAddr: r.descBase + mem.Addr(idx*descBytes),
		buf:      buf,
		cookie:   cookie,
	})
}

func (r *rxRing) refill(index int, buf mem.Addr, cookie any) {
	r.post(buf, cookie)
}

func (r *rxRing) fill(f WireFrame) (rxSlot, bool) {
	if len(r.free) == 0 {
		return rxSlot{}, false
	}
	s := r.free[0]
	r.free = r.free[1:]
	s.frame = f
	r.filled = append(r.filled, s)
	return s, true
}

func (r *rxRing) pendingClean() int { return len(r.filled) }

func (r *rxRing) nextClean() (rxSlot, bool) {
	if len(r.filled) == 0 {
		return rxSlot{}, false
	}
	s := r.filled[0]
	r.filled = r.filled[1:]
	return s, true
}
