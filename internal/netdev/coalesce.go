// Interrupt-coalescing models. The paper's PRO/1000s throttle with a
// single fixed minimum gap between interrupts (NICConfig.CoalesceCycles,
// the legacy mode and still the default); modern devices expose the
// richer ethtool vocabulary this file models — an absolute timer that
// delays the first interrupt after idle, a frame-count threshold that
// fires early under load, and an adaptive window that widens under burst
// and narrows when traffic thins (the cure of "Sorting Reordered Packets
// with Interrupt Coalescing", PAPERS.md: a wide-enough window lets a
// re-steered flow's old queue drain before the new queue interrupts).
//
// Like fault and workload specs, a coalescing setting is declarative
// construction-time configuration parsed from a small text spec
// ("mode,usecs=..,frames=.." or @file.json), so the result-cache
// fingerprint always sees exactly the behaviour a run was given.
package netdev

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Coalescing mode names. The zero value selects legacy.
const (
	// CoalesceLegacy is the paper-era throttle: raise immediately unless
	// the previous interrupt was less than CoalesceCycles ago.
	CoalesceLegacy = "legacy"
	// CoalesceTimer delays every first-interrupt-after-idle by a fixed
	// absolute window (ethtool rx-usecs): one interrupt per window under
	// load, added latency when idle.
	CoalesceTimer = "timer"
	// CoalesceFrames arms the timer window but fires early once a frame
	// count accumulates (ethtool rx-frames over rx-usecs).
	CoalesceFrames = "frames"
	// CoalesceAdaptive starts from the minimum window and doubles it
	// whenever a window fills with a burst (≥ Frames events), halving
	// back when a window closes nearly empty — adaptive-rx moderation.
	CoalesceAdaptive = "adaptive"
)

// CoalesceConfig selects and parameterizes a device's coalescing model.
// The zero value (Mode "") is the legacy fixed-gap throttle, byte-
// identical to the behaviour before this knob existed.
type CoalesceConfig struct {
	// Mode is one of "", legacy, timer, frames, adaptive.
	Mode string `json:"mode"`
	// Usecs is the timer window in microseconds (timer and frames
	// modes).
	Usecs uint64 `json:"usecs,omitempty"`
	// Frames is the early-fire threshold (frames mode) or the burst
	// threshold that widens the adaptive window.
	Frames int `json:"frames,omitempty"`
	// MinUsecs and MaxUsecs bound the adaptive window.
	MinUsecs uint64 `json:"min_usecs,omitempty"`
	MaxUsecs uint64 `json:"max_usecs,omitempty"`
}

// Legacy reports whether the config is the paper-era fixed-gap throttle.
func (c CoalesceConfig) Legacy() bool {
	return c.Mode == "" || c.Mode == CoalesceLegacy
}

// ApplyDefaults fills unset parameters with ethtool-flavoured defaults.
func (c *CoalesceConfig) ApplyDefaults() {
	switch c.Mode {
	case CoalesceTimer:
		if c.Usecs == 0 {
			c.Usecs = 50
		}
	case CoalesceFrames:
		if c.Usecs == 0 {
			c.Usecs = 200
		}
		if c.Frames == 0 {
			c.Frames = 8
		}
	case CoalesceAdaptive:
		if c.MinUsecs == 0 {
			c.MinUsecs = 5
		}
		if c.MaxUsecs == 0 {
			c.MaxUsecs = 250
		}
		if c.Frames == 0 {
			c.Frames = 8
		}
	}
}

// Validate rejects configs the device cannot honour.
func (c CoalesceConfig) Validate() error {
	switch c.Mode {
	case "", CoalesceLegacy:
		return nil
	case CoalesceTimer:
		if c.Usecs == 0 {
			return fmt.Errorf("coalesce: timer mode needs usecs > 0")
		}
	case CoalesceFrames:
		if c.Usecs == 0 || c.Frames < 1 {
			return fmt.Errorf("coalesce: frames mode needs usecs > 0 and frames >= 1")
		}
	case CoalesceAdaptive:
		if c.MinUsecs == 0 || c.MaxUsecs < c.MinUsecs || c.Frames < 1 {
			return fmt.Errorf("coalesce: adaptive mode needs 0 < min <= max and frames >= 1")
		}
	default:
		return fmt.Errorf("coalesce: unknown mode %q (legacy|timer|frames|adaptive)", c.Mode)
	}
	return nil
}

// String renders the config in spec form (diagnostics, fingerprints).
func (c CoalesceConfig) String() string {
	if c.Legacy() {
		return CoalesceLegacy
	}
	var b strings.Builder
	b.WriteString(c.Mode)
	if c.Usecs != 0 {
		fmt.Fprintf(&b, ",usecs=%d", c.Usecs)
	}
	if c.Frames != 0 {
		fmt.Fprintf(&b, ",frames=%d", c.Frames)
	}
	if c.MinUsecs != 0 {
		fmt.Fprintf(&b, ",min=%d", c.MinUsecs)
	}
	if c.MaxUsecs != 0 {
		fmt.Fprintf(&b, ",max=%d", c.MaxUsecs)
	}
	return b.String()
}

// ParseCoalesce resolves a coalescing spec: "" for legacy,
// "@file.json" for a JSON CoalesceConfig, or an inline
// "mode,key=value,..." like fault and workload specs, e.g.
//
//	timer,usecs=100
//	frames,frames=16,usecs=200
//	adaptive,min=5,max=250,frames=8
//
// Defaults are applied and the result validated; a nil return with nil
// error means the legacy throttle.
func ParseCoalesce(spec string) (*CoalesceConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var c CoalesceConfig
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("coalesce: %w", err)
		}
		if err := json.Unmarshal(data, &c); err != nil {
			return nil, fmt.Errorf("coalesce: %s: %w", spec[1:], err)
		}
	} else {
		fields := strings.Split(spec, ",")
		c.Mode = strings.TrimSpace(fields[0])
		for _, f := range fields[1:] {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			kv := strings.SplitN(f, "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("coalesce: %q is not key=value", f)
			}
			key := strings.TrimSpace(kv[0])
			val, err := strconv.ParseUint(strings.TrimSpace(kv[1]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("coalesce: %s: %w", key, err)
			}
			switch key {
			case "usecs":
				c.Usecs = val
			case "frames":
				c.Frames = int(val)
			case "min", "min_usecs":
				c.MinUsecs = val
			case "max", "max_usecs":
				c.MaxUsecs = val
			default:
				return nil, fmt.Errorf("coalesce: unknown key %q (usecs|frames|min|max)", key)
			}
		}
	}
	c.ApplyDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Legacy() {
		c.Mode = CoalesceLegacy
		return &c, nil
	}
	return &c, nil
}
