package netdev

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

// fakeStack is a minimal protocol layer: a trivial buffer pool, received
// packet capture and freed-cookie capture.
type fakeStack struct {
	k        *kern.Kernel
	bufs     []mem.Addr
	received []RxPacket
	freed    []any
}

func newFakeStack(k *kern.Kernel) *fakeStack {
	fs := &fakeStack{k: k}
	for i := 0; i < 1024; i++ {
		fs.bufs = append(fs.bufs, k.Space.AllocPage(2048, "rxbuf"))
	}
	return fs
}

func (fs *fakeStack) hooks() Hooks {
	return Hooks{
		RxUp:   func(env *kern.Env, pkt RxPacket) { fs.received = append(fs.received, pkt) },
		TxDone: func(env *kern.Env, cookie any) { fs.freed = append(fs.freed, cookie) },
		AllocRxBuf: func(env *kern.Env) (mem.Addr, any) {
			b := fs.bufs[0]
			fs.bufs = fs.bufs[1:]
			return b, b
		},
	}
}

type fakePeer struct {
	got []WireFrame
}

func (p *fakePeer) ToPeer(f WireFrame) { p.got = append(p.got, f) }

type rig struct {
	eng  *sim.Engine
	k    *kern.Kernel
	d    *Driver
	n    *NIC
	fs   *fakeStack
	peer *fakePeer
	ctr  *perf.Counters
	tab  *perf.SymbolTable
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, 2)
	k := kern.New(kern.Config{
		Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
		NumCPUs: 2, CPU: cpu.DefaultConfig(), Tune: kern.DefaultTuning(),
	})
	t.Cleanup(k.Shutdown)
	fs := newFakeStack(k)
	d := NewDriver(k, fs.hooks())
	n := d.AddNIC(DefaultNICConfig(0x19))
	peer := &fakePeer{}
	n.SetPeer(peer)

	// Prime the receive ring.
	var bufs []mem.Addr
	var cookies []any
	for i := 0; i < 64; i++ {
		b := fs.bufs[0]
		fs.bufs = fs.bufs[1:]
		bufs = append(bufs, b)
		cookies = append(cookies, b)
	}
	n.PrimeRx(bufs, cookies)
	return &rig{eng: eng, k: k, d: d, n: n, fs: fs, peer: peer, ctr: ctr, tab: tab}
}

func TestRxFrameReachesStackOnCPU0(t *testing.T) {
	r := newRig(t)
	f := WireFrame{Conn: 1, Seq: 0, Len: 1460, Flags: FlagPsh}
	r.eng.At(1000, func() { r.n.InjectFromWire(f) })
	r.eng.Run(50_000_000)
	if len(r.fs.received) != 1 {
		t.Fatalf("received %d packets, want 1", len(r.fs.received))
	}
	got := r.fs.received[0]
	if got.Frame.Conn != 1 || got.Frame.Len != 1460 {
		t.Fatalf("frame mangled: %+v", got.Frame)
	}
	if got.Data == 0 {
		t.Fatal("no DMA buffer attached")
	}
	// Default affinity mask delivers to CPU0.
	isr := r.tab.Lookup("IRQ0x19_interrupt")
	if c := r.ctr.Get(0, isr, perf.IRQsReceived); c != 1 {
		t.Fatalf("CPU0 handler irqs = %d, want 1", c)
	}
	if r.n.RxFrames != 1 || r.n.RxBytes != 1460 {
		t.Fatalf("stats: %d frames %d bytes", r.n.RxFrames, r.n.RxBytes)
	}
}

func TestRxDMAInvalidatesCPUCopies(t *testing.T) {
	r := newRig(t)
	// Pre-warm the buffer that will receive the first frame on CPU1.
	buf := r.n.queues[0].ring.free[0].buf
	r.k.CPUs[1].Model.Hierarchy().WarmRange(buf, 1460)
	if !r.k.Dir.HasCopy(1, mem.LineOf(buf)) {
		t.Fatal("warmup did not install copies")
	}
	r.eng.At(1000, func() { r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460}) })
	r.eng.Run(50_000_000)
	if r.k.Dir.HasCopy(1, mem.LineOf(buf)) {
		t.Fatal("receive DMA left a stale CPU copy — RX payload must be uncached")
	}
}

func TestRingRefillAfterClean(t *testing.T) {
	r := newRig(t)
	posted := r.n.RxPosted()
	for i := 0; i < 10; i++ {
		d := uint64(1000 + i*50_000)
		r.eng.At(sim.Time(d), func() { r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460}) })
	}
	r.eng.Run(100_000_000)
	if len(r.fs.received) != 10 {
		t.Fatalf("received %d, want 10", len(r.fs.received))
	}
	if r.n.RxPosted() != posted {
		t.Fatalf("ring not refilled: %d posted, want %d", r.n.RxPosted(), posted)
	}
	if r.n.RxDropped != 0 {
		t.Fatalf("dropped %d frames", r.n.RxDropped)
	}
}

func TestTxSerializationAtLinkRate(t *testing.T) {
	r := newRig(t)
	payload := r.k.Space.AllocPage(2048, "txbuf")
	var sent int
	p := r.k.NewProc("sender_fn", perf.BinOther, 256)
	r.k.Spawn("sender", 0, 0, func(e *kern.Env) {
		for i := 0; i < 5; i++ {
			e.Run(p, func(x *cpu.Exec) { x.Instr(100, 0, 0) })
			ok := r.d.Xmit(e, r.n, TxReq{
				Frame:  WireFrame{Conn: 1, Seq: uint64(i * 1460), Len: 1460, Flags: FlagPsh},
				Data:   payload,
				Cookie: i,
			})
			if !ok {
				t.Error("xmit failed")
			}
			sent++
		}
	})
	r.eng.Run(500_000_000)
	if sent != 5 || len(r.peer.got) != 5 {
		t.Fatalf("sent %d, peer got %d", sent, len(r.peer.got))
	}
	// 5 × 1526-byte wire frames at 1 Gb/s on a 2 GHz clock ≈ 24.4 µs ≈
	// 122k cycles minimum between first xmit and last delivery.
	if r.n.TxBytes != 5*1460 {
		t.Fatalf("TxBytes = %d", r.n.TxBytes)
	}
	// Every clone cookie must come back through NET_TX.
	if len(r.fs.freed) != 5 {
		t.Fatalf("freed %d cookies, want 5", len(r.fs.freed))
	}
	for i, c := range r.fs.freed {
		if c.(int) != i {
			t.Fatalf("cookies out of order: %v", r.fs.freed)
		}
	}
}

func TestTxDMAFlushesDirtyPayload(t *testing.T) {
	r := newRig(t)
	payload := r.k.Space.AllocPage(2048, "txbuf")
	p := r.k.NewProc("sender_fn", perf.BinOther, 256)
	r.k.Spawn("sender", 0, 0, func(e *kern.Env) {
		// Dirty the payload from CPU0, then transmit it.
		e.Run(p, func(x *cpu.Exec) { x.Instr(100, 0, 0).Store(payload, 1460) })
		r.d.Xmit(e, r.n, TxReq{Frame: WireFrame{Conn: 1, Len: 1460}, Data: payload, Cookie: "c"})
	})
	r.eng.Run(100_000_000)
	if len(r.peer.got) != 1 {
		t.Fatal("frame not delivered")
	}
	// After transmit DMA the line must be clean everywhere.
	if r.k.Dir.DirtyElsewhere(1, mem.LineOf(payload)) {
		t.Fatal("payload line still dirty after transmit DMA")
	}
	// The default chipset model invalidates on DMA read, so the CPU copy
	// is gone; with invalidation disabled it must survive.
	if r.k.Dir.HasCopy(0, mem.LineOf(payload)) {
		t.Fatal("invalidating transmit DMA left a CPU copy")
	}
}

func TestTxDMAKeepsCopyWithoutInvalidation(t *testing.T) {
	r := newRig(t)
	r.k.Dir.DMAReadInvalidates = false
	payload := r.k.Space.AllocPage(2048, "txbuf")
	p := r.k.NewProc("sender_fn2", perf.BinOther, 256)
	r.k.Spawn("sender", 0, 0, func(e *kern.Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(100, 0, 0).Store(payload, 1460) })
		r.d.Xmit(e, r.n, TxReq{Frame: WireFrame{Conn: 1, Len: 1460}, Data: payload, Cookie: "c"})
	})
	r.eng.Run(100_000_000)
	if !r.k.Dir.HasCopy(0, mem.LineOf(payload)) {
		t.Fatal("non-invalidating transmit DMA should keep the CPU copy")
	}
}

func TestIRQCoalescingBatchesArrivals(t *testing.T) {
	r := newRig(t)
	// Widen the throttle window beyond a full-MTU serialization time so
	// back-to-back arrivals coalesce (the default window is per-packet,
	// as the paper-era driver behaved).
	r.n.cfg.CoalesceCycles = 80_000
	// 20 frames arriving back-to-back: far fewer than 20 interrupts.
	r.eng.At(1000, func() {
		for i := 0; i < 20; i++ {
			r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460})
		}
	})
	r.eng.Run(200_000_000)
	if len(r.fs.received) != 20 {
		t.Fatalf("received %d, want 20", len(r.fs.received))
	}
	if r.n.IRQsRaised >= 20 {
		t.Fatalf("%d interrupts for 20 back-to-back frames — no coalescing", r.n.IRQsRaised)
	}
	if r.n.IRQsRaised == 0 {
		t.Fatal("no interrupts at all")
	}
}

func TestIRQAffinityMovesHandlerAndSoftirq(t *testing.T) {
	r := newRig(t)
	if err := r.k.APIC.SetAffinity(0x19, 1<<1); err != nil {
		t.Fatal(err)
	}
	r.eng.At(1000, func() { r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460}) })
	r.eng.Run(50_000_000)
	if len(r.fs.received) != 1 {
		t.Fatal("frame lost")
	}
	isr := r.tab.Lookup("IRQ0x19_interrupt")
	clean := r.tab.Lookup("e1000_clean_rx_irq")
	if got := r.ctr.Get(1, isr, perf.IRQsReceived); got != 1 {
		t.Fatalf("CPU1 top halves = %d, want 1", got)
	}
	// The bottom half must have followed the top half to CPU1.
	if got := r.ctr.Get(1, clean, perf.Instructions); got == 0 {
		t.Fatal("rx clean did not run on CPU1")
	}
	if got := r.ctr.Get(0, clean, perf.Instructions); got != 0 {
		t.Fatalf("rx clean leaked onto CPU0 (%d instructions)", got)
	}
}

func TestRxRingOverflowDropsFrames(t *testing.T) {
	r := newRig(t)
	// Only 64 buffers primed; injecting 80 back-to-back with interrupts
	// suppressed long enough means the tail must drop. Stall CPU0 with a
	// long-running task so cleaning cannot keep up.
	p := r.k.NewProc("hog", perf.BinOther, 256)
	r.k.Spawn("hog", 0, 1, func(e *kern.Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(100_000_000, 0, 0) })
	})
	r.eng.At(1000, func() {
		for i := 0; i < 80; i++ {
			r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460})
		}
	})
	r.eng.Run(1_000_000_000)
	if r.n.RxDropped == 0 {
		t.Fatal("expected drops with overcommitted ring")
	}
	if len(r.fs.received)+int(r.n.RxDropped) != 80 {
		t.Fatalf("received %d + dropped %d != 80", len(r.fs.received), r.n.RxDropped)
	}
}

func TestWireBytesIncludesHeaders(t *testing.T) {
	f := WireFrame{Len: 1460}
	if f.WireBytes() != 1460+66 {
		t.Fatalf("WireBytes = %d", f.WireBytes())
	}
	ack := WireFrame{Len: 0, Flags: FlagAck}
	if ack.WireBytes() != 66 {
		t.Fatalf("pure ACK WireBytes = %d", ack.WireBytes())
	}
}

// Link serialization must be cycle-exact: a 1526-byte wire frame at
// 1 Gb/s on a 2 GHz clock occupies 1526*8*2 = 24416 cycles, and
// back-to-back frames serialize strictly end-to-end.
func TestSerializationTimingExact(t *testing.T) {
	r := newRig(t)
	var arrivals []sim.Time
	hook := func() { arrivals = append(arrivals, r.eng.Now()) }
	// Inject two frames at t=1000; they must complete at
	// 1000+24416 and 1000+2*24416.
	r.eng.At(1000, func() {
		r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460})
		r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460})
	})
	r.eng.At(1000+24416, hook)
	r.eng.At(1000+2*24416, hook)
	r.eng.Run(100_000_000)
	if r.n.RxFrames != 2 {
		t.Fatalf("frames = %d", r.n.RxFrames)
	}
	if got := r.n.RxBusyUntil(); got != 1000+2*24416 {
		t.Fatalf("rx link busy until %d, want %d", got, 1000+2*24416)
	}
}

// XmitBlocking parks a task until the ring opens up.
func TestXmitBlockingSleepsUntilRingSpace(t *testing.T) {
	r := newRig(t)
	// Tiny ring to force blocking quickly.
	small := DefaultNICConfig(0x20)
	small.TxRing = 4
	n2 := r.d.AddNIC(small)
	n2.SetPeer(&fakePeer{})
	payload := r.k.Space.AllocPage(2048, "buf")
	sent := 0
	p := r.k.NewProc("blocker", perf.BinOther, 256)
	r.k.Spawn("b", 0, 0, func(e *kern.Env) {
		for i := 0; i < 12; i++ {
			e.Run(p, func(x *cpu.Exec) { x.Instr(10, 0, 0) })
			r.d.XmitBlocking(e, n2, TxReq{
				Frame:  WireFrame{Conn: 9, Seq: uint64(i), Len: 1460},
				Data:   payload,
				Cookie: i,
			})
			sent++
		}
	})
	r.eng.Run(2_000_000_000)
	if sent != 12 {
		t.Fatalf("sent %d frames through a 4-slot ring, want 12", sent)
	}
	if n2.TxFrames != 12 {
		t.Fatalf("nic transmitted %d", n2.TxFrames)
	}
}

// Wire loss: dropped frames are counted and never reach the stack or
// the peer; LossRate 0 never drops.
func TestWireLossCountsAndDrops(t *testing.T) {
	r := newRig(t)
	r.n.cfg.LossRate = 1.0 // drop everything (loss is construction-time config; tests may poke)
	r.eng.At(1000, func() {
		for i := 0; i < 5; i++ {
			r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460})
		}
	})
	r.eng.Run(50_000_000)
	if len(r.fs.received) != 0 {
		t.Fatalf("stack received %d frames across a fully lossy link", len(r.fs.received))
	}
	if r.n.WireDrops != 5 {
		t.Fatalf("WireDrops = %d, want 5", r.n.WireDrops)
	}
	// Transmit direction too.
	payload := r.k.Space.AllocPage(2048, "txbuf")
	p := r.k.NewProc("s", perf.BinOther, 256)
	r.k.Spawn("s", 0, 0, func(e *kern.Env) {
		e.Run(p, func(x *cpu.Exec) { x.Instr(10, 0, 0) })
		r.d.Xmit(e, r.n, TxReq{Frame: WireFrame{Conn: 1, Len: 1460}, Data: payload, Cookie: "c"})
	})
	r.eng.Run(r.eng.Now() + 50_000_000)
	if len(r.peer.got) != 0 {
		t.Fatalf("peer got %d frames across a fully lossy link", len(r.peer.got))
	}
	// The clone must still be reclaimed (TX completion is local).
	if len(r.fs.freed) != 1 {
		t.Fatalf("tx cookie not freed under loss: %d", len(r.fs.freed))
	}
}

// NAPI: everything is delivered and the device is never left masked.
// (Interrupt mitigation only shows under processing pressure; the
// machine-level comparison lives in internal/core.)
func TestNAPIDeliversAndUnmasks(t *testing.T) {
	r := newRig(t)
	r.n.SetNAPI(true)
	for i := 0; i < 60; i++ {
		d := uint64(1000 + i*30_000)
		r.eng.At(sim.Time(d), func() { r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460}) })
	}
	r.eng.Run(200_000_000)
	if r.n.Masked() {
		t.Fatal("device left masked after drain")
	}
	if len(r.fs.received) != 60 {
		t.Fatalf("delivered %d frames, want 60", len(r.fs.received))
	}
}

// NAPI never deadlocks on a spurious interrupt (no pending work).
func TestNAPISpuriousIRQUnmasks(t *testing.T) {
	r := newRig(t)
	r.n.SetNAPI(true)
	r.eng.At(1000, func() { r.k.APIC.Raise(0x19) }) // nothing pending
	r.eng.At(5_000_000, func() { r.n.InjectFromWire(WireFrame{Conn: 1, Len: 1460}) })
	r.eng.Run(100_000_000)
	if len(r.fs.received) != 1 {
		t.Fatal("frame after spurious irq never delivered (mask stuck)")
	}
}
