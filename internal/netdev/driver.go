package netdev

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/perf"
)

// Hooks connects the driver to the protocol stack above it.
type Hooks struct {
	// RxUp delivers one received packet to the protocol layer in softirq
	// context. Required.
	RxUp func(env *kern.Env, pkt RxPacket)
	// TxDone releases a transmitted frame's cookie (the stack frees its
	// skb clone) in softirq context. Required.
	TxDone func(env *kern.Env, cookie any)
	// AllocRxBuf refills one receive-ring slot from the stack's buffer
	// pool in softirq context, returning the buffer address and a cookie.
	// Required.
	AllocRxBuf func(env *kern.Env) (mem.Addr, any)
}

// pollEntry is one (device, queue) pair awaiting softirq service.
type pollEntry struct {
	nic *NIC
	q   *rxQueue
}

// Driver is the e1000-class driver shared by all NICs: common procedure
// symbols, the NET_RX/NET_TX softirq handlers, and per-CPU poll lists
// that keep bottom halves on the processor that took the top half.
type Driver struct {
	k     *kern.Kernel
	hooks Hooks
	nics  []*NIC

	// Per-CPU lists of queues/devices with pending work.
	rxPoll [][]pollEntry
	txPoll [][]*NIC

	procNetRxAction kern.Proc
	procCleanRx     kern.Proc
	procCleanTx     kern.Proc
	procXmit        kern.Proc
	procNetifRx     kern.Proc
}

// NewDriver registers the driver's procedures and softirq handlers with
// the kernel.
func NewDriver(k *kern.Kernel, hooks Hooks) *Driver {
	if hooks.RxUp == nil || hooks.TxDone == nil || hooks.AllocRxBuf == nil {
		panic("netdev: all driver hooks are required")
	}
	d := &Driver{
		k:      k,
		hooks:  hooks,
		rxPoll: make([][]pollEntry, len(k.CPUs)),
		txPoll: make([][]*NIC, len(k.CPUs)),

		procNetRxAction: k.NewProc("net_rx_action", perf.BinDriver, 768),
		procCleanRx:     k.NewProc("e1000_clean_rx_irq", perf.BinDriver, 1536),
		procCleanTx:     k.NewProc("e1000_clean_tx_irq", perf.BinDriver, 1024),
		procXmit:        k.NewProc("e1000_xmit_frame", perf.BinDriver, 1536),
		procNetifRx:     k.NewProc("netif_rx", perf.BinDriver, 512),
	}
	k.RegisterSoftirq(kern.SoftirqNetRx, d.netRxAction)
	k.RegisterSoftirq(kern.SoftirqNetTx, d.netTxAction)
	return d
}

// AddNIC creates a NIC and registers one top half per queue (a classic
// device has exactly one queue on cfg.Vector; RSS devices register one
// vector per queue). Vectors follow the paper's Table 4 numbering
// (IRQ0x19_interrupt and friends).
func (d *Driver) AddNIC(cfg NICConfig) *NIC {
	n := newNIC(d, len(d.nics), cfg)
	d.nics = append(d.nics, n)
	for _, q := range n.queues {
		q := q
		d.k.RegisterIRQ(q.vec, &kern.IRQAction{
			Proc: q.procISR,
			Build: func(c *kern.KCPU, x *cpu.Exec) {
				// Read the interrupt cause register (uncached MMIO), ack
				// it, touch the device's irq bookkeeping.
				x.Instr(180, 0.18, 0.03).Uncached(2)
			},
			Effect: func(c *kern.KCPU) { d.irqEffect(c, n, q) },
		})
	}
	return n
}

// NICs returns the attached devices.
func (d *Driver) NICs() []*NIC { return d.nics }

// irqEffect runs when a queue's top half completes on c: the queue joins
// c's poll lists and the matching softirqs are raised locally.
func (d *Driver) irqEffect(c *kern.KCPU, n *NIC, q *rxQueue) {
	q.irqPending = false
	if n.cfg.NAPI {
		// Mask the queue: the poll owns it until the rings drain.
		q.masked = true
	}
	id := c.ID()
	if q.ring.pendingClean() > 0 {
		if !containsEntry(d.rxPoll[id], n, q) {
			d.rxPoll[id] = append(d.rxPoll[id], pollEntry{nic: n, q: q})
		}
		c.RaiseSoftirq(kern.SoftirqNetRx)
	}
	if q.index == 0 && n.txRing.pendingClean() > 0 {
		if !contains(d.txPoll[id], n) {
			d.txPoll[id] = append(d.txPoll[id], n)
		}
		c.RaiseSoftirq(kern.SoftirqNetTx)
	}
	if n.cfg.NAPI && q.ring.pendingClean() == 0 &&
		(q.index != 0 || n.txRing.pendingClean() == 0) {
		// Spurious interrupt: nothing to poll, so unmask immediately or
		// the queue would stay silent forever.
		q.masked = false
	}
}

// repoll re-enlists a NAPI queue on the processor's poll lists without a
// fresh interrupt.
func (d *Driver) repoll(c *kern.KCPU, n *NIC, q *rxQueue) {
	id := c.ID()
	if q.ring.pendingClean() > 0 {
		if !containsEntry(d.rxPoll[id], n, q) {
			d.rxPoll[id] = append(d.rxPoll[id], pollEntry{nic: n, q: q})
		}
		c.RaiseSoftirq(kern.SoftirqNetRx)
	}
	if q.index == 0 && n.txRing.pendingClean() > 0 {
		if !contains(d.txPoll[id], n) {
			d.txPoll[id] = append(d.txPoll[id], n)
		}
		c.RaiseSoftirq(kern.SoftirqNetTx)
	}
}

func contains(list []*NIC, n *NIC) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}

func containsEntry(list []pollEntry, n *NIC, q *rxQueue) bool {
	for _, x := range list {
		if x.nic == n && x.q == q {
			return true
		}
	}
	return false
}

// netRxAction is the NET_RX softirq: drain each polled NIC's receive
// ring, refill it, and push packets up the stack.
func (d *Driver) netRxAction(env *kern.Env) {
	id := env.CPU().ID()
	list := d.rxPoll[id]
	d.rxPoll[id] = nil
	env.Run(d.procNetRxAction, func(x *cpu.Exec) {
		x.Instr(150, 0.2, 0.02)
	})
	for _, e := range list {
		d.cleanRx(env, e.nic, e.q)
	}
}

func (d *Driver) cleanRx(env *kern.Env, n *NIC, q *rxQueue) {
	for {
		slot, ok := q.ring.nextClean()
		if !ok {
			break
		}
		pkt := RxPacket{Frame: slot.frame, Data: slot.buf, Cookie: slot.cookie, NIC: n.id}
		// Walk the descriptor (DMA-written, so cold) and the skb header;
		// then refill the slot from the buffer pool.
		env.Run(d.procCleanRx, func(x *cpu.Exec) {
			x.Instr(160, 0.15, 0.02).Load(slot.descAddr, descBytes).Store(slot.descAddr, 8)
		})
		buf, cookie := d.hooks.AllocRxBuf(env)
		q.ring.refill(slot.index, buf, cookie)
		env.Run(d.procNetifRx, func(x *cpu.Exec) {
			x.Instr(90, 0.18, 0.02)
		})
		d.hooks.RxUp(env, pkt)
	}
	// Ring drained: new arrivals will raise a fresh interrupt.
	n.rxDrained(env, q)
}

// netTxAction is the NET_TX softirq: reclaim completed transmit
// descriptors and hand their cookies back to the stack.
func (d *Driver) netTxAction(env *kern.Env) {
	id := env.CPU().ID()
	list := d.txPoll[id]
	d.txPoll[id] = nil
	for _, n := range list {
		d.cleanTx(env, n)
		n.rxDrained(env, n.queues[0])
	}
}

func (d *Driver) cleanTx(env *kern.Env, n *NIC) {
	for {
		// Lock per descriptor, as the driver does, so a transmitter on
		// another processor is not held off for a whole clean pass.
		n.txLock.Lock(env)
		slot, ok := n.txRing.nextClean()
		if !ok {
			n.txLock.Unlock(env)
			break
		}
		env.Run(d.procCleanTx, func(x *cpu.Exec) {
			x.Instr(120, 0.15, 0.02).Load(slot.descAddr, descBytes).Store(slot.descAddr, 8)
		})
		cookie := slot.cookie
		n.txRing.release(slot.index)
		n.txLock.Unlock(env)
		d.hooks.TxDone(env, cookie)
	}
	if n.txWait != nil && n.txRing.free() > 0 {
		n.txWait.WakeAll(d.k, env)
	}
}

// Xmit queues one frame on n for transmission from env's context: the
// driver writes a descriptor, rings the doorbell (uncached MMIO) and the
// NIC serializes the frame onto the wire. It returns false if the
// transmit ring is full (the caller backs off; with the paper's ring
// sizes and window limits this indicates miscalibration, so callers may
// treat it as an error).
func (d *Driver) Xmit(env *kern.Env, n *NIC, req TxReq) bool {
	n.txLock.Lock(env)
	slot, ok := n.txRing.reserve()
	if !ok {
		n.txLock.Unlock(env)
		return false
	}
	env.Run(d.procXmit, func(x *cpu.Exec) {
		x.Instr(260, 0.15, 0.025).Store(slot.descAddr, descBytes).Uncached(1)
	})
	n.txRing.commit(slot.index, req)
	n.txLock.Unlock(env)
	n.kickTransmit()
	return true
}

// XmitBlocking queues a frame, sleeping on the device's ring to open up
// when full. Only task context may use it.
func (d *Driver) XmitBlocking(env *kern.Env, n *NIC, req TxReq) {
	for !d.Xmit(env, n, req) {
		if env.Task() == nil {
			panic(fmt.Sprintf("netdev: tx ring full in softirq on nic %d", n.id))
		}
		env.Sleep(n.txWait)
	}
}
