// Package netdev models the network devices of the system under test:
// eight server-class gigabit NICs (Intel PRO/1000 MT in the paper) with
// transmit/receive descriptor rings, DMA that interacts with the cache
// coherence directory (receive DMA invalidates CPU copies — which is why
// "data copies is always uncached on the receive side", §6.1), interrupt
// generation with a small coalescing window, and the driver code that the
// paper's Driver bin profiles: per-vector top halves (IRQ0xNN_interrupt)
// plus ring cleaning and the softnet receive action.
package netdev

import (
	"repro/internal/mem"
)

// Flags mark TCP-relevant properties of a wire frame; netdev itself only
// sizes and routes frames, the stack interprets them.
type Flags uint8

const (
	// FlagAck marks a pure or piggybacked acknowledgment.
	FlagAck Flags = 1 << iota
	// FlagPsh marks a data push.
	FlagPsh
	// FlagSyn marks connection setup.
	FlagSyn
	// FlagFin marks connection teardown.
	FlagFin
)

// WireFrame is what travels on a link. Header fields are plain values —
// the remote clients are ideal traffic endpoints whose memory is not
// simulated — while payload bytes on the SUT side live at real simulated
// addresses (DataAddr) so DMA has cache effects.
type WireFrame struct {
	// Conn identifies the TCP connection (one per NIC in the paper's
	// setup).
	Conn int
	// Seq is the first payload byte's sequence number.
	Seq uint64
	// Ack is the cumulative acknowledgment carried by the frame.
	Ack uint64
	// Window is the advertised receive window in bytes.
	Window int
	// Len is the payload length in bytes (0 for a pure ACK).
	Len int
	// Flags carries the TCP-ish flag bits.
	Flags Flags
}

// WireBytes reports the frame's size on the wire: payload plus the
// Ethernet+IP+TCP header overhead.
func (f *WireFrame) WireBytes() int {
	const headers = 14 + 20 + 20 + 12 // eth + ip + tcp + timestamp option
	return f.Len + headers
}

// TxReq is a transmit request handed to a NIC by the driver: the wire
// frame plus the simulated buffer the payload occupies (DMA-read at
// serialization time) and an opaque cookie returned at completion so the
// stack can free its clone.
type TxReq struct {
	Frame  WireFrame
	Data   mem.Addr // payload buffer; 0 for pure ACKs carrying no data
	Cookie any
}

// RxPacket is a received frame after DMA: the wire frame plus the receive
// buffer it was placed in and the driver cookie of that buffer.
type RxPacket struct {
	Frame  WireFrame
	Data   mem.Addr
	Cookie any
	NIC    int
}

// Peer is the far end of a NIC's link: an ideal client machine. The NIC
// calls ToPeer when a transmitted frame finishes serializing; the peer
// calls NIC.InjectFromWire to send toward the SUT.
type Peer interface {
	// ToPeer delivers a frame that left the SUT.
	ToPeer(f WireFrame)
}
