package tcp

import (
	"testing"

	"repro/internal/kern"
	"repro/internal/perf"
)

func TestConnectEstablishesThenTransfers(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// Rebuild the connection unestablished on a fresh conn id.
	sock, client := r.st.NewConnClosed(2, r.nic)
	if sock.State() != StateClosed {
		t.Fatalf("initial state %v, want CLOSED", sock.State())
	}
	userBuf := r.k.Space.AllocPage(16<<10, "userbuf")
	var wrote bool
	r.k.Spawn("dialer", 0, 0, func(e *kern.Env) {
		sock.Connect(e)
		if sock.State() != StateEstablished {
			t.Errorf("post-connect state %v", sock.State())
		}
		sock.Write(e, userBuf, 16<<10)
		wrote = true
		sock.Close(e)
	})
	r.eng.Run(2_000_000_000)
	if !wrote {
		t.Fatal("transfer after connect never completed")
	}
	if sock.State() != StateClosed {
		t.Fatalf("post-close state %v, want CLOSED", sock.State())
	}
	if client.BytesReceived != 16<<10 {
		t.Fatalf("client received %d bytes", client.BytesReceived)
	}
}

func TestConnectIsIdempotentWhenEstablished(t *testing.T) {
	r := newRig(t, DefaultConfig())
	var done bool
	r.k.Spawn("d", 0, 0, func(e *kern.Env) {
		r.s.Connect(e) // NewConn sockets start established
		done = true
	})
	r.eng.Run(100_000_000)
	if !done {
		t.Fatal("Connect on established socket blocked")
	}
}

func TestCloseIsIdempotentWhenClosed(t *testing.T) {
	r := newRig(t, DefaultConfig())
	sock, _ := r.st.NewConnClosed(3, r.nic)
	var done bool
	r.k.Spawn("d", 0, 0, func(e *kern.Env) {
		sock.Close(e)
		done = true
	})
	r.eng.Run(100_000_000)
	if !done {
		t.Fatal("Close on closed socket blocked")
	}
}

func TestHandshakeCostsLandInEngine(t *testing.T) {
	r := newRig(t, DefaultConfig())
	sock, _ := r.st.NewConnClosed(4, r.nic)
	r.k.Spawn("d", 0, 0, func(e *kern.Env) {
		sock.Connect(e)
		sock.Close(e)
	})
	r.eng.Run(1_000_000_000)
	conn := r.tab.Lookup("tcp_connect")
	cls := r.tab.Lookup("tcp_close")
	if r.ctr.SymbolTotal(conn, perf.Instructions) == 0 {
		t.Error("tcp_connect charged no instructions")
	}
	if r.ctr.SymbolTotal(cls, perf.Instructions) == 0 {
		t.Error("tcp_close charged no instructions")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateClosed: "CLOSED", StateSynSent: "SYN_SENT",
		StateEstablished: "ESTABLISHED", StateFinWait: "FIN_WAIT",
		State(9): "state(9)",
	} {
		if st.String() != want {
			t.Errorf("%d -> %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestConnectionChurnKeepsPoolBalanced(t *testing.T) {
	r := newRig(t, DefaultConfig())
	sock, _ := r.st.NewConnClosed(5, r.nic)
	free0 := r.st.Pool.FreeCloneCount()
	userBuf := r.k.Space.AllocPage(8<<10, "userbuf")
	cycles := 0
	r.k.Spawn("churn", 0, 0, func(e *kern.Env) {
		for i := 0; i < 5; i++ {
			sock.Connect(e)
			sock.Write(e, userBuf, 8<<10)
			sock.Close(e)
			cycles++
		}
	})
	r.eng.Run(4_000_000_000)
	r.eng.Run(r.eng.Now() + 200_000_000)
	if cycles != 5 {
		t.Fatalf("completed %d connect/transfer/close cycles, want 5", cycles)
	}
	if got := r.st.Pool.FreeCloneCount(); got != free0 {
		t.Fatalf("clone pool leaked across churn: %d vs %d", got, free0)
	}
	if err := r.st.Pool.check(); err != nil {
		t.Fatal(err)
	}
}
