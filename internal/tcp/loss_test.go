package tcp

import (
	"testing"

	"repro/internal/kern"
)

// A transfer over a lossy link must still deliver every byte, exactly
// once, in order — via duplicate ACKs, fast retransmit and the
// retransmission timer.
func TestLossyTransmitRecoversExactly(t *testing.T) {
	r := newRigNIC(t, DefaultConfig(), lossyNIC(0.02))
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	const total = 40 * 16 << 10
	done := false
	r.k.Spawn("tx", 0, 0, func(e *kern.Env) {
		for i := 0; i < 40; i++ {
			r.s.Write(e, userBuf, 16<<10)
		}
		done = true
	})
	r.eng.Run(30_000_000_000) // loss recovery includes 200 ms RTOs
	r.eng.Run(r.eng.Now() + 2_000_000_000)
	if !done {
		t.Fatalf("writer stalled: %d bytes delivered of %d, %d wire drops, %d rexmits",
			r.c.BytesReceived, total, r.nic.WireDrops, r.s.Retransmits())
	}
	if r.c.BytesReceived != total {
		t.Fatalf("client received %d bytes, want exactly %d", r.c.BytesReceived, total)
	}
	if r.nic.WireDrops == 0 {
		t.Fatal("loss rate had no effect")
	}
	if r.s.Retransmits() == 0 {
		t.Fatal("no retransmissions despite drops")
	}
	if err := r.st.Pool.check(); err != nil {
		t.Fatal(err)
	}
}

// The receive direction recovers too: the client source goes back to
// snd_una on duplicate ACKs or its watchdog.
func TestLossyReceiveRecoversExactly(t *testing.T) {
	r := newRigNIC(t, DefaultConfig(), lossyNIC(0.02))
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	const reads, size = 30, 8 << 10
	got := 0
	r.k.Spawn("rx", 0, 0, func(e *kern.Env) {
		for i := 0; i < reads; i++ {
			r.s.Read(e, userBuf, size)
			got += size
		}
		r.c.StopSource()
	})
	r.eng.At(1000, func() { r.c.StartSource() })
	r.eng.Run(30_000_000_000)
	if got != reads*size {
		t.Fatalf("read %d bytes of %d (drops=%d, client rexmits=%d, sut ooo=%d)",
			got, reads*size, r.nic.WireDrops, r.c.Retransmits, r.s.OutOfOrderDrops())
	}
	if r.s.AppBytesIn() != uint64(reads*size) {
		t.Fatalf("socket delivered %d", r.s.AppBytesIn())
	}
	if r.nic.WireDrops == 0 {
		t.Fatal("loss rate had no effect")
	}
}

// Loss costs throughput: a lossy link must move fewer bytes in the same
// window than a clean one.
func TestLossReducesGoodput(t *testing.T) {
	run := func(loss float64) uint64 {
		r := newRigNIC(t, DefaultConfig(), lossyNIC(loss))
		userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
		r.k.Spawn("tx", 0, 0, func(e *kern.Env) {
			for {
				r.s.Write(e, userBuf, 16<<10)
			}
		})
		r.eng.Run(2_000_000_000)
		return r.c.BytesReceived
	}
	clean := run(0)
	lossy := run(0.05)
	if lossy >= clean {
		t.Fatalf("5%% loss did not reduce goodput: %d vs %d", lossy, clean)
	}
}

// Zero-loss behaviour is untouched: no retransmissions, no out-of-order
// drops on a clean link.
func TestNoSpuriousRetransmitsOnCleanLink(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	r.k.Spawn("tx", 0, 0, func(e *kern.Env) {
		for i := 0; i < 20; i++ {
			r.s.Write(e, userBuf, 32<<10)
		}
	})
	r.eng.Run(4_000_000_000)
	if r.s.Retransmits() != 0 {
		t.Fatalf("%d spurious retransmissions on a clean link", r.s.Retransmits())
	}
	if r.c.OutOfOrder != 0 {
		t.Fatalf("%d out-of-order frames on a clean link", r.c.OutOfOrder)
	}
}
