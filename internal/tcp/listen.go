package tcp

import (
	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/perf"
)

// listenProcs are the passive-open procedures. They are registered lazily
// on the first Listen() call so workloads that never listen (bulk) leave
// the simulated address space — and therefore every cache-set mapping —
// exactly as it was before listening existed.
type listenProcs struct {
	inited         bool
	sysAccept      kern.Proc
	tcpV4ConnReq   kern.Proc
	tcpCreateChild kern.Proc
}

// Listener is the stack's accept point: a queue of passively-opened
// connections (arena handles) plus the wait queue accepting tasks sleep
// on. The model collapses Linux's SYN backlog and accept backlog into
// one queue: the three-way handshake is two segments here (control
// segments are sequence-free, see DESIGN.md), so a connection is
// established the moment the SYN|ACK is queued for transmit.
type Listener struct {
	st      *Stack
	acceptQ []Handle
	wait    *kern.WaitQueue
	max     int

	// Accepts counts connections handed to acceptors; SynDrops counts
	// SYNs refused because the accept queue was full or the transmit ring
	// could not take the SYN|ACK.
	Accepts  uint64
	SynDrops uint64
}

// Listen creates the stack's listener (one per stack, like a single
// server socket bound to the service port). backlog bounds the accept
// queue; zero means a generous default.
func (st *Stack) Listen(backlog int) *Listener {
	if st.listener != nil {
		panic("tcp: stack already listening")
	}
	if backlog <= 0 {
		backlog = 1024
	}
	if !st.lp.inited {
		k := st.K
		st.lp.inited = true
		st.lp.sysAccept = k.NewProc("sys_accept", perf.BinInterface, 768)
		st.lp.tcpV4ConnReq = k.NewProc("tcp_v4_conn_request", perf.BinEngine, 1536)
		st.lp.tcpCreateChild = k.NewProc("tcp_create_openreq_child", perf.BinEngine, 2048)
	}
	st.listener = &Listener{
		st:   st,
		wait: kern.NewWaitQueue("accept"),
		max:  backlog,
	}
	return st.listener
}

// Acceptor returns the stack's accept point (nil before Listen).
func (st *Stack) Acceptor() *Listener { return st.listener }

// rxNoSocket handles a packet whose connection has no socket: a SYN goes
// to the listener (passive open); anything else is a late segment for a
// churned connection (e.g. the far end's final delayed ACK) and is
// dropped — the demux miss still walks the hash bucket.
func (st *Stack) rxNoSocket(env *kern.Env, pkt netdev.RxPacket) {
	f := pkt.Frame
	env.Run(st.p.tcpV4Rcv, func(x *cpu.Exec) {
		x.Instr(145, 0.16, 0.01).Overhead(145).
			Load(st.hashAddr+mem.Addr((f.Conn*64)%(16<<10)), 64)
	})
	l := st.listener
	if f.Flags&netdev.FlagSyn == 0 || l == nil {
		st.OrphanDrops++
		if skb, ok := pkt.Cookie.(*SKB); ok {
			st.Pool.FreeSKB(env, skb)
		}
		return
	}
	l.passiveOpen(env, pkt)
}

// passiveOpen runs in softirq context: admission check, connection-
// request and child-socket creation costs, slot binding, and the SYN|ACK
// reply through the non-blocking transmit path (softirq must not sleep;
// a full ring means the embryonic connection is dropped and the far end
// sees silence, exactly like a lost SYN).
func (l *Listener) passiveOpen(env *kern.Env, pkt netdev.RxPacket) {
	st := l.st
	f := pkt.Frame
	freeRing := func() {
		if skb, ok := pkt.Cookie.(*SKB); ok {
			st.Pool.FreeSKB(env, skb)
		}
	}
	if len(l.acceptQ) >= l.max || st.lookupSocket(f.Conn) != nil {
		l.SynDrops++
		freeRing()
		return
	}
	env.Run(st.lp.tcpV4ConnReq, func(x *cpu.Exec) {
		x.Instr(420, 0.17, 0.012).Overhead(420).
			Load(st.hashAddr+mem.Addr((f.Conn*64)%(16<<10)), 64)
	})
	h := st.newSlot(f.Conn, st.Drv.NICs()[pkt.NIC])
	s := st.arena.socks[h]
	st.bindConn(f.Conn, h)
	ctl, tx := s.ctl(), s.tx()
	env.Run(st.lp.tcpCreateChild, func(x *cpu.Exec) {
		x.Instr(650, 0.16, 0.012).Overhead(650).
			Store(ctl.sockAddr, 512).Store(ctl.ctxAddr, 384)
	})
	tx.sndWnd = f.Window
	synack := st.Pool.AllocAckSkb(env)
	ok := st.Drv.Xmit(env, s.NIC, netdev.TxReq{
		Frame: netdev.WireFrame{
			Conn:   s.Conn,
			Window: s.advertise(),
			Flags:  netdev.FlagSyn | netdev.FlagAck,
		},
		Cookie: synack,
	})
	if !ok {
		st.Pool.FreeClone(env, synack)
		st.unbindConn(s.Conn)
		ctl.state = StateClosed
		st.arena.free = append(st.arena.free, h)
		l.SynDrops++
		freeRing()
		return
	}
	s.stat().acksOut++
	l.acceptQ = append(l.acceptQ, h)
	l.Accepts++
	l.wait.WakeOne(st.K, env)
	freeRing()
}

// Accept blocks the calling task until a passively-opened connection is
// available and returns its socket (FIFO — accept order is arrival
// order, which keeps multi-worker runs deterministic).
func (l *Listener) Accept(env *kern.Env) *Socket {
	if env.Task() == nil {
		panic("tcp: Accept from softirq context")
	}
	st := l.st
	env.Run(st.p.systemCall, func(x *cpu.Exec) {
		x.Instr(125, 0.2, 0.01).Overhead(825)
	})
	env.Run(st.lp.sysAccept, func(x *cpu.Exec) {
		x.Instr(210, 0.19, 0.012).Overhead(890)
	})
	for len(l.acceptQ) == 0 {
		env.Sleep(l.wait)
	}
	h := l.acceptQ[0]
	l.acceptQ = l.acceptQ[1:]
	return st.arena.socks[h]
}

// Backlog reports connections waiting to be accepted.
func (l *Listener) Backlog() int { return len(l.acceptQ) }
