package tcp

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/perf"
	"repro/internal/sim"
)

type rig struct {
	eng *sim.Engine
	k   *kern.Kernel
	st  *Stack
	nic *netdev.NIC
	s   *Socket
	c   *Client
	tab *perf.SymbolTable
	ctr *perf.Counters
}

func newRig(t *testing.T, cfg Config) *rig {
	return newRigNIC(t, cfg, netdev.DefaultNICConfig(0x19))
}

// newRigNIC builds a rig around a custom device configuration (loss
// rate, ring sizes); loss is construction-time config so the cache
// fingerprint can always see it.
func newRigNIC(t *testing.T, cfg Config, ncfg netdev.NICConfig) *rig {
	t.Helper()
	eng := sim.NewEngine(7)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, 2)
	k := kern.New(kern.Config{
		Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
		NumCPUs: 2, CPU: cpu.DefaultConfig(), Tune: kern.DefaultTuning(),
	})
	t.Cleanup(k.Shutdown)
	st := New(k, cfg)
	nic := st.AddNICWithConfig(ncfg)
	s, c := st.NewConn(1, nic)
	k.StartTicks()
	return &rig{eng: eng, k: k, st: st, nic: nic, s: s, c: c, tab: tab, ctr: ctr}
}

// lossyNIC is a default device with the given wire-loss probability.
func lossyNIC(loss float64) netdev.NICConfig {
	ncfg := netdev.DefaultNICConfig(0x19)
	ncfg.LossRate = loss
	return ncfg
}

func TestTransmitDeliversInOrder(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	const writes, size = 8, 16 << 10
	done := false
	r.k.Spawn("ttcp_tx", 0, 0, func(e *kern.Env) {
		for i := 0; i < writes; i++ {
			r.s.Write(e, userBuf, size)
		}
		done = true
	})
	r.eng.Run(4_000_000_000)
	if !done {
		t.Fatal("writer did not finish")
	}
	// Writer returns once data is queued; drain the wire.
	r.eng.Run(r.eng.Now() + 100_000_000)
	if got := r.c.BytesReceived; got != writes*size {
		t.Fatalf("client received %d bytes, want %d", got, writes*size)
	}
	if r.nic.RxDropped != 0 {
		t.Fatalf("dropped %d frames", r.nic.RxDropped)
	}
	if r.s.InFlight() != 0 {
		t.Fatalf("still %d bytes in flight after drain", r.s.InFlight())
	}
}

func TestReceiveDeliversToReader(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	const reads, size = 16, 8 << 10
	var got int
	r.k.Spawn("ttcp_rx", 0, 0, func(e *kern.Env) {
		for i := 0; i < reads; i++ {
			r.s.Read(e, userBuf, size)
			got += size
		}
		r.c.StopSource()
	})
	r.eng.At(1000, func() { r.c.StartSource() })
	r.eng.Run(4_000_000_000)
	if got != reads*size {
		t.Fatalf("read %d bytes, want %d", got, reads*size)
	}
	if r.s.AppBytesIn() != reads*size {
		t.Fatalf("socket counted %d bytes", r.s.AppBytesIn())
	}
}

func TestClientRespectsAdvertisedWindow(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	// No reader: the client must stall once the SUT's receive buffer
	// fills (win <= RcvBuf means in-flight can never exceed it).
	r.eng.At(1000, func() { r.c.StartSource() })
	r.eng.Run(2_000_000_000)
	if r.c.InFlight() > cfg.RcvBuf {
		t.Fatalf("client has %d in flight, window is %d", r.c.InFlight(), cfg.RcvBuf)
	}
	if r.s.RcvQueued() > cfg.RcvBuf {
		t.Fatalf("receive queue %d exceeds buffer %d", r.s.RcvQueued(), cfg.RcvBuf)
	}
	if r.c.BytesSent == 0 {
		t.Fatal("client never sent (window machinery broken)")
	}
	if r.nic.RxDropped != 0 {
		t.Fatalf("flow control failed: %d drops", r.nic.RxDropped)
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(4096, "userbuf")
	const writes = 200
	r.k.Spawn("ttcp_small", 0, 0, func(e *kern.Env) {
		for i := 0; i < writes; i++ {
			r.s.Write(e, userBuf, 128)
		}
	})
	r.eng.Run(4_000_000_000)
	r.eng.Run(r.eng.Now() + 200_000_000)
	if got := r.c.BytesReceived; got != writes*128 {
		t.Fatalf("client received %d, want %d", got, writes*128)
	}
	if r.s.SegsOut() >= writes {
		t.Fatalf("%d segments for %d writes — Nagle not coalescing", r.s.SegsOut(), writes)
	}
}

func TestPoolBalancedAfterDrain(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	freeSKB0 := r.st.Pool.FreeSKBCount()
	freeClone0 := r.st.Pool.FreeCloneCount()
	r.k.Spawn("tx", 0, 0, func(e *kern.Env) {
		for i := 0; i < 4; i++ {
			r.s.Write(e, userBuf, 32<<10)
		}
	})
	r.eng.Run(4_000_000_000)
	r.eng.Run(r.eng.Now() + 500_000_000)
	if err := r.st.Pool.check(); err != nil {
		t.Fatal(err)
	}
	if got := r.st.Pool.FreeSKBCount(); got != freeSKB0 {
		t.Fatalf("skb leak: %d free, started with %d", got, freeSKB0)
	}
	if got := r.st.Pool.FreeCloneCount(); got != freeClone0 {
		t.Fatalf("clone leak: %d free, started with %d", got, freeClone0)
	}
}

func TestBacklogDefersWhileUserOwnsSocket(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	var total int
	r.k.Spawn("rx", 0, 0, func(e *kern.Env) {
		for i := 0; i < 30; i++ {
			r.s.Read(e, userBuf, 16<<10)
			total += 16 << 10
		}
		r.c.StopSource()
	})
	r.eng.At(1000, func() { r.c.StartSource() })
	r.eng.Run(8_000_000_000)
	if total != 30*(16<<10) {
		t.Fatalf("read %d", total)
	}
	if r.s.BacklogDeferrals() == 0 {
		t.Fatal("no packets ever hit the socket backlog — lock_sock window never overlapped softirq")
	}
}

func TestRxCopyIsUncachedTxCopyIsNot(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	r.k.Spawn("rx", 0, 0, func(e *kern.Env) {
		for i := 0; i < 8; i++ {
			r.s.Read(e, userBuf, 16<<10)
		}
		r.c.StopSource()
	})
	r.eng.At(1000, func() { r.c.StartSource() })
	r.eng.Run(8_000_000_000)

	rxCopy := r.tab.Lookup("csum_and_copy_to_user")
	instr := r.ctr.SymbolTotal(rxCopy, perf.Instructions)
	misses := r.ctr.SymbolTotal(rxCopy, perf.LLCMisses)
	if instr == 0 {
		t.Fatal("rx copy never ran")
	}
	// DMA'd payload: essentially every payload line must miss. 128 KiB
	// is 2048 lines; allow headroom for alignment.
	if misses < 1500 {
		t.Fatalf("rx copy took only %d LLC misses — DMA invalidation broken", misses)
	}
	// CPI of the rep-mov copy should be enormous (paper: 66).
	cyc := r.ctr.SymbolTotal(rxCopy, perf.Cycles)
	if cpi := float64(cyc) / float64(instr); cpi < 10 {
		t.Fatalf("rx copy CPI %.1f, want >> base (rep-mov semantics)", cpi)
	}
}

func TestRxIntCopyAblationLowersCPI(t *testing.T) {
	run := func(intCopy bool) (cpi float64) {
		cfg := DefaultConfig()
		cfg.RxIntCopy = intCopy
		r := newRig(t, cfg)
		userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
		r.k.Spawn("rx", 0, 0, func(e *kern.Env) {
			for i := 0; i < 8; i++ {
				r.s.Read(e, userBuf, 16<<10)
			}
			r.c.StopSource()
		})
		r.eng.At(1000, func() { r.c.StartSource() })
		r.eng.Run(8_000_000_000)
		name := "csum_and_copy_to_user"
		if intCopy {
			name = "copy_to_user_int"
		}
		sym := r.tab.Lookup(name)
		return float64(r.ctr.SymbolTotal(sym, perf.Cycles)) /
			float64(r.ctr.SymbolTotal(sym, perf.Instructions))
	}
	old := run(false)
	niu := run(true)
	if niu >= old {
		t.Fatalf("integer copy CPI %.1f not below rep-mov CPI %.1f", niu, old)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (uint64, uint64) {
		eng := sim.NewEngine(21)
		tab := perf.NewSymbolTable()
		ctr := perf.NewCounters(tab, 2)
		k := kern.New(kern.Config{
			Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
			NumCPUs: 2, CPU: cpu.DefaultConfig(), Tune: kern.DefaultTuning(),
		})
		defer k.Shutdown()
		st := New(k, DefaultConfig())
		nic := st.AddNIC(0x19)
		s, _ := st.NewConn(1, nic)
		k.StartTicks()
		userBuf := k.Space.AllocPage(64<<10, "userbuf")
		k.Spawn("tx", 0, 0, func(e *kern.Env) {
			for i := 0; i < 6; i++ {
				s.Write(e, userBuf, 16<<10)
			}
		})
		end := eng.Run(3_000_000_000)
		return uint64(end), ctr.Total(perf.Cycles)
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("runs diverged: (%d,%d) vs (%d,%d)", a1, a2, b1, b2)
	}
}

func TestTimersArmedAndDisarmed(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	r.k.Spawn("tx", 0, 0, func(e *kern.Env) {
		r.s.Write(e, userBuf, 16<<10)
	})
	r.eng.Run(2_000_000_000)
	r.eng.Run(r.eng.Now() + 500_000_000)
	if r.s.InFlight() != 0 {
		t.Fatal("data not fully acknowledged")
	}
	// All data ACKed: the retransmit timer must be disarmed.
	if r.s.RetransTimerActive() {
		t.Fatal("retransmit timer still armed after full ACK")
	}
	// mod_timer cost must have been charged in the Timers bin.
	if got := r.ctr.BinTotal(perf.BinTimers, perf.Cycles); got == 0 {
		t.Fatal("no Timers-bin cycles recorded")
	}
}

func TestGettimeofdayChargedOnRxPath(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	r.k.Spawn("rx", 0, 0, func(e *kern.Env) {
		for i := 0; i < 4; i++ {
			r.s.Read(e, userBuf, 16<<10)
		}
		r.c.StopSource()
	})
	r.eng.At(1000, func() { r.c.StartSource() })
	r.eng.Run(8_000_000_000)
	sym := r.tab.Lookup("do_gettimeofday")
	if got := r.ctr.SymbolTotal(sym, perf.Instructions); got == 0 {
		t.Fatal("do_gettimeofday never charged on receive path")
	}
}

func TestBidirectionalEcho(t *testing.T) {
	// Writer and reader on the same socket: SUT transmits while the
	// client echoes source data back — exercises piggybacked ACKs.
	r := newRig(t, DefaultConfig())
	txBuf := r.k.Space.AllocPage(64<<10, "txbuf")
	rxBuf := r.k.Space.AllocPage(64<<10, "rxbuf")
	var wrote, read bool
	r.k.Spawn("tx", 0, 0, func(e *kern.Env) {
		for i := 0; i < 4; i++ {
			r.s.Write(e, txBuf, 8<<10)
		}
		wrote = true
	})
	r.k.Spawn("rx", 1, 0, func(e *kern.Env) {
		for i := 0; i < 4; i++ {
			r.s.Read(e, rxBuf, 8<<10)
		}
		read = true
		r.c.StopSource()
	})
	r.eng.At(1000, func() { r.c.StartSource() })
	r.eng.Run(8_000_000_000)
	if !wrote || !read {
		t.Fatalf("bidirectional stall: wrote=%v read=%v", wrote, read)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{MSS: 0, SndBuf: 1, RcvBuf: 1, PoolSKBs: 64, PoolHeaders: 64},
		{MSS: 1460, SndBuf: 0, RcvBuf: 1, PoolSKBs: 64, PoolHeaders: 64},
		{MSS: 4096, SndBuf: 65536, RcvBuf: 65536, PoolSKBs: 64, PoolHeaders: 64}, // MSS > skb buffer
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			eng := sim.NewEngine(1)
			tab := perf.NewSymbolTable()
			ctr := perf.NewCounters(tab, 1)
			k := kern.New(kern.Config{
				Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
				NumCPUs: 1, CPU: cpu.DefaultConfig(), Tune: kern.DefaultTuning(),
			})
			defer k.Shutdown()
			New(k, bad)
		}()
	}
}

func TestDuplicateConnPanics(t *testing.T) {
	r := newRig(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("duplicate connection id accepted")
		}
	}()
	r.st.NewConn(1, r.nic) // conn 1 exists from newRig
}
