package tcp

import (
	"fmt"

	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
)

// Handle indexes a connection slot in the stack's socket arena. Sockets
// are flyweights: the exported *Socket is a two-word wrapper (stack +
// handle) and all mutable per-connection state lives in struct-of-arrays
// storage below, grouped by access pattern (transmit path, receive path,
// control/lifecycle, statistics). A 10⁵-connection cell therefore costs
// a few contiguous slices, not 10⁵ scattered heap objects.
type Handle = int32

// sockTx is the transmit-path state: sequence space, send window and
// buffer accounting, the retransmit queue, Nagle tail, and loss
// recovery.
type sockTx struct {
	sndUna      uint64
	sndNxt      uint64
	sndWnd      int // client's advertised window
	sndBufBytes int
	retransQ    []*SKB
	tail        *SKB // Nagle: partial segment under construction
	dupAcks     int
	// rtoBackoff counts consecutive retransmission-timer expiries; each
	// doubles the next timeout (capped), and a forward ACK clears it.
	rtoBackoff uint
	// recoverSeq suppresses further fast retransmits until snd_una
	// passes the point where the last recovery started (NewReno-style).
	recoverSeq uint64
}

// sockRx is the receive-path state: reassembly point, receive queue and
// its truesize accounting, and delayed-ACK/window-advertisement state.
type sockRx struct {
	rcvNxt       uint64
	rcvQ         []*SKB
	rcvQBytes    int
	segsSinceAck int
	lastWndAdv   int // receive window advertised in the last ACK
	// rcvRightEdge is rcvNxt+window as last advertised; a TCP receiver
	// must never move it backwards, which bounds how far the sender can
	// overrun freshly-consumed buffer space.
	rcvRightEdge uint64
}

// sockCtl is the control state: connection identity, the slot's
// simulated structures (allocated once when the slot is first created,
// reused across connection churn exactly as a slab cache reuses a
// kmem object — same addresses, same lock line, same timers), the
// socket lock/backlog, and the connection state machine.
type sockCtl struct {
	conn int
	nic  *netdev.NIC

	// Simulated structures: struct sock and the TCP control block. The
	// engine bin cannot avoid touching these (window math reads the
	// context), which is why affinity helps it (§6.3).
	sockAddr mem.Addr
	ctxAddr  mem.Addr
	// fileAddr is the VFS state the syscall path walks per call (struct
	// file, dentry, fd table slots): interface-bin working set.
	fileAddr mem.Addr

	sndWait  *kern.WaitQueue
	rcvWait  *kern.WaitQueue
	connWait *kern.WaitQueue

	// Socket lock: spinlock plus user-ownership flag, with a backlog for
	// packets arriving while the user owns the socket (2.4 semantics).
	slock       *kern.SpinLock
	ownedByUser bool
	backlog     []netdev.RxPacket

	retransTimer *kern.Timer
	delackTimer  *kern.Timer
	delackArmed  bool

	// Connection state machine (handshake.go).
	state State
}

// sockStats are the per-connection counters, folded into the stack-wide
// aggregate when a churned connection's slot is released.
type sockStats struct {
	appBytesIn, appBytesOut uint64
	segsIn, segsOut         uint64
	acksIn, acksOut         uint64
	backlogDeferrals        uint64
	retransmits             uint64
	outOfOrderDrops         uint64
	// dupAcksOut counts the immediate duplicate ACKs the go-back-N
	// receiver answered out-of-order segments with; fastRetrans counts
	// go-back episodes triggered by a dup-ACK train (RTO-driven
	// go-backs count only in retransmits).
	dupAcksOut  uint64
	fastRetrans uint64
}

func (a *sockStats) add(b *sockStats) {
	a.appBytesIn += b.appBytesIn
	a.appBytesOut += b.appBytesOut
	a.segsIn += b.segsIn
	a.segsOut += b.segsOut
	a.acksIn += b.acksIn
	a.acksOut += b.acksOut
	a.backlogDeferrals += b.backlogDeferrals
	a.retransmits += b.retransmits
	a.outOfOrderDrops += b.outOfOrderDrops
	a.dupAcksOut += b.dupAcksOut
	a.fastRetrans += b.fastRetrans
}

// Arena growth granularity. State is stored in fixed-capacity chunks so
// slot addresses stay stable while the arena grows: a task holding a
// *sockTx across a sleep must not be invalidated by a passive open
// growing the arena underneath it.
const (
	arenaChunkShift = 9
	arenaChunk      = 1 << arenaChunkShift
	arenaChunkMask  = arenaChunk - 1
)

// sockArena is the per-machine struct-of-arrays socket store plus the
// LIFO slot free list (most-recently-released first, like a slab's
// array cache, so churned connections reuse cache-warm state).
type sockArena struct {
	tx    [][]sockTx
	rx    [][]sockRx
	ctl   [][]sockCtl
	stats [][]sockStats
	// socks holds one stable flyweight wrapper per slot; timer closures
	// and user code hold these across the slot's whole lifetime.
	socks []*Socket
	free  []Handle
	n     int // total slots
}

// grow appends one zeroed slot and returns its handle. Chunks are
// preallocated at full capacity so per-chunk appends never relocate.
func (a *sockArena) grow() Handle {
	h := Handle(a.n)
	if a.n&arenaChunkMask == 0 {
		a.tx = append(a.tx, make([]sockTx, 0, arenaChunk))
		a.rx = append(a.rx, make([]sockRx, 0, arenaChunk))
		a.ctl = append(a.ctl, make([]sockCtl, 0, arenaChunk))
		a.stats = append(a.stats, make([]sockStats, 0, arenaChunk))
	}
	ci := a.n >> arenaChunkShift
	a.tx[ci] = append(a.tx[ci], sockTx{})
	a.rx[ci] = append(a.rx[ci], sockRx{})
	a.ctl[ci] = append(a.ctl[ci], sockCtl{})
	a.stats[ci] = append(a.stats[ci], sockStats{})
	a.n++
	return h
}

func (a *sockArena) txAt(h Handle) *sockTx   { return &a.tx[h>>arenaChunkShift][h&arenaChunkMask] }
func (a *sockArena) rxAt(h Handle) *sockRx   { return &a.rx[h>>arenaChunkShift][h&arenaChunkMask] }
func (a *sockArena) ctlAt(h Handle) *sockCtl { return &a.ctl[h>>arenaChunkShift][h&arenaChunkMask] }
func (a *sockArena) statAt(h Handle) *sockStats {
	return &a.stats[h>>arenaChunkShift][h&arenaChunkMask]
}

// Slot state accessors on the flyweight wrapper.
func (s *Socket) tx() *sockTx      { return s.st.arena.txAt(s.h) }
func (s *Socket) rx() *sockRx      { return s.st.arena.rxAt(s.h) }
func (s *Socket) ctl() *sockCtl    { return s.st.arena.ctlAt(s.h) }
func (s *Socket) stat() *sockStats { return s.st.arena.statAt(s.h) }

// newSlot binds a slot for connection conn on nic: the most recently
// released slot if one is free (reusing its simulated addresses, wait
// queues, lock and timers — steady-state slab behaviour), otherwise a
// freshly allocated one. The fresh-slot path performs the simulated
// allocations in exactly the order the pre-flyweight NewConn did, so
// the bulk workload's address space is bit-identical.
func (st *Stack) newSlot(conn int, nic *netdev.NIC) Handle {
	a := &st.arena
	if n := len(a.free); n > 0 {
		h := a.free[n-1]
		a.free = a.free[:n-1]
		st.rebindSlot(h, conn, nic)
		return h
	}
	k := st.K
	h := a.grow()
	ctl := a.ctlAt(h)
	// Simulated allocations happen in exactly the pre-flyweight NewConn
	// order: sock, ctx, file, wait queues, then the spinlock (which
	// allocates its own proc and lock line).
	*ctl = sockCtl{
		conn:     conn,
		nic:      nic,
		sockAddr: k.Space.Alloc(1536, fmt.Sprintf("sock%d", conn)),
		ctxAddr:  k.Space.Alloc(1280, fmt.Sprintf("tcp_ctx%d", conn)),
		fileAddr: k.Space.Alloc(2048, fmt.Sprintf("file%d", conn)),
		sndWait:  kern.NewWaitQueue(fmt.Sprintf("snd%d", conn)),
		rcvWait:  kern.NewWaitQueue(fmt.Sprintf("rcv%d", conn)),
		slock:    k.NewSpinLock(fmt.Sprintf("sk%d", conn)),
		state:    StateEstablished,
	}
	*a.txAt(h) = sockTx{sndUna: 1, sndNxt: 1, sndWnd: st.Cfg.SndBuf}
	*a.rxAt(h) = sockRx{
		rcvNxt:       1,
		lastWndAdv:   st.Cfg.RcvBuf,
		rcvRightEdge: 1 + uint64(st.Cfg.RcvBuf/2),
	}
	s := &Socket{st: st, h: h, Conn: conn, NIC: nic}
	a.socks = append(a.socks, s)
	ctl.connWait = kern.NewWaitQueue(fmt.Sprintf("conn%d", conn))
	ctl.retransTimer = k.NewTimer(func(env *kern.Env) { s.onRetransTimer(env) })
	ctl.delackTimer = k.NewTimer(func(env *kern.Env) { s.onDelackTimer(env) })
	return h
}

// rebindSlot resets a recycled slot for a new connection. Simulated
// resources (addresses, wait queues, lock, timers) carry over; protocol
// state and counters start fresh. Go-level queue slices are reused to
// keep churn allocation-free.
func (st *Stack) rebindSlot(h Handle, conn int, nic *netdev.NIC) {
	a := &st.arena
	ctl := a.ctlAt(h)
	ctl.conn, ctl.nic = conn, nic
	ctl.ownedByUser = false
	ctl.backlog = ctl.backlog[:0]
	ctl.delackArmed = false
	ctl.state = StateEstablished
	tx := a.txAt(h)
	*tx = sockTx{
		sndUna:   1,
		sndNxt:   1,
		sndWnd:   st.Cfg.SndBuf,
		retransQ: tx.retransQ[:0],
	}
	rx := a.rxAt(h)
	*rx = sockRx{
		rcvNxt:       1,
		rcvQ:         rx.rcvQ[:0],
		lastWndAdv:   st.Cfg.RcvBuf,
		rcvRightEdge: 1 + uint64(st.Cfg.RcvBuf/2),
	}
	*a.statAt(h) = sockStats{}
	s := a.socks[h]
	s.Conn, s.NIC = conn, nic
}

// Release tears down a churned connection after Close: remaining
// buffers return to the pool (the far end's final delayed ACK may never
// cover the response tail, and control segments carry no sequence
// space), timers disarm, per-connection counters fold into the stack
// aggregate, and the slot joins the free list for the next accept.
func (st *Stack) Release(env *kern.Env, s *Socket) {
	a := &st.arena
	h := s.h
	tx, rx, ctl := a.txAt(h), a.rxAt(h), a.ctlAt(h)
	// Detach the connection from the demux and its queues before the
	// first cost-bearing free. FreeSKB is a preemption point: a late
	// frame (the far end's final delayed ACK often races the FIN that
	// woke this task) processed by the other processor mid-Release would
	// find the socket still bound, walk retransQ and free buffers this
	// function already returned — a double free that later surfaces as
	// one skb aliased into two connections' queues. After unbindConn the
	// straggler demuxes to the orphan path instead; the detached local
	// slices stay valid because the slot joins the free list (and can be
	// rebound) only after every free below has completed.
	st.unbindConn(ctl.conn)
	retrans := tx.retransQ
	tx.retransQ = tx.retransQ[:0]
	tail := tx.tail
	tx.tail = nil
	rcvQ := rx.rcvQ
	rx.rcvQ = rx.rcvQ[:0]
	backlog := ctl.backlog
	ctl.backlog = ctl.backlog[:0]
	st.K.DelTimer(ctl.retransTimer)
	st.K.DelTimer(ctl.delackTimer)
	ctl.delackArmed = false
	ctl.state = StateClosed
	st.released.add(a.statAt(h))
	*a.statAt(h) = sockStats{}
	if c := st.lookupClient(ctl.conn); c != nil {
		st.releasedClient.retransmits += c.Retransmits
		st.releasedClient.outOfOrder += c.OutOfOrder
		st.releasedClient.dupAcksSent += c.DupAcksSent
		st.releasedClient.fastRetrans += c.FastRetrans
		st.connClient[ctl.conn] = nil
	}
	for _, skb := range retrans {
		st.Pool.FreeSKB(env, skb)
	}
	if tail != nil {
		st.Pool.FreeSKB(env, tail)
	}
	for _, skb := range rcvQ {
		st.Pool.FreeSKB(env, skb)
	}
	for _, pkt := range backlog {
		if skb, ok := pkt.Cookie.(*SKB); ok {
			st.Pool.FreeSKB(env, skb)
		}
	}
	a.free = append(a.free, h)
}

// Slots reports how many arena slots exist (peak concurrent
// connections); FreeSlots how many are currently unbound.
func (st *Stack) Slots() int     { return st.arena.n }
func (st *Stack) FreeSlots() int { return len(st.arena.free) }

// clientStats aggregates far-end client counters of released
// connections (the client mirror of the released sockStats).
type clientStats struct {
	retransmits uint64
	outOfOrder  uint64
	dupAcksSent uint64
	fastRetrans uint64
}

// sumSock totals one sockStats counter across every SUT socket the
// stack has ever hosted: live slots plus released (churned)
// connections.
func (st *Stack) sumSock(f func(*sockStats) uint64) uint64 {
	total := f(&st.released)
	for _, chunk := range st.arena.stats {
		for i := range chunk {
			total += f(&chunk[i])
		}
	}
	return total
}

// sumClient totals one client counter across live clients plus the
// given released aggregate.
func (st *Stack) sumClient(released uint64, f func(*Client) uint64) uint64 {
	total := released
	for _, c := range st.connClient {
		if c != nil {
			total += f(c)
		}
	}
	return total
}

// SocketRetransmits totals TCP retransmissions across every SUT socket
// the stack has ever hosted: live slots plus released (churned)
// connections.
func (st *Stack) SocketRetransmits() uint64 {
	return st.sumSock(func(s *sockStats) uint64 { return s.retransmits })
}

// SocketOutOfOrderDrops totals segments the SUT's go-back-N receivers
// refused (duplicates and gaps), live and released.
func (st *Stack) SocketOutOfOrderDrops() uint64 {
	return st.sumSock(func(s *sockStats) uint64 { return s.outOfOrderDrops })
}

// SocketDupAcks totals the immediate duplicate ACKs SUT receivers
// answered out-of-order segments with, live and released.
func (st *Stack) SocketDupAcks() uint64 {
	return st.sumSock(func(s *sockStats) uint64 { return s.dupAcksOut })
}

// SocketFastRetransmits totals dup-ACK-triggered go-back episodes on
// SUT senders (RTO go-backs excluded), live and released.
func (st *Stack) SocketFastRetransmits() uint64 {
	return st.sumSock(func(s *sockStats) uint64 { return s.fastRetrans })
}

// ClientRetransmits totals far-end client retransmissions, live and
// released.
func (st *Stack) ClientRetransmits() uint64 {
	return st.sumClient(st.releasedClient.retransmits, func(c *Client) uint64 { return c.Retransmits })
}

// ClientOutOfOrder totals segments the far-end go-back-N sinks refused,
// live and released.
func (st *Stack) ClientOutOfOrder() uint64 {
	return st.sumClient(st.releasedClient.outOfOrder, func(c *Client) uint64 { return c.OutOfOrder })
}

// ClientDupAcks totals duplicate ACKs the far-end sinks sent, live and
// released.
func (st *Stack) ClientDupAcks() uint64 {
	return st.sumClient(st.releasedClient.dupAcksSent, func(c *Client) uint64 { return c.DupAcksSent })
}

// ClientFastRetransmits totals dup-ACK-triggered go-back episodes on
// client sources, live and released.
func (st *Stack) ClientFastRetransmits() uint64 {
	return st.sumClient(st.releasedClient.fastRetrans, func(c *Client) uint64 { return c.FastRetrans })
}

// AppBytesInTotal sums application bytes delivered to SUT readers over
// every connection, live and released (churn workloads read this where
// bulk sums Machine.Sockets).
func (st *Stack) AppBytesInTotal() uint64 {
	total := st.released.appBytesIn
	for _, chunk := range st.arena.stats {
		for i := range chunk {
			total += chunk[i].appBytesIn
		}
	}
	return total
}
