package tcp

import "repro/internal/netdev"

// Client models the far end of one connection: an ideal client machine
// whose CPU is never the bottleneck (the paper provisions clients so the
// SUT saturates first). It speaks just enough TCP to exercise the SUT:
//
//   - as a sink (SUT transmit tests) it consumes data and returns
//     delayed ACKs — one per DelAckSegs segments, or after 200 µs;
//   - as a source (SUT receive tests) it streams MSS segments bounded by
//     the window the SUT advertises, reacting to window updates.
//
// Client state is plain values, not simulated memory: its cache
// behaviour is irrelevant to the characterization.
type Client struct {
	st   *Stack
	conn int
	nic  *netdev.NIC

	// Sink state.
	rcvNxt       uint64
	segsSinceAck int
	delackArmed  bool
	window       int

	// opening is set while a client-initiated (active) open is in
	// flight: the SYN is out and the SUT's SYN|ACK will establish the
	// connection; onEstab observes the establishment (openloop workloads
	// queue their request from it).
	opening bool
	onEstab func()

	// Source state.
	active bool
	sndNxt uint64
	sndUna uint64
	// sndMax is the send high-water mark. A go-back rewinds sndNxt but
	// not sndMax: the bytes in [sndNxt, sndMax) were handed to the wire
	// and the receiver may hold them, so the client still owes their
	// (re)transmission even after StopSource — otherwise a rewind just
	// before shutdown would strand the receiver ahead of the sender's
	// own sequence accounting.
	sndMax uint64
	sutWnd int
	// backlogBytes are one-shot bytes queued by SendBytes (request/
	// response workloads), drained by pump alongside continuous mode.
	backlogBytes int
	// onRecv, when set, observes each data segment delivered to the
	// client (request/response workloads key their next request off it).
	onRecv func(n int)

	dupAcks    int
	watchArmed bool
	// recoverSeq guards the go-back path: after a rewind, further
	// duplicate ACKs are ignored until the ack point passes the old
	// snd_nxt. Without it every dup-ACK train re-floods the whole window
	// onto the wire — under sustained burst loss the queued duplicates
	// grow without bound (a real sender's congestion control prevents
	// this; the ideal client needs at least the recover-point guard).
	recoverSeq uint64

	// pending counts frames delivered by ToPeer whose processing event
	// has not yet run (the quiesce check needs to see them).
	pending int

	// Stats.
	BytesReceived uint64
	BytesSent     uint64
	AcksSent      uint64
	SegsSent      uint64
	Retransmits   uint64
	OutOfOrder    uint64
	// DupAcksSent counts the immediate duplicate ACKs the go-back-N
	// sink answered out-of-order segments with; FastRetrans counts the
	// go-back episodes triggered by a dup-ACK train from the SUT (the
	// watchdog's timeouts count only in Retransmits).
	DupAcksSent uint64
	FastRetrans uint64
}

func newClient(st *Stack, conn int, nic *netdev.NIC) *Client {
	return &Client{
		st:     st,
		conn:   conn,
		nic:    nic,
		rcvNxt: 1,
		sndNxt: 1,
		sndUna: 1,
		sndMax: 1,
		window: st.Cfg.RcvBuf,
		// The SUT's initial advertisement is half its receive buffer
		// (truesize headroom); start from the same value.
		sutWnd: st.Cfg.RcvBuf / 2,
	}
}

// ToPeer implements netdev.Peer: a frame from the SUT reaches the client
// after its (small, fixed) processing delay. Delivery re-checks live:
// the stack can Release the connection while the frame is in flight,
// and a dead client must not answer on a conn id the arena may have
// rebound (see live).
func (c *Client) ToPeer(f netdev.WireFrame) {
	c.pending++
	c.st.K.Eng.After(c.st.Cfg.ClientDelayCycles, func() {
		c.pending--
		if !c.live() {
			return
		}
		c.handle(f)
	})
}

// live reports whether this client is still the bound far end of its
// connection. Release unbinds churned connections; any timer or
// delivery event armed before the teardown (delayed ACK, watchdog,
// in-flight ToPeer frames) must die silently when it fires after —
// on the flyweight arena the conn id may already belong to a new
// connection, and a stale ACK would land on it.
func (c *Client) live() bool { return c.st.lookupClient(c.conn) == c }

func (c *Client) handle(f netdev.WireFrame) {
	// Connection management: the ideal client accepts any open and
	// acknowledges any close immediately.
	if f.Flags&netdev.FlagSyn != 0 {
		if c.opening {
			// SYN|ACK answering our active open: established. The frame
			// carries the SUT's initial window; pump releases any request
			// bytes queued while the handshake was in flight.
			c.opening = false
			c.sutWnd = f.Window
			if cb := c.onEstab; cb != nil {
				c.onEstab = nil
				cb()
			}
			c.pump()
			return
		}
		c.nic.InjectFromWire(netdev.WireFrame{
			Conn:   c.conn,
			Window: c.window,
			Flags:  netdev.FlagSyn | netdev.FlagAck,
		})
		return
	}
	if f.Flags&netdev.FlagFin != 0 {
		c.nic.InjectFromWire(netdev.WireFrame{
			Conn:  c.conn,
			Flags: netdev.FlagFin | netdev.FlagAck,
		})
		return
	}
	if f.Len > 0 {
		if f.Seq != c.rcvNxt {
			// Go-back-N sink: drop duplicates and gaps, answer with an
			// immediate duplicate ACK so the SUT retransmits.
			c.OutOfOrder++
			c.DupAcksSent++
			c.sendAck()
			return
		}
		c.rcvNxt += uint64(f.Len)
		c.BytesReceived += uint64(f.Len)
		if c.onRecv != nil {
			c.onRecv(f.Len)
		}
		c.segsSinceAck++
		if c.segsSinceAck >= c.st.Cfg.DelAckSegs {
			c.sendAck()
		} else if !c.delackArmed {
			c.delackArmed = true
			c.st.K.Eng.After(400_000, func() { // 200 µs delayed ACK
				c.delackArmed = false
				if !c.live() {
					return
				}
				if c.segsSinceAck > 0 {
					c.sendAck()
				}
			})
		}
	}
	if f.Flags&netdev.FlagAck != 0 {
		switch {
		case f.Ack > c.sndUna:
			c.sndUna = f.Ack
			if c.sndNxt < c.sndUna {
				// A go-back (watchdog or dup-ACK) rewound snd_nxt, and
				// this ACK covers data from before the rewind — the SUT
				// had received it after all (it was merely delayed, e.g.
				// by a DMA stall or jitter). Resume from the ack point or
				// in-flight goes negative and the source wedges.
				c.sndNxt = c.sndUna
			}
			c.dupAcks = 0
		case f.Ack == c.sndUna && c.sndNxt > c.sndUna && f.Len == 0 && f.Window == c.sutWnd:
			// Duplicate ACK from the SUT: same ack point, same window
			// (a changed window means a window update, not a loss
			// signal). After three, go back to the last acknowledged
			// byte and resend the window.
			c.dupAcks++
			if c.dupAcks >= 3 {
				c.dupAcks = 0
				if c.sndUna >= c.recoverSeq {
					c.Retransmits++
					c.FastRetrans++
					c.recoverSeq = c.sndNxt
					c.sndNxt = c.sndUna
				}
			}
		}
		c.sutWnd = f.Window
		c.pump()
	}
	c.armWatchdog()
}

// armWatchdog schedules a retransmission timeout for the client source:
// if no acknowledgment progress happens for 200 ms of virtual time while
// data is outstanding, the client goes back to snd_una. This is the
// ideal client's RTO — long enough that SUT scheduling stalls (quanta,
// starvation) never trigger it; the dup-ACK fast path handles ordinary
// loss much sooner.
func (c *Client) armWatchdog() {
	if c.watchArmed || (c.sndNxt == c.sndUna) {
		return
	}
	c.watchArmed = true
	mark := c.sndUna
	c.st.K.Eng.After(400_000_000, func() {
		c.watchArmed = false
		if !c.live() {
			return
		}
		if c.sndNxt > c.sndUna && c.sndUna == mark {
			c.Retransmits++
			c.recoverSeq = c.sndNxt
			c.sndNxt = c.sndUna
			c.pump()
		}
		c.armWatchdog()
	})
}

func (c *Client) sendAck() {
	c.segsSinceAck = 0
	c.AcksSent++
	c.nic.InjectFromWire(netdev.WireFrame{
		Conn:   c.conn,
		Ack:    c.rcvNxt,
		Window: c.window,
		Flags:  netdev.FlagAck,
	})
}

// StartSource begins streaming data toward the SUT (receive tests).
func (c *Client) StartSource() {
	c.active = true
	c.pump()
}

// StopSource halts the stream after in-flight data drains.
func (c *Client) StopSource() { c.active = false }

// SendBytes queues n application bytes for one-shot transmission toward
// the SUT (request/response workloads); delivery respects the advertised
// window and MSS like the continuous source.
func (c *Client) SendBytes(n int) {
	if n <= 0 {
		return
	}
	c.backlogBytes += n
	c.pump()
}

// OnReceive registers cb, invoked with the length of every data segment
// the client receives from the SUT.
func (c *Client) OnReceive(cb func(n int)) { c.onRecv = cb }

// --- active open / close (connection-churn workloads) ---

// NewActiveClient creates the far-end model for a connection the client
// side opens actively: the client is bound for demux immediately, but no
// SUT socket exists until its SYN reaches the stack's listener (passive
// open). Returns nil in place of a Socket by design — the server obtains
// the socket from Listener.Accept.
func (st *Stack) NewActiveClient(conn int, nic *netdev.NIC) *Client {
	if st.lookupClient(conn) != nil {
		panic("tcp: duplicate client connection")
	}
	c := newClient(st, conn, nic)
	c.opening = true
	st.bindClient(conn, c)
	return c
}

// OnEstablished registers cb, invoked once when the SUT's SYN|ACK
// arrives. Register before Open.
func (c *Client) OnEstablished(cb func()) { c.onEstab = cb }

// Open sends the SYN toward the SUT. If the SUT's receive ring drops it
// (overload) or the listener refuses it, no SYN|ACK ever comes back and
// the connection silently never establishes — the workload accounts
// those as connection drops. No SYN retry is modelled.
func (c *Client) Open() {
	c.nic.InjectFromWire(netdev.WireFrame{
		Conn:   c.conn,
		Window: c.window,
		Flags:  netdev.FlagSyn,
	})
}

// Close sends a pure FIN toward the SUT (client-initiated close, fire
// and forget: the model sends no FIN|ACK back for a passive close).
func (c *Client) Close() {
	c.nic.InjectFromWire(netdev.WireFrame{
		Conn:  c.conn,
		Flags: netdev.FlagFin,
	})
}

// Opening reports whether an active open is still waiting for its
// SYN|ACK.
func (c *Client) Opening() bool { return c.opening }

// pump sends as many MSS segments as the SUT's advertised window allows.
// Link serialization inside the NIC paces actual delivery.
func (c *Client) pump() {
	if c.opening {
		// Nothing moves until the handshake completes.
		return
	}
	mss := c.st.Cfg.MSS
	for {
		want, fromBacklog := 0, false
		switch {
		case c.active:
			want = mss
		case c.backlogBytes >= mss:
			want, fromBacklog = mss, true
		case c.backlogBytes > 0:
			want, fromBacklog = c.backlogBytes, true
		case c.sndNxt < c.sndMax:
			// Stopped mid-recovery: resend the owed tail up to the high-
			// water mark so the two sequence spaces converge.
			want = mss
			if tail := int(c.sndMax - c.sndNxt); want > tail {
				want = tail
			}
		default:
			return
		}
		if int(c.sndNxt-c.sndUna)+want > c.sutWnd {
			return
		}
		c.nic.InjectFromWire(netdev.WireFrame{
			Conn:   c.conn,
			Seq:    c.sndNxt,
			Ack:    c.rcvNxt,
			Window: c.window,
			Len:    want,
			Flags:  netdev.FlagPsh | netdev.FlagAck,
		})
		c.sndNxt += uint64(want)
		if c.sndNxt > c.sndMax {
			c.sndMax = c.sndNxt
		}
		c.BytesSent += uint64(want)
		c.SegsSent++
		if fromBacklog {
			c.backlogBytes -= want
		}
	}
}

// InFlight reports the client source's unacknowledged bytes.
func (c *Client) InFlight() int { return int(c.sndNxt - c.sndUna) }

// Pending reports frames handed to the client whose processing event has
// not yet run (quiesce checks).
func (c *Client) Pending() int { return c.pending }

// UnsentTail reports bytes between the rewound send point and the high-
// water mark — data the client still owes the wire after a go-back
// (quiesce checks).
func (c *Client) UnsentTail() int { return int(c.sndMax - c.sndNxt) }

// DelackPending reports whether the client's delayed-ACK timer is armed
// (quiesce checks; it self-clears within 200 µs).
func (c *Client) DelackPending() bool { return c.delackArmed }
