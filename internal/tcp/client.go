package tcp

import "repro/internal/netdev"

// Client models the far end of one connection: an ideal client machine
// whose CPU is never the bottleneck (the paper provisions clients so the
// SUT saturates first). It speaks just enough TCP to exercise the SUT:
//
//   - as a sink (SUT transmit tests) it consumes data and returns
//     delayed ACKs — one per DelAckSegs segments, or after 200 µs;
//   - as a source (SUT receive tests) it streams MSS segments bounded by
//     the window the SUT advertises, reacting to window updates.
//
// Client state is plain values, not simulated memory: its cache
// behaviour is irrelevant to the characterization.
type Client struct {
	st   *Stack
	conn int
	nic  *netdev.NIC

	// Sink state.
	rcvNxt       uint64
	segsSinceAck int
	delackArmed  bool
	window       int

	// Source state.
	active bool
	sndNxt uint64
	sndUna uint64
	sutWnd int
	// backlogBytes are one-shot bytes queued by SendBytes (request/
	// response workloads), drained by pump alongside continuous mode.
	backlogBytes int
	// onRecv, when set, observes each data segment delivered to the
	// client (request/response workloads key their next request off it).
	onRecv func(n int)

	dupAcks    int
	watchArmed bool

	// Stats.
	BytesReceived uint64
	BytesSent     uint64
	AcksSent      uint64
	SegsSent      uint64
	Retransmits   uint64
	OutOfOrder    uint64
}

func newClient(st *Stack, conn int, nic *netdev.NIC) *Client {
	return &Client{
		st:     st,
		conn:   conn,
		nic:    nic,
		rcvNxt: 1,
		sndNxt: 1,
		sndUna: 1,
		window: st.Cfg.RcvBuf,
		// The SUT's initial advertisement is half its receive buffer
		// (truesize headroom); start from the same value.
		sutWnd: st.Cfg.RcvBuf / 2,
	}
}

// ToPeer implements netdev.Peer: a frame from the SUT reaches the client
// after its (small, fixed) processing delay.
func (c *Client) ToPeer(f netdev.WireFrame) {
	c.st.K.Eng.After(c.st.Cfg.ClientDelayCycles, func() { c.handle(f) })
}

func (c *Client) handle(f netdev.WireFrame) {
	// Connection management: the ideal client accepts any open and
	// acknowledges any close immediately.
	if f.Flags&netdev.FlagSyn != 0 {
		c.nic.InjectFromWire(netdev.WireFrame{
			Conn:   c.conn,
			Window: c.window,
			Flags:  netdev.FlagSyn | netdev.FlagAck,
		})
		return
	}
	if f.Flags&netdev.FlagFin != 0 {
		c.nic.InjectFromWire(netdev.WireFrame{
			Conn:  c.conn,
			Flags: netdev.FlagFin | netdev.FlagAck,
		})
		return
	}
	if f.Len > 0 {
		if f.Seq != c.rcvNxt {
			// Go-back-N sink: drop duplicates and gaps, answer with an
			// immediate duplicate ACK so the SUT retransmits.
			c.OutOfOrder++
			c.sendAck()
			return
		}
		c.rcvNxt += uint64(f.Len)
		c.BytesReceived += uint64(f.Len)
		if c.onRecv != nil {
			c.onRecv(f.Len)
		}
		c.segsSinceAck++
		if c.segsSinceAck >= c.st.Cfg.DelAckSegs {
			c.sendAck()
		} else if !c.delackArmed {
			c.delackArmed = true
			c.st.K.Eng.After(400_000, func() { // 200 µs delayed ACK
				c.delackArmed = false
				if c.segsSinceAck > 0 {
					c.sendAck()
				}
			})
		}
	}
	if f.Flags&netdev.FlagAck != 0 {
		switch {
		case f.Ack > c.sndUna:
			c.sndUna = f.Ack
			c.dupAcks = 0
		case f.Ack == c.sndUna && c.sndNxt > c.sndUna && f.Len == 0 && f.Window == c.sutWnd:
			// Duplicate ACK from the SUT: same ack point, same window
			// (a changed window means a window update, not a loss
			// signal). After three, go back to the last acknowledged
			// byte and resend the window.
			c.dupAcks++
			if c.dupAcks >= 3 {
				c.dupAcks = 0
				c.Retransmits++
				c.sndNxt = c.sndUna
			}
		}
		c.sutWnd = f.Window
		c.pump()
	}
	c.armWatchdog()
}

// armWatchdog schedules a retransmission timeout for the client source:
// if no acknowledgment progress happens for 200 ms of virtual time while
// data is outstanding, the client goes back to snd_una. This is the
// ideal client's RTO — long enough that SUT scheduling stalls (quanta,
// starvation) never trigger it; the dup-ACK fast path handles ordinary
// loss much sooner.
func (c *Client) armWatchdog() {
	if c.watchArmed || (c.sndNxt == c.sndUna) {
		return
	}
	c.watchArmed = true
	mark := c.sndUna
	c.st.K.Eng.After(400_000_000, func() {
		c.watchArmed = false
		if c.sndNxt > c.sndUna && c.sndUna == mark {
			c.Retransmits++
			c.sndNxt = c.sndUna
			c.pump()
		}
		c.armWatchdog()
	})
}

func (c *Client) sendAck() {
	c.segsSinceAck = 0
	c.AcksSent++
	c.nic.InjectFromWire(netdev.WireFrame{
		Conn:   c.conn,
		Ack:    c.rcvNxt,
		Window: c.window,
		Flags:  netdev.FlagAck,
	})
}

// StartSource begins streaming data toward the SUT (receive tests).
func (c *Client) StartSource() {
	c.active = true
	c.pump()
}

// StopSource halts the stream after in-flight data drains.
func (c *Client) StopSource() { c.active = false }

// SendBytes queues n application bytes for one-shot transmission toward
// the SUT (request/response workloads); delivery respects the advertised
// window and MSS like the continuous source.
func (c *Client) SendBytes(n int) {
	if n <= 0 {
		return
	}
	c.backlogBytes += n
	c.pump()
}

// OnReceive registers cb, invoked with the length of every data segment
// the client receives from the SUT.
func (c *Client) OnReceive(cb func(n int)) { c.onRecv = cb }

// pump sends as many MSS segments as the SUT's advertised window allows.
// Link serialization inside the NIC paces actual delivery.
func (c *Client) pump() {
	mss := c.st.Cfg.MSS
	for {
		want := 0
		switch {
		case c.active:
			want = mss
		case c.backlogBytes >= mss:
			want = mss
		case c.backlogBytes > 0:
			want = c.backlogBytes
		default:
			return
		}
		if int(c.sndNxt-c.sndUna)+want > c.sutWnd {
			return
		}
		c.nic.InjectFromWire(netdev.WireFrame{
			Conn:   c.conn,
			Seq:    c.sndNxt,
			Ack:    c.rcvNxt,
			Window: c.window,
			Len:    want,
			Flags:  netdev.FlagPsh | netdev.FlagAck,
		})
		c.sndNxt += uint64(want)
		c.BytesSent += uint64(want)
		c.SegsSent++
		if !c.active {
			c.backlogBytes -= want
		}
	}
}

// InFlight reports the client source's unacknowledged bytes.
func (c *Client) InFlight() int { return int(c.sndNxt - c.sndUna) }
