package tcp

import (
	"fmt"
	"testing"

	"repro/internal/apic"
	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Receive-side scaling — the paper's §8 future work: the NIC extracts
// flow information and directs each connection's interrupts to a
// specific processor. With two multi-queue ports carrying eight
// connections, RSS spreads interrupt (and therefore softirq) load across
// both CPUs without any static pinning; without it, everything lands on
// CPU0.
func runRSS(t *testing.T, rss bool) (mbps float64, irqCPU [2]uint64) {
	t.Helper()
	eng := sim.NewEngine(3)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, 2)
	k := kern.New(kern.Config{
		Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
		NumCPUs: 2, CPU: cpu.DefaultConfig(), Tune: kern.DefaultTuning(),
	})
	t.Cleanup(k.Shutdown)
	st := New(k, DefaultConfig())

	mkNIC := func(vecs []apic.Vector) *netdev.NIC {
		cfg := netdev.DefaultNICConfig(vecs[0])
		// The RSS era is 10 GbE — the paper's own motivation (§1): at
		// 10 Gb/s per port the processors, not the wire, limit
		// throughput, which is where interrupt spreading pays.
		cfg.LinkBps = 10_000_000_000
		if rss {
			cfg.QueueVectors = vecs
		}
		n := st.AddNICWithConfig(cfg)
		if rss {
			// Each queue's vector is routed to its own processor.
			for qi, v := range vecs {
				if err := k.APIC.SetAffinity(v, 1<<uint(qi)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return n
	}
	nicA := mkNIC([]apic.Vector{0x19, 0x23})
	nicB := mkNIC([]apic.Vector{0x1a, 0x24})

	var clients []*Client
	buf := k.Space.AllocPage(64<<10, "buf")
	for conn := 0; conn < 8; conn++ {
		nic := nicA
		if conn >= 4 {
			nic = nicB
		}
		sock, client := st.NewConn(conn, nic)
		clients = append(clients, client)
		conn := conn
		k.Spawn(fmt.Sprintf("w%d", conn), conn%2, 0, func(e *kern.Env) {
			for {
				sock.Write(e, buf, 16<<10)
			}
		})
	}
	k.StartTicks()
	eng.Run(60_000_000)
	var start uint64
	for _, c := range clients {
		start += c.BytesReceived
	}
	irq0 := ctr.CPUTotal(0, perf.IRQsReceived)
	irq1 := ctr.CPUTotal(1, perf.IRQsReceived)
	eng.Run(eng.Now() + 120_000_000)
	var end uint64
	for _, c := range clients {
		end += c.BytesReceived
	}
	mbps = float64(end-start) * 8 / (120e6 / 2e9) / 1e6
	irqCPU[0] = ctr.CPUTotal(0, perf.IRQsReceived) - irq0
	irqCPU[1] = ctr.CPUTotal(1, perf.IRQsReceived) - irq1
	return mbps, irqCPU
}

func TestRSSSpreadsInterruptLoad(t *testing.T) {
	_, base := runRSS(t, false)
	if base[1] != 0 {
		t.Fatalf("without RSS, CPU1 took %d interrupts (default mask should pin CPU0)", base[1])
	}
	_, spread := runRSS(t, true)
	if spread[0] == 0 || spread[1] == 0 {
		t.Fatalf("RSS did not spread interrupts: %v", spread)
	}
	ratio := float64(spread[0]) / float64(spread[0]+spread[1])
	if ratio < 0.25 || ratio > 0.75 {
		t.Errorf("RSS interrupt split %v badly skewed", spread)
	}
}

func TestRSSImprovesThroughput(t *testing.T) {
	mbpsBase, _ := runRSS(t, false)
	mbpsRSS, _ := runRSS(t, true)
	if mbpsRSS <= mbpsBase*1.02 {
		t.Errorf("RSS %.0f Mb/s not above single-queue %.0f", mbpsRSS, mbpsBase)
	}
}
