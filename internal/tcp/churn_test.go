package tcp

import (
	"testing"

	"repro/internal/kern"
)

// Regression tests for stale client timers surviving connection churn.
// The client model arms closures on the engine (delayed ACK, the RTO
// watchdog, in-flight ToPeer frames); Release can run before they fire.
// On the flyweight arena the conn id may be rebound to a brand-new
// connection by then, so a stale closure that still answers would ACK
// on the wrong connection — or, unbound, inflate OrphanDrops with
// ghosts. Every such closure must check live() and die silently.

// A delayed ACK armed before Release must not fire into the void: the
// conn is unbound, so an injected ACK would be charged as an orphan.
func TestStaleDelackAfterReleaseDropsNothing(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(4<<10, "userbuf")
	r.k.Spawn("writer", 0, 0, func(e *kern.Env) {
		// One MSS segment: below DelAckSegs, so the client arms its
		// 400k-cycle delayed ACK instead of answering immediately.
		r.s.Write(e, userBuf, r.st.Cfg.MSS)
	})
	armed := false
	wq, woke := kern.NewWaitQueue("reap"), false
	r.k.Spawn("reaper", 1, 0, func(e *kern.Env) {
		for !woke {
			e.Sleep(wq)
		}
		armed = r.c.DelackPending()
		r.st.Release(e, r.s)
		e.Sleep(kern.NewWaitQueue("park"))
	})
	// The segment reaches the client (arming its delayed ACK) at ~70k
	// cycles; tear the connection down mid-window, before the ~470k fire.
	r.eng.At(150_000, func() { woke = true; wq.WakeAll(r.k, nil) })
	r.eng.Run(2_000_000)
	if !armed {
		t.Fatal("test is vacuous: delayed ACK was not pending at Release time")
	}
	if r.c.DelackPending() {
		t.Fatal("delayed ACK still armed after its deadline passed")
	}
	if got := r.st.OrphanDrops; got != 0 {
		t.Fatalf("stale delayed ACK produced %d orphan drops", got)
	}
}

// Same race, but the slot's conn id has been rebound to a new
// connection before the stale timer fires: the ghost ACK must not land
// on the new socket's sequence space.
func TestStaleDelackAfterRebindLeavesNewConnUntouched(t *testing.T) {
	r := newRig(t, DefaultConfig())
	userBuf := r.k.Space.AllocPage(4<<10, "userbuf")
	r.k.Spawn("writer", 0, 0, func(e *kern.Env) {
		r.s.Write(e, userBuf, r.st.Cfg.MSS)
	})
	var s2 *Socket
	armed := false
	wq, woke := kern.NewWaitQueue("reap"), false
	r.k.Spawn("reaper", 1, 0, func(e *kern.Env) {
		for !woke {
			e.Sleep(wq)
		}
		armed = r.c.DelackPending()
		r.st.Release(e, r.s)
		s2, _ = r.st.NewConn(1, r.nic)
		e.Sleep(kern.NewWaitQueue("park"))
	})
	r.eng.At(150_000, func() { woke = true; wq.WakeAll(r.k, nil) })
	r.eng.Run(2_000_000)
	if !armed {
		t.Fatal("test is vacuous: delayed ACK was not pending at Release time")
	}
	if s2 == nil {
		t.Fatal("rebind never happened")
	}
	if got := s2.AcksIn(); got != 0 {
		t.Fatalf("rebound connection processed %d ACKs it never earned", got)
	}
	if got := s2.tx().sndUna; got != 1 {
		t.Fatalf("rebound connection's snd_una moved to %d on a ghost ACK", got)
	}
	if got := r.st.OrphanDrops; got != 0 {
		t.Fatalf("%d orphan drops after rebind", got)
	}
}

// The client's 400M-cycle RTO watchdog is armed whenever data is
// outstanding; releasing the connection mid-stream must kill it. An
// unguarded watchdog would go back and re-pump the whole window into a
// conn with no socket, forever, inflating OrphanDrops long after the
// wire drained.
func TestStaleWatchdogAfterReleaseStaysSilent(t *testing.T) {
	r := newRig(t, DefaultConfig())
	buf := r.k.Space.AllocPage(64<<10, "rbuf")
	r.k.Spawn("reader", 0, 0, func(e *kern.Env) {
		for {
			r.s.Read(e, buf, 16<<10)
		}
	})
	r.eng.At(1000, r.c.StartSource)
	r.k.Spawn("reaper", 1, 0, func(e *kern.Env) {
		e.Delay(5_000_000)
		r.c.StopSource()
		r.st.Release(e, r.s)
		e.Sleep(kern.NewWaitQueue("park"))
	})
	// Let the frames that were on the wire at Release time drain; those
	// orphan legitimately (the far end raced the teardown).
	r.eng.Run(20_000_000)
	inFlight := r.st.OrphanDrops
	// Run far past the watchdog deadline (armed at <=5M, fires +400M).
	r.eng.Run(900_000_000)
	if got := r.st.OrphanDrops; got != inFlight {
		t.Fatalf("stale watchdog kept transmitting: orphan drops grew %d -> %d", inFlight, got)
	}
}
