package tcp

import (
	"testing"

	"repro/internal/kern"
	"repro/internal/sim"
)

// blackhole is a togglable total-loss WireFault: while on, every frame
// in both directions vanishes.
type blackhole struct{ on bool }

func (b *blackhole) Drop(now sim.Time, rng *sim.RNG, rx bool) bool         { return b.on }
func (b *blackhole) ExtraDelay(now sim.Time, rng *sim.RNG, rx bool) uint64 { return 0 }

// Consecutive retransmission timeouts must double the RTO up to the
// cap, and a forward ACK must reset it — otherwise a long outage
// retransmits at a fixed rate forever, and a recovered link inherits
// a huge timeout. RTO values are multiples of the 20M-cycle timer
// tick: the wheel only fires on ticks, so sub-tick RTOs would be
// quantization noise.
func TestRetransTimerExponentialBackoff(t *testing.T) {
	const (
		rtoInit = 40_000_000  // 2 ticks
		rtoMax  = 160_000_000 // 8 ticks
	)
	cfg := DefaultConfig()
	cfg.RTOInitCycles = rtoInit
	cfg.RTOMaxCycles = rtoMax
	r := newRig(t, cfg)
	hole := &blackhole{}
	r.nic.SetWireFault(hole)

	userBuf := r.k.Space.AllocPage(64<<10, "userbuf")
	r.k.Spawn("tx", 0, 0, func(e *kern.Env) {
		r.s.Write(e, userBuf, 2920) // two full segments, no Nagle tail
	})
	// Let the transfer complete cleanly first so the connection is
	// quiescent with backoff 0.
	r.eng.Run(10_000_000)
	if r.s.RTOBackoff() != 0 || r.s.InFlight() != 0 {
		t.Fatalf("clean transfer left backoff=%d inflight=%d", r.s.RTOBackoff(), r.s.InFlight())
	}

	// Black-hole the wire and send one more segment: every retransmit
	// is lost, so each expiry doubles the timeout until the cap.
	hole.on = true
	r.k.Spawn("tx2", 0, 0, func(e *kern.Env) {
		r.s.Write(e, userBuf, 1460)
	})
	r.eng.Run(r.eng.Now() + 200_000)
	if got := r.s.CurrentRTO(); got != rtoInit {
		t.Fatalf("fresh transmission RTO = %d, want %d", got, rtoInit)
	}
	rexmits := r.s.Retransmits()
	prevGap := sim.Time(0)
	sawCap := false
	for i := 0; i < 6; i++ {
		start := r.eng.Now()
		for r.s.Retransmits() == rexmits {
			r.eng.Run(r.eng.Now() + 1_000_000)
			if r.eng.Now()-start > 3*rtoMax {
				t.Fatalf("retransmission %d never happened", i)
			}
		}
		rexmits = r.s.Retransmits()
		gap := r.eng.Now() - start
		if prevGap != 0 {
			switch {
			case prevGap < rtoMax-20_000_000 && gap < prevGap*3/2:
				// Below the cap each expiry roughly doubles the previous
				// gap (tick quantization makes exact equality too strict).
				t.Fatalf("retransmission %d after %d cycles, previous gap %d — no backoff", i, gap, prevGap)
			case gap > rtoMax+40_000_000:
				t.Fatalf("retransmission %d after %d cycles — beyond the %d cap", i, gap, int64(rtoMax))
			}
			if gap > rtoMax-20_000_000 {
				sawCap = true
			}
		}
		prevGap = gap
	}
	if !sawCap {
		t.Fatal("backoff never reached the cap")
	}
	if r.s.RTOBackoff() == 0 {
		t.Fatal("backoff counter still zero after timeouts")
	}

	// Heal the wire: the next successful retransmission's ACK resets
	// the backoff and the RTO returns to the initial value.
	hole.on = false
	start := r.eng.Now()
	for r.s.InFlight() > 0 {
		r.eng.Run(r.eng.Now() + 1_000_000)
		if r.eng.Now()-start > 4*rtoMax {
			t.Fatalf("transfer never completed after healing (inflight=%d)", r.s.InFlight())
		}
	}
	if r.s.RTOBackoff() != 0 {
		t.Fatalf("forward ACK did not reset backoff (still %d)", r.s.RTOBackoff())
	}
	if got := r.s.CurrentRTO(); got != rtoInit {
		t.Fatalf("post-recovery RTO = %d, want %d", got, rtoInit)
	}
	if err := r.st.Pool.Check(); err != nil {
		t.Fatal(err)
	}
}

// Zero-valued RTO config fields keep the historical 200 ms behaviour.
func TestRTODefaultsWhenUnset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTOInitCycles, cfg.RTOMaxCycles = 0, 0
	r := newRig(t, cfg)
	if got := r.s.CurrentRTO(); got != DefaultRTOInitCycles {
		t.Fatalf("default RTO = %d, want %d", got, DefaultRTOInitCycles)
	}
}
