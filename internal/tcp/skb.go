package tcp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
)

// skbHeaderBytes is the simulated sk_buff header footprint and
// skbDataBytes the attached buffer (one MSS plus headroom fits).
const (
	skbHeaderBytes = 256
	skbDataBytes   = 2048
	// skbTruesize is what socket buffer accounting charges per skb —
	// header plus the full data allocation, not just payload. This is
	// why a 64 KB write against a 64 KB send buffer still blocks: 45
	// MSS segments charge ~104 KB of truesize.
	skbTruesize = skbHeaderBytes + skbDataBytes
)

// poolBatch is the slab array-cache batch size: per-CPU caches refill and
// drain this many objects at a time from the shared list.
const poolBatch = 32

// SKB is a socket buffer: a header region plus a data buffer, both at
// simulated addresses. TCP payload occupies [DataAddr, DataAddr+Len).
// SKBs live as values in the pool's slab array (fixed size, so *SKB
// pointers are stable) and circulate by int32 index.
type SKB struct {
	idx      int32
	HeadAddr mem.Addr
	DataAddr mem.Addr

	// Protocol state while queued.
	Seq      uint64
	Len      int
	Consumed int
}

// Remaining reports unconsumed payload bytes.
func (s *SKB) Remaining() int { return s.Len - s.Consumed }

// Clone is a transmit clone: its own header, sharing the original's data
// buffer (skb_clone semantics — the original stays on the retransmit
// queue until acknowledged, the clone rides down to the device). Clones
// live in a value slab like SKBs.
type Clone struct {
	idx      int32
	HeadAddr mem.Addr
	Data     mem.Addr
	Len      int
}

// Pool is the global skb allocator modelled on the 2.4 slab: per-CPU
// array caches over shared free lists. The fast path (per-CPU cache hit)
// is lock-free and touches only CPU-local bookkeeping; the slow path
// moves a batch between the per-CPU cache and the shared list under the
// slab spinlock.
//
// This structure is what couples buffer management to affinity: when a
// connection's allocations and frees happen on one processor (full
// affinity), buffers cycle warm through that CPU's cache; when softirq
// frees on one processor feed process-context allocations on another (no
// affinity), every batch refill imports lines that are dirty in the
// remote cache — the Buf Mgmt LLC misses of the paper's Table 3.
type Pool struct {
	st   *Stack
	lock *kern.SpinLock

	// sharedAddr covers the shared free-list bookkeeping lines;
	// cpuAddr[i] the per-CPU array-cache bookkeeping line.
	sharedAddr mem.Addr
	cpuAddr    []mem.Addr

	// skbs and clones are value slabs sized once at construction (their
	// element pointers must stay stable); objects circulate by index.
	skbs      []SKB
	freeSKBs  []int32 // shared list
	clones    []Clone
	freeClone []int32 // shared list

	cpuSKBs   [][]int32 // per-CPU array caches
	cpuClones [][]int32

	// Stats.
	SKBAllocs, SKBFrees     uint64
	CloneAllocs, CloneFrees uint64
	Refills, Drains         uint64
}

func newPool(st *Stack, nSKB, nClone int) *Pool {
	if nSKB <= 0 || nClone <= 0 {
		panic("tcp: pool sizes must be positive")
	}
	k := st.K
	p := &Pool{
		st:         st,
		lock:       k.NewSpinLock("skb_pool"),
		sharedAddr: k.Space.Alloc(2*mem.LineSize, "skb_pool_lists"),
	}
	ncpu := len(k.CPUs)
	for i := 0; i < ncpu; i++ {
		p.cpuAddr = append(p.cpuAddr, k.Space.Alloc(mem.LineSize, fmt.Sprintf("skb_cpucache%d", i)))
	}
	p.cpuSKBs = make([][]int32, ncpu)
	p.cpuClones = make([][]int32, ncpu)

	headers := k.Space.AllocPage(nSKB*skbHeaderBytes, "skb_headers")
	data := k.Space.AllocPage(nSKB*skbDataBytes, "skb_data")
	p.skbs = make([]SKB, nSKB)
	for i := 0; i < nSKB; i++ {
		p.skbs[i] = SKB{
			idx:      int32(i),
			HeadAddr: headers + mem.Addr(i*skbHeaderBytes),
			DataAddr: data + mem.Addr(i*skbDataBytes),
		}
		p.freeSKBs = append(p.freeSKBs, int32(i))
	}
	cloneHeaders := k.Space.AllocPage(nClone*skbHeaderBytes, "clone_headers")
	p.clones = make([]Clone, nClone)
	for i := 0; i < nClone; i++ {
		p.clones[i] = Clone{
			idx:      int32(i),
			HeadAddr: cloneHeaders + mem.Addr(i*skbHeaderBytes),
		}
		p.freeClone = append(p.freeClone, int32(i))
	}
	return p
}

// FreeSKBCount reports available full skbs across shared and per-CPU
// lists (tests and invariants).
func (p *Pool) FreeSKBCount() int {
	n := len(p.freeSKBs)
	for _, c := range p.cpuSKBs {
		n += len(c)
	}
	return n
}

// FreeCloneCount reports available clone headers across all lists.
func (p *Pool) FreeCloneCount() int {
	n := len(p.freeClone)
	for _, c := range p.cpuClones {
		n += len(c)
	}
	return n
}

// grabForRing takes an skb without cost accounting — used only at machine
// setup to prime NIC rings.
func (p *Pool) grabForRing() *SKB {
	if len(p.freeSKBs) == 0 {
		panic("tcp: pool exhausted during ring priming")
	}
	i := p.freeSKBs[len(p.freeSKBs)-1]
	p.freeSKBs = p.freeSKBs[:len(p.freeSKBs)-1]
	return &p.skbs[i]
}

// popCPU pops from a per-CPU cache, refilling a batch from the shared
// list (under the slab lock) when empty. Returns the object index.
func (p *Pool) popCPU(env *kern.Env, caches [][]int32, shared *[]int32, what string) int32 {
	// Loop, re-reading the processor id each pass: the unlock at the end
	// of a refill is a preemption point, where a bottom half may drain
	// the cache we just filled or the scheduler may migrate the task.
	id := env.CPU().ID()
	for len(caches[id]) == 0 {
		p.lock.Lock(env)
		if len(*shared) < poolBatch {
			panic(fmt.Sprintf("tcp: %s pool exhausted", what))
		}
		// The shared list cycles FIFO: a refill takes the oldest objects,
		// modelling the real allocator's working set (far larger than the
		// LLC), so recycled buffers arrive cache-cold in every affinity
		// mode; affinity governs the *coherence* component on top.
		caches[id] = append(caches[id], (*shared)[:poolBatch]...)
		*shared = (*shared)[poolBatch:]
		p.Refills++
		// Batch refill touches the shared list bookkeeping.
		env.Run(p.st.p.allocSkb, func(x *cpu.Exec) {
			x.Instr(160, 0.18, 0.012).
				Load(p.sharedAddr, 64).Store(p.sharedAddr, 32).
				Store(p.cpuAddr[id], 32)
		})
		p.lock.Unlock(env)
		id = env.CPU().ID()
	}
	c := caches[id]
	idx := c[len(c)-1]
	caches[id] = c[:len(c)-1]
	return idx
}

// pushCPU pushes to a per-CPU cache, draining a batch to the shared list
// when the cache overfills.
func (p *Pool) pushCPU(env *kern.Env, caches [][]int32, shared *[]int32, idx int32) {
	id := env.CPU().ID()
	caches[id] = append(caches[id], idx)
	if len(caches[id]) > 2*poolBatch {
		p.lock.Lock(env)
		// Re-check under the lock: a bottom half at the Lock boundary may
		// have drained this cache already.
		if n := len(caches[id]); n > poolBatch {
			*shared = append(*shared, caches[id][n-poolBatch:]...)
			caches[id] = caches[id][:n-poolBatch]
			p.Drains++
			env.Run(p.st.p.kfreeSkb, func(x *cpu.Exec) {
				x.Instr(120, 0.18, 0.012).
					Load(p.sharedAddr, 64).Store(p.sharedAddr, 32).
					Store(p.cpuAddr[id], 32)
			})
		}
		p.lock.Unlock(env)
	}
}

// AllocSKB takes a full skb (alloc_skb): per-CPU fast path, batch refill
// slow path, header initialization.
func (p *Pool) AllocSKB(env *kern.Env) *SKB {
	idx := p.popCPU(env, p.cpuSKBs, &p.freeSKBs, "skb")
	skb := &p.skbs[idx]
	p.SKBAllocs++
	id := env.CPU().ID()
	env.Run(p.st.p.allocSkb, func(x *cpu.Exec) {
		x.Instr(240, 0.17, 0.012).
			Store(p.cpuAddr[id], 16).
			Store(skb.HeadAddr, skbHeaderBytes)
	})
	skb.Seq, skb.Len, skb.Consumed = 0, 0, 0
	return skb
}

// FreeSKB returns a full skb (kfree_skb).
func (p *Pool) FreeSKB(env *kern.Env, s *SKB) {
	p.SKBFrees++
	id := env.CPU().ID()
	env.Run(p.st.p.kfreeSkb, func(x *cpu.Exec) {
		x.Instr(170, 0.17, 0.012).
			Store(p.cpuAddr[id], 16).
			Load(s.HeadAddr, 192)
	})
	p.pushCPU(env, p.cpuSKBs, &p.freeSKBs, s.idx)
}

// AllocClone takes a clone header (skb_clone): the header is copied from
// the original; data is shared.
func (p *Pool) AllocClone(env *kern.Env, orig *SKB) *Clone {
	idx := p.popCPU(env, p.cpuClones, &p.freeClone, "clone")
	c := &p.clones[idx]
	p.CloneAllocs++
	id := env.CPU().ID()
	env.Run(p.st.p.skbClone, func(x *cpu.Exec) {
		x.Instr(200, 0.15, 0.012).
			Store(p.cpuAddr[id], 16).
			Load(orig.HeadAddr, skbHeaderBytes).
			Store(c.HeadAddr, skbHeaderBytes)
	})
	c.Data = orig.DataAddr
	c.Len = orig.Len
	return c
}

// AllocAckSkb takes a header-only skb for a pure ACK (tcp_send_ack
// allocates a small skb that the device completion frees).
func (p *Pool) AllocAckSkb(env *kern.Env) *Clone {
	idx := p.popCPU(env, p.cpuClones, &p.freeClone, "clone")
	c := &p.clones[idx]
	p.CloneAllocs++
	id := env.CPU().ID()
	env.Run(p.st.p.allocSkb, func(x *cpu.Exec) {
		x.Instr(220, 0.17, 0.012).
			Store(p.cpuAddr[id], 16).
			Store(c.HeadAddr, skbHeaderBytes)
	})
	c.Data = 0
	c.Len = 0
	return c
}

// FreeClone returns a clone header.
func (p *Pool) FreeClone(env *kern.Env, c *Clone) {
	p.CloneFrees++
	id := env.CPU().ID()
	env.Run(p.st.p.kfreeSkb, func(x *cpu.Exec) {
		x.Instr(140, 0.17, 0.012).
			Store(p.cpuAddr[id], 16).
			Load(c.HeadAddr, mem.LineSize)
	})
	p.pushCPU(env, p.cpuClones, &p.freeClone, c.idx)
}

// check validates pool invariants; tests call it.
func (p *Pool) check() error {
	if p.FreeSKBCount() > len(p.skbs) || p.FreeCloneCount() > len(p.clones) {
		return fmt.Errorf("tcp: pool free lists overflow backing arrays")
	}
	seen := map[int32]bool{}
	lists := append([][]int32{p.freeSKBs}, p.cpuSKBs...)
	for _, list := range lists {
		for _, i := range list {
			if seen[i] {
				return fmt.Errorf("tcp: skb %d double-freed", i)
			}
			seen[i] = true
		}
	}
	return nil
}
