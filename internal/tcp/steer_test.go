package tcp

import (
	"testing"

	"repro/internal/apic"
	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/perf"
	"repro/internal/sim"
)

// runSteered streams client data into the SUT over a two-queue NIC. The
// flow starts on queue 1; if steerAt is nonzero the indirection table
// re-programs it to queue 0 mid-stream (what flow director does when
// the serving process migrates). Frames already DMA'd into queue 1 —
// held there by that queue's coalescing window — are then overtaken by
// new frames interrupting from queue 0: the reordering mechanism.
// (Queue 0 additionally services TX completions, so it is never parked
// for long; the flow must *leave* queue 1 for the parked-frame window
// to open.)
func runSteered(t *testing.T, co string, legacyGap uint64, steerAt sim.Time) (*Stack, *Socket, *Client) {
	t.Helper()
	eng := sim.NewEngine(11)
	tab := perf.NewSymbolTable()
	ctr := perf.NewCounters(tab, 2)
	k := kern.New(kern.Config{
		Engine: eng, Space: mem.NewSpace(), Table: tab, Ctr: ctr,
		NumCPUs: 2, CPU: cpu.DefaultConfig(), Tune: kern.DefaultTuning(),
	})
	t.Cleanup(k.Shutdown)
	st := New(k, DefaultConfig())
	ncfg := netdev.DefaultNICConfig(0x19)
	ncfg.QueueVectors = []apic.Vector{0x19, 0x23}
	if legacyGap != 0 {
		ncfg.CoalesceCycles = legacyGap
	}
	if co != "" {
		cc, err := netdev.ParseCoalesce(co)
		if err != nil {
			t.Fatal(err)
		}
		ncfg.Coalesce = *cc
	}
	nic := st.AddNICWithConfig(ncfg)
	s, c := st.NewConn(1, nic)
	nic.SteerFlow(1, 1)

	buf := k.Space.AllocPage(64<<10, "rbuf")
	k.Spawn("reader", 0, 0, func(e *kern.Env) {
		for {
			s.Read(e, buf, 16<<10)
		}
	})
	k.StartTicks()
	eng.At(1000, c.StartSource)
	if steerAt != 0 {
		eng.At(steerAt, func() { nic.SteerFlow(1, 0) })
	}
	eng.Run(60_000_000)
	return st, s, c
}

// Static steering never reorders, even under the same fixed coalescing
// window that makes the re-steer pathological: the control every
// re-steer run is judged against.
func TestStaticSteeringDeliversInOrder(t *testing.T) {
	st, s, _ := runSteered(t, "timer,usecs=100", 0, 0)
	if got := s.OutOfOrderDrops(); got != 0 {
		t.Fatalf("static flow saw %d out-of-order drops", got)
	}
	if got := st.SocketDupAcks(); got != 0 {
		t.Fatalf("static flow sent %d dup ACKs", got)
	}
}

// Re-programming the flow's queue mid-stream under a fixed coalescing
// window reorders: the tail of the in-flight burst is parked on queue 1
// behind its rx-usecs timer, while queue 0 — kept hot by TX-completion
// interrupts from the SUT's own ACKs — services the post-steer frames
// immediately. The go-back-N receiver drops the overtakers, dup-ACKs,
// and the client fast-retransmits; the stream recovers.
func TestMidStreamResteerReordersAndRecovers(t *testing.T) {
	st, s, c := runSteered(t, "timer,usecs=100", 0, 100_000)
	if got := s.OutOfOrderDrops(); got == 0 {
		t.Fatal("mid-stream re-steer produced no out-of-order drops")
	}
	if got := st.SocketDupAcks(); got == 0 {
		t.Fatal("out-of-order segments drew no duplicate ACKs")
	}
	if c.Retransmits == 0 {
		t.Fatal("client never went back despite drops")
	}
	// The stream must recover: bytes keep flowing after the episode.
	if got := st.AppBytesInTotal(); got < 256<<10 {
		t.Fatalf("stream wedged after reorder: only %d app bytes delivered", got)
	}
}

// The adaptive cure (Fermilab): the window starts at its floor and only
// widens under a sustained burst, so a sparsely-arriving tail on the old
// queue drains almost immediately instead of sitting out a fixed
// rx-usecs timer — the post-steer frames on the new queue never overtake
// it. Same re-steer, zero drops, and full throughput.
func TestAdaptiveCoalescingCuresResteerReordering(t *testing.T) {
	st, s, c := runSteered(t, "adaptive", 0, 100_000)
	if got := s.OutOfOrderDrops(); got != 0 {
		t.Fatalf("adaptive coalescing: re-steer still produced %d out-of-order drops", got)
	}
	if got := st.SocketDupAcks(); got != 0 {
		t.Fatalf("adaptive coalescing: %d dup ACKs", got)
	}
	if c.Retransmits != 0 {
		t.Fatalf("adaptive coalescing: client retransmitted %d times", c.Retransmits)
	}
	if got := st.AppBytesInTotal(); got < 2<<20 {
		t.Fatalf("adaptive coalescing throttled the stream to %d app bytes", got)
	}
}
