package tcp

import "repro/internal/sim"

// This file is the read-only surface the post-run invariant checker
// (core.CheckInvariants) walks: enough visibility into sockets, the
// far-end clients and the buffer pool to prove that a faulted run
// drained — every pool buffer back on a free list or accounted for,
// retransmission machinery disarmed, and both directions' sequence
// spaces agreeing on how many bytes really arrived.

// RetransQLen is the number of unacknowledged segments queued for
// possible retransmission.
func (s *Socket) RetransQLen() int { return len(s.tx().retransQ) }

// BacklogLen is the number of packets parked on the socket backlog
// (arrived while a user held the socket).
func (s *Socket) BacklogLen() int { return len(s.ctl().backlog) }

// RetransTimerActive reports whether the retransmission timer is
// armed.
func (s *Socket) RetransTimerActive() bool { return s.ctl().retransTimer.Active() }

// SKBResident counts the pool skbs this socket currently owns: receive
// queue, retransmit queue, a Nagle tail under construction, and
// backlogged receive packets still carrying their ring buffer.
func (s *Socket) SKBResident() int {
	tx, rx, ctl := s.tx(), s.rx(), s.ctl()
	n := len(rx.rcvQ) + len(tx.retransQ)
	if tx.tail != nil {
		n++
	}
	for _, pkt := range ctl.backlog {
		if _, ok := pkt.Cookie.(*SKB); ok {
			n++
		}
	}
	return n
}

// HasTail reports whether a Nagle tail with payload is being held for
// later transmission.
func (s *Socket) HasTail() bool {
	tail := s.tx().tail
	return tail != nil && tail.Len > 0
}

// RcvNxt, SndUna and SndNxt expose the socket's sequence-space
// positions (next byte expected, oldest unacknowledged, next to send).
func (s *Socket) RcvNxt() uint64 { return s.rx().rcvNxt }
func (s *Socket) SndUna() uint64 { return s.tx().sndUna }
func (s *Socket) SndNxt() uint64 { return s.tx().sndNxt }

// RTOBackoff is the current consecutive-timeout count; CurrentRTO is
// the timeout the next (re)arm would use. Test visibility for the
// exponential-backoff machinery.
func (s *Socket) RTOBackoff() uint     { return s.tx().rtoBackoff }
func (s *Socket) CurrentRTO() sim.Time { return s.rto() }
func (s *Socket) OwnedByUser() bool    { return s.ctl().ownedByUser }

// DelackArmed reports whether the delayed-ACK timer is armed (quiesce
// checks; it self-clears within 200 µs).
func (s *Socket) DelackArmed() bool { return s.ctl().delackArmed }

// Client sequence positions, for byte-conservation checks against the
// SUT socket at the other end of the wire.
func (c *Client) RcvNxt() uint64 { return c.rcvNxt }
func (c *Client) SndUna() uint64 { return c.sndUna }
func (c *Client) SndNxt() uint64 { return c.sndNxt }

// Check validates the pool's internal free-list invariants.
func (p *Pool) Check() error { return p.check() }

// NumSKBs and NumClones are the pool's backing-array sizes.
func (p *Pool) NumSKBs() int   { return len(p.skbs) }
func (p *Pool) NumClones() int { return len(p.clones) }
