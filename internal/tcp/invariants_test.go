package tcp

import (
	"testing"

	"repro/internal/kern"
	"repro/internal/sim"
)

// Protocol invariants checked over a randomized mixed workload: writers
// and readers of varying sizes on several connections sharing NICs.
func TestProtocolInvariantsUnderMixedLoad(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// Three extra connections on the same NIC (the demux routes by conn).
	type pair struct {
		s *Socket
		c *Client
	}
	conns := []pair{{r.s, r.c}}
	for i := 2; i <= 4; i++ {
		s, c := r.st.NewConn(i, r.nic)
		conns = append(conns, pair{s, c})
	}
	sizes := []int{128, 1024, 9000, 65536}
	for i, pc := range conns {
		i, pc := i, pc
		buf := r.k.Space.AllocPage(64<<10, "buf")
		if i%2 == 0 {
			r.k.Spawn("w", i%2, 0, func(e *kern.Env) {
				for n := 0; ; n++ {
					pc.s.Write(e, buf, sizes[(i+n)%len(sizes)])
				}
			})
		} else {
			pc.c.StartSource()
			r.k.Spawn("r", i%2, 0, func(e *kern.Env) {
				for n := 0; ; n++ {
					pc.s.Read(e, buf, sizes[(i+n)%len(sizes)])
				}
			})
		}
	}

	// Invariant probe at intervals.
	var violations []string
	check := func() {
		for i, pc := range conns {
			s := pc.s
			tx, rx := s.tx(), s.rx()
			if tx.sndUna > tx.sndNxt {
				violations = append(violations, "snd_una beyond snd_nxt")
			}
			if s.InFlight() < 0 {
				violations = append(violations, "negative in-flight")
			}
			if tx.sndBufBytes < 0 || rx.rcvQBytes < 0 {
				violations = append(violations, "negative buffer accounting")
			}
			if tx.sndBufBytes > r.st.Cfg.SndBuf+skbTruesize {
				violations = append(violations, "send buffer overrun")
			}
			if w := s.rcvWindow(); w < 0 {
				violations = append(violations, "negative window")
			}
			if uint64(len(rx.rcvQ))*uint64(skbTruesize) != uint64(rx.rcvQBytes) {
				// every queued skb accounts exactly one truesize
				violations = append(violations, "rcvQ accounting drift")
			}
			_ = i
		}
	}
	for i := 1; i <= 40; i++ {
		r.eng.At(sim.Time(i*10_000_000), check)
	}
	r.eng.Run(420_000_000)
	if len(violations) > 0 {
		t.Fatalf("%d invariant violations, first: %s", len(violations), violations[0])
	}
	if err := r.st.Pool.check(); err != nil {
		t.Fatal(err)
	}
	if r.nic.RxDropped != 0 {
		t.Fatalf("%d drops under mixed load", r.nic.RxDropped)
	}
}

// Sequence numbers seen by the client must be strictly in order and
// gap-free per connection — the one-NIC-many-connections demux must not
// interleave streams.
func TestClientSeesGapFreeStreams(t *testing.T) {
	r := newRig(t, DefaultConfig())
	s2, c2 := r.st.NewConn(2, r.nic)
	buf := r.k.Space.AllocPage(32<<10, "buf")
	r.k.Spawn("w1", 0, 0, func(e *kern.Env) {
		for {
			r.s.Write(e, buf, 8192)
		}
	})
	r.k.Spawn("w2", 1, 0, func(e *kern.Env) {
		for {
			s2.Write(e, buf, 16384)
		}
	})
	r.eng.Run(300_000_000)
	// Client model panics internally on out-of-order data; reaching here
	// with bytes delivered on both conns is the assertion.
	if r.c.BytesReceived == 0 || c2.BytesReceived == 0 {
		t.Fatalf("streams stalled: %d / %d", r.c.BytesReceived, c2.BytesReceived)
	}
}

// After any quiescent drain, all transmit bookkeeping must return to
// baseline: nothing in flight, retransmit queue empty, timer disarmed.
func TestQuiescentStateAfterDrain(t *testing.T) {
	r := newRig(t, DefaultConfig())
	buf := r.k.Space.AllocPage(64<<10, "buf")
	r.k.Spawn("w", 0, 0, func(e *kern.Env) {
		for i := 0; i < 10; i++ {
			r.s.Write(e, buf, 24_000)
		}
	})
	r.eng.Run(2_000_000_000)
	r.eng.Run(r.eng.Now() + 600_000_000) // drain
	if r.s.InFlight() != 0 {
		t.Fatalf("in flight %d after drain", r.s.InFlight())
	}
	if len(r.s.tx().retransQ) != 0 {
		t.Fatalf("retransmit queue holds %d skbs after drain", len(r.s.tx().retransQ))
	}
	if r.s.tx().sndBufBytes != 0 {
		t.Fatalf("send buffer accounting %d after drain", r.s.tx().sndBufBytes)
	}
	if r.s.RetransTimerActive() {
		t.Fatal("retransmit timer armed after drain")
	}
	if got := r.c.BytesReceived; got != 240_000 {
		t.Fatalf("client received %d, want 240000", got)
	}
}

// The write path must reject softirq context.
func TestWritePanicsFromSoftirq(t *testing.T) {
	r := newRig(t, DefaultConfig())
	buf := r.k.Space.AllocPage(4096, "buf")
	panicked := false
	r.k.RegisterSoftirq(kern.SoftirqTimer, func(env *kern.Env) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.s.Write(env, buf, 128)
	})
	tm := r.k.NewTimer(func(env *kern.Env) {})
	r.k.ModTimer(tm, 30_000_000)
	func() {
		defer func() { recover() }()
		r.eng.Run(100_000_000)
	}()
	if !panicked {
		t.Fatal("Write from softirq did not panic")
	}
}
