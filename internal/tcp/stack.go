// Package tcp implements the simulated TCP/IP stack of the system under
// test: a Linux-2.4-class protocol engine whose procedures are tagged
// with the paper's seven functional bins (Interface, Engine, Buf Mgmt,
// Copies, Driver, Locks, Timers) and whose data structures — sockets,
// TCP contexts, skbs, buffer pools — live at simulated physical addresses
// so cache locality, coherence bouncing and DMA effects arise
// structurally.
//
// The stack is functional, not decorative: sequence numbers advance,
// windows open and close, acknowledgments free retransmit-queue buffers,
// Nagle coalesces small writes, softirq receive processing defers to a
// socket backlog when the user owns the socket, and the copy routines
// reproduce the 2.4 asymmetry between the transmit path's unrolled copy
// and the receive path's `rep movl` copy-and-checksum.
package tcp

import (
	"fmt"

	"repro/internal/apic"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/perf"
)

// Config sizes the stack.
type Config struct {
	// MSS is the maximum segment size (1460 for Ethernet).
	MSS int
	// SndBuf and RcvBuf are the per-socket buffer limits (and therefore
	// the flow-control windows).
	SndBuf, RcvBuf int
	// PoolSKBs is the number of full skbs (header+data) in the global
	// pool; PoolHeaders the number of header-only slots for clones.
	PoolSKBs, PoolHeaders int
	// DelAckSegs is how many data segments may arrive before an ACK must
	// be sent (2 = standard delayed ACK).
	DelAckSegs int
	// ClientDelayCycles is the far-end client's processing latency.
	ClientDelayCycles uint64
	// RxIntCopy selects the Linux-2.6-style integer receive copy instead
	// of 2.4's `rep movl` — the ablation for the paper's observation [1]
	// that an optimized RX copy appeared in 2.6.
	RxIntCopy bool
	// RTOInitCycles is the retransmission timeout armed for a fresh
	// transmission; consecutive timer expiries double it (exponential
	// backoff) up to RTOMaxCycles, and a forward ACK resets it. Zero
	// values mean the defaults (200 ms / 1.6 s at 2 GHz).
	RTOInitCycles uint64
	RTOMaxCycles  uint64
}

// Default retransmission-timer parameters (cycles at 2 GHz), used when
// the config leaves the fields zero.
const (
	DefaultRTOInitCycles = 400_000_000   // 200 ms
	DefaultRTOMaxCycles  = 3_200_000_000 // 1.6 s — three doublings
)

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		MSS:               1460,
		SndBuf:            64 << 10,
		RcvBuf:            64 << 10,
		PoolSKBs:          4096,
		PoolHeaders:       4096,
		DelAckSegs:        2,
		ClientDelayCycles: 10_000, // 5 µs
		RTOInitCycles:     DefaultRTOInitCycles,
		RTOMaxCycles:      DefaultRTOMaxCycles,
	}
}

// Stack is the SUT's TCP/IP implementation plus the registry of its
// simulated procedures.
type Stack struct {
	K   *kern.Kernel
	Cfg Config

	Drv  *netdev.Driver
	Pool *Pool

	// arena is the struct-of-arrays socket store (arena.go); connSock
	// and connClient map connection ids to arena handles and far-end
	// clients (dense slices — connection ids are small integers).
	arena      sockArena
	connSock   []Handle
	connClient []*Client

	// released aggregates per-connection counters of churned (Released)
	// connections; releasedClient their far-end clients'.
	released       sockStats
	releasedClient clientStats

	// listener is the stack's accept point (Listen); nil until a server
	// workload listens. OrphanDrops counts packets that arrived for a
	// connection with no socket and no listener to give them to (late
	// ACKs for churned connections).
	listener    *Listener
	OrphanDrops uint64
	lp          listenProcs

	// hashAddr is the TCP established-connections hash table; lookups
	// touch a bucket line per packet.
	hashAddr mem.Addr

	p procs
}

// lookupSocket resolves a connection id to its live socket (nil when
// unknown or released).
func (st *Stack) lookupSocket(conn int) *Socket {
	if conn < 0 || conn >= len(st.connSock) || st.connSock[conn] < 0 {
		return nil
	}
	return st.arena.socks[st.connSock[conn]]
}

// lookupClient resolves a connection id to its far-end client.
func (st *Stack) lookupClient(conn int) *Client {
	if conn < 0 || conn >= len(st.connClient) {
		return nil
	}
	return st.connClient[conn]
}

func (st *Stack) ensureConn(conn int) {
	for len(st.connSock) <= conn {
		st.connSock = append(st.connSock, -1)
		st.connClient = append(st.connClient, nil)
	}
}

func (st *Stack) bindConn(conn int, h Handle) {
	st.ensureConn(conn)
	st.connSock[conn] = h
}

func (st *Stack) bindClient(conn int, c *Client) {
	st.ensureConn(conn)
	st.connClient[conn] = c
}

// unbindConn severs a released connection's id: late frames for it
// become orphans rather than aliasing the slot's next tenant.
func (st *Stack) unbindConn(conn int) {
	if conn >= 0 && conn < len(st.connSock) {
		st.connSock[conn] = -1
	}
}

// procs holds every simulated stack procedure, named and binned as the
// paper's Table 1/Table 4 symbols.
type procs struct {
	// Interface bin.
	systemCall   kern.Proc
	sysWrite     kern.Proc
	sysRead      kern.Proc
	sockWait     kern.Proc
	sockReadable kern.Proc // sock_def_readable
	writeSpace   kern.Proc // tcp_write_space

	// Engine bin.
	inetSendmsg    kern.Proc
	inetRecvmsg    kern.Proc
	tcpSendmsg     kern.Proc
	tcpTransmitSkb kern.Proc
	tcpV4Rcv       kern.Proc
	tcpV4DoRcv     kern.Proc
	tcpRcvEstab    kern.Proc
	tcpAck         kern.Proc
	tcpRecvmsg     kern.Proc
	tcpSelectWin   kern.Proc
	tcpSendAck     kern.Proc
	tcpConnect     kern.Proc
	tcpClose       kern.Proc

	// Buf Mgmt bin.
	allocSkb  kern.Proc
	kfreeSkb  kern.Proc
	skbClone  kern.Proc
	skbQueue  kern.Proc // skb queue/backlog manipulation
	sockRfree kern.Proc // receive-buffer accounting

	// Copies bin.
	copyFromUser kern.Proc // unrolled transmit copy
	csumCopyUser kern.Proc // rep-mov receive copy+checksum (2.4)
	intCopyUser  kern.Proc // integer receive copy (2.6 ablation)

	// Locks bin.
	lockSock    kern.Proc
	releaseSock kern.Proc

	// Timers bin.
	modTimer       kern.Proc
	delTimer       kern.Proc
	gettimeofday   kern.Proc
	tcpDelackTimer kern.Proc
	tcpWriteTimer  kern.Proc
}

// New builds the stack, its buffer pool and the NIC driver (with the
// stack's hooks installed).
func New(k *kern.Kernel, cfg Config) *Stack {
	if cfg.MSS <= 0 || cfg.SndBuf <= 0 || cfg.RcvBuf <= 0 {
		panic(fmt.Sprintf("tcp: bad config %+v", cfg))
	}
	if cfg.MSS > skbDataBytes-128 {
		panic(fmt.Sprintf("tcp: MSS %d exceeds skb buffer capacity %d (headroom included)", cfg.MSS, skbDataBytes-128))
	}
	st := &Stack{
		K:        k,
		Cfg:      cfg,
		hashAddr: k.Space.AllocPage(16<<10, "tcp_ehash"),
	}
	st.Pool = newPool(st, cfg.PoolSKBs, cfg.PoolHeaders)

	p := &st.p
	p.systemCall = k.NewProc("system_call", perf.BinInterface, 512)
	p.sysWrite = k.NewProc("sys_write", perf.BinInterface, 768)
	p.sysRead = k.NewProc("sys_read", perf.BinInterface, 768)
	p.sockWait = k.NewProc("sock_wait_for_wmem", perf.BinInterface, 640)
	p.sockReadable = k.NewProc("sock_def_readable", perf.BinInterface, 384)
	p.writeSpace = k.NewProc("tcp_write_space", perf.BinInterface, 384)

	p.inetSendmsg = k.NewProc("inet_sendmsg", perf.BinEngine, 256)
	p.inetRecvmsg = k.NewProc("inet_recvmsg", perf.BinEngine, 256)
	p.tcpSendmsg = k.NewProc("tcp_sendmsg", perf.BinEngine, 4096)
	p.tcpTransmitSkb = k.NewProc("tcp_transmit_skb", perf.BinEngine, 2048)
	p.tcpV4Rcv = k.NewProc("tcp_v4_rcv", perf.BinEngine, 1536)
	p.tcpV4DoRcv = k.NewProc("tcp_v4_do_rcv", perf.BinEngine, 512)
	p.tcpRcvEstab = k.NewProc("tcp_rcv_established", perf.BinEngine, 3072)
	p.tcpAck = k.NewProc("tcp_ack", perf.BinEngine, 2048)
	p.tcpRecvmsg = k.NewProc("tcp_recvmsg", perf.BinEngine, 3072)
	p.tcpSelectWin = k.NewProc("__tcp_select_window", perf.BinEngine, 512)
	p.tcpSendAck = k.NewProc("tcp_send_ack", perf.BinEngine, 512)
	p.tcpConnect = k.NewProc("tcp_connect", perf.BinEngine, 1536)
	p.tcpClose = k.NewProc("tcp_close", perf.BinEngine, 1024)

	p.allocSkb = k.NewProc("alloc_skb", perf.BinBufMgmt, 1024)
	p.kfreeSkb = k.NewProc("kfree_skb", perf.BinBufMgmt, 768)
	p.skbClone = k.NewProc("skb_clone", perf.BinBufMgmt, 768)
	p.skbQueue = k.NewProc("skb_queue_tail", perf.BinBufMgmt, 384)
	p.sockRfree = k.NewProc("sock_rfree", perf.BinBufMgmt, 384)

	p.copyFromUser = k.NewProc("__copy_from_user_ll", perf.BinCopies, 1024)
	p.csumCopyUser = k.NewProc("csum_and_copy_to_user", perf.BinCopies, 768)
	p.intCopyUser = k.NewProc("copy_to_user_int", perf.BinCopies, 1024)

	p.lockSock = k.NewProc("lock_sock", perf.BinLocks, 384)
	p.releaseSock = k.NewProc("release_sock", perf.BinLocks, 512)

	p.modTimer = k.NewProc("mod_timer", perf.BinTimers, 512)
	p.delTimer = k.NewProc("del_timer", perf.BinTimers, 384)
	p.gettimeofday = k.NewProc("do_gettimeofday", perf.BinTimers, 384)
	p.tcpDelackTimer = k.NewProc("tcp_delack_timer", perf.BinTimers, 512)
	p.tcpWriteTimer = k.NewProc("tcp_write_timer", perf.BinTimers, 512)

	st.Drv = netdev.NewDriver(k, netdev.Hooks{
		RxUp:       st.rxUp,
		TxDone:     st.txDone,
		AllocRxBuf: st.allocRxBuf,
	})
	return st
}

// demux routes frames leaving a NIC to the right connection's client,
// so one port can carry several connections.
type demux struct{ st *Stack }

// ToPeer implements netdev.Peer.
func (d *demux) ToPeer(f netdev.WireFrame) {
	if c := d.st.lookupClient(f.Conn); c != nil {
		c.ToPeer(f)
	}
}

// AddNIC attaches a gigabit port on vec and primes its receive ring from
// the pool (setup time, unmeasured).
func (st *Stack) AddNIC(vec apic.Vector) *netdev.NIC {
	return st.AddNICWithConfig(netdev.DefaultNICConfig(vec))
}

// AddNICWithConfig attaches a port with a custom device configuration
// (RSS queues, NAPI, loss rate, coalescing) and primes its rings.
func (st *Stack) AddNICWithConfig(cfg netdev.NICConfig) *netdev.NIC {
	n := st.Drv.AddNIC(cfg)
	n.SetPeer(&demux{st: st})
	prime := 128 * n.Queues()
	var bufs []mem.Addr
	var cookies []any
	for i := 0; i < prime; i++ {
		skb := st.Pool.grabForRing()
		bufs = append(bufs, skb.DataAddr)
		cookies = append(cookies, skb)
	}
	n.PrimeRx(bufs, cookies)
	return n
}

// Socket returns the socket for a connection id.
func (st *Stack) Socket(conn int) *Socket { return st.lookupSocket(conn) }

// Client returns the far-end model for a connection id.
func (st *Stack) Client(conn int) *Client { return st.lookupClient(conn) }

// allocRxBuf refills a NIC ring slot: alloc_skb in softirq context.
func (st *Stack) allocRxBuf(env *kern.Env) (mem.Addr, any) {
	skb := st.Pool.AllocSKB(env)
	return skb.DataAddr, skb
}

// txDone frees the transmit clone when the wire is done with it.
func (st *Stack) txDone(env *kern.Env, cookie any) {
	switch c := cookie.(type) {
	case *SKB:
		st.Pool.FreeSKB(env, c)
	case *Clone:
		st.Pool.FreeClone(env, c)
	case nil:
		// Pure ACKs carry no buffer.
	default:
		panic(fmt.Sprintf("tcp: unknown tx cookie %T", cookie))
	}
}
