package tcp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/netdev"
	"repro/internal/sim"
)

// Socket is one established TCP connection endpoint on the SUT. Exactly
// one process uses each socket at a time, with the protocol's other
// half executing in softirq context — the split whose placement the
// four affinity modes control.
//
// Socket is a flyweight: a stack pointer plus an arena handle. All
// mutable state lives in the stack's struct-of-arrays arena (arena.go);
// Conn and NIC are the slot's current binding, updated when connection
// churn recycles the slot.
type Socket struct {
	st   *Stack
	h    Handle
	Conn int
	NIC  *netdev.NIC
}

// NewConn establishes connection conn over nic, returning the SUT socket
// and the far-end client model (already attached as the NIC's peer).
// Setup happens outside measured time, as in the paper ("a connection is
// set up once between two nodes").
func (st *Stack) NewConn(conn int, nic *netdev.NIC) (*Socket, *Client) {
	if st.lookupSocket(conn) != nil {
		panic(fmt.Sprintf("tcp: duplicate connection %d", conn))
	}
	h := st.newSlot(conn, nic)
	s := st.arena.socks[h]
	st.bindConn(conn, h)

	c := newClient(st, conn, nic)
	st.bindClient(conn, c)
	return s, c
}

// Handle exposes the socket's arena slot index (diagnostics, tests).
func (s *Socket) Handle() Handle { return s.h }

// InFlight reports unacknowledged transmit bytes.
func (s *Socket) InFlight() int {
	tx := s.tx()
	return int(tx.sndNxt - tx.sndUna)
}

// rcvWindow is the advertised receive window: half the buffer space not
// yet consumed by queued skbs' truesize (Linux's tcp_adv_win_scale
// halving, which reserves the other half for the truesize overhead of
// the payload the window invites), floored at zero.
func (s *Socket) rcvWindow() int {
	rx := s.rx()
	w := s.st.Cfg.RcvBuf - rx.rcvQBytes
	if w < 0 {
		w = 0
	}
	w /= 2
	// Never retract the previously advertised right edge.
	if edge := int(rx.rcvRightEdge - rx.rcvNxt); edge > w {
		w = edge
	}
	return w
}

// advertise computes the window to place in an outgoing segment and
// advances the committed right edge.
func (s *Socket) advertise() int {
	rx := s.rx()
	w := s.rcvWindow()
	if e := rx.rcvNxt + uint64(w); e > rx.rcvRightEdge {
		rx.rcvRightEdge = e
	}
	return w
}

// RcvQueued reports bytes waiting in the receive queue.
func (s *Socket) RcvQueued() int { return s.rx().rcvQBytes }

// --- per-connection counters (arena-backed) ---

// AppBytesIn and AppBytesOut are application bytes delivered to and
// accepted from this connection's user.
func (s *Socket) AppBytesIn() uint64  { return s.stat().appBytesIn }
func (s *Socket) AppBytesOut() uint64 { return s.stat().appBytesOut }

// SegsIn and SegsOut count data segments received and transmitted.
func (s *Socket) SegsIn() uint64  { return s.stat().segsIn }
func (s *Socket) SegsOut() uint64 { return s.stat().segsOut }

// AcksIn and AcksOut count acknowledgments processed and emitted.
func (s *Socket) AcksIn() uint64  { return s.stat().acksIn }
func (s *Socket) AcksOut() uint64 { return s.stat().acksOut }

// BacklogDeferrals counts packets parked on the socket backlog because
// the user owned the socket when softirq delivery arrived.
func (s *Socket) BacklogDeferrals() uint64 { return s.stat().backlogDeferrals }

// Retransmits counts segments this socket retransmitted.
func (s *Socket) Retransmits() uint64 { return s.stat().retransmits }

// OutOfOrderDrops counts go-back-N receiver drops (gaps/duplicates).
func (s *Socket) OutOfOrderDrops() uint64 { return s.stat().outOfOrderDrops }

// --- socket lock ---

// lockSock takes user ownership (process context).
func (s *Socket) lockSock(env *kern.Env) {
	ctl := s.ctl()
	ctl.slock.Lock(env)
	env.Run(s.st.p.lockSock, func(x *cpu.Exec) {
		x.Instr(45, 0.1, 0.02).Store(ctl.sockAddr, 32)
	})
	ctl.ownedByUser = true
	ctl.slock.Unlock(env)
}

// releaseSock drops user ownership, first processing any packets the
// softirq deferred to the backlog while the user held the socket.
func (s *Socket) releaseSock(env *kern.Env) {
	ctl := s.ctl()
	ctl.slock.Lock(env)
	for len(ctl.backlog) > 0 {
		pkt := ctl.backlog[0]
		ctl.backlog = ctl.backlog[1:]
		env.Run(s.st.p.tcpV4DoRcv, func(x *cpu.Exec) {
			x.Instr(45, 0.18, 0.015).Overhead(45).Load(ctl.sockAddr, 64)
		})
		s.doRcv(env, pkt)
	}
	ctl.ownedByUser = false
	env.Run(s.st.p.releaseSock, func(x *cpu.Exec) {
		x.Instr(55, 0.1, 0.02).Store(ctl.sockAddr, 32)
	})
	ctl.slock.Unlock(env)
}

// --- transmit path (process context) ---

// Write is the sendmsg fast path: syscall entry, socket lock, segmenting
// userBuf[0:size) into MSS skbs with the unrolled transmit copy, Nagle
// coalescing for sub-MSS tails, transmission through the bound NIC, and
// blocking when the send buffer fills. It returns when all bytes are
// queued (BSD blocking-socket semantics).
func (s *Socket) Write(env *kern.Env, userBuf mem.Addr, size int) {
	if env.Task() == nil {
		panic("tcp: Write from softirq context")
	}
	st := s.st
	p := &st.p
	tx, ctl := s.tx(), s.ctl()
	env.Run(p.systemCall, func(x *cpu.Exec) {
		x.Instr(125, 0.2, 0.01).Overhead(825)
	})
	env.Run(p.sysWrite, func(x *cpu.Exec) {
		x.Instr(190, 0.19, 0.012).Overhead(890).
			Load(ctl.fileAddr, 768).Store(ctl.fileAddr, 64).
			Load(ctl.sockAddr, 64)
	})
	env.Run(p.inetSendmsg, func(x *cpu.Exec) {
		x.Instr(55, 0.17, 0.01).Overhead(55).Load(ctl.sockAddr, 32)
	})
	s.lockSock(env)
	env.Run(p.tcpSendmsg, func(x *cpu.Exec) {
		x.Instr(160, 0.17, 0.006).Overhead(160).
			Load(ctl.sockAddr, 128).
			Load(ctl.ctxAddr, 128).Store(ctl.ctxAddr, 32)
	})

	mss := st.Cfg.MSS
	off := 0
	for off < size {
		if tx.sndBufBytes+skbTruesize > st.Cfg.SndBuf && (tx.tail == nil || tx.tail.Len >= mss) {
			// No room for another skb's truesize: wait for ACKs to free
			// queued buffers (sock_wait_for_wmem).
			s.releaseSock(env)
			env.Run(p.sockWait, func(x *cpu.Exec) {
				x.Instr(115, 0.22, 0.03).Overhead(615).Store(ctl.sockAddr, 64)
			})
			for tx.sndBufBytes+skbTruesize > st.Cfg.SndBuf {
				st.K.Trace.SockBlock(st.K.Now(), env.CPU().ID(), s.Conn, "sndbuf")
				env.Sleep(ctl.sndWait)
			}
			s.lockSock(env)
			continue
		}
		if tx.tail == nil || tx.tail.Len >= mss {
			tx.tail = st.Pool.AllocSKB(env)
			tx.sndBufBytes += skbTruesize
		}
		tail := tx.tail
		chunk := size - off
		if room := mss - tail.Len; chunk > room {
			chunk = room
		}
		// The transmit copy: the carefully unrolled loop whose alignment
		// is known in advance (§6.1), reading the (cache-warm) user
		// buffer and writing the skb.
		env.Run(p.copyFromUser, func(x *cpu.Exec) {
			x.Instr(uint64(chunk), 0.02, 0.005).
				Load(userBuf+mem.Addr(off), chunk).
				Store(tail.DataAddr+mem.Addr(tail.Len), chunk)
		})
		tail.Len += chunk
		off += chunk
		env.Run(p.tcpSendmsg, func(x *cpu.Exec) {
			x.Instr(145, 0.17, 0.006).Overhead(145).
				Load(ctl.ctxAddr, 256).Store(ctl.ctxAddr, 64).
				Store(tail.HeadAddr, 64)
		})
		// Transmit a full segment immediately; flush a partial tail only
		// when nothing is in flight (Nagle).
		if tail.Len >= mss {
			tx.tail = nil
			s.queueAndTransmit(env, tail)
		} else if off >= size && s.InFlight() == 0 {
			tx.tail = nil
			s.queueAndTransmit(env, tail)
		}
	}
	s.releaseSock(env)
	s.stat().appBytesOut += uint64(size)
}

// queueAndTransmit assigns sequence space, appends to the retransmit
// queue and pushes the segment to the device. Caller owns the socket.
func (s *Socket) queueAndTransmit(env *kern.Env, skb *SKB) {
	tx := s.tx()
	skb.Seq = tx.sndNxt
	tx.sndNxt += uint64(skb.Len)
	tx.retransQ = append(tx.retransQ, skb)
	s.transmitSkb(env, skb)
}

// transmitSkb is tcp_transmit_skb: header construction, window
// selection, retransmit-timer arming, clone, and the driver transmit.
func (s *Socket) transmitSkb(env *kern.Env, skb *SKB) {
	st := s.st
	p := &st.p
	rx, ctl := s.rx(), s.ctl()
	env.Run(p.tcpTransmitSkb, func(x *cpu.Exec) {
		x.Instr(215, 0.16, 0.01).Overhead(215).
			Load(ctl.ctxAddr, 384).Store(ctl.ctxAddr, 128).
			Load(skb.HeadAddr, 256).Store(skb.HeadAddr, 128).
			Store(skb.DataAddr, 64) // header bytes prepended to payload
	})
	env.Run(p.tcpSelectWin, func(x *cpu.Exec) {
		x.Instr(42, 0.18, 0.008).Overhead(43).Load(ctl.ctxAddr, 64)
	})
	clone := st.Pool.AllocClone(env, skb)
	env.Run(p.modTimer, func(x *cpu.Exec) {
		x.Instr(95, 0.16, 0.01).Store(ctl.ctxAddr, 16)
	})
	st.K.ModTimer(ctl.retransTimer, st.K.Now()+s.rto())
	s.stat().segsOut++
	win := s.advertise()
	rx.lastWndAdv = win
	st.Drv.XmitBlocking(env, s.NIC, netdev.TxReq{
		Frame: netdev.WireFrame{
			Conn:   s.Conn,
			Seq:    skb.Seq,
			Ack:    rx.rcvNxt,
			Window: win,
			Len:    skb.Len,
			Flags:  netdev.FlagPsh | netdev.FlagAck,
		},
		Data:   skb.DataAddr,
		Cookie: clone,
	})
}

// sendAck emits a pure acknowledgment advertising the current window.
func (s *Socket) sendAck(env *kern.Env) {
	st := s.st
	p := &st.p
	rx, ctl := s.rx(), s.ctl()
	env.Run(p.tcpSendAck, func(x *cpu.Exec) {
		x.Instr(80, 0.17, 0.01).Overhead(80).Load(ctl.ctxAddr, 64)
	})
	env.Run(p.tcpSelectWin, func(x *cpu.Exec) {
		x.Instr(42, 0.18, 0.008).Overhead(43).Load(ctl.ctxAddr, 64)
	})
	ack := st.Pool.AllocAckSkb(env)
	env.Run(p.tcpTransmitSkb, func(x *cpu.Exec) {
		x.Instr(150, 0.16, 0.01).Overhead(150).
			Load(ctl.ctxAddr, 64).Store(ctl.ctxAddr, 32).
			Store(ack.HeadAddr, 64)
	})
	rx.segsSinceAck = 0
	win := s.advertise()
	rx.lastWndAdv = win
	s.stat().acksOut++
	st.Drv.XmitBlocking(env, s.NIC, netdev.TxReq{
		Frame: netdev.WireFrame{
			Conn:   s.Conn,
			Ack:    rx.rcvNxt,
			Window: win,
			Flags:  netdev.FlagAck,
		},
		Cookie: ack,
	})
}

// --- receive path ---

// rxUp is the protocol entry from the driver: tcp_v4_rcv in softirq
// context. The bottom half timestamps the packet (do_gettimeofday — the
// paper's RX Timers cost), then either processes it or defers to the
// backlog when the user owns the socket. A packet for a connection with
// no socket goes to the listener (SYN: passive open) or is dropped as
// an orphan (late ACKs for churned connections).
func (st *Stack) rxUp(env *kern.Env, pkt netdev.RxPacket) {
	f := pkt.Frame
	s := st.lookupSocket(f.Conn)
	if s == nil {
		st.rxNoSocket(env, pkt)
		return
	}
	p := &st.p
	ctl := s.ctl()
	env.Run(p.tcpV4Rcv, func(x *cpu.Exec) {
		x.Instr(145, 0.16, 0.01).Overhead(145).
			Load(st.hashAddr+mem.Addr((f.Conn*64)%(16<<10)), 64).
			Load(ctl.sockAddr, 128)
	})
	env.Run(p.gettimeofday, func(x *cpu.Exec) {
		x.Instr(360, 0.12, 0.002).Overhead(900).
			Load(st.K.XtimeAddr, 8).Load(st.K.XtimeAddr, 8).Load(st.K.XtimeAddr, 8)
	})
	ctl.slock.Lock(env)
	if ctl.ownedByUser {
		s.stat().backlogDeferrals++
		env.Run(p.skbQueue, func(x *cpu.Exec) {
			x.Instr(80, 0.18, 0.012).Store(ctl.sockAddr, 32)
		})
		ctl.backlog = append(ctl.backlog, pkt)
		ctl.slock.Unlock(env)
		return
	}
	s.doRcv(env, pkt)
	ctl.slock.Unlock(env)
}

// doRcv processes one packet under the socket lock (softirq) or under
// user ownership (backlog replay in process context).
func (s *Socket) doRcv(env *kern.Env, pkt netdev.RxPacket) {
	f := pkt.Frame
	if f.Flags&(netdev.FlagSyn|netdev.FlagFin) != 0 {
		if s.rcvControl(env, f) {
			if skb, ok := pkt.Cookie.(*SKB); ok {
				s.st.Pool.FreeSKB(env, skb)
			}
			return
		}
	}
	if f.Len > 0 {
		s.rcvData(env, pkt)
	} else if skb, ok := pkt.Cookie.(*SKB); ok {
		// Pure ACK: the ring skb carries no payload to keep; free it.
		s.st.Pool.FreeSKB(env, skb)
	}
	if f.Flags&netdev.FlagAck != 0 {
		s.rcvAck(env, f)
	}
}

// rcvData is tcp_rcv_established for an in-order data segment.
func (s *Socket) rcvData(env *kern.Env, pkt netdev.RxPacket) {
	st := s.st
	p := &st.p
	f := pkt.Frame
	skb := pkt.Cookie.(*SKB)
	rx, ctl := s.rx(), s.ctl()
	if f.Seq != rx.rcvNxt {
		// Go-back-N receiver: duplicates and gaps are dropped, answered
		// with an immediate (duplicate) ACK re-advertising rcv_nxt so the
		// sender retransmits.
		s.stat().outOfOrderDrops++
		s.stat().dupAcksOut++
		st.Pool.FreeSKB(env, skb)
		s.sendAck(env)
		return
	}
	env.Run(p.tcpRcvEstab, func(x *cpu.Exec) {
		x.Instr(200, 0.16, 0.008).Overhead(200).
			Load(ctl.ctxAddr, 640).Store(ctl.ctxAddr, 192).
			Load(skb.HeadAddr, 128).Store(skb.HeadAddr, 64)
	})
	skb.Seq = f.Seq
	skb.Len = f.Len
	skb.Consumed = 0
	rx.rcvNxt += uint64(f.Len)
	rx.rcvQ = append(rx.rcvQ, skb)
	rx.rcvQBytes += skbTruesize
	s.stat().segsIn++
	env.Run(p.skbQueue, func(x *cpu.Exec) {
		x.Instr(75, 0.18, 0.012).Store(ctl.sockAddr, 32).Store(skb.HeadAddr, 16)
	})
	rx.segsSinceAck++
	if rx.segsSinceAck >= st.Cfg.DelAckSegs {
		s.sendAck(env)
	} else if !ctl.delackArmed {
		ctl.delackArmed = true
		env.Run(p.modTimer, func(x *cpu.Exec) {
			x.Instr(95, 0.16, 0.01).Store(ctl.ctxAddr, 16)
		})
		st.K.ModTimer(ctl.delackTimer, st.K.Now()+400_000) // 200 µs
	}
	if ctl.rcvWait.Len() > 0 {
		env.Run(p.sockReadable, func(x *cpu.Exec) {
			x.Instr(75, 0.2, 0.02).Overhead(325).Load(ctl.sockAddr, 64)
		})
		st.K.Trace.SockWake(st.K.Now(), env.CPU().ID(), s.Conn, "rcvbuf", ctl.rcvWait.Len())
		ctl.rcvWait.WakeAll(st.K, env)
	}
}

// rcvAck is tcp_ack: advance snd_una, free acknowledged retransmit-queue
// skbs, manage the retransmit timer, push a Nagle-held tail, and wake a
// writer waiting for buffer space.
func (s *Socket) rcvAck(env *kern.Env, f netdev.WireFrame) {
	st := s.st
	p := &st.p
	tx, ctl := s.tx(), s.ctl()
	s.stat().acksIn++
	freed := 0
	env.Run(p.tcpAck, func(x *cpu.Exec) {
		x.Instr(155, 0.17, 0.008).Overhead(155).
			Load(ctl.ctxAddr, 448).Store(ctl.ctxAddr, 128).
			Store(ctl.sockAddr, 64)
	})
	if f.Ack == tx.sndUna && s.InFlight() > 0 && f.Len == 0 {
		// Duplicate ACK: three in a row trigger go-back-N retransmission
		// of the outstanding window (the receiver dropped everything past
		// the gap), once per recovery episode.
		tx.dupAcks++
		if tx.dupAcks >= 3 && tx.sndUna >= tx.recoverSeq {
			tx.dupAcks = 0
			s.stat().fastRetrans++
			s.goBackN(env)
		}
	}
	if f.Ack > tx.sndUna {
		tx.dupAcks = 0
		tx.rtoBackoff = 0
		tx.sndUna = f.Ack
		for len(tx.retransQ) > 0 {
			head := tx.retransQ[0]
			if head.Seq+uint64(head.Len) > tx.sndUna {
				break
			}
			tx.retransQ = tx.retransQ[1:]
			tx.sndBufBytes -= skbTruesize
			st.Pool.FreeSKB(env, head)
			freed++
		}
		if s.InFlight() == 0 {
			env.Run(p.delTimer, func(x *cpu.Exec) {
				x.Instr(60, 0.15, 0.008).Store(ctl.ctxAddr, 16)
			})
			st.K.DelTimer(ctl.retransTimer)
		} else {
			env.Run(p.modTimer, func(x *cpu.Exec) {
				x.Instr(95, 0.16, 0.01).Store(ctl.ctxAddr, 16)
			})
			st.K.ModTimer(ctl.retransTimer, st.K.Now()+s.rto())
		}
	}
	tx.sndWnd = f.Window
	// Nagle: a held tail goes out once everything else is acknowledged.
	if s.InFlight() == 0 && tx.tail != nil && tx.tail.Len > 0 {
		t := tx.tail
		tx.tail = nil
		s.queueAndTransmit(env, t)
	}
	if freed > 0 && ctl.sndWait.Len() > 0 && tx.sndBufBytes+skbTruesize <= st.Cfg.SndBuf {
		env.Run(p.writeSpace, func(x *cpu.Exec) {
			x.Instr(70, 0.2, 0.02).Overhead(320).Load(ctl.sockAddr, 64)
		})
		st.K.Trace.SockWake(st.K.Now(), env.CPU().ID(), s.Conn, "sndbuf", ctl.sndWait.Len())
		ctl.sndWait.WakeAll(st.K, env)
	}
}

// --- receive path (process context) ---

// Read is the recvmsg fast path: syscall entry, socket lock, draining
// the receive queue through the 2.4 `rep movl` copy-and-checksum (or the
// 2.6 integer copy under the ablation), freeing drained skbs, sending
// window updates as the window reopens, and blocking while the queue is
// empty. It returns when size bytes have been delivered.
func (s *Socket) Read(env *kern.Env, userBuf mem.Addr, size int) {
	if env.Task() == nil {
		panic("tcp: Read from softirq context")
	}
	st := s.st
	p := &st.p
	rx, ctl := s.rx(), s.ctl()
	env.Run(p.systemCall, func(x *cpu.Exec) {
		x.Instr(125, 0.2, 0.01).Overhead(825)
	})
	env.Run(p.sysRead, func(x *cpu.Exec) {
		x.Instr(190, 0.19, 0.012).Overhead(890).
			Load(ctl.fileAddr, 768).Store(ctl.fileAddr, 64).
			Load(ctl.sockAddr, 64)
	})
	env.Run(p.inetRecvmsg, func(x *cpu.Exec) {
		x.Instr(55, 0.17, 0.01).Overhead(55).Load(ctl.sockAddr, 32)
	})
	s.lockSock(env)
	env.Run(p.tcpRecvmsg, func(x *cpu.Exec) {
		x.Instr(165, 0.15, 0.009).Overhead(165).
			Load(ctl.sockAddr, 128).
			Load(ctl.ctxAddr, 128).Store(ctl.ctxAddr, 32)
	})
	copied := 0
	for copied < size {
		if len(rx.rcvQ) == 0 {
			s.releaseSock(env)
			env.Run(p.sockWait, func(x *cpu.Exec) {
				x.Instr(115, 0.22, 0.03).Overhead(615).Store(ctl.sockAddr, 64)
			})
			for len(rx.rcvQ) == 0 {
				st.K.Trace.SockBlock(st.K.Now(), env.CPU().ID(), s.Conn, "rcvbuf")
				env.Sleep(ctl.rcvWait)
			}
			s.lockSock(env)
			continue
		}
		skb := rx.rcvQ[0]
		env.Run(p.tcpRecvmsg, func(x *cpu.Exec) {
			x.Instr(30, 0.15, 0.009).Overhead(30).Load(skb.HeadAddr, 128)
		})
		chunk := size - copied
		if rem := skb.Remaining(); chunk > rem {
			chunk = rem
		}
		copyProc := p.csumCopyUser
		if st.Cfg.RxIntCopy {
			copyProc = p.intCopyUser
		}
		env.Run(copyProc, func(x *cpu.Exec) {
			instr := uint64(chunk / 4)
			overhead := uint64(3 * chunk) // rep-mov microcode + checksum
			if st.Cfg.RxIntCopy {
				instr = uint64(chunk)        // explicit integer moves
				overhead = uint64(chunk / 2) // far less microcode stall
			}
			if instr == 0 {
				instr = 1
			}
			x.Instr(instr, 0.02, 0.005).
				Overhead(overhead).
				Load(skb.DataAddr+mem.Addr(skb.Consumed), chunk).
				Store(userBuf+mem.Addr(copied), chunk)
		})
		skb.Consumed += chunk
		copied += chunk
		if skb.Remaining() == 0 {
			rx.rcvQ = rx.rcvQ[1:]
			rx.rcvQBytes -= skbTruesize
			env.Run(p.sockRfree, func(x *cpu.Exec) {
				x.Instr(70, 0.18, 0.012).Store(ctl.sockAddr, 32)
			})
			st.Pool.FreeSKB(env, skb)
			// tcp_cleanup_rbuf: advertise reopened space as soon as it is
			// worth a frame (2×MSS hysteresis) — mid-read, or a sender
			// blocked on a zero window could deadlock against a reader
			// blocked on an empty queue.
			if s.rcvWindow()-rx.lastWndAdv >= 2*st.Cfg.MSS {
				s.sendAck(env)
			}
		}
		env.Run(p.tcpRecvmsg, func(x *cpu.Exec) {
			x.Instr(80, 0.15, 0.009).Overhead(80).Load(ctl.ctxAddr, 64)
		})
	}
	s.releaseSock(env)
	s.stat().appBytesIn += uint64(size)
}

// --- timers ---

// onRetransTimer retransmits the oldest unacknowledged segment. In the
// paper's loss-free LAN it never fires; with a lossy link (NICConfig.
// LossRate) it is the recovery of last resort behind fast retransmit.
func (s *Socket) onRetransTimer(env *kern.Env) {
	tx, ctl := s.tx(), s.ctl()
	env.Run(s.st.p.tcpWriteTimer, func(x *cpu.Exec) {
		x.Instr(180, 0.18, 0.015).Load(ctl.ctxAddr, 64)
	})
	ctl.slock.Lock(env)
	if ctl.ownedByUser {
		// The user owns the socket; retry shortly (real kernels defer
		// similarly rather than spin on the lock in timer context).
		ctl.slock.Unlock(env)
		s.st.K.ModTimer(ctl.retransTimer, s.st.K.Now()+sim.Time(2_000_000))
		return
	}
	if len(tx.retransQ) > 0 {
		// A timer expiry means the estimate was wrong or the path is
		// down: back off before retransmitting (transmitSkb re-arms with
		// the doubled value), so a dead link decays to sparse probes
		// instead of a fixed-rate retransmission storm.
		tx.rtoBackoff++
		s.goBackN(env)
	}
	ctl.slock.Unlock(env)
}

// rto is the current retransmission timeout: the configured initial
// value doubled once per consecutive timer expiry, saturating at the
// configured cap. Zero-valued config fields fall back to the defaults
// so pre-existing configs keep their 200 ms behaviour.
func (s *Socket) rto() sim.Time {
	init, max := s.st.Cfg.RTOInitCycles, s.st.Cfg.RTOMaxCycles
	if init == 0 {
		init = DefaultRTOInitCycles
	}
	if max == 0 {
		max = DefaultRTOMaxCycles
	}
	if max < init {
		max = init
	}
	rto := init
	for i := uint(0); i < s.tx().rtoBackoff; i++ {
		rto <<= 1
		if rto >= max || rto < init { // saturate, and guard shift overflow
			return sim.Time(max)
		}
	}
	if rto > max {
		rto = max
	}
	return sim.Time(rto)
}

// goBackN retransmits every outstanding segment and marks the recovery
// point. The receiver is go-back-N (it dropped everything past the first
// gap), so resending the window is both necessary and sufficient.
func (s *Socket) goBackN(env *kern.Env) {
	tx := s.tx()
	tx.recoverSeq = tx.sndNxt
	for _, skb := range tx.retransQ {
		s.stat().retransmits++
		s.transmitSkb(env, skb)
	}
}

// onDelackTimer flushes a pending delayed ACK.
func (s *Socket) onDelackTimer(env *kern.Env) {
	ctl := s.ctl()
	ctl.delackArmed = false
	env.Run(s.st.p.tcpDelackTimer, func(x *cpu.Exec) {
		x.Instr(150, 0.18, 0.015).Load(ctl.ctxAddr, 64)
	})
	ctl.slock.Lock(env)
	if !ctl.ownedByUser && s.rx().segsSinceAck > 0 {
		s.sendAck(env)
	}
	ctl.slock.Unlock(env)
}
