package tcp

import (
	"testing"

	"repro/internal/kern"
)

// TestListenAcceptServesActiveOpen walks one full churned-connection
// lifecycle through the passive-open path: a far-end client SYNs in, a
// parked acceptor wakes with the new socket, serves a request/response
// exchange, waits out the client's FIN and releases the slot back to
// the arena.
func TestListenAcceptServesActiveOpen(t *testing.T) {
	r := newRig(t, DefaultConfig())
	lst := r.st.Listen(8)

	const req, rsp = 384, 4096
	reqBuf := r.k.Space.AllocPage(4096, "lreqbuf")
	rspBuf := r.k.Space.AllocPage(4096, "lrspbuf")
	var served, released bool
	r.k.Spawn("acceptor", 0, 0, func(e *kern.Env) {
		s := lst.Accept(e)
		if s.State() != StateEstablished {
			t.Errorf("accepted socket in state %v, want ESTABLISHED", s.State())
		}
		s.Read(e, reqBuf, req)
		s.Write(e, rspBuf, rsp)
		served = true
		s.WaitClose(e)
		r.st.Release(e, s)
		released = true
	})

	c := r.st.NewActiveClient(9, r.nic)
	got := 0
	closed := false
	c.OnEstablished(func() { c.SendBytes(req) })
	c.OnReceive(func(n int) {
		got += n
		if !closed && got >= rsp {
			closed = true
			c.Close()
		}
	})
	r.eng.At(1000, c.Open)
	r.eng.Run(2_000_000_000)

	if !served {
		t.Fatal("acceptor never served the connection")
	}
	if got != rsp {
		t.Fatalf("client received %d bytes, want %d", got, rsp)
	}
	if !released {
		t.Fatal("acceptor never observed the close and released the socket")
	}
	if lst.Accepts != 1 || lst.SynDrops != 0 {
		t.Fatalf("listener accounting accepts=%d syndrops=%d, want 1/0", lst.Accepts, lst.SynDrops)
	}
	if r.st.Socket(9) != nil {
		t.Fatal("released connection still bound in the demux")
	}
}

// TestListenBacklogRefusesSyn pins the admission bound: with the accept
// queue full and no acceptor draining it, further SYNs are silently
// dropped and counted, never queued.
func TestListenBacklogRefusesSyn(t *testing.T) {
	r := newRig(t, DefaultConfig())
	lst := r.st.Listen(1)

	for conn := 10; conn < 13; conn++ {
		c := r.st.NewActiveClient(conn, r.nic)
		r.eng.At(1000, c.Open)
	}
	r.eng.Run(1_000_000_000)

	if len(lst.acceptQ) != 1 {
		t.Fatalf("accept queue holds %d connections, want the backlog bound 1", len(lst.acceptQ))
	}
	if lst.SynDrops != 2 {
		t.Fatalf("SynDrops=%d, want 2 refused connections", lst.SynDrops)
	}
}
