package tcp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/netdev"
)

// State is a socket's connection state. The paper partitions workloads
// into "network fast paths", "network connection setup/teardown" and
// "application processing" (§4); the fast path is what it measures, but
// the library implements setup/teardown too so workloads with connection
// churn can be built on it.
type State int

const (
	// StateClosed: no connection.
	StateClosed State = iota
	// StateSynSent: active open in progress.
	StateSynSent
	// StateEstablished: data may flow.
	StateEstablished
	// StateFinWait: active close in progress.
	StateFinWait
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateSynSent:
		return "SYN_SENT"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN_WAIT"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// State reports the socket's connection state.
func (s *Socket) State() State { return s.ctl().state }

// NewConnClosed creates the socket/client pair like NewConn but leaves
// the connection unestablished; the caller drives Connect from a task.
func (st *Stack) NewConnClosed(conn int, nic *netdev.NIC) (*Socket, *Client) {
	s, c := st.NewConn(conn, nic)
	s.ctl().state = StateClosed
	return s, c
}

// Connect performs the active open (three-way handshake): SYN out,
// SYN|ACK back from the client, ACK out. It blocks the calling task
// until the connection is established. Control segments are modelled as
// sequence-space-free (a simplification documented in DESIGN.md): the
// handshake costs engine work, wire round-trips and an skb, but data
// sequence numbers still start at 1.
func (s *Socket) Connect(env *kern.Env) {
	if env.Task() == nil {
		panic("tcp: Connect from softirq context")
	}
	ctl := s.ctl()
	if ctl.state == StateEstablished {
		return
	}
	st := s.st
	s.lockSock(env)
	env.Run(st.p.tcpConnect, func(x *cpu.Exec) {
		x.Instr(900, 0.17, 0.01).
			Load(ctl.ctxAddr, 512).Store(ctl.ctxAddr, 256).
			Store(ctl.sockAddr, 128)
	})
	ctl.state = StateSynSent
	syn := st.Pool.AllocAckSkb(env)
	s.stat().acksOut++
	st.Drv.XmitBlocking(env, s.NIC, netdev.TxReq{
		Frame: netdev.WireFrame{
			Conn:   s.Conn,
			Window: s.advertise(),
			Flags:  netdev.FlagSyn,
		},
		Cookie: syn,
	})
	s.releaseSock(env)
	for ctl.state != StateEstablished {
		env.Sleep(ctl.connWait)
	}
}

// Close performs the active close: FIN out, FIN|ACK back, done. It
// blocks until the connection is closed.
func (s *Socket) Close(env *kern.Env) {
	if env.Task() == nil {
		panic("tcp: Close from softirq context")
	}
	ctl := s.ctl()
	if ctl.state == StateClosed {
		return
	}
	st := s.st
	s.lockSock(env)
	env.Run(st.p.tcpClose, func(x *cpu.Exec) {
		x.Instr(700, 0.17, 0.01).
			Load(ctl.ctxAddr, 384).Store(ctl.ctxAddr, 128).
			Store(ctl.sockAddr, 128)
	})
	ctl.state = StateFinWait
	fin := st.Pool.AllocAckSkb(env)
	st.Drv.XmitBlocking(env, s.NIC, netdev.TxReq{
		Frame: netdev.WireFrame{
			Conn:  s.Conn,
			Flags: netdev.FlagFin,
		},
		Cookie: fin,
	})
	s.releaseSock(env)
	for ctl.state != StateClosed {
		env.Sleep(ctl.connWait)
	}
}

// WaitClose blocks the calling task until the far end closes the
// connection (passive close: servers park here after writing their
// response, then Release the slot).
func (s *Socket) WaitClose(env *kern.Env) {
	if env.Task() == nil {
		panic("tcp: WaitClose from softirq context")
	}
	ctl := s.ctl()
	for ctl.state != StateClosed {
		env.Sleep(ctl.connWait)
	}
}

// rcvControl handles SYN/FIN segments under the socket lock; it returns
// true if the packet was a control segment (fully consumed).
func (s *Socket) rcvControl(env *kern.Env, f netdev.WireFrame) bool {
	st := s.st
	ctl := s.ctl()
	switch {
	case f.Flags&netdev.FlagSyn != 0:
		env.Run(st.p.tcpConnect, func(x *cpu.Exec) {
			x.Instr(500, 0.17, 0.01).
				Load(ctl.ctxAddr, 256).Store(ctl.ctxAddr, 128)
		})
		if ctl.state == StateSynSent {
			// SYN|ACK for our active open.
			ctl.state = StateEstablished
			s.tx().sndWnd = f.Window
			ctl.connWait.WakeAll(st.K, env)
		}
		return true
	case f.Flags&netdev.FlagFin != 0:
		env.Run(st.p.tcpClose, func(x *cpu.Exec) {
			x.Instr(400, 0.17, 0.01).
				Load(ctl.ctxAddr, 256).Store(ctl.ctxAddr, 128)
		})
		switch ctl.state {
		case StateFinWait:
			// FIN|ACK completing our active close.
			ctl.state = StateClosed
			ctl.connWait.WakeAll(st.K, env)
		case StateEstablished:
			// Passive close: the far end is done with the conversation.
			// No FIN|ACK reply is modelled (control segments are
			// sequence-free); wake tasks parked in WaitClose.
			ctl.state = StateClosed
			ctl.connWait.WakeAll(st.K, env)
		}
		return true
	}
	return false
}
