package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event dispatch rate — the
// simulator's fundamental speed limit.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(1)
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			e.After(10, step)
		}
	}
	b.ResetTimer()
	e.At(0, step)
	e.Run(Forever - 1)
}

// BenchmarkCoroHandoff measures one park/resume round trip.
func BenchmarkCoroHandoff(b *testing.B) {
	c := NewCoro("bench", func(c *Coro) {
		for {
			c.Park()
		}
	})
	c.Resume()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Resume()
	}
}

// BenchmarkRNG measures the deterministic generator.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
