package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event dispatch rate — the
// simulator's fundamental speed limit.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(1)
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			e.After(10, step)
		}
	}
	b.ResetTimer()
	e.At(0, step)
	e.Run(Forever - 1)
}

// BenchmarkEngineScheduleFire measures the schedule+fire round trip with
// a deep queue: each fired event schedules a successor while many other
// events are pending, exercising sift-up and sift-down together.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	const fanout = 256 // pending events kept in flight
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(Cycles(1+uint64(n%97)), step)
		}
	}
	for i := 0; i < fanout; i++ {
		e.At(Time(i), step)
	}
	b.ResetTimer()
	e.Run(Forever - 1)
}

// BenchmarkEngineCancelChurn measures the arm/cancel pattern TCP timers
// produce: events scheduled and cancelled without ever firing, relying on
// lazy compaction to keep the queue lean.
func BenchmarkEngineCancelChurn(b *testing.B) {
	e := NewEngine(1)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(Time(i)+1_000_000, nop)
		ev.Cancel()
		if i%1024 == 1023 {
			// Let the engine advance and reap anything left.
			e.Run(Time(i))
		}
	}
}

// BenchmarkEngineMixedChurn interleaves firing, cancelling and
// rescheduling — the realistic mix on the simulator's hot path.
func BenchmarkEngineMixedChurn(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var pending *Event
	var step func()
	step = func() {
		n++
		if pending != nil && n%3 == 0 {
			pending.Cancel()
			pending = nil
		}
		if n < b.N {
			pending = e.After(1_000, func() {})
			e.After(Cycles(1+uint64(n%13)), step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.At(0, step)
	e.Run(Forever - 1)
}

// BenchmarkCoroHandoff measures one park/resume round trip.
func BenchmarkCoroHandoff(b *testing.B) {
	c := NewCoro("bench", func(c *Coro) {
		for {
			c.Park()
		}
	})
	c.Resume()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Resume()
	}
}

// BenchmarkRNG measures the deterministic generator.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
