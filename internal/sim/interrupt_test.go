package sim

import (
	"sync/atomic"
	"testing"
)

func TestEngineInterruptFlagStopsRun(t *testing.T) {
	e := NewEngine(1)
	var stop atomic.Bool
	e.SetInterrupt(&stop, 0)
	var fired []int
	e.At(10, func() { fired = append(fired, 1); stop.Store(true) })
	e.At(20, func() { fired = append(fired, 2) })
	e.At(30, func() { fired = append(fired, 3) })
	e.Run(100)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired %v after cancel, want just the cancelling event", fired)
	}
	if !e.Interrupted() {
		t.Fatal("Interrupted() false after flag stop")
	}
	if e.Now() == 100 {
		t.Fatal("interrupted run advanced its clock to the horizon")
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d after interrupt, want 2 unfired events", e.Pending())
	}
}

func TestEngineInterruptDeadlineIsCycleBudget(t *testing.T) {
	e := NewEngine(1)
	e.SetInterrupt(nil, 50)
	var fired []Time
	e.At(10, func() { fired = append(fired, 10) })
	e.At(100, func() { fired = append(fired, 100) })
	e.Run(200)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired %v, want only the pre-deadline event", fired)
	}
	if !e.Interrupted() {
		t.Fatal("Interrupted() false after deadline stop")
	}
	if e.Now() > 50 {
		t.Fatalf("clock = %d, advanced past the %d-cycle budget", e.Now(), 50)
	}
}

func TestEngineInterruptPollsInsideSameCycleBatch(t *testing.T) {
	// A pathological cell that never advances its clock must still be
	// cancellable: the in-bucket stride polls the flag mid-batch.
	e := NewEngine(1)
	var stop atomic.Bool
	e.SetInterrupt(&stop, 0)
	const n = 3 * (interruptStride + 1)
	count := 0
	for i := 0; i < n; i++ {
		e.At(10, func() {
			count++
			if count == 1 {
				stop.Store(true)
			}
		})
	}
	e.Run(100)
	if !e.Interrupted() {
		t.Fatal("Interrupted() false after in-batch cancel")
	}
	if count == n {
		t.Fatalf("all %d same-cycle events fired; the stride poll never triggered", n)
	}
}

func TestEngineInterruptUnsetFlagIsIdentity(t *testing.T) {
	// An installed-but-never-set interrupt must not perturb the run: same
	// events, same order, same final clock as a plain engine.
	run := func(install bool) (uint64, Time) {
		e := NewEngine(7)
		if install {
			var stop atomic.Bool
			e.SetInterrupt(&stop, 0)
		}
		var next func(d Cycles)
		next = func(d Cycles) {
			if e.Now() > 5000 {
				return
			}
			e.After(d, func() { next(d + Cycles(e.RNG().Intn(7))) })
		}
		next(3)
		e.Run(10_000)
		return e.Fired(), e.Now()
	}
	f0, t0 := run(false)
	f1, t1 := run(true)
	if f0 != f1 || t0 != t1 {
		t.Fatalf("interrupt-armed run diverged: fired %d/%d, clock %d/%d", f0, f1, t0, t1)
	}
}

func TestEngineInterruptResetBetweenRuns(t *testing.T) {
	e := NewEngine(1)
	var stop atomic.Bool
	e.SetInterrupt(&stop, 0)
	e.At(10, func() { stop.Store(true) })
	e.Run(100)
	if !e.Interrupted() {
		t.Fatal("first run not interrupted")
	}
	// Uninstall and run again: the latch must clear.
	e.SetInterrupt(nil, 0)
	e.At(200, func() {})
	e.Run(300)
	if e.Interrupted() {
		t.Fatal("Interrupted() latched across runs")
	}
	if e.Now() != 300 {
		t.Fatalf("clock = %d, want 300", e.Now())
	}
}

func TestEngineDrainHonoursInterrupt(t *testing.T) {
	e := NewEngine(1)
	var stop atomic.Bool
	e.SetInterrupt(&stop, 0)
	fired := 0
	e.At(10, func() { fired++; stop.Store(true) })
	e.At(20, func() { fired++ })
	e.Drain()
	if fired != 1 {
		t.Fatalf("drain fired %d events after cancel, want 1", fired)
	}
	if !e.Interrupted() {
		t.Fatal("Interrupted() false after cancelled drain")
	}
}
