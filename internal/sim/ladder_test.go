package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestEngineArenaReuseUnderBurst pins the memory behavior that replaced
// the old bounded free list: a scheduling burst grows the arena to the
// burst's peak, and every later burst of the same size reuses those
// slots without growing storage again.
func TestEngineArenaReuseUnderBurst(t *testing.T) {
	e := NewEngine(1)
	const burst = 50_000
	fire := func() {
		for i := 0; i < burst; i++ {
			// Spread across both tiers: half near-horizon, half far-future.
			d := Cycles(i % 100)
			if i%2 == 1 {
				d = Cycles(bandBuckets + i)
			}
			e.After(d, func() {})
		}
		e.Drain()
	}
	fire()
	grown := len(e.ats)
	if grown < burst {
		t.Fatalf("arena holds %d slots after a %d-event burst", grown, burst)
	}
	if len(e.free) != grown {
		t.Fatalf("after drain %d of %d slots are free", len(e.free), grown)
	}
	for round := 0; round < 3; round++ {
		fire()
		if len(e.ats) != grown {
			t.Fatalf("round %d: arena grew from %d to %d slots on an identical burst",
				round, grown, len(e.ats))
		}
	}
	if s := e.Stats(); s.PeakPending > grown {
		t.Fatalf("peak pending %d exceeds arena size %d", s.PeakPending, grown)
	}
}

// TestEngineLadderTierOrdering drives events through both tiers and the
// migration between them, checking global (time, seq) order.
func TestEngineLadderTierOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	// Far-future events first (heap tier), then near ones (band tier),
	// interleaved times so migration has to weave them together.
	for i := 0; i < 200; i++ {
		at := Time(bandBuckets*3 + (i*37)%500)
		e.At(at, func() { got = append(got, e.Now()) })
	}
	for i := 0; i < 200; i++ {
		at := Time((i * 13) % 1000)
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Drain()
	if len(got) != 400 {
		t.Fatalf("fired %d of 400 events", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("event %d fired at %d after an event at %d", i, got[i], got[i-1])
		}
	}
	if s := e.Stats(); s.Migrated == 0 {
		t.Fatalf("expected heap→band migrations, stats: %+v", s)
	}
}

// TestEngineSameCycleBatch checks batched same-cycle dispatch: events
// scheduled at now from inside a callback run in the same drain pass, in
// scheduling order, before time moves.
func TestEngineSameCycleBatch(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(50, func() {
		order = append(order, "a")
		e.At(50, func() { order = append(order, "c") })
		e.After(0, func() { order = append(order, "d") })
	})
	e.At(50, func() { order = append(order, "b") })
	e.At(51, func() { order = append(order, "e") })
	e.Run(100)
	if got := strings.Join(order, ""); got != "abcde" {
		t.Fatalf("fire order %q, want abcde", got)
	}
}

// TestEngineCancelAfterFireIsNoop pins the generation check's contract:
// cancelling a handle whose event already fired (slot freed, not yet
// reused) must neither panic nor disturb the live-event accounting.
func TestEngineCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Run(10)
	if !fired {
		t.Fatal("event did not fire")
	}
	ev.Cancel() // slot already recycled: generation mismatch, no-op
	if !ev.Cancelled() {
		t.Fatal("handle did not record the Cancel")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after post-fire Cancel, want 0", e.Pending())
	}
	if s := e.Stats(); s.Cancelled != 0 {
		t.Fatalf("post-fire Cancel counted: Cancelled = %d", s.Cancelled)
	}
	again := false
	e.At(20, func() { again = true })
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after reschedule, want 1", e.Pending())
	}
	e.Run(30)
	if !again {
		t.Fatal("engine unusable after post-fire Cancel")
	}
}

// TestEngineStatsCounters checks the Stats bookkeeping identity
// Scheduled = Fired + Cancelled + Pending and the tier split.
func TestEngineStatsCounters(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 100; i++ {
		e.After(Cycles(i), func() {})
	}
	var far []*Event
	for i := 0; i < 50; i++ {
		far = append(far, e.After(Cycles(bandBuckets*2+i), func() {}))
	}
	for _, ev := range far[:20] {
		ev.Cancel()
	}
	e.Run(200)
	s := e.Stats()
	if s.Scheduled != 150 {
		t.Fatalf("Scheduled = %d, want 150", s.Scheduled)
	}
	if s.BandScheduled != 100 || s.HeapScheduled != 50 {
		t.Fatalf("tier split %d/%d, want 100/50", s.BandScheduled, s.HeapScheduled)
	}
	if s.Cancelled != 20 {
		t.Fatalf("Cancelled = %d, want 20", s.Cancelled)
	}
	if got := s.Fired + s.Cancelled + uint64(e.Pending()); got != s.Scheduled {
		t.Fatalf("Fired %d + Cancelled %d + Pending %d = %d, want Scheduled %d",
			s.Fired, s.Cancelled, e.Pending(), got, s.Scheduled)
	}
	if s.PeakPending != 150 {
		t.Fatalf("PeakPending = %d, want 150", s.PeakPending)
	}
	if share := s.BandShare(); share <= 0.6 || share >= 0.7 {
		t.Fatalf("BandShare = %v, want 100/150", share)
	}
}

// TestEngineHeapCancelCompaction cancels most of a large far-future
// population and checks the overflow heap compacts it away while the
// survivors still fire in order.
func TestEngineHeapCancelCompaction(t *testing.T) {
	e := NewEngine(1)
	var evs []*Event
	var got []int
	for i := 0; i < 1000; i++ {
		i := i
		evs = append(evs, e.At(Time(bandBuckets+1000+i), func() { got = append(got, i) }))
	}
	for i, ev := range evs {
		if i%10 != 0 {
			ev.Cancel()
		}
	}
	if s := e.Stats(); s.Compactions == 0 {
		t.Fatalf("expected a heap compaction after 900 cancels, stats: %+v", s)
	}
	e.Drain()
	if len(got) != 100 {
		t.Fatalf("fired %d survivors, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("survivors fired out of order: %d after %d", got[i], got[i-1])
		}
	}
}

// TestEngineBandWrap schedules across a band-window wrap boundary so the
// circular bitmap scan has to look past the wrap point.
func TestEngineBandWrap(t *testing.T) {
	e := NewEngine(1)
	// Park the clock most of the way through the first band window.
	e.At(bandBuckets-10, func() {})
	e.Run(bandBuckets - 10)
	var got []Time
	for i := 0; i < 40; i++ {
		e.After(Cycles(i), func() { got = append(got, e.Now()) })
	}
	e.Drain()
	if len(got) != 40 {
		t.Fatalf("fired %d of 40 wrap-spanning events", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("wrap broke ordering: %d after %d", got[i], got[i-1])
		}
	}
}

// TestCoroPanicPropagatesToResume checks that a panic inside a coroutine
// body resurfaces on the engine side, at the Resume that ran the body,
// with the coroutine's name attached.
func TestCoroPanicPropagatesToResume(t *testing.T) {
	c := NewCoro("exploder", func(c *Coro) {
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Resume did not re-panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "exploder") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic %q lacks coroutine name or cause", msg)
		}
		if !c.Done() {
			t.Fatal("panicked coroutine not marked done")
		}
	}()
	c.Resume()
}

// TestCoroPanicAfterParkPropagates is the panic path that used to crash
// the process from the coroutine's goroutine: a body that has parked
// once and panics on a later leg must surface at that later Resume.
func TestCoroPanicAfterParkPropagates(t *testing.T) {
	c := NewCoro("lateboom", func(c *Coro) {
		c.Park()
		panic("late")
	})
	c.Resume() // first leg parks cleanly
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "late") {
			t.Fatalf("second Resume panic = %v, want the body's panic", r)
		}
	}()
	c.Resume()
}

// TestCoroParkResumeHandoffState walks the Parked/Done flags through a
// multi-leg body under the single-channel handoff.
func TestCoroParkResumeHandoffState(t *testing.T) {
	legs := 0
	c := NewCoro("walker", func(c *Coro) {
		for i := 0; i < 3; i++ {
			legs++
			c.Park()
		}
		legs++
	})
	for i := 1; i <= 3; i++ {
		c.Resume()
		if legs != i {
			t.Fatalf("after Resume %d body ran %d legs", i, legs)
		}
		if !c.Parked() || c.Done() {
			t.Fatalf("after Resume %d: parked=%v done=%v", i, c.Parked(), c.Done())
		}
	}
	c.Resume()
	if legs != 4 || !c.Done() || c.Parked() {
		t.Fatalf("final leg: legs=%d done=%v parked=%v", legs, c.Done(), c.Parked())
	}
}

// TestCoroKillOfKilledAndFinished pins Kill's idempotence across every
// terminal state.
func TestCoroKillOfKilledAndFinished(t *testing.T) {
	ran := NewCoro("ran", func(c *Coro) {})
	ran.Resume()
	ran.Kill() // finished: no-op
	if !ran.Done() {
		t.Fatal("finished coroutine lost Done after Kill")
	}
	parked := NewCoro("parked", func(c *Coro) { c.Park() })
	parked.Resume()
	parked.Kill()
	parked.Kill() // killed: no-op
	if !parked.Done() {
		t.Fatal("killed coroutine not done")
	}
}

// BenchmarkEngineSameCycleBatch measures the batched dispatch path: a
// fan-out burst at a single cycle, drained in one pass.
func BenchmarkEngineSameCycleBatch(b *testing.B) {
	e := NewEngine(1)
	const fan = 64
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += fan {
		at := e.Now() + 1
		for i := 0; i < fan; i++ {
			e.At(at, nop)
		}
		e.Run(at)
	}
}
