package sim

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64). The
// simulator must be reproducible run-to-run, so all randomness flows
// through one seeded stream owned by the engine. SplitMix64 is tiny, has
// excellent statistical behaviour for simulation purposes, and — unlike
// math/rand's global functions — cannot be perturbed by unrelated code.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with equal
// seeds yield identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Jitter returns a value uniformly drawn from [base*(1-frac), base*(1+frac)].
// It is used to break pathological phase-locking between periodic sources
// (NIC arrivals, timer ticks) without losing determinism.
func (r *RNG) Jitter(base uint64, frac float64) uint64 {
	if base == 0 || frac <= 0 {
		return base
	}
	span := float64(base) * frac
	v := float64(base) - span + 2*span*r.Float64()
	if v < 1 {
		return 1
	}
	return uint64(v)
}

// Binomial returns the number of successes in n independent trials with
// success probability p. For large n it uses a normal approximation; the
// simulator draws per-work-item event counts (e.g. branch mispredicts)
// from this.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 16 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// Normal approximation with continuity correction; adequate for event
	// accounting where only aggregate counts matter.
	mean := float64(n) * p
	sd := mean * (1 - p)
	if sd < 1e-12 {
		return int(mean + 0.5)
	}
	g := r.normal()
	k := int(mean + g*math.Sqrt(sd) + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// normal returns a standard normal deviate via Box–Muller.
func (r *RNG) normal() float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
