// Package sim provides the discrete-event simulation core used by every
// other substrate in this repository: a virtual clock measured in CPU
// cycles, a time-ordered event queue, deterministic pseudo-randomness, and
// a strict-handoff coroutine facility that lets simulated processes be
// written in natural blocking style while the engine remains
// single-threaded and fully deterministic.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Time is a point in virtual time, measured in CPU clock cycles of the
// simulated machine's base clock (2 GHz in the paper's configuration).
type Time uint64

// Forever is a Time later than any time an experiment can reach.
const Forever Time = math.MaxUint64

// Cycles is a duration in CPU clock cycles.
type Cycles = uint64

// The event queue is a two-tier ladder: a dense near-horizon band of
// one-cycle buckets covering [bandBase, bandBase+bandBuckets), backed by
// a 4-ary min-heap for the far future. Almost every event a simulation
// schedules — DMA completions, IRQ latencies, instruction-block
// retirements, softirq dispatches — lands within a few thousand cycles
// of now, so the common case is an O(1) append to the bucket chain of
// its exact cycle and an O(1) pop when that cycle is reached; only
// long-horizon events (TCP retransmit timers, link-flap windows) pay
// the heap's log cost.
//
// Correctness rests on two invariants:
//
//  1. band ⊆ [bandBase, bandBase+bandBuckets) and heap ⊆
//     [bandBase+bandBuckets, ∞). The window only ever advances (when the
//     band is empty and the heap's minimum becomes the next event), and
//     every advance migrates newly covered heap events into the band, so
//     no (time, seq) ordering ever spans the two tiers.
//  2. within a bucket, chain order is seq order: every event in a
//     one-cycle bucket has the same time, sequence numbers only grow,
//     and both scheduling and migration append in seq order.
//
// Together these make the drain order exactly the (time, seq) order the
// old single-heap engine produced, so runs are byte-identical.
const (
	bandBucketsLog2 = 14
	// bandBuckets is the near-horizon window: one bucket per cycle.
	bandBuckets = 1 << bandBucketsLog2
	bandMask    = bandBuckets - 1
	bandWords   = bandBuckets / 64
)

// heapArity is the fan-out of the overflow heap. A 4-ary heap trades
// slightly more comparisons per sift-down for half the tree depth of a
// binary heap, which wins on schedule/fire churn.
const heapArity = 4

// compactMinDead is the minimum number of cancelled-but-stored events
// before a compaction sweep of a tier is considered.
const compactMinDead = 64

// handleChunkLog2 sizes the chunks of the handle arena. Chunks are never
// reallocated, so *Event pointers stay valid as the arena grows.
const (
	handleChunkLog2 = 10
	handleChunkSize = 1 << handleChunkLog2
)

// Event is the caller's handle on a scheduled callback: a thin
// generation-checked wrapper over an arena slot. Events fire in
// (time, sequence) order so that simultaneous events run in their
// scheduling order, which keeps runs reproducible.
//
// Handles live in a chunked arena recycled slot-for-slot with the event
// storage, so a handle is only meaningful while its event is pending:
// use it to Cancel before the event fires, then drop it. The generation
// check makes Cancel after firing a safe no-op as long as the handle has
// not been reused by a later schedule.
type Event struct {
	at   Time
	eng  *Engine
	idx  int32
	gen  uint32
	dead bool
}

// At reports the virtual time this event was scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op. The event stays in
// its tier until it is reached or a compaction sweeps it out; Pending
// excludes it immediately.
func (e *Event) Cancel() {
	if e.dead {
		return
	}
	e.dead = true
	eng := e.eng
	if eng == nil || eng.gens[e.idx] != e.gen || eng.deads[e.idx] {
		return // already fired, reaped, or cancelled through another handle
	}
	i := e.idx
	eng.deads[i] = true
	eng.live--
	eng.stats.Cancelled++
	// Compact lazily: once cancelled events outnumber live ones in a
	// tier (and there are enough of them to be worth a sweep), rebuild
	// that tier without them so storage tracks the live population.
	if eng.inHeap[i] {
		eng.heapDead++
		if eng.heapDead >= compactMinDead && eng.heapDead*2 > len(eng.heap) {
			eng.compactHeap()
		}
	} else {
		eng.bandDead++
		if eng.bandDead >= compactMinDead && eng.bandDead*2 > eng.bandCount {
			eng.sweepBand()
		}
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.dead }

// Stats are the engine's scheduling counters, for perf attribution.
// Snapshot them with Engine.Stats; all counters are cumulative over the
// engine's lifetime.
type Stats struct {
	// Scheduled and Fired count events entering and executing;
	// Cancelled counts events killed before firing.
	Scheduled uint64 `json:"scheduled"`
	Fired     uint64 `json:"fired"`
	Cancelled uint64 `json:"cancelled"`
	// PeakPending is the high-water mark of live queued events — the
	// arena never shrinks below it, so it is the engine's memory shape.
	PeakPending int `json:"peak_pending"`
	// BandScheduled and HeapScheduled split Scheduled by tier: the
	// near-horizon ladder band (O(1)) versus the far-future overflow
	// heap (O(log n)). Their ratio is the ladder-band occupancy.
	BandScheduled uint64 `json:"band_scheduled"`
	HeapScheduled uint64 `json:"heap_scheduled"`
	// Migrated counts heap events moved into the band as the window
	// advanced; Compactions counts dead-event sweeps of either tier.
	Migrated    uint64 `json:"migrated"`
	Compactions uint64 `json:"compactions"`
}

// BandShare is the fraction of scheduled events that took the O(1)
// ladder-band path (0 when nothing was scheduled).
func (s Stats) BandShare() float64 {
	if s.Scheduled == 0 {
		return 0
	}
	return float64(s.BandScheduled) / float64(s.Scheduled)
}

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use; the whole simulation runs on a single OS goroutine at a time (the
// coroutine facility hands control around but never runs two goroutines
// concurrently). Distinct engines are fully independent, so whole
// simulations may run concurrently (see internal/core's Runner).
type Engine struct {
	now  Time
	seq  uint64
	live int // pending live events across both tiers

	// Struct-of-arrays event arena, indexed by slot. Slots are recycled
	// through free; gens counts reuses so stale handles detect their
	// slot moved on.
	ats    []Time
	seqs   []uint64
	fns    []func()
	nexts  []int32 // bucket chain link, slot+1 (0 = end)
	gens   []uint32
	deads  []bool
	inHeap []bool
	free   []int32
	chunks []*[handleChunkSize]Event // handle arena, 1:1 with slots

	// Near-horizon band: one-cycle buckets as FIFO chains plus a
	// two-level occupancy bitmap. heads/tails store slot+1 (0 = empty).
	bandBase  Time
	bandCount int // events stored in the band, dead included
	bandDead  int
	heads     [bandBuckets]int32
	tails     [bandBuckets]int32
	bitmap    [bandWords]uint64

	// Far-future overflow tier: 4-ary min-heap of slots by (at, seq).
	heap     []int32
	heapDead int

	rng    *RNG
	fired  uint64
	halted bool
	trace  func(t Time, fired uint64)
	stats  Stats

	// Cooperative interrupt: stop is an externally owned flag polled at
	// bucket boundaries (and every interruptStride fired events within a
	// long same-cycle batch); stopAt is a virtual-time budget past which
	// the run aborts instead of advancing. Both are inert by default —
	// stop nil, stopAt Forever — so an uninterrupted run pays one nil
	// check per drained timestamp and is byte-identical to an engine
	// without the feature.
	stop        *atomic.Bool
	stopAt      Time
	interrupted bool
}

// SetTrace installs a hook invoked before every event executes, with the
// event's time and the running fired-event count. Diagnostics only; nil
// disables. The hook must not schedule or cancel events.
func (e *Engine) SetTrace(fn func(t Time, fired uint64)) { e.trace = fn }

// NewEngine returns an engine whose clock starts at zero and whose
// pseudo-random stream is derived from seed. Two engines built with the
// same seed and fed the same schedule produce identical runs.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed), stopAt: Forever}
}

// interruptStride spaces the in-bucket interrupt polls: within one
// same-cycle batch the stop flag is checked every 2^12 fired events, so
// even a pathological cell that never advances its clock stays
// cancellable, at a cost far below one atomic load per event.
const interruptStride = 1<<12 - 1

// SetInterrupt installs a cooperative stop signal. Run (and Drain) polls
// flag at every distinct timestamp and aborts the run when it is set;
// deadline aborts the run before any event later than that virtual time
// fires (Forever, or 0, disables the budget). Either abort latches
// Interrupted. A nil flag with a real deadline is a pure cycle budget;
// nil flag and Forever uninstalls. The flag is read with atomic loads, so
// any goroutine may set it while the simulation runs.
func (e *Engine) SetInterrupt(flag *atomic.Bool, deadline Time) {
	e.stop = flag
	if deadline == 0 {
		deadline = Forever
	}
	e.stopAt = deadline
}

// Interrupted reports whether the last Run (or Drain) was cut short by
// the SetInterrupt flag or deadline rather than finishing naturally.
func (e *Engine) Interrupted() bool { return e.interrupted }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG exposes the engine's deterministic random stream.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of live events currently queued. Cancelled
// events awaiting removal are not counted.
func (e *Engine) Pending() int { return e.live }

// Stats snapshots the engine's scheduling counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Fired = e.fired
	return s
}

// slotLess orders arena slots by (time, sequence) so simultaneous events
// fire in scheduling order.
func (e *Engine) slotLess(a, b int32) bool {
	if e.ats[a] != e.ats[b] {
		return e.ats[a] < e.ats[b]
	}
	return e.seqs[a] < e.seqs[b]
}

// alloc grabs an arena slot, growing the arenas in step when the free
// list is empty. The handle chunk for a new slot is allocated alongside
// it, so handle addresses never move.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		i := e.free[n-1]
		e.free = e.free[:n-1]
		return i
	}
	i := int32(len(e.ats))
	e.ats = append(e.ats, 0)
	e.seqs = append(e.seqs, 0)
	e.fns = append(e.fns, nil)
	e.nexts = append(e.nexts, 0)
	e.gens = append(e.gens, 0)
	e.deads = append(e.deads, false)
	e.inHeap = append(e.inHeap, false)
	if int(i)>>handleChunkLog2 == len(e.chunks) {
		e.chunks = append(e.chunks, new([handleChunkSize]Event))
	}
	return i
}

// freeSlot recycles an arena slot. The callback reference is dropped so
// the closure (and whatever it captures) can be collected, and the
// generation is bumped so stale handles turn inert.
func (e *Engine) freeSlot(i int32) {
	e.fns[i] = nil
	e.gens[i]++
	e.free = append(e.free, i)
}

func (e *Engine) handle(i int32) *Event {
	return &e.chunks[int(i)>>handleChunkLog2][int(i)&(handleChunkSize-1)]
}

// bandPush appends slot i to the bucket chain of its exact cycle.
func (e *Engine) bandPush(i int32, t Time) {
	b := int(t) & bandMask
	e.nexts[i] = 0
	if tail := e.tails[b]; tail != 0 {
		e.nexts[tail-1] = i + 1
	} else {
		e.heads[b] = i + 1
		e.bitmap[b>>6] |= 1 << uint(b&63)
	}
	e.tails[b] = i + 1
	e.inHeap[i] = false
	e.bandCount++
}

func (e *Engine) heapPush(i int32) {
	e.inHeap[i] = true
	h := append(e.heap, i)
	j := len(h) - 1
	for j > 0 {
		p := (j - 1) / heapArity
		if !e.slotLess(i, h[p]) {
			break
		}
		h[j] = h[p]
		j = p
	}
	h[j] = i
	e.heap = h
}

// heapPop removes and returns the heap minimum.
func (e *Engine) heapPop() int32 {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n > 0 {
		e.heapSiftDown(0, last)
	}
	e.inHeap[top] = false
	return top
}

// heapSiftDown places slot x into the heap starting at index j.
func (e *Engine) heapSiftDown(j int, x int32) {
	h := e.heap
	n := len(h)
	for {
		first := heapArity*j + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.slotLess(h[c], h[min]) {
				min = c
			}
		}
		if !e.slotLess(h[min], x) {
			break
		}
		h[j] = h[min]
		j = min
	}
	h[j] = x
}

// compactHeap rebuilds the overflow heap without cancelled events,
// recycling their slots.
func (e *Engine) compactHeap() {
	h := e.heap[:0]
	for _, i := range e.heap {
		if e.deads[i] {
			e.inHeap[i] = false
			e.freeSlot(i)
			continue
		}
		h = append(h, i)
	}
	e.heap = h
	if n := len(h); n > 1 {
		for j := (n - 2) / heapArity; j >= 0; j-- {
			e.heapSiftDown(j, h[j])
		}
	}
	e.heapDead = 0
	e.stats.Compactions++
}

// sweepBand filters cancelled events out of every bucket chain,
// preserving chain order, and recycles their slots.
func (e *Engine) sweepBand() {
	for w := range e.bitmap {
		bw := e.bitmap[w]
		for bw != 0 {
			b := w<<6 + bits.TrailingZeros64(bw)
			bw &= bw - 1
			var head, tail int32
			for p := e.heads[b]; p != 0; {
				i := p - 1
				p = e.nexts[i]
				if e.deads[i] {
					e.bandCount--
					e.freeSlot(i)
					continue
				}
				e.nexts[i] = 0
				if tail != 0 {
					e.nexts[tail-1] = i + 1
				} else {
					head = i + 1
				}
				tail = i + 1
			}
			e.heads[b], e.tails[b] = head, tail
			if head == 0 {
				e.bitmap[w] &^= 1 << uint(b&63)
			}
		}
	}
	e.bandDead = 0
	e.stats.Compactions++
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is a programming error and panics: it would silently reorder the
// causality of the simulation.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	i := e.alloc()
	e.ats[i] = t
	e.seqs[i] = e.seq
	e.fns[i] = fn
	e.deads[i] = false
	e.seq++
	e.live++
	e.stats.Scheduled++
	if e.live > e.stats.PeakPending {
		e.stats.PeakPending = e.live
	}
	// t >= now >= bandBase, so the unsigned difference is exact.
	if t-e.bandBase < bandBuckets {
		e.bandPush(i, t)
		e.stats.BandScheduled++
	} else {
		e.heapPush(i)
		e.stats.HeapScheduled++
	}
	h := e.handle(i)
	h.at = t
	h.eng = e
	h.idx = i
	h.gen = e.gens[i]
	h.dead = false
	return h
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycles, fn func()) *Event {
	return e.At(e.now+Time(d), fn)
}

// Halt stops Run before the next event would fire. It is the cooperative
// way for an experiment to end a run at a condition rather than a time.
func (e *Engine) Halt() { e.halted = true }

// scanBand returns the earliest occupied bucket's time. Every set bit
// maps to a unique time in [now, now+bandBuckets) — times below now have
// all fired — so a circular bitmap scan starting at now's bucket finds
// the band minimum.
func (e *Engine) scanBand() (Time, bool) {
	s := int(e.now) & bandMask
	sw := s >> 6
	if w := e.bitmap[sw] &^ (1<<uint(s&63) - 1); w != 0 {
		b := sw<<6 + bits.TrailingZeros64(w)
		return e.now + Time((b-s)&bandMask), true
	}
	for k := 1; k < bandWords; k++ {
		idx := (sw + k) & (bandWords - 1)
		if w := e.bitmap[idx]; w != 0 {
			b := idx<<6 + bits.TrailingZeros64(w)
			return e.now + Time((b-s)&bandMask), true
		}
	}
	if w := e.bitmap[sw] & (1<<uint(s&63) - 1); w != 0 {
		b := sw<<6 + bits.TrailingZeros64(w)
		return e.now + Time((b-s)&bandMask), true
	}
	return 0, false
}

// advance slides the window to start at t0 (the heap minimum, with the
// band empty) and migrates every heap event the window now covers into
// its bucket. Heap pops come out in (at, seq) order, so per-bucket
// chains stay seq-ordered; events scheduled afterwards always carry
// larger sequence numbers, so later appends keep the invariant.
func (e *Engine) advance(t0 Time) {
	e.bandBase = t0
	for len(e.heap) > 0 {
		i := e.heap[0]
		// ats[i] >= t0 (t0 is the heap minimum), so the unsigned
		// difference is exact even when t0+bandBuckets would overflow.
		if e.ats[i]-t0 >= bandBuckets {
			break
		}
		e.heapPop()
		if e.deads[i] {
			e.heapDead--
			e.freeSlot(i)
			continue
		}
		e.bandPush(i, e.ats[i])
		e.stats.Migrated++
	}
}

// next reports the time of the earliest pending event, advancing the
// window when the band has drained and the heap holds the future.
func (e *Engine) next() (Time, bool) {
	if e.bandCount > 0 {
		if t, ok := e.scanBand(); ok {
			return t, true
		}
	}
	for len(e.heap) > 0 {
		i := e.heap[0]
		if e.deads[i] {
			e.heapPop()
			e.heapDead--
			e.freeSlot(i)
			continue
		}
		t0 := e.ats[i]
		e.advance(t0)
		return t0, true
	}
	return 0, false
}

// drainBucket executes every event in now's bucket in one batched pass:
// same-cycle events — including ones scheduled by the events themselves —
// fire back to back without re-probing the queue, in exact seq order.
func (e *Engine) drainBucket(b int) {
	for {
		p := e.heads[b]
		if p == 0 {
			return
		}
		i := p - 1
		n := e.nexts[i]
		e.heads[b] = n
		if n == 0 {
			e.tails[b] = 0
			e.bitmap[b>>6] &^= 1 << uint(b&63)
		}
		e.bandCount--
		if e.deads[i] {
			e.bandDead--
			e.freeSlot(i)
			continue
		}
		fn := e.fns[i]
		e.freeSlot(i)
		e.live--
		e.fired++
		if e.trace != nil {
			e.trace(e.now, e.fired)
		}
		fn()
		if e.halted {
			return
		}
		if e.stop != nil && e.fired&interruptStride == 0 && e.stop.Load() {
			e.interrupted = true
			return
		}
	}
}

// Run executes events in time order until the queue empties, the clock
// passes until, or Halt is called. It returns the virtual time at which it
// stopped: the horizon when the run exhausted its events (so utilization
// math sees the full interval even if the system went idle), or the time
// of the last fired event when Halt ended the run early.
func (e *Engine) Run(until Time) Time {
	e.halted = false
	e.interrupted = false
	for !e.halted {
		if e.stop != nil && e.stop.Load() {
			e.interrupted = true
			break
		}
		t, ok := e.next()
		if !ok || t > until {
			break
		}
		if t > e.stopAt {
			e.interrupted = true
			break
		}
		e.now = t
		e.drainBucket(int(t) & bandMask)
		if e.interrupted {
			break
		}
	}
	// Single horizon clamp: unless Halt or an interrupt stopped the run,
	// the whole interval up to `until` has been simulated (every
	// remaining event is later), so the clock advances to the horizon.
	if !e.halted && !e.interrupted && e.now < until {
		e.now = until
	}
	return e.now
}

// Drain runs every remaining event regardless of time. It is intended for
// test teardown, not for experiments. Like Run, it honours Halt and
// reports each fired event to the SetTrace hook, so a consumer observing
// the run sees teardown events too.
func (e *Engine) Drain() {
	e.halted = false
	e.interrupted = false
	for !e.halted {
		if e.stop != nil && e.stop.Load() {
			// A cancelled run wants a fast unwind, teardown included;
			// undrained events are plain garbage for the collector.
			e.interrupted = true
			return
		}
		t, ok := e.next()
		if !ok {
			return
		}
		e.now = t
		e.drainBucket(int(t) & bandMask)
		if e.interrupted {
			return
		}
	}
}
