// Package sim provides the discrete-event simulation core used by every
// other substrate in this repository: a virtual clock measured in CPU
// cycles, a time-ordered event queue, deterministic pseudo-randomness, and
// a strict-handoff coroutine facility that lets simulated processes be
// written in natural blocking style while the engine remains
// single-threaded and fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in CPU clock cycles of the
// simulated machine's base clock (2 GHz in the paper's configuration).
type Time uint64

// Forever is a Time later than any time an experiment can reach.
const Forever Time = math.MaxUint64

// Cycles is a duration in CPU clock cycles.
type Cycles = uint64

// Event is a scheduled callback. Events fire in (time, sequence) order so
// that simultaneous events run in their scheduling order, which keeps runs
// reproducible.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index, -1 when not queued
	dead bool
}

// At reports the virtual time this event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.dead }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use; the whole simulation runs on a single OS goroutine at a time (the
// coroutine facility hands control around but never runs two goroutines
// concurrently).
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	rng    *RNG
	fired  uint64
	halted bool
	trace  func(t Time, fired uint64)
}

// SetTrace installs a hook invoked before every event executes, with the
// event's time and the running fired-event count. Diagnostics only; nil
// disables. The hook must not schedule or cancel events.
func (e *Engine) SetTrace(fn func(t Time, fired uint64)) { e.trace = fn }

// NewEngine returns an engine whose clock starts at zero and whose
// pseudo-random stream is derived from seed. Two engines built with the
// same seed and fed the same schedule produce identical runs.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG exposes the engine's deterministic random stream.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events currently queued (including
// cancelled events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is a programming error and panics: it would silently reorder the
// causality of the simulation.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, idx: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycles, fn func()) *Event {
	return e.At(e.now+Time(d), fn)
}

// Halt stops Run before the next event would fire. It is the cooperative
// way for an experiment to end a run at a condition rather than a time.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in time order until the queue empties, the clock
// passes until, or Halt is called. It returns the virtual time at which it
// stopped.
func (e *Engine) Run(until Time) Time {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		if e.trace != nil {
			e.trace(e.now, e.fired)
		}
		ev.fn()
	}
	if e.now < until && len(e.queue) == 0 {
		// Advance to the requested horizon so utilization math sees the
		// full interval even if the system went fully idle.
		e.now = until
	}
	if e.now < until && e.halted {
		// Leave the clock where Halt stopped it.
		return e.now
	}
	if e.now > until {
		return e.now
	}
	if len(e.queue) > 0 && e.queue[0].at > until {
		e.now = until
	}
	return e.now
}

// Drain runs every remaining event regardless of time. It is intended for
// test teardown, not for experiments.
func (e *Engine) Drain() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
	}
}
