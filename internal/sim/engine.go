// Package sim provides the discrete-event simulation core used by every
// other substrate in this repository: a virtual clock measured in CPU
// cycles, a time-ordered event queue, deterministic pseudo-randomness, and
// a strict-handoff coroutine facility that lets simulated processes be
// written in natural blocking style while the engine remains
// single-threaded and fully deterministic.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in CPU clock cycles of the
// simulated machine's base clock (2 GHz in the paper's configuration).
type Time uint64

// Forever is a Time later than any time an experiment can reach.
const Forever Time = math.MaxUint64

// Cycles is a duration in CPU clock cycles.
type Cycles = uint64

// Event is a scheduled callback. Events fire in (time, sequence) order so
// that simultaneous events run in their scheduling order, which keeps runs
// reproducible.
//
// Fired events are recycled through the engine's free list, so an *Event
// handle is only meaningful while the event is pending: use it to Cancel
// before the event fires, then drop it. (Cancelling an already-fired or
// already-cancelled event remains a no-op as long as the handle has not
// been reused by a later schedule.)
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	eng  *Engine
	idx  int // heap index, -1 when not queued
	dead bool
}

// At reports the virtual time this event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op. The event stays in
// the queue until it is popped or a compaction sweeps it out; Pending
// excludes it immediately.
func (e *Event) Cancel() {
	if e.dead {
		return
	}
	e.dead = true
	if e.idx >= 0 && e.eng != nil {
		eng := e.eng
		eng.deadPending++
		// Compact lazily: once cancelled events outnumber live ones (and
		// there are enough of them to be worth a sweep), rebuild the heap
		// without them so pop cost tracks the live population.
		if eng.deadPending >= compactMinDead && eng.deadPending*2 > len(eng.heap) {
			eng.compact()
		}
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.dead }

// heapArity is the fan-out of the event heap. A 4-ary heap trades slightly
// more comparisons per sift-down for half the tree depth of a binary heap,
// which wins on the schedule/fire churn that dominates simulation time.
const heapArity = 4

// compactMinDead is the minimum number of cancelled-but-queued events
// before a compaction sweep is considered.
const compactMinDead = 64

// maxFree bounds the event free list so a transient scheduling burst does
// not pin memory forever.
const maxFree = 4096

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use; the whole simulation runs on a single OS goroutine at a time (the
// coroutine facility hands control around but never runs two goroutines
// concurrently). Distinct engines are fully independent, so whole
// simulations may run concurrently (see internal/core's Runner).
type Engine struct {
	now         Time
	seq         uint64
	heap        []*Event // heapArity-ary min-heap ordered by (at, seq)
	free        []*Event // recycled events awaiting reuse
	deadPending int      // cancelled events still sitting in heap
	rng         *RNG
	fired       uint64
	halted      bool
	trace       func(t Time, fired uint64)
}

// SetTrace installs a hook invoked before every event executes, with the
// event's time and the running fired-event count. Diagnostics only; nil
// disables. The hook must not schedule or cancel events.
func (e *Engine) SetTrace(fn func(t Time, fired uint64)) { e.trace = fn }

// NewEngine returns an engine whose clock starts at zero and whose
// pseudo-random stream is derived from seed. Two engines built with the
// same seed and fed the same schedule produce identical runs.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG exposes the engine's deterministic random stream.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of live events currently queued. Cancelled
// events awaiting removal are not counted.
func (e *Engine) Pending() int { return len(e.heap) - e.deadPending }

// less orders events by (time, sequence) so simultaneous events fire in
// scheduling order.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !eventLess(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.heap[i].idx = i
		i = p
	}
	e.heap[i] = ev
	ev.idx = i
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ev := e.heap[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(e.heap[c], e.heap[min]) {
				min = c
			}
		}
		if !eventLess(e.heap[min], ev) {
			break
		}
		e.heap[i] = e.heap[min]
		e.heap[i].idx = i
		i = min
	}
	e.heap[i] = ev
	ev.idx = i
}

func (e *Engine) push(ev *Event) {
	ev.idx = len(e.heap)
	e.heap = append(e.heap, ev)
	e.siftUp(ev.idx)
}

func (e *Engine) popMin() *Event {
	ev := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		last.idx = 0
		e.siftDown(0)
	}
	ev.idx = -1
	return ev
}

// compact rebuilds the heap without cancelled events, recycling them.
func (e *Engine) compact() {
	live := e.heap[:0]
	for _, ev := range e.heap {
		if ev.dead {
			ev.idx = -1
			e.recycle(ev)
			continue
		}
		ev.idx = len(live)
		live = append(live, ev)
	}
	for i := len(live); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = live
	if n := len(e.heap); n > 1 {
		for i := (n - 2) / heapArity; i >= 0; i-- {
			e.siftDown(i)
		}
	}
	e.deadPending = 0
}

func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle returns a popped event to the free list. The callback reference
// is dropped so the closure (and whatever it captures) can be collected.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	if len(e.free) < maxFree {
		e.free = append(e.free, ev)
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is a programming error and panics: it would silently reorder the
// causality of the simulation.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.eng = e
	ev.idx = -1
	ev.dead = false
	e.seq++
	e.push(ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycles, fn func()) *Event {
	return e.At(e.now+Time(d), fn)
}

// Halt stops Run before the next event would fire. It is the cooperative
// way for an experiment to end a run at a condition rather than a time.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in time order until the queue empties, the clock
// passes until, or Halt is called. It returns the virtual time at which it
// stopped: the horizon when the run exhausted its events (so utilization
// math sees the full interval even if the system went idle), or the time
// of the last fired event when Halt ended the run early.
func (e *Engine) Run(until Time) Time {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		ev := e.heap[0]
		if ev.at > until {
			break
		}
		e.popMin()
		if ev.dead {
			e.deadPending--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		if e.trace != nil {
			e.trace(e.now, e.fired)
		}
		ev.fn()
		e.recycle(ev)
	}
	// Single horizon clamp: unless Halt stopped the run, the whole
	// interval up to `until` has been simulated (every remaining event is
	// later), so the clock advances to the horizon.
	if !e.halted && e.now < until {
		e.now = until
	}
	return e.now
}

// Drain runs every remaining event regardless of time. It is intended for
// test teardown, not for experiments. Like Run, it honours Halt and
// reports each fired event to the SetTrace hook, so a consumer observing
// the run sees teardown events too.
func (e *Engine) Drain() {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		ev := e.popMin()
		if ev.dead {
			e.deadPending--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		if e.trace != nil {
			e.trace(e.now, e.fired)
		}
		ev.fn()
		e.recycle(ev)
	}
}
