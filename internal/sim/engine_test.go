package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100 (advance to horizon)", e.Now())
	}
}

func TestEngineSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run(50)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(40, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run(100)
	if at != 45 {
		t.Fatalf("After fired at %d, want 45", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestEngineHaltStopsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(10, func() { count++; e.Halt() })
	e.At(20, func() { count++ })
	stopped := e.Run(100)
	if count != 1 {
		t.Fatalf("count = %d, want 1 (halt should stop run)", count)
	}
	if stopped != 10 {
		t.Fatalf("Run returned %d, want 10", stopped)
	}
	// Remaining event still queued; a later Run picks it up.
	e.Run(100)
	if count != 2 {
		t.Fatalf("count = %d after second run, want 2", count)
	}
}

func TestEngineRunStopsAtHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(200, func() { fired = true })
	e.Run(100)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
	e.Run(300)
	if !fired {
		t.Fatal("event not fired by later run")
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine(1)
	e.At(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(10, func() {})
	})
	e.Run(100)
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		e := NewEngine(seed)
		var draws []uint64
		var step func()
		step = func() {
			draws = append(draws, e.RNG().Uint64())
			if len(draws) < 50 {
				e.After(Cycles(1+e.RNG().Intn(100)), step)
			}
		}
		e.At(0, step)
		e.Run(Forever - 1)
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at draw %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		r := NewRNG(seed)
		v := r.Intn(nn)
		return v >= 0 && v < nn
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBinomialBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16, pRaw uint16) bool {
		r := NewRNG(seed)
		nn := int(n % 2000)
		p := float64(pRaw) / 65535
		k := r.Binomial(nn, p)
		return k >= 0 && k <= nn
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBinomialMean(t *testing.T) {
	r := NewRNG(11)
	const n, p, trials = 1000, 0.3, 2000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / trials
	if mean < 290 || mean > 310 {
		t.Fatalf("binomial mean %.1f far from expected 300", mean)
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(1000, 0.25)
		if v < 750 || v > 1250 {
			t.Fatalf("jitter %d outside [750,1250]", v)
		}
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Fatal("jitter of 0 should be 0")
	}
	if r.Jitter(500, 0) != 500 {
		t.Fatal("jitter with frac 0 should be identity")
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestCoroBasicHandoff(t *testing.T) {
	var trace []string
	c := NewCoro("worker", func(c *Coro) {
		trace = append(trace, "a")
		c.Park()
		trace = append(trace, "b")
		c.Park()
		trace = append(trace, "c")
	})
	trace = append(trace, "0")
	c.Resume()
	trace = append(trace, "1")
	c.Resume()
	trace = append(trace, "2")
	c.Resume()
	if c.Done() != true {
		t.Fatal("coroutine not done after body returned")
	}
	want := "0a1b2c"
	got := ""
	for _, s := range trace {
		got += s
	}
	if got != want {
		t.Fatalf("handoff order %q, want %q", got, want)
	}
}

func TestCoroKillRunsDefers(t *testing.T) {
	cleaned := false
	c := NewCoro("victim", func(c *Coro) {
		defer func() { cleaned = true }()
		c.Park()
		t.Error("body continued past kill")
	})
	c.Resume()
	c.Kill()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Kill")
	}
	if !c.Done() {
		t.Fatal("killed coroutine not done")
	}
}

func TestCoroKillUnstarted(t *testing.T) {
	c := NewCoro("never", func(c *Coro) { t.Error("body ran") })
	c.Kill()
	if !c.Done() {
		t.Fatal("unstarted coroutine not done after Kill")
	}
}

func TestCoroResumeAfterDonePanics(t *testing.T) {
	c := NewCoro("oneshot", func(c *Coro) {})
	c.Resume()
	defer func() {
		if recover() == nil {
			t.Error("resume of finished coroutine did not panic")
		}
	}()
	c.Resume()
}

func TestCoroWithEngineInterleaving(t *testing.T) {
	// Two simulated "processes" ping-pong via engine events; the
	// interleaving must be exactly alternating.
	e := NewEngine(1)
	var log []string
	mk := func(name string, period Cycles) *Coro {
		var c *Coro
		c = NewCoro(name, func(c *Coro) {
			for i := 0; i < 3; i++ {
				log = append(log, name)
				e.After(period, func() { c.Resume() })
				c.Park()
			}
		})
		return c
	}
	a := mk("a", 10)
	b := mk("b", 10)
	e.At(0, func() { a.Resume() })
	e.At(5, func() { b.Resume() })
	e.Run(1000)
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log %v, want %v", log, want)
		}
	}
}

func TestEngineTraceHook(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.SetTrace(func(at Time, fired uint64) { trace = append(trace, at) })
	e.At(5, func() {})
	e.At(9, func() {})
	e.Run(100)
	if len(trace) != 2 || trace[0] != 5 || trace[1] != 9 {
		t.Fatalf("trace = %v", trace)
	}
	e.SetTrace(nil)
	e.At(200, func() {})
	e.Run(300)
	if len(trace) != 2 {
		t.Fatal("disabled trace still recorded")
	}
}

func TestEnginePendingExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.At(Time(10+i), func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for i := 0; i < 4; i++ {
		evs[i].Cancel()
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d after 4 cancels, want 6 (cancelled events must not count)", e.Pending())
	}
	evs[0].Cancel() // double cancel must not double count
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d after double cancel, want 6", e.Pending())
	}
	e.Run(100)
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", e.Pending())
	}
	if e.Fired() != 6 {
		t.Fatalf("Fired = %d, want 6", e.Fired())
	}
}

func TestEngineCompactionPreservesOrderAndSkipsDead(t *testing.T) {
	// Schedule far more events than the compaction threshold, cancel most
	// of them to force a sweep, and check the survivors still fire in
	// exact (time, sequence) order.
	e := NewEngine(1)
	const n = 1000
	var fired []int
	var cancelled []*Event
	for i := 0; i < n; i++ {
		i := i
		ev := e.At(Time(10*i), func() { fired = append(fired, i) })
		if i%5 != 0 {
			cancelled = append(cancelled, ev)
		}
	}
	for _, ev := range cancelled {
		ev.Cancel()
	}
	if want := n - len(cancelled); e.Pending() != want {
		t.Fatalf("Pending = %d, want %d", e.Pending(), want)
	}
	e.Run(Forever - 1)
	if len(fired) != n-len(cancelled) {
		t.Fatalf("fired %d events, want %d", len(fired), n-len(cancelled))
	}
	for j := 1; j < len(fired); j++ {
		if fired[j] <= fired[j-1] {
			t.Fatalf("events fired out of order after compaction: %d after %d", fired[j], fired[j-1])
		}
	}
}

func TestEngineCompactionWithNoSurvivors(t *testing.T) {
	// Cancelling every queued event must compact down to an empty heap
	// without touching it (regression: heapify over len 0 and 1).
	e := NewEngine(1)
	for _, keep := range []int{0, 1} {
		var evs []*Event
		for i := 0; i < 500; i++ {
			evs = append(evs, e.At(e.Now()+Time(10+i), func() {}))
		}
		for _, ev := range evs[keep:] {
			ev.Cancel()
		}
		if e.Pending() != keep {
			t.Fatalf("Pending = %d, want %d", e.Pending(), keep)
		}
		before := e.Fired()
		e.Run(e.Now() + 1000)
		if got := e.Fired() - before; got != uint64(keep) {
			t.Fatalf("fired %d events, want %d", got, keep)
		}
	}
}

func TestEngineCancelDuringRun(t *testing.T) {
	// An event callback cancelling a later pending event must suppress it.
	e := NewEngine(1)
	var victim *Event
	fired := false
	victim = e.At(20, func() { fired = true })
	e.At(10, func() { victim.Cancel() })
	e.Run(100)
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineEventRecyclingKeepsDeterminism(t *testing.T) {
	// Heavy schedule/fire churn cycles events through the free list; the
	// (time, seq) order must stay exact.
	e := NewEngine(1)
	var last Time
	count := 0
	var step func()
	step = func() {
		if e.Now() < last {
			t.Fatalf("time went backwards: %d after %d", e.Now(), last)
		}
		last = e.Now()
		count++
		if count < 10_000 {
			e.After(Cycles(1+e.RNG().Intn(7)), step)
		}
	}
	e.At(0, step)
	e.Run(Forever - 1)
	if count != 10_000 {
		t.Fatalf("ran %d events, want 10000", count)
	}
}

func TestEngineHaltLeavesClockAtStopPoint(t *testing.T) {
	// Halt leaves the clock at the last fired event even when the queue
	// drains, rather than jumping to the horizon.
	e := NewEngine(1)
	e.At(10, func() { e.Halt() })
	if got := e.Run(100); got != 10 {
		t.Fatalf("halted Run returned %d, want 10", got)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %d after halt, want 10", e.Now())
	}
	// A later Run with nothing scheduled advances to its horizon.
	if got := e.Run(200); got != 200 {
		t.Fatalf("Run after halt returned %d, want 200", got)
	}
}

func TestEngineRunWithHorizonInPast(t *testing.T) {
	e := NewEngine(1)
	e.At(50, func() {})
	e.Run(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
	// A horizon behind the clock fires nothing and leaves the clock alone.
	fired := false
	e.At(300, func() { fired = true })
	if got := e.Run(90); got != 100 {
		t.Fatalf("Run(90) returned %d, want 100", got)
	}
	if fired {
		t.Fatal("event beyond a past horizon fired")
	}
}

func TestEngineDrainRunsEverything(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.At(10, func() { n++ })
	e.At(5_000_000_000, func() { n++ })
	ev := e.At(100, func() { n++ })
	ev.Cancel()
	e.Drain()
	if n != 2 {
		t.Fatalf("drain ran %d events, want 2 (cancelled skipped)", n)
	}
	if e.Pending() != 0 {
		t.Fatal("queue not empty after drain")
	}
}

// TestEngineTraceOrdering pins the SetTrace contract: the hook observes
// strictly monotone (time, fired) pairs, fired counts exactly the events
// that executed, and cancelled events never reach the hook.
func TestEngineTraceOrdering(t *testing.T) {
	e := NewEngine(1)
	type obs struct {
		at    Time
		fired uint64
	}
	var seen []obs
	e.SetTrace(func(at Time, fired uint64) { seen = append(seen, obs{at, fired}) })

	var cancelled *Event
	executed := 0
	for i := 0; i < 20; i++ {
		at := Time(10 * (i + 1))
		ev := e.At(at, func() { executed++ })
		if i == 7 {
			cancelled = ev
		}
		if i == 13 {
			ev.Cancel()
		}
	}
	cancelled.Cancel()
	// Same-time events must still trace in schedule order.
	e.At(50, func() { executed++ })
	e.Run(10_000)

	if executed != 19 {
		t.Fatalf("executed %d events, want 19", executed)
	}
	if len(seen) != executed {
		t.Fatalf("hook called %d times for %d executed events", len(seen), executed)
	}
	for i, o := range seen {
		if o.fired != uint64(i+1) {
			t.Fatalf("hook %d saw fired=%d, want %d", i, o.fired, i+1)
		}
		if i > 0 && o.at < seen[i-1].at {
			t.Fatalf("hook times regress: %d after %d", o.at, seen[i-1].at)
		}
		if o.at == 80 || o.at == 140 {
			t.Fatalf("hook called for cancelled event at t=%d", o.at)
		}
	}
	if e.Fired() != uint64(executed) {
		t.Fatalf("Fired = %d, want %d", e.Fired(), executed)
	}
}

// TestEngineDrainTracesAndHalts pins the Drain fixes: the trace hook sees
// drained events exactly as Run's, and Halt stops a drain mid-way.
func TestEngineDrainTracesAndHalts(t *testing.T) {
	e := NewEngine(1)
	var traced []Time
	e.SetTrace(func(at Time, fired uint64) { traced = append(traced, at) })
	e.At(10, func() {})
	e.At(20, func() {})
	e.Drain()
	if len(traced) != 2 || traced[0] != 10 || traced[1] != 20 {
		t.Fatalf("drain bypassed the trace hook: %v", traced)
	}

	n := 0
	e.At(30, func() { n++; e.Halt() })
	e.At(40, func() { n++ })
	e.Drain()
	if n != 1 {
		t.Fatalf("drain ran %d events after Halt, want 1", n)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after halted drain, want 1", e.Pending())
	}
	// A fresh Drain resets the halt flag, like Run.
	e.Drain()
	if n != 2 || e.Pending() != 0 {
		t.Fatalf("second drain did not resume: n=%d pending=%d", n, e.Pending())
	}
}
