package sim

import "fmt"

// Coro is a strict-handoff coroutine: a goroutine that runs only while the
// engine has explicitly resumed it, and that must park (or finish) to hand
// control back. At any instant at most one coroutine (or the engine) is
// executing, so the simulation stays deterministic even though simulated
// processes are written in natural blocking style.
//
// Lifecycle:
//
//	c := NewCoro(name, func(c *Coro) { ...; c.Park(); ... })
//	c.Resume()   // runs the body until its first Park or until it returns
//	c.Resume()   // runs from after Park to the next Park / return
//	c.Kill()     // unwinds a parked coroutine (its deferred calls run)
//
// The body must only Park from its own goroutine, and Resume must only be
// called from outside it (engine/event context).
//
// Control transfers ride a single unbuffered rendezvous channel. The
// handoff protocol is strictly alternating — the engine side sends
// sigResume/sigKill and then receives, the coroutine side receives and
// then sends sigYield — so exactly one party ever touches the channel
// from each side and one channel operation per direction is the whole
// switch cost.
type Coro struct {
	name     string
	hand     chan coroSignal
	started  bool
	done     bool
	parked   bool
	body     func(*Coro)
	panicMsg string
}

type coroSignal int

const (
	sigResume coroSignal = iota
	sigKill
	sigYield
)

// coroKilled is the panic value used to unwind a killed coroutine.
type coroKilled struct{ name string }

// NewCoro creates a coroutine around body. The body does not start running
// until the first Resume.
func NewCoro(name string, body func(*Coro)) *Coro {
	return &Coro{
		name: name,
		hand: make(chan coroSignal),
		body: body,
	}
}

// Name returns the diagnostic name given at creation.
func (c *Coro) Name() string { return c.name }

// Done reports whether the body has returned (or been killed).
func (c *Coro) Done() bool { return c.done }

// Parked reports whether the coroutine is waiting in Park.
func (c *Coro) Parked() bool { return c.parked }

// Resume transfers control into the coroutine and blocks until it parks or
// finishes. Resuming a finished coroutine panics: it indicates a scheduler
// bookkeeping bug. If the body panicked, the panic resurfaces here — on
// the caller's goroutine, at the deterministic point in the simulation
// where the coroutine was last given control.
func (c *Coro) Resume() {
	if c.done {
		panic(fmt.Sprintf("sim: resume of finished coroutine %q", c.name))
	}
	if !c.started {
		c.started = true
		go c.run()
	} else {
		c.hand <- sigResume
	}
	<-c.hand
	c.repanic()
}

// Park yields control back to whoever resumed the coroutine and blocks the
// body until the next Resume. It must be called from the coroutine's own
// goroutine.
func (c *Coro) Park() {
	c.parked = true
	c.hand <- sigYield
	sig := <-c.hand
	c.parked = false
	if sig == sigKill {
		panic(coroKilled{c.name})
	}
}

// Kill unwinds a parked coroutine: its body panics with an internal
// sentinel (running deferred cleanup) and the coroutine is marked done.
// Killing an unstarted or finished coroutine is a no-op. A panic raised
// by the body's deferred cleanup resurfaces here.
func (c *Coro) Kill() {
	if c.done || !c.started {
		c.done = true
		return
	}
	if !c.parked {
		panic(fmt.Sprintf("sim: kill of running coroutine %q", c.name))
	}
	c.hand <- sigKill
	<-c.hand
	c.repanic()
}

// repanic relays a panic captured on the coroutine goroutine onto the
// engine side, once.
func (c *Coro) repanic() {
	if c.panicMsg != "" {
		msg := c.panicMsg
		c.panicMsg = ""
		panic(msg)
	}
}

func (c *Coro) run() {
	defer func() {
		c.done = true
		if r := recover(); r != nil {
			if _, ok := r.(coroKilled); !ok {
				// Real bug in simulated code: record it and let the
				// engine side re-panic with context, so the failure
				// surfaces synchronously at the Resume that ran it.
				c.panicMsg = fmt.Sprintf("sim: coroutine %q panicked: %v", c.name, r)
			}
		}
		c.hand <- sigYield
	}()
	c.body(c)
}
