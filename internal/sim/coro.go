package sim

import "fmt"

// Coro is a strict-handoff coroutine: a goroutine that runs only while the
// engine has explicitly resumed it, and that must park (or finish) to hand
// control back. At any instant at most one coroutine (or the engine) is
// executing, so the simulation stays deterministic even though simulated
// processes are written in natural blocking style.
//
// Lifecycle:
//
//	c := NewCoro(name, func(c *Coro) { ...; c.Park(); ... })
//	c.Resume()   // runs the body until its first Park or until it returns
//	c.Resume()   // runs from after Park to the next Park / return
//	c.Kill()     // unwinds a parked coroutine (its deferred calls run)
//
// The body must only Park from its own goroutine, and Resume must only be
// called from outside it (engine/event context).
type Coro struct {
	name     string
	resumeCh chan coroSignal
	yieldCh  chan struct{}
	started  bool
	done     bool
	parked   bool
	body     func(*Coro)
}

type coroSignal int

const (
	sigResume coroSignal = iota
	sigKill
)

// coroKilled is the panic value used to unwind a killed coroutine.
type coroKilled struct{ name string }

// NewCoro creates a coroutine around body. The body does not start running
// until the first Resume.
func NewCoro(name string, body func(*Coro)) *Coro {
	return &Coro{
		name:     name,
		resumeCh: make(chan coroSignal),
		yieldCh:  make(chan struct{}),
		body:     body,
	}
}

// Name returns the diagnostic name given at creation.
func (c *Coro) Name() string { return c.name }

// Done reports whether the body has returned (or been killed).
func (c *Coro) Done() bool { return c.done }

// Parked reports whether the coroutine is waiting in Park.
func (c *Coro) Parked() bool { return c.parked }

// Resume transfers control into the coroutine and blocks until it parks or
// finishes. Resuming a finished coroutine panics: it indicates a scheduler
// bookkeeping bug.
func (c *Coro) Resume() {
	if c.done {
		panic(fmt.Sprintf("sim: resume of finished coroutine %q", c.name))
	}
	if !c.started {
		c.started = true
		go c.run()
	} else {
		c.resumeCh <- sigResume
	}
	<-c.yieldCh
}

// Park yields control back to whoever resumed the coroutine and blocks the
// body until the next Resume. It must be called from the coroutine's own
// goroutine.
func (c *Coro) Park() {
	c.parked = true
	c.yieldCh <- struct{}{}
	sig := <-c.resumeCh
	c.parked = false
	if sig == sigKill {
		panic(coroKilled{c.name})
	}
}

// Kill unwinds a parked coroutine: its body panics with an internal
// sentinel (running deferred cleanup) and the coroutine is marked done.
// Killing an unstarted or finished coroutine is a no-op.
func (c *Coro) Kill() {
	if c.done || !c.started {
		c.done = true
		return
	}
	if !c.parked {
		panic(fmt.Sprintf("sim: kill of running coroutine %q", c.name))
	}
	c.resumeCh <- sigKill
	<-c.yieldCh
}

func (c *Coro) run() {
	defer func() {
		c.done = true
		if r := recover(); r != nil {
			if _, ok := r.(coroKilled); ok {
				c.yieldCh <- struct{}{}
				return
			}
			// Real bug in simulated code: re-panic on the engine side with
			// context, after releasing the engine so the panic is visible.
			c.yieldCh <- struct{}{}
			panic(fmt.Sprintf("sim: coroutine %q panicked: %v", c.name, r))
		}
		c.yieldCh <- struct{}{}
	}()
	c.body(c)
}
