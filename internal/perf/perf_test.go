package perf

import (
	"testing"
	"testing/quick"
)

func TestSymbolTableRegisterAndLookup(t *testing.T) {
	tab := NewSymbolTable()
	a := tab.Register("tcp_sendmsg", BinEngine)
	b := tab.Register("alloc_skb", BinBufMgmt)
	if a == b {
		t.Fatal("distinct names share a handle")
	}
	if tab.Lookup("tcp_sendmsg") != a {
		t.Fatal("lookup returned wrong handle")
	}
	if tab.Lookup("nope") != NoSymbol {
		t.Fatal("lookup of unregistered name should be NoSymbol")
	}
	if tab.Name(a) != "tcp_sendmsg" || tab.Bin(a) != BinEngine {
		t.Fatal("info mismatch")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestSymbolTableIdempotentRegister(t *testing.T) {
	tab := NewSymbolTable()
	a := tab.Register("spin_lock", BinLocks)
	b := tab.Register("spin_lock", BinLocks)
	if a != b {
		t.Fatal("re-registration returned a new handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registration with different bin did not panic")
		}
	}()
	tab.Register("spin_lock", BinEngine)
}

func TestCountersAddGetTotals(t *testing.T) {
	tab := NewSymbolTable()
	eng := tab.Register("tcp_ack", BinEngine)
	buf := tab.Register("kfree_skb", BinBufMgmt)
	c := NewCounters(tab, 2)

	c.Add(0, eng, Cycles, 100)
	c.Add(1, eng, Cycles, 50)
	c.Add(1, buf, Cycles, 25)
	c.Add(0, eng, LLCMisses, 7)

	if got := c.Get(0, eng, Cycles); got != 100 {
		t.Fatalf("Get = %d, want 100", got)
	}
	if got := c.SymbolTotal(eng, Cycles); got != 150 {
		t.Fatalf("SymbolTotal = %d, want 150", got)
	}
	if got := c.CPUTotal(1, Cycles); got != 75 {
		t.Fatalf("CPUTotal = %d, want 75", got)
	}
	if got := c.Total(Cycles); got != 175 {
		t.Fatalf("Total = %d, want 175", got)
	}
	if got := c.BinTotal(BinEngine, Cycles); got != 150 {
		t.Fatalf("BinTotal(engine) = %d, want 150", got)
	}
	if got := c.BinTotal(BinBufMgmt, Cycles); got != 25 {
		t.Fatalf("BinTotal(bufmgmt) = %d, want 25", got)
	}
	if got := c.BinCPUTotal(0, BinEngine, LLCMisses); got != 7 {
		t.Fatalf("BinCPUTotal = %d, want 7", got)
	}
}

func TestCountersSnapshotDiffReset(t *testing.T) {
	tab := NewSymbolTable()
	s := tab.Register("f", BinOther)
	c := NewCounters(tab, 1)
	c.Add(0, s, Instructions, 10)
	snap := c.Snapshot()
	c.Add(0, s, Instructions, 5)
	d := c.Diff(snap)
	if got := d.Get(0, s, Instructions); got != 5 {
		t.Fatalf("Diff = %d, want 5", got)
	}
	// Snapshot must be independent of the original.
	if got := snap.Get(0, s, Instructions); got != 10 {
		t.Fatalf("snapshot mutated: %d", got)
	}
	c.Reset()
	if got := c.Total(Instructions); got != 0 {
		t.Fatalf("Reset left %d", got)
	}
}

func TestCountersAddZeroIsNoop(t *testing.T) {
	tab := NewSymbolTable()
	s := tab.Register("f", BinOther)
	c := NewCounters(tab, 1)
	c.Add(0, s, Cycles, 0)
	if c.Total(Cycles) != 0 {
		t.Fatal("Add(0) changed counters")
	}
}

// Property: Total is always the sum of CPUTotal across CPUs, and of
// SymbolTotal across symbols, regardless of the add pattern.
func TestCountersTotalsConsistent(t *testing.T) {
	f := func(adds []struct {
		CPU uint8
		Sym uint8
		Ev  uint8
		N   uint16
	}) bool {
		tab := NewSymbolTable()
		syms := []Symbol{
			tab.Register("a", BinEngine),
			tab.Register("b", BinCopies),
			tab.Register("c", BinLocks),
		}
		c := NewCounters(tab, 3)
		for _, ad := range adds {
			c.Add(int(ad.CPU)%3, syms[int(ad.Sym)%3], Event(int(ad.Ev)%int(NumEvents)), uint64(ad.N))
		}
		for ev := Event(0); ev < NumEvents; ev++ {
			var byCPU, bySym uint64
			for cpu := 0; cpu < 3; cpu++ {
				byCPU += c.CPUTotal(cpu, ev)
			}
			for _, s := range syms {
				bySym += c.SymbolTotal(s, ev)
			}
			if byCPU != c.Total(ev) || bySym != c.Total(ev) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventAndBinStrings(t *testing.T) {
	if Cycles.String() != "cycles" {
		t.Fatalf("Cycles = %q", Cycles.String())
	}
	if MachineClears.String() != "machine_clear" {
		t.Fatalf("MachineClears = %q", MachineClears.String())
	}
	if BinBufMgmt.String() != "Buf Mgmt" {
		t.Fatalf("BinBufMgmt = %q", BinBufMgmt.String())
	}
	if got := Event(99).String(); got != "event(99)" {
		t.Fatalf("out-of-range event = %q", got)
	}
	if got := Bin(99).String(); got != "bin(99)" {
		t.Fatalf("out-of-range bin = %q", got)
	}
	if len(StackBins()) != 7 {
		t.Fatalf("StackBins = %d entries, want 7", len(StackBins()))
	}
}

// Counters grow transparently when symbols are registered after the
// counter file was created (machine construction order independence).
func TestCountersGrowAfterRegistration(t *testing.T) {
	tab := NewSymbolTable()
	a := tab.Register("early", BinEngine)
	c := NewCounters(tab, 2)
	c.Add(0, a, Cycles, 5)
	b := tab.Register("late", BinDriver)
	c.Add(1, b, Cycles, 7)
	if c.Get(0, a, Cycles) != 5 || c.Get(1, b, Cycles) != 7 {
		t.Fatal("growth lost counts")
	}
	// Get on an even later symbol is zero, not a panic.
	d := tab.Register("latest", BinLocks)
	if c.Get(0, d, Cycles) != 0 {
		t.Fatal("unwritten late symbol non-zero")
	}
	// Diff against a snapshot taken before growth works.
	snap := c.Snapshot()
	e := tab.Register("post-snap", BinTimers)
	c.Add(0, e, Cycles, 3)
	diff := c.Diff(snap)
	if diff.Get(0, e, Cycles) != 3 {
		t.Fatal("diff across growth wrong")
	}
}
