package perf

import "fmt"

// CountersDump is the serializable form of a Counters file: the symbol
// table flattened to registration order plus the raw count matrix. It
// exists so higher layers (the result cache) can persist a measured
// counter file and reconstruct it bit-for-bit in another process.
type CountersDump struct {
	CPUs    int
	Symbols []SymbolInfo
	// Counts is the flat [sym*stride + cpu*NumEvents + event] matrix,
	// truncated or zero-padded to Symbols coverage on restore.
	Counts []uint64
}

// Dump flattens the counter file and its symbol table.
func (c *Counters) Dump() CountersDump {
	c.ensure()
	d := CountersDump{
		CPUs:    c.cpus,
		Symbols: make([]SymbolInfo, c.table.Len()),
		Counts:  make([]uint64, len(c.counts)),
	}
	for i := range d.Symbols {
		d.Symbols[i] = c.table.Info(Symbol(i))
	}
	copy(d.Counts, c.counts)
	return d
}

// CountersFromDump reconstructs a counter file (and a fresh symbol table)
// from a dump. The restored file reads identically to the dumped one:
// same symbols in the same registration order, same counts.
func CountersFromDump(d CountersDump) (*Counters, error) {
	if d.CPUs <= 0 {
		return nil, fmt.Errorf("perf: dump has %d CPUs", d.CPUs)
	}
	table := NewSymbolTable()
	for _, info := range d.Symbols {
		table.Register(info.Name, info.Bin)
	}
	c := NewCounters(table, d.CPUs)
	if want := len(d.Symbols) * c.stride; len(d.Counts) != want {
		return nil, fmt.Errorf("perf: dump has %d counts, want %d (%d symbols × %d CPUs × %d events)",
			len(d.Counts), want, len(d.Symbols), d.CPUs, int(NumEvents))
	}
	copy(c.counts, d.Counts)
	return c, nil
}
