// Package perf defines the performance-monitoring primitives shared by the
// whole simulator: the hardware event set of the simulated Pentium 4 Xeon
// PMU, the paper's seven functional bins of TCP processing, a symbol table
// for simulated kernel procedures, and per-CPU × per-symbol × per-event
// counters.
//
// Everything the Oprofile-like profiler (internal/prof) reports, and
// everything the paper's tables contain, is derived from these counters.
package perf

import "fmt"

// Event is one hardware event the simulated PMU can count. The set mirrors
// the events the paper monitors in §6.2 (Figure 5), plus instructions,
// cycles and branches which the derived metrics (CPI, MPI, %branches)
// need.
type Event int

const (
	// Cycles counts unhalted clock cycles.
	Cycles Event = iota
	// Instructions counts retired instructions.
	Instructions
	// Branches counts retired branch instructions.
	Branches
	// BranchMispredicts counts mispredicted retired branches.
	BranchMispredicts
	// MachineClears counts pipeline flushes (the paper's headline event:
	// caused by interrupts, IPIs and — rarely — memory-order violations).
	MachineClears
	// TCMisses counts trace-cache (front-end) misses.
	TCMisses
	// L2Misses counts first/second-level misses that were served by the
	// on-die L3 (the paper's "L2 miss", cost ≈ 10 cycles).
	L2Misses
	// LLCMisses counts last-level-cache misses served from memory or a
	// remote processor's dirty copy (cost ≈ 300 cycles).
	LLCMisses
	// ITLBWalks counts page walks triggered by instruction-TLB misses.
	ITLBWalks
	// DTLBWalks counts page walks triggered by data-TLB misses.
	DTLBWalks
	// IPIsReceived counts inter-processor interrupts delivered to a CPU.
	// Not a P4 PMU event (the paper laments Oprofile cannot count it); the
	// simulator exposes it because it *can*, which lets tests pin down the
	// causal story the paper could only argue indirectly.
	IPIsReceived
	// IRQsReceived counts device interrupts delivered to a CPU.
	IRQsReceived
	// SpinCycles counts cycles burnt inside spinlock wait loops.
	SpinCycles

	// NumEvents is the number of defined events.
	NumEvents
)

var eventNames = [NumEvents]string{
	"cycles", "instructions", "branches", "br_mispredict", "machine_clear",
	"tc_miss", "l2_miss", "llc_miss", "itlb_walk", "dtlb_walk",
	"ipi_received", "irq_received", "spin_cycles",
}

// String returns the short lower-case event mnemonic.
func (e Event) String() string {
	if e < 0 || e >= NumEvents {
		return fmt.Sprintf("event(%d)", int(e))
	}
	return eventNames[e]
}

// Bin is one of the paper's functional bins of TCP processing (§3, Table
// 1). Every simulated kernel symbol belongs to exactly one bin.
type Bin int

const (
	// BinInterface covers the sockets API, system-call entry and
	// schedule-related routines.
	BinInterface Bin = iota
	// BinEngine covers compute parts of TCP protocol processing: the
	// state machine, window calculations, header construction.
	BinEngine
	// BinBufMgmt covers memory/buffer management and manipulation of TCP
	// control structures (skb alloc/free, socket accounting).
	BinBufMgmt
	// BinCopies covers movement of payload data only.
	BinCopies
	// BinDriver covers NIC driver routines and NIC interrupt processing.
	BinDriver
	// BinLocks covers synchronization-related routines.
	BinLocks
	// BinTimers covers TCP timer routines (including do_gettimeofday on
	// the receive path).
	BinTimers
	// BinIdle is the idle loop; excluded from stack characterization
	// tables but needed for utilization accounting.
	BinIdle
	// BinOther is everything else (process bodies, bookkeeping).
	BinOther

	// NumBins is the number of defined bins.
	NumBins
)

var binNames = [NumBins]string{
	"Interface", "Engine", "Buf Mgmt", "Copies", "Driver", "Locks",
	"Timers", "Idle", "Other",
}

// String returns the bin's display name as used in the paper's tables.
func (b Bin) String() string {
	if b < 0 || b >= NumBins {
		return fmt.Sprintf("bin(%d)", int(b))
	}
	return binNames[b]
}

// StackBins lists the seven bins that constitute TCP stack processing, in
// the paper's table order.
func StackBins() []Bin {
	return []Bin{BinInterface, BinEngine, BinBufMgmt, BinCopies, BinDriver, BinLocks, BinTimers}
}

// Symbol is a handle to a simulated kernel procedure registered in a
// SymbolTable.
type Symbol int

// NoSymbol is the zero Symbol's invalid counterpart, used where "nothing
// is executing" must be representable.
const NoSymbol Symbol = -1

// SymbolInfo describes one registered procedure.
type SymbolInfo struct {
	Name string // e.g. "tcp_sendmsg", "IRQ0x19_interrupt"
	Bin  Bin
}

// SymbolTable maps procedure names to dense Symbol handles. One table is
// shared by an entire simulated machine; registration happens during
// machine construction, after which the table is read-only.
type SymbolTable struct {
	infos  []SymbolInfo
	byName map[string]Symbol
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{byName: make(map[string]Symbol)}
}

// Register adds a procedure and returns its handle. Registering a name
// twice returns the original handle; the bin must then match or Register
// panics, since one procedure cannot live in two bins.
func (t *SymbolTable) Register(name string, bin Bin) Symbol {
	if s, ok := t.byName[name]; ok {
		if t.infos[s].Bin != bin {
			panic(fmt.Sprintf("perf: symbol %q re-registered with bin %v (was %v)", name, bin, t.infos[s].Bin))
		}
		return s
	}
	s := Symbol(len(t.infos))
	t.infos = append(t.infos, SymbolInfo{Name: name, Bin: bin})
	t.byName[name] = s
	return s
}

// Lookup returns the handle for name, or NoSymbol if unregistered.
func (t *SymbolTable) Lookup(name string) Symbol {
	if s, ok := t.byName[name]; ok {
		return s
	}
	return NoSymbol
}

// Len reports the number of registered symbols.
func (t *SymbolTable) Len() int { return len(t.infos) }

// Info returns the descriptor of s.
func (t *SymbolTable) Info(s Symbol) SymbolInfo {
	return t.infos[s]
}

// Name returns the name of s.
func (t *SymbolTable) Name(s Symbol) string { return t.infos[s].Name }

// Bin returns the functional bin of s.
func (t *SymbolTable) Bin(s Symbol) Bin { return t.infos[s].Bin }

// Symbols returns all handles in registration order.
func (t *SymbolTable) Symbols() []Symbol {
	out := make([]Symbol, len(t.infos))
	for i := range out {
		out[i] = Symbol(i)
	}
	return out
}
