package perf

import "fmt"

// Counters is the machine-wide PMU counter file: one uint64 per
// (CPU, symbol, event) triple. The hot path is Add, which is a single
// indexed increment into a flat slice.
//
// The symbol index is the major dimension, so the file grows in place as
// machine construction registers more procedures.
type Counters struct {
	table *SymbolTable
	cpus  int
	// counts is indexed [sym*stride + cpu*NumEvents + event].
	counts []uint64
	stride int // cpus * NumEvents
}

// NewCounters returns a zeroed counter file for cpus processors over the
// symbols registered in table (now or later).
func NewCounters(table *SymbolTable, cpus int) *Counters {
	if cpus <= 0 {
		panic("perf: NewCounters with no CPUs")
	}
	c := &Counters{table: table, cpus: cpus, stride: cpus * int(NumEvents)}
	c.ensure()
	return c
}

// ensure grows the backing store to cover every registered symbol.
func (c *Counters) ensure() {
	need := c.table.Len() * c.stride
	if need > len(c.counts) {
		grown := make([]uint64, need)
		copy(grown, c.counts)
		c.counts = grown
	}
}

// CPUs reports the number of processors the file covers.
func (c *Counters) CPUs() int { return c.cpus }

// Table returns the symbol table the counters are indexed by.
func (c *Counters) Table() *SymbolTable { return c.table }

func (c *Counters) idx(cpu int, sym Symbol, ev Event) int {
	return int(sym)*c.stride + cpu*int(NumEvents) + int(ev)
}

// Add increments the (cpu, sym, ev) counter by n.
func (c *Counters) Add(cpu int, sym Symbol, ev Event, n uint64) {
	if n == 0 {
		return
	}
	i := c.idx(cpu, sym, ev)
	if i >= len(c.counts) {
		c.ensure()
	}
	c.counts[i] += n
}

// Get reads the (cpu, sym, ev) counter.
func (c *Counters) Get(cpu int, sym Symbol, ev Event) uint64 {
	i := c.idx(cpu, sym, ev)
	if i >= len(c.counts) {
		return 0
	}
	return c.counts[i]
}

// SymbolTotal sums ev over all CPUs for one symbol.
func (c *Counters) SymbolTotal(sym Symbol, ev Event) uint64 {
	var t uint64
	for cpu := 0; cpu < c.cpus; cpu++ {
		t += c.Get(cpu, sym, ev)
	}
	return t
}

// CPUTotal sums ev over all symbols for one CPU.
func (c *Counters) CPUTotal(cpu int, ev Event) uint64 {
	var t uint64
	for s := 0; s < c.table.Len(); s++ {
		t += c.Get(cpu, Symbol(s), ev)
	}
	return t
}

// Total sums ev over the whole machine.
func (c *Counters) Total(ev Event) uint64 {
	var t uint64
	for cpu := 0; cpu < c.cpus; cpu++ {
		t += c.CPUTotal(cpu, ev)
	}
	return t
}

// BinTotal sums ev over all CPUs and all symbols belonging to bin.
func (c *Counters) BinTotal(bin Bin, ev Event) uint64 {
	var t uint64
	for s := 0; s < c.table.Len(); s++ {
		if c.table.Bin(Symbol(s)) != bin {
			continue
		}
		t += c.SymbolTotal(Symbol(s), ev)
	}
	return t
}

// BinCPUTotal sums ev over one CPU for all symbols in bin.
func (c *Counters) BinCPUTotal(cpu int, bin Bin, ev Event) uint64 {
	var t uint64
	for s := 0; s < c.table.Len(); s++ {
		if c.table.Bin(Symbol(s)) != bin {
			continue
		}
		t += c.Get(cpu, Symbol(s), ev)
	}
	return t
}

// Reset zeroes every counter. Experiments call this after warmup so the
// measured interval excludes cold-start transients — the same reason the
// paper profiles long steady-state runs.
func (c *Counters) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
}

// Snapshot returns a deep copy of the counter file, so an experiment can
// diff two points in time.
func (c *Counters) Snapshot() *Counters {
	c.ensure()
	cp := &Counters{table: c.table, cpus: c.cpus, stride: c.stride}
	cp.counts = make([]uint64, len(c.counts))
	copy(cp.counts, c.counts)
	return cp
}

// Diff returns a counter file holding c - earlier. The snapshots must
// come from the same machine; earlier may predate some symbol
// registrations (those counters diff against zero).
func (c *Counters) Diff(earlier *Counters) *Counters {
	if earlier.table != c.table || earlier.cpus != c.cpus {
		panic(fmt.Sprintf("perf: Diff of mismatched counter files (%d vs %d CPUs)", c.cpus, earlier.cpus))
	}
	out := c.Snapshot()
	for i := range earlier.counts {
		out.counts[i] -= earlier.counts[i]
	}
	return out
}
