package apic

import "testing"

type fakeTarget struct {
	got []struct {
		vec  Vector
		kind Kind
	}
}

func (f *fakeTarget) DeliverInterrupt(vec Vector, kind Kind) {
	f.got = append(f.got, struct {
		vec  Vector
		kind Kind
	}{vec, kind})
}

func newAPIC(n int) (*IOAPIC, []*fakeTarget) {
	fakes := make([]*fakeTarget, n)
	targets := make([]Target, n)
	for i := range fakes {
		fakes[i] = &fakeTarget{}
		targets[i] = fakes[i]
	}
	return NewIOAPIC(targets), fakes
}

func TestDefaultMaskDeliversToCPU0(t *testing.T) {
	a, fakes := newAPIC(2)
	for i := 0; i < 5; i++ {
		if cpu := a.Raise(0x19); cpu != 0 {
			t.Fatalf("default delivery to cpu %d, want 0", cpu)
		}
	}
	if len(fakes[0].got) != 5 || len(fakes[1].got) != 0 {
		t.Fatalf("deliveries %d/%d, want 5/0", len(fakes[0].got), len(fakes[1].got))
	}
	if fakes[0].got[0].kind != KindDevice {
		t.Fatal("wrong kind")
	}
	if a.Delivered() != 5 {
		t.Fatalf("Delivered = %d", a.Delivered())
	}
}

func TestSetAffinityRoutesToMaskedCPU(t *testing.T) {
	a, fakes := newAPIC(2)
	if err := a.SetAffinity(0x1a, 1<<1); err != nil {
		t.Fatal(err)
	}
	if cpu := a.Raise(0x1a); cpu != 1 {
		t.Fatalf("delivery to cpu %d, want 1", cpu)
	}
	if len(fakes[1].got) != 1 {
		t.Fatal("cpu1 did not receive")
	}
	if got := a.Affinity(0x1a); got != 2 {
		t.Fatalf("Affinity = %#x, want 0x2", got)
	}
}

func TestSetAffinityRejectsEmptyMask(t *testing.T) {
	a, _ := newAPIC(2)
	if err := a.SetAffinity(0x19, 0); err == nil {
		t.Fatal("empty mask accepted")
	}
	// Mask beyond the CPU count is truncated; if nothing remains, reject.
	if err := a.SetAffinity(0x19, 0xc); err == nil {
		t.Fatal("mask with no valid CPUs accepted")
	}
}

func TestRotatePolicySwitchesWithinMask(t *testing.T) {
	a, fakes := newAPIC(2)
	a.SetPolicy(PolicyRotate)
	a.RotatePeriod = 3
	for i := 0; i < 12; i++ {
		a.Raise(0x20)
	}
	if len(fakes[0].got) != 6 || len(fakes[1].got) != 6 {
		t.Fatalf("rotate split %d/%d, want 6/6", len(fakes[0].got), len(fakes[1].got))
	}
	if a.TPRWrites != 4 {
		t.Fatalf("TPR writes = %d, want 4", a.TPRWrites)
	}
}

func TestRotateRespectsSingleCPUMask(t *testing.T) {
	a, fakes := newAPIC(2)
	a.SetPolicy(PolicyRotate)
	a.RotatePeriod = 2
	a.SetAffinity(0x21, 1<<1)
	for i := 0; i < 8; i++ {
		a.Raise(0x21)
	}
	if len(fakes[0].got) != 0 || len(fakes[1].got) != 8 {
		t.Fatalf("masked rotate split %d/%d, want 0/8", len(fakes[0].got), len(fakes[1].got))
	}
}

func TestSendIPIAndTimer(t *testing.T) {
	a, fakes := newAPIC(2)
	a.SendIPI(1, 0xfd)
	a.TimerTick(0, 0xef)
	if len(fakes[1].got) != 1 || fakes[1].got[0].kind != KindIPI {
		t.Fatal("IPI not delivered")
	}
	if len(fakes[0].got) != 1 || fakes[0].got[0].kind != KindTimer {
		t.Fatal("timer not delivered")
	}
}

func TestKindString(t *testing.T) {
	if KindDevice.String() != "device" || KindIPI.String() != "ipi" || KindTimer.String() != "timer" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("out-of-range kind name wrong")
	}
}
