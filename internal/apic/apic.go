// Package apic models the interrupt-delivery hardware of the system under
// test: an IO-APIC routing device interrupt lines to processors under a
// per-line affinity mask (Linux's /proc/irq/N/smp_affinity), and the local
// APICs' inter-processor interrupts.
//
// Delivery policy mirrors the paper's platform: with the default
// all-processors mask, interrupts are delivered to CPU0 — "both Windows NT
// and Linux default SMP configuration operates with device interrupts
// going to CPU0" (§2) — and a restricted mask delivers to the lowest
// processor in the mask. An optional rotation mode models the Linux 2.6
// behaviour discussed in §7 (deliver to one processor for a while, then
// switch), including the cost of the uncacheable task-priority-register
// updates it requires.
package apic

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Vector identifies one interrupt line. The simulated NIC vectors use the
// 0x19–0x27 range so profiler symbol names match the paper's Table 4
// (IRQ0x19_interrupt …).
type Vector int

// Kind distinguishes delivery classes; the kernel charges different
// machine-clear behaviour per kind.
type Kind int

const (
	// KindDevice is an IO-APIC routed device interrupt.
	KindDevice Kind = iota
	// KindIPI is an inter-processor interrupt (e.g. reschedule).
	KindIPI
	// KindTimer is the per-CPU local APIC timer tick.
	KindTimer
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindDevice:
		return "device"
	case KindIPI:
		return "ipi"
	case KindTimer:
		return "timer"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Target is a processor that can accept interrupt deliveries; the kernel's
// per-CPU structures implement it.
type Target interface {
	// DeliverInterrupt enqueues the vector on the processor. It is called
	// in engine context at delivery time.
	DeliverInterrupt(vec Vector, kind Kind)
}

// RoutePolicy selects how a multi-CPU affinity mask is interpreted.
type RoutePolicy int

const (
	// PolicyLowestInMask always delivers to the lowest-numbered CPU in
	// the mask: the platform's static behaviour, and CPU0 by default.
	PolicyLowestInMask RoutePolicy = iota
	// PolicyRotate delivers to one CPU in the mask for RotatePeriod
	// deliveries, then moves to the next (the 2.6-style scheme of §7).
	PolicyRotate
)

type route struct {
	mask      uint32
	current   int
	remaining int
}

// IOAPIC routes device vectors to processors.
type IOAPIC struct {
	targets []Target
	routes  map[Vector]*route
	policy  RoutePolicy
	// RotatePeriod is the number of deliveries before PolicyRotate moves
	// to the next CPU in the mask.
	RotatePeriod int
	// TPRWrites counts the uncacheable task-priority-register updates the
	// rotate policy performs — the overhead §7 calls out.
	TPRWrites uint64
	// Spurious counts fault-injected deliveries (InjectSpurious).
	Spurious  uint64
	delivered uint64

	rec      *trace.Recorder
	traceNow func() sim.Time
}

// NewIOAPIC builds a router over the given processors with every vector
// defaulting to the all-CPUs mask (and therefore CPU0 delivery).
func NewIOAPIC(targets []Target) *IOAPIC {
	if len(targets) == 0 || len(targets) > 32 {
		panic("apic: need 1..32 targets")
	}
	return &IOAPIC{
		targets:      targets,
		routes:       make(map[Vector]*route),
		policy:       PolicyLowestInMask,
		RotatePeriod: 64,
	}
}

// SetPolicy selects the delivery policy for multi-CPU masks.
func (a *IOAPIC) SetPolicy(p RoutePolicy) { a.policy = p }

// SetTrace attaches a timeline recorder. The IO-APIC holds no engine
// reference, so the caller also supplies the clock to stamp records with.
// A nil recorder disables tracing.
func (a *IOAPIC) SetTrace(rec *trace.Recorder, now func() sim.Time) {
	a.rec = rec
	a.traceNow = now
}

func (a *IOAPIC) route(vec Vector) *route {
	r := a.routes[vec]
	if r == nil {
		r = &route{mask: (1 << uint(len(a.targets))) - 1}
		a.routes[vec] = r
	}
	return r
}

// SetAffinity programs the smp_affinity mask of a vector. A zero mask is
// rejected, as the kernel rejects it.
func (a *IOAPIC) SetAffinity(vec Vector, mask uint32) error {
	allowed := uint32(1<<uint(len(a.targets))) - 1
	mask &= allowed
	if mask == 0 {
		return fmt.Errorf("apic: empty affinity mask for vector %#x", int(vec))
	}
	r := a.route(vec)
	r.mask = mask
	r.remaining = 0
	return nil
}

// Affinity reads back a vector's mask.
func (a *IOAPIC) Affinity(vec Vector) uint32 { return a.route(vec).mask }

// Delivered reports the total device interrupts routed.
func (a *IOAPIC) Delivered() uint64 { return a.delivered }

func lowestBit(mask uint32) int {
	for i := 0; i < 32; i++ {
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}

func nextBit(mask uint32, after int) int {
	for i := 1; i <= 32; i++ {
		b := (after + i) % 32
		if mask&(1<<uint(b)) != 0 {
			return b
		}
	}
	return lowestBit(mask)
}

// Raise delivers a device interrupt on vec to the CPU selected by the
// vector's mask and the current policy, returning the chosen CPU.
func (a *IOAPIC) Raise(vec Vector) int {
	r := a.route(vec)
	var cpu int
	switch a.policy {
	case PolicyRotate:
		if r.remaining <= 0 {
			r.current = nextBit(r.mask, r.current)
			r.remaining = a.RotatePeriod
			a.TPRWrites++
		}
		r.remaining--
		cpu = r.current
	default:
		cpu = lowestBit(r.mask)
	}
	a.delivered++
	if a.rec.Enabled() {
		a.rec.IRQDeliver(a.traceNow(), cpu, int(vec))
	}
	a.targets[cpu].DeliverInterrupt(vec, KindDevice)
	return cpu
}

// InjectSpurious delivers vec as a device interrupt directly to cpu,
// bypassing the vector's affinity mask — the fault layer's interrupt
// storm, modelling a device (or a misprogrammed router) hammering one
// processor with deliveries that carry no useful work. The vector must
// have a registered handler; the handler runs, finds nothing to do, and
// the cycles are pure interrupt overhead.
func (a *IOAPIC) InjectSpurious(cpu int, vec Vector) {
	if cpu < 0 || cpu >= len(a.targets) {
		panic(fmt.Sprintf("apic: spurious injection to nonexistent cpu %d", cpu))
	}
	a.delivered++
	a.Spurious++
	if a.rec.Enabled() {
		a.rec.IRQDeliver(a.traceNow(), cpu, int(vec))
	}
	a.targets[cpu].DeliverInterrupt(vec, KindDevice)
}

// SendIPI delivers an inter-processor interrupt to the given CPU.
func (a *IOAPIC) SendIPI(to int, vec Vector) {
	if a.rec.Enabled() {
		a.rec.IPI(a.traceNow(), to, int(vec))
	}
	a.targets[to].DeliverInterrupt(vec, KindIPI)
}

// TimerTick delivers the local APIC timer interrupt on the given CPU.
func (a *IOAPIC) TimerTick(cpu int, vec Vector) {
	a.targets[cpu].DeliverInterrupt(vec, KindTimer)
}

// NumCPUs reports the number of routed processors.
func (a *IOAPIC) NumCPUs() int { return len(a.targets) }
