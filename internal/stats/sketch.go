package stats

import "math/bits"

// sketchSubBuckets is the per-octave resolution of the Sketch: each
// power-of-two range of values is split into this many linear sub-
// buckets, bounding the relative quantile error at 1/sketchSubBuckets
// (~3%) — ample for p50/p99/p999 over latencies spanning six decades.
const sketchSubBuckets = 32

// Sketch is a deterministic log-linear histogram for latency quantiles.
// Values (cycles) are binned by octave and linear sub-bucket, so Add is
// a few integer ops, memory is fixed (64 octaves × 32 sub-buckets), and
// two runs that observe the same value sequence produce bit-identical
// sketches — the property the result cache and the parallel runner
// depend on. All fields are exported for gob encoding.
type Sketch struct {
	// Buckets[o*sketchSubBuckets+s] counts values whose highest set bit
	// is o and whose next five bits are s.
	Buckets []uint64
	// N is the total count; Sum the total of all added values (for
	// means); MaxVal the largest value observed.
	N      uint64
	Sum    uint64
	MaxVal uint64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{Buckets: make([]uint64, 64*sketchSubBuckets)}
}

func sketchIndex(v uint64) int {
	if v < sketchSubBuckets {
		// Values below one sub-bucket's resolution are exact.
		return int(v)
	}
	o := bits.Len64(v) - 1
	// The five bits below the leading bit select the sub-bucket.
	s := (v >> (uint(o) - 5)) & (sketchSubBuckets - 1)
	return o*sketchSubBuckets + int(s)
}

// sketchValue returns the representative (upper-edge) value of bucket i,
// the inverse of sketchIndex up to the bucket's resolution.
func sketchValue(i int) uint64 {
	if i < sketchSubBuckets {
		return uint64(i)
	}
	o := i / sketchSubBuckets
	s := i % sketchSubBuckets
	base := uint64(1) << uint(o)
	step := base / sketchSubBuckets
	return base + uint64(s)*step + step - 1
}

// Add records one value.
func (k *Sketch) Add(v uint64) {
	k.Buckets[sketchIndex(v)]++
	k.N++
	k.Sum += v
	if v > k.MaxVal {
		k.MaxVal = v
	}
}

// Count reports how many values were recorded.
func (k *Sketch) Count() uint64 { return k.N }

// Mean reports the arithmetic mean of recorded values (0 when empty).
func (k *Sketch) Mean() float64 {
	if k.N == 0 {
		return 0
	}
	return float64(k.Sum) / float64(k.N)
}

// Quantile returns the value at quantile q in [0,1], as the upper edge
// of the bucket holding the q·N-th observation (0 when empty). The
// maximum quantile is clamped to the true observed maximum.
func (k *Sketch) Quantile(q float64) uint64 {
	if k.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(k.N-1))
	var seen uint64
	for i, c := range k.Buckets {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			v := sketchValue(i)
			if v > k.MaxVal {
				v = k.MaxVal
			}
			return v
		}
	}
	return k.MaxVal
}

// Clone returns a deep copy (snapshotting a measurement window start).
func (k *Sketch) Clone() *Sketch {
	c := &Sketch{
		Buckets: append([]uint64(nil), k.Buckets...),
		N:       k.N,
		Sum:     k.Sum,
		MaxVal:  k.MaxVal,
	}
	return c
}

// Diff returns the windowed delta k − start: the histogram of values
// added after the start snapshot was taken. MaxVal is the cumulative
// maximum (per-window maxima are not recoverable from counts alone).
func (k *Sketch) Diff(start *Sketch) *Sketch {
	if start == nil {
		return k.Clone()
	}
	d := &Sketch{
		Buckets: make([]uint64, len(k.Buckets)),
		N:       k.N - start.N,
		Sum:     k.Sum - start.Sum,
		MaxVal:  k.MaxVal,
	}
	for i := range k.Buckets {
		d.Buckets[i] = k.Buckets[i] - start.Buckets[i]
	}
	return d
}
