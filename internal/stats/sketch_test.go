package stats

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestSketchExactSmallValues(t *testing.T) {
	k := NewSketch()
	for v := uint64(0); v < 32; v++ {
		k.Add(v)
	}
	if got := k.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := k.Quantile(1); got != 31 {
		t.Fatalf("q1 = %d, want 31", got)
	}
	if got := k.Count(); got != 32 {
		t.Fatalf("count = %d, want 32", got)
	}
}

func TestSketchQuantileAccuracy(t *testing.T) {
	k := NewSketch()
	const n = 100_000
	for i := 1; i <= n; i++ {
		k.Add(uint64(i) * 100) // 100 .. 10M cycles, uniform
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 5e6}, {0.99, 9.9e6}, {0.999, 9.99e6}} {
		got := float64(k.Quantile(tc.q))
		if rel := (got - tc.want) / tc.want; rel < -0.002 || rel > 0.05 {
			t.Errorf("q%.3f = %.0f, want %.0f ±5%%", tc.q, got, tc.want)
		}
	}
	if k.Quantile(1) != k.MaxVal {
		t.Errorf("q1 = %d, want max %d", k.Quantile(1), k.MaxVal)
	}
}

func TestSketchDiff(t *testing.T) {
	k := NewSketch()
	for i := 0; i < 1000; i++ {
		k.Add(1000)
	}
	snap := k.Clone()
	for i := 0; i < 500; i++ {
		k.Add(2000)
	}
	d := k.Diff(snap)
	if d.Count() != 500 {
		t.Fatalf("diff count = %d, want 500", d.Count())
	}
	if q := d.Quantile(0.5); q < 2000-2000/sketchSubBuckets || q > 2000+2000/sketchSubBuckets {
		t.Fatalf("diff median = %d, want ~2000", q)
	}
	if d.Diff(nil).Count() != 500 {
		t.Fatalf("Diff(nil) should clone")
	}
}

func TestSketchDeterministicAndGob(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	vals := []uint64{0, 1, 31, 32, 63, 1 << 20, 1<<40 + 12345, ^uint64(0)}
	for _, v := range vals {
		a.Add(v)
		b.Add(v)
	}
	var ab, bb bytes.Buffer
	if err := gob.NewEncoder(&ab).Encode(a); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&bb).Encode(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatalf("same inputs produced different encodings")
	}
	var back Sketch
	if err := gob.NewDecoder(&ab).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != a.Count() || back.Quantile(0.99) != a.Quantile(0.99) {
		t.Fatalf("gob round-trip changed sketch")
	}
}
