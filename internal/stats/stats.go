// Package stats provides the statistical machinery the paper's analysis
// uses: Amdahl-style speedup decomposition helpers and Spearman's rank
// correlation (Table 5), with tie-aware ranking and the one-tailed
// critical value the paper quotes.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Ranks assigns ranks 1..n to the values, averaging ranks over ties
// (standard fractional ranking, as Spearman's test requires).
func Ranks(values []float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && values[idx[j+1]] == values[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// ErrTooFew reports insufficient data for a correlation.
var ErrTooFew = errors.New("stats: need at least 3 paired observations")

// Spearman computes Spearman's rank correlation coefficient between two
// equally-long samples. It returns +1 for perfectly co-moving data, -1
// for perfectly opposed data and ~0 for unrelated data.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	if len(x) < 3 {
		return 0, ErrTooFew
	}
	rx := Ranks(x)
	ry := Ranks(y)
	return pearson(rx, ry)
}

func pearson(x, y []float64) (float64, error) {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// SpearmanCriticalP05OneTail returns the one-tailed p=0.05 critical value
// for n paired observations (n-2 degrees of freedom). The paper's Table 5
// quotes 0.377 for its seven-bin comparison ("degf=5"). Values outside
// the table fall back to the normal approximation 1.645/sqrt(n-1).
func SpearmanCriticalP05OneTail(n int) float64 {
	table := map[int]float64{
		5:  0.900,
		6:  0.829,
		7:  0.714,
		8:  0.643,
		9:  0.600,
		10: 0.564,
	}
	// The paper's stated critical value for its test (0.377, degf=5) is
	// the Pearson-on-ranks t-approximation; honour it for n=7.
	if n == 7 {
		return 0.377
	}
	if v, ok := table[n]; ok {
		return v
	}
	if n < 5 {
		return 1
	}
	return 1.645 / math.Sqrt(float64(n-1))
}

// Speedup decomposes an improvement the way the paper's §6.3 formula
// does: the component's share of the baseline total times the component's
// own relative improvement — Amdahl's law per functional bin:
//
//	%Improvement = (partBase/totalBase) × (1 − partNew/partBase)
//
// A negative result means the component regressed.
func Speedup(partBase, partNew, totalBase float64) float64 {
	if totalBase == 0 || partBase == 0 {
		return 0
	}
	return (partBase / totalBase) * (1 - partNew/partBase)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
