package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRanksSimple(t *testing.T) {
	r := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if !almost(r[i], want[i]) {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksTiesAreAveraged(t *testing.T) {
	r := Ranks([]float64{5, 1, 5, 2})
	// sorted: 1(rank1), 2(rank2), 5,5 (ranks 3,4 -> 3.5 each)
	want := []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if !almost(r[i], want[i]) {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksAllTied(t *testing.T) {
	r := Ranks([]float64{7, 7, 7})
	for _, v := range r {
		if !almost(v, 2) {
			t.Fatalf("all-tied ranks = %v, want all 2", r)
		}
	}
}

func TestSpearmanPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7}
	y := []float64{10, 20, 30, 40, 50, 60, 70}
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rho, 1) {
		t.Fatalf("rho = %v, want 1", rho)
	}
}

func TestSpearmanPerfectAnticorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{9, 7, 5, 3, 1}
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rho, -1) {
		t.Fatalf("rho = %v, want -1", rho)
	}
}

func TestSpearmanMonotoneTransformInvariance(t *testing.T) {
	// Spearman is rank-based: any strictly increasing transform of y
	// leaves rho unchanged.
	x := []float64{0.3, 1.2, 2.2, 0.9, 4.4, 3.8}
	y := []float64{2, 9, 13, 7, 40, 22}
	r1, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	y2 := make([]float64, len(y))
	for i, v := range y {
		y2[i] = math.Exp(v / 10)
	}
	r2, err := Spearman(x, y2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r1, r2) {
		t.Fatalf("rho changed under monotone transform: %v vs %v", r1, r2)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Spearman([]float64{1, 2}, []float64{3, 4}); err == nil {
		t.Error("too-short samples accepted")
	}
	if _, err := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero-variance sample accepted")
	}
}

// Property: rho is always in [-1, 1] for random data without full ties.
func TestSpearmanBounded(t *testing.T) {
	f := func(seed int64) bool {
		x := make([]float64, 9)
		y := make([]float64, 9)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		for i := range x {
			x[i] = next()
			y[i] = next()
		}
		rho, err := Spearman(x, y)
		if err != nil {
			return true // degenerate draw
		}
		return rho >= -1.0000001 && rho <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanCritical(t *testing.T) {
	// The paper's quoted value for its seven-bin test.
	if got := SpearmanCriticalP05OneTail(7); !almost(got, 0.377) {
		t.Fatalf("critical(7) = %v, want 0.377", got)
	}
	if got := SpearmanCriticalP05OneTail(5); !almost(got, 0.9) {
		t.Fatalf("critical(5) = %v, want 0.9", got)
	}
	if got := SpearmanCriticalP05OneTail(3); got != 1 {
		t.Fatalf("critical(3) = %v, want 1 (unattainable)", got)
	}
	big := SpearmanCriticalP05OneTail(100)
	if big <= 0 || big >= 0.3 {
		t.Fatalf("critical(100) = %v, want small positive", big)
	}
}

func TestSpeedupAmdahl(t *testing.T) {
	// A bin that is 40% of the baseline and halves contributes 20%.
	if got := Speedup(40, 20, 100); !almost(got, 0.2) {
		t.Fatalf("speedup = %v, want 0.2", got)
	}
	// A regressing bin contributes negatively.
	if got := Speedup(10, 20, 100); !almost(got, -0.1) {
		t.Fatalf("regression = %v, want -0.1", got)
	}
	if Speedup(0, 5, 100) != 0 || Speedup(10, 5, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

// Property: summing per-part speedups over a full partition equals the
// total relative improvement.
func TestSpeedupPartitionSums(t *testing.T) {
	f := func(parts [6]uint16, scale [6]uint8) bool {
		var totalBase, totalNew, sum float64
		var base [6]float64
		var newv [6]float64
		for i := range parts {
			base[i] = float64(parts[i]) + 1
			newv[i] = base[i] * (float64(scale[i]%200) / 100.0)
			totalBase += base[i]
			totalNew += newv[i]
		}
		for i := range parts {
			sum += Speedup(base[i], newv[i], totalBase)
		}
		want := 1 - totalNew/totalBase
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean wrong")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with non-positive input should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}
