// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see DESIGN.md's experiment index). Each
// benchmark runs the simulation at the relevant operating point and
// reports the paper's metrics through testing.B custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports. Absolute values are the
// simulator's; EXPERIMENTS.md records the paper-vs-measured comparison.
package repro

import (
	"fmt"
	"testing"

	"repro/affinity"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/sim"
)

type simTime = sim.Time

// benchConfig uses a reduced steady-state window so the whole harness
// completes in minutes; the reported metrics match the full windows to
// within a few percent.
func benchConfig(mode affinity.Mode, dir affinity.Direction, size int) affinity.Config {
	cfg := affinity.DefaultConfig(mode, dir, size)
	cfg.WarmupCycles = 30_000_000
	cfg.MeasureCycles = 100_000_000
	return cfg
}

func runOnce(b *testing.B, cfg affinity.Config) *affinity.Result {
	b.Helper()
	var r *affinity.Result
	for i := 0; i < b.N; i++ {
		r = affinity.Run(cfg)
	}
	return r
}

// --- Figure 3: bandwidth and CPU utilization per mode and size ---

func BenchmarkFig3_TX(b *testing.B) { benchFig3(b, affinity.TX) }
func BenchmarkFig3_RX(b *testing.B) { benchFig3(b, affinity.RX) }

func benchFig3(b *testing.B, dir affinity.Direction) {
	for _, size := range []int{128, 1024, 8192, 65536} {
		for _, mode := range affinity.Modes() {
			name := fmt.Sprintf("%s/%dB", mode, size)
			b.Run(name, func(b *testing.B) {
				r := runOnce(b, benchConfig(mode, dir, size))
				b.ReportMetric(r.Mbps, "Mbps")
				b.ReportMetric(100*r.AvgUtil, "%CPU")
			})
		}
	}
}

// --- Figure 4: processing cost in GHz/Gbps per mode and size ---

func BenchmarkFig4_TX(b *testing.B) { benchFig4(b, affinity.TX) }
func BenchmarkFig4_RX(b *testing.B) { benchFig4(b, affinity.RX) }

func benchFig4(b *testing.B, dir affinity.Direction) {
	for _, size := range []int{128, 1024, 8192, 65536} {
		for _, mode := range affinity.Modes() {
			name := fmt.Sprintf("%s/%dB", mode, size)
			b.Run(name, func(b *testing.B) {
				r := runOnce(b, benchConfig(mode, dir, size))
				b.ReportMetric(r.CostGHzPerGbps, "GHz/Gbps")
			})
		}
	}
}

// --- Host parallelism: serial vs parallel sweep execution ---

// sweepBench runs a reduced Figure 3/4 sweep (2 sizes × 4 modes = 8
// cells) through an explicit runner, so the serial/parallel pair
// isolates the worker pool's wall-clock effect. Results are bit-identical
// across the pair; only the elapsed time differs.
func sweepBench(b *testing.B, workers int) {
	base := benchConfig(affinity.ModeNone, affinity.TX, 128)
	runner := affinity.NewRunner(workers)
	var sw affinity.Sweep
	for i := 0; i < b.N; i++ {
		sw = runner.RunSweep(base, affinity.TX, []int{128, 65536}, affinity.Modes())
	}
	b.ReportMetric(float64(len(sw.Points)), "cells")
}

func BenchmarkSweepSerial(b *testing.B)   { sweepBench(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { sweepBench(b, 0) }

// --- Table 1: baseline bin characterization at the extreme points ---

func BenchmarkTable1(b *testing.B) {
	for _, pt := range core.ExtremePoints() {
		for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
			name := fmt.Sprintf("%s_%dB/%s", pt.Dir, pt.Size, mode)
			b.Run(name, func(b *testing.B) {
				r := runOnce(b, benchConfig(mode, pt.Dir, pt.Size))
				tab := affinity.BaselineTable(r)
				b.ReportMetric(tab.Overall.CPI, "CPI")
				b.ReportMetric(1000*tab.Overall.MPI, "MPIx1e-3")
				b.ReportMetric(100*tab.Overall.PctBranches, "%branches")
			})
		}
	}
}

// --- Table 2: spinlock behaviour ---

func BenchmarkTable2(b *testing.B) {
	for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
		b.Run(mode.String(), func(b *testing.B) {
			var lb core.LockBehaviour
			for i := 0; i < b.N; i++ {
				lb = core.LockStats(affinity.Run(benchConfig(mode, affinity.TX, 65536)))
			}
			b.ReportMetric(float64(lb.Branches), "lock-branches")
			b.ReportMetric(100*lb.MispredictRatio, "%mispredict")
			b.ReportMetric(float64(lb.SpinCycles), "spin-cycles")
		})
	}
}

// --- Figure 5: performance impact indicators ---

func BenchmarkFig5(b *testing.B) {
	for _, pt := range core.ExtremePoints() {
		for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
			name := fmt.Sprintf("%s_%dB/%s", pt.Dir, pt.Size, mode)
			b.Run(name, func(b *testing.B) {
				r := runOnce(b, benchConfig(mode, pt.Dir, pt.Size))
				for _, s := range affinity.Indicators(r) {
					switch s.Event {
					case perf.MachineClears:
						b.ReportMetric(100*s.Share, "%clears")
					case perf.LLCMisses:
						b.ReportMetric(100*s.Share, "%llc")
					}
				}
			})
		}
	}
}

// --- Table 3: per-bin improvements no affinity -> full affinity ---

func BenchmarkTable3(b *testing.B) {
	for _, pt := range core.ExtremePoints() {
		name := fmt.Sprintf("%s_%dB", pt.Dir, pt.Size)
		b.Run(name, func(b *testing.B) {
			var cmp *affinity.Comparison
			for i := 0; i < b.N; i++ {
				base := affinity.Run(benchConfig(affinity.ModeNone, pt.Dir, pt.Size))
				full := affinity.Run(benchConfig(affinity.ModeFull, pt.Dir, pt.Size))
				cmp = affinity.Compare(base, full)
			}
			b.ReportMetric(100*cmp.OverallCycles, "%cycles-imp")
			b.ReportMetric(100*cmp.OverallLLC, "%llc-imp")
			b.ReportMetric(100*cmp.OverallClears, "%clears-imp")
		})
	}
}

// --- Table 4: machine-clear symbol distribution across CPUs ---

func BenchmarkTable4(b *testing.B) {
	for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
		b.Run(mode.String(), func(b *testing.B) {
			var r *affinity.Result
			for i := 0; i < b.N; i++ {
				r = affinity.Run(benchConfig(mode, affinity.TX, 128))
			}
			rows := affinity.TopClearSymbols(r, 8)
			for cpu, list := range rows {
				var total uint64
				for _, s := range list {
					total += s.Count
				}
				b.ReportMetric(float64(total), fmt.Sprintf("cpu%d-top-clears", cpu))
			}
		})
	}
}

// --- Table 5: rank correlation of improvements ---

func BenchmarkTable5(b *testing.B) {
	for _, pt := range core.ExtremePoints() {
		name := fmt.Sprintf("%s_%dB", pt.Dir, pt.Size)
		b.Run(name, func(b *testing.B) {
			var cmp *affinity.Comparison
			for i := 0; i < b.N; i++ {
				base := affinity.Run(benchConfig(affinity.ModeNone, pt.Dir, pt.Size))
				full := affinity.Run(benchConfig(affinity.ModeFull, pt.Dir, pt.Size))
				cmp = affinity.Compare(base, full)
			}
			b.ReportMetric(cmp.CorrLLC, "rho-llc")
			b.ReportMetric(cmp.CorrClears, "rho-clears")
			b.ReportMetric(cmp.CorrCritical, "critical")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// Ablation 1: the affinity ordering is invariant under the machine-clear
// penalty (the first-order cost model's most uncertain constant).
func BenchmarkAblation_PenaltyTable(b *testing.B) {
	for _, pen := range []uint64{60, 120, 250} {
		b.Run(fmt.Sprintf("clear=%d", pen), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				base := benchConfig(affinity.ModeNone, affinity.TX, 65536)
				base.CPU.Penalty.MachineClear = pen
				full := base
				full.Mode = affinity.ModeFull
				rb := affinity.Run(base)
				rf := affinity.Run(full)
				gain = rf.Mbps/rb.Mbps - 1
			}
			b.ReportMetric(100*gain, "%fullaff-gain")
		})
	}
}

// Ablation 2: disable interrupt-induced machine clears entirely; the
// throughput ordering survives (cache effects alone), the clear-based
// attribution disappears.
func BenchmarkAblation_NoIPIClears(b *testing.B) {
	for _, off := range []bool{false, true} {
		name := "clears-on"
		if off {
			name = "clears-off"
		}
		b.Run(name, func(b *testing.B) {
			var gain, clears float64
			for i := 0; i < b.N; i++ {
				base := benchConfig(affinity.ModeNone, affinity.TX, 65536)
				if off {
					base.Tune.ClearsPerIPI = 0
					base.Tune.ClearsPerDeviceIRQ = 0
					base.Tune.ClearsPerSwitch = 0
					base.CPU.Penalty.RemoteClearPeriod = 0
				}
				full := base
				full.Mode = affinity.ModeFull
				rb := affinity.Run(base)
				rf := affinity.Run(full)
				gain = rf.Mbps/rb.Mbps - 1
				clears = float64(rb.Ctr.Total(perf.MachineClears))
			}
			b.ReportMetric(100*gain, "%fullaff-gain")
			b.ReportMetric(clears, "clears")
		})
	}
}

// Ablation 3: disable the scheduler's wake-to-last-CPU preference; the
// indirect process affinity that interrupt-only affinity relies on (§5)
// weakens.
func BenchmarkAblation_NoWakeAffinity(b *testing.B) {
	for _, wake := range []bool{true, false} {
		name := "wake-affinity-on"
		if !wake {
			name = "wake-affinity-off"
		}
		b.Run(name, func(b *testing.B) {
			var irqGain float64
			for i := 0; i < b.N; i++ {
				base := benchConfig(affinity.ModeNone, affinity.TX, 65536)
				base.Tune.WakeAffinity = wake
				irq := base
				irq.Mode = affinity.ModeIRQ
				rb := affinity.Run(base)
				ri := affinity.Run(irq)
				irqGain = ri.Mbps/rb.Mbps - 1
			}
			b.ReportMetric(100*irqGain, "%irqaff-gain")
		})
	}
}

// Ablation 4: the Linux-2.6 integer receive copy [1] versus 2.4's rep-mov
// copy: RX copy CPI falls.
func BenchmarkAblation_IntCopyRX(b *testing.B) {
	for _, intCopy := range []bool{false, true} {
		name := "repmov-2.4"
		if intCopy {
			name = "intcopy-2.6"
		}
		b.Run(name, func(b *testing.B) {
			var cpi, mbps float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(affinity.ModeFull, affinity.RX, 65536)
				cfg.TCP.RxIntCopy = intCopy
				r := affinity.Run(cfg)
				mbps = r.Mbps
				for _, row := range affinity.BaselineTable(r).Rows {
					if row.Bin == perf.BinCopies {
						cpi = row.CPI
					}
				}
			}
			b.ReportMetric(cpi, "copy-CPI")
			b.ReportMetric(mbps, "Mbps")
		})
	}
}

// Ablation 5: chipset transmit-DMA snoop behaviour: without
// invalidate-on-read, transmit buffers stay warm and the copies bin
// becomes much cheaper than the paper measured.
func BenchmarkAblation_DMAReadInvalidate(b *testing.B) {
	for _, inval := range []bool{true, false} {
		name := "invalidate"
		if !inval {
			name = "keep-copies"
		}
		b.Run(name, func(b *testing.B) {
			var mpi float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(affinity.ModeFull, affinity.TX, 65536)
				cfg.Tune.DMAReadInvalidates = inval
				r := affinity.Run(cfg)
				for _, row := range affinity.BaselineTable(r).Rows {
					if row.Bin == perf.BinCopies {
						mpi = 1000 * row.MPI
					}
				}
			}
			b.ReportMetric(mpi, "copy-MPIx1e-3")
		})
	}
}

// Ablation 6: the 2.6-style rotating interrupt distribution of §7: it
// relieves the CPU0 bottleneck without pinning, landing between no
// affinity and static IRQ affinity.
func BenchmarkAblation_RotateIRQ(b *testing.B) {
	for _, rotate := range []bool{false, true} {
		name := "static-cpu0"
		if rotate {
			name = "rotate"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(affinity.ModeNone, affinity.TX, 65536)
			cfg.RotateIRQs = rotate
			r := runOnce(b, cfg)
			b.ReportMetric(r.Mbps, "Mbps")
			b.ReportMetric(r.CostGHzPerGbps, "GHz/Gbps")
		})
	}
}

// Ablation 7: interrupt coalescing. The paper-era driver interrupted
// per packet; modern throttling (wider windows) cuts interrupt load and
// machine clears, shrinking — but not erasing — the affinity gap.
func BenchmarkAblation_Coalescing(b *testing.B) {
	for _, window := range []uint64{2_000, 50_000, 200_000} {
		b.Run(fmt.Sprintf("window=%dus", window/2000), func(b *testing.B) {
			var gain, irqs float64
			for i := 0; i < b.N; i++ {
				mk := func(mode affinity.Mode) *affinity.Result {
					cfg := benchConfig(mode, affinity.TX, 65536)
					m := affinity.NewMachine(cfg)
					defer m.Shutdown()
					// Rebuild is cheaper than plumbing the NIC config:
					// the driver reads CoalesceCycles per NIC.
					for _, n := range m.NICs {
						n.SetCoalesce(window)
					}
					m.Eng.Run(simTime(cfg.WarmupCycles))
					return m.Measure(cfg.MeasureCycles)
				}
				rb := mk(affinity.ModeNone)
				rf := mk(affinity.ModeFull)
				gain = rf.Mbps/rb.Mbps - 1
				irqs = float64(rb.Ctr.Total(perf.IRQsReceived))
			}
			b.ReportMetric(100*gain, "%fullaff-gain")
			b.ReportMetric(irqs, "irqs")
		})
	}
}

// --- Open-loop cell: 10⁵-connection churn at the default offered load ---

// BenchmarkOpenLoopCell100k records the workload layer's scale point:
// one hundred-thousand-connection open-loop cell run to completion
// under full affinity. ns/op is the cell's wall-clock; the custom
// metrics record the simulated tail latency and the per-connection
// byte cost (total wire bytes over generated connections), the
// flyweight refactor's figure of merit.
func BenchmarkOpenLoopCell100k(b *testing.B) {
	ws, err := affinity.ParseWorkload("openloop,conns=100000")
	if err != nil {
		b.Fatal(err)
	}
	cfg := affinity.DefaultConfig(affinity.ModeFull, affinity.TX, 65536)
	cfg.Workload = ws
	var r *affinity.Result
	for i := 0; i < b.N; i++ {
		r = affinity.Run(cfg)
	}
	if r.Transactions != 100_000 {
		b.Fatalf("cell incomplete: completed=%d abandoned=%d syndrops=%d",
			r.Transactions, r.ConnsAbandoned, r.SynDrops)
	}
	b.ReportMetric(float64(r.LatencyP99Cycles)/2000, "p99-us")
	b.ReportMetric(float64(r.LatencyP999Cycles)/2000, "p999-us")
	b.ReportMetric(float64(r.WireBytes)/float64(r.ConnsGenerated), "wireB/conn")
}
