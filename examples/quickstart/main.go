// Quickstart: reproduce the paper's headline result in a dozen lines.
//
// Runs the ttcp bulk-transmit workload at 64 KB under all four affinity
// modes and prints throughput, utilization and processing cost — the
// paper's Figure 3/4 data points — then the §6.3 comparative analysis
// between no affinity and full affinity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/affinity"
)

func main() {
	fmt.Println("Processor affinity in network processing — quickstart")
	fmt.Println("Workload: 8 ttcp processes transmitting 64 KB buffers over 8 GbE NICs")
	fmt.Println()

	results := map[affinity.Mode]*affinity.Result{}
	for _, mode := range affinity.Modes() {
		r := affinity.Run(affinity.DefaultConfig(mode, affinity.TX, 65536))
		results[mode] = r
		fmt.Println(r)
	}

	base := results[affinity.ModeNone]
	full := results[affinity.ModeFull]
	gain := full.Mbps/base.Mbps - 1
	fmt.Printf("\nFull affinity gains %.1f%% throughput and cuts cost from %.2f to %.2f GHz/Gbps.\n\n",
		100*gain, base.CostGHzPerGbps, full.CostGHzPerGbps)

	fmt.Println("Where did the cycles go? (paper Table 3)")
	fmt.Print(affinity.Compare(base, full).Format())
}
