// Scheduler-study: sweep every affinity mode across the paper's
// transaction sizes in both directions and emit the results as CSV —
// the raw data behind Figures 3 and 4, ready for external plotting.
//
// The sweep also demonstrates the §7-discussed alternative: the Linux
// 2.6-style rotating interrupt distribution, reported as a fifth
// "mode" column for comparison.
//
// The cells of each direction run concurrently across the host's cores
// (affinity.RunAll); rows print in the same deterministic order — and
// with the same values — as a serial sweep.
//
//	go run ./examples/scheduler-study > sweep.csv
package main

import (
	"fmt"
	"os"

	"repro/affinity"
)

func main() {
	sizes := affinity.Sizes()
	fmt.Println("dir,size,mode,mbps,util,cost_ghz_per_gbps")

	for _, dir := range []affinity.Direction{affinity.TX, affinity.RX} {
		var labels []string
		var cfgs []affinity.Config
		add := func(label string, cfg affinity.Config) {
			// A shorter window keeps the 70-cell sweep quick; bump for
			// precision.
			cfg.WarmupCycles = 30_000_000
			cfg.MeasureCycles = 100_000_000
			labels = append(labels, label)
			cfgs = append(cfgs, cfg)
		}
		for _, size := range sizes {
			for _, mode := range affinity.Modes() {
				add(mode.String(), affinity.DefaultConfig(mode, dir, size))
			}
			// The 2.6-style rotating IRQ policy (paper §7): random-ish
			// redistribution fixes the CPU0 bottleneck but keeps cache
			// inefficiencies, and pays for TPR updates.
			cfg := affinity.DefaultConfig(affinity.ModeNone, dir, size)
			cfg.RotateIRQs = true
			add("Rotate IRQ", cfg)
		}
		for i, r := range affinity.RunAll(cfgs) {
			fmt.Printf("%s,%d,%s,%.2f,%.4f,%.4f\n",
				dir, cfgs[i].Size, labels[i], r.Mbps, r.AvgUtil, r.CostGHzPerGbps)
		}
		fmt.Fprintf(os.Stderr, "%s sweep done\n", dir)
	}
}
