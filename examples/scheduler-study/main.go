// Scheduler-study: sweep every affinity mode across the paper's
// transaction sizes in both directions and emit the results as CSV —
// the raw data behind Figures 3 and 4, ready for external plotting.
//
// The sweep also demonstrates the §7-discussed alternative: the Linux
// 2.6-style rotating interrupt distribution, reported as a fifth
// "mode" column for comparison.
//
// With -scaling the study instead sweeps the machine shape: the same
// workload on 2-, 4- and 8-processor topologies under every mode, the
// paper's §5 scaling observation ("the bottleneck that CPU0 imposes on
// a 4P system becomes even more pronounced") as one CSV.
//
// The cells of each sweep run concurrently across the host's cores
// (affinity.RunAll); rows print in the same deterministic order — and
// with the same values — as a serial sweep.
//
//	go run ./examples/scheduler-study > sweep.csv
//	go run ./examples/scheduler-study -scaling > scaling.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/affinity"
)

func main() {
	scaling := flag.Bool("scaling", false, "sweep CPU counts {2,4,8} instead of transaction sizes")
	flag.Parse()
	if *scaling {
		scalingSweep()
		return
	}
	sizeSweep()
}

// quick trims a config to sweep-friendly windows; bump for precision.
func quick(cfg affinity.Config) affinity.Config {
	cfg.WarmupCycles = 30_000_000
	cfg.MeasureCycles = 100_000_000
	return cfg
}

func sizeSweep() {
	sizes := affinity.Sizes()
	fmt.Println("dir,size,mode,mbps,util,cost_ghz_per_gbps")

	for _, dir := range []affinity.Direction{affinity.TX, affinity.RX} {
		var labels []string
		var cfgs []affinity.Config
		add := func(label string, cfg affinity.Config) {
			labels = append(labels, label)
			cfgs = append(cfgs, quick(cfg))
		}
		for _, size := range sizes {
			for _, mode := range affinity.Modes() {
				add(mode.String(), affinity.DefaultConfig(mode, dir, size))
			}
			// The 2.6-style rotating IRQ policy (paper §7): random-ish
			// redistribution fixes the CPU0 bottleneck but keeps cache
			// inefficiencies, and pays for TPR updates.
			cfg := affinity.DefaultConfig(affinity.ModeNone, dir, size)
			cfg.RotateIRQs = true
			add("Rotate IRQ", cfg)
		}
		for i, r := range affinity.RunAll(cfgs) {
			fmt.Printf("%s,%d,%s,%.2f,%.4f,%.4f\n",
				dir, cfgs[i].Size, labels[i], r.Mbps, r.AvgUtil, r.CostGHzPerGbps)
		}
		fmt.Fprintf(os.Stderr, "%s sweep done\n", dir)
	}
}

// scalingSweep holds the workload fixed (TX 64 KB over 8 NICs) and grows
// the processor count: on bigger machines no-affinity leaves ever more
// idle cycles stranded behind the CPU0 interrupt bottleneck, so the
// affinity gain widens with scale.
func scalingSweep() {
	cpuCounts := []int{2, 4, 8}
	fmt.Println("cpus,mode,mbps,util,cost_ghz_per_gbps,gain_vs_none")

	var labels []string
	var cfgs []affinity.Config
	for _, cpus := range cpuCounts {
		for _, mode := range affinity.Modes() {
			cfg := affinity.DefaultConfig(mode, affinity.TX, 65536)
			t := affinity.Uniform(cpus, 8, 1)
			cfg.Topology = &t
			labels = append(labels, mode.String())
			cfgs = append(cfgs, quick(cfg))
		}
	}
	results := affinity.RunAll(cfgs)
	for i, r := range results {
		cpus := cpuCounts[i/len(affinity.Modes())]
		// The no-affinity baseline of this CPU count is the first cell of
		// its group.
		base := results[i/len(affinity.Modes())*len(affinity.Modes())]
		fmt.Printf("%d,%s,%.2f,%.4f,%.4f,%.1f%%\n",
			cpus, labels[i], r.Mbps, r.AvgUtil, r.CostGHzPerGbps,
			100*(r.Mbps/base.Mbps-1))
	}
	fmt.Fprintln(os.Stderr, "scaling sweep done")
}
