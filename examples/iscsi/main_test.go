package main

import (
	"testing"

	"repro/affinity"
)

// TestAffinityOrdering smoke-tests the storage workload at short
// windows: full affinity must move at least as much data as interrupt
// affinity, which must beat no affinity — the projection the paper's
// §8 conclusion claims for iSCSI/TCP.
func TestAffinityOrdering(t *testing.T) {
	const (
		warmup  = 20_000_000
		measure = 60_000_000
	)
	total := map[affinity.Mode]float64{}
	for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeIRQ, affinity.ModeFull} {
		mbps, reads, writes := runTarget(mode, warmup, measure)
		if mbps <= 0 || reads <= 0 || writes <= 0 {
			t.Fatalf("%s: degenerate throughput (total %.1f, reads %.1f, writes %.1f)",
				mode, mbps, reads, writes)
		}
		total[mode] = mbps
	}
	if total[affinity.ModeFull] < total[affinity.ModeIRQ] {
		t.Errorf("full affinity (%.1f Mb/s) below irq affinity (%.1f Mb/s)",
			total[affinity.ModeFull], total[affinity.ModeIRQ])
	}
	if total[affinity.ModeIRQ] < total[affinity.ModeNone] {
		t.Errorf("irq affinity (%.1f Mb/s) below no affinity (%.1f Mb/s)",
			total[affinity.ModeIRQ], total[affinity.ModeNone])
	}
}
