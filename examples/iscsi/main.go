// iSCSI: bulk storage traffic over TCP — the workload the paper's
// conclusion points at ("we have started initial work that showed
// promising performance gains when running a file IO benchmark over
// iSCSI/TCP", §8) and the projection its introduction motivates: network
// storage is long-lived connections moving bulk data, exactly the regime
// where affinity pays most.
//
// The simulated target serves eight initiators. Half the connections
// stream READ responses (target transmits 64 KB data-in PDUs), half
// absorb WRITE data (target receives 64 KB data-out PDUs), mimicking a
// mixed file-IO benchmark — the built-in bulk workload with alternating
// per-connection directions ("bulk,alternate=true"). Each run reports
// aggregate storage throughput under all four affinity modes.
//
//	go run ./examples/iscsi
package main

import (
	"fmt"

	"repro/affinity"
	"repro/internal/sim"
)

const pduBytes = 64 << 10 // one iSCSI data segment per SCSI op

func main() {
	fmt.Println("iSCSI target on the simulated SUT")
	fmt.Println("4 READ streams (target -> initiator), 4 WRITE streams (initiator -> target), 64 KB PDUs")
	fmt.Println()

	var base float64
	for _, mode := range affinity.Modes() {
		mbps, reads, writes := runTarget(mode, 0, 0)
		fmt.Printf("%-9s %8.1f Mb/s total  (reads %7.1f, writes %7.1f)\n",
			mode, mbps, reads, writes)
		if mode == affinity.ModeNone {
			base = mbps
		}
		if mode == affinity.ModeFull {
			fmt.Printf("\nFull affinity moves %.1f%% more storage data per second than no affinity,\n", 100*(mbps/base-1))
			fmt.Println("but note the read/write imbalance: receive softirq load outprioritizes the")
			fmt.Println("pinned READ writers sharing its processor. This is the paper's §8 caveat —")
			fmt.Println("\"more scheduling intelligence must accompany affinity\" for non-uniform,")
			fmt.Println("mixed workloads; static pinning alone is tuned for uniform bulk streams.")
		}
	}
}

// runTarget builds the mixed read/write target and returns total, read
// and write goodput in Mb/s. Zero warmup/measure select the paper's
// default windows; tests pass shorter ones.
func runTarget(mode affinity.Mode, warmup, measure uint64) (total, reads, writes float64) {
	cfg := affinity.DefaultConfig(mode, affinity.TX, pduBytes)
	// The mixed read/write target is the bulk workload with alternating
	// directions: even connections follow Config.Dir (TX — READ service,
	// target transmits), odd connections run the opposite (RX — WRITE
	// service, target receives).
	spec, err := affinity.ParseWorkload("bulk,alternate=true")
	if err != nil {
		panic(err)
	}
	cfg.Workload = spec
	if warmup != 0 {
		cfg.WarmupCycles = warmup
	}
	if measure != 0 {
		cfg.MeasureCycles = measure
	}
	m := affinity.NewMachine(cfg)
	defer m.Shutdown()

	m.Eng.Run(sim.Time(cfg.WarmupCycles))

	// Measure both directions over one window.
	startIn, startOut := flows(m)
	start := m.Eng.Now()
	m.Eng.Run(start + sim.Time(cfg.MeasureCycles))
	endIn, endOut := flows(m)

	secs := float64(m.Eng.Now()-start) / float64(cfg.CPU.ClockHz)
	reads = float64(endOut-startOut) * 8 / secs / 1e6
	writes = float64(endIn-startIn) * 8 / secs / 1e6
	return reads + writes, reads, writes
}

// flows sums target-side bytes: in = WRITE data absorbed by the target,
// out = READ data delivered to initiators.
func flows(m *affinity.Machine) (in, out uint64) {
	for i, s := range m.Sockets {
		if i%2 == 1 {
			in += s.AppBytesIn()
		} else {
			out += m.Clients[i].BytesReceived
		}
	}
	return in, out
}
