// Webserver: a static-content web-server-like workload on the simulated
// SUT, the projection the paper argues for in §4 — "ttcp caching behavior
// is also representative of real web or file servers that serve static
// file content to/from the network".
//
// Each of the eight connections runs a request/response loop: the client
// sends a small HTTP-like request, the server process reads it and writes
// a response drawn from a quasi-static template mix (the paper cites a
// characterization [24] where ~50% of requests are dynamic yet reuse
// 30-60% quasi-static templates). Comparing no affinity against full
// affinity shows the network-fast-path gains projecting onto this
// workload.
//
//	go run ./examples/webserver
package main

import (
	"fmt"

	"repro/affinity"
	"repro/internal/kern"
	"repro/internal/sim"
)

// templateMix is the response-size distribution: small dynamic fragments
// plus larger quasi-static template bodies.
var templateMix = []int{512, 2048, 8192, 8192, 16384, 16384, 32768, 65536}

const requestSize = 384 // a typical GET with headers

func main() {
	fmt.Println("Static-content web server on the simulated SUT")
	fmt.Println("8 worker processes, request/response over 8 connections")
	fmt.Println()
	var base *affinity.Result
	for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
		r := runWebServer(mode, 0, 0)
		fmt.Printf("%-9s %8.1f Mb/s responses  util=%.0f%%/%.0f%%  cost=%.2f GHz/Gbps\n",
			mode, r.Mbps, 100*r.Util[0], 100*r.Util[1], r.CostGHzPerGbps)
		if mode == affinity.ModeNone {
			base = r
		} else {
			fmt.Printf("\nFull affinity serves %.1f%% more response bytes per second.\n",
				100*(r.Mbps/base.Mbps-1))
		}
	}
}

// runWebServer measures the web workload under one affinity mode.
// Zero warmup/measure select the paper's default windows; tests pass
// shorter ones.
func runWebServer(mode affinity.Mode, warmup, measure uint64) *affinity.Result {
	cfg := affinity.DefaultConfig(mode, affinity.TX, 65536)
	cfg.SkipWorkload = true
	if warmup != 0 {
		cfg.WarmupCycles = warmup
	}
	if measure != 0 {
		cfg.MeasureCycles = measure
	}
	m := affinity.NewMachine(cfg)
	defer m.Shutdown()

	for i := range m.Sockets {
		i := i
		sock := m.Sockets[i]
		client := m.Clients[i]
		reqBuf := m.K.Space.AllocPage(4096, fmt.Sprintf("reqbuf%d", i))
		rspBuf := m.K.Space.AllocPage(65536, fmt.Sprintf("rspbuf%d", i))

		// The worker process: read a request, serve the next template.
		m.K.Spawn(fmt.Sprintf("httpd%d", i), i%cfg.NumCPUs, m.AffinityMaskFor(i),
			func(env *kern.Env) {
				for n := 0; ; n++ {
					sock.Read(env, reqBuf, requestSize)
					sock.Write(env, rspBuf, templateMix[(i+n)%len(templateMix)])
				}
			})

		// The client: issue the next request once the full response for
		// the previous one has arrived (closed-loop, like a browser).
		seq := 0
		expected := templateMix[i%len(templateMix)]
		got := 0
		client.OnReceive(func(n int) {
			got += n
			for got >= expected {
				got -= expected
				seq++
				expected = templateMix[(i+seq)%len(templateMix)]
				client.SendBytes(requestSize)
			}
		})
		m.Eng.At(sim.Time(1000+i*997), func() { client.SendBytes(requestSize) })
	}

	m.Eng.Run(sim.Time(cfg.WarmupCycles))
	return m.Measure(cfg.MeasureCycles)
}
