// Webserver: a static-content web-server-like workload on the simulated
// SUT, the projection the paper argues for in §4 — "ttcp caching behavior
// is also representative of real web or file servers that serve static
// file content to/from the network".
//
// Each of the eight connections runs a request/response loop: the client
// sends a small HTTP-like request, the server process reads it and writes
// a response drawn from a quasi-static template mix (the paper cites a
// characterization [24] where ~50% of requests are dynamic yet reuse
// 30-60% quasi-static templates). The whole loop is the built-in "rpc"
// workload (internal/workload) — this example just selects it on the
// config, runs two affinity modes and renders the comparison, including
// the per-request latency tail the workload layer records.
//
//	go run ./examples/webserver
package main

import (
	"fmt"

	"repro/affinity"
)

// webSpec selects the closed-loop request/response workload with the
// quasi-static template mix — the same spec string the CLI's -workload
// flag and the HTTP API's "workload" field accept.
const webSpec = "rpc,mix=web,req=384"

func main() {
	fmt.Println("Static-content web server on the simulated SUT")
	fmt.Println("8 worker processes, request/response over 8 connections")
	fmt.Println()
	var base *affinity.Result
	for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
		r := runWebServer(mode, 0, 0)
		clk := float64(r.Cfg.CPU.ClockHz)
		fmt.Printf("%-9s %8.1f Mb/s responses  util=%.0f%%/%.0f%%  cost=%.2f GHz/Gbps  p50=%.0fµs p99=%.0fµs\n",
			mode, r.Mbps, 100*r.Util[0], 100*r.Util[1], r.CostGHzPerGbps,
			float64(r.LatencyP50Cycles)/clk*1e6, float64(r.LatencyP99Cycles)/clk*1e6)
		if mode == affinity.ModeNone {
			base = r
		} else {
			fmt.Printf("\nFull affinity serves %.1f%% more response bytes per second.\n",
				100*(r.Mbps/base.Mbps-1))
		}
	}
}

// runWebServer measures the web workload under one affinity mode.
// Zero warmup/measure select the paper's default windows; tests pass
// shorter ones.
func runWebServer(mode affinity.Mode, warmup, measure uint64) *affinity.Result {
	cfg := affinity.DefaultConfig(mode, affinity.TX, 65536)
	spec, err := affinity.ParseWorkload(webSpec)
	if err != nil {
		panic(err)
	}
	cfg.Workload = spec
	if warmup != 0 {
		cfg.WarmupCycles = warmup
	}
	if measure != 0 {
		cfg.MeasureCycles = measure
	}
	return affinity.Run(cfg)
}
