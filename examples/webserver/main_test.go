package main

import (
	"testing"

	"repro/affinity"
)

// TestAffinityOrdering smoke-tests the workload at short windows: the
// paper's headline ordering — full affinity beats interrupt affinity
// beats no affinity — must project onto the web-server workload too.
func TestAffinityOrdering(t *testing.T) {
	const (
		warmup  = 20_000_000
		measure = 60_000_000
	)
	mbps := map[affinity.Mode]float64{}
	for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeIRQ, affinity.ModeFull} {
		r := runWebServer(mode, warmup, measure)
		if r.Mbps <= 0 {
			t.Fatalf("%s: no throughput measured", mode)
		}
		mbps[mode] = r.Mbps
	}
	if mbps[affinity.ModeFull] < mbps[affinity.ModeIRQ] {
		t.Errorf("full affinity (%.1f Mb/s) below irq affinity (%.1f Mb/s)",
			mbps[affinity.ModeFull], mbps[affinity.ModeIRQ])
	}
	if mbps[affinity.ModeIRQ] < mbps[affinity.ModeNone] {
		t.Errorf("irq affinity (%.1f Mb/s) below no affinity (%.1f Mb/s)",
			mbps[affinity.ModeIRQ], mbps[affinity.ModeNone])
	}
}
