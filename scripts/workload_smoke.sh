#!/usr/bin/env bash
# Workload-layer smoke test, in two halves:
#
#  1. Bulk byte-identity: the flyweight tcp refactor and the workload
#     layer must leave the paper's bulk workload untouched. The full
#     quick figure set is diffed against the committed pre-refactor
#     golden (testdata/figures_quick_golden.txt), and an explicit
#     "-workload bulk" run must print byte-identically to the default
#     (nil-spec) run.
#
#  2. Open-loop determinism: a 10⁴-connection churn cell through the
#     CLI twice must print byte-identical output, including the
#     p50/p99/p999 tail-latency lines, and must run to completion
#     (every generated connection terminal).
#
# CI runs this; it is also handy locally:
#
#   ./scripts/workload_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/affinity-sim" ./cmd/affinity-sim
go build -o "$TMP/affinity-figures" ./cmd/affinity-figures

echo "== bulk byte-identity vs. pre-refactor golden =="
"$TMP/affinity-figures" -all -quick > "$TMP/figures.txt"
if ! cmp -s testdata/figures_quick_golden.txt "$TMP/figures.txt"; then
    echo "workload_smoke: quick figures diverged from the golden:" >&2
    diff testdata/figures_quick_golden.txt "$TMP/figures.txt" >&2 || true
    exit 1
fi

"$TMP/affinity-sim" -warmup 5000000 -measure 20000000 > "$TMP/bulk_nil.txt"
"$TMP/affinity-sim" -warmup 5000000 -measure 20000000 -workload bulk > "$TMP/bulk_explicit.txt"
if ! cmp -s "$TMP/bulk_nil.txt" "$TMP/bulk_explicit.txt"; then
    echo "workload_smoke: explicit bulk spec diverged from the nil default:" >&2
    diff "$TMP/bulk_nil.txt" "$TMP/bulk_explicit.txt" >&2 || true
    exit 1
fi

echo "== open-loop 10k-connection cell, deterministic across two runs =="
CELL="openloop,conns=10000"
"$TMP/affinity-sim" -mode full -workload "$CELL" > "$TMP/cell1.txt"
"$TMP/affinity-sim" -mode full -workload "$CELL" > "$TMP/cell2.txt"
if ! cmp -s "$TMP/cell1.txt" "$TMP/cell2.txt"; then
    echo "workload_smoke: repeated open-loop cell differs:" >&2
    diff "$TMP/cell1.txt" "$TMP/cell2.txt" >&2 || true
    exit 1
fi
if ! grep -q "p50" "$TMP/cell1.txt" || ! grep -q "p999" "$TMP/cell1.txt"; then
    echo "workload_smoke: open-loop cell reported no tail latency:" >&2
    cat "$TMP/cell1.txt" >&2
    exit 1
fi
if ! grep -q "churn: 10000 generated, 10000 completed" "$TMP/cell1.txt"; then
    echo "workload_smoke: open-loop cell did not complete all connections:" >&2
    cat "$TMP/cell1.txt" >&2
    exit 1
fi

echo "workload_smoke: OK (figures golden intact, bulk spec inert, 10k cell deterministic and complete)"
