// Command bench_compare is the CI helper tool behind scripts/bench.sh,
// scripts/fleet_smoke.sh and their CI jobs. Subcommands:
//
//	parse              read `go test -bench` output on stdin, emit BENCH JSON
//	compare BASE CUR   exit nonzero if CUR regresses vs the BASE json
//	sweepcsv           read /v1/sweep NDJSON on stdin, emit Sweep.CSV text
//
// The JSON shape is stable and diff-friendly: benchmark names (with their
// -N GOMAXPROCS suffixes) map to {ns_op, b_op, allocs_op, extra metrics}.
// Compare flags a regression when ns/op grows beyond -threshold (default
// 1.20, i.e. >20% slower) or allocs/op increases at all; benchmarks
// present on only one side are reported but never fail the gate, so
// adding or retiring benchmarks does not break CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	Schema     string                 `json:"schema"`
	Host       map[string]string      `json:"host"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		parse(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	case "sweepcsv":
		sweepCSV(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bench_compare parse < bench.txt > BENCH.json")
	fmt.Fprintln(os.Stderr, "       bench_compare compare [-threshold 1.2] baseline.json current.json")
	fmt.Fprintln(os.Stderr, "       bench_compare sweepcsv < sweep.ndjson > sweep.csv")
	os.Exit(2)
}

// parse reads `go test -bench` text and writes the JSON trajectory file.
// Lines it does not recognize pass through to stderr so CI logs keep the
// raw context.
func parse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	fs.Parse(args)
	out := benchFile{
		Schema: "affinity-bench/v1",
		Host: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
		},
		Benchmarks: map[string]benchResult{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			out.Host["cpu"] = strings.TrimSpace(cpu)
		}
		name, res, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		out.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		fatal("read: %v", err)
	}
	if len(out.Benchmarks) == 0 {
		fatal("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal("encode: %v", err)
	}
}

// parseBenchLine decodes one result line:
//
//	BenchmarkName-4   123456   78.9 ns/op   0 B/op   0 allocs/op   1.5 extra/op
func parseBenchLine(line string) (string, benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", benchResult{}, false
	}
	if _, err := strconv.Atoi(f[1]); err != nil {
		return "", benchResult{}, false
	}
	res := benchResult{}
	found := false
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", benchResult{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			res.NsOp = val
			found = true
		case "B/op":
			res.BOp = val
		case "allocs/op":
			res.AllocsOp = val
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	return f[0], res, found
}

// compare gates a current run against a committed baseline.
func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 1.20, "fail when current ns/op exceeds baseline × threshold")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	base := load(fs.Arg(0))
	cur := load(fs.Arg(1))

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("SKIP %-45s not in current run\n", name)
			continue
		}
		ratio := 0.0
		if b.NsOp > 0 {
			ratio = c.NsOp / b.NsOp
		}
		verdict := "ok  "
		switch {
		case b.NsOp > 0 && ratio > *threshold:
			verdict = "FAIL"
			failed = true
		case c.AllocsOp > b.AllocsOp:
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-45s %12.1f -> %12.1f ns/op  (%.2fx)  allocs %g -> %g\n",
			verdict, name, b.NsOp, c.NsOp, ratio, b.AllocsOp, c.AllocsOp)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NEW  %-45s %12.1f ns/op\n", name, cur.Benchmarks[name].NsOp)
		}
	}
	if failed {
		fmt.Printf("\nbench_compare: regression beyond %.0f%% (or new allocations) detected\n", (*threshold-1)*100)
		os.Exit(1)
	}
}

func load(path string) benchFile {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		fatal("%s: %v", path, err)
	}
	return f
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench_compare: "+format+"\n", args...)
	os.Exit(1)
}
