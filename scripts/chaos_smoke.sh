#!/usr/bin/env bash
# Crash-safety smoke: SIGKILL the coordinator mid-sweep and restart it
# against its journal — the resumed run must re-dispatch ONLY the cells
# that never completed, a graceful SIGTERM must checkpoint the journal,
# and SIGKILLing a worker mid-sweep must cost retries, not bytes. Every
# merged stream is compared byte-for-byte against a single calm worker.
# CI runs this; locally:
#
#   ./scripts/chaos_smoke.sh
set -euo pipefail

COORD=127.0.0.1:18080
WORKER_A=127.0.0.1:18081
WORKER_B=127.0.0.1:18082
SOLO=127.0.0.1:18083
TMP=$(mktemp -d)
JOURNAL="$TMP/journal"
COORD_PID=""
trap 'kill "$COORD_PID" "$A_PID" "$B_PID" "$SOLO_PID" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/affinity-serve" ./cmd/affinity-serve
go build -o "$TMP/affinity-coord" ./cmd/affinity-coord

"$TMP/affinity-serve" -addr "$WORKER_A" -coord "http://$COORD" -announce-interval 1s &
A_PID=$!
"$TMP/affinity-serve" -addr "$WORKER_B" -coord "http://$COORD" -announce-interval 1s &
B_PID=$!
"$TMP/affinity-serve" -addr "$SOLO" &
SOLO_PID=$!

start_coord() {
    "$TMP/affinity-coord" -addr "$COORD" -heartbeat 500ms -evict-after 2 \
        -retry-base 100ms -journal-dir "$JOURNAL" -journal-sync 10ms &
    COORD_PID=$!
}

wait_healthy() { # url predicate-grep
    for i in $(seq 1 100); do
        if curl -sf "$1" 2>/dev/null | grep -q "$2"; then
            return 0
        fi
        sleep 0.2
    done
    echo "chaos_smoke: timed out waiting for $1 to match '$2'" >&2
    exit 1
}

metric() { # addr name -> value
    curl -sf "http://$1/metrics" | awk -v m="$2" '$1 == m { print $2 }'
}

health_field() { # addr json-key -> value
    curl -sf "http://$1/healthz" | grep -o "\"$2\": [0-9]*" | awk '{ print $2 }'
}

wait_healthy "http://$SOLO/healthz" '"status": "ok"'
SWEEP='{"dir":"tx","seed":31,"warmup_cycles":20000000,"measure_cycles":60000000}'
curl -sf -X POST "http://$SOLO/v1/sweep" -d "$SWEEP" > "$TMP/golden.ndjson"
LINES=$(wc -l < "$TMP/golden.ndjson")
echo "chaos_smoke: golden single-node sweep has $LINES cells"

start_coord
wait_healthy "http://$COORD/healthz" '"workers_healthy": 2'

# --- 1. SIGKILL the coordinator mid-sweep; the journal carries on ------
curl -sf -N -X POST "http://$COORD/v1/sweep" -d "$SWEEP" > "$TMP/truncated.ndjson" &
CURL_PID=$!
# Wait for at least two completed cells to hit the journal, then murder
# the coordinator — no drain, no checkpoint, wal only.
APPENDS=0
for i in $(seq 1 200); do
    APPENDS=$(metric "$COORD" affinity_coord_journal_appends_total || true)
    [ "${APPENDS:-0}" -ge 2 ] && break
    sleep 0.05
done
if [ "${APPENDS:-0}" -lt 2 ]; then
    echo "chaos_smoke: journal never saw an append; cannot stage the crash" >&2
    exit 1
fi
kill -9 "$COORD_PID"
wait "$CURL_PID" 2>/dev/null || true
echo "chaos_smoke: SIGKILLed coordinator after $APPENDS journal appends"

start_coord
wait_healthy "http://$COORD/healthz" '"workers_healthy": 2'
RESUMED=$(health_field "$COORD" resumed_cells)
if [ "${RESUMED:-0}" -lt 2 ]; then
    echo "chaos_smoke: restarted coordinator resumed $RESUMED cells, want >= 2" >&2
    exit 1
fi
if [ "$RESUMED" -ge "$LINES" ]; then
    echo "chaos_smoke: all $LINES cells were journaled pre-crash; nothing left to prove resume dispatches the remainder" >&2
    exit 1
fi
echo "chaos_smoke: restarted coordinator resumed $RESUMED cells from the wal"

curl -sf -X POST "http://$COORD/v1/sweep" -d "$SWEEP" > "$TMP/resumed.ndjson"
cmp "$TMP/golden.ndjson" "$TMP/resumed.ndjson"
RESUME_HITS=$(metric "$COORD" affinity_coord_journal_resume_hits_total)
DISPATCHED=$(metric "$COORD" affinity_coord_cells_dispatched_total)
if [ "$RESUME_HITS" -ne "$RESUMED" ]; then
    echo "chaos_smoke: $RESUME_HITS resume hits for $RESUMED journaled cells" >&2
    exit 1
fi
if [ "$DISPATCHED" -ne $((LINES - RESUMED)) ]; then
    echo "chaos_smoke: resumed sweep dispatched $DISPATCHED cells, want $((LINES - RESUMED)) — journaled cells must not re-dispatch" >&2
    exit 1
fi
echo "chaos_smoke: resumed sweep byte-identical ($RESUME_HITS from journal + $DISPATCHED dispatched, 0 re-dispatches)"

# --- 2. Graceful SIGTERM checkpoints; next epoch needs zero dispatches -
kill -TERM "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
if [ ! -s "$JOURNAL/checkpoint" ]; then
    echo "chaos_smoke: SIGTERM drain left no checkpoint" >&2
    exit 1
fi
if [ -s "$JOURNAL/wal" ]; then
    echo "chaos_smoke: wal not compacted by the shutdown checkpoint" >&2
    exit 1
fi
start_coord
wait_healthy "http://$COORD/healthz" '"workers_healthy": 2'
RESUMED=$(health_field "$COORD" resumed_cells)
if [ "$RESUMED" -ne "$LINES" ]; then
    echo "chaos_smoke: checkpoint replay resumed $RESUMED of $LINES cells" >&2
    exit 1
fi
curl -sf -X POST "http://$COORD/v1/sweep" -d "$SWEEP" > "$TMP/checkpointed.ndjson"
cmp "$TMP/golden.ndjson" "$TMP/checkpointed.ndjson"
DISPATCHED=$(metric "$COORD" affinity_coord_cells_dispatched_total)
if [ "$DISPATCHED" -ne 0 ]; then
    echo "chaos_smoke: journal-only sweep dispatched $DISPATCHED cells, want 0" >&2
    exit 1
fi
echo "chaos_smoke: post-SIGTERM epoch served all $LINES cells from the checkpoint (0 dispatches)"

# --- 3. SIGKILL a worker mid-sweep; retries converge, bytes identical --
SWEEP_C='{"dir":"rx","seed":32,"warmup_cycles":10000000,"measure_cycles":30000000}'
curl -sf -X POST "http://$SOLO/v1/sweep" -d "$SWEEP_C" > "$TMP/golden_c.ndjson"
curl -sf -N -X POST "http://$COORD/v1/sweep" -d "$SWEEP_C" > "$TMP/chaos_c.ndjson" &
CURL_PID=$!
sleep 2
kill -9 "$A_PID" 2>/dev/null || true
echo "chaos_smoke: SIGKILLed worker A mid-sweep"
wait "$CURL_PID"
cmp "$TMP/golden_c.ndjson" "$TMP/chaos_c.ndjson"
wait_healthy "http://$COORD/healthz" '"workers_healthy": 1'
echo "chaos_smoke: worker loss reassigned; merge still byte-identical; corpse evicted"

echo "chaos_smoke: OK"
