package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// sweepCSV re-renders a /v1/sweep NDJSON stream (stdin) as the
// Sweep.CSV table (stdout) — the same header, row format, and row order
// core.Sweep.CSV emits for a default grid, since the sweep endpoint
// streams sizes-outer/modes-inner over ascending default sizes. The
// fleet smoke test uses it to byte-diff a coordinator-merged sweep
// against affinity-figures' serial CSV output.
func sweepCSV(args []string) {
	fs := flag.NewFlagSet("sweepcsv", flag.ExitOnError)
	fs.Parse(args)
	type row struct {
		Mode string  `json:"mode"`
		Dir  string  `json:"dir"`
		Size int     `json:"size"`
		Mbps float64 `json:"mbps"`
		Util float64 `json:"util"`
		Cost float64 `json:"cost_ghz_per_gbps"`
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "dir,size,mode,mbps,util,cost_ghz_per_gbps")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r row
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			fmt.Fprintf(os.Stderr, "sweepcsv: line %d: %v\n", n+1, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s,%d,%s,%.2f,%.4f,%.4f\n", r.Dir, r.Size, r.Mode, r.Mbps, r.Util, r.Cost)
		n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "sweepcsv: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "sweepcsv: empty stream")
		os.Exit(1)
	}
}
